package hmccoal

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestFaultSweepDeterminism is the fault tentpole's acceptance contract:
// with ber > 0, two sweeps with the same seed are byte-identical at any
// worker count — fault decisions are keyed by (seed, link, packet serial),
// never by scheduling order.
func TestFaultSweepDeterminism(t *testing.T) {
	p := sweepTestParams()
	bers := []float64{0, 1e-5}
	serial, err := FaultSweepContext(context.Background(), "STREAM", p, 7, bers, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(bers) {
		t.Fatalf("%d rows, want %d", len(serial), len(bers))
	}
	for _, workers := range []int{0, 3} {
		parallel, err := FaultSweepContext(context.Background(), "STREAM", p, 7, bers, SweepOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		a, _ := json.Marshal(serial)
		b, _ := json.Marshal(parallel)
		if string(a) != string(b) {
			t.Fatalf("workers=%d: fault sweep differs from serial run", workers)
		}
	}
}

// TestFaultSweepDegradesWithBER: higher injected error rates must cost
// bandwidth efficiency, and the clean row must match a run with fault
// injection never configured at all.
func TestFaultSweepDegradesWithBER(t *testing.T) {
	p := sweepTestParams()
	rows, err := FaultSweep("STREAM", p, 11, []float64{0, 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	clean, faulty := rows[0], rows[1]
	if clean.TwoPhase.FaultsObserved() {
		t.Error("BER=0 row observed faults")
	}
	if !faulty.TwoPhase.FaultsObserved() {
		t.Error("BER=1e-4 row observed no faults")
	}
	if faulty.TwoPhase.HMC.BandwidthEfficiency() >= clean.TwoPhase.HMC.BandwidthEfficiency() {
		t.Errorf("bandwidth efficiency did not degrade: %.4f >= %.4f",
			faulty.TwoPhase.HMC.BandwidthEfficiency(), clean.TwoPhase.HMC.BandwidthEfficiency())
	}

	// The BER=0 row must be indistinguishable from a never-faulted system.
	accs, err := GenerateTrace("STREAM", p)
	if err != nil {
		t.Fatal(err)
	}
	base, err := runMode("STREAM", ModeTwoPhase, DefaultConfig(), accs)
	if err != nil {
		t.Fatal(err)
	}
	if base.Summary() != clean.TwoPhase.Summary() {
		t.Error("BER=0 sweep row differs from a run without fault injection")
	}

	table := FaultSweepTable(rows)
	for _, want := range []string{"BER", "speedup", "retries", "poisoned", "degraded", "two-phase"} {
		if !strings.Contains(table, want) {
			t.Errorf("FaultSweepTable missing %q:\n%s", want, table)
		}
	}
}

// TestFigureTablesEmptyRuns: every figure renderer must survive an empty
// run set (a sweep that produced nothing) without dividing by zero.
func TestFigureTablesEmptyRuns(t *testing.T) {
	var runs []BenchmarkRun
	for name, render := range map[string]func([]BenchmarkRun) string{
		"Figure8Table":  Figure8Table,
		"Figure9Table":  Figure9Table,
		"Figure11Table": Figure11Table,
		"Figure12Table": Figure12Table,
		"Figure13Table": Figure13Table,
		"Figure15Table": Figure15Table,
	} {
		out := render(runs)
		if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
			t.Errorf("%s renders NaN/Inf on empty runs:\n%s", name, out)
		}
	}
	// Zero completed requests: averages must not be NaN either.
	runs = []BenchmarkRun{{Name: "empty"}}
	for name, render := range map[string]func([]BenchmarkRun) string{
		"Figure8Table":  Figure8Table,
		"Figure9Table":  Figure9Table,
		"Figure15Table": Figure15Table,
	} {
		out := render(runs)
		if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
			t.Errorf("%s renders NaN/Inf for a zero-request run:\n%s", name, out)
		}
	}
	if out := Figure10Table(BenchmarkRun{}); strings.Contains(out, "NaN") {
		t.Errorf("Figure10Table renders NaN for an empty histogram:\n%s", out)
	}
	if out := PacketSizeTable(Result{}); strings.Contains(out, "NaN") {
		t.Errorf("PacketSizeTable renders NaN for an empty run:\n%s", out)
	}
	if out := FaultSweepTable(nil); !strings.Contains(out, "BER") {
		t.Errorf("FaultSweepTable broken on empty rows:\n%s", out)
	}
}
