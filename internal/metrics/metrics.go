// Package metrics renders the reproduction's figure data: analytic series
// (Figures 1–2), per-benchmark result tables (Figures 8–15) and plain-text
// table formatting shared by the CLI, the examples and EXPERIMENTS.md.
package metrics

import (
	"fmt"
	"strings"

	"hmccoal/internal/hmc"
)

// Figure1Row is one point of the bandwidth-efficiency motivation figure.
type Figure1Row struct {
	RequestBytes    uint32
	Efficiency      float64 // requested/transferred (Equation 1)
	ControlOverhead float64 // control/transferred
}

// Figure1 evaluates Equation 1 at the HMC 2.1 packet sizes.
func Figure1() []Figure1Row {
	var rows []Figure1Row
	for size := uint32(16); size <= 256; size *= 2 {
		rows = append(rows, Figure1Row{
			RequestBytes:    size,
			Efficiency:      hmc.BandwidthEfficiency(size),
			ControlOverhead: hmc.ControlOverheadFraction(size),
		})
	}
	return rows
}

// Figure2Row is one point of the control-overhead figure: the control bytes
// needed to move TotalBytes of data with fixed-size requests.
type Figure2Row struct {
	TotalBytes   uint64
	RequestBytes uint32
	ControlBytes uint64
}

// Figure2 tabulates control traffic for a sweep of data volumes and request
// sizes.
func Figure2(volumes []uint64) []Figure2Row {
	if len(volumes) == 0 {
		volumes = []uint64{1 << 20, 16 << 20, 256 << 20, 1 << 30}
	}
	var rows []Figure2Row
	for _, v := range volumes {
		for size := uint32(16); size <= 256; size *= 2 {
			rows = append(rows, Figure2Row{
				TotalBytes:   v,
				RequestBytes: size,
				ControlBytes: hmc.ControlBytesForVolume(v, size),
			})
		}
	}
	return rows
}

// Table renders rows as an aligned plain-text table. The first row is the
// header.
func Table(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	var widths []int
	for _, row := range rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for r, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
		if r == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Pct formats a fraction as a percentage with two decimals.
func Pct(f float64) string { return fmt.Sprintf("%.2f%%", f*100) }

// GB formats bytes as decimal gigabytes.
func GB(b int64) string { return fmt.Sprintf("%.2f GB", float64(b)/1e9) }

// MB formats bytes as decimal megabytes.
func MB(b int64) string { return fmt.Sprintf("%.2f MB", float64(b)/1e6) }

// Ns formats a nanosecond quantity.
func Ns(ns float64) string { return fmt.Sprintf("%.2f ns", ns) }

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Bars renders labeled values as a horizontal ASCII bar chart, scaled so
// the largest value spans `width` characters.
func Bars(labels []string, values []float64, width int) string {
	if len(labels) != len(values) || len(labels) == 0 {
		return ""
	}
	if width <= 0 {
		width = 50
	}
	maxVal, maxLabel := 0.0, 0
	for i, v := range values {
		if v > maxVal {
			maxVal = v
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	var b strings.Builder
	for i, v := range values {
		n := 0
		if maxVal > 0 && v > 0 {
			n = int(v / maxVal * float64(width))
		}
		fmt.Fprintf(&b, "%-*s %8.2f %s\n", maxLabel, labels[i], v, strings.Repeat("#", n))
	}
	return b.String()
}
