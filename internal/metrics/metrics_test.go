package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestFigure1Endpoints(t *testing.T) {
	rows := Figure1()
	if len(rows) != 5 {
		t.Fatalf("Figure1 has %d rows, want 5", len(rows))
	}
	if rows[0].RequestBytes != 16 || rows[len(rows)-1].RequestBytes != 256 {
		t.Fatalf("size range = %d..%d", rows[0].RequestBytes, rows[len(rows)-1].RequestBytes)
	}
	if math.Abs(rows[0].Efficiency-1.0/3) > 1e-9 {
		t.Errorf("16B efficiency = %v", rows[0].Efficiency)
	}
	if math.Abs(rows[4].Efficiency-8.0/9) > 1e-9 {
		t.Errorf("256B efficiency = %v", rows[4].Efficiency)
	}
	for _, r := range rows {
		if math.Abs(r.Efficiency+r.ControlOverhead-1) > 1e-9 {
			t.Errorf("row %dB: series don't sum to 1", r.RequestBytes)
		}
	}
}

func TestFigure2DefaultsAndCustomVolumes(t *testing.T) {
	def := Figure2(nil)
	if len(def) != 4*5 {
		t.Fatalf("default Figure2 rows = %d, want 20", len(def))
	}
	custom := Figure2([]uint64{1 << 20})
	if len(custom) != 5 {
		t.Fatalf("custom Figure2 rows = %d, want 5", len(custom))
	}
	// Halving the request size doubles the control bytes.
	for i := 1; i < len(custom); i++ {
		if custom[i-1].ControlBytes != 2*custom[i].ControlBytes {
			t.Errorf("control not doubling: %d then %d",
				custom[i-1].ControlBytes, custom[i].ControlBytes)
		}
	}
}

func TestTable(t *testing.T) {
	out := Table([][]string{
		{"name", "value"},
		{"a", "1"},
		{"longer", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, rule, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Errorf("missing header rule: %q", lines[1])
	}
	// All rows align to the same width.
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("rule width %d != header width %d", len(lines[1]), len(lines[0]))
	}
	if Table(nil) != "" {
		t.Error("empty table not empty")
	}
}

func TestTableRaggedRows(t *testing.T) {
	// Rows wider than the header must not panic.
	out := Table([][]string{{"a"}, {"b", "extra"}})
	if !strings.Contains(out, "extra") {
		t.Errorf("ragged cell lost: %q", out)
	}
}

func TestFormatters(t *testing.T) {
	if got := Pct(0.12345); got != "12.35%" {
		t.Errorf("Pct = %q", got)
	}
	if got := GB(2_500_000_000); got != "2.50 GB" {
		t.Errorf("GB = %q", got)
	}
	if got := MB(1_500_000); got != "1.50 MB" {
		t.Errorf("MB = %q", got)
	}
	if got := Ns(3.636); got != "3.64 ns" {
		t.Errorf("Ns = %q", got)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
}

func TestBars(t *testing.T) {
	out := Bars([]string{"a", "bb"}, []float64{2, 4}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("Bars output:\n%s", out)
	}
	if !strings.HasSuffix(lines[1], strings.Repeat("#", 10)) {
		t.Errorf("max bar not full width: %q", lines[1])
	}
	if strings.Count(lines[0], "#") != 5 {
		t.Errorf("half bar wrong: %q", lines[0])
	}
	if Bars(nil, nil, 10) != "" || Bars([]string{"a"}, nil, 10) != "" {
		t.Error("degenerate inputs not empty")
	}
	// Zero values render without panicking.
	if out := Bars([]string{"z"}, []float64{0}, 10); !strings.Contains(out, "0.00") {
		t.Errorf("zero bar: %q", out)
	}
}
