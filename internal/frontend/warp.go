package frontend

import (
	"fmt"

	"hmccoal/internal/coalescer"
	"hmccoal/internal/invariant"
	"hmccoal/internal/mshr"
)

// warp is the GPU-style coalescing unit: instead of one shared input
// buffer feeding a sorting network, each request lane (CPU) keeps an open
// warp buffer that closes when it reaches the coalescing width or its
// timeout expires — the SIMT memory-access coalescing stage, where the
// lanes of a warp present their addresses together and the unit merges
// them at DRAM-block granularity in first-touch order, counting one burst
// per distinct block touched. There is no sorter and no bypass: merging
// is an associative block lookup, so a closed warp pays CompareCycles per
// distinct (block, type) group and MergeCycles per absorbed request, and
// the whole warp becomes ready when its grouping cost has elapsed.
//
// Downstream of the warp buffers the unit mirrors the two-phase
// coalescer's contract exactly: a FIFO packet queue in front of the same
// dynamic MSHR file, the same issue-tick rules, the same span-level retry
// backoff, watchdog and conservation violations — so every figure renders
// from the same statistics shape and the fault-injection machinery works
// unchanged.
type warp struct {
	cfg      coalescer.Config
	sched    SchedKind
	file     *mshr.File
	issue    coalescer.IssueFunc
	complete coalescer.CompleteFunc

	lanes      []warpLane
	linesBlock uint64

	// The packet queue is a head-indexed slice: popping bumps qHead and
	// the backing array is recycled whenever the queue empties.
	queue []wpacket
	qHead int

	inflight []wcompletion // min-heap by completion tick
	retryQ   []wpacket     // min-heap by (ready, seq)
	retrySeq uint64

	// laneBytes is the heterogeneity-aware scheduler's per-lane
	// issued-byte account; nil under FR-FCFS.
	laneBytes []uint64

	freedAt     uint64
	lastIssue   uint64
	lastAdvance uint64
	fillStart   uint64
	fillCount   int
	stats       coalescer.Stats

	targetPool [][]mshr.Target

	check *invariant.Checker
	viol  error
}

// warpLane is one lane's open warp buffer.
type warpLane struct {
	reqs  []wreq
	since uint64 // tick the oldest buffered request arrived
}

// wreq is one buffered request plus its arrival tick, for the
// per-request latency accounting.
type wreq struct {
	coalescer.Request
	pushTick uint64
}

// wpacket is one queued memory packet; it carries the same issue state as
// the two-phase coalescer's CRQ packets so the dispatch rules match.
type wpacket struct {
	baseLine uint64
	lines    int
	write    bool
	targets  []mshr.Target
	ready    uint64
	blocked  bool
	attempt  int
	seq      uint64
	cpu      uint8
	critical bool
}

// wcompletion pairs an outstanding MSHR entry with its response tick.
type wcompletion struct {
	tick     uint64
	entry    *mshr.Entry
	issuedAt uint64
	fault    bool
	attempt  int
	cpu      uint8
	critical bool
}

// closeCause records what closed a warp, partitioning the flush counters
// the same way the two-phase coalescer's flushCause does.
type closeCause int

const (
	closeFull    closeCause = iota // warp reached the coalescing width
	closeTimeout                   // warp timeout expired
	closeFence                     // a memory fence forced the close
	closeDrain                     // end-of-run Drain forced the close
)

// newWarp builds the warp coalescing unit.
func newWarp(cfg Config, issue coalescer.IssueFunc, complete coalescer.CompleteFunc) (*warp, error) {
	if issue == nil || complete == nil {
		return nil, fmt.Errorf("frontend: nil callback")
	}
	ccfg := cfg.Coalescer
	ccfg.Sched = coalescer.Sched(cfg.Sched)
	if err := ccfg.Validate(); err != nil {
		return nil, err
	}
	lanes := cfg.Lanes
	if lanes < 1 {
		lanes = 1
	}
	mcfg := ccfg.MSHR
	mcfg.LineBytes = ccfg.LineBytes
	mcfg.BlockBytes = ccfg.BlockBytes
	mcfg.DisableMerge = !ccfg.SecondPhase
	file, err := mshr.NewFile(mcfg)
	if err != nil {
		return nil, err
	}
	w := &warp{
		cfg:        ccfg,
		sched:      cfg.Sched,
		file:       file,
		issue:      issue,
		complete:   complete,
		lanes:      make([]warpLane, lanes),
		linesBlock: uint64(ccfg.BlockBytes / ccfg.LineBytes),
	}
	if cfg.Sched == SchedHetero {
		w.laneBytes = make([]uint64, 256) // full uint8 lane space
	}
	return w, nil
}

func (w *warp) Kind() Kind { return KindWarp }

func (w *warp) getTargets() []mshr.Target {
	if n := len(w.targetPool); n > 0 {
		t := w.targetPool[n-1]
		w.targetPool = w.targetPool[:n-1]
		return t[:0]
	}
	return make([]mshr.Target, 0, w.cfg.Width)
}

func (w *warp) putTargets(t []mshr.Target) {
	if cap(t) > 0 {
		w.targetPool = append(w.targetPool, t)
	}
}

func (w *warp) qLen() int { return len(w.queue) - w.qHead }

func (w *warp) qFront() *wpacket { return &w.queue[w.qHead] }

func (w *warp) qPop() {
	p := &w.queue[w.qHead]
	w.putTargets(p.targets)
	p.targets = nil
	w.qHead++
	if w.qHead == len(w.queue) {
		w.queue = w.queue[:0]
		w.qHead = 0
	}
}

// timeout is the warp-close timeout; the warp unit uses the configured
// value directly (there is no sorter latency to adapt to).
func (w *warp) timeout() uint64 { return w.cfg.TimeoutCycles }

// Push presents one LLC request: it lands in its lane's open warp, which
// closes when it reaches the coalescing width.
func (w *warp) Push(now uint64, r coalescer.Request) {
	w.Advance(now)
	w.stats.Requests++
	w.stats.PayloadBytes += uint64(r.Payload)

	if !w.cfg.FirstPhase {
		// Conventional MHA: the miss goes straight at the MSHRs.
		w.enqueue(now, wpacket{
			baseLine: r.Line, lines: 1, write: r.Write,
			targets: append(w.getTargets(), mshr.Target{Line: r.Line, Token: r.Token, Payload: r.Payload}),
			ready:   now, cpu: r.CPU, critical: r.Critical,
		})
		w.drainQueue(now)
		return
	}

	l := &w.lanes[int(r.CPU)%len(w.lanes)]
	if len(l.reqs) == 0 {
		l.since = now
	}
	l.reqs = append(l.reqs, wreq{Request: r, pushTick: now})
	if len(l.reqs) >= w.cfg.Width {
		w.closeWarp(now, int(r.CPU)%len(w.lanes), closeFull)
		w.drainQueue(now)
	}
}

// Fence closes every open warp immediately, in ascending lane order.
func (w *warp) Fence(now uint64) {
	w.Advance(now)
	w.stats.Fences++
	for i := range w.lanes {
		if len(w.lanes[i].reqs) > 0 {
			w.closeWarp(now, i, closeFence)
		}
	}
	w.drainQueue(now)
}

// Advance processes time up to now: releases due retries, delivers due
// responses and closes warps whose timeout expired.
func (w *warp) Advance(now uint64) {
	if now > w.lastAdvance {
		w.lastAdvance = now
	}
	w.releaseRetries(now)
	for len(w.inflight) > 0 && w.inflight[0].tick <= now {
		w.completeOne()
	}
	w.expireWarps(now)
	for len(w.inflight) > 0 && w.inflight[0].tick <= now {
		w.completeOne()
	}
	w.drainQueue(now)
}

// expireWarps closes every warp whose timeout fell due, in (expiry tick,
// lane index) order so multi-lane expiries are deterministic.
func (w *warp) expireWarps(now uint64) {
	for {
		best, bestT := -1, uint64(0)
		for i := range w.lanes {
			l := &w.lanes[i]
			if len(l.reqs) == 0 {
				continue
			}
			if t := l.since + w.timeout(); t <= now && (best < 0 || t < bestT) {
				best, bestT = i, t
			}
		}
		if best < 0 {
			return
		}
		w.closeWarp(bestT, best, closeTimeout)
	}
}

// closeWarp runs one lane's buffered requests through block-granularity
// merging and queues the resulting packets. closeTick is when the warp
// closed; the packets become ready once the grouping cost has elapsed.
func (w *warp) closeWarp(closeTick uint64, lane int, cause closeCause) {
	l := &w.lanes[lane]
	batch := l.reqs
	l.reqs = l.reqs[:0]
	m := len(batch)
	if m == 0 {
		return
	}
	w.stats.Batches++
	w.stats.BatchRequests += uint64(m)
	switch cause {
	case closeFull:
		w.stats.FullFlushes++
	case closeTimeout:
		w.stats.TimeoutFlushes++
	case closeFence:
		w.stats.FenceFlushes++
	case closeDrain:
		w.stats.DrainFlushes++
	}

	// Burst counting: one group per distinct (block, type) pair, built in
	// first-touch order — the warp's lanes are compared associatively, so
	// unlike the two-phase DMC no sorting happens and discontiguous lines
	// of one block still share a burst.
	type wgroup struct {
		block    uint64
		write    bool
		minLine  uint64
		maxLine  uint64
		cpu      uint8
		critical bool
		targets  []mshr.Target
	}
	var groups []wgroup
	var cost uint64
	for i := range batch {
		r := &batch[i]
		block := r.Line / w.linesBlock
		gi := -1
		for j := range groups {
			if groups[j].block == block && groups[j].write == r.Write {
				gi = j
				break
			}
		}
		if gi < 0 {
			cost += w.cfg.CompareCycles
			groups = append(groups, wgroup{
				block: block, write: r.Write,
				minLine: r.Line, maxLine: r.Line,
				cpu: r.CPU, critical: r.Critical,
				targets: append(w.getTargets(), mshr.Target{Line: r.Line, Token: r.Token, Payload: r.Payload}),
			})
			continue
		}
		g := &groups[gi]
		cost += w.cfg.MergeCycles
		w.stats.FirstPhaseMerges++
		if r.Line < g.minLine {
			g.minLine = r.Line
		}
		if r.Line > g.maxLine {
			g.maxLine = r.Line
		}
		g.critical = g.critical || r.Critical
		g.targets = append(g.targets, mshr.Target{Line: r.Line, Token: r.Token, Payload: r.Payload})
	}
	w.stats.DMCCycles += cost
	done := closeTick + cost

	// Per-request latency: buffer wait + grouping, ending when the warp's
	// packets reach the queue.
	for i := range batch {
		w.stats.RequestLatency += done - batch[i].pushTick
	}
	w.stats.LatencySamples += uint64(m)

	// Each group's span stays inside one block; split it into legal HMC
	// packet sizes (largest-first, capped by the MSHR span limit). A chunk
	// nobody waits on — a hole in the span — fetches nothing and is
	// skipped.
	for gi := range groups {
		g := &groups[gi]
		base := g.minLine
		length := int(g.maxLine-g.minLine) + 1
		single := true
		for length > 0 {
			size := 1
			switch {
			case length >= 4:
				size = 4
			case length >= 2:
				size = 2
			}
			if size > mshr.MaxLines {
				size = mshr.MaxLines
			}
			if single && size == length {
				// Common case: the whole group is one legal packet — hand
				// the target slice over without copying.
				w.enqueue(done, wpacket{
					baseLine: base, lines: size, write: g.write,
					targets: g.targets, ready: done, cpu: g.cpu, critical: g.critical,
				})
				g.targets = nil
				break
			}
			single = false
			var targets []mshr.Target
			for _, t := range g.targets {
				if t.Line >= base && t.Line < base+uint64(size) {
					if targets == nil {
						targets = w.getTargets()
					}
					targets = append(targets, t)
				}
			}
			if targets != nil {
				w.enqueue(done, wpacket{
					baseLine: base, lines: size, write: g.write,
					targets: targets, ready: done, cpu: g.cpu, critical: g.critical,
				})
			}
			base += uint64(size)
			length -= size
		}
		if g.targets != nil {
			w.putTargets(g.targets)
		}
	}
}

// enqueue appends a packet to the queue, maintaining the same peak and
// fill-episode accounting as the two-phase CRQ.
func (w *warp) enqueue(now uint64, p wpacket) {
	if w.fillCount == 0 {
		w.fillStart = now
	}
	w.queue = append(w.queue, p)
	w.stats.Packets++
	if n := w.qLen(); n > w.stats.CRQPeak {
		w.stats.CRQPeak = n
	}
	w.fillCount++
	if w.fillCount >= w.cfg.MSHR.Entries {
		w.stats.CRQFillCycles += now - w.fillStart
		w.stats.CRQFills++
		w.fillCount = 0
	}
}

// selectReady rotates the scheduler-preferred ready packet to the queue
// head, keeping every other packet in FIFO order; see the two-phase
// coalescer's selectReady for the policy contract.
func (w *warp) selectReady(now uint64) {
	best := -1
	for i := w.qHead; i < len(w.queue); i++ {
		p := &w.queue[i]
		if p.ready > now {
			continue
		}
		if best < 0 || w.schedBetter(p, &w.queue[best]) {
			best = i
		}
	}
	if best <= w.qHead {
		return
	}
	sel := w.queue[best]
	copy(w.queue[w.qHead+1:best+1], w.queue[w.qHead:best])
	w.queue[w.qHead] = sel
}

// schedBetter ranks two ready packets under SchedHetero: criticality
// first, then fewest issued bytes per lane, FIFO order on ties.
func (w *warp) schedBetter(a, b *wpacket) bool {
	if a.critical != b.critical {
		return a.critical
	}
	if ab, bb := w.laneBytes[a.cpu], w.laneBytes[b.cpu]; ab != bb {
		return ab < bb
	}
	return false
}

// drainQueue advances the queue head into the MSHRs: second-phase
// coalescing, entry allocation and memory dispatch — the same rules as
// the two-phase coalescer's drainCRQ.
func (w *warp) drainQueue(now uint64) {
	for w.qLen() > 0 {
		if w.laneBytes != nil && w.qLen() > 1 && !w.qFront().blocked {
			w.selectReady(now)
		}
		p := w.qFront()
		if p.ready > now {
			return
		}
		t := p.ready
		if p.blocked && w.freedAt > t {
			t = w.freedAt
		}
		if w.lastIssue > t {
			t = w.lastIssue
		}
		minLine, maxLine := p.targets[0].Line, p.targets[0].Line
		for _, tg := range p.targets[1:] {
			if tg.Line < minLine {
				minLine = tg.Line
			}
			if tg.Line > maxLine {
				maxLine = tg.Line
			}
		}
		out, err := w.file.Insert(minLine, int(maxLine-minLine)+1, p.write, p.targets)
		if err != nil {
			if v, ok := invariant.As(err); ok {
				w.setViol(v)
			} else {
				w.setViol(invariant.Violatef(invariant.RuleCRQInsert, now, w.DebugState(),
					"warp packet [line %d, %d lines, write=%v, %d targets] rejected by MSHR file: %v",
					p.baseLine, p.lines, p.write, len(p.targets), err))
			}
			w.qPop()
			return
		}
		issuedSubs := 0
		for _, e := range out.Issued {
			issuedSubs += len(e.Subs())
		}
		if out.MergedTargets+issuedSubs+len(out.Unplaced) != len(p.targets) {
			w.setViol(invariant.Violatef(invariant.RuleTargetConservation, now, w.DebugState(),
				"%d targets -> %d merged + %d issued + %d unplaced",
				len(p.targets), out.MergedTargets, issuedSubs, len(out.Unplaced)))
			w.qPop()
			return
		}
		for _, e := range out.Issued {
			w.stats.HMCRequests++
			res := w.issue(t, e)
			w.stats.LinkRetryRounds += uint64(res.Retries)
			if res.Dropped {
				w.stats.DroppedPackets++
				res.Done = coalescer.NeverTick
			} else if res.Fault {
				w.stats.PoisonedPackets++
			}
			if w.laneBytes != nil {
				w.laneBytes[p.cpu] += uint64(e.Lines()) * uint64(w.cfg.LineBytes)
			}
			w.inflight = wcompletionPush(w.inflight, wcompletion{
				tick: res.Done, entry: e, issuedAt: t, fault: res.Fault, attempt: p.attempt,
				cpu: p.cpu, critical: p.critical,
			})
		}
		w.lastIssue = t
		if len(out.Unplaced) > 0 {
			p.targets = append(p.targets[:0], out.Unplaced...)
			p.blocked = true
			return
		}
		w.qPop()
	}
}

func (w *warp) completeOne() {
	var item wcompletion
	w.inflight, item = wcompletionPop(w.inflight)
	e := item.entry
	baseLine, lines, write := e.BaseLine(), e.Lines(), e.Write()
	subs, err := w.file.Complete(e)
	if err != nil {
		if v, ok := invariant.As(err); ok {
			w.setViol(v)
		} else if w.viol == nil {
			w.viol = err
		}
		return
	}
	w.freedAt = item.tick
	if item.fault && item.attempt < w.maxPacketRetries() {
		w.requeueFailed(item.tick, item.attempt, baseLine, lines, write, subs, item.cpu, item.critical)
	} else {
		if item.fault {
			w.stats.FailedTargets += uint64(len(subs))
		}
		w.complete(item.tick, subs, item.fault)
	}
	w.drainQueue(item.tick)
}

func (w *warp) maxPacketRetries() int {
	if w.cfg.MaxPacketRetries == 0 {
		return 8
	}
	return w.cfg.MaxPacketRetries
}

// requeueFailed schedules a failed span for re-issue after a capped
// exponential backoff, exactly as the two-phase coalescer does.
func (w *warp) requeueFailed(now uint64, attempt int, baseLine uint64, lines int, write bool, subs []mshr.Sub, cpu uint8, critical bool) {
	base := w.cfg.RetryBackoffCycles
	if base == 0 {
		base = 64
	}
	cap := w.cfg.RetryBackoffCap
	if cap == 0 {
		cap = 4096
	}
	backoff := base << uint(attempt)
	if backoff > cap || backoff < base {
		backoff = cap
	}
	w.stats.RetriedPackets++
	w.stats.RetryBackoffCycles += backoff
	targets := w.getTargets()
	for _, s := range subs {
		targets = append(targets, mshr.Target{Line: baseLine + uint64(s.LineID), Token: s.Token, Payload: s.Payload})
	}
	p := wpacket{
		baseLine: baseLine, lines: lines, write: write, targets: targets,
		ready: now + backoff, attempt: attempt + 1, seq: w.retrySeq,
		cpu: cpu, critical: critical,
	}
	w.retrySeq++
	w.retryQ = wretryPush(w.retryQ, p)
}

// releaseRetries moves failed spans whose backoff expired back into the
// queue.
func (w *warp) releaseRetries(now uint64) {
	for len(w.retryQ) > 0 && w.retryQ[0].ready <= now {
		var p wpacket
		w.retryQ, p = wretryPop(w.retryQ)
		w.enqueue(p.ready, p)
	}
}

// queueNextReady returns the earliest ready tick among queued packets:
// the head's under FIFO (strict order), the minimum over the queue under
// the heterogeneity-aware scheduler, which may issue out of FIFO order.
func (w *warp) queueNextReady() uint64 {
	if w.laneBytes == nil || w.qFront().blocked {
		return w.qFront().ready
	}
	next := w.qFront().ready
	for i := w.qHead + 1; i < len(w.queue); i++ {
		if r := w.queue[i].ready; r < next {
			next = r
		}
	}
	return next
}

// NextEvent returns the earliest tick at which Advance makes progress.
func (w *warp) NextEvent() (uint64, bool) {
	next := ^uint64(0)
	for i := range w.lanes {
		l := &w.lanes[i]
		if len(l.reqs) > 0 && l.since+w.timeout() < next {
			next = l.since + w.timeout()
		}
	}
	if len(w.inflight) > 0 && w.inflight[0].tick < next {
		next = w.inflight[0].tick
	}
	if len(w.retryQ) > 0 && w.retryQ[0].ready < next {
		next = w.retryQ[0].ready
	}
	if w.qLen() > 0 {
		if ready := w.queueNextReady(); ready > w.lastAdvance && ready < next {
			next = ready
		}
	}
	return next, next != ^uint64(0)
}

// Drain closes every open warp and runs the clock forward until idle,
// with the same watchdog and stuck-queue diagnostics as the two-phase
// coalescer.
func (w *warp) Drain(now uint64) (uint64, error) {
	w.Advance(now)
	for i := range w.lanes {
		if len(w.lanes[i].reqs) > 0 {
			w.closeWarp(now, i, closeDrain)
		}
	}
	idle := now
	for len(w.inflight) > 0 || w.qLen() > 0 || len(w.retryQ) > 0 {
		if w.viol != nil {
			return idle, w.viol
		}
		next := ^uint64(0)
		if len(w.inflight) > 0 && w.inflight[0].tick != coalescer.NeverTick {
			next = w.inflight[0].tick
		}
		if len(w.retryQ) > 0 && w.retryQ[0].ready < next {
			next = w.retryQ[0].ready
		}
		if w.qLen() > 0 {
			if ready := w.queueNextReady(); ready > idle && ready < next {
				next = ready
			}
		}
		if next == ^uint64(0) {
			if werr := w.WatchdogError(); werr != nil {
				return idle, werr
			}
			v := invariant.Violatef(invariant.RuleCRQStuck, idle, w.DebugState(),
				"warp queue stuck with no requests in flight (%d queued, MSHR free=%d)",
				w.qLen(), w.file.Free())
			w.setViol(v)
			return idle, v
		}
		if next > idle {
			idle = next
		}
		w.releaseRetries(idle)
		if len(w.inflight) > 0 && w.inflight[0].tick <= idle {
			w.completeOne()
		}
		w.drainQueue(idle)
	}
	if w.viol != nil {
		return idle, w.viol
	}
	return idle, nil
}

func (w *warp) Err() error { return w.viol }

func (w *warp) setViol(v *invariant.Violation) {
	w.check.Record(v)
	if w.viol == nil {
		w.viol = v
	}
}

func (w *warp) Stats() coalescer.Stats { return w.stats }

func (w *warp) MSHRStats() mshr.Stats { return w.file.Stats() }

// QueueDepths reports the total warp-buffered requests and the packet
// queue occupancy.
func (w *warp) QueueDepths() (pending, crq int) {
	for i := range w.lanes {
		pending += len(w.lanes[i].reqs)
	}
	return pending, w.qLen()
}

func (w *warp) DebugState() string {
	open := 0
	for i := range w.lanes {
		if len(w.lanes[i].reqs) > 0 {
			open++
		}
	}
	s := fmt.Sprintf("lastAdvance=%d freedAt=%d lastIssue=%d free=%d openWarps=%d",
		w.lastAdvance, w.freedAt, w.lastIssue, w.file.Free(), open)
	if w.qLen() > 0 {
		p := *w.qFront()
		s += fmt.Sprintf(" head{base=%d lines=%d write=%v ready=%d blocked=%v targets=%d}",
			p.baseLine, p.lines, p.write, p.ready, p.blocked, len(p.targets))
	}
	return s
}

func (w *warp) SetChecker(ck *invariant.Checker) {
	w.check = ck
	w.file.SetChecker(ck)
}

// CheckDrained audits the end-of-run conservation laws.
func (w *warp) CheckDrained(tick uint64) error {
	for i := range w.lanes {
		if n := len(w.lanes[i].reqs); n != 0 {
			return w.check.Record(invariant.Violatef(invariant.RuleQueueLeak, tick,
				w.DebugState(), "%d request(s) left in lane %d's warp after drain", n, i))
		}
	}
	if n := w.qLen(); n != 0 {
		return w.check.Record(invariant.Violatef(invariant.RuleQueueLeak, tick,
			w.DebugState(), "%d packet(s) left in the warp queue after drain", n))
	}
	if n := len(w.retryQ); n != 0 {
		return w.check.Record(invariant.Violatef(invariant.RuleQueueLeak, tick,
			w.DebugState(), "%d failed span(s) left in the retry queue after drain", n))
	}
	if n := len(w.inflight); n != 0 {
		return w.check.Record(invariant.Violatef(invariant.RuleQueueLeak, tick,
			w.DebugState(), "%d request(s) still in flight after drain", n))
	}
	return w.file.CheckLeaks(tick)
}

// WatchdogError describes the oldest response that will never arrive, or
// nil when every in-flight response is still expected. The message splices
// coalescer.ErrWatchdog so soak harnesses classify it identically.
func (w *warp) WatchdogError() error {
	dropped := 0
	var oldest *wcompletion
	for i := range w.inflight {
		it := &w.inflight[i]
		if it.tick != coalescer.NeverTick {
			continue
		}
		dropped++
		if oldest == nil || it.issuedAt < oldest.issuedAt ||
			(it.issuedAt == oldest.issuedAt && it.entry.Index() < oldest.entry.Index()) {
			oldest = it
		}
	}
	if oldest == nil {
		return nil
	}
	e := oldest.entry
	return fmt.Errorf("frontend(warp): %w: %d response(s) never arrived; oldest: line %d "+
		"(MSHR entry %d, %d lines, write=%v, %d waiters, issued at %d); %s",
		coalescer.ErrWatchdog, dropped, e.BaseLine(), e.Index(), e.Lines(), e.Write(),
		len(e.Subs()), oldest.issuedAt, w.DebugState())
}

// DoomedTokens visits the waiter tokens of dropped in-flight requests.
func (w *warp) DoomedTokens(fn func(token uint64)) {
	for i := range w.inflight {
		it := &w.inflight[i]
		if it.tick != coalescer.NeverTick {
			continue
		}
		for _, sub := range it.entry.Subs() {
			fn(sub.Token)
		}
	}
}

// The heaps are hand-inlined like the two-phase coalescer's, mirroring
// container/heap's sift order so same-tick pops are deterministic.

func wcompletionPush(h []wcompletion, x wcompletion) []wcompletion {
	h = append(h, x)
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if h[i].tick >= h[p].tick {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	return h
}

func wcompletionPop(h []wcompletion) ([]wcompletion, wcompletion) {
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	item := h[n]
	h = h[:n]
	for i := 0; ; {
		j := 2*i + 1
		if j >= n {
			break
		}
		if r := j + 1; r < n && h[r].tick < h[j].tick {
			j = r
		}
		if h[j].tick >= h[i].tick {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	return h, item
}

func wretryLess(a, b *wpacket) bool {
	if a.ready != b.ready {
		return a.ready < b.ready
	}
	return a.seq < b.seq
}

func wretryPush(h []wpacket, x wpacket) []wpacket {
	h = append(h, x)
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if !wretryLess(&h[i], &h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	return h
}

func wretryPop(h []wpacket) ([]wpacket, wpacket) {
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	item := h[n]
	h = h[:n]
	for i := 0; ; {
		j := 2*i + 1
		if j >= n {
			break
		}
		if r := j + 1; r < n && wretryLess(&h[r], &h[j]) {
			j = r
		}
		if !wretryLess(&h[j], &h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	return h, item
}
