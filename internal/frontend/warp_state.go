package frontend

import (
	"fmt"

	"hmccoal/internal/coalescer"
	"hmccoal/internal/mshr"
)

// warpLaneState is one captured open warp buffer.
type warpLaneState struct {
	reqs  []wreq
	since uint64
}

// wcompletionState is one captured in-flight completion; the MSHR entry
// pointer is stored as its stable index and re-pointed on restore.
type wcompletionState struct {
	tick       uint64
	entryIndex int
	issuedAt   uint64
	fault      bool
	attempt    int
	cpu        uint8
	critical   bool
}

// warpSnap is an opaque deep copy of the warp unit's mutable state: every
// open warp buffer, the packet queue (linearized head-first), both heaps
// in verbatim array order, the MSHR file and every statistic.
type warpSnap struct {
	lanes    []warpLaneState
	queue    []wpacket // FIFO order, head first; targets deep-copied
	inflight []wcompletionState
	retryQ   []wpacket

	freedAt     uint64
	lastIssue   uint64
	lastAdvance uint64
	fillStart   uint64
	fillCount   int
	stats       coalescer.Stats
	retrySeq    uint64
	laneBytes   []uint64

	file *mshr.FileState
}

func (*warpSnap) frontendSnapshot() {}

func saveWPacket(p *wpacket) wpacket {
	cp := *p
	cp.targets = append([]mshr.Target(nil), p.targets...)
	return cp
}

// SaveState deep-copies the warp unit's mutable state; it refuses to
// snapshot after a latched conservation violation.
func (w *warp) SaveState() (Snapshot, error) {
	if w.viol != nil {
		return nil, fmt.Errorf("frontend: cannot snapshot after violation: %w", w.viol)
	}
	st := &warpSnap{
		freedAt:     w.freedAt,
		lastIssue:   w.lastIssue,
		lastAdvance: w.lastAdvance,
		fillStart:   w.fillStart,
		fillCount:   w.fillCount,
		stats:       w.stats,
		retrySeq:    w.retrySeq,
		file:        w.file.SaveState(),
	}
	st.lanes = make([]warpLaneState, len(w.lanes))
	for i := range w.lanes {
		st.lanes[i] = warpLaneState{
			reqs:  append([]wreq(nil), w.lanes[i].reqs...),
			since: w.lanes[i].since,
		}
	}
	st.queue = make([]wpacket, 0, w.qLen())
	for i := w.qHead; i < len(w.queue); i++ {
		st.queue = append(st.queue, saveWPacket(&w.queue[i]))
	}
	st.inflight = make([]wcompletionState, len(w.inflight))
	for i := range w.inflight {
		st.inflight[i] = wcompletionState{
			tick:       w.inflight[i].tick,
			entryIndex: w.inflight[i].entry.Index(),
			issuedAt:   w.inflight[i].issuedAt,
			fault:      w.inflight[i].fault,
			attempt:    w.inflight[i].attempt,
			cpu:        w.inflight[i].cpu,
			critical:   w.inflight[i].critical,
		}
	}
	st.retryQ = make([]wpacket, len(w.retryQ))
	for i := range w.retryQ {
		st.retryQ[i] = saveWPacket(&w.retryQ[i])
	}
	if w.laneBytes != nil {
		st.laneBytes = append([]uint64(nil), w.laneBytes...)
	}
	return st, nil
}

// RestoreState replays a snapshot into the warp unit, which must have been
// built from the same configuration. The queue is re-laid-out from index 0
// while both heaps restore in verbatim array order, so future pops break
// ties exactly as the snapshotted run would.
func (w *warp) RestoreState(s Snapshot) error {
	st, ok := s.(*warpSnap)
	if !ok {
		return fmt.Errorf("frontend: %v snapshot restored into warp frontend", kindOf(s))
	}
	if w.viol != nil {
		return fmt.Errorf("frontend: cannot restore after violation: %w", w.viol)
	}
	if len(st.lanes) != len(w.lanes) {
		return fmt.Errorf("frontend: snapshot has %d lanes, warp has %d", len(st.lanes), len(w.lanes))
	}
	if err := w.file.RestoreState(st.file); err != nil {
		return err
	}
	for i := range w.lanes {
		w.lanes[i].reqs = append(w.lanes[i].reqs[:0], st.lanes[i].reqs...)
		w.lanes[i].since = st.lanes[i].since
	}
	w.queue = w.queue[:0]
	w.qHead = 0
	for i := range st.queue {
		w.queue = append(w.queue, saveWPacket(&st.queue[i]))
	}
	w.inflight = w.inflight[:0]
	for i := range st.inflight {
		w.inflight = append(w.inflight, wcompletion{
			tick:     st.inflight[i].tick,
			entry:    w.file.EntryAt(st.inflight[i].entryIndex),
			issuedAt: st.inflight[i].issuedAt,
			fault:    st.inflight[i].fault,
			attempt:  st.inflight[i].attempt,
			cpu:      st.inflight[i].cpu,
			critical: st.inflight[i].critical,
		})
	}
	w.retryQ = w.retryQ[:0]
	for i := range st.retryQ {
		w.retryQ = append(w.retryQ, saveWPacket(&st.retryQ[i]))
	}
	w.freedAt = st.freedAt
	w.lastIssue = st.lastIssue
	w.lastAdvance = st.lastAdvance
	w.fillStart = st.fillStart
	w.fillCount = st.fillCount
	w.stats = st.stats
	w.retrySeq = st.retrySeq
	if st.laneBytes != nil {
		w.laneBytes = append(w.laneBytes[:0], st.laneBytes...)
	} else if w.laneBytes != nil {
		for i := range w.laneBytes {
			w.laneBytes[i] = 0
		}
	}
	return nil
}
