package frontend

import (
	"reflect"
	"strings"
	"testing"

	"hmccoal/internal/coalescer"
	"hmccoal/internal/mshr"
)

func TestParseKind(t *testing.T) {
	cases := []struct {
		in   string
		want Kind
		err  bool
	}{
		{"", KindTwoPhase, false},
		{"two-phase", KindTwoPhase, false},
		{"warp", KindWarp, false},
		{"Warp", 0, true},
		{"gpu", 0, true},
	}
	for _, c := range cases {
		got, err := ParseKind(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseKind(%q): err = %v, want err = %v", c.in, err, c.err)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseKind(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if err := Kind(99).Validate(); err == nil {
		t.Errorf("Kind(99).Validate() accepted an unknown kind")
	}
}

func TestParseSched(t *testing.T) {
	cases := []struct {
		in   string
		want SchedKind
		err  bool
	}{
		{"", SchedFRFCFS, false},
		{"frfcfs", SchedFRFCFS, false},
		{"hetero", SchedHetero, false},
		{"FRFCFS", 0, true},
		{"rr", 0, true},
	}
	for _, c := range cases {
		got, err := ParseSched(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseSched(%q): err = %v, want err = %v", c.in, err, c.err)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseSched(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if err := SchedKind(99).Validate(); err == nil {
		t.Errorf("SchedKind(99).Validate() accepted an unknown scheduler")
	}
}

func TestNameRoundTrips(t *testing.T) {
	for _, name := range Kinds() {
		k, err := ParseKind(name)
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", name, err)
		}
		if k.String() != name {
			t.Errorf("ParseKind(%q).String() = %q", name, k.String())
		}
	}
	for _, name := range Scheds() {
		s, err := ParseSched(name)
		if err != nil {
			t.Fatalf("ParseSched(%q): %v", name, err)
		}
		if s.String() != name {
			t.Errorf("ParseSched(%q).String() = %q", name, s.String())
		}
	}
}

// testConfig is the shared front-end geometry the behavioral tests run on.
func testConfig(kind Kind, sched SchedKind) Config {
	return Config{Kind: kind, Sched: sched, Lanes: 4, Coalescer: coalescer.DefaultConfig()}
}

// fakeMem is a deterministic memory model: every packet completes after a
// latency proportional to its line span, and the completion callback
// records every waiter token with its arrival tick.
type fakeMem struct {
	issued int
	tokens []uint64
	ticks  []uint64
}

func (m *fakeMem) issue(tick uint64, e *mshr.Entry) coalescer.IssueResult {
	m.issued++
	return coalescer.IssueResult{Done: tick + 40 + 4*uint64(e.Lines())}
}

func (m *fakeMem) complete(tick uint64, subs []mshr.Sub, fault bool) {
	for _, s := range subs {
		m.tokens = append(m.tokens, s.Token)
		m.ticks = append(m.ticks, tick)
	}
}

// drive pushes a deterministic mixed stream — runs of adjacent lines,
// strided singles, a write burst — through a front-end and drains it.
func drive(t *testing.T, f Frontend, mem *fakeMem, n int) {
	t.Helper()
	now := uint64(0)
	for i := 0; i < n; i++ {
		line := uint64(i/8)*32 + uint64(i%8) // runs of 8 adjacent lines
		if i%5 == 4 {
			line = 1 << 20 >> 6 * uint64(i) // far stride breaking the run
		}
		f.Push(now, coalescer.Request{
			Line:     line,
			Write:    i%7 == 0,
			Payload:  8,
			Token:    uint64(i),
			CPU:      uint8(i % 4),
			Critical: i%3 == 0,
		})
		now += 2
		f.Advance(now)
	}
	if _, err := f.Drain(now); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := f.CheckDrained(now + 1); err != nil {
		t.Fatalf("CheckDrained: %v", err)
	}
}

func allCombos() []Config {
	var cfgs []Config
	for _, k := range []Kind{KindTwoPhase, KindWarp} {
		for _, s := range []SchedKind{SchedFRFCFS, SchedHetero} {
			cfgs = append(cfgs, testConfig(k, s))
		}
	}
	return cfgs
}

func TestFactoryKinds(t *testing.T) {
	for _, cfg := range allCombos() {
		mem := &fakeMem{}
		f, err := New(cfg, mem.issue, mem.complete)
		if err != nil {
			t.Fatalf("New(%v/%v): %v", cfg.Kind, cfg.Sched, err)
		}
		if f.Kind() != cfg.Kind {
			t.Errorf("New(%v).Kind() = %v", cfg.Kind, f.Kind())
		}
	}
	bad := testConfig(Kind(42), SchedFRFCFS)
	if _, err := New(bad, (&fakeMem{}).issue, (&fakeMem{}).complete); err == nil {
		t.Errorf("New accepted an unknown frontend kind")
	}
	bad = testConfig(KindTwoPhase, SchedKind(42))
	if _, err := New(bad, (&fakeMem{}).issue, (&fakeMem{}).complete); err == nil {
		t.Errorf("New accepted an unknown scheduler kind")
	}
}

// TestDeterministicAndConserving pins the front-end contract: identical
// push sequences yield identical completions and statistics, every token
// pushed comes back exactly once, and the request count is conserved.
func TestDeterministicAndConserving(t *testing.T) {
	const n = 400
	for _, cfg := range allCombos() {
		cfg := cfg
		t.Run(cfg.Kind.String()+"/"+cfg.Sched.String(), func(t *testing.T) {
			runOne := func() *fakeMem {
				mem := &fakeMem{}
				f, err := New(cfg, mem.issue, mem.complete)
				if err != nil {
					t.Fatal(err)
				}
				drive(t, f, mem, n)
				if got := f.Stats().Requests; got != n {
					t.Fatalf("Stats().Requests = %d, want %d", got, n)
				}
				return mem
			}
			a, b := runOne(), runOne()
			if !reflect.DeepEqual(a.tokens, b.tokens) || !reflect.DeepEqual(a.ticks, b.ticks) {
				t.Fatalf("identical runs produced different completions")
			}
			seen := make(map[uint64]int, n)
			for _, tok := range a.tokens {
				seen[tok]++
			}
			if len(seen) != n {
				t.Fatalf("completed %d distinct tokens, want %d", len(seen), n)
			}
			for tok, c := range seen {
				if c != 1 {
					t.Fatalf("token %d completed %d times", tok, c)
				}
			}
		})
	}
}

// TestSnapshotRoundTrip pins SaveState/RestoreState: a restored front-end
// replays the suffix of the run byte-identically to the original.
func TestSnapshotRoundTrip(t *testing.T) {
	const half = 150
	for _, cfg := range allCombos() {
		cfg := cfg
		t.Run(cfg.Kind.String()+"/"+cfg.Sched.String(), func(t *testing.T) {
			suffix := func(f Frontend, mem *fakeMem, from uint64) *fakeMem {
				now := from
				for i := 0; i < half; i++ {
					f.Push(now, coalescer.Request{
						Line: uint64(i), Payload: 8, Token: uint64(1000 + i), CPU: uint8(i % 4),
					})
					now += 2
					f.Advance(now)
				}
				if _, err := f.Drain(now); err != nil {
					t.Fatalf("Drain: %v", err)
				}
				return mem
			}

			memA := &fakeMem{}
			a, err := New(cfg, memA.issue, memA.complete)
			if err != nil {
				t.Fatal(err)
			}
			now := uint64(0)
			for i := 0; i < half; i++ {
				a.Push(now, coalescer.Request{Line: uint64(i) * 3, Payload: 8, Token: uint64(i), CPU: uint8(i % 4)})
				now += 2
				a.Advance(now)
			}
			snap, err := a.SaveState()
			if err != nil {
				t.Fatalf("SaveState: %v", err)
			}

			memB := &fakeMem{}
			b, err := New(cfg, memB.issue, memB.complete)
			if err != nil {
				t.Fatal(err)
			}
			if err := b.RestoreState(snap); err != nil {
				t.Fatalf("RestoreState: %v", err)
			}

			sa := suffix(a, memA, now)
			sb := suffix(b, memB, now)
			// The prefix's completions only reached memA, so compare suffixes.
			ta := sa.tokens[len(sa.tokens)-half:]
			tb := sb.tokens[len(sb.tokens)-half:]
			if !reflect.DeepEqual(ta, tb) {
				t.Fatalf("restored front-end diverged on the suffix")
			}
			if asr, bsr := a.Stats(), b.Stats(); asr != bsr {
				t.Fatalf("post-restore stats diverge:\n%+v\n%+v", asr, bsr)
			}
		})
	}
}

func TestRestoreKindMismatch(t *testing.T) {
	kinds := []Kind{KindTwoPhase, KindWarp}
	snaps := make([]Snapshot, len(kinds))
	for i, k := range kinds {
		mem := &fakeMem{}
		f, err := New(testConfig(k, SchedFRFCFS), mem.issue, mem.complete)
		if err != nil {
			t.Fatal(err)
		}
		if snaps[i], err = f.SaveState(); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range kinds {
		mem := &fakeMem{}
		f, err := New(testConfig(k, SchedFRFCFS), mem.issue, mem.complete)
		if err != nil {
			t.Fatal(err)
		}
		for j := range kinds {
			err := f.RestoreState(snaps[j])
			if (i == j) != (err == nil) {
				t.Errorf("restore %v snapshot into %v front-end: err = %v", kinds[j], k, err)
			}
			if i != j && err != nil && !strings.Contains(err.Error(), kinds[j].String()) {
				t.Errorf("mismatch error %q does not name the snapshot kind %v", err, kinds[j])
			}
		}
	}
}

func TestCoalescerUnwrap(t *testing.T) {
	mem := &fakeMem{}
	tp, err := New(testConfig(KindTwoPhase, SchedFRFCFS), mem.issue, mem.complete)
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := Coalescer(tp); !ok || c == nil {
		t.Errorf("Coalescer failed to unwrap the two-phase front-end")
	}
	w, err := New(testConfig(KindWarp, SchedFRFCFS), mem.issue, mem.complete)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Coalescer(w); ok {
		t.Errorf("Coalescer unwrapped a warp front-end")
	}
}

// TestTwoPhaseWrapperAddsNoAllocs pins the zero-cost adaptation: building
// and driving the default front-end through the interface allocates
// exactly as much as driving the bare coalescer, so the pre-frontend alloc
// profile of the simulator's hot path is unchanged.
func TestTwoPhaseWrapperAddsNoAllocs(t *testing.T) {
	cfg := testConfig(KindTwoPhase, SchedFRFCFS)
	mem := &fakeMem{}

	bare := testing.AllocsPerRun(10, func() {
		c, err := coalescer.New(cfg.Coalescer, mem.issue, mem.complete)
		if err != nil {
			t.Fatal(err)
		}
		c.Push(0, coalescer.Request{Line: 1, Payload: 8})
		c.Advance(100)
		if _, err := c.Drain(100); err != nil {
			t.Fatal(err)
		}
	})
	wrapped := testing.AllocsPerRun(10, func() {
		f, err := New(cfg, mem.issue, mem.complete)
		if err != nil {
			t.Fatal(err)
		}
		f.Push(0, coalescer.Request{Line: 1, Payload: 8})
		f.Advance(100)
		if _, err := f.Drain(100); err != nil {
			t.Fatal(err)
		}
	})
	if wrapped > bare {
		t.Errorf("two-phase wrapper allocates: %v allocs via frontend.New, %v bare", wrapped, bare)
	}
}
