// Package frontend puts the coalescing front-end — the unit between the
// shared LLC and the memory backend — behind a pluggable interface, so the
// evaluation can swap how misses are gathered into memory packets without
// touching the simulator's tick loop. Two front-ends are provided:
//
//	two-phase  the paper's CPU coalescer (internal/coalescer): input
//	           buffer, odd–even merge sorting network, DMC unit, CRQ and
//	           dynamic MSHRs — the default, byte-identical to the
//	           pre-frontend simulator
//	warp       a GPU-style coalescing unit: per-lane warp buffers that
//	           close on width or timeout and merge at block granularity
//	           in first-touch order, the memory-access coalescing found
//	           in GPGPU SIMT front-ends
//
// Orthogonally to the front-end kind, the issue policy that picks which
// queued packet reaches the MSHRs next is pluggable: strict FR-FCFS (the
// default) or a heterogeneity-aware scheduler that favors criticality-
// hinted requests and starved lanes over bandwidth hogs.
//
// Both front-ends speak the coalescer's request/callback interface and
// maintain the same statistics shape (coalescer.Stats, mshr.Stats), so
// every metric and table in the evaluation renders identically whichever
// front-end is plugged in.
package frontend

import (
	"fmt"

	"hmccoal/internal/coalescer"
	"hmccoal/internal/invariant"
	"hmccoal/internal/mshr"
)

// Kind selects a front-end implementation. The zero value is the two-phase
// coalescer, so configurations that predate front-end selection are
// unchanged.
type Kind int

// Front-end kinds.
const (
	// KindTwoPhase is the paper's two-phase CPU coalescer.
	KindTwoPhase Kind = iota
	// KindWarp is the GPU-style warp coalescing unit.
	KindWarp
)

// String names the kind as the CLI -frontend flag spells it.
func (k Kind) String() string {
	switch k {
	case KindTwoPhase:
		return "two-phase"
	case KindWarp:
		return "warp"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Validate rejects kinds no factory case exists for.
func (k Kind) Validate() error {
	switch k {
	case KindTwoPhase, KindWarp:
		return nil
	}
	return fmt.Errorf("frontend: unknown frontend kind %d", int(k))
}

// ParseKind maps a -frontend flag value to a Kind. The empty string means
// the default two-phase coalescer.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "two-phase":
		return KindTwoPhase, nil
	case "warp":
		return KindWarp, nil
	}
	return 0, fmt.Errorf("frontend: unknown frontend %q (have two-phase, warp)", s)
}

// Kinds lists the recognized front-end names for usage messages.
func Kinds() []string { return []string{"two-phase", "warp"} }

// SchedKind selects the issue policy inside a front-end. The zero value is
// strict FR-FCFS, the policy every pre-scheduler configuration used.
type SchedKind int

// Scheduler kinds.
const (
	// SchedFRFCFS issues queued packets strictly in arrival order.
	SchedFRFCFS SchedKind = iota
	// SchedHetero is the heterogeneity-aware policy: criticality-hinted
	// requests first, then the lane with the fewest issued bytes.
	SchedHetero
)

// String names the scheduler as the CLI -sched flag spells it.
func (k SchedKind) String() string {
	switch k {
	case SchedFRFCFS:
		return "frfcfs"
	case SchedHetero:
		return "hetero"
	}
	return fmt.Sprintf("SchedKind(%d)", int(k))
}

// Validate rejects scheduler values no issue path exists for.
func (k SchedKind) Validate() error {
	switch k {
	case SchedFRFCFS, SchedHetero:
		return nil
	}
	return fmt.Errorf("frontend: unknown scheduler kind %d", int(k))
}

// ParseSched maps a -sched flag value to a SchedKind. The empty string
// means the default FR-FCFS policy.
func ParseSched(s string) (SchedKind, error) {
	switch s {
	case "", "frfcfs":
		return SchedFRFCFS, nil
	case "hetero":
		return SchedHetero, nil
	}
	return 0, fmt.Errorf("frontend: unknown scheduler %q (have frfcfs, hetero)", s)
}

// Scheds lists the recognized scheduler names for usage messages.
func Scheds() []string { return []string{"frfcfs", "hetero"} }

// Snapshot is an opaque deep copy of one front-end's mutable state. It can
// only be restored into a front-end of the same kind and configuration.
type Snapshot interface{ frontendSnapshot() }

// Config parameterizes a front-end: which implementation, which issue
// policy, how many request lanes (CPUs) feed it, and the shared coalescer
// geometry/timing every front-end interprets.
type Config struct {
	// Kind selects the implementation (zero = two-phase).
	Kind Kind
	// Sched selects the issue policy (zero = FR-FCFS).
	Sched SchedKind
	// Lanes is the number of request sources (CPUs); the warp front-end
	// keeps one open warp buffer per lane.
	Lanes int
	// Coalescer is the shared front-end geometry: width, timeout, line and
	// block sizes, MSHR file, phase switches and fault-recovery knobs.
	Coalescer coalescer.Config
}

// Frontend is the coalescing unit under the simulator: it accepts LLC
// misses, batches them into memory packets and dispatches them through the
// issue callback. Implementations are single-goroutine, tick-driven and
// deterministic: the same push sequence produces the same issues,
// completions and statistics.
type Frontend interface {
	// Kind identifies the implementation.
	Kind() Kind
	// Push presents one LLC request at the given tick; ticks must be
	// non-decreasing across Push/Fence/Advance calls.
	Push(now uint64, r coalescer.Request)
	// Fence signals a memory fence: pending batches flush immediately.
	Fence(now uint64)
	// Advance processes time up to now: timeouts, retries, completions.
	Advance(now uint64)
	// NextEvent returns the earliest tick Advance will make progress at.
	NextEvent() (uint64, bool)
	// Drain flushes all pending state and runs the clock until idle.
	Drain(now uint64) (uint64, error)
	// Err returns the first latched conservation violation, or nil.
	Err() error
	// Stats returns a copy of the accumulated front-end statistics.
	Stats() coalescer.Stats
	// MSHRStats exposes the MSHR file counters.
	MSHRStats() mshr.Stats
	// QueueDepths reports input-buffer and packet-queue occupancy.
	QueueDepths() (pending, crq int)
	// DebugState renders internal queue state for deadlock diagnostics.
	DebugState() string
	// SetChecker attaches a runtime invariant checker (nil disables).
	SetChecker(*invariant.Checker)
	// CheckDrained audits the end-of-run conservation laws.
	CheckDrained(tick uint64) error
	// WatchdogError describes responses that will never arrive, or nil.
	WatchdogError() error
	// DoomedTokens visits the waiter tokens of dropped in-flight requests.
	DoomedTokens(fn func(token uint64))
	// SaveState deep-copies the front-end's mutable state; RestoreState
	// replays a snapshot into a front-end of identical kind and config.
	SaveState() (Snapshot, error)
	RestoreState(Snapshot) error
}

// New builds a front-end of the configured kind. issue and complete must
// be non-nil.
func New(cfg Config, issue coalescer.IssueFunc, complete coalescer.CompleteFunc) (Frontend, error) {
	if err := cfg.Kind.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Sched.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Kind {
	case KindTwoPhase:
		ccfg := cfg.Coalescer
		ccfg.Sched = coalescer.Sched(cfg.Sched)
		c, err := coalescer.New(ccfg, issue, complete)
		if err != nil {
			return nil, err
		}
		return (*twoPhase)(c), nil
	case KindWarp:
		return newWarp(cfg, issue, complete)
	}
	return nil, fmt.Errorf("frontend: unknown frontend kind %d", int(cfg.Kind))
}

// twoPhase adapts *coalescer.Coalescer to the Frontend interface. It is a
// named pointer type rather than a wrapper struct so the adaptation is
// allocation-free: converting the coalescer pointer and assigning it to
// the interface never heap-allocates, keeping the default path's alloc
// profile identical to the pre-frontend simulator.
type twoPhase coalescer.Coalescer

// twoPhaseSnap wraps the coalescer's own state type.
type twoPhaseSnap struct{ st *coalescer.State }

func (twoPhaseSnap) frontendSnapshot() {}

func (t *twoPhase) c() *coalescer.Coalescer { return (*coalescer.Coalescer)(t) }

func (t *twoPhase) Kind() Kind { return KindTwoPhase }

func (t *twoPhase) Push(now uint64, r coalescer.Request) { t.c().Push(now, r) }

func (t *twoPhase) Fence(now uint64) { t.c().Fence(now) }

func (t *twoPhase) Advance(now uint64) { t.c().Advance(now) }

func (t *twoPhase) NextEvent() (uint64, bool) { return t.c().NextEvent() }

func (t *twoPhase) Drain(now uint64) (uint64, error) { return t.c().Drain(now) }

func (t *twoPhase) Err() error { return t.c().Err() }

func (t *twoPhase) Stats() coalescer.Stats { return t.c().Stats() }

func (t *twoPhase) MSHRStats() mshr.Stats { return t.c().MSHRStats() }

func (t *twoPhase) QueueDepths() (pending, crq int) { return t.c().QueueDepths() }

func (t *twoPhase) DebugState() string { return t.c().DebugState() }

func (t *twoPhase) SetChecker(ck *invariant.Checker) { t.c().SetChecker(ck) }

func (t *twoPhase) CheckDrained(tick uint64) error { return t.c().CheckDrained(tick) }

func (t *twoPhase) WatchdogError() error { return t.c().WatchdogError() }

func (t *twoPhase) DoomedTokens(fn func(token uint64)) { t.c().DoomedTokens(fn) }

func (t *twoPhase) SaveState() (Snapshot, error) {
	st, err := t.c().SaveState()
	if err != nil {
		return nil, err
	}
	return twoPhaseSnap{st: st}, nil
}

func (t *twoPhase) RestoreState(s Snapshot) error {
	ts, ok := s.(twoPhaseSnap)
	if !ok {
		return fmt.Errorf("frontend: %v snapshot restored into two-phase frontend", kindOf(s))
	}
	return t.c().RestoreState(ts.st)
}

// Coalescer unwraps a Frontend to its *coalescer.Coalescer when the
// front-end is the two-phase unit, for callers needing coalescer-only
// surface (the adaptive timeout, degraded-mode inspection).
func Coalescer(f Frontend) (*coalescer.Coalescer, bool) {
	t, ok := f.(*twoPhase)
	if !ok {
		return nil, false
	}
	return t.c(), true
}

// kindOf names a snapshot's origin kind for mismatch diagnostics.
func kindOf(s Snapshot) Kind {
	switch s.(type) {
	case twoPhaseSnap:
		return KindTwoPhase
	case *warpSnap:
		return KindWarp
	}
	return Kind(-1)
}
