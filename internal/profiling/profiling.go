// Package profiling wires the standard pprof and execution-trace
// collectors into the command-line tools. It exists so every binary
// exposes the same -cpuprofile/-memprofile/-trace workflow without
// repeating the file-handling boilerplate.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Start begins the collectors whose paths are non-empty and returns a stop
// function that flushes and closes them all. The CPU profile and execution
// trace record from Start until stop; the allocation profile is a snapshot
// taken at stop time after a final GC, so it reflects live heap plus
// cumulative allocation counts for the whole run.
func Start(cpuPath, memPath, tracePath string) (func(), error) {
	var stops []func()
	stopAll := func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
	fail := func(err error) (func(), error) {
		stopAll()
		return nil, err
	}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("profiling: cpu: %w", err))
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return fail(err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("profiling: trace: %w", err))
		}
		stops = append(stops, func() {
			trace.Stop()
			f.Close()
		})
	}
	if memPath != "" {
		stops = append(stops, func() {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "profiling: mem: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // flatten transient garbage so live objects stand out
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "profiling: mem: %v\n", err)
			}
		})
	}
	return stopAll, nil
}
