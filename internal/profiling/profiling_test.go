package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesAllArtifacts(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	tr := filepath.Join(dir, "run.trace")
	stop, err := Start(cpu, mem, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles have something to record.
	sink := make([]byte, 0, 1<<16)
	for i := 0; i < 1<<16; i++ {
		sink = append(sink, byte(i))
	}
	_ = sink
	stop()
	for _, p := range []string{cpu, mem, tr} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("%s not written: %v", p, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestStartNoopWithoutPaths(t *testing.T) {
	stop, err := Start("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	stop() // must not panic
}

func TestStartRejectsBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu"), "", ""); err == nil {
		t.Error("unwritable cpu profile path accepted")
	}
}
