package dsweep

import (
	"context"
	"crypto/tls"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// GroupRunner executes one sweep job group on the worker: spec is the
// opaque JSON grid description the coordinator shipped, idxs the grid
// indices to run, and the result is one JSON-encoded cell per index, in
// index order. An error fails the group on the coordinator without a
// requeue, so runners should return errors only for deterministic
// failures — and let genuine crashes crash.
type GroupRunner func(ctx context.Context, spec []byte, idxs []int) ([]json.RawMessage, error)

// WorkOptions tunes a worker process.
type WorkOptions struct {
	// Name identifies the worker in coordinator logs.
	Name string
	// Slots is the number of job groups the worker runs concurrently,
	// each on its own connection (the coordinator treats every connection
	// as an independent work-stealing puller). 0 means 1.
	Slots int
	// DialRetry is the budget for reaching the coordinator: each dial is
	// retried with jittered backoff until it succeeds or this much time
	// passes, so workers may be launched before the coordinator's
	// listener is up. 0 means DefaultDialRetry.
	DialRetry time.Duration
	// Token authenticates the worker to the coordinator: it travels in
	// the Hello and must match the coordinator's -token (or both must be
	// empty). A rejected token is terminal — the slot does not burn its
	// reconnect budget re-presenting credentials the coordinator already
	// refused.
	Token string
	// Reconnects bounds consecutive failed connection attempts after a
	// transport loss: a slot whose connection dies re-dials with jittered
	// backoff, re-handshakes and resumes pulling; the counter resets on
	// every successful handshake, so a long campaign on a flaky network
	// keeps recovering while a dead coordinator exhausts the budget
	// quickly. 0 means DefaultReconnects; negative disables reconnection
	// (any transport loss fails the slot).
	Reconnects int
	// IOTimeout bounds every frame write and every bounded-expectation
	// frame read (the handshake reply), so a stalled or half-open peer
	// can never wedge a slot. Idle waits — a Ready with no work queued —
	// remain unbounded by design, covered by TCP keepalives. 0 means
	// DefaultIOTimeout.
	IOTimeout time.Duration
	// Dial overrides a single dial attempt (tests and chaos injection);
	// nil uses a plain TCP dial. Retry policy stays with the worker.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// CacheStats, when non-nil, is polled after every completed group and
	// its counters shipped in the Result frame, surfacing the worker's
	// trace-cache effectiveness in the coordinator's Status(). It must be
	// safe for concurrent use (slots share one runner).
	CacheStats func() CacheCounts
}

// Defaults for WorkOptions.
const (
	// DefaultDialRetry is the default coordinator dial budget.
	DefaultDialRetry = 10 * time.Second
	// DefaultReconnects is the default bound on consecutive failed
	// reconnection attempts.
	DefaultReconnects = 5
	// DefaultIOTimeout is the default per-frame I/O deadline on both
	// sides of the protocol.
	DefaultIOTimeout = 30 * time.Second
)

func (o WorkOptions) slots() int {
	if o.Slots < 1 {
		return 1
	}
	return o.Slots
}

func (o WorkOptions) dialRetry() time.Duration {
	if o.DialRetry <= 0 {
		return DefaultDialRetry
	}
	return o.DialRetry
}

func (o WorkOptions) reconnects() int {
	if o.Reconnects == 0 {
		return DefaultReconnects
	}
	if o.Reconnects < 0 {
		return 0
	}
	return o.Reconnects
}

func (o WorkOptions) ioTimeout() time.Duration {
	if o.IOTimeout <= 0 {
		return DefaultIOTimeout
	}
	return o.IOTimeout
}

func (o WorkOptions) dialFunc() func(ctx context.Context, addr string) (net.Conn, error) {
	if o.Dial != nil {
		return o.Dial
	}
	var d net.Dialer
	return func(ctx context.Context, addr string) (net.Conn, error) {
		return d.DialContext(ctx, "tcp", addr)
	}
}

// terminalError marks a slot failure that reconnecting cannot fix — a
// rejected handshake (bad token, protocol skew). The slot surfaces it
// immediately instead of burning its reconnect budget.
type terminalError struct{ err error }

func (e *terminalError) Error() string { return e.err.Error() }
func (e *terminalError) Unwrap() error { return e.err }

// testHookBeforeReport, when non-nil, runs after a group's runner returns
// and before its result frame is written — the window a graceful drain
// must not tear (see TestDrainRaceStillDeliversResult).
var testHookBeforeReport func()

// Work runs a sweep worker against the coordinator at addr until the
// coordinator drains it (an explicit Bye) or ctx is cancelled.
// Cancellation drains gracefully: a group already running is finished
// and its result delivered before the slot disconnects — SIGTERM never
// forfeits completed work. A slot whose connection is lost to a
// transport error re-dials with jittered backoff and resumes pulling,
// bounded by WorkOptions.Reconnects consecutive failures. It returns nil
// on a clean drain and the first slot failure otherwise.
func Work(ctx context.Context, addr string, run GroupRunner, opt WorkOptions) error {
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	for s := 0; s < opt.slots(); s++ {
		name := opt.Name
		if opt.slots() > 1 {
			name = fmt.Sprintf("%s/%d", opt.Name, s)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := workSlot(ctx, addr, run, name, opt); err != nil {
				mu.Lock()
				if first == nil {
					first = err
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return first
}

// workSlot runs one pull loop across connection eras: dial, handshake,
// Ready→Job→Result rounds, and on a non-drain transport loss a jittered
// reconnect. attempts counts consecutive failed eras; a successful
// handshake resets it, so the budget bounds how long the slot chases a
// dead coordinator, not how many transient faults a long campaign
// weathers.
func workSlot(ctx context.Context, addr string, run GroupRunner, name string, opt WorkOptions) error {
	jitter := slotSeed(name)
	attempts := 0
	for {
		handshaked, err := slotConn(ctx, addr, run, name, attempts, opt)
		if err == nil || ctx.Err() != nil {
			return nil // drained (coordinator Bye/close or graceful cancel)
		}
		var term *terminalError
		if errors.As(err, &term) {
			return term.err
		}
		if handshaked {
			attempts = 0
		}
		attempts++
		if attempts > opt.reconnects() {
			return fmt.Errorf("dsweep: slot %s: %d consecutive connection failures (budget %d): %w",
				name, attempts, opt.reconnects(), err)
		}
		select {
		case <-time.After(reconnectDelay(jitter, attempts)):
		case <-ctx.Done():
			return nil
		}
	}
}

// slotConn runs one connection era. It reports whether the handshake
// completed (for the reconnect budget) and returns nil only on a clean
// drain: an explicit coordinator Bye or graceful cancellation.
func slotConn(ctx context.Context, addr string, run GroupRunner, name string, era int, opt WorkOptions) (handshaked bool, err error) {
	conn, err := dial(ctx, addr, opt.dialFunc(), opt.dialRetry(), slotSeed(name)^uint64(era))
	if err != nil {
		return false, err
	}
	defer conn.Close()
	enableKeepAlive(conn)
	iot := opt.ioTimeout()

	// busy is false while the slot waits for a job; cancellation then
	// closes the connection to unblock the read. While a group is running
	// — or its finished result is still being reported — the connection
	// stays up so completed work is never torn by a graceful drain.
	var busy atomic.Bool
	stop := context.AfterFunc(ctx, func() {
		if !busy.Load() {
			conn.Close()
		}
	})
	defer stop()

	if err := writeMsgTimeout(conn, iot, MsgHello, helloMsg{Proto: protoVersion, Name: name, Token: opt.Token, Attempt: era}); err != nil {
		return false, drainErr(ctx, fmt.Errorf("dsweep: hello: %w", err))
	}
	typ, payload, err := readFrameTimeout(conn, iot)
	if err != nil {
		return false, drainErr(ctx, fmt.Errorf("dsweep: hello reply: %w", err))
	}
	var hello helloMsg
	if typ == MsgBye {
		// The coordinator refused the handshake — wrong token or protocol
		// skew. Deterministic: reconnecting would only be refused again.
		return false, &terminalError{fmt.Errorf("dsweep: coordinator rejected the handshake (token or protocol %d mismatch)", protoVersion)}
	}
	if typ != MsgHello {
		return false, fmt.Errorf("dsweep: expected hello reply, got %v", typ)
	}
	if err := decodeMsg(typ, payload, &hello); err != nil {
		return false, err
	}
	if hello.Proto != protoVersion {
		return false, &terminalError{fmt.Errorf("dsweep: coordinator speaks protocol %d, want %d", hello.Proto, protoVersion)}
	}
	handshaked = true

	for {
		if ctx.Err() != nil {
			return handshaked, nil // graceful drain: stop pulling, leave quietly
		}
		if err := writeMsgTimeout(conn, iot, MsgReady, nil); err != nil {
			return handshaked, drainErr(ctx, fmt.Errorf("dsweep: ready: %w", err))
		}
		// The job wait is unbounded: an idle coordinator queues nothing
		// for arbitrarily long, and keepalives cover a dead peer. A bare
		// EOF here is NOT a drain — the protocol's only clean goodbye is
		// an explicit Bye — it is a coordinator crash or connection loss,
		// so it feeds the reconnect loop like any other transport fault
		// (which is how a slot survives a coordinator restart).
		typ, payload, err := readFrameTimeout(conn, 0)
		if err != nil {
			if errors.Is(err, io.EOF) {
				err = fmt.Errorf("dsweep: pull: coordinator connection closed: %w", err)
			} else {
				err = fmt.Errorf("dsweep: pull: %w", err)
			}
			return handshaked, drainErr(ctx, err)
		}
		switch typ {
		case MsgBye:
			return handshaked, nil
		case MsgJob:
			var job jobMsg
			if err := decodeMsg(typ, payload, &job); err != nil {
				return handshaked, err
			}
			// The group runs to completion even under cancellation
			// (graceful drain): context.WithoutCancel keeps the runner's
			// ctx values without its deadline. busy stays true through
			// the report write, so a cancellation landing between the
			// runner returning and the result frame going out cannot
			// close the connection under the finished group.
			busy.Store(true)
			cells, rerr := run(context.WithoutCancel(ctx), job.Spec, job.Idxs)
			if testHookBeforeReport != nil {
				testHookBeforeReport()
			}
			if rerr != nil {
				err = writeMsgTimeout(conn, iot, MsgFail, failMsg{ID: job.ID, Error: rerr.Error()})
			} else {
				res := resultMsg{ID: job.ID, Cells: cells}
				if opt.CacheStats != nil {
					counts := opt.CacheStats()
					res.Cache = &counts
				}
				err = writeMsgTimeout(conn, iot, MsgResult, res)
			}
			busy.Store(false)
			if err != nil {
				return handshaked, drainErr(ctx, fmt.Errorf("dsweep: report group %d: %w", job.ID, err))
			}
			if ctx.Err() != nil {
				return handshaked, nil // drained after delivering the running group
			}
		default:
			return handshaked, fmt.Errorf("dsweep: expected job, got %v", typ)
		}
	}
}

// drainErr maps transport errors that raced a graceful drain (the
// cancellation handler closed the connection under us) to a clean exit.
func drainErr(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return nil
	}
	return err
}

// dial reaches the coordinator, retrying with deterministic per-slot
// jittered backoff within the budget so worker processes may start
// before the coordinator's listener is up — and so N slots launched (or
// reconnecting) together do not re-dial in lockstep.
func dial(ctx context.Context, addr string, dialOne func(ctx context.Context, addr string) (net.Conn, error), budget time.Duration, seed uint64) (net.Conn, error) {
	deadline := time.Now().Add(budget)
	delay := 50 * time.Millisecond
	for attempt := 0; ; attempt++ {
		dctx, dcancel := context.WithDeadline(ctx, deadline)
		conn, err := dialOne(dctx, addr)
		dcancel()
		if err == nil {
			return conn, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		sleep := delay + backoffJitter(seed, attempt, delay)
		if time.Now().Add(sleep).After(deadline) {
			return nil, fmt.Errorf("dsweep: dial %s: %w", addr, err)
		}
		select {
		case <-time.After(sleep):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if delay < time.Second {
			delay *= 2
		}
	}
}

// reconnectDelay is the backoff before reconnection attempt n (1-based):
// capped exponential growth plus the slot's deterministic jitter, so a
// fleet of slots losing one coordinator never thunders back in lockstep.
func reconnectDelay(seed uint64, n int) time.Duration {
	base := 100 * time.Millisecond
	for i := 1; i < n && base < 2*time.Second; i++ {
		base *= 2
	}
	if base > 2*time.Second {
		base = 2 * time.Second
	}
	return base + backoffJitter(seed, n, base)
}

// backoffJitter draws a deterministic jitter in [0, base/2) from the
// slot's seed and the attempt number — stable across runs (no global
// RNG), distinct across slots.
func backoffJitter(seed uint64, attempt int, base time.Duration) time.Duration {
	if base <= 1 {
		return 0
	}
	return time.Duration(splitmix64(seed^uint64(attempt)) % uint64(base/2))
}

// slotSeed hashes a slot name into its jitter seed.
func slotSeed(name string) uint64 {
	h := uint64(len(name))
	for i := 0; i < len(name); i++ {
		h = splitmix64(h ^ uint64(name[i]))
	}
	return h
}

// splitmix64 is the finalizer of the SplitMix64 generator — the same
// cheap hash internal/fault and internal/netchaos draw from.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// enableKeepAlive turns on TCP keepalives so a half-open peer (machine
// gone without a FIN) is eventually detected even on the protocol's
// unbounded idle waits. A TLS connection is unwrapped to the TCP
// connection beneath it.
func enableKeepAlive(conn net.Conn) {
	if tc, ok := conn.(*tls.Conn); ok {
		conn = tc.NetConn()
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetKeepAlive(true)
		tc.SetKeepAlivePeriod(30 * time.Second)
	}
}
