package dsweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// GroupRunner executes one sweep job group on the worker: spec is the
// opaque JSON grid description the coordinator shipped, idxs the grid
// indices to run, and the result is one JSON-encoded cell per index, in
// index order. An error fails the group on the coordinator without a
// requeue, so runners should return errors only for deterministic
// failures — and let genuine crashes crash.
type GroupRunner func(ctx context.Context, spec []byte, idxs []int) ([]json.RawMessage, error)

// WorkOptions tunes a worker process.
type WorkOptions struct {
	// Name identifies the worker in coordinator logs.
	Name string
	// Slots is the number of job groups the worker runs concurrently,
	// each on its own connection (the coordinator treats every connection
	// as an independent work-stealing puller). 0 means 1.
	Slots int
	// DialRetry is the budget for reaching the coordinator: the initial
	// dial is retried with backoff until it succeeds or this much time
	// passes, so workers may be launched before the coordinator's
	// listener is up. 0 means DefaultDialRetry.
	DialRetry time.Duration
}

// DefaultDialRetry is the default coordinator dial budget.
const DefaultDialRetry = 10 * time.Second

func (o WorkOptions) slots() int {
	if o.Slots < 1 {
		return 1
	}
	return o.Slots
}

func (o WorkOptions) dialRetry() time.Duration {
	if o.DialRetry <= 0 {
		return DefaultDialRetry
	}
	return o.DialRetry
}

// Work runs a sweep worker against the coordinator at addr until the
// coordinator drains it (Bye or a clean close) or ctx is cancelled.
// Cancellation drains gracefully: a group already running is finished
// and its result delivered before the slot disconnects — SIGTERM never
// forfeits completed work. It returns nil on a clean drain and the first
// slot failure otherwise.
func Work(ctx context.Context, addr string, run GroupRunner, opt WorkOptions) error {
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	for s := 0; s < opt.slots(); s++ {
		name := opt.Name
		if opt.slots() > 1 {
			name = fmt.Sprintf("%s/%d", opt.Name, s)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := workSlot(ctx, addr, run, name, opt.dialRetry()); err != nil {
				mu.Lock()
				if first == nil {
					first = err
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return first
}

// workSlot runs one pull loop: dial, handshake, then Ready→Job→Result
// rounds until drained.
func workSlot(ctx context.Context, addr string, run GroupRunner, name string, dialRetry time.Duration) error {
	conn, err := dial(ctx, addr, dialRetry)
	if err != nil {
		return err
	}
	defer conn.Close()

	// busy is 0 while the slot waits for a job; cancellation then closes
	// the connection to unblock the read. While a group is running the
	// connection stays up so the finished result can still be delivered.
	var busy atomic.Bool
	stop := context.AfterFunc(ctx, func() {
		if !busy.Load() {
			conn.Close()
		}
	})
	defer stop()

	if err := writeMsg(conn, MsgHello, helloMsg{Proto: protoVersion, Name: name}); err != nil {
		return fmt.Errorf("dsweep: hello: %w", err)
	}
	typ, payload, err := ReadFrame(conn)
	if err != nil {
		return fmt.Errorf("dsweep: hello reply: %w", err)
	}
	var hello helloMsg
	if typ == MsgBye {
		return fmt.Errorf("dsweep: coordinator rejected the handshake (protocol %d)", protoVersion)
	}
	if typ != MsgHello {
		return fmt.Errorf("dsweep: expected hello reply, got %v", typ)
	}
	if err := decodeMsg(typ, payload, &hello); err != nil {
		return err
	}
	if hello.Proto != protoVersion {
		return fmt.Errorf("dsweep: coordinator speaks protocol %d, want %d", hello.Proto, protoVersion)
	}

	for {
		if ctx.Err() != nil {
			return nil // graceful drain: stop pulling, leave quietly
		}
		if err := writeMsg(conn, MsgReady, nil); err != nil {
			return drainErr(ctx, fmt.Errorf("dsweep: ready: %w", err))
		}
		typ, payload, err := ReadFrame(conn)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil // coordinator finished and closed the stream
			}
			return drainErr(ctx, fmt.Errorf("dsweep: pull: %w", err))
		}
		switch typ {
		case MsgBye:
			return nil
		case MsgJob:
			var job jobMsg
			if err := decodeMsg(typ, payload, &job); err != nil {
				return err
			}
			// The group itself runs to completion even under
			// cancellation (graceful drain): context.WithoutCancel keeps
			// the runner's ctx values without its deadline.
			busy.Store(true)
			cells, rerr := run(context.WithoutCancel(ctx), job.Spec, job.Idxs)
			busy.Store(false)
			if ctx.Err() != nil {
				// Cancelled mid-group: deliver the finished result, then
				// drain. The AfterFunc already ran, so re-arm is moot —
				// just send and exit.
				defer conn.Close()
			}
			if rerr != nil {
				err = writeMsg(conn, MsgFail, failMsg{ID: job.ID, Error: rerr.Error()})
			} else {
				err = writeMsg(conn, MsgResult, resultMsg{ID: job.ID, Cells: cells})
			}
			if err != nil {
				return fmt.Errorf("dsweep: report group %d: %w", job.ID, err)
			}
		default:
			return fmt.Errorf("dsweep: expected job, got %v", typ)
		}
	}
}

// drainErr maps transport errors that raced a graceful drain (the
// cancellation handler closed the connection under us) to a clean exit.
func drainErr(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return nil
	}
	return err
}

// dial reaches the coordinator, retrying with backoff within the budget
// so worker processes may start before the coordinator's listener is up.
func dial(ctx context.Context, addr string, budget time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(budget)
	delay := 50 * time.Millisecond
	for {
		d := net.Dialer{Deadline: deadline}
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return conn, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if time.Now().Add(delay).After(deadline) {
			return nil, fmt.Errorf("dsweep: dial %s: %w", addr, err)
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if delay < time.Second {
			delay *= 2
		}
	}
}
