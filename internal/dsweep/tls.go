package dsweep

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"net"
	"os"
)

// TLS support for the sweep plane. Encryption is layered strictly above
// the transport: the coordinator wraps its (possibly chaos-injected)
// listener with tls.NewListener, the worker wraps its (possibly
// chaos-injected) dialer with TLSDialer. Token auth rides inside the
// encrypted protocol handshake, and injected chaos faults hit beneath
// the record layer exactly as real network faults would — so -token,
// -chaos and TLS compose without knowing about each other.

// ServerTLS loads the coordinator's certificate/key pair into a server
// tls.Config for tls.NewListener.
func ServerTLS(certFile, keyFile string) (*tls.Config, error) {
	cert, err := tls.LoadX509KeyPair(certFile, keyFile)
	if err != nil {
		return nil, fmt.Errorf("dsweep: load TLS keypair: %w", err)
	}
	return &tls.Config{
		Certificates: []tls.Certificate{cert},
		MinVersion:   tls.VersionTLS12,
	}, nil
}

// ClientTLS builds the worker-side tls.Config. caFile, when non-empty,
// pins the coordinator's certificate authority (the self-signed
// deployment path); empty trusts the system roots. skipVerify disables
// verification entirely — encryption without authentication, for testing.
func ClientTLS(caFile string, skipVerify bool) (*tls.Config, error) {
	cfg := &tls.Config{
		MinVersion:         tls.VersionTLS12,
		InsecureSkipVerify: skipVerify,
	}
	if caFile != "" {
		pem, err := os.ReadFile(caFile)
		if err != nil {
			return nil, fmt.Errorf("dsweep: read TLS CA: %w", err)
		}
		pool := x509.NewCertPool()
		if !pool.AppendCertsFromPEM(pem) {
			return nil, fmt.Errorf("dsweep: no certificates in %s", caFile)
		}
		cfg.RootCAs = pool
	}
	return cfg, nil
}

// TLSDialer wraps a dial function with a TLS client handshake, deriving
// ServerName from the dialed address when cfg does not name one. A failed
// handshake closes the connection and surfaces as a dial error, so the
// worker's usual retry/backoff budget governs it.
func TLSDialer(base func(ctx context.Context, addr string) (net.Conn, error), cfg *tls.Config) func(ctx context.Context, addr string) (net.Conn, error) {
	return func(ctx context.Context, addr string) (net.Conn, error) {
		conn, err := base(ctx, addr)
		if err != nil {
			return nil, err
		}
		c := cfg.Clone()
		if c.ServerName == "" && !c.InsecureSkipVerify {
			host, _, err := net.SplitHostPort(addr)
			if err != nil {
				host = addr
			}
			c.ServerName = host
		}
		tconn := tls.Client(conn, c)
		if err := tconn.HandshakeContext(ctx); err != nil {
			conn.Close()
			return nil, fmt.Errorf("dsweep: tls handshake with %s: %w", addr, err)
		}
		return tconn, nil
	}
}
