package dsweep

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzDecodeFrame throws arbitrary bytes at the wire decoder. Frames
// arrive from the network — whatever a peer (or a corrupted link) sends,
// the decoder must either return a message that re-encodes to the
// identical bytes or reject with ErrBadFrame — never panic, never
// allocate from an untrusted length.
func FuzzDecodeFrame(f *testing.F) {
	good := mustFrame(f, MsgJob, []byte(`{"id":3,"spec":{"kind":"runall"},"idxs":[0,1]}`))
	f.Add(good)
	f.Add(mustFrame(f, MsgReady, nil))
	f.Add(mustFrame(f, MsgHello, []byte(`{"proto":1,"name":"w0"}`)))
	f.Add(mustFrame(f, MsgResult, []byte(`{"id":3,"cells":[{"res":{}},{"res":{}}]}`)))

	// Single-field corruptions of a valid frame.
	for _, mut := range []struct {
		off int
		val byte
	}{
		{0, 'X'},                 // magic
		{4, 2},                   // frame version
		{5, 0},                   // zero message type
		{5, byte(msgTypeEnd)},    // out-of-range message type
		{6, 1},                   // reserved byte
		{8, 0xFF},                // length low byte
		{11, 0x7F},               // length high byte (oversized)
		{frameHeaderBytes, '!'},  // payload (CRC mismatch)
		{len(good) - 1, 0xAA},    // CRC trailer
		{len(good) - 4, good[0]}, // CRC trailer first byte
	} {
		bad := append([]byte(nil), good...)
		bad[mut.off] = mut.val
		f.Add(bad)
	}
	f.Add(good[:frameHeaderBytes])                 // header only, no payload/CRC
	f.Add(good[:len(good)-1])                      // truncated trailer
	f.Add(append(append([]byte(nil), good...), 0)) // one byte long
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, frameHeaderBytes+frameTrailerBytes))

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := DecodeFrame(data)
		if err != nil {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("decode error does not wrap ErrBadFrame: %v", err)
			}
			return
		}
		// An accepted frame's announced length must be the real one…
		if n := binary.LittleEndian.Uint32(data[8:12]); int(n) != len(payload) {
			t.Fatalf("accepted frame announces %d payload bytes, decoded %d", n, len(payload))
		}
		// …and the frame must round-trip bit-for-bit.
		out, err := EncodeFrame(typ, payload)
		if err != nil {
			t.Fatalf("re-encode of accepted frame (%v, %x): %v", typ, payload, err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", data, out)
		}
		// The stream reader must accept exactly the same frames.
		styp, spayload, err := ReadFrame(bytes.NewReader(data))
		if err != nil || styp != typ || !bytes.Equal(spayload, payload) {
			t.Fatalf("stream reader disagrees: (%v, %x, %v)", styp, spayload, err)
		}
	})
}
