package dsweep

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

func mustFrame(t testing.TB, typ MsgType, payload []byte) []byte {
	t.Helper()
	buf, err := EncodeFrame(typ, payload)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestFrameRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		typ     MsgType
		payload string
	}{
		{MsgHello, `{"proto":1,"name":"w"}`},
		{MsgReady, ""},
		{MsgJob, `{"id":7,"spec":{"kind":"fault"},"idxs":[0,1,2]}`},
		{MsgResult, `{"id":7,"cells":[{},{},{}]}`},
		{MsgFail, `{"id":7,"error":"boom"}`},
		{MsgBye, ""},
	} {
		buf := mustFrame(t, tc.typ, []byte(tc.payload))
		typ, payload, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("%v: decode: %v", tc.typ, err)
		}
		if typ != tc.typ || string(payload) != tc.payload {
			t.Fatalf("%v: round-trip got (%v, %q)", tc.typ, typ, payload)
		}
		// The stream reader must agree with the strict decoder.
		typ, payload, err = ReadFrame(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("%v: read: %v", tc.typ, err)
		}
		if typ != tc.typ || string(payload) != tc.payload {
			t.Fatalf("%v: stream round-trip got (%v, %q)", tc.typ, typ, payload)
		}
	}
}

func TestDecodeFrameRejects(t *testing.T) {
	good := mustFrame(t, MsgJob, []byte(`{"id":1}`))
	corrupt := func(off int, val byte) []byte {
		bad := append([]byte(nil), good...)
		bad[off] = val
		return bad
	}
	oversize := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(oversize[8:12], MaxPayload+1)

	for name, buf := range map[string][]byte{
		"empty":           {},
		"short header":    good[:8],
		"truncated":       good[:len(good)-1],
		"trailing byte":   append(append([]byte(nil), good...), 0),
		"bad magic":       corrupt(0, 'X'),
		"bad version":     corrupt(4, 99),
		"zero type":       corrupt(5, 0),
		"unknown type":    corrupt(5, byte(msgTypeEnd)),
		"reserved set":    corrupt(6, 1),
		"oversize length": oversize,
		"flipped payload": corrupt(frameHeaderBytes, 'Z'),
		"flipped crc":     corrupt(len(good)-1, good[len(good)-1]^0xFF),
	} {
		if _, _, err := DecodeFrame(buf); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: want ErrBadFrame, got %v", name, err)
		}
	}
}

func TestEncodeFrameRejects(t *testing.T) {
	if _, err := EncodeFrame(msgTypeEnd, nil); !errors.Is(err, ErrBadFrame) {
		t.Errorf("unknown type: want ErrBadFrame, got %v", err)
	}
	if _, err := EncodeFrame(MsgJob, make([]byte, MaxPayload+1)); !errors.Is(err, ErrBadFrame) {
		t.Errorf("oversize payload: want ErrBadFrame, got %v", err)
	}
}

func TestReadFrameStream(t *testing.T) {
	a := mustFrame(t, MsgReady, nil)
	b := mustFrame(t, MsgFail, []byte(`{"id":2,"error":"x"}`))
	r := bytes.NewReader(append(append([]byte(nil), a...), b...))

	typ, _, err := ReadFrame(r)
	if err != nil || typ != MsgReady {
		t.Fatalf("first frame: (%v, %v)", typ, err)
	}
	typ, payload, err := ReadFrame(r)
	if err != nil || typ != MsgFail || !strings.Contains(string(payload), `"x"`) {
		t.Fatalf("second frame: (%v, %q, %v)", typ, payload, err)
	}
	// A clean close between frames is io.EOF…
	if _, _, err := ReadFrame(r); !errors.Is(err, io.EOF) {
		t.Fatalf("at stream end: want io.EOF, got %v", err)
	}
	// …but a close mid-frame is an unexpected EOF, never a silent accept.
	if _, _, err := ReadFrame(bytes.NewReader(b[:len(b)-2])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn frame: want io.ErrUnexpectedEOF, got %v", err)
	}
	if _, _, err := ReadFrame(bytes.NewReader(b[:4])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn header: want io.ErrUnexpectedEOF, got %v", err)
	}
}

func TestMsgTypeString(t *testing.T) {
	for typ, want := range map[MsgType]string{
		MsgHello: "hello", MsgReady: "ready", MsgJob: "job",
		MsgResult: "result", MsgFail: "fail", MsgBye: "bye",
		msgTypeEnd: "type(7)",
	} {
		if got := typ.String(); got != want {
			t.Errorf("MsgType(%d).String() = %q, want %q", uint8(typ), got, want)
		}
	}
}
