package dsweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Options tunes a Coordinator.
type Options struct {
	// Lease bounds how long a worker may hold one job group: a worker
	// silent for Lease after receiving a group is presumed dead, its
	// connection is closed and the group is requeued for the surviving
	// workers. Zero means DefaultLease. Set it above the worst-case group
	// run time — a healthy-but-slow worker that blows the lease has its
	// group recomputed elsewhere (correct, but wasted work).
	Lease time.Duration
	// MaxAttempts caps how many workers may be lost on one group before
	// the group is failed instead of requeued, so a group that reliably
	// crashes its host cannot starve the sweep forever. Zero means
	// DefaultMaxAttempts.
	MaxAttempts int
	// Logf, when non-nil, receives coordinator lifecycle chatter (worker
	// connects, losses, requeues). It must be safe for concurrent use.
	Logf func(format string, args ...any)
}

// Defaults for Options.
const (
	DefaultLease       = 2 * time.Minute
	DefaultMaxAttempts = 3
)

func (o Options) lease() time.Duration {
	if o.Lease <= 0 {
		return DefaultLease
	}
	return o.Lease
}

func (o Options) maxAttempts() int {
	if o.MaxAttempts <= 0 {
		return DefaultMaxAttempts
	}
	return o.MaxAttempts
}

// groupOutcome is one group's terminal state.
type groupOutcome struct {
	cells []json.RawMessage
	err   error
}

// group is one enqueued job group. Its lifecycle is queued → leased →
// settled, with leased → queued again on every worker loss (requeue).
type group struct {
	id       uint64
	spec     []byte
	idxs     []int
	attempts int  // workers lost while holding this group
	settled  bool // outcome delivered (or caller gone); late outcomes are discarded
	done     chan groupOutcome
}

// Coordinator owns a distributed sweep's pending job groups and serves
// them to worker connections with work-stealing dispatch: every Ready
// worker pulls the oldest pending group, so fast workers naturally take
// more of the grid. It implements the sweep layer's Dispatcher contract —
// RunGroup blocks until some worker completes the group, across any
// number of requeues.
//
// A Coordinator is safe for concurrent use; one instance serves all of a
// process's sweeps in sequence (grid identity travels inside the opaque
// spec, so interleaved grids cannot be confused).
type Coordinator struct {
	opt Options

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []*group // pending groups; requeues go to the front
	nextID    uint64
	closed    bool
	listeners []net.Listener
	workers   int            // handshaked worker connections
	handlers  sync.WaitGroup // live Handle calls, for the Close drain
}

// NewCoordinator builds a Coordinator with the given options.
func NewCoordinator(opt Options) *Coordinator {
	c := &Coordinator{opt: opt}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opt.Logf != nil {
		c.opt.Logf(format, args...)
	}
}

// Workers reports the number of handshaked worker connections.
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.workers
}

// Serve accepts worker connections on ln until the coordinator is
// closed, handling each in its own goroutine. It returns nil once Close
// shuts the listener down.
func (c *Coordinator) Serve(ln net.Listener) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		ln.Close()
		return errors.New("dsweep: coordinator closed")
	}
	c.listeners = append(c.listeners, ln)
	c.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("dsweep: accept: %w", err)
		}
		go c.Handle(conn)
	}
}

// closeDrainGrace bounds how long Close waits for worker connections to
// drain their goodbye. Healthy workers Bye within a round-trip; the grace
// only matters when one is hung or mid-group, and forfeiting its farewell
// then is fine — any group it held was already requeued or settled.
const closeDrainGrace = 5 * time.Second

// Close shuts the coordinator down: listeners close, still-queued groups
// (and their blocked RunGroup callers) fail with a closed-coordinator
// error, and worker connections drain through the protocol — each
// handler's next take returns nil, so the worker gets a clean Bye rather
// than a connection reset. Close waits up to closeDrainGrace for the
// handlers to finish that farewell, then returns regardless.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	queued := c.queue
	c.queue = nil
	lns := c.listeners
	c.cond.Broadcast()
	c.mu.Unlock()

	for _, g := range queued {
		c.deliver(g, groupOutcome{err: errors.New("dsweep: coordinator closed")})
	}
	for _, ln := range lns {
		ln.Close()
	}

	drained := make(chan struct{})
	go func() {
		c.handlers.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(closeDrainGrace):
		c.logf("dsweep: close: gave up waiting for worker connections to drain")
	}
	return nil
}

// RunGroup enqueues one job group and blocks until a worker completes it
// (across any number of requeues) or ctx is cancelled. It is the sweep
// layer's remote dispatcher: spec is the opaque JSON grid description,
// idxs the grid indices to execute, and the result is one JSON cell per
// index, in index order.
func (c *Coordinator) RunGroup(ctx context.Context, spec []byte, idxs []int) ([]json.RawMessage, error) {
	g := &group{spec: spec, idxs: idxs, done: make(chan groupOutcome, 1)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("dsweep: coordinator closed")
	}
	c.nextID++
	g.id = c.nextID
	c.queue = append(c.queue, g)
	c.cond.Signal()
	c.mu.Unlock()

	select {
	case o := <-g.done:
		return o.cells, o.err
	case <-ctx.Done():
		// Settle the group so a late worker outcome is discarded; if it
		// is still queued, pull it before any worker wastes time on it.
		c.mu.Lock()
		if !g.settled {
			g.settled = true
			c.dequeueLocked(g)
		}
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// dequeueLocked removes g from the pending queue if present.
func (c *Coordinator) dequeueLocked(g *group) {
	for i, q := range c.queue {
		if q == g {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return
		}
	}
}

// deliver settles g with its outcome; late outcomes (after a lease
// requeue already settled the group elsewhere, or after the caller's ctx
// cancelled) are discarded.
func (c *Coordinator) deliver(g *group, o groupOutcome) {
	c.mu.Lock()
	if g.settled {
		c.mu.Unlock()
		return
	}
	g.settled = true
	c.mu.Unlock()
	g.done <- o
}

// requeue returns a group forfeited by a lost worker to the front of the
// queue — front, so a long-queued group does not also go to the back of
// the line — failing it once MaxAttempts workers have been lost on it.
func (c *Coordinator) requeue(g *group, cause error) {
	c.mu.Lock()
	if g.settled || c.closed {
		c.mu.Unlock()
		return
	}
	g.attempts++
	if g.attempts >= c.opt.maxAttempts() {
		c.mu.Unlock()
		c.deliver(g, groupOutcome{err: fmt.Errorf("dsweep: group %d lost %d workers (last: %v)", g.id, g.attempts, cause)})
		return
	}
	c.queue = append([]*group{g}, c.queue...)
	c.cond.Signal()
	c.mu.Unlock()
	c.logf("dsweep: requeued group %d after worker loss (%v)", g.id, cause)
}

// take blocks until a pending group is available and leases it to the
// caller; it returns nil once the coordinator is closed.
func (c *Coordinator) take() *group {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.queue) == 0 && !c.closed {
		c.cond.Wait()
	}
	if c.closed {
		return nil
	}
	g := c.queue[0]
	c.queue = c.queue[1:]
	return g
}

// Handle serves one worker connection until it drains, errors out or
// blows a lease. Serve calls it for every accepted connection; tests may
// drive it directly over an in-memory pipe.
func (c *Coordinator) Handle(conn net.Conn) {
	c.handlers.Add(1)
	defer c.handlers.Done()
	defer conn.Close()

	name, err := c.serveWorker(conn)
	c.mu.Lock()
	if name != "" {
		c.workers--
	}
	closed := c.closed
	c.mu.Unlock()
	if err != nil && !closed {
		c.logf("dsweep: worker %s: %v", name, err)
	}
}

// serveWorker runs the coordinator side of the protocol on one
// connection: handshake, then Ready→Job→Result rounds until the worker
// disconnects or the queue closes. Any transport or protocol failure
// while a group is leased requeues the group.
func (c *Coordinator) serveWorker(conn net.Conn) (string, error) {
	lease := c.opt.lease()

	// Handshake, bounded by the lease so a silent connection cannot pin
	// the handler forever.
	conn.SetReadDeadline(time.Now().Add(lease))
	typ, payload, err := ReadFrame(conn)
	if err != nil {
		return "", fmt.Errorf("hello: %w", err)
	}
	var hello helloMsg
	if typ != MsgHello {
		return "", fmt.Errorf("expected hello, got %v", typ)
	}
	if err := decodeMsg(typ, payload, &hello); err != nil {
		return "", err
	}
	if hello.Proto != protoVersion {
		writeMsg(conn, MsgBye, nil)
		return "", fmt.Errorf("worker %q speaks protocol %d, want %d", hello.Name, hello.Proto, protoVersion)
	}
	if err := writeMsg(conn, MsgHello, helloMsg{Proto: protoVersion, Name: "coordinator"}); err != nil {
		return "", fmt.Errorf("hello reply: %w", err)
	}
	c.mu.Lock()
	c.workers++
	c.mu.Unlock()
	c.logf("dsweep: worker %s connected", hello.Name)

	for {
		// Wait for the worker to pull work; an idle worker may sit here
		// arbitrarily long, so no deadline applies.
		conn.SetReadDeadline(time.Time{})
		typ, _, err := ReadFrame(conn)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return hello.Name, nil // worker drained and left
			}
			return hello.Name, fmt.Errorf("ready: %w", err)
		}
		if typ != MsgReady {
			return hello.Name, fmt.Errorf("expected ready, got %v", typ)
		}

		g := c.take()
		if g == nil {
			writeMsg(conn, MsgBye, nil)
			return hello.Name, nil
		}
		if err := writeMsg(conn, MsgJob, jobMsg{ID: g.id, Spec: g.spec, Idxs: g.idxs}); err != nil {
			c.requeue(g, fmt.Errorf("send to %s: %w", hello.Name, err))
			return hello.Name, fmt.Errorf("job: %w", err)
		}

		// The lease: the worker must produce the group's outcome within
		// the deadline or it is presumed dead and the group is requeued.
		conn.SetReadDeadline(time.Now().Add(lease))
		typ, payload, err := ReadFrame(conn)
		if err != nil {
			c.requeue(g, fmt.Errorf("worker %s: %w", hello.Name, err))
			return hello.Name, fmt.Errorf("group %d: %w", g.id, err)
		}
		switch typ {
		case MsgResult:
			var res resultMsg
			if err := decodeMsg(typ, payload, &res); err != nil {
				c.requeue(g, err)
				return hello.Name, err
			}
			if res.ID != g.id {
				err := fmt.Errorf("result for group %d while %d is leased", res.ID, g.id)
				c.requeue(g, err)
				return hello.Name, err
			}
			if len(res.Cells) != len(g.idxs) {
				// A malformed result is a worker bug, not a crash: fail
				// the group rather than recompute the same bug elsewhere.
				c.deliver(g, groupOutcome{err: fmt.Errorf("dsweep: worker %s returned %d cells for %d jobs", hello.Name, len(res.Cells), len(g.idxs))})
				continue
			}
			c.deliver(g, groupOutcome{cells: res.Cells})
		case MsgFail:
			var fail failMsg
			if err := decodeMsg(typ, payload, &fail); err != nil {
				c.requeue(g, err)
				return hello.Name, err
			}
			// Job errors are deterministic; requeueing would repeat them.
			c.deliver(g, groupOutcome{err: fmt.Errorf("dsweep: worker %s: %s", hello.Name, fail.Error)})
		default:
			err := fmt.Errorf("expected result, got %v", typ)
			c.requeue(g, err)
			return hello.Name, err
		}
	}
}
