package dsweep

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"time"
)

// Options tunes a Coordinator.
type Options struct {
	// Lease bounds how long a worker may hold one job group: a worker
	// silent for Lease after receiving a group is presumed dead, its
	// connection is closed and the group is requeued for the surviving
	// workers. Zero means DefaultLease. Set it above the worst-case group
	// run time — a healthy-but-slow worker that blows the lease has its
	// group recomputed elsewhere (correct, but wasted work).
	Lease time.Duration
	// MaxAttempts caps how many workers may be lost on one group before
	// the group is failed instead of requeued, so a group that reliably
	// crashes its host cannot starve the sweep forever. Zero means
	// DefaultMaxAttempts.
	MaxAttempts int
	// Token, when non-empty, authenticates workers: a Hello whose token
	// does not match (constant-time compare) is answered with Bye,
	// counted in Status().AuthRejects and disconnected — without
	// disturbing the campaign the authenticated workers are running. An
	// empty Token accepts every worker (the trusted-network default).
	Token string
	// IOTimeout bounds every frame write (hello reply, job, bye) and the
	// handshake read, so a stalled or half-open peer can never wedge a
	// connection handler. Idle waits — a handshaked worker between jobs —
	// remain unbounded by design, covered by TCP keepalives. 0 means
	// DefaultIOTimeout.
	IOTimeout time.Duration
	// Logf, when non-nil, receives coordinator lifecycle chatter (worker
	// connects, losses, requeues). It must be safe for concurrent use.
	Logf func(format string, args ...any)
}

// Defaults for Options.
const (
	DefaultLease       = 2 * time.Minute
	DefaultMaxAttempts = 3
)

func (o Options) lease() time.Duration {
	if o.Lease <= 0 {
		return DefaultLease
	}
	return o.Lease
}

func (o Options) maxAttempts() int {
	if o.MaxAttempts <= 0 {
		return DefaultMaxAttempts
	}
	return o.MaxAttempts
}

func (o Options) ioTimeout() time.Duration {
	if o.IOTimeout <= 0 {
		return DefaultIOTimeout
	}
	return o.IOTimeout
}

// groupOutcome is one group's terminal state.
type groupOutcome struct {
	cells []json.RawMessage
	err   error
}

// group is one enqueued job group. Its lifecycle is queued → leased →
// settled, with leased → queued again on every worker loss (requeue).
type group struct {
	id       uint64
	spec     []byte
	idxs     []int
	attempts int  // workers lost while holding this group
	settled  bool // outcome delivered (or caller gone); late outcomes are discarded
	done     chan groupOutcome
}

// workerStats aggregates one worker name's history across connections.
type workerStats struct {
	connected  int // live handshaked connections bearing this name
	connects   uint64
	reconnects uint64
	completed  uint64      // groups delivered
	jobs       uint64      // grid indices delivered
	fails      uint64      // groups reported as deterministic failures
	cache      CacheCounts // last counters reported in a Result frame
}

// leaseRec is one in-flight group's lease: who holds it and since when.
type leaseRec struct {
	worker string
	since  time.Time
}

// Coordinator owns a distributed sweep's pending job groups and serves
// them to worker connections with work-stealing dispatch: every Ready
// worker pulls the oldest pending group, so fast workers naturally take
// more of the grid. It implements the sweep layer's Dispatcher contract —
// RunGroup blocks until some worker completes the group, across any
// number of requeues.
//
// A Coordinator is safe for concurrent use; one instance serves all of a
// process's sweeps in sequence (grid identity travels inside the opaque
// spec, so interleaved grids cannot be confused).
type Coordinator struct {
	opt Options

	mu          sync.Mutex
	cond        *sync.Cond
	queue       []*group // pending groups; requeues go to the front
	nextID      uint64
	closed      bool
	listeners   []net.Listener
	workers     int // handshaked worker connections
	authRejects uint64
	reconnects  uint64
	requeues    uint64
	perWorker   map[string]*workerStats
	inflight    map[uint64]*leaseRec
	handlers    sync.WaitGroup // live Handle calls, for the Close drain
}

// NewCoordinator builds a Coordinator with the given options.
func NewCoordinator(opt Options) *Coordinator {
	c := &Coordinator{
		opt:       opt,
		perWorker: make(map[string]*workerStats),
		inflight:  make(map[uint64]*leaseRec),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opt.Logf != nil {
		c.opt.Logf(format, args...)
	}
}

// Workers reports the number of handshaked worker connections.
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.workers
}

// WorkerStatus is one worker name's row in a Status snapshot.
type WorkerStatus struct {
	Name       string
	Connected  bool
	Connects   uint64 // handshakes, including reconnects
	Reconnects uint64
	Completed  uint64      // groups delivered
	Jobs       uint64      // grid indices delivered (throughput)
	Fails      uint64      // deterministic group failures reported
	Cache      CacheCounts // trace-cache counters from the last Result frame
	LeaseAge   time.Duration
}

// Status is a point-in-time snapshot of a coordinator's campaign: queue
// depth, in-flight leases, per-worker throughput and the fault counters
// (auth rejects, reconnects, requeues). It is the observability hook a
// serving daemon fronts; hmccoal -serve prints it on SIGUSR1.
type Status struct {
	Queued      int // groups waiting for a puller
	InFlight    int // groups currently leased
	Workers     int // connected worker connections
	AuthRejects uint64
	Reconnects  uint64
	Requeues    uint64
	PerWorker   []WorkerStatus // sorted by name
}

// Status snapshots the coordinator's current state.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Status{
		Queued:      len(c.queue),
		InFlight:    len(c.inflight),
		Workers:     c.workers,
		AuthRejects: c.authRejects,
		Reconnects:  c.reconnects,
		Requeues:    c.requeues,
	}
	oldest := make(map[string]time.Time, len(c.inflight))
	for _, lr := range c.inflight {
		if t, ok := oldest[lr.worker]; !ok || lr.since.Before(t) {
			oldest[lr.worker] = lr.since
		}
	}
	for name, ws := range c.perWorker {
		row := WorkerStatus{
			Name:       name,
			Connected:  ws.connected > 0,
			Connects:   ws.connects,
			Reconnects: ws.reconnects,
			Completed:  ws.completed,
			Jobs:       ws.jobs,
			Fails:      ws.fails,
			Cache:      ws.cache,
		}
		if t, ok := oldest[name]; ok {
			row.LeaseAge = time.Since(t)
		}
		s.PerWorker = append(s.PerWorker, row)
	}
	sort.Slice(s.PerWorker, func(i, j int) bool { return s.PerWorker[i].Name < s.PerWorker[j].Name })
	return s
}

// String renders a Status as the multi-line stderr block the -serve
// SIGUSR1 handler prints.
func (s Status) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dsweep status: %d queued, %d in flight, %d workers connected, %d auth rejects, %d reconnects, %d requeues",
		s.Queued, s.InFlight, s.Workers, s.AuthRejects, s.Reconnects, s.Requeues)
	for _, w := range s.PerWorker {
		state := "gone"
		if w.Connected {
			state = "connected"
		}
		fmt.Fprintf(&b, "\n  %s: %s, %d connects (%d reconnects), %d groups (%d jobs), %d fails",
			w.Name, state, w.Connects, w.Reconnects, w.Completed, w.Jobs, w.Fails)
		if c := w.Cache; c.Hits+c.Misses+c.Evictions > 0 {
			fmt.Fprintf(&b, ", trace cache %d hits / %d misses / %d evictions", c.Hits, c.Misses, c.Evictions)
		}
		if w.LeaseAge > 0 {
			fmt.Fprintf(&b, ", lease age %v", w.LeaseAge.Round(time.Millisecond))
		}
	}
	return b.String()
}

// Serve accepts worker connections on ln until the coordinator is
// closed, handling each in its own goroutine. It returns nil once Close
// shuts the listener down.
func (c *Coordinator) Serve(ln net.Listener) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		ln.Close()
		return errors.New("dsweep: coordinator closed")
	}
	c.listeners = append(c.listeners, ln)
	c.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("dsweep: accept: %w", err)
		}
		go c.Handle(conn)
	}
}

// closeDrainGrace bounds how long Close waits for worker connections to
// drain their goodbye. Healthy workers Bye within a round-trip; the grace
// only matters when one is hung or mid-group, and forfeiting its farewell
// then is fine — any group it held was already requeued or settled.
const closeDrainGrace = 5 * time.Second

// Close shuts the coordinator down: listeners close, still-queued groups
// (and their blocked RunGroup callers) fail with a closed-coordinator
// error, and worker connections drain through the protocol — each
// handler's next take returns nil, so the worker gets a clean Bye rather
// than a connection reset. Close waits up to closeDrainGrace for the
// handlers to finish that farewell, then returns regardless.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	queued := c.queue
	c.queue = nil
	lns := c.listeners
	c.cond.Broadcast()
	c.mu.Unlock()

	for _, g := range queued {
		c.deliver(g, groupOutcome{err: errors.New("dsweep: coordinator closed")})
	}
	for _, ln := range lns {
		ln.Close()
	}

	drained := make(chan struct{})
	go func() {
		c.handlers.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(closeDrainGrace):
		c.logf("dsweep: close: gave up waiting for worker connections to drain")
	}
	return nil
}

// RunGroup enqueues one job group and blocks until a worker completes it
// (across any number of requeues) or ctx is cancelled. It is the sweep
// layer's remote dispatcher: spec is the opaque JSON grid description,
// idxs the grid indices to execute, and the result is one JSON cell per
// index, in index order.
func (c *Coordinator) RunGroup(ctx context.Context, spec []byte, idxs []int) ([]json.RawMessage, error) {
	g := &group{spec: spec, idxs: idxs, done: make(chan groupOutcome, 1)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("dsweep: coordinator closed")
	}
	c.nextID++
	g.id = c.nextID
	c.queue = append(c.queue, g)
	c.cond.Signal()
	c.mu.Unlock()

	select {
	case o := <-g.done:
		return o.cells, o.err
	case <-ctx.Done():
		// Settle the group so a late worker outcome is discarded; if it
		// is still queued, pull it before any worker wastes time on it.
		c.mu.Lock()
		if !g.settled {
			g.settled = true
			c.dequeueLocked(g)
		}
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// dequeueLocked removes g from the pending queue if present.
func (c *Coordinator) dequeueLocked(g *group) {
	for i, q := range c.queue {
		if q == g {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return
		}
	}
}

// deliver settles g with its outcome; late outcomes (after a lease
// requeue already settled the group elsewhere, or after the caller's ctx
// cancelled) are discarded. Any lease record for g is released.
func (c *Coordinator) deliver(g *group, o groupOutcome) {
	c.mu.Lock()
	delete(c.inflight, g.id)
	if g.settled {
		c.mu.Unlock()
		return
	}
	g.settled = true
	c.mu.Unlock()
	g.done <- o
}

// requeue returns a group forfeited by a lost worker to the front of the
// queue — front, so a long-queued group does not also go to the back of
// the line — failing it once MaxAttempts workers have been lost on it.
func (c *Coordinator) requeue(g *group, cause error) {
	c.mu.Lock()
	delete(c.inflight, g.id)
	if g.settled || c.closed {
		c.mu.Unlock()
		return
	}
	g.attempts++
	c.requeues++
	if g.attempts >= c.opt.maxAttempts() {
		c.mu.Unlock()
		c.deliver(g, groupOutcome{err: fmt.Errorf("dsweep: group %d lost %d workers (last: %v)", g.id, g.attempts, cause)})
		return
	}
	c.queue = append([]*group{g}, c.queue...)
	c.cond.Signal()
	c.mu.Unlock()
	c.logf("dsweep: requeued group %d after worker loss (%v)", g.id, cause)
}

// lease records g as in flight on the named worker's connection.
func (c *Coordinator) lease(g *group, worker string) {
	c.mu.Lock()
	c.inflight[g.id] = &leaseRec{worker: worker, since: time.Now()}
	c.mu.Unlock()
}

// take blocks until a pending group is available and leases it to the
// caller; it returns nil once the coordinator is closed.
func (c *Coordinator) take() *group {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.queue) == 0 && !c.closed {
		c.cond.Wait()
	}
	if c.closed {
		return nil
	}
	g := c.queue[0]
	c.queue = c.queue[1:]
	return g
}

// Handle serves one worker connection until it drains, errors out or
// blows a lease. Serve calls it for every accepted connection; tests may
// drive it directly over an in-memory pipe.
func (c *Coordinator) Handle(conn net.Conn) {
	c.handlers.Add(1)
	defer c.handlers.Done()
	defer conn.Close()
	enableKeepAlive(conn)

	name, err := c.serveWorker(conn)
	c.mu.Lock()
	if name != "" {
		c.workers--
		if ws := c.perWorker[name]; ws != nil {
			ws.connected--
		}
	}
	closed := c.closed
	c.mu.Unlock()
	if err != nil && !closed {
		c.logf("dsweep: worker %s: %v", name, err)
	}
}

// checkToken compares a worker's presented token against the configured
// one in constant time, so the comparison leaks nothing about how much of
// a guessed token matched.
func (c *Coordinator) checkToken(got string) bool {
	return subtle.ConstantTimeCompare([]byte(got), []byte(c.opt.Token)) == 1
}

// serveWorker runs the coordinator side of the protocol on one
// connection: handshake (version, then token), then Ready→Job→Result
// rounds until the worker disconnects or the queue closes. Any transport
// or protocol failure while a group is leased requeues the group; every
// write and every bounded-expectation read carries a deadline, so a
// stalled peer costs at most IOTimeout (or the lease), never a handler.
func (c *Coordinator) serveWorker(conn net.Conn) (string, error) {
	lease := c.opt.lease()
	iot := c.opt.ioTimeout()

	// Handshake, deadline-bounded so a silent connection cannot pin the
	// handler.
	typ, payload, err := readFrameTimeout(conn, iot)
	if err != nil {
		return "", fmt.Errorf("hello: %w", err)
	}
	var hello helloMsg
	if typ != MsgHello {
		return "", fmt.Errorf("expected hello, got %v", typ)
	}
	if err := decodeMsg(typ, payload, &hello); err != nil {
		return "", err
	}
	hello.Name = truncate(hello.Name, MaxNameLen)
	if hello.Proto != protoVersion {
		writeMsgTimeout(conn, iot, MsgBye, nil)
		return "", fmt.Errorf("worker %q speaks protocol %d, want %d", hello.Name, hello.Proto, protoVersion)
	}
	if !c.checkToken(hello.Token) {
		c.mu.Lock()
		c.authRejects++
		c.mu.Unlock()
		writeMsgTimeout(conn, iot, MsgBye, nil)
		return "", fmt.Errorf("worker %q presented a bad token", hello.Name)
	}
	if err := writeMsgTimeout(conn, iot, MsgHello, helloMsg{Proto: protoVersion, Name: "coordinator"}); err != nil {
		return "", fmt.Errorf("hello reply: %w", err)
	}
	c.mu.Lock()
	c.workers++
	ws := c.perWorker[hello.Name]
	if ws == nil {
		ws = &workerStats{}
		c.perWorker[hello.Name] = ws
	}
	ws.connected++
	ws.connects++
	if hello.Attempt > 0 {
		ws.reconnects++
		c.reconnects++
	}
	c.mu.Unlock()
	if hello.Attempt > 0 {
		c.logf("dsweep: worker %s reconnected (attempt %d)", hello.Name, hello.Attempt)
	} else {
		c.logf("dsweep: worker %s connected", hello.Name)
	}

	for {
		// Wait for the worker to pull work; an idle worker may sit here
		// arbitrarily long, so no deadline applies (keepalives cover a
		// dead peer).
		typ, _, err := readFrameTimeout(conn, 0)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return hello.Name, nil // worker drained and left
			}
			return hello.Name, fmt.Errorf("ready: %w", err)
		}
		if typ != MsgReady {
			return hello.Name, fmt.Errorf("expected ready, got %v", typ)
		}

		g := c.take()
		if g == nil {
			writeMsgTimeout(conn, iot, MsgBye, nil)
			return hello.Name, nil
		}
		c.lease(g, hello.Name)
		if err := writeMsgTimeout(conn, iot, MsgJob, jobMsg{ID: g.id, Spec: g.spec, Idxs: g.idxs}); err != nil {
			c.requeue(g, fmt.Errorf("send to %s: %w", hello.Name, err))
			return hello.Name, fmt.Errorf("job: %w", err)
		}

		// The lease: the worker must produce the group's outcome within
		// the deadline or it is presumed dead and the group is requeued.
		typ, payload, err := readFrameTimeout(conn, lease)
		if err != nil {
			c.requeue(g, fmt.Errorf("worker %s: %w", hello.Name, err))
			return hello.Name, fmt.Errorf("group %d: %w", g.id, err)
		}
		switch typ {
		case MsgResult:
			var res resultMsg
			if err := decodeMsg(typ, payload, &res); err != nil {
				c.requeue(g, err)
				return hello.Name, err
			}
			if res.ID != g.id {
				err := fmt.Errorf("result for group %d while %d is leased", res.ID, g.id)
				c.requeue(g, err)
				return hello.Name, err
			}
			if len(res.Cells) != len(g.idxs) {
				// A malformed result is a worker bug, not a crash: fail
				// the group rather than recompute the same bug elsewhere.
				c.deliver(g, groupOutcome{err: fmt.Errorf("dsweep: worker %s returned %d cells for %d jobs", hello.Name, len(res.Cells), len(g.idxs))})
				continue
			}
			c.deliver(g, groupOutcome{cells: res.Cells})
			c.mu.Lock()
			ws.completed++
			ws.jobs += uint64(len(g.idxs))
			if res.Cache != nil {
				ws.cache = *res.Cache
			}
			c.mu.Unlock()
		case MsgFail:
			var fail failMsg
			if err := decodeMsg(typ, payload, &fail); err != nil {
				c.requeue(g, err)
				return hello.Name, err
			}
			// Job errors are deterministic; requeueing would repeat them.
			c.deliver(g, groupOutcome{err: fmt.Errorf("dsweep: worker %s: %s", hello.Name, truncate(fail.Error, MaxErrorLen))})
			c.mu.Lock()
			ws.fails++
			c.mu.Unlock()
		default:
			err := fmt.Errorf("expected result, got %v", typ)
			c.requeue(g, err)
			return hello.Name, err
		}
	}
}
