package dsweep

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"
)

// protoVersion is the handshake protocol version, distinct from the frame
// version: the frame layer rejects byte-level skew, the hello rejects
// semantic skew (message meanings, job payload contract). Token and
// Attempt are optional additions within version 1 — absent fields decode
// to their zero values, so a pre-auth worker still interoperates with an
// open (tokenless) coordinator.
const protoVersion = 1

// Field caps the coordinator enforces on worker-supplied strings, so a
// pathological worker cannot bloat coordinator logs, Status output or
// delivered errors. Oversized values are truncated, not rejected — a
// worker with a verbose hostname is clumsy, not hostile.
const (
	// MaxNameLen bounds a worker's Hello name.
	MaxNameLen = 64
	// MaxErrorLen bounds a Fail message's error text.
	MaxErrorLen = 1024
)

// truncate caps s at max bytes, marking the cut with a trailing ellipsis
// (itself 3 bytes, counted inside the cap).
func truncate(s string, max int) string {
	if len(s) <= max {
		return s
	}
	if max <= 3 {
		return s[:max]
	}
	return s[:max-3] + "…"
}

// helloMsg opens a connection in both directions. Token authenticates the
// worker (compared constant-time against the coordinator's token);
// Attempt is the slot's reconnection era — 0 on the first connection,
// n > 0 on its n-th reconnect — which the coordinator surfaces in
// Status() so operators can see a flaky network from one end.
type helloMsg struct {
	Proto   int    `json:"proto"`
	Name    string `json:"name"`
	Token   string `json:"token,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
}

// jobMsg ships one sweep job group: the opaque, JSON-encoded sweep spec
// (the grid's pure description — the worker reconstructs configs and
// traces from it) plus the grid indices to execute.
type jobMsg struct {
	ID   uint64          `json:"id"`
	Spec json.RawMessage `json:"spec"`
	Idxs []int           `json:"idxs"`
}

// CacheCounts are a worker's monotonic trace-cache counters. Each Result
// frame carries the worker process's current values (an additive protocol
// field — absent on old workers, decoding to zeros), so the coordinator's
// Status() shows per-worker cache effectiveness without a separate
// metrics channel.
type CacheCounts struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// resultMsg returns a completed group: one JSON-encoded cell per index,
// in index order, plus the worker's current trace-cache counters.
type resultMsg struct {
	ID    uint64            `json:"id"`
	Cells []json.RawMessage `json:"cells"`
	Cache *CacheCounts      `json:"cache,omitempty"`
}

// failMsg reports a group whose execution failed. The coordinator fails
// the group without requeueing it: job errors are deterministic, so
// another worker would only reproduce them.
type failMsg struct {
	ID    uint64 `json:"id"`
	Error string `json:"error"`
}

// writeMsg JSON-encodes one message body into a frame and writes it. A
// nil body writes an empty payload (bare signals: Ready, Bye).
func writeMsg(w io.Writer, typ MsgType, body any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("dsweep: encode %v: %w", typ, err)
		}
	}
	return WriteFrame(w, typ, payload)
}

// writeMsgTimeout is writeMsg under a write deadline: a peer that has
// stopped draining its socket fails the write within timeout instead of
// blocking the caller forever (the half-open/stalled-peer hardening).
// timeout <= 0 writes without a deadline.
func writeMsgTimeout(conn net.Conn, timeout time.Duration, typ MsgType, body any) error {
	if timeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(timeout))
		defer conn.SetWriteDeadline(time.Time{})
	}
	return writeMsg(conn, typ, body)
}

// readFrameTimeout is ReadFrame under a read deadline; timeout <= 0
// clears any previous deadline and blocks indefinitely (the protocol's
// deliberate idle waits).
func readFrameTimeout(conn net.Conn, timeout time.Duration) (MsgType, []byte, error) {
	if timeout > 0 {
		conn.SetReadDeadline(time.Now().Add(timeout))
	} else {
		conn.SetReadDeadline(time.Time{})
	}
	return ReadFrame(conn)
}

// decodeMsg parses a frame payload into the expected message body.
func decodeMsg(typ MsgType, payload []byte, body any) error {
	if err := json.Unmarshal(payload, body); err != nil {
		return fmt.Errorf("dsweep: decode %v: %w", typ, err)
	}
	return nil
}
