package dsweep

import (
	"encoding/json"
	"fmt"
	"io"
)

// protoVersion is the handshake protocol version, distinct from the frame
// version: the frame layer rejects byte-level skew, the hello rejects
// semantic skew (message meanings, job payload contract).
const protoVersion = 1

// helloMsg opens a connection in both directions.
type helloMsg struct {
	Proto int    `json:"proto"`
	Name  string `json:"name"`
}

// jobMsg ships one sweep job group: the opaque, JSON-encoded sweep spec
// (the grid's pure description — the worker reconstructs configs and
// traces from it) plus the grid indices to execute.
type jobMsg struct {
	ID   uint64          `json:"id"`
	Spec json.RawMessage `json:"spec"`
	Idxs []int           `json:"idxs"`
}

// resultMsg returns a completed group: one JSON-encoded cell per index,
// in index order.
type resultMsg struct {
	ID    uint64            `json:"id"`
	Cells []json.RawMessage `json:"cells"`
}

// failMsg reports a group whose execution failed. The coordinator fails
// the group without requeueing it: job errors are deterministic, so
// another worker would only reproduce them.
type failMsg struct {
	ID    uint64 `json:"id"`
	Error string `json:"error"`
}

// writeMsg JSON-encodes one message body into a frame and writes it. A
// nil body writes an empty payload (bare signals: Ready, Bye).
func writeMsg(w io.Writer, typ MsgType, body any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("dsweep: encode %v: %w", typ, err)
		}
	}
	return WriteFrame(w, typ, payload)
}

// decodeMsg parses a frame payload into the expected message body.
func decodeMsg(typ MsgType, payload []byte, body any) error {
	if err := json.Unmarshal(payload, body); err != nil {
		return fmt.Errorf("dsweep: decode %v: %w", typ, err)
	}
	return nil
}
