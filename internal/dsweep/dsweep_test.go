package dsweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// startCoordinator serves a test coordinator on an ephemeral port.
func startCoordinator(t *testing.T, opt Options) (*Coordinator, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(opt)
	go c.Serve(ln)
	t.Cleanup(func() { c.Close() })
	return c, ln.Addr().String()
}

// echoRunner returns one cell per index holding the index itself, so the
// test can verify order and coverage end to end.
func echoRunner(calls *atomic.Int64) GroupRunner {
	return func(_ context.Context, spec []byte, idxs []int) ([]json.RawMessage, error) {
		if calls != nil {
			calls.Add(1)
		}
		cells := make([]json.RawMessage, len(idxs))
		for k, i := range idxs {
			cells[k] = json.RawMessage(fmt.Sprintf(`{"idx":%d,"spec":%s}`, i, spec))
		}
		return cells, nil
	}
}

// rawWorker speaks the wire protocol by hand, so tests can misbehave in
// ways the real Work loop never would.
type rawWorker struct {
	t    *testing.T
	conn net.Conn
}

func dialRaw(t *testing.T, addr string, proto int) *rawWorker {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := writeMsg(conn, MsgHello, helloMsg{Proto: proto, Name: "raw"}); err != nil {
		t.Fatal(err)
	}
	return &rawWorker{t: t, conn: conn}
}

// expect reads one frame and asserts its type.
func (w *rawWorker) expect(typ MsgType) []byte {
	w.t.Helper()
	w.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, payload, err := ReadFrame(w.conn)
	if err != nil {
		w.t.Fatalf("expecting %v: %v", typ, err)
	}
	if got != typ {
		w.t.Fatalf("expected %v, got %v", typ, got)
	}
	return payload
}

// takeJob completes the handshake if needed, pulls one job and returns it.
func (w *rawWorker) takeJob() jobMsg {
	w.t.Helper()
	if err := writeMsg(w.conn, MsgReady, nil); err != nil {
		w.t.Fatal(err)
	}
	var job jobMsg
	if err := decodeMsg(MsgJob, w.expect(MsgJob), &job); err != nil {
		w.t.Fatal(err)
	}
	return job
}

func runGroup(t *testing.T, c *Coordinator, idxs []int) []json.RawMessage {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cells, err := c.RunGroup(ctx, []byte(`{"kind":"test"}`), idxs)
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

func TestCoordinatorRoundTrip(t *testing.T) {
	c, addr := startCoordinator(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- Work(ctx, addr, echoRunner(nil), WorkOptions{Name: "w", Slots: 2}) }()

	// Several groups in flight at once exercise the work-stealing pull.
	type res struct {
		idxs  []int
		cells []json.RawMessage
	}
	results := make(chan res, 3)
	for g := 0; g < 3; g++ {
		idxs := []int{g * 10, g*10 + 1}
		go func() { results <- res{idxs, runGroup(t, c, idxs)} }()
	}
	for g := 0; g < 3; g++ {
		r := <-results
		if len(r.cells) != len(r.idxs) {
			t.Fatalf("group %v: %d cells", r.idxs, len(r.cells))
		}
		for k, i := range r.idxs {
			var cell struct {
				Idx int `json:"idx"`
			}
			if err := json.Unmarshal(r.cells[k], &cell); err != nil || cell.Idx != i {
				t.Fatalf("cell %d: %s (%v), want idx %d", k, r.cells[k], err, i)
			}
		}
	}

	// Cancelling the worker context drains it cleanly.
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("worker drain: %v", err)
	}
}

func TestWorkerCrashRequeues(t *testing.T) {
	c, addr := startCoordinator(t, Options{})

	// The victim takes the group and crashes (connection drops mid-lease).
	victim := dialRaw(t, addr, protoVersion)
	victim.expect(MsgHello)
	result := make(chan []json.RawMessage, 1)
	go func() { result <- runGroup(t, c, []int{4, 5, 6}) }()
	job := victim.takeJob()
	if len(job.Idxs) != 3 {
		t.Fatalf("job idxs %v", job.Idxs)
	}
	victim.conn.Close()

	// A healthy worker picks the requeued group up and completes it.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	go Work(ctx, addr, echoRunner(&calls), WorkOptions{Name: "healthy"})

	cells := <-result
	if len(cells) != 3 {
		t.Fatalf("requeued group returned %d cells", len(cells))
	}
	if calls.Load() != 1 {
		t.Fatalf("healthy worker ran the group %d times", calls.Load())
	}
}

func TestLeaseTimeoutRequeues(t *testing.T) {
	c, addr := startCoordinator(t, Options{Lease: 50 * time.Millisecond})

	// The slow worker takes the group and goes silent without dying.
	slow := dialRaw(t, addr, protoVersion)
	slow.expect(MsgHello)
	result := make(chan []json.RawMessage, 1)
	go func() { result <- runGroup(t, c, []int{7}) }()
	slow.takeJob() // never answers

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go Work(ctx, addr, echoRunner(nil), WorkOptions{Name: "healthy"})

	if cells := <-result; len(cells) != 1 {
		t.Fatalf("leased-out group returned %d cells", len(cells))
	}
}

func TestJobErrorFailsWithoutRequeue(t *testing.T) {
	c, addr := startCoordinator(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	go Work(ctx, addr, func(context.Context, []byte, []int) ([]json.RawMessage, error) {
		calls.Add(1)
		return nil, errors.New("deterministic sim failure")
	}, WorkOptions{Name: "failing"})

	rctx, rcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer rcancel()
	_, err := c.RunGroup(rctx, []byte(`{}`), []int{0})
	if err == nil || !strings.Contains(err.Error(), "deterministic sim failure") {
		t.Fatalf("want the job error, got %v", err)
	}
	// The error is final: the group must not bounce to another attempt.
	time.Sleep(50 * time.Millisecond)
	if calls.Load() != 1 {
		t.Fatalf("failed group ran %d times, want 1", calls.Load())
	}
}

func TestMaxAttemptsFailsGroup(t *testing.T) {
	c, addr := startCoordinator(t, Options{MaxAttempts: 2})
	result := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, err := c.RunGroup(ctx, []byte(`{}`), []int{0})
		result <- err
	}()
	// Two consecutive workers crash on the same group.
	for i := 0; i < 2; i++ {
		w := dialRaw(t, addr, protoVersion)
		w.expect(MsgHello)
		w.takeJob()
		w.conn.Close()
	}
	err := <-result
	if err == nil || !strings.Contains(err.Error(), "lost 2 workers") {
		t.Fatalf("want a lost-workers failure, got %v", err)
	}
}

func TestRunGroupContextCancel(t *testing.T) {
	c, _ := startCoordinator(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.RunGroup(ctx, []byte(`{}`), []int{0}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The cancelled group must not linger for the next worker.
	c.mu.Lock()
	queued := len(c.queue)
	c.mu.Unlock()
	if queued != 0 {
		t.Fatalf("%d groups still queued after cancellation", queued)
	}
}

func TestProtocolVersionMismatch(t *testing.T) {
	_, addr := startCoordinator(t, Options{})
	w := dialRaw(t, addr, protoVersion+1)
	w.expect(MsgBye)
}

func TestCloseFailsQueuedGroups(t *testing.T) {
	c, _ := startCoordinator(t, Options{})
	result := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, err := c.RunGroup(ctx, []byte(`{}`), []int{0})
		result <- err
	}()
	// Wait until the group is queued, then shut down.
	for {
		c.mu.Lock()
		n := len(c.queue)
		c.mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()
	err := <-result
	if err == nil || !strings.Contains(err.Error(), "coordinator closed") {
		t.Fatalf("want a closed-coordinator failure, got %v", err)
	}
	if _, err := c.RunGroup(context.Background(), []byte(`{}`), []int{0}); err == nil {
		t.Fatal("RunGroup after Close succeeded")
	}
}

func TestGracefulDrainDeliversRunningGroup(t *testing.T) {
	c, addr := startCoordinator(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- Work(ctx, addr, func(_ context.Context, spec []byte, idxs []int) ([]json.RawMessage, error) {
			close(started)
			// The cancellation lands while this group is running; the drain
			// contract says the result is still computed and delivered.
			time.Sleep(100 * time.Millisecond)
			return echoRunner(nil)(context.Background(), spec, idxs)
		}, WorkOptions{Name: "draining"})
	}()

	result := make(chan []json.RawMessage, 1)
	go func() { result <- runGroup(t, c, []int{9}) }()
	<-started
	cancel() // SIGTERM mid-group

	if cells := <-result; len(cells) != 1 {
		t.Fatalf("drained group returned %d cells", len(cells))
	}
	if err := <-done; err != nil {
		t.Fatalf("graceful drain returned %v", err)
	}
}

func TestWorkDialFailure(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Nothing listens here; the dial budget must expire with an error.
	err := Work(ctx, "127.0.0.1:1", echoRunner(nil), WorkOptions{Name: "w", DialRetry: 100 * time.Millisecond})
	if err == nil {
		t.Fatal("Work reached a dead address")
	}
}

// pipeDialer returns a Dial hook that connects each dial attempt straight
// to the coordinator through an in-memory pipe, and a kill function that
// severs the most recent connection (both ends), simulating a transport
// reset the worker must recover from.
func pipeDialer(c *Coordinator) (dial func(ctx context.Context, addr string) (net.Conn, error), kill func()) {
	var mu sync.Mutex
	var last [2]net.Conn
	dial = func(ctx context.Context, addr string) (net.Conn, error) {
		p1, p2 := net.Pipe()
		go c.Handle(p2)
		mu.Lock()
		last = [2]net.Conn{p1, p2}
		mu.Unlock()
		return p1, nil
	}
	kill = func() {
		mu.Lock()
		defer mu.Unlock()
		if last[0] != nil {
			last[0].Close()
			last[1].Close()
		}
	}
	return dial, kill
}

func TestWorkerReconnectsAfterTransportLoss(t *testing.T) {
	c := NewCoordinator(Options{})
	t.Cleanup(func() { c.Close() })
	dial, kill := pipeDialer(c)

	started := make(chan struct{})
	killed := make(chan struct{})
	var calls atomic.Int64
	runner := func(_ context.Context, spec []byte, idxs []int) ([]json.RawMessage, error) {
		if calls.Add(1) == 1 {
			close(started)
			<-killed // hold the group until the test severs the connection
		}
		return echoRunner(nil)(context.Background(), spec, idxs)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- Work(ctx, "pipe", runner, WorkOptions{Name: "flaky", Dial: dial, DialRetry: 5 * time.Second})
	}()

	result := make(chan []json.RawMessage, 1)
	go func() { result <- runGroup(t, c, []int{1, 2, 3}) }()

	// Sever the connection while the group runs: the coordinator requeues
	// it off the broken lease, and the slot's result write fails — a
	// non-drain transport loss that must trigger a reconnect.
	<-started
	kill()
	close(killed)

	if cells := <-result; len(cells) != 3 {
		t.Fatalf("group returned %d cells after reconnect", len(cells))
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("group ran %d times, want 2 (once per era)", n)
	}
	st := c.Status()
	if st.Reconnects != 1 {
		t.Fatalf("Status reconnects = %d, want 1\n%s", st.Reconnects, st)
	}
	if len(st.PerWorker) != 1 || st.PerWorker[0].Connects != 2 || st.PerWorker[0].Completed != 1 {
		t.Fatalf("per-worker status: %+v", st.PerWorker)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("worker drain after reconnect: %v", err)
	}
}

func TestReconnectBudgetExhausted(t *testing.T) {
	dial := func(ctx context.Context, addr string) (net.Conn, error) {
		return nil, errors.New("injected dial failure")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := Work(ctx, "pipe", echoRunner(nil), WorkOptions{
		Name: "doomed", Dial: dial, DialRetry: 20 * time.Millisecond, Reconnects: 2,
	})
	if err == nil || !strings.Contains(err.Error(), "consecutive connection failures") {
		t.Fatalf("want a budget-exhausted failure, got %v", err)
	}
}

func TestBadTokenRejected(t *testing.T) {
	c, addr := startCoordinator(t, Options{Token: "s3cret"})

	// Wrong token: terminal for the worker, counted by the coordinator.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := Work(ctx, addr, echoRunner(nil), WorkOptions{Name: "intruder", Token: "guess"})
	if err == nil || !strings.Contains(err.Error(), "rejected the handshake") {
		t.Fatalf("want a handshake rejection, got %v", err)
	}
	if got := c.Status().AuthRejects; got != 1 {
		t.Fatalf("auth rejects = %d, want 1", got)
	}

	// Right token: business as usual.
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	go Work(wctx, addr, echoRunner(nil), WorkOptions{Name: "legit", Token: "s3cret"})
	if cells := runGroup(t, c, []int{1}); len(cells) != 1 {
		t.Fatalf("authenticated worker returned %d cells", len(cells))
	}

	// Empty token against a token-bearing coordinator is also rejected.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := Work(ctx2, addr, echoRunner(nil), WorkOptions{Name: "anon"}); err == nil {
		t.Fatal("tokenless worker passed a token-bearing coordinator")
	}
}

func TestStalledPeerCannotWedgeCoordinator(t *testing.T) {
	// A connection that never sends its hello must release the handler
	// within the I/O deadline, not pin it forever.
	c := NewCoordinator(Options{IOTimeout: 50 * time.Millisecond})
	t.Cleanup(func() { c.Close() })
	p1, p2 := net.Pipe()
	defer p1.Close()
	done := make(chan struct{})
	go func() { c.Handle(p2); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("coordinator handler wedged on a silent peer")
	}
}

func TestStalledPeerCannotWedgeWorker(t *testing.T) {
	// A peer that accepts the connection but never drains it must fail the
	// slot's hello write within the I/O deadline; with reconnection
	// disabled that surfaces as a prompt Work error.
	dial := func(ctx context.Context, addr string) (net.Conn, error) {
		p1, p2 := net.Pipe()
		t.Cleanup(func() { p1.Close(); p2.Close() })
		return p1, nil // nobody ever reads p2
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	err := Work(ctx, "pipe", echoRunner(nil), WorkOptions{
		Name: "stalled", Dial: dial, IOTimeout: 50 * time.Millisecond, Reconnects: -1,
	})
	if err == nil {
		t.Fatal("Work returned nil against a stalled peer")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stalled peer held the slot for %v", elapsed)
	}
}

func TestDrainRaceStillDeliversResult(t *testing.T) {
	// Cancellation landing between the runner returning and the result
	// frame going out must not tear the finished group off the wire.
	c, addr := startCoordinator(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	testHookBeforeReport = func() {
		cancel()
		time.Sleep(50 * time.Millisecond) // give the drain AfterFunc every chance to misfire
	}
	defer func() { testHookBeforeReport = nil }()

	done := make(chan error, 1)
	go func() { done <- Work(ctx, addr, echoRunner(nil), WorkOptions{Name: "racer"}) }()
	if cells := runGroup(t, c, []int{1, 2}); len(cells) != 2 {
		t.Fatalf("drain-raced group returned %d cells", len(cells))
	}
	if err := <-done; err != nil {
		t.Fatalf("drain-raced worker returned %v", err)
	}
}

func TestOversizeFieldsTruncated(t *testing.T) {
	c, addr := startCoordinator(t, Options{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	longName := strings.Repeat("n", 10*MaxNameLen)
	if err := writeMsg(conn, MsgHello, helloMsg{Proto: protoVersion, Name: longName}); err != nil {
		t.Fatal(err)
	}
	w := &rawWorker{t: t, conn: conn}
	w.expect(MsgHello)

	result := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, err := c.RunGroup(ctx, []byte(`{}`), []int{0})
		result <- err
	}()
	job := w.takeJob()
	if err := writeMsg(conn, MsgFail, failMsg{ID: job.ID, Error: strings.Repeat("e", 10*MaxErrorLen)}); err != nil {
		t.Fatal(err)
	}
	gerr := <-result
	if gerr == nil {
		t.Fatal("oversize fail message did not fail the group")
	}
	if len(gerr.Error()) > MaxErrorLen+128 {
		t.Fatalf("delivered error is %d bytes; the coordinator did not truncate", len(gerr.Error()))
	}
	st := c.Status()
	if len(st.PerWorker) != 1 {
		t.Fatalf("per-worker rows: %+v", st.PerWorker)
	}
	if n := len(st.PerWorker[0].Name); n > MaxNameLen {
		t.Fatalf("worker name kept %d bytes, cap is %d", n, MaxNameLen)
	}
	if st.PerWorker[0].Fails != 1 {
		t.Fatalf("fails = %d, want 1", st.PerWorker[0].Fails)
	}
}

func TestStatusSnapshot(t *testing.T) {
	c, addr := startCoordinator(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go Work(ctx, addr, echoRunner(nil), WorkOptions{Name: "obs"})

	for g := 0; g < 3; g++ {
		runGroup(t, c, []int{g * 2, g*2 + 1})
	}
	var st Status
	for deadline := time.Now().Add(5 * time.Second); ; {
		st = c.Status()
		if st.Workers == 1 && len(st.PerWorker) == 1 && st.PerWorker[0].Completed == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("status never settled: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if st.Queued != 0 || st.InFlight != 0 {
		t.Fatalf("idle coordinator shows queued=%d inflight=%d", st.Queued, st.InFlight)
	}
	w := st.PerWorker[0]
	if w.Name != "obs" || !w.Connected || w.Jobs != 6 || w.Connects != 1 {
		t.Fatalf("per-worker row: %+v", w)
	}
	out := st.String()
	for _, want := range []string{"queued", "obs", "6 jobs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Status.String() = %q, missing %q", out, want)
		}
	}
}

func TestBackoffJitterDeterministic(t *testing.T) {
	seedA, seedB := slotSeed("w/0"), slotSeed("w/1")
	if seedA == seedB {
		t.Fatal("distinct slots share a jitter seed")
	}
	distinct := false
	for n := 1; n <= 8; n++ {
		da, db := reconnectDelay(seedA, n), reconnectDelay(seedB, n)
		if da != reconnectDelay(seedA, n) {
			t.Fatalf("reconnectDelay(%d) is not deterministic", n)
		}
		if da != db {
			distinct = true
		}
		if da <= 0 || da > 3*time.Second {
			t.Fatalf("reconnectDelay(%d) = %v out of range", n, da)
		}
	}
	if !distinct {
		t.Fatal("two slots backed off in lockstep across every attempt")
	}
	for attempt := 0; attempt < 8; attempt++ {
		j := backoffJitter(seedA, attempt, 100*time.Millisecond)
		if j < 0 || j >= 50*time.Millisecond {
			t.Fatalf("jitter %v outside [0, base/2)", j)
		}
	}
}

func TestWorkerReconnectsAfterCoordinatorEOF(t *testing.T) {
	// A bare EOF on the pull wait (coordinator crashed or the connection
	// died cleanly) is not a drain — only an explicit Bye is. The slot
	// must re-dial and keep serving the campaign.
	c := NewCoordinator(Options{})
	t.Cleanup(func() { c.Close() })
	var mu sync.Mutex
	var remote net.Conn
	dial := func(ctx context.Context, addr string) (net.Conn, error) {
		p1, p2 := net.Pipe()
		go c.Handle(p2)
		mu.Lock()
		remote = p2
		mu.Unlock()
		return p1, nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- Work(ctx, "pipe", echoRunner(nil), WorkOptions{Name: "eof", Dial: dial})
	}()

	// Let the worker handshake, then close the coordinator end under it.
	for deadline := time.Now().Add(5 * time.Second); c.Status().Workers == 0; {
		if time.Now().After(deadline) {
			t.Fatal("worker never handshaked")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	remote.Close()
	mu.Unlock()

	for deadline := time.Now().Add(10 * time.Second); c.Status().Reconnects == 0; {
		if time.Now().After(deadline) {
			t.Fatalf("worker never reconnected after EOF\n%s", c.Status())
		}
		time.Sleep(time.Millisecond)
	}
	if cells := runGroup(t, c, []int{1, 2}); len(cells) != 2 {
		t.Fatalf("post-EOF group returned %d cells", len(cells))
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("worker drain after EOF reconnect: %v", err)
	}
}
