package dsweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// startCoordinator serves a test coordinator on an ephemeral port.
func startCoordinator(t *testing.T, opt Options) (*Coordinator, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(opt)
	go c.Serve(ln)
	t.Cleanup(func() { c.Close() })
	return c, ln.Addr().String()
}

// echoRunner returns one cell per index holding the index itself, so the
// test can verify order and coverage end to end.
func echoRunner(calls *atomic.Int64) GroupRunner {
	return func(_ context.Context, spec []byte, idxs []int) ([]json.RawMessage, error) {
		if calls != nil {
			calls.Add(1)
		}
		cells := make([]json.RawMessage, len(idxs))
		for k, i := range idxs {
			cells[k] = json.RawMessage(fmt.Sprintf(`{"idx":%d,"spec":%s}`, i, spec))
		}
		return cells, nil
	}
}

// rawWorker speaks the wire protocol by hand, so tests can misbehave in
// ways the real Work loop never would.
type rawWorker struct {
	t    *testing.T
	conn net.Conn
}

func dialRaw(t *testing.T, addr string, proto int) *rawWorker {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if err := writeMsg(conn, MsgHello, helloMsg{Proto: proto, Name: "raw"}); err != nil {
		t.Fatal(err)
	}
	return &rawWorker{t: t, conn: conn}
}

// expect reads one frame and asserts its type.
func (w *rawWorker) expect(typ MsgType) []byte {
	w.t.Helper()
	w.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, payload, err := ReadFrame(w.conn)
	if err != nil {
		w.t.Fatalf("expecting %v: %v", typ, err)
	}
	if got != typ {
		w.t.Fatalf("expected %v, got %v", typ, got)
	}
	return payload
}

// takeJob completes the handshake if needed, pulls one job and returns it.
func (w *rawWorker) takeJob() jobMsg {
	w.t.Helper()
	if err := writeMsg(w.conn, MsgReady, nil); err != nil {
		w.t.Fatal(err)
	}
	var job jobMsg
	if err := decodeMsg(MsgJob, w.expect(MsgJob), &job); err != nil {
		w.t.Fatal(err)
	}
	return job
}

func runGroup(t *testing.T, c *Coordinator, idxs []int) []json.RawMessage {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cells, err := c.RunGroup(ctx, []byte(`{"kind":"test"}`), idxs)
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

func TestCoordinatorRoundTrip(t *testing.T) {
	c, addr := startCoordinator(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- Work(ctx, addr, echoRunner(nil), WorkOptions{Name: "w", Slots: 2}) }()

	// Several groups in flight at once exercise the work-stealing pull.
	type res struct {
		idxs  []int
		cells []json.RawMessage
	}
	results := make(chan res, 3)
	for g := 0; g < 3; g++ {
		idxs := []int{g * 10, g*10 + 1}
		go func() { results <- res{idxs, runGroup(t, c, idxs)} }()
	}
	for g := 0; g < 3; g++ {
		r := <-results
		if len(r.cells) != len(r.idxs) {
			t.Fatalf("group %v: %d cells", r.idxs, len(r.cells))
		}
		for k, i := range r.idxs {
			var cell struct {
				Idx int `json:"idx"`
			}
			if err := json.Unmarshal(r.cells[k], &cell); err != nil || cell.Idx != i {
				t.Fatalf("cell %d: %s (%v), want idx %d", k, r.cells[k], err, i)
			}
		}
	}

	// Cancelling the worker context drains it cleanly.
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("worker drain: %v", err)
	}
}

func TestWorkerCrashRequeues(t *testing.T) {
	c, addr := startCoordinator(t, Options{})

	// The victim takes the group and crashes (connection drops mid-lease).
	victim := dialRaw(t, addr, protoVersion)
	victim.expect(MsgHello)
	result := make(chan []json.RawMessage, 1)
	go func() { result <- runGroup(t, c, []int{4, 5, 6}) }()
	job := victim.takeJob()
	if len(job.Idxs) != 3 {
		t.Fatalf("job idxs %v", job.Idxs)
	}
	victim.conn.Close()

	// A healthy worker picks the requeued group up and completes it.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	go Work(ctx, addr, echoRunner(&calls), WorkOptions{Name: "healthy"})

	cells := <-result
	if len(cells) != 3 {
		t.Fatalf("requeued group returned %d cells", len(cells))
	}
	if calls.Load() != 1 {
		t.Fatalf("healthy worker ran the group %d times", calls.Load())
	}
}

func TestLeaseTimeoutRequeues(t *testing.T) {
	c, addr := startCoordinator(t, Options{Lease: 50 * time.Millisecond})

	// The slow worker takes the group and goes silent without dying.
	slow := dialRaw(t, addr, protoVersion)
	slow.expect(MsgHello)
	result := make(chan []json.RawMessage, 1)
	go func() { result <- runGroup(t, c, []int{7}) }()
	slow.takeJob() // never answers

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go Work(ctx, addr, echoRunner(nil), WorkOptions{Name: "healthy"})

	if cells := <-result; len(cells) != 1 {
		t.Fatalf("leased-out group returned %d cells", len(cells))
	}
}

func TestJobErrorFailsWithoutRequeue(t *testing.T) {
	c, addr := startCoordinator(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	go Work(ctx, addr, func(context.Context, []byte, []int) ([]json.RawMessage, error) {
		calls.Add(1)
		return nil, errors.New("deterministic sim failure")
	}, WorkOptions{Name: "failing"})

	rctx, rcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer rcancel()
	_, err := c.RunGroup(rctx, []byte(`{}`), []int{0})
	if err == nil || !strings.Contains(err.Error(), "deterministic sim failure") {
		t.Fatalf("want the job error, got %v", err)
	}
	// The error is final: the group must not bounce to another attempt.
	time.Sleep(50 * time.Millisecond)
	if calls.Load() != 1 {
		t.Fatalf("failed group ran %d times, want 1", calls.Load())
	}
}

func TestMaxAttemptsFailsGroup(t *testing.T) {
	c, addr := startCoordinator(t, Options{MaxAttempts: 2})
	result := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, err := c.RunGroup(ctx, []byte(`{}`), []int{0})
		result <- err
	}()
	// Two consecutive workers crash on the same group.
	for i := 0; i < 2; i++ {
		w := dialRaw(t, addr, protoVersion)
		w.expect(MsgHello)
		w.takeJob()
		w.conn.Close()
	}
	err := <-result
	if err == nil || !strings.Contains(err.Error(), "lost 2 workers") {
		t.Fatalf("want a lost-workers failure, got %v", err)
	}
}

func TestRunGroupContextCancel(t *testing.T) {
	c, _ := startCoordinator(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.RunGroup(ctx, []byte(`{}`), []int{0}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The cancelled group must not linger for the next worker.
	c.mu.Lock()
	queued := len(c.queue)
	c.mu.Unlock()
	if queued != 0 {
		t.Fatalf("%d groups still queued after cancellation", queued)
	}
}

func TestProtocolVersionMismatch(t *testing.T) {
	_, addr := startCoordinator(t, Options{})
	w := dialRaw(t, addr, protoVersion+1)
	w.expect(MsgBye)
}

func TestCloseFailsQueuedGroups(t *testing.T) {
	c, _ := startCoordinator(t, Options{})
	result := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, err := c.RunGroup(ctx, []byte(`{}`), []int{0})
		result <- err
	}()
	// Wait until the group is queued, then shut down.
	for {
		c.mu.Lock()
		n := len(c.queue)
		c.mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()
	err := <-result
	if err == nil || !strings.Contains(err.Error(), "coordinator closed") {
		t.Fatalf("want a closed-coordinator failure, got %v", err)
	}
	if _, err := c.RunGroup(context.Background(), []byte(`{}`), []int{0}); err == nil {
		t.Fatal("RunGroup after Close succeeded")
	}
}

func TestGracefulDrainDeliversRunningGroup(t *testing.T) {
	c, addr := startCoordinator(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- Work(ctx, addr, func(_ context.Context, spec []byte, idxs []int) ([]json.RawMessage, error) {
			close(started)
			// The cancellation lands while this group is running; the drain
			// contract says the result is still computed and delivered.
			time.Sleep(100 * time.Millisecond)
			return echoRunner(nil)(context.Background(), spec, idxs)
		}, WorkOptions{Name: "draining"})
	}()

	result := make(chan []json.RawMessage, 1)
	go func() { result <- runGroup(t, c, []int{9}) }()
	<-started
	cancel() // SIGTERM mid-group

	if cells := <-result; len(cells) != 1 {
		t.Fatalf("drained group returned %d cells", len(cells))
	}
	if err := <-done; err != nil {
		t.Fatalf("graceful drain returned %v", err)
	}
}

func TestWorkDialFailure(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Nothing listens here; the dial budget must expire with an error.
	err := Work(ctx, "127.0.0.1:1", echoRunner(nil), WorkOptions{Name: "w", DialRetry: 100 * time.Millisecond})
	if err == nil {
		t.Fatal("Work reached a dead address")
	}
}
