package dsweep

import (
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/json"
	"encoding/pem"
	"math/big"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeSelfSigned mints a self-signed ECDSA certificate for 127.0.0.1 and
// writes the PEM pair to dir, returning the cert and key paths. The cert
// doubles as its own CA bundle for the worker's -tls-ca.
func writeSelfSigned(t *testing.T, dir string) (certPath, keyPath string) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "dsweep-test"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IPAddresses:           []net.IP{net.ParseIP("127.0.0.1")},
		IsCA:                  true,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		t.Fatal(err)
	}
	certPath = filepath.Join(dir, "coord.crt")
	keyPath = filepath.Join(dir, "coord.key")
	writePEM(t, certPath, "CERTIFICATE", der)
	writePEM(t, keyPath, "EC PRIVATE KEY", keyDER)
	return certPath, keyPath
}

func writePEM(t *testing.T, path, typ string, der []byte) {
	t.Helper()
	if err := os.WriteFile(path, pem.EncodeToMemory(&pem.Block{Type: typ, Bytes: der}), 0o600); err != nil {
		t.Fatal(err)
	}
}

// startTLSCoordinator serves a coordinator behind a TLS listener using a
// fresh self-signed certificate; it returns the coordinator, its address
// and the certificate path (the worker's CA bundle).
func startTLSCoordinator(t *testing.T, opt Options) (*Coordinator, string, string) {
	t.Helper()
	certPath, keyPath := writeSelfSigned(t, t.TempDir())
	cfg, err := ServerTLS(certPath, keyPath)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(opt)
	go c.Serve(tls.NewListener(ln, cfg))
	t.Cleanup(func() { c.Close() })
	return c, ln.Addr().String(), certPath
}

func tcpDial(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// TestTLSEndToEnd runs a full campaign over an encrypted connection with
// token auth riding inside it: a CA-pinning worker completes every group
// and the results match the plaintext protocol's exactly.
func TestTLSEndToEnd(t *testing.T) {
	coord, addr, caPath := startTLSCoordinator(t, Options{Token: "hush"})
	ccfg, err := ClientTLS(caPath, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go Work(ctx, addr, echoRunner(nil), WorkOptions{
		Name:  "tls-worker",
		Token: "hush",
		Dial:  TLSDialer(tcpDial, ccfg),
	})

	for g := 0; g < 3; g++ {
		cells, err := coord.RunGroup(context.Background(), []byte(`{"g":true}`), []int{2 * g, 2*g + 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(cells) != 2 {
			t.Fatalf("group %d: %d cells, want 2", g, len(cells))
		}
		var cell struct{ Idx int }
		if err := json.Unmarshal(cells[0], &cell); err != nil {
			t.Fatal(err)
		}
		if cell.Idx != 2*g {
			t.Fatalf("group %d: first cell is index %d, want %d", g, cell.Idx, 2*g)
		}
	}
	if coord.Status().Workers == 0 {
		t.Fatal("no worker connected in Status after a TLS campaign")
	}
}

// TestTLSSkipVerify pins the -tls-skip-verify path: no CA bundle, still
// encrypted, still working.
func TestTLSSkipVerify(t *testing.T) {
	coord, addr, _ := startTLSCoordinator(t, Options{})
	ccfg, err := ClientTLS("", true)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go Work(ctx, addr, echoRunner(nil), WorkOptions{Name: "insecure", Dial: TLSDialer(tcpDial, ccfg)})
	if _, err := coord.RunGroup(context.Background(), []byte(`{}`), []int{0}); err != nil {
		t.Fatal(err)
	}
}

// TestTLSUntrustedCertRejected pins the verification contract: a worker
// that pins no CA (system roots) must refuse the self-signed coordinator,
// and the failure must read as a certificate problem, not a hang.
func TestTLSUntrustedCertRejected(t *testing.T) {
	_, addr, _ := startTLSCoordinator(t, Options{})
	ccfg, err := ClientTLS("", false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	t.Cleanup(cancel)
	err = Work(ctx, addr, echoRunner(nil), WorkOptions{
		Name:       "untrusting",
		Dial:       TLSDialer(tcpDial, ccfg),
		DialRetry:  500 * time.Millisecond,
		Reconnects: -1,
	})
	if err == nil {
		t.Fatal("worker accepted an untrusted certificate")
	}
	if !strings.Contains(err.Error(), "tls") && !strings.Contains(err.Error(), "certificate") {
		t.Fatalf("failure does not mention TLS: %v", err)
	}
}

// TestTLSPlaintextWorkerAgainstTLSCoordinator pins the mixed-mode
// failure: a plaintext worker dialing a TLS listener must error out
// within its budget rather than wedge the campaign.
func TestTLSPlaintextWorkerAgainstTLSCoordinator(t *testing.T) {
	_, addr, _ := startTLSCoordinator(t, Options{IOTimeout: time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	err := Work(ctx, addr, echoRunner(nil), WorkOptions{
		Name:       "plaintext",
		DialRetry:  500 * time.Millisecond,
		Reconnects: -1,
		IOTimeout:  time.Second,
	})
	if err == nil {
		t.Fatal("plaintext worker completed against a TLS coordinator")
	}
}

// TestClientTLSBadCA pins flag validation: a missing or junk CA file is
// reported, not silently accepted.
func TestClientTLSBadCA(t *testing.T) {
	if _, err := ClientTLS(filepath.Join(t.TempDir(), "nope.pem"), false); err == nil {
		t.Error("missing CA file accepted")
	}
	junk := filepath.Join(t.TempDir(), "junk.pem")
	if err := os.WriteFile(junk, []byte("not a pem"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := ClientTLS(junk, false); err == nil {
		t.Error("junk CA file accepted")
	}
}

// TestServerTLSBadPair pins the coordinator-side validation.
func TestServerTLSBadPair(t *testing.T) {
	dir := t.TempDir()
	if _, err := ServerTLS(filepath.Join(dir, "no.crt"), filepath.Join(dir, "no.key")); err == nil {
		t.Error("missing keypair accepted")
	}
}
