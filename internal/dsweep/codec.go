// Package dsweep distributes sweep job groups across processes: a
// coordinator owns the grid and hands batch-aligned index groups to
// worker processes over a TCP protocol of length-prefixed, CRC32-framed
// messages (the framing idiom of internal/hmc's packet codec).
//
// The coordinator side plugs into the sweep engine as a blocking group
// dispatcher: every group it enqueues is pulled by exactly one worker
// (work stealing — a fast worker simply pulls more groups), executed
// remotely, and its results delivered back in index order by the sweep
// layer, so stdout stays byte-identical at any worker topology. A worker
// that disconnects or goes silent past its lease forfeits the group,
// which is requeued for the surviving workers; a worker that *reports* a
// job error does not trigger a requeue — simulation failures are
// deterministic, so retrying them elsewhere would only repeat the error.
package dsweep

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Wire framing
//
// Every protocol message is one frame:
//
//	[0:4)        magic "DSWP"
//	[4]          version (currently 1)
//	[5]          message type (MsgHello … MsgBye)
//	[6:8)        reserved, must be zero
//	[8:12)       payload length N (uint32, ≤ MaxPayload)
//	[12:12+N)    payload (JSON message body; empty for bare signals)
//	[12+N:16+N)  CRC-32 (IEEE) over bytes [0:12+N)
//
// The decoder validates magic, version, type, reserved bytes and length
// before trusting N, and the trailing CRC before trusting the payload, so
// a truncated, corrupted or oversized frame is rejected — never acted on.

// MsgType identifies a protocol message.
type MsgType uint8

// Protocol messages. Hello opens a connection in both directions; Ready,
// Result and Fail flow worker→coordinator; Job and Bye coordinator→worker.
const (
	MsgHello  MsgType = 1 + iota // handshake: protocol version + peer name
	MsgReady                     // worker pulls one job group
	MsgJob                       // coordinator ships a job group
	MsgResult                    // worker returns a completed group
	MsgFail                      // worker reports a group's job error
	MsgBye                       // coordinator drains the worker: no more work
	msgTypeEnd
)

func (t MsgType) valid() bool { return t >= MsgHello && t < msgTypeEnd }

func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgReady:
		return "ready"
	case MsgJob:
		return "job"
	case MsgResult:
		return "result"
	case MsgFail:
		return "fail"
	case MsgBye:
		return "bye"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

const (
	frameHeaderBytes  = 12
	frameTrailerBytes = 4
	// MaxPayload bounds one frame's payload: large enough for a batch
	// group of full simulation results, small enough that a corrupt
	// length field cannot make the reader allocate gigabytes.
	MaxPayload = 16 << 20
)

// frameMagic identifies a dsweep protocol frame.
var frameMagic = [4]byte{'D', 'S', 'W', 'P'}

// frameVersion is the current wire-format version; both ends reject a
// mismatch at decode time, so a version skew fails fast and loudly.
const frameVersion = 1

// ErrBadFrame reports a frame the decoder rejected; errors.Is matches it
// for every framing failure (magic, version, type, length, CRC).
var ErrBadFrame = errors.New("dsweep: bad frame")

// EncodeFrame serializes one protocol message into its wire frame.
func EncodeFrame(typ MsgType, payload []byte) ([]byte, error) {
	if !typ.valid() {
		return nil, fmt.Errorf("%w: unknown message type %d", ErrBadFrame, uint8(typ))
	}
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("%w: payload %d bytes exceeds %d", ErrBadFrame, len(payload), MaxPayload)
	}
	buf := make([]byte, frameHeaderBytes+len(payload)+frameTrailerBytes)
	copy(buf[0:4], frameMagic[:])
	buf[4] = frameVersion
	buf[5] = byte(typ)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(payload)))
	copy(buf[frameHeaderBytes:], payload)
	end := frameHeaderBytes + len(payload)
	binary.LittleEndian.PutUint32(buf[end:], crc32.ChecksumIEEE(buf[:end]))
	return buf, nil
}

// decodeHeader validates a frame header and returns the message type and
// payload length it announces.
func decodeHeader(hdr []byte) (MsgType, int, error) {
	if len(hdr) < frameHeaderBytes {
		return 0, 0, fmt.Errorf("%w: header %d bytes, want %d", ErrBadFrame, len(hdr), frameHeaderBytes)
	}
	if [4]byte(hdr[0:4]) != frameMagic {
		return 0, 0, fmt.Errorf("%w: magic %q", ErrBadFrame, hdr[0:4])
	}
	if hdr[4] != frameVersion {
		return 0, 0, fmt.Errorf("%w: version %d, want %d", ErrBadFrame, hdr[4], frameVersion)
	}
	typ := MsgType(hdr[5])
	if !typ.valid() {
		return 0, 0, fmt.Errorf("%w: unknown message type %d", ErrBadFrame, hdr[5])
	}
	if hdr[6] != 0 || hdr[7] != 0 {
		return 0, 0, fmt.Errorf("%w: reserved bytes set", ErrBadFrame)
	}
	n := binary.LittleEndian.Uint32(hdr[8:12])
	if n > MaxPayload {
		return 0, 0, fmt.Errorf("%w: payload length %d exceeds %d", ErrBadFrame, n, MaxPayload)
	}
	return typ, int(n), nil
}

// DecodeFrame parses exactly one wire frame from buf. Every reject wraps
// ErrBadFrame; a decoded frame re-encodes to the identical bytes.
func DecodeFrame(buf []byte) (MsgType, []byte, error) {
	typ, n, err := decodeHeader(buf)
	if err != nil {
		return 0, nil, err
	}
	if len(buf) != frameHeaderBytes+n+frameTrailerBytes {
		return 0, nil, fmt.Errorf("%w: frame length %d, want %d", ErrBadFrame, len(buf), frameHeaderBytes+n+frameTrailerBytes)
	}
	end := frameHeaderBytes + n
	if got, want := binary.LittleEndian.Uint32(buf[end:]), crc32.ChecksumIEEE(buf[:end]); got != want {
		return 0, nil, fmt.Errorf("%w: CRC %#x, computed %#x", ErrBadFrame, got, want)
	}
	payload := make([]byte, n)
	copy(payload, buf[frameHeaderBytes:end])
	return typ, payload, nil
}

// WriteFrame encodes and writes one message as a single Write, so a
// crashed sender tears at most the frame in flight.
func WriteFrame(w io.Writer, typ MsgType, payload []byte) error {
	buf, err := EncodeFrame(typ, payload)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads exactly one frame from the stream. The header is
// validated before the payload is allocated, so a corrupt length cannot
// balloon memory; a short read surfaces as the transport's error. A clean
// EOF before any header byte is returned as io.EOF so callers can tell a
// closed peer from a torn frame (io.ErrUnexpectedEOF).
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	hdr := make([]byte, frameHeaderBytes)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	typ, n, err := decodeHeader(hdr)
	if err != nil {
		return 0, nil, err
	}
	rest := make([]byte, n+frameTrailerBytes)
	if _, err := io.ReadFull(r, rest); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	crc := crc32.ChecksumIEEE(hdr)
	crc = crc32.Update(crc, crc32.IEEETable, rest[:n])
	if got := binary.LittleEndian.Uint32(rest[n:]); got != crc {
		return 0, nil, fmt.Errorf("%w: CRC %#x, computed %#x", ErrBadFrame, got, crc)
	}
	return typ, rest[:n], nil
}
