package sim

import (
	"strings"
	"testing"

	"hmccoal/internal/trace"
)

func TestLowestParked(t *testing.T) {
	cases := []struct {
		parked []bool
		want   int
	}{
		{[]bool{false, true, true, false}, 1},
		{[]bool{true, true}, 0},
		{[]bool{false, false, false, true}, 3},
		{[]bool{false, false}, 0}, // nothing parked: defensive default
	}
	for _, c := range cases {
		if got := lowestParked(c.parked); got != c.want {
			t.Errorf("lowestParked(%v) = %d, want %d", c.parked, got, c.want)
		}
	}
}

// TestDeadlockMessageStable locks the deadlock diagnostic's exact wording:
// it must name the lowest-numbered parked CPU and render the same bytes on
// every run so deadlocks are comparable across reports.
func TestDeadlockMessageStable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hierarchy.CPUs = 2
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := s.deadlockError([]bool{true, true}, []uint64{7, 480}, []bool{false, true}).Error()
	want := "sim: deadlock: CPU 0 parked (fence=false) at 7 with no memory events; " +
		"outstanding=[0 0] tokens=0/0 pending=0 crq=0: lastAdvance=0 freedAt=0 lastIssue=0 free=16"
	if got != want {
		t.Errorf("deadlock message drifted:\n got %q\nwant %q", got, want)
	}
	// Both CPUs parked: the report must pick CPU 0, not the last to park.
	late := s.deadlockError([]bool{false, true}, []uint64{7, 480}, []bool{false, true}).Error()
	if !strings.Contains(late, "CPU 1 parked (fence=true) at 480") {
		t.Errorf("wrong CPU reported: %q", late)
	}
}

// TestSameCoreRetouchWindow exercises the in-flight line re-touch logic in
// Run: a second touch of a line whose fill is outstanding is absorbed when
// it comes from the same core inside sameCoreWindow (the private L1 MSHR
// subentry effect), but regenerates an LLC request when it comes from a
// different core or after the window.
func TestSameCoreRetouchWindow(t *testing.T) {
	run := func(second trace.Access) Result {
		t.Helper()
		cfg := DefaultConfig()
		cfg.Mode = Baseline
		cfg.Hierarchy.CPUs = 2
		s, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run([]trace.Access{
			{Addr: 0, Size: 8, Kind: trace.Load, CPU: 0, Tick: 0},
			second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	absorbed := run(trace.Access{Addr: 8, Size: 8, Kind: trace.Load, CPU: 0, Tick: 10})
	crossCore := run(trace.Access{Addr: 8, Size: 8, Kind: trace.Load, CPU: 1, Tick: 10})
	lateSame := run(trace.Access{Addr: 8, Size: 8, Kind: trace.Load, CPU: 0, Tick: sameCoreWindow + 52})

	if crossCore.Coalescer.Requests != absorbed.Coalescer.Requests+1 {
		t.Errorf("cross-core re-touch not regenerated: %d requests vs %d absorbed",
			crossCore.Coalescer.Requests, absorbed.Coalescer.Requests)
	}
	if lateSame.Coalescer.Requests != absorbed.Coalescer.Requests+1 {
		t.Errorf("post-window same-core re-touch not regenerated: %d requests vs %d absorbed",
			lateSame.Coalescer.Requests, absorbed.Coalescer.Requests)
	}
}
