package sim

import (
	"fmt"

	"hmccoal/internal/trace"
)

// BatchJob is one run in a batch: a named configuration replaying a trace.
type BatchJob struct {
	// Name labels the job in batch error messages ("HPCG/two-phase").
	Name string
	Cfg  Config
	// Accs is the trace to replay. Ignored when Index is set.
	Accs []trace.Access
	// Index, when non-nil, is a pre-bucketed index of the trace, shared
	// read-only across every job replaying it; lanes then skip the per-run
	// CSR bucketing. It must have been built for Cfg.Hierarchy.CPUs.
	Index *TraceIndex
}

// batchStride is how many Steps a lane takes before the engine moves to
// the next lane. Lanes are independent Systems, so any value produces
// byte-identical results; the stride only trades locality against refill
// promptness. Each lane drags megabytes of cache-tag state with it, so the
// stride is sized in the thousands to keep one lane's working set hot
// across its whole turn instead of ping-ponging tags between lanes every
// few hundred ticks.
const batchStride = 8192

// RunBatch advances up to width independent Systems in lockstep through
// the staged tick loop and returns one Result per job, in job order. Lane
// state is kept structure-of-arrays (engines and job bindings in parallel
// slices indexed by lane); a lane whose run completes retires immediately —
// its Result is recorded and the lane refills from the next pending job
// without waiting for the rest of the batch. Refilling reuses the lane's
// System via Reset when the hierarchy matches, so a dense sweep pays the
// multi-megabyte system construction once per lane instead of once per
// job.
//
// Every lane is a fully independent System, so per-run Results are
// byte-identical to running each job alone (width 1 IS the one-job-at-a-
// time path). The first job error aborts the batch, wrapped with the job's
// index and name; results of jobs that never finished stay zero.
func RunBatch(jobs []BatchJob, width int) ([]Result, error) {
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results, nil
	}
	if width <= 0 {
		width = 1
	}
	if width > len(jobs) {
		width = len(jobs)
	}

	lanes := make([]*System, width) // lane → engine (nil once retired for good)
	laneJob := make([]int, width)   // lane → index of the job it is running
	next := 0                       // next unassigned job

	// fill binds the next pending job to lane, recycling the lane's engine
	// when the cache hierarchy carries over. It reports whether the lane
	// is live (false: no jobs left, lane retired).
	fill := func(lane int) (bool, error) {
		if next >= len(jobs) {
			lanes[lane] = nil
			return false, nil
		}
		j := next
		next++
		bj := &jobs[j]
		sys := lanes[lane]
		var err error
		if sys != nil && sys.Config().Hierarchy == bj.Cfg.Hierarchy {
			err = sys.Reset(bj.Cfg)
		} else {
			sys, err = NewSystem(bj.Cfg)
		}
		if err == nil {
			if bj.Index != nil {
				err = sys.StartIndexed(bj.Index)
			} else {
				err = sys.Start(bj.Accs)
			}
		}
		if err != nil {
			return false, fmt.Errorf("batch job %d (%s): %w", j, bj.Name, err)
		}
		lanes[lane] = sys
		laneJob[lane] = j
		return true, nil
	}

	active := 0
	for lane := 0; lane < width; lane++ {
		live, err := fill(lane)
		if err != nil {
			return results, err
		}
		if live {
			active++
		}
	}

	for active > 0 {
		for lane := 0; lane < width; lane++ {
			sys := lanes[lane]
			if sys == nil {
				continue
			}
			done := false
			for k := 0; k < batchStride && !done; k++ {
				var err error
				done, err = sys.Step()
				if err != nil {
					j := laneJob[lane]
					return results, fmt.Errorf("batch job %d (%s): %w", j, jobs[j].Name, err)
				}
			}
			if !done {
				continue
			}
			res, err := sys.Finish()
			if err != nil {
				j := laneJob[lane]
				return results, fmt.Errorf("batch job %d (%s): %w", j, jobs[j].Name, err)
			}
			results[laneJob[lane]] = res
			live, err := fill(lane)
			if err != nil {
				return results, err
			}
			if !live {
				active--
			}
		}
	}
	return results, nil
}
