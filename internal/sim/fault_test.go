package sim

import (
	"strings"
	"testing"

	"hmccoal/internal/fault"
)

// faultConfig returns the evaluation system with fault injection set up.
func faultConfig(f fault.Config) Config {
	cfg := DefaultConfig()
	cfg.HMC.Fault = f
	return cfg
}

// TestWatchdogMessageStable: a dropped response must terminate the run
// with a deterministic watchdog diagnostic naming the doomed line and the
// link state — never an infinite tick loop.
func TestWatchdogMessageStable(t *testing.T) {
	run := func() string {
		cfg := faultConfig(fault.Config{Seed: 1, DropRate: 1})
		s, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		accs := genTrace(t, "STREAM", 50)[:200]
		_, err = s.Run(accs)
		if err == nil {
			t.Fatal("run with every response dropped completed without error")
		}
		return err.Error()
	}
	msg1 := run()
	msg2 := run()
	if msg1 != msg2 {
		t.Fatalf("watchdog diagnostic unstable:\n%s\n%s", msg1, msg2)
	}
	for _, want := range []string{
		"watchdog",      // it is the watchdog, not a deadlock report
		"never arrived", // names the failure mode
		"MSHR entry",    // names the owning MSHR entry
		"line",          // names the oldest outstanding line
		"links:",        // includes the link state
		"dropped=",      // per-link drop counters
	} {
		if !strings.Contains(msg1, want) {
			t.Errorf("diagnostic %q missing %q", msg1, want)
		}
	}
}

// TestFaultedRunCompletes: with a high BER every packet poisons and the
// span retries exhaust, but the run still terminates with every waiter
// accounted (as failed), never hanging or leaking tokens.
func TestFaultedRunCompletes(t *testing.T) {
	cfg := faultConfig(fault.Config{Seed: 3, BER: 1, MaxRetries: 1})
	cfg.Coalescer.MaxPacketRetries = 2
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	accs := genTrace(t, "STREAM", 100)
	res, err := s.Run(accs)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedLoads == 0 {
		t.Error("BER=1 produced no failed loads")
	}
	if !res.FaultsObserved() {
		t.Error("FaultsObserved false under BER=1")
	}
	if res.HMC.PoisonedResponses == 0 || res.Coalescer.RetriedPackets == 0 {
		t.Errorf("fault counters empty: %d poisoned, %d retried",
			res.HMC.PoisonedResponses, res.Coalescer.RetriedPackets)
	}
}

// TestFaultedRunDeterministic: the acceptance criterion — same seed, same
// trace, byte-identical summary, fault counters and all.
func TestFaultedRunDeterministic(t *testing.T) {
	run := func() string {
		cfg := faultConfig(fault.Config{Seed: 42, BER: 5e-5})
		s, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(genTrace(t, "STREAM", 400))
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("faulted run not reproducible:\n%s\n%s", a, b)
	}
}

// TestFaultsDegradeTheRun: injected errors must cost wall-clock time and
// bandwidth relative to the same trace on a clean link, and the summary
// must say so — while the clean run's summary stays free of fault lines.
func TestFaultsDegradeTheRun(t *testing.T) {
	accs := genTrace(t, "STREAM", 400)
	run := func(f fault.Config) Result {
		s, err := NewSystem(faultConfig(f))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(accs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run(fault.Config{})
	faulty := run(fault.Config{Seed: 9, BER: 2e-4})

	if faulty.RuntimeCycles < clean.RuntimeCycles {
		t.Errorf("faults sped the run up: %d < %d cycles", faulty.RuntimeCycles, clean.RuntimeCycles)
	}
	if faulty.HMC.TransferredBytes <= clean.HMC.TransferredBytes {
		t.Errorf("retransmissions moved no extra bytes: %d <= %d",
			faulty.HMC.TransferredBytes, clean.HMC.TransferredBytes)
	}
	if faulty.HMC.BandwidthEfficiency() >= clean.HMC.BandwidthEfficiency() {
		t.Errorf("bandwidth efficiency did not degrade: %.4f >= %.4f",
			faulty.HMC.BandwidthEfficiency(), clean.HMC.BandwidthEfficiency())
	}
	if clean.FaultsObserved() {
		t.Error("clean run reports observed faults")
	}
	if strings.Contains(clean.Summary(), "link retries") {
		t.Error("clean summary renders fault lines")
	}
	if !strings.Contains(faulty.Summary(), "link retries") {
		t.Error("faulty summary missing fault lines")
	}
}

// TestConfigValidate covers the assembled-system validator, including the
// component errors it must surface (the sortnet width reaches it through
// the coalescer configuration).
func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.ClockGHz = -1 },
		func(c *Config) { c.MaxOutstanding = 0 },
		func(c *Config) { c.Hierarchy.CPUs = 0 },
		func(c *Config) { c.Hierarchy.CPUs = 300 },
		func(c *Config) { c.Coalescer.Width = 12 },
		func(c *Config) { c.Coalescer.LineBytes = 128; c.Coalescer.BlockBytes = 512 },
		func(c *Config) { c.HMC.Fault.BER = 2 },
		func(c *Config) { c.HMC.Fault.MaxRetries = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted the config", i)
		}
		if _, err := NewSystem(cfg); err == nil {
			t.Errorf("case %d: NewSystem accepted the config", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}
