package sim

import (
	"strings"
	"testing"

	"hmccoal/internal/trace"
	"hmccoal/internal/workloads"
)

func genTrace(t *testing.T, name string, ops int) []trace.Access {
	t.Helper()
	g, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("no workload %s", name)
	}
	accs, err := g.Generate(workloads.Params{CPUs: 12, OpsPerCPU: ops, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return accs
}

func runMode(t *testing.T, accs []trace.Access, mode Mode) Result {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Mode = mode
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(accs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNewSystemValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ClockGHz = 0
	if _, err := NewSystem(cfg); err == nil {
		t.Error("zero clock accepted")
	}
	cfg = DefaultConfig()
	cfg.MaxOutstanding = 0
	if _, err := NewSystem(cfg); err == nil {
		t.Error("zero MLP accepted")
	}
	cfg = DefaultConfig()
	cfg.Coalescer.LineBytes = 128
	cfg.Coalescer.BlockBytes = 512
	if _, err := NewSystem(cfg); err == nil {
		t.Error("mismatched line sizes accepted")
	}
}

func TestModeString(t *testing.T) {
	if Baseline.String() != "MSHR-based" || DMCOnly.String() != "DMC-only" || TwoPhase.String() != "two-phase" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode has empty name")
	}
}

func TestRunRejectsForeignCPU(t *testing.T) {
	s, err := NewSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run([]trace.Access{{Addr: 0, Size: 8, Kind: trace.Load, CPU: 200}})
	if err == nil {
		t.Fatal("access from CPU 200 accepted on a 12-CPU system")
	}
}

func TestRunBasicInvariants(t *testing.T) {
	accs := genTrace(t, "STREAM", 3000)
	res := runMode(t, accs, TwoPhase)
	if res.RuntimeCycles == 0 {
		t.Fatal("zero runtime")
	}
	if res.LLCMisses == 0 {
		t.Fatal("no LLC misses on a streaming workload")
	}
	if res.HMCRequests == 0 || res.HMCRequests > res.LLCMisses {
		t.Fatalf("HMCRequests = %d of %d misses", res.HMCRequests, res.LLCMisses)
	}
	if res.HMC.Requests != res.HMCRequests {
		t.Fatalf("device saw %d requests, coalescer issued %d", res.HMC.Requests, res.HMCRequests)
	}
	if res.MSHR.Allocations != res.HMCRequests {
		t.Fatalf("allocations %d != issued %d", res.MSHR.Allocations, res.HMCRequests)
	}
	if eff := res.CoalescingEfficiency(); eff <= 0 || eff >= 1 {
		t.Fatalf("CoalescingEfficiency = %v", eff)
	}
	if res.RawBandwidthEfficiency() <= 0 || res.RawBandwidthEfficiency() >= 1 {
		t.Fatalf("RawBandwidthEfficiency = %v", res.RawBandwidthEfficiency())
	}
	if res.CoalescedBandwidthEfficiency() <= res.RawBandwidthEfficiency() {
		t.Fatalf("coalesced efficiency %v not above raw %v",
			res.CoalescedBandwidthEfficiency(), res.RawBandwidthEfficiency())
	}
	if res.BandwidthSavedBytes() <= 0 {
		t.Fatalf("BandwidthSavedBytes = %d", res.BandwidthSavedBytes())
	}
	if res.RuntimeNs() <= 0 {
		t.Fatal("RuntimeNs not positive")
	}
}

func TestDeterminism(t *testing.T) {
	accs := genTrace(t, "SG", 1500)
	a := runMode(t, accs, TwoPhase)
	b := runMode(t, accs, TwoPhase)
	if a.RuntimeCycles != b.RuntimeCycles || a.HMCRequests != b.HMCRequests ||
		a.HMC.TransferredBytes != b.HMC.TransferredBytes {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestTwoPhaseBeatsBaselineOnCoalescing(t *testing.T) {
	accs := genTrace(t, "FT", 2000)
	base := runMode(t, accs, Baseline)
	dmc := runMode(t, accs, DMCOnly)
	full := runMode(t, accs, TwoPhase)
	if full.CoalescingEfficiency() <= base.CoalescingEfficiency() {
		t.Errorf("two-phase %.3f not above baseline %.3f",
			full.CoalescingEfficiency(), base.CoalescingEfficiency())
	}
	if full.CoalescingEfficiency() < dmc.CoalescingEfficiency() {
		t.Errorf("two-phase %.3f below DMC-only %.3f",
			full.CoalescingEfficiency(), dmc.CoalescingEfficiency())
	}
	// FT is the paper's most coalescable benchmark: expect a strong ratio.
	if full.CoalescingEfficiency() < 0.5 {
		t.Errorf("FT two-phase efficiency = %.3f, want ≥ 0.5", full.CoalescingEfficiency())
	}
}

func TestCoalescerImprovesRuntime(t *testing.T) {
	accs := genTrace(t, "FT", 2000)
	base := runMode(t, accs, Baseline)
	full := runMode(t, accs, TwoPhase)
	if full.RuntimeCycles >= base.RuntimeCycles {
		t.Fatalf("coalescer runtime %d not below baseline %d",
			full.RuntimeCycles, base.RuntimeCycles)
	}
}

func TestFencesDrain(t *testing.T) {
	accs := genTrace(t, "SG", 300)
	// Inject a fence per CPU in the middle of the trace.
	withFences := make([]trace.Access, 0, len(accs)+12)
	for i, a := range accs {
		withFences = append(withFences, a)
		if i == len(accs)/2 {
			for cpu := 0; cpu < 12; cpu++ {
				withFences = append(withFences, trace.Access{
					Kind: trace.FenceOp, CPU: uint8(cpu), Tick: a.Tick,
				})
			}
		}
	}
	res := runMode(t, withFences, TwoPhase)
	if res.Coalescer.Fences != 12 {
		t.Fatalf("Fences = %d, want 12", res.Coalescer.Fences)
	}
}

func TestStallAccounting(t *testing.T) {
	accs := genTrace(t, "STREAM", 2000)
	res := runMode(t, accs, Baseline)
	if res.StallCycles == 0 {
		t.Error("memory-bound baseline run recorded no stalls")
	}
}

func TestPayloadDistribution(t *testing.T) {
	accs := genTrace(t, "HPCG", 2000)
	hist, err := PayloadDistribution(DefaultConfig().Hierarchy, accs, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) == 0 {
		t.Fatal("empty distribution")
	}
	var total, small uint64
	for size, n := range hist {
		if size%16 != 0 || size == 0 || size > 256 {
			t.Fatalf("illegal bucket %d", size)
		}
		total += n
		if size == 16 {
			small += n
		}
	}
	// Figure 10: HPCG is dominated by small requests; 16 B must be the
	// plurality bucket.
	frac := float64(small) / float64(total)
	if frac < 0.25 {
		t.Errorf("16 B share = %.2f, want the dominant bucket (≥0.25)", frac)
	}
	for size, n := range hist {
		if size != 16 && n > small {
			t.Errorf("bucket %d B (%d) larger than 16 B bucket (%d)", size, n, small)
		}
	}
}

func TestPayloadDistributionValidation(t *testing.T) {
	cfg := DefaultConfig().Hierarchy
	cfg.CPUs = 0
	if _, err := PayloadDistribution(cfg, nil, 16); err == nil {
		t.Fatal("bad hierarchy accepted")
	}
}

func TestSummaryRenders(t *testing.T) {
	accs := genTrace(t, "FT", 500)
	res := runMode(t, accs, TwoPhase)
	s := res.Summary()
	for _, want := range []string{"runtime", "coalescing efficiency", "row activations"} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary missing %q:\n%s", want, s)
		}
	}
}

func TestOpenPageNarrowsTheGap(t *testing.T) {
	if testing.Short() {
		t.Skip("four full runs")
	}
	accs := genTrace(t, "STREAM", 1500)
	speedup := func(open bool) float64 {
		var rt [2]uint64
		for m, mode := range []Mode{Baseline, TwoPhase} {
			cfg := DefaultConfig()
			cfg.HMC.OpenPage = open
			cfg.Mode = mode
			s, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run(accs)
			if err != nil {
				t.Fatal(err)
			}
			rt[m] = res.RuntimeCycles
		}
		return 1 - float64(rt[1])/float64(rt[0])
	}
	closed, open := speedup(false), speedup(true)
	if open >= closed {
		t.Errorf("open-page speedup %.3f not below closed-page %.3f", open, closed)
	}
}

// TestCalibrationShape is a regression guard on the workload calibration:
// the orderings the paper's figures depend on must survive future edits.
func TestCalibrationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 12 benchmarks")
	}
	eff := map[string]float64{}
	for _, g := range workloads.All() {
		accs, err := g.Generate(workloads.Params{CPUs: 12, OpsPerCPU: 1200, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		res := runMode(t, accs, TwoPhase)
		eff[g.Name()] = res.CoalescingEfficiency()
	}
	// Streaming benchmarks coalesce heavily…
	for _, name := range []string{"FT", "STREAM", "SparseLU", "SP", "LU"} {
		if eff[name] < 0.55 {
			t.Errorf("%s two-phase efficiency = %.3f, want ≥ 0.55", name, eff[name])
		}
	}
	// …irregular ones barely.
	for _, name := range []string{"SSCA2", "Health", "EP", "CG"} {
		if eff[name] > 0.30 {
			t.Errorf("%s two-phase efficiency = %.3f, want ≤ 0.30", name, eff[name])
		}
	}
	// FT must beat every irregular benchmark by a wide margin.
	if eff["FT"] < 2*eff["SSCA2"] {
		t.Errorf("FT (%.3f) not well above SSCA2 (%.3f)", eff["FT"], eff["SSCA2"])
	}
}

// TestPayloadAnalysisInvariants property-checks the §5.3.2 study across
// random workloads: payload ≤ coalesced ≤ raw transfer volume and both
// efficiencies within (0, 1].
func TestPayloadAnalysisInvariants(t *testing.T) {
	for _, name := range []string{"FT", "SSCA2", "HPCG", "Sort"} {
		for seed := int64(1); seed <= 3; seed++ {
			g, _ := workloads.ByName(name)
			accs, err := g.Generate(workloads.Params{CPUs: 6, OpsPerCPU: 600, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			a, err := AnalyzePayload(DefaultConfig().Hierarchy, accs, 16)
			if err != nil {
				t.Fatal(err)
			}
			if a.Misses == 0 {
				t.Fatalf("%s/%d: no misses", name, seed)
			}
			if a.PayloadBytes > a.CoalescedBytes {
				t.Errorf("%s/%d: payload %d exceeds coalesced transfer %d",
					name, seed, a.PayloadBytes, a.CoalescedBytes)
			}
			if a.CoalescedBytes > a.RawBytes {
				t.Errorf("%s/%d: coalesced %d exceeds raw %d", name, seed, a.CoalescedBytes, a.RawBytes)
			}
			if e := a.RawEfficiency(); e <= 0 || e > 1 {
				t.Errorf("%s/%d: raw efficiency %v", name, seed, e)
			}
			if e := a.CoalescedEfficiency(); e <= 0 || e > 1 {
				t.Errorf("%s/%d: coalesced efficiency %v", name, seed, e)
			}
			var fromHist uint64
			for size, n := range a.Hist {
				fromHist += (uint64(size) + 32) * n
			}
			if fromHist != a.CoalescedBytes {
				t.Errorf("%s/%d: histogram bytes %d != CoalescedBytes %d",
					name, seed, fromHist, a.CoalescedBytes)
			}
		}
	}
}
