package sim

import (
	"reflect"
	"testing"

	"hmccoal/internal/fault"
	"hmccoal/internal/frontend"
	"hmccoal/internal/membackend"
	"hmccoal/internal/trace"
	"hmccoal/internal/workloads"
)

// snapshotScenario is one row of the equivalence tables: a benchmark on a
// configuration, run monolithically (Run) and via the staged loop with a
// mid-run snapshot/restore, expecting byte-identical results.
type snapshotScenario struct {
	name    string
	bench   string
	ops     int
	mode    Mode
	backend membackend.Kind
	fe      frontend.Kind
	sched   frontend.SchedKind
	ber     float64 // >0 enables deterministic link fault injection
	checks  bool
}

func snapshotScenarios() []snapshotScenario {
	return []snapshotScenario{
		{name: "hpcg/two-phase", bench: "HPCG", ops: 600, mode: TwoPhase},
		{name: "ft/two-phase", bench: "FT", ops: 600, mode: TwoPhase},
		{name: "hpcg/baseline", bench: "HPCG", ops: 600, mode: Baseline},
		{name: "ft/dmc-only", bench: "FT", ops: 600, mode: DMCOnly},
		{name: "hpcg/ddr", bench: "HPCG", ops: 400, mode: TwoPhase, backend: membackend.KindDDR},
		{name: "ft/ideal", bench: "FT", ops: 400, mode: TwoPhase, backend: membackend.KindIdeal},
		{name: "hpcg/faulty", bench: "HPCG", ops: 600, mode: TwoPhase, ber: 1e-5},
		{name: "ft/faulty-checked", bench: "FT", ops: 600, mode: TwoPhase, ber: 1e-5, checks: true},
		{name: "hpcg/checked", bench: "HPCG", ops: 400, mode: TwoPhase, checks: true},
		// The front-end axis: the warp coalescing unit and the hetero issue
		// policy across every backend and under link faults.
		{name: "hpcg/warp", bench: "HPCG", ops: 600, mode: TwoPhase, fe: frontend.KindWarp},
		{name: "ft/warp-ddr", bench: "FT", ops: 400, mode: TwoPhase, fe: frontend.KindWarp, backend: membackend.KindDDR},
		{name: "hpcg/warp-ideal", bench: "HPCG", ops: 400, mode: TwoPhase, fe: frontend.KindWarp, backend: membackend.KindIdeal},
		{name: "ft/warp-faulty", bench: "FT", ops: 600, mode: TwoPhase, fe: frontend.KindWarp, ber: 1e-5},
		{name: "hpcg/warp-hetero", bench: "HPCG", ops: 600, mode: TwoPhase, fe: frontend.KindWarp, sched: frontend.SchedHetero},
		{name: "ft/hetero", bench: "FT", ops: 600, mode: TwoPhase, sched: frontend.SchedHetero},
		{name: "ft/warp-hetero-faulty-checked", bench: "FT", ops: 600, mode: TwoPhase,
			fe: frontend.KindWarp, sched: frontend.SchedHetero, ber: 1e-5, checks: true},
	}
}

func (sc snapshotScenario) config() Config {
	cfg := DefaultConfig()
	cfg.Mode = sc.mode
	cfg.Backend = sc.backend
	cfg.Frontend = sc.fe
	cfg.Sched = sc.sched
	cfg.Checks = sc.checks
	if sc.ber > 0 {
		cfg.HMC.Fault = fault.Config{Seed: 7, BER: sc.ber}
	}
	return cfg
}

func (sc snapshotScenario) trace(t *testing.T) []trace.Access {
	t.Helper()
	g, ok := workloads.ByName(sc.bench)
	if !ok {
		t.Fatalf("no workload %s", sc.bench)
	}
	accs, err := g.Generate(workloads.Params{CPUs: 12, OpsPerCPU: sc.ops, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return accs
}

func mustSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func diffResults(t *testing.T, want, got Result, label string) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s: Result diverged:\nwant %+v\ngot  %+v", label, want, got)
	}
	if want.Summary() != got.Summary() {
		t.Errorf("%s: Summary diverged:\n--- want\n%s--- got\n%s", label, want.Summary(), got.Summary())
	}
}

// TestStagedLoopMatchesRun drives the staged Start/Step/Finish API manually
// and requires the exact Result the one-shot Run produces, per benchmark
// and mode — the safety net for the monolithic→staged decomposition.
func TestStagedLoopMatchesRun(t *testing.T) {
	for _, sc := range snapshotScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			accs := sc.trace(t)
			want, err := mustSystem(t, sc.config()).Run(accs)
			if err != nil {
				t.Fatal(err)
			}
			s := mustSystem(t, sc.config())
			if err := s.Start(accs); err != nil {
				t.Fatal(err)
			}
			for {
				done, err := s.Step()
				if err != nil {
					t.Fatal(err)
				}
				if done {
					break
				}
			}
			got, err := s.Finish()
			if err != nil {
				t.Fatal(err)
			}
			diffResults(t, want, got, sc.name)
		})
	}
}

// stepUntil steps the system until its high-water tick reaches at least
// tick (or the trace fully issues). Reports whether the loop is done.
func stepUntil(t *testing.T, s *System, tick uint64) bool {
	t.Helper()
	for s.Tick() < tick {
		done, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			return true
		}
	}
	return false
}

func finishStepping(t *testing.T, s *System) Result {
	t.Helper()
	for {
		done, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	res, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSnapshotRestoreEquivalence snapshots every scenario mid-run (around
// tick 10k), restores into a fresh System, finishes both the original and
// the restored copy, and requires all three (uninterrupted, snapshotted
// original, restored) to agree byte-for-byte — including the faulty and
// checks-enabled rows.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	for _, sc := range snapshotScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			accs := sc.trace(t)
			want, err := mustSystem(t, sc.config()).Run(accs)
			if err != nil {
				t.Fatal(err)
			}

			s := mustSystem(t, sc.config())
			if err := s.Start(accs); err != nil {
				t.Fatal(err)
			}
			if stepUntil(t, s, 10_000) {
				t.Fatalf("trace drained before tick 10k; grow ops for this scenario")
			}
			snap, err := s.Snapshot()
			if err != nil {
				t.Fatal(err)
			}

			restored := mustSystem(t, sc.config())
			if err := restored.Restore(snap); err != nil {
				t.Fatal(err)
			}
			gotRestored := finishStepping(t, restored)
			diffResults(t, want, gotRestored, sc.name+"/restored")

			// The snapshotted original must be unaffected by the snapshot.
			gotOriginal := finishStepping(t, s)
			diffResults(t, want, gotOriginal, sc.name+"/original")

			// A snapshot is not consumed: restore it a second time.
			again := mustSystem(t, sc.config())
			if err := again.Restore(snap); err != nil {
				t.Fatal(err)
			}
			diffResults(t, want, finishStepping(t, again), sc.name+"/restored-twice")
		})
	}
}

func TestSnapshotAPIErrors(t *testing.T) {
	cfg := DefaultConfig()
	accs := snapshotScenario{bench: "HPCG", ops: 200}.trace(t)

	s := mustSystem(t, cfg)
	if _, err := s.Snapshot(); err == nil {
		t.Error("Snapshot before Start accepted")
	}
	if err := s.Start(accs); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(accs); err == nil {
		t.Error("second Start accepted")
	}
	if stepUntil(t, s, 1000) {
		t.Fatal("trace drained too early")
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(snap); err == nil {
		t.Error("Restore into a started System accepted")
	}

	// Config mismatch must be rejected.
	other := DefaultConfig()
	other.MaxOutstanding = 8
	if err := mustSystem(t, other).Restore(snap); err == nil {
		t.Error("Restore with differing config accepted")
	}
	otherBackend := DefaultConfig()
	otherBackend.Backend = membackend.KindIdeal
	if err := mustSystem(t, otherBackend).Restore(snap); err == nil {
		t.Error("Restore into a different backend accepted")
	}
	otherFrontend := DefaultConfig()
	otherFrontend.Frontend = frontend.KindWarp
	if err := mustSystem(t, otherFrontend).Restore(snap); err == nil {
		t.Error("Restore into a different front-end accepted")
	}
	otherSched := DefaultConfig()
	otherSched.Sched = frontend.SchedHetero
	if err := mustSystem(t, otherSched).Restore(snap); err == nil {
		t.Error("Restore into a different issue policy accepted")
	}
	checked := DefaultConfig()
	checked.Checks = true
	if err := mustSystem(t, checked).Restore(snap); err == nil {
		t.Error("Restore of an unchecked snapshot into a checked system accepted")
	}

	finishStepping(t, s)
	if _, err := s.Snapshot(); err == nil {
		t.Error("Snapshot after Finish accepted")
	}
	if _, err := s.Finish(); err == nil {
		t.Error("second Finish accepted")
	}
}

func TestFinishBeforeDrainRejected(t *testing.T) {
	s := mustSystem(t, DefaultConfig())
	accs := snapshotScenario{bench: "FT", ops: 300}.trace(t)
	if err := s.Start(accs); err != nil {
		t.Fatal(err)
	}
	if stepUntil(t, s, 1000) {
		t.Fatal("trace drained too early")
	}
	if _, err := s.Finish(); err == nil {
		t.Error("Finish with runnable CPUs accepted")
	}
}
