// Package sim is the full-system simulator: trace-driven CPUs, the cache
// hierarchy, the memory coalescer (or the conventional MSHR baseline) and
// the HMC device, with end-to-end runtime accounting. It produces every
// metric behind the paper's evaluation figures (8–15).
//
// The execution model: each core replays its access trace; hit latencies
// are hidden by the out-of-order pipeline, but a core stalls when it
// exceeds its miss-level-parallelism budget (MaxOutstanding demand misses)
// or at a fence, and resumes when responses return through the
// coalescer/MSHR path. The run's wall-clock is the tick at which the last
// response lands after the trace drains.
package sim

import (
	"fmt"
	"strings"

	"hmccoal/internal/cache"
	"hmccoal/internal/coalescer"
	"hmccoal/internal/frontend"
	"hmccoal/internal/hmc"
	"hmccoal/internal/invariant"
	"hmccoal/internal/membackend"
	"hmccoal/internal/mshr"
	"hmccoal/internal/trace"
)

// Mode selects the miss-handling architecture under test (Figure 8).
type Mode int

// Evaluation modes.
const (
	// Baseline is the conventional MHA: MSHR-based coalescing only, fixed
	// 64 B requests (the paper's comparison point, and Figure 8's
	// "MSHR-based" series).
	Baseline Mode = iota
	// DMCOnly enables the sorting network and DMC unit but disables MSHR
	// merging (Figure 8's "DMC unit" series).
	DMCOnly
	// TwoPhase is the full memory coalescer.
	TwoPhase
)

// String names the mode as in Figure 8.
func (m Mode) String() string {
	switch m {
	case Baseline:
		return "MSHR-based"
	case DMCOnly:
		return "DMC-only"
	case TwoPhase:
		return "two-phase"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Config assembles the simulated system.
type Config struct {
	Hierarchy cache.HierarchyConfig
	Coalescer coalescer.Config
	HMC       hmc.Config
	// ClockGHz converts cycles to nanoseconds (paper: 3.3).
	ClockGHz float64
	// MaxOutstanding is the per-core demand-miss budget before the core
	// stalls (miss-level parallelism of the out-of-order window).
	MaxOutstanding int
	// Mode selects the miss-handling architecture.
	Mode Mode
	// Backend selects the memory device under the coalescer: the HMC
	// model (the zero value, so existing configurations are unchanged), a
	// DDR-like single-channel baseline, or an ideal zero-contention
	// device. The HMC config's geometry and timing fields parameterize
	// every backend; fault injection is HMC-only.
	Backend membackend.Kind
	// Frontend selects the coalescing front-end between the LLC and the
	// memory backend: the paper's two-phase coalescer (the zero value, so
	// existing configurations are unchanged) or the GPU-style warp
	// coalescing unit. Sched selects the issue policy inside the
	// front-end: strict FR-FCFS (the zero value) or the
	// heterogeneity-aware scheduler.
	Frontend frontend.Kind
	Sched    frontend.SchedKind
	// Checks enables the runtime invariant checker across every layer
	// (token ledger, MSHR leak audit, device byte conservation, clock
	// monotonicity). Off by default: the checked quantities are identical
	// either way, so enabling Checks never changes simulation results —
	// it only spends extra bookkeeping to prove the conservation laws.
	Checks bool
}

// DefaultConfig returns the paper's evaluation system: 12 CPUs at 3.3 GHz,
// 16 LLC MSHRs, 8 GB HMC with 256 B blocks, full two-phase coalescer.
func DefaultConfig() Config {
	return Config{
		Hierarchy:      cache.DefaultHierarchyConfig(),
		Coalescer:      coalescer.DefaultConfig(),
		HMC:            hmc.DefaultConfig(),
		ClockGHz:       3.3,
		MaxOutstanding: 16,
		Mode:           TwoPhase,
	}
}

// Validate checks the assembled system configuration, wrapping the
// component validators so a bad flag surfaces as one error from NewSystem
// instead of a panic mid-run.
func (c Config) Validate() error {
	if c.ClockGHz <= 0 {
		return fmt.Errorf("sim: clock %v GHz invalid", c.ClockGHz)
	}
	if c.MaxOutstanding <= 0 {
		return fmt.Errorf("sim: MaxOutstanding must be positive")
	}
	if err := c.Hierarchy.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if c.Coalescer.LineBytes != c.Hierarchy.LLC.LineBytes {
		return fmt.Errorf("sim: coalescer line size %d != LLC line size %d",
			c.Coalescer.LineBytes, c.Hierarchy.LLC.LineBytes)
	}
	if err := c.Coalescer.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if err := c.HMC.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if err := c.Backend.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if err := c.Frontend.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if err := c.Sched.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	return nil
}

func (c Config) withMode() Config {
	switch c.Mode {
	case Baseline:
		c.Coalescer.FirstPhase = false
		c.Coalescer.SecondPhase = true
	case DMCOnly:
		c.Coalescer.FirstPhase = true
		c.Coalescer.SecondPhase = false
	case TwoPhase:
		c.Coalescer.FirstPhase = true
		c.Coalescer.SecondPhase = true
	}
	return c
}

// Result carries everything a run produced.
type Result struct {
	// RuntimeCycles is the end-to-end wall clock of the run.
	RuntimeCycles uint64
	// LLCMisses is the number of requests that left the LLC (including
	// write-backs); HMCRequests is how many reached the device.
	LLCMisses   uint64
	HMCRequests uint64
	// StallCycles sums core stall time (MLP limit + fences).
	StallCycles uint64
	// FailedLoads counts demand misses whose data never arrived intact:
	// the link retry protocol and the coalescer's span retries both gave
	// up, and the waiter was completed with the error bit. Zero unless
	// fault injection is enabled.
	FailedLoads uint64

	Coalescer coalescer.Stats
	MSHR      struct {
		Allocations, MergedTargets, SplitRequests, FullStalls uint64
	}
	HMC hmc.Stats
	LLC cache.Stats
	L1  cache.Stats
	L2  cache.Stats

	// ClockGHz echoes the configuration for ns conversions.
	ClockGHz float64
	// LineBytes echoes the cache line size for raw-traffic pricing.
	LineBytes uint32
}

// CoalescingEfficiency is the Figure 8 metric.
func (r Result) CoalescingEfficiency() float64 {
	if r.LLCMisses == 0 {
		return 0
	}
	return 1 - float64(r.HMCRequests)/float64(r.LLCMisses)
}

// RawTransferredBytes is the traffic the conventional MHA would move for
// the same miss stream: one line-sized packet plus 32 B control per LLC
// request.
func (r Result) RawTransferredBytes() uint64 {
	return r.LLCMisses * (uint64(r.LineBytes) + hmc.ControlBytes)
}

// RawBandwidthEfficiency is Figure 9's "raw" series: useful payload over
// the conventional fixed-64 B transfer volume.
func (r Result) RawBandwidthEfficiency() float64 {
	raw := r.RawTransferredBytes()
	if raw == 0 {
		return 0
	}
	return float64(r.Coalescer.PayloadBytes) / float64(raw)
}

// CoalescedBandwidthEfficiency is Figure 9's "coalesced" series (Equation 1
// over the actual device traffic).
func (r Result) CoalescedBandwidthEfficiency() float64 {
	if r.HMC.TransferredBytes == 0 {
		return 0
	}
	return float64(r.Coalescer.PayloadBytes) / float64(r.HMC.TransferredBytes)
}

// BandwidthSavedBytes is Figure 11's metric: traffic avoided versus the
// conventional MHA.
func (r Result) BandwidthSavedBytes() int64 {
	return int64(r.RawTransferredBytes()) - int64(r.HMC.TransferredBytes)
}

// RuntimeNs converts the wall clock to nanoseconds.
func (r Result) RuntimeNs() float64 {
	if r.ClockGHz <= 0 {
		return 0
	}
	return float64(r.RuntimeCycles) / r.ClockGHz
}

// System is a runnable simulated machine.
type System struct {
	cfg       Config
	hierarchy *cache.Hierarchy
	device    membackend.Backend
	coal      frontend.Frontend

	outstanding []int    // demand misses in flight per CPU
	nextToken   uint64   // demand-miss token allocator
	tokenCPU    []uint8  // token → CPU (ring; tokens complete in bounded time)
	tokenLine   []uint64 // token → line, for outstanding-line bookkeeping
	stall       []uint64 // accumulated stall per CPU
	pushedTok   uint64   // demand tokens handed to the coalescer
	doneTok     uint64   // demand tokens returned by completions
	failedTok   uint64   // demand tokens completed with the error bit set

	// fetching tracks cache lines whose fill is still in flight. The tag
	// arrays install lines instantly (internal/cache), but until the
	// response returns, a core touching such a line has really produced
	// another LLC miss — the misses that conventional MSHR coalescing
	// absorbs as subentries. The simulator regenerates them so the
	// Figure 8 MSHR-based series is faithful: always for other cores, and
	// for the fetching core itself only once the touch comes from a later
	// instruction window (earlier touches are deduplicated by the core's
	// private L1 MSHR subentries and never reach the LLC).
	//
	// The table is open-addressed and keyed by line; see fetchtable.go.
	fetching fetchTable

	// Invariant-checking state (Config.Checks). check collects violations
	// across every layer; ledger proves the exactly-once token law; runErr
	// latches the first violation hit inside a callback so the event loop
	// can abort at its next poll — one nil compare per iteration. All nil
	// with checks off except runErr, which the former panic sites also use.
	check     *invariant.Checker
	ledger    *invariant.TokenLedger
	runErr    error
	lastClock uint64 // latest tick handed to the memory system (monotonicity)

	// ts is the staged tick loop's scheduling state (stages.go), armed by
	// Start and advanced by Step. Held by value: its slices are the only
	// per-run allocations.
	ts tickState
}

// fetchInfo records who started an outstanding line fill and when.
type fetchInfo struct {
	token uint64
	cpu   uint8
	tick  uint64
}

// sameCoreWindow is the span, in cycles, within which a core's repeat
// touches to a line it is already fetching stay inside its own L1 MSHR
// (one out-of-order instruction window).
const sameCoreWindow = 48

const writeBackToken = ^uint64(0)

// NewSystem builds a system from cfg.
func NewSystem(cfg Config) (*System, error) {
	cfg = cfg.withMode()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h, err := cache.NewHierarchy(cfg.Hierarchy)
	if err != nil {
		return nil, err
	}
	s := &System{hierarchy: h}
	if err := s.init(cfg); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset returns a finished (or unused) System to the freshly built state
// for cfg, recycling the cache hierarchy's multi-megabyte tag arrays and
// the token ring in place instead of rebuilding them through the
// allocator. cfg must keep the Hierarchy the System was built with;
// everything else — mode, backend, coalescer tuning, fault plan, checks —
// may change between runs. A reset System produces byte-identical results
// to one built fresh from the same cfg: this is what lets the batch engine
// retire a lane and refill it without paying NewSystem per job.
func (s *System) Reset(cfg Config) error {
	cfg = cfg.withMode()
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Hierarchy != s.cfg.Hierarchy {
		return fmt.Errorf("sim: Reset with a different hierarchy (build a fresh System)")
	}
	s.hierarchy.Reset()
	return s.init(cfg)
}

// init wires every component except the cache hierarchy (built once by
// NewSystem, reset in place by Reset) and zeroes the run state. The small
// mutable components — device, coalescer — are rebuilt fresh; the large
// flat arrays (token ring, fetch table, per-CPU accounting) are reused
// when their required size is unchanged.
func (s *System) init(cfg Config) error {
	d, err := membackend.New(cfg.Backend, cfg.HMC)
	if err != nil {
		return err
	}
	s.cfg = cfg
	s.device = d
	if len(s.outstanding) == cfg.Hierarchy.CPUs {
		clear(s.outstanding)
		clear(s.stall)
	} else {
		s.outstanding = make([]int, cfg.Hierarchy.CPUs)
		s.stall = make([]uint64, cfg.Hierarchy.CPUs)
	}
	lineBytes := uint64(cfg.Coalescer.LineBytes)
	fcfg := frontend.Config{
		Kind:      cfg.Frontend,
		Sched:     cfg.Sched,
		Lanes:     cfg.Hierarchy.CPUs,
		Coalescer: cfg.Coalescer,
	}
	c, err := frontend.New(fcfg,
		func(tick uint64, e *mshr.Entry) coalescer.IssueResult {
			packet := uint32(e.Lines()) * cfg.Coalescer.LineBytes
			requested := uint32(e.Payload())
			if requested > packet {
				requested = packet
			}
			comp, err := d.SubmitPacket(tick, hmc.Request{
				Addr:           e.BaseLine() * lineBytes,
				PacketBytes:    packet,
				RequestedBytes: requested,
				Write:          e.Write(),
			})
			if err != nil {
				// The coalescer built a packet the device interface rejects.
				// Latch the violation for the event loop's next poll and
				// pretend the packet completed instantly so the bookkeeping
				// stays conserved until the run aborts.
				v := invariant.Violatef(invariant.RuleIllegalPacket, tick,
					d.DebugLinks(), "illegal HMC request from coalescer: %v", err)
				s.check.Record(v)
				if s.runErr == nil {
					s.runErr = v
				}
				return coalescer.IssueResult{Done: tick}
			}
			return coalescer.IssueResult{
				Done:    comp.Done,
				Fault:   comp.Poisoned,
				Dropped: comp.Dropped,
				Retries: comp.Retries,
			}
		},
		func(tick uint64, subs []mshr.Sub, fault bool) {
			for _, sub := range subs {
				if sub.Token == writeBackToken {
					continue
				}
				idx := sub.Token % uint64(len(s.tokenCPU))
				if s.ledger != nil {
					if v := s.ledger.Complete(idx, tick); v != nil {
						s.check.Record(v)
						if s.runErr == nil {
							s.runErr = v
						}
					}
				}
				s.outstanding[s.tokenCPU[idx]]--
				s.doneTok++
				if fault {
					// The retry budget ran out and the waiter got an error
					// response instead of data. The core still unblocks (the
					// fault is delivered, not dropped) but the failure is
					// accounted.
					s.failedTok++
				}
				// The line's fill has arrived: stamping the token's ring slot
				// invalidates the line's fetch-table entry (if this token owns
				// it) without touching the table itself.
				s.tokenLine[idx] = fetchDone
			}
		})
	if err != nil {
		return err
	}
	s.coal = c
	// Token ring: bounded by the maximum number of simultaneously live
	// demand misses (MLP budget × CPUs, plus coalescer buffering slack).
	// The ring length is semantic (token slots are indexed modulo it), so
	// reuse requires an exact size match.
	ring := (cfg.MaxOutstanding + cfg.Coalescer.Width + cfg.Coalescer.MSHR.Entries*8) * cfg.Hierarchy.CPUs
	if len(s.tokenCPU) == ring {
		clear(s.tokenCPU)
		clear(s.tokenLine)
	} else {
		s.tokenCPU = make([]uint8, ring)
		s.tokenLine = make([]uint64, ring)
	}
	// Live fetch-table entries are bounded by the demand-miss budget. A
	// previous run's table can be cleared in place as long as it is at
	// least as big as a fresh one would be (size only affects probe cost,
	// never results).
	if want := newFetchTableSize(cfg.MaxOutstanding * cfg.Hierarchy.CPUs); len(s.fetching.slots) >= want {
		clear(s.fetching.slots)
		s.fetching.used = 0
	} else {
		s.fetching = newFetchTable(cfg.MaxOutstanding * cfg.Hierarchy.CPUs)
	}
	s.nextToken = 0
	s.pushedTok, s.doneTok, s.failedTok = 0, 0, 0
	s.runErr = nil
	s.lastClock = 0
	s.ts = tickState{}
	s.check, s.ledger = nil, nil
	if cfg.Checks {
		s.check = invariant.New()
		s.ledger = invariant.NewTokenLedger(ring)
		s.coal.SetChecker(s.check)
		s.device.SetChecker(s.check)
	}
	return nil
}

// Checker returns the attached invariant checker, or nil when
// Config.Checks is off. Callers inspect it for the violations behind a
// failed run.
func (s *System) Checker() *invariant.Checker { return s.check }

// Config returns the (mode-resolved) system configuration.
func (s *System) Config() Config { return s.cfg }

// Run replays the trace to completion and returns the run's metrics: it
// arms the staged tick loop (Start), steps it until the trace has fully
// issued, and drains the memory system (Finish). The trace must be ordered
// by tick (as produced by internal/workloads). A System is single-use:
// build a fresh one per run, or recycle a finished one with Reset.
//
// Each Step interleaves two event sources in global time order: the
// per-CPU access cursors (merged through a heap on effective issue tick)
// and the memory system's own events (timeouts, packet readiness,
// responses). A core that exhausts its MLP budget or waits on a fence is
// parked and re-armed by memory progress; crucially the memory system is
// never advanced past a runnable core's next access, so causality holds.
// See stages.go for the individual stages.
func (s *System) Run(accs []trace.Access) (Result, error) {
	if err := s.Start(accs); err != nil {
		return Result{}, err
	}
	for {
		done, err := s.Step()
		if err != nil {
			return Result{}, err
		}
		if done {
			break
		}
	}
	return s.Finish()
}

// newToken allocates a demand-miss token for cpu waiting on line.
func (s *System) newToken(cpu uint8, line uint64) uint64 {
	tok := s.nextToken % uint64(len(s.tokenCPU))
	s.nextToken++
	s.tokenCPU[tok] = cpu
	s.tokenLine[tok] = line
	s.outstanding[cpu]++
	s.pushedTok++
	if s.ledger != nil {
		if v := s.ledger.Issue(tok, s.lastClock); v != nil {
			// The monotone counter wrapped onto a live slot. If the slot's
			// holder is waiting on a dropped response, its completion is
			// unreachable and the slot is safely re-usable: forfeit it in
			// the ledger and issue cleanly. Only genuine reuse — a slot
			// whose completion can still arrive — is a violation.
			if s.forfeitIfDoomed(tok) {
				v = s.ledger.Issue(tok, s.lastClock)
			}
			if v != nil {
				s.check.Record(v)
				if s.runErr == nil {
					s.runErr = v
				}
			}
		}
	}
	return tok
}

// forfeitIfDoomed reports whether ring slot tok belongs to a waiter whose
// response was dropped, forfeiting the slot in the ledger if so. O(inflight)
// but only reached when the ledger flags a wrapped slot, which requires a
// drop to have leaked it first.
func (s *System) forfeitIfDoomed(tok uint64) bool {
	doomed := false
	s.coal.DoomedTokens(func(token uint64) {
		if token != writeBackToken && token%uint64(len(s.tokenCPU)) == tok {
			doomed = true
		}
	})
	if doomed {
		s.ledger.Forfeit(tok)
	}
	return doomed
}

// clockAdvance audits the deterministic-clock monotonicity law (checks on
// only): ticks handed to the memory system must never decrease. The
// coalescer silently clamps a backwards tick, so without the checker a
// scheduling bug would warp results instead of failing.
func (s *System) clockAdvance(now uint64) {
	if s.check != nil && now < s.lastClock {
		v := invariant.Violatef(invariant.RuleClockMonotone, now, s.coal.DebugState(),
			"memory clock ran backwards: %d after %d", now, s.lastClock)
		s.check.Record(v)
		if s.runErr == nil {
			s.runErr = v
		}
	}
	if now > s.lastClock {
		s.lastClock = now
	}
}

// lowestParked returns the lowest-numbered parked CPU, so deadlock
// diagnostics name the same core on every run of the same trace.
func lowestParked(isParked []bool) int {
	for cpu, p := range isParked {
		if p {
			return cpu
		}
	}
	return 0
}

// deadlockError renders the no-progress diagnostic. The report is
// deterministic: it names the lowest-numbered parked CPU regardless of the
// order in which cores parked, so repeated runs of the same deadlocking
// trace produce byte-identical messages.
func (s *System) deadlockError(isParked []bool, parkedTick []uint64, parkedFence []bool) error {
	cpu := lowestParked(isParked)
	pend, crq := s.coal.QueueDepths()
	return fmt.Errorf(
		"sim: deadlock: CPU %d parked (fence=%v) at %d with no memory events; outstanding=%v tokens=%d/%d pending=%d crq=%d: %s",
		cpu, parkedFence[cpu], parkedTick[cpu], s.outstanding, s.doneTok, s.pushedTok, pend, crq, s.coal.DebugState())
}

// cursor orders per-CPU trace positions by effective issue tick.
type cursor struct {
	tick uint64
	cpu  uint8
}

// The cursor heap is hand-inlined (min-heap on (tick, cpu)) rather than
// going through container/heap: the interface indirection there boxes every
// pushed cursor onto the garbage-collected heap, and this is the
// simulator's inner scheduling loop. The (tick, cpu) order is total — one
// cursor per CPU — so the pop sequence is independent of the internal
// array layout.

func cursorLess(a, b cursor) bool {
	if a.tick != b.tick {
		return a.tick < b.tick
	}
	return a.cpu < b.cpu
}

// cursorPush inserts c and returns the updated heap slice.
func cursorPush(h []cursor, c cursor) []cursor {
	h = append(h, c)
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if !cursorLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	return h
}

// cursorFixRoot restores heap order after the root's tick changed in place.
func cursorFixRoot(h []cursor) {
	for i := 0; ; {
		m := i
		if l := 2*i + 1; l < len(h) && cursorLess(h[l], h[m]) {
			m = l
		}
		if r := 2*i + 2; r < len(h) && cursorLess(h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// cursorPopRoot removes the minimum cursor and returns the shrunk slice.
func cursorPopRoot(h []cursor) []cursor {
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	cursorFixRoot(h)
	return h
}

// Summary renders the run's key metrics as a human-readable block.
func (r Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "runtime                %12.1f µs (%d cycles)\n", r.RuntimeNs()/1000, r.RuntimeCycles)
	fmt.Fprintf(&b, "LLC requests           %12d (misses+write-backs)\n", r.LLCMisses)
	fmt.Fprintf(&b, "HMC requests           %12d\n", r.HMCRequests)
	fmt.Fprintf(&b, "coalescing efficiency  %11.2f%%\n", 100*r.CoalescingEfficiency())
	fmt.Fprintf(&b, "  first-phase merges   %12d\n", r.Coalescer.FirstPhaseMerges)
	fmt.Fprintf(&b, "  second-phase merges  %12d\n", r.MSHR.MergedTargets)
	fmt.Fprintf(&b, "  bypassed             %12d\n", r.Coalescer.Bypassed)
	fmt.Fprintf(&b, "sorter flushes         %12d (full %d, timeout %d, fence %d, drain %d)\n",
		r.Coalescer.Batches, r.Coalescer.FullFlushes, r.Coalescer.TimeoutFlushes,
		r.Coalescer.FenceFlushes, r.Coalescer.DrainFlushes)
	fmt.Fprintf(&b, "transferred            %12.2f MB (%.2f MB control)\n",
		float64(r.HMC.TransferredBytes)/1e6, float64(r.HMC.ControlBytes())/1e6)
	fmt.Fprintf(&b, "bandwidth efficiency   %11.2f%% (device, Equation 1)\n", 100*r.HMC.BandwidthEfficiency())
	fmt.Fprintf(&b, "row activations        %12d (%d conflicts)\n", r.HMC.RowActivations, r.HMC.BankConflicts)
	fmt.Fprintf(&b, "core stall cycles      %12d\n", r.StallCycles)
	// Fault-injection lines render only when something actually went wrong
	// on the link, so clean-run summaries stay byte-identical with faults
	// compiled in but disabled.
	if r.FaultsObserved() {
		fmt.Fprintf(&b, "link retries           %12d (%d retrains, %.2f MB retransmitted)\n",
			r.HMC.Retries, r.HMC.RetrainEvents, float64(r.HMC.RetransmittedBytes)/1e6)
		fmt.Fprintf(&b, "poisoned responses     %12d (%d dropped)\n",
			r.HMC.PoisonedResponses, r.HMC.DroppedResponses)
		fmt.Fprintf(&b, "packet retries         %12d (%d failed loads)\n",
			r.Coalescer.RetriedPackets, r.FailedLoads)
		fmt.Fprintf(&b, "degraded mode          %12d cycles (%d entries, %d splits)\n",
			r.Coalescer.DegradedCycles, r.Coalescer.DegradedEntries, r.Coalescer.DegradedSplits)
	}
	return b.String()
}

// FaultsObserved reports whether the run saw any injected link fault. All
// the counters it checks stay zero with fault injection disabled.
func (r Result) FaultsObserved() bool {
	return r.HMC.Retries > 0 || r.HMC.RetrainEvents > 0 ||
		r.HMC.PoisonedResponses > 0 || r.HMC.DroppedResponses > 0 ||
		r.Coalescer.RetriedPackets > 0 || r.Coalescer.DegradedCycles > 0 ||
		r.Coalescer.DegradedEntries > 0 || r.FailedLoads > 0
}
