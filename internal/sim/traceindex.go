package sim

import (
	"fmt"

	"hmccoal/internal/trace"
)

// TraceIndex is the CSR bucketing of a trace by CPU: streamOff[c] ..
// streamOff[c+1] delimits CPU c's access indices within streamIdx. It is
// read-only after construction, so runs replaying the same trace — the
// batch engine's common case of several modes/configs over one workload —
// share a single index instead of each re-bucketing the trace.
type TraceIndex struct {
	accs      []trace.Access
	streamOff []int32
	streamIdx []int32
	cpus      int
}

// NewTraceIndex validates and buckets accs for a system with cpus cores.
// The trace must be ordered by tick (as produced by internal/workloads);
// every access must name a CPU below cpus.
func NewTraceIndex(accs []trace.Access, cpus int) (*TraceIndex, error) {
	idx := &TraceIndex{}
	if err := idx.init(accs, cpus); err != nil {
		return nil, err
	}
	return idx, nil
}

// init buckets accs into idx. Split from NewTraceIndex so Start can build
// a stack-local index without the extra heap allocation (the single-run
// allocation count is pinned by the Sim benchmarks).
func (idx *TraceIndex) init(accs []trace.Access, cpus int) error {
	if cpus <= 0 {
		return fmt.Errorf("sim: trace index needs at least one CPU")
	}
	if len(accs) > 1<<31-1 {
		return fmt.Errorf("sim: trace too long (%d accesses)", len(accs))
	}
	idx.accs = accs
	idx.cpus = cpus
	idx.streamOff = make([]int32, cpus+1)
	for i := range accs {
		if int(accs[i].CPU) >= cpus {
			return fmt.Errorf("sim: access from CPU %d, system has %d", accs[i].CPU, cpus)
		}
		idx.streamOff[int(accs[i].CPU)+1]++
	}
	for c := 0; c < cpus; c++ {
		idx.streamOff[c+1] += idx.streamOff[c]
	}
	idx.streamIdx = make([]int32, len(accs))
	fill := make([]int32, cpus)
	copy(fill, idx.streamOff[:cpus])
	for i := range accs {
		c := accs[i].CPU
		idx.streamIdx[fill[c]] = int32(i)
		fill[c]++
	}
	return nil
}

// CPUs returns the core count the index was bucketed for.
func (idx *TraceIndex) CPUs() int { return idx.cpus }

// Len returns the number of accesses in the indexed trace.
func (idx *TraceIndex) Len() int { return len(idx.accs) }
