package sim

import (
	"fmt"

	"hmccoal/internal/coalescer"
	"hmccoal/internal/invariant"
	"hmccoal/internal/trace"
)

// tickState is the explicit per-run scheduling state of the staged tick
// loop: the CSR-bucketed trace, the cursor heap merging per-CPU streams,
// the parked-core bookkeeping and the high-water tick. Making it a named
// struct (instead of Run-local variables) is what lets the simulator be
// snapshotted mid-run and stepped one event at a time.
type tickState struct {
	// accs is the caller's trace; the CSR index slices below point into it
	// instead of copying the accesses. streamOff[c]..streamOff[c+1]
	// delimits CPU c's indices within streamIdx.
	accs      []trace.Access
	streamOff []int32
	streamIdx []int32
	pos       []int32 // per-CPU position within its stream

	// cursors is a hand-inlined min-heap on (tick, cpu) merging the
	// runnable CPUs' next accesses in global time order.
	cursors []cursor

	// Parked-core bookkeeping as fixed per-CPU arrays (indexed by CPU
	// number) so parking, waking and diagnostics are map-free and walk the
	// cores in index order — deterministic by construction.
	parkedTick    []uint64 // when the core parked (stall start)
	parkedFence   []bool   // waiting for outstanding == 0 rather than < budget
	isParked      []bool
	fenceSignaled []bool
	nParked       int

	// last is the latest tick at which a core issued or memory made
	// progress while no core was runnable; Drain picks up from it.
	last uint64

	started  bool
	finished bool
}

// Start validates and buckets the trace and arms the tick loop. The trace
// must be ordered by tick (as produced by internal/workloads). A System is
// single-use: build a fresh one per run, or recycle one with Reset.
func (s *System) Start(accs []trace.Access) error {
	if s.ts.started {
		return fmt.Errorf("sim: Start called twice (a System is single-use)")
	}
	// The index stays on the stack: StartIndexed copies its slices into the
	// tick state and never retains the pointer.
	var idx TraceIndex
	if err := idx.init(accs, s.cfg.Hierarchy.CPUs); err != nil {
		return err
	}
	return s.StartIndexed(&idx)
}

// StartIndexed arms the tick loop over a pre-bucketed trace. The index may
// be shared read-only by any number of concurrent or sequential runs, so a
// sweep replaying one trace under several configurations buckets it once
// (the batch engine's fast path). It must have been built for this
// system's CPU count.
func (s *System) StartIndexed(idx *TraceIndex) error {
	if s.ts.started {
		return fmt.Errorf("sim: Start called twice (a System is single-use)")
	}
	if idx == nil {
		return fmt.Errorf("sim: StartIndexed with nil index")
	}
	cpus := s.cfg.Hierarchy.CPUs
	if idx.cpus != cpus {
		return fmt.Errorf("sim: trace index bucketed for %d CPUs, system has %d", idx.cpus, cpus)
	}
	ts := &s.ts
	ts.accs = idx.accs
	ts.streamOff = idx.streamOff
	ts.streamIdx = idx.streamIdx
	ts.cursors = make([]cursor, 0, cpus)
	for cpu := 0; cpu < cpus; cpu++ {
		if s.streamLen(uint8(cpu)) > 0 {
			ts.cursors = cursorPush(ts.cursors, cursor{tick: s.streamAt(uint8(cpu), 0).Tick, cpu: uint8(cpu)})
		}
	}
	ts.pos = make([]int32, cpus)
	ts.parkedTick = make([]uint64, cpus)
	// One backing array for the three per-CPU flag slices.
	flags := make([]bool, 3*cpus)
	ts.parkedFence = flags[:cpus:cpus]
	ts.isParked = flags[cpus : 2*cpus : 2*cpus]
	ts.fenceSignaled = flags[2*cpus : 3*cpus : 3*cpus]
	ts.started = true
	return nil
}

// streamLen is CPU cpu's trace length.
func (s *System) streamLen(cpu uint8) int32 {
	return s.ts.streamOff[int(cpu)+1] - s.ts.streamOff[cpu]
}

// streamAt is CPU cpu's p-th access.
func (s *System) streamAt(cpu uint8, p int32) *trace.Access {
	return &s.ts.accs[s.ts.streamIdx[s.ts.streamOff[cpu]+p]]
}

// wake moves parked CPUs whose condition now holds back into the cursor
// heap at the wake tick.
func (s *System) wake(now uint64) {
	ts := &s.ts
	if ts.nParked == 0 {
		return
	}
	for cpu := range ts.isParked {
		if !ts.isParked[cpu] {
			continue
		}
		ready := (ts.parkedFence[cpu] && s.outstanding[cpu] == 0) ||
			(!ts.parkedFence[cpu] && s.outstanding[cpu] < s.cfg.MaxOutstanding)
		if !ready {
			continue
		}
		if now > ts.parkedTick[cpu] {
			s.stall[cpu] += now - ts.parkedTick[cpu]
		}
		t := ts.parkedTick[cpu]
		if now > t {
			t = now
		}
		ts.cursors = cursorPush(ts.cursors, cursor{tick: t, cpu: uint8(cpu)})
		ts.isParked[cpu] = false
		ts.nParked--
	}
}

// park removes the root cursor's CPU from the runnable set until wake's
// condition (fence: outstanding == 0; MLP: outstanding < budget) holds.
func (s *System) park(cpu uint8, tick uint64, fence bool) {
	ts := &s.ts
	ts.cursors = cursorPopRoot(ts.cursors)
	ts.parkedTick[cpu] = tick
	ts.parkedFence[cpu] = fence
	ts.isParked[cpu] = true
	ts.nParked++
}

// Step advances the simulation by one scheduling event — a memory-system
// delivery or one core access — and reports whether the trace has fully
// issued (Finish then drains the memory system). The stages inside one
// step, in order: error poll, memory retire, then for the chosen core
// either fence handling, MLP parking, or trace feed + re-touch
// regeneration, and finally the cursor advance.
func (s *System) Step() (bool, error) {
	ts := &s.ts
	if !ts.started {
		return false, fmt.Errorf("sim: Step before Start")
	}
	if ts.finished {
		return false, fmt.Errorf("sim: Step after Finish")
	}
	if len(ts.cursors) == 0 && ts.nParked == 0 {
		return true, nil
	}
	// A callback or the coalescer latched a conservation violation:
	// further simulation is untrustworthy, abort with the diagnostic.
	// Both polls are nil compares — free on the clean path.
	if s.runErr == nil {
		s.runErr = s.coal.Err()
	}
	if s.runErr != nil {
		return false, fmt.Errorf("sim: %w", s.runErr)
	}
	memTick, memOK := s.coal.NextEvent()

	// With no runnable CPU, only memory progress can unpark one.
	if len(ts.cursors) == 0 {
		if !memOK {
			// No runnable core and no memory event: either a response was
			// dropped on the link (watchdog names the doomed line) or this
			// is a genuine scheduling deadlock.
			if werr := s.coal.WatchdogError(); werr != nil {
				return false, fmt.Errorf("sim: %w; links: %s", werr, s.device.DebugLinks())
			}
			return false, s.deadlockError(ts.isParked, ts.parkedTick, ts.parkedFence)
		}
		s.stageMemoryRetire(memTick)
		if memTick > ts.last {
			ts.last = memTick
		}
		s.wake(memTick)
		return false, nil
	}

	cur := ts.cursors[0]
	if memOK && memTick <= cur.tick {
		// Memory events due before the next access: deliver them first.
		s.stageMemoryRetire(memTick)
		s.wake(memTick)
		return false, nil
	}

	cpu := cur.cpu
	a := s.streamAt(cpu, ts.pos[cpu])
	effTick := cur.tick

	switch {
	case a.Kind == trace.FenceOp:
		if s.stageFence(cpu, effTick) {
			return false, nil // parked; cursor not advanced past the fence yet
		}
	case s.outstanding[cpu] >= s.cfg.MaxOutstanding:
		// MLP budget exhausted: park until a response frees a slot.
		s.park(cpu, effTick, false)
		return false, nil
	default:
		if err := s.stageTraceFeed(a, effTick); err != nil {
			return false, err
		}
	}
	if effTick > ts.last {
		ts.last = effTick
	}
	s.advanceCursor(cpu, a, effTick)
	return false, nil
}

// stageMemoryRetire advances the memory pipeline to now, delivering every
// due event: sorter flushes, DMC grouping, CRQ drain into the MSHRs,
// packet submission to the backend and response retirement all happen
// inside coalescer.Advance, which calls back into the System's completion
// handler to return tokens and unblock cores.
func (s *System) stageMemoryRetire(now uint64) {
	s.clockAdvance(now)
	s.coal.Advance(now)
}

// stageFence handles a fence access: flush the coalescer (once per fence),
// then park the core until its outstanding demand misses retire. Reports
// whether the core parked.
func (s *System) stageFence(cpu uint8, effTick uint64) bool {
	ts := &s.ts
	if !ts.fenceSignaled[cpu] {
		s.clockAdvance(effTick)
		s.coal.Fence(effTick)
		ts.fenceSignaled[cpu] = true
	}
	if s.outstanding[cpu] > 0 {
		s.park(cpu, effTick, true)
		return true
	}
	ts.fenceSignaled[cpu] = false
	return false
}

// stageTraceFeed runs one access through the cache hierarchy and pushes
// its LLC misses (and write-backs) into the coalescer's front end, then
// regenerates re-touch misses for lines still in flight.
func (s *System) stageTraceFeed(a *trace.Access, effTick uint64) error {
	s.clockAdvance(effTick)
	s.coal.Advance(effTick)
	_, misses, err := s.hierarchy.Access(trace.Access{
		Addr: a.Addr, Size: a.Size, Kind: a.Kind, CPU: a.CPU, Tick: effTick,
	})
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	var missedLines [8]uint64 // lines missed by THIS access (small fixed buffer)
	nMissed := 0
	for _, m := range misses {
		tok := writeBackToken
		if !m.WriteBack {
			tok = s.newToken(m.CPU, m.Line)
			// Register the fill as outstanding until its response.
			s.fetchInsert(m.Line, tok, m.CPU, effTick)
			if nMissed < len(missedLines) {
				missedLines[nMissed] = m.Line
				nMissed++
			}
		}
		s.coal.Push(effTick, coalescer.Request{
			Line:    m.Line,
			Write:   m.Write,
			Payload: m.Payload,
			Token:   tok,
			CPU:     m.CPU,
			// A demand load the core will block on; write-backs and
			// stores retire without waiting.
			Critical: !m.WriteBack && !m.Write,
		})
	}
	s.stageRetouch(a, effTick, &missedLines, nMissed)
	return nil
}

// stageRetouch regenerates the LLC misses hidden by instant tag-array
// installs. Lines this access touched that hit the tag arrays but whose
// fill is still in flight are additional LLC misses in a real machine —
// when they come from a different core. (Same-core re-touches are absorbed
// by that core's private L1 MSHR subentries and never reach the LLC.)
// Regenerating them lets them merge in the shared MSHRs, as conventional
// MSHR-based coalescing does.
func (s *System) stageRetouch(a *trace.Access, effTick uint64, missedLines *[8]uint64, nMissed int) {
	lineBytes := uint64(s.cfg.Hierarchy.LLC.LineBytes)
	firstLn := a.Addr / lineBytes
	lastLn := (a.End() - 1) / lineBytes
	for ln := firstLn; ln <= lastLn; ln++ {
		fresh := false
		for i := 0; i < nMissed; i++ {
			if missedLines[i] == ln {
				fresh = true
				break
			}
		}
		if fresh {
			continue
		}
		fi, busy := s.fetchLookup(ln)
		if !busy {
			continue
		}
		if fi.cpu == a.CPU && effTick-fi.tick <= sameCoreWindow {
			continue
		}
		lo, hi := ln*lineBytes, (ln+1)*lineBytes
		if a.Addr > lo {
			lo = a.Addr
		}
		if a.End() < hi {
			hi = a.End()
		}
		tok := s.newToken(a.CPU, ln)
		s.coal.Push(effTick, coalescer.Request{
			Line:     ln,
			Write:    a.Kind == trace.Store,
			Payload:  uint32(hi - lo),
			Token:    tok,
			CPU:      a.CPU,
			Critical: a.Kind != trace.Store,
		})
	}
}

// advanceCursor moves the issuing CPU's cursor past the access it just
// completed, carrying its accumulated delay into its next access's tick.
func (s *System) advanceCursor(cpu uint8, a *trace.Access, effTick uint64) {
	ts := &s.ts
	delay := effTick - a.Tick
	ts.pos[cpu]++
	if ts.pos[cpu] < s.streamLen(cpu) {
		ts.cursors[0].tick = s.streamAt(cpu, ts.pos[cpu]).Tick + delay
		cursorFixRoot(ts.cursors)
	} else {
		ts.cursors = cursorPopRoot(ts.cursors)
	}
}

// Finish drains the memory system after the trace has fully issued, runs
// the end-of-run conservation audits and assembles the Result.
func (s *System) Finish() (Result, error) {
	ts := &s.ts
	if !ts.started {
		return Result{}, fmt.Errorf("sim: Finish before Start")
	}
	if ts.finished {
		return Result{}, fmt.Errorf("sim: Finish called twice")
	}
	if len(ts.cursors) > 0 || ts.nParked > 0 {
		return Result{}, fmt.Errorf("sim: Finish with %d runnable and %d parked CPU(s)",
			len(ts.cursors), ts.nParked)
	}
	ts.finished = true
	idle, err := s.coal.Drain(ts.last)
	if err != nil {
		return Result{}, fmt.Errorf("sim: %w; links: %s", err, s.device.DebugLinks())
	}
	if s.runErr == nil {
		s.runErr = s.coal.Err()
	}
	if s.runErr != nil {
		return Result{}, fmt.Errorf("sim: %w", s.runErr)
	}
	if s.doneTok != s.pushedTok {
		v := invariant.Violatef(invariant.RuleTokenConservation, idle, s.coal.DebugState(),
			"%d token(s) pushed, %d completed", s.pushedTok, s.doneTok)
		s.check.Record(v)
		return Result{}, fmt.Errorf("sim: token conservation broken: %w", v)
	}
	if s.check != nil {
		// End-of-run conservation audit: every queue drained, every MSHR
		// entry free, every issued packet byte accounted for, every token
		// slot dead. Only reachable with Config.Checks on.
		if cerr := s.coal.CheckDrained(idle); cerr != nil {
			return Result{}, fmt.Errorf("sim: %w", cerr)
		}
		if cerr := s.device.CheckConservation(idle); cerr != nil {
			return Result{}, fmt.Errorf("sim: %w", cerr)
		}
		if v := s.ledger.CheckDrained(idle); v != nil {
			s.check.Record(v)
			return Result{}, fmt.Errorf("sim: %w", v)
		}
	}

	res := Result{
		RuntimeCycles: idle,
		FailedLoads:   s.failedTok,
		Coalescer:     s.coal.Stats(),
		HMC:           s.device.Stats(),
		LLC:           s.hierarchy.LLCStats(),
		ClockGHz:      s.cfg.ClockGHz,
		LineBytes:     s.cfg.Coalescer.LineBytes,
	}
	res.L1, res.L2 = s.hierarchy.LevelStats()
	ms := s.coal.MSHRStats()
	res.MSHR.Allocations = ms.Allocations
	res.MSHR.MergedTargets = ms.MergedTargets
	res.MSHR.SplitRequests = ms.SplitRequests
	res.MSHR.FullStalls = ms.FullStalls
	res.LLCMisses = res.Coalescer.Requests
	res.HMCRequests = res.Coalescer.HMCRequests
	for _, st := range s.stall {
		res.StallCycles += st
	}
	return res, nil
}

// Tick is the staged loop's high-water tick: the latest point at which a
// core issued or the memory system made unaccompanied progress. Callers
// stepping manually use it to decide when to snapshot.
func (s *System) Tick() uint64 { return s.ts.last }
