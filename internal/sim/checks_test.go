package sim

import (
	"reflect"
	"testing"

	"hmccoal/internal/invariant"
	"hmccoal/internal/workloads"
)

// TestChecksCleanRunIdentical proves the checker's core contract: enabling
// Config.Checks changes no simulated quantity — every metric of a clean
// run is identical with checks on and off, and no violation is recorded.
func TestChecksCleanRunIdentical(t *testing.T) {
	for _, name := range []string{"HPCG", "FT", "EP"} {
		accs := genTrace(t, name, 400)
		for _, mode := range []Mode{Baseline, DMCOnly, TwoPhase} {
			base := runMode(t, accs, mode)

			cfg := DefaultConfig()
			cfg.Mode = mode
			cfg.Checks = true
			s, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			checked, err := s.Run(accs)
			if err != nil {
				t.Fatalf("%s/%v with checks: %v", name, mode, err)
			}
			if !reflect.DeepEqual(base, checked) {
				t.Errorf("%s/%v: results differ with Checks on", name, mode)
			}
			if s.Checker() == nil {
				t.Fatal("Checks=true did not attach a checker")
			}
			if violErr := s.Checker().Err(); violErr != nil {
				t.Errorf("%s/%v: clean run recorded violations: %v", name, mode, violErr)
			}
		}
	}
}

// TestChecksCleanRunWithFaults runs the checker over a faulty link whose
// errors all recover through retries and span re-issue: the conservation
// laws must hold across the whole retry machinery.
func TestChecksCleanRunWithFaults(t *testing.T) {
	accs := genTrace(t, "HPCG", 400)
	for _, ber := range []float64{1e-6, 1e-4} {
		run := func(checks bool) Result {
			cfg := DefaultConfig()
			cfg.HMC.Fault.Seed = 7
			cfg.HMC.Fault.BER = ber
			cfg.Checks = checks
			s, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run(accs)
			if err != nil {
				t.Fatalf("ber=%v checks=%v: %v", ber, checks, err)
			}
			return res
		}
		if !reflect.DeepEqual(run(false), run(true)) {
			t.Errorf("ber=%v: results differ with Checks on", ber)
		}
	}
}

// TestChecksDetectDoubleCompletion injects the acceptance-criteria bug: a
// waiter completed twice must surface as a structured double-completion
// violation, not a panic or silent corruption.
func TestChecksDetectDoubleCompletion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Checks = true
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tok := s.newToken(0, 42)
	if v := s.ledger.Complete(tok, 10); v != nil {
		t.Fatalf("first completion: %v", v)
	}
	v := s.ledger.Complete(tok, 11)
	if v == nil || v.Rule != invariant.RuleDoubleCompletion {
		t.Fatalf("double completion: got %v, want %s violation", v, invariant.RuleDoubleCompletion)
	}
}

// TestChecksDetectLeakedToken proves the end-of-run ledger audit reports a
// token that never completed.
func TestChecksDetectLeakedToken(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Checks = true
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.newToken(3, 7) // issued, never completed
	v := s.ledger.CheckDrained(100)
	if v == nil || v.Rule != invariant.RuleTokenConservation {
		t.Fatalf("leaked token: got %v, want %s violation", v, invariant.RuleTokenConservation)
	}
}

// TestChecksWorkloadSweep is the broad empirical guard for the clock
// monotonicity and drain audits: every benchmark workload must run clean
// under the checker in the default two-phase configuration.
func TestChecksWorkloadSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload sweep")
	}
	for _, name := range workloads.Names() {
		accs := genTrace(t, name, 300)
		cfg := DefaultConfig()
		cfg.Checks = true
		s, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(accs); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
