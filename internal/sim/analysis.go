package sim

import (
	"fmt"
	"sort"

	"hmccoal/internal/cache"
	"hmccoal/internal/hmc"
	"hmccoal/internal/trace"
)

// PayloadAnalysis is the payload-granularity study behind Figures 9–11: the
// LLC miss stream is coalesced by the *actual requested data size* rather
// than the cache line size (§5.3.2), and transfers are priced at FLIT
// granularity.
//
// The accounting follows the paper's bandwidth-efficiency methodology:
//
//   - raw: every miss moves a full 64 B line plus 32 B control (96 B
//     transactions) while the core only wanted the triggering access's
//     bytes — hence single-digit raw efficiencies for small accesses.
//   - coalesced: line-adjacent same-type misses of one sorter sequence
//     share a packet that carries only their FLIT-rounded payloads and one
//     control pair.
type PayloadAnalysis struct {
	// Misses is the number of demand misses analyzed (write-backs are
	// excluded as in Figure 10).
	Misses uint64
	// PayloadBytes is the data the cores actually requested.
	PayloadBytes uint64
	// RawBytes prices the conventional MHA: one 64 B packet + 32 B control
	// per miss.
	RawBytes uint64
	// CoalescedBytes prices the payload-coalesced requests.
	CoalescedBytes uint64
	// Hist is the Figure 10 request-size distribution of the coalesced
	// requests (16 B granularity buckets).
	Hist map[uint32]uint64
}

// RawEfficiency is Figure 9's raw series (Equation 1 over 96 B-per-miss
// transfers).
func (a PayloadAnalysis) RawEfficiency() float64 {
	if a.RawBytes == 0 {
		return 0
	}
	return float64(a.PayloadBytes) / float64(a.RawBytes)
}

// CoalescedEfficiency is Figure 9's coalesced series.
func (a PayloadAnalysis) CoalescedEfficiency() float64 {
	if a.CoalescedBytes == 0 {
		return 0
	}
	return float64(a.PayloadBytes) / float64(a.CoalescedBytes)
}

// SavedBytes is Figure 11's metric: transfer volume avoided by coalescing.
func (a PayloadAnalysis) SavedBytes() int64 {
	return int64(a.RawBytes) - int64(a.CoalescedBytes)
}

// AnalyzePayload runs the payload-granularity coalescing study over a
// trace. width is the sorter sequence width used to batch the miss stream
// (16 in the paper).
func AnalyzePayload(hier cache.HierarchyConfig, accs []trace.Access, width int) (PayloadAnalysis, error) {
	h, err := cache.NewHierarchy(hier)
	if err != nil {
		return PayloadAnalysis{Hist: make(map[uint32]uint64)}, err
	}
	return AnalyzePayloadWith(h, accs, width)
}

// AnalyzePayloadWith is AnalyzePayload on a caller-supplied hierarchy,
// which it resets before walking the trace. Dense sweeps reuse one
// hierarchy — megabytes of tag arrays — across analyses instead of
// rebuilding it per call; the result is identical to a fresh build.
func AnalyzePayloadWith(h *cache.Hierarchy, accs []trace.Access, width int) (PayloadAnalysis, error) {
	h.Reset()
	res := PayloadAnalysis{Hist: make(map[uint32]uint64)}
	if width <= 0 {
		width = 16
	}
	lineBytes := uint64(h.LineBytes())
	linesPerBlock := hmc.MaxRequestBytes / lineBytes

	type missRec struct {
		line    uint64
		write   bool
		payload uint32
	}
	var misses []missRec
	for _, a := range accs {
		if a.Kind == trace.FenceOp {
			continue
		}
		_, ms, err := h.Access(a)
		if err != nil {
			return res, fmt.Errorf("sim: %w", err)
		}
		for _, m := range ms {
			if m.WriteBack {
				continue // write-backs are full-line by definition; excluded
			}
			misses = append(misses, missRec{line: m.Line, write: m.Write, payload: m.Payload})
			res.PayloadBytes += uint64(m.Payload)
		}
	}

	// Batch the miss stream as the sorter would and coalesce line-adjacent
	// same-type misses; each coalesced packet moves the FLIT-rounded
	// payloads of its members and one 32 B control pair, and may not span
	// more than one HMC block.
	for start := 0; start < len(misses); start += width {
		end := start + width
		if end > len(misses) {
			end = len(misses)
		}
		batch := append([]missRec(nil), misses[start:end]...)
		sort.Slice(batch, func(i, j int) bool {
			if batch[i].write != batch[j].write {
				return !batch[i].write
			}
			return batch[i].line < batch[j].line
		})
		i := 0
		for i < len(batch) {
			cur := batch[i]
			size := roundUp16(cur.payload)
			first := cur.line
			j := i + 1
			for j < len(batch) &&
				batch[j].write == cur.write &&
				(batch[j].line == batch[j-1].line || batch[j].line == batch[j-1].line+1) &&
				batch[j].line-first < linesPerBlock {
				size += roundUp16(batch[j].payload)
				j++
			}
			if size > hmc.MaxRequestBytes {
				size = hmc.MaxRequestBytes
			}
			res.Hist[size]++
			res.CoalescedBytes += uint64(size) + hmc.ControlBytes
			i = j
		}
	}
	res.Misses = uint64(len(misses))
	res.RawBytes = res.Misses * (lineBytes + hmc.ControlBytes)
	return res, nil
}

// PayloadDistribution returns only the Figure 10 histogram; see
// AnalyzePayload for the full study.
func PayloadDistribution(hier cache.HierarchyConfig, accs []trace.Access, width int) (map[uint32]uint64, error) {
	a, err := AnalyzePayload(hier, accs, width)
	if err != nil {
		return nil, err
	}
	return a.Hist, nil
}

func roundUp16(b uint32) uint32 {
	if b == 0 {
		return 16
	}
	return (b + 15) / 16 * 16
}
