package sim

import (
	"fmt"

	"hmccoal/internal/cache"
	"hmccoal/internal/frontend"
	"hmccoal/internal/invariant"
	"hmccoal/internal/membackend"
	"hmccoal/internal/trace"
)

// Snapshot is an opaque deep copy of a running System, taken between Steps:
// the token ring and per-core accounting, the outstanding-fill table, the
// staged tick loop's scheduling state, every cache level, the full
// coalescer (CRQ, MSHRs, in-flight and retry heaps), the memory backend
// (including the packet serial counter that keys fault injection) and the
// token ledger. Restoring it into a fresh System built from the same
// Config and stepping to completion produces byte-identical results to the
// uninterrupted run — including under fault injection, because the fault
// injector is a pure function of restored counters.
//
// The trace is captured by reference: accesses are read-only to the
// simulator, so snapshot and original safely share it.
type Snapshot struct {
	cfg  Config
	accs []trace.Access

	outstanding []int
	nextToken   uint64
	tokenCPU    []uint8
	tokenLine   []uint64
	stall       []uint64
	pushedTok   uint64
	doneTok     uint64
	failedTok   uint64

	fetchSlots []fetchSlot
	fetchMask  uint64
	fetchUsed  int

	lastClock uint64
	ts        tickState

	hier    *cache.HierarchyState
	coal    frontend.Snapshot
	backend membackend.Snapshot
	ledger  *invariant.TokenLedgerState
}

// copyTickState deep-copies the scheduling state. The trace and the CSR
// index slices into it are immutable after Start and shared by reference.
func copyTickState(ts *tickState) tickState {
	out := *ts
	out.pos = append([]int32(nil), ts.pos...)
	out.cursors = append([]cursor(nil), ts.cursors...)
	out.parkedTick = append([]uint64(nil), ts.parkedTick...)
	out.parkedFence = append([]bool(nil), ts.parkedFence...)
	out.isParked = append([]bool(nil), ts.isParked...)
	out.fenceSignaled = append([]bool(nil), ts.fenceSignaled...)
	return out
}

// Snapshot deep-copies the system's state. It is legal between Steps of a
// started, unfinished run whose checks are clean; the system keeps running
// unaffected afterwards.
func (s *System) Snapshot() (*Snapshot, error) {
	if !s.ts.started {
		return nil, fmt.Errorf("sim: snapshot before Start")
	}
	if s.ts.finished {
		return nil, fmt.Errorf("sim: snapshot after Finish")
	}
	if s.runErr != nil {
		return nil, fmt.Errorf("sim: cannot snapshot after violation: %w", s.runErr)
	}
	cs, err := s.coal.SaveState()
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	return &Snapshot{
		cfg:         s.cfg,
		accs:        s.ts.accs,
		outstanding: append([]int(nil), s.outstanding...),
		nextToken:   s.nextToken,
		tokenCPU:    append([]uint8(nil), s.tokenCPU...),
		tokenLine:   append([]uint64(nil), s.tokenLine...),
		stall:       append([]uint64(nil), s.stall...),
		pushedTok:   s.pushedTok,
		doneTok:     s.doneTok,
		failedTok:   s.failedTok,
		fetchSlots:  append([]fetchSlot(nil), s.fetching.slots...),
		fetchMask:   s.fetching.mask,
		fetchUsed:   s.fetching.used,
		lastClock:   s.lastClock,
		ts:          copyTickState(&s.ts),
		hier:        s.hierarchy.SaveState(),
		coal:        cs,
		backend:     s.device.Snapshot(),
		ledger:      s.ledger.SaveState(),
	}, nil
}

// Restore replays a snapshot into a fresh System built from the same
// Config (compared exactly — geometry, timing, mode, backend and fault
// setup must all match). The snapshot itself is not consumed: it deep
// copies into the system and can be restored again.
func (s *System) Restore(snap *Snapshot) error {
	if s.ts.started {
		return fmt.Errorf("sim: restore into a used System (build a fresh one)")
	}
	if s.cfg != snap.cfg {
		return fmt.Errorf("sim: snapshot configuration differs from system configuration")
	}
	if len(snap.tokenCPU) != len(s.tokenCPU) || len(snap.outstanding) != len(s.outstanding) {
		return fmt.Errorf("sim: snapshot ring/CPU geometry differs")
	}
	if (snap.ledger == nil) != (s.ledger == nil) {
		return fmt.Errorf("sim: snapshot and system disagree on invariant checking")
	}
	if err := s.hierarchy.RestoreState(snap.hier); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if err := s.coal.RestoreState(snap.coal); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if err := s.device.Restore(snap.backend); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if err := s.ledger.RestoreState(snap.ledger); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	copy(s.outstanding, snap.outstanding)
	s.nextToken = snap.nextToken
	copy(s.tokenCPU, snap.tokenCPU)
	copy(s.tokenLine, snap.tokenLine)
	copy(s.stall, snap.stall)
	s.pushedTok = snap.pushedTok
	s.doneTok = snap.doneTok
	s.failedTok = snap.failedTok
	s.fetching = fetchTable{
		slots: append([]fetchSlot(nil), snap.fetchSlots...),
		mask:  snap.fetchMask,
		used:  snap.fetchUsed,
	}
	s.lastClock = snap.lastClock
	s.ts = copyTickState(&snap.ts)
	return nil
}
