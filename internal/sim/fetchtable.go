package sim

// fetchTable is the open-addressed hash table tracking cache lines whose
// fill is still in flight. It replaces a map[uint64]fetchInfo on the
// simulator's hottest lookup path (every line of every access probes it).
//
// Deletion is implicit — "tombstone-free via token validation": a slot is
// live only while the token ring still records its token as fetching its
// line (System.tokenLine[token%ring] == line). Completions retire a fetch
// by stamping the ring slot with fetchDone, which instantly invalidates the
// table slot without touching the table. Stale slots are recycled by
// inserts and dropped wholesale when the table rehashes.
//
// The table relies on an invariant the insert path maintains: at most one
// slot per line ever exists, because an insert for a line overwrites the
// line's existing slot (live or stale) if one is in the probe chain.
type fetchTable struct {
	slots []fetchSlot
	mask  uint64
	used  int // occupied slots, live or stale
}

// fetchSlot holds one outstanding-line record.
type fetchSlot struct {
	line  uint64
	token uint64
	tick  uint64
	cpu   uint8
	inUse bool
}

// fetchDone is the tokenLine stamp marking a completed fill. It can never
// collide with a real line number (lines carry 52-bit addresses).
const fetchDone = ^uint64(0)

// fetchHash spreads line numbers over the table (Fibonacci hashing).
func fetchHash(line uint64) uint64 { return line * 0x9E3779B97F4A7C15 }

func newFetchTable(capacity int) fetchTable {
	size := newFetchTableSize(capacity)
	return fetchTable{slots: make([]fetchSlot, size), mask: uint64(size - 1)}
}

// newFetchTableSize is the slot count newFetchTable allocates for
// capacity: a ≤50% load factor at the expected live bound so probe chains
// stay short even before stale slots are recycled. System.init consults it
// to decide whether a recycled table is big enough to reuse.
func newFetchTableSize(capacity int) int {
	size := 16
	for size < capacity*2 {
		size *= 2
	}
	return size
}

// live reports whether the slot still describes an outstanding fill.
func (s *System) fetchLive(sl *fetchSlot) bool {
	return s.tokenLine[sl.token%uint64(len(s.tokenLine))] == sl.line
}

// fetchLookup returns the outstanding-fill record for line, if any.
func (s *System) fetchLookup(line uint64) (fetchInfo, bool) {
	t := &s.fetching
	for i := fetchHash(line) & t.mask; ; i = (i + 1) & t.mask {
		sl := &t.slots[i]
		if !sl.inUse {
			return fetchInfo{}, false
		}
		if sl.line == line {
			if s.fetchLive(sl) {
				return fetchInfo{token: sl.token, cpu: sl.cpu, tick: sl.tick}, true
			}
			return fetchInfo{}, false
		}
	}
}

// fetchInsert registers (or refreshes) the outstanding fill for line.
func (s *System) fetchInsert(line, token uint64, cpu uint8, tick uint64) {
	t := &s.fetching
	if t.used*4 >= len(t.slots)*3 {
		s.fetchRehash()
	}
	reuse := -1
	for i := fetchHash(line) & t.mask; ; i = (i + 1) & t.mask {
		sl := &t.slots[i]
		if !sl.inUse {
			if reuse >= 0 {
				sl = &t.slots[reuse]
			} else {
				t.used++
			}
			*sl = fetchSlot{line: line, token: token, tick: tick, cpu: cpu, inUse: true}
			return
		}
		if sl.line == line {
			// The line's unique slot: overwrite whether live or stale.
			*sl = fetchSlot{line: line, token: token, tick: tick, cpu: cpu, inUse: true}
			return
		}
		if reuse < 0 && !s.fetchLive(sl) {
			reuse = int(i)
		}
	}
}

// fetchRehash rebuilds the table carrying only live slots over. The new
// size keeps the *live* load under 50%: when most occupied slots are stale
// (completed fills the inserts never recycled) the table stays the same
// size and simply sheds them, so churn cannot grow it without bound.
func (s *System) fetchRehash() {
	old := s.fetching.slots
	live := 0
	for i := range old {
		if old[i].inUse && s.fetchLive(&old[i]) {
			live++
		}
	}
	size := len(old)
	for live*2 >= size {
		size *= 2
	}
	next := fetchTable{slots: make([]fetchSlot, size), mask: uint64(size - 1)}
	for i := range old {
		sl := &old[i]
		if !sl.inUse || !s.fetchLive(sl) {
			continue
		}
		j := fetchHash(sl.line) & next.mask
		for next.slots[j].inUse {
			j = (j + 1) & next.mask
		}
		next.slots[j] = *sl
		next.used++
	}
	s.fetching = next
}
