package sim

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	"hmccoal/internal/fault"
	"hmccoal/internal/frontend"
	"hmccoal/internal/membackend"
	"hmccoal/internal/trace"
)

// soloRun executes one job the single-system way: the reference results
// every batch width must reproduce byte-for-byte.
func soloRun(t *testing.T, cfg Config, accs []trace.Access) Result {
	t.Helper()
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(accs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRunBatchMatchesSolo is the batch engine's core contract: per-run
// results are byte-identical to K=1 across every architecture × backend
// combination, at width 1 and width 8.
func TestRunBatchMatchesSolo(t *testing.T) {
	accs := genTrace(t, "HPCG", 300)
	idx, err := NewTraceIndex(accs, DefaultConfig().Hierarchy.CPUs)
	if err != nil {
		t.Fatal(err)
	}

	var jobs []BatchJob
	var want []Result
	for _, mode := range []Mode{Baseline, DMCOnly, TwoPhase} {
		for _, kind := range []membackend.Kind{membackend.KindHMC, membackend.KindDDR, membackend.KindIdeal} {
			cfg := DefaultConfig()
			cfg.Mode = mode
			cfg.Backend = kind
			jobs = append(jobs, BatchJob{
				Name:  mode.String() + "/" + kind.String(),
				Cfg:   cfg,
				Accs:  accs,
				Index: idx,
			})
			want = append(want, soloRun(t, cfg, accs))
		}
	}

	for _, width := range []int{1, 8} {
		got, err := RunBatch(jobs, width)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		if len(got) != len(jobs) {
			t.Fatalf("width %d: %d results for %d jobs", width, len(got), len(jobs))
		}
		for i := range jobs {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("width %d: job %s diverges from solo run", width, jobs[i].Name)
			}
			if g, w := got[i].Summary(), want[i].Summary(); g != w {
				t.Errorf("width %d: job %s summary not byte-identical:\n got: %s\nwant: %s",
					width, jobs[i].Name, g, w)
			}
		}
	}
}

// TestRunBatchFrontendMatrix extends the batch contract across the
// front-end seam: every {front-end × scheduler × backend} combination
// produces byte-identical results at K=1 and K=8, each equal to its solo
// reference — the determinism floor under the new -frontend/-sched axes.
func TestRunBatchFrontendMatrix(t *testing.T) {
	accs := genTrace(t, "HPCG", 300)
	idx, err := NewTraceIndex(accs, DefaultConfig().Hierarchy.CPUs)
	if err != nil {
		t.Fatal(err)
	}

	var jobs []BatchJob
	var want []Result
	for _, fe := range []frontend.Kind{frontend.KindTwoPhase, frontend.KindWarp} {
		for _, sched := range []frontend.SchedKind{frontend.SchedFRFCFS, frontend.SchedHetero} {
			for _, kind := range []membackend.Kind{membackend.KindHMC, membackend.KindDDR, membackend.KindIdeal} {
				cfg := DefaultConfig()
				cfg.Frontend = fe
				cfg.Sched = sched
				cfg.Backend = kind
				jobs = append(jobs, BatchJob{
					Name:  fe.String() + "/" + sched.String() + "/" + kind.String(),
					Cfg:   cfg,
					Accs:  accs,
					Index: idx,
				})
				want = append(want, soloRun(t, cfg, accs))
			}
		}
	}

	for _, width := range []int{1, 8} {
		got, err := RunBatch(jobs, width)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		for i := range jobs {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("width %d: job %s diverges from solo run", width, jobs[i].Name)
			}
		}
	}
}

// TestRunBatchFaultyLane mixes one BER>0 lane into an otherwise clean
// batch: the faulty run must observe faults, the clean runs must not, and
// all must equal their solo references — lanes are fully independent.
func TestRunBatchFaultyLane(t *testing.T) {
	accs := genTrace(t, "STREAM", 300)

	clean := DefaultConfig()
	faulty := DefaultConfig()
	faulty.HMC.Fault = fault.Config{Seed: 7, BER: 1e-4, MaxRetries: 3}

	jobs := []BatchJob{
		{Name: "clean-a", Cfg: clean, Accs: accs},
		{Name: "faulty", Cfg: faulty, Accs: accs},
		{Name: "clean-b", Cfg: clean, Accs: accs},
	}
	got, err := RunBatch(jobs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !got[1].FaultsObserved() {
		t.Error("faulty lane observed no faults (BER may be too low for this trace)")
	}
	if got[0].FaultsObserved() || got[2].FaultsObserved() {
		t.Error("clean lanes observed faults — lane state leaked")
	}
	if !reflect.DeepEqual(got[0], got[2]) {
		t.Error("identical clean jobs produced different results")
	}
	if want := soloRun(t, faulty, accs); !reflect.DeepEqual(got[1], want) {
		t.Error("faulty lane diverges from its solo run")
	}
	if want := soloRun(t, clean, accs); !reflect.DeepEqual(got[0], want) {
		t.Error("clean lane diverges from its solo run")
	}
}

// TestRunBatchWidthClamp checks degenerate widths: zero/negative clamp to
// one lane, widths beyond the job count clamp down, and an empty batch is
// a no-op.
func TestRunBatchWidthClamp(t *testing.T) {
	accs := genTrace(t, "EP", 120)
	job := BatchJob{Name: "ep", Cfg: DefaultConfig(), Accs: accs}
	want := soloRun(t, DefaultConfig(), accs)

	for _, width := range []int{-1, 0, 1, 5} {
		got, err := RunBatch([]BatchJob{job, job}, width)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		for i, r := range got {
			if !reflect.DeepEqual(r, want) {
				t.Errorf("width %d: job %d diverges", width, i)
			}
		}
	}

	if got, err := RunBatch(nil, 4); err != nil || len(got) != 0 {
		t.Errorf("empty batch: got %d results, err %v", len(got), err)
	}
}

// TestRunBatchBadJob checks that a broken job aborts the batch with an
// error naming the job.
func TestRunBatchBadJob(t *testing.T) {
	accs := genTrace(t, "EP", 120)
	bad := DefaultConfig()
	bad.Hierarchy.CPUs = 0
	jobs := []BatchJob{
		{Name: "good", Cfg: DefaultConfig(), Accs: accs},
		{Name: "bad", Cfg: bad, Accs: accs},
	}
	_, err := RunBatch(jobs, 2)
	if err == nil {
		t.Fatal("batch with an invalid job succeeded")
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Errorf("error %q does not name the failing job", err)
	}
}

// TestSystemReset checks the lane-recycling primitive directly: a reset
// system reruns to the exact same result as a fresh one, including across
// a config change that keeps the hierarchy, and rejects hierarchy changes.
func TestSystemReset(t *testing.T) {
	accs := genTrace(t, "FT", 300)

	cfg := DefaultConfig()
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Run(accs)
	if err != nil {
		t.Fatal(err)
	}

	if err := s.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	again, err := s.Run(accs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Error("reset system diverges from its own first run")
	}

	// Same hierarchy, different mode and backend: reuse must still match a
	// fresh build.
	cfg2 := DefaultConfig()
	cfg2.Mode = Baseline
	cfg2.Backend = membackend.KindDDR
	if err := s.Reset(cfg2); err != nil {
		t.Fatal(err)
	}
	got, err := s.Run(accs)
	if err != nil {
		t.Fatal(err)
	}
	if want := soloRun(t, cfg2, accs); !reflect.DeepEqual(got, want) {
		t.Error("reset into a new config diverges from a fresh system")
	}

	// Recycling across front-end kinds: a lane that ran two-phase must
	// rebuild as a clean warp/hetero system, and back again.
	cfg4 := DefaultConfig()
	cfg4.Frontend = frontend.KindWarp
	cfg4.Sched = frontend.SchedHetero
	if err := s.Reset(cfg4); err != nil {
		t.Fatal(err)
	}
	got, err = s.Run(accs)
	if err != nil {
		t.Fatal(err)
	}
	if want := soloRun(t, cfg4, accs); !reflect.DeepEqual(got, want) {
		t.Error("reset into the warp front-end diverges from a fresh system")
	}
	if err := s.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	got, err = s.Run(accs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, got) {
		t.Error("reset back to the default front-end diverges from the first run")
	}

	// A different hierarchy cannot be recycled into.
	cfg3 := DefaultConfig()
	cfg3.Hierarchy.CPUs = 4
	if err := s.Reset(cfg3); err == nil {
		t.Error("Reset accepted a different hierarchy")
	}
}

// TestTraceIndexValidation covers the shared-index error paths.
func TestTraceIndexValidation(t *testing.T) {
	accs := genTrace(t, "EP", 120)

	if _, err := NewTraceIndex(accs, 4); err == nil {
		t.Error("index for 4 CPUs accepted a 12-CPU trace")
	}

	idx, err := NewTraceIndex(accs, 12)
	if err != nil {
		t.Fatal(err)
	}
	if idx.CPUs() != 12 || idx.Len() != len(accs) {
		t.Errorf("index reports %d CPUs/%d accesses, want 12/%d", idx.CPUs(), idx.Len(), len(accs))
	}

	cfg := DefaultConfig()
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.StartIndexed(nil); err == nil {
		t.Error("StartIndexed accepted a nil index")
	}

	small := DefaultConfig()
	small.Hierarchy.CPUs = 6
	s2, err := NewSystem(small)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.StartIndexed(idx); err == nil {
		t.Error("StartIndexed accepted an index bucketed for a different CPU count")
	}
}

// bytesPerRun measures heap bytes allocated per call of f, averaged over
// runs — the byte-weighted sibling of testing.AllocsPerRun.
func bytesPerRun(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warm up
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.TotalAlloc-before.TotalAlloc) / float64(runs)
}

// TestResetCheapAllocs pins the point of lane recycling: a Reset+rerun
// cycle must re-allocate only the per-run machinery (device, coalescer),
// never the cache hierarchy — the tag arrays, megabytes per system, are
// reused generationally. Reuse must cut both the allocation count and,
// decisively, the allocated bytes.
func TestResetCheapAllocs(t *testing.T) {
	accs := genTrace(t, "EP", 120)
	cfg := DefaultConfig()
	idx, err := NewTraceIndex(accs, cfg.Hierarchy.CPUs)
	if err != nil {
		t.Fatal(err)
	}

	freshRun := func() {
		s, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(accs); err != nil {
			t.Fatal(err)
		}
	}

	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(accs); err != nil {
		t.Fatal(err)
	}
	reusedRun := func() {
		if err := s.Reset(cfg); err != nil {
			t.Fatal(err)
		}
		if err := s.StartIndexed(idx); err != nil {
			t.Fatal(err)
		}
		for {
			done, err := s.Step()
			if err != nil {
				t.Fatal(err)
			}
			if done {
				break
			}
		}
		if _, err := s.Finish(); err != nil {
			t.Fatal(err)
		}
	}

	freshAllocs := testing.AllocsPerRun(3, freshRun)
	reusedAllocs := testing.AllocsPerRun(3, reusedRun)
	if reusedAllocs >= freshAllocs {
		t.Errorf("reused lane allocates %.0f objects/run, fresh system %.0f — recycling saves nothing",
			reusedAllocs, freshAllocs)
	}

	freshBytes := bytesPerRun(3, freshRun)
	reusedBytes := bytesPerRun(3, reusedRun)
	if reusedBytes >= freshBytes/10 {
		t.Errorf("reused lane allocates %.0f B/run, fresh system %.0f B/run — tag arrays are being rebuilt",
			reusedBytes, freshBytes)
	}
}
