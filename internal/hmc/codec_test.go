package hmc

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestPacketCodecRoundTrip proves encode→decode is the identity over the
// legal request space.
func TestPacketCodecRoundTrip(t *testing.T) {
	reqs := []Request{
		{Addr: 0, PacketBytes: 16},
		{Addr: 0x1000, PacketBytes: 64, RequestedBytes: 48},
		{Addr: 0x2300, PacketBytes: 256, RequestedBytes: 256, Write: true},
		{Addr: (1 << 52) - 16, PacketBytes: 16, RequestedBytes: 4},
		{Addr: 0xABCDEF00, PacketBytes: 128, RequestedBytes: 1, Write: true},
	}
	for _, req := range reqs {
		buf, err := EncodePacket(req)
		if err != nil {
			t.Fatalf("encode %+v: %v", req, err)
		}
		if len(buf) != PacketWireBytes {
			t.Fatalf("frame length %d, want %d", len(buf), PacketWireBytes)
		}
		got, err := DecodePacket(buf)
		if err != nil {
			t.Fatalf("decode %+v: %v", req, err)
		}
		if got != req {
			t.Errorf("round trip: got %+v, want %+v", got, req)
		}
	}
}

// TestEncodePacketRejectsInvalid proves the encoder refuses requests the
// device would reject, so no invalid frame can be produced.
func TestEncodePacketRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		req  Request
	}{
		{"zero size", Request{PacketBytes: 0}},
		{"unaligned", Request{PacketBytes: 48 + 1}},
		{"oversized", Request{PacketBytes: 512}},
		{"block crossing", Request{Addr: 0x100 - 16, PacketBytes: 32}},
		{"requested over packet", Request{PacketBytes: 16, RequestedBytes: 32}},
		{"address over 52 bits", Request{Addr: 1 << 52, PacketBytes: 16}},
	}
	for _, c := range cases {
		if _, err := EncodePacket(c.req); !errors.Is(err, ErrBadPacket) {
			t.Errorf("%s: err = %v, want ErrBadPacket", c.name, err)
		}
	}
}

// TestDecodePacketRejectsFraming proves each framing rule fires with a
// diagnostic naming the problem, all wrapping ErrBadPacket.
func TestDecodePacketRejectsFraming(t *testing.T) {
	good, err := EncodePacket(Request{Addr: 0x1000, PacketBytes: 64, RequestedBytes: 48})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(off int, val byte) []byte {
		buf := append([]byte(nil), good...)
		buf[off] = val
		return buf
	}
	cases := []struct {
		name string
		buf  []byte
		want string
	}{
		{"short", good[:10], "length"},
		{"long", append(append([]byte(nil), good...), 0), "length"},
		{"magic", corrupt(0, 'X'), "magic"},
		{"version", corrupt(4, 9), "version"},
		{"flag bits", corrupt(5, 0x80), "flag bits"},
		{"reserved", corrupt(18, 1), "reserved"},
		{"crc", corrupt(21, ^good[21]), "CRC"},
		{"padding", corrupt(30, 1), "padding"},
	}
	for _, c := range cases {
		_, err := DecodePacket(c.buf)
		if !errors.Is(err, ErrBadPacket) {
			t.Errorf("%s: err = %v, want ErrBadPacket", c.name, err)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestDecodedPacketSubmittable proves the codec's contract with the
// device: any decoded frame passes SubmitPacket's validation.
func TestDecodedPacketSubmittable(t *testing.T) {
	buf, err := EncodePacket(Request{Addr: 0x40, PacketBytes: 64, RequestedBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	req, err := DecodePacket(buf)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDevice(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.SubmitPacket(0, req); err != nil {
		t.Errorf("device rejected a decoded packet: %v", err)
	}
	// A frame must also be stable under re-encode (what the fuzzer checks
	// property-style, pinned here deterministically).
	out, err := EncodePacket(req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, buf) {
		t.Error("re-encode changed the frame")
	}
}
