package hmc

import (
	"testing"

	"hmccoal/internal/fault"
)

// tokenConfig builds a single-link device with a small token pool so every
// test below saturates flow control quickly.
func tokenConfig(tokens int) Config {
	cfg := DefaultConfig()
	cfg.Links = 1
	cfg.LinkTokens = tokens
	return cfg
}

// TestTokenStarvationOrdering saturates a one-token link: each request
// must wait for the previous response before its packet may even
// serialize, so completions are strictly ordered and the waiting shows up
// in TokenWait.
func TestTokenStarvationOrdering(t *testing.T) {
	d, err := NewDevice(tokenConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	var prev uint64
	for i := 0; i < 8; i++ {
		done, err := d.Submit(0, Request{Addr: uint64(i) * 256, PacketBytes: 64, RequestedBytes: 64})
		if err != nil {
			t.Fatal(err)
		}
		if done <= prev {
			t.Fatalf("request %d completed at %d, not after the previous response %d", i, done, prev)
		}
		prev = done
	}
	s := d.Stats()
	if s.TokenWait == 0 {
		t.Fatal("a saturated one-token link recorded no token wait")
	}
	// With two tokens the same workload waits strictly less.
	d2, err := NewDevice(tokenConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := d2.Submit(0, Request{Addr: uint64(i) * 256, PacketBytes: 64, RequestedBytes: 64}); err != nil {
			t.Fatal(err)
		}
	}
	if w2 := d2.Stats().TokenWait; w2 >= s.TokenWait {
		t.Fatalf("two tokens waited %d cycles, not less than one token's %d", w2, s.TokenWait)
	}
}

// TestTokenReleaseOnResponse: a token becomes available exactly when its
// transaction's response is fully received — a request arriving at that
// tick does not wait.
func TestTokenReleaseOnResponse(t *testing.T) {
	d, err := NewDevice(tokenConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	done, err := d.Submit(0, Request{Addr: 0, PacketBytes: 64, RequestedBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if w := d.Stats().TokenWait; w != 0 {
		t.Fatalf("first request on an idle link waited %d cycles for a token", w)
	}
	// Arriving exactly at the release tick: no token wait.
	if _, err := d.Submit(done, Request{Addr: 256, PacketBytes: 64, RequestedBytes: 64}); err != nil {
		t.Fatal(err)
	}
	if w := d.Stats().TokenWait; w != 0 {
		t.Fatalf("request arriving at the release tick waited %d cycles", w)
	}
	// Arriving one tick before it: exactly one cycle of wait.
	d.Reset()
	done, err = d.Submit(0, Request{Addr: 0, PacketBytes: 64, RequestedBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(done-1, Request{Addr: 256, PacketBytes: 64, RequestedBytes: 64}); err != nil {
		t.Fatal(err)
	}
	if w := d.Stats().TokenWait; w != 1 {
		t.Fatalf("TokenWait = %d, want exactly 1", w)
	}
}

// TestRetriedPacketTokenAccounting: under heavy CRC retries the token
// count must stay conserved — a retried packet holds exactly one token and
// releases it at its (delayed, possibly poisoned) completion; it must
// neither leak a token nor free one twice.
func TestRetriedPacketTokenAccounting(t *testing.T) {
	cfg := tokenConfig(2)
	cfg.Fault = fault.Config{Seed: 9, BER: 5e-3} // heavy but recoverable
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	var retried, poisoned int
	for i := 0; i < 400; i++ {
		comp, err := d.SubmitPacket(0, Request{Addr: uint64(i) * 256, PacketBytes: 64, RequestedBytes: 64})
		if err != nil {
			t.Fatal(err)
		}
		if comp.Retries > 0 {
			retried++
		}
		if comp.Poisoned {
			poisoned++
		}
		seen[comp.Done] = true
		// The token pool never changes size, and every slot holds either
		// zero (never used) or the completion tick of a transaction that
		// actually finished: a retried packet's token travels with its
		// delayed response instead of leaking.
		link := &d.links[0]
		if len(link.tokens) != 2 {
			t.Fatalf("token pool resized to %d", len(link.tokens))
		}
		for slot, rel := range link.tokens {
			if rel == NeverTick {
				t.Fatalf("request %d leaked token slot %d", i, slot)
			}
			if rel != 0 && !seen[rel] {
				t.Fatalf("token slot %d released at %d, which no completion produced", slot, rel)
			}
		}
	}
	if retried == 0 {
		t.Fatal("BER 5e-3 retried nothing over 400 packets; test is vacuous")
	}
	s := d.Stats()
	if s.TokenStarved != 0 {
		t.Fatalf("recoverable retries starved %d requests of tokens", s.TokenStarved)
	}
	_ = poisoned // poisoned responses still return their token; covered by the slot checks above
}

// TestDroppedResponseLeaksTokenAndStarves: a dropped response never
// returns its token. With a one-token link the next request cannot start
// and must be rejected as Dropped (token starvation), not simulated as an
// infinite wait.
func TestDroppedResponseLeaksTokenAndStarves(t *testing.T) {
	cfg := tokenConfig(1)
	cfg.Fault = fault.Config{Seed: 2, DropRate: 1}
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := d.SubmitPacket(0, Request{Addr: 0, PacketBytes: 64, RequestedBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !first.Dropped {
		t.Fatalf("DropRate=1 did not drop: %+v", first)
	}
	second, err := d.SubmitPacket(0, Request{Addr: 256, PacketBytes: 64, RequestedBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Dropped || second.Done != NeverTick {
		t.Fatalf("starved request not failed loudly: %+v", second)
	}
	s := d.Stats()
	if s.TokenStarved != 1 {
		t.Fatalf("TokenStarved = %d, want 1", s.TokenStarved)
	}
	if s.DroppedResponses != 1 {
		t.Fatalf("DroppedResponses = %d, want 1 (starved requests are not drops)", s.DroppedResponses)
	}
}

// TestNoFaultSubmitZeroAlloc pins the no-fault hot path: once the device
// is warm, Submit must not allocate at all, faults disabled being provably
// free.
func TestNoFaultSubmitZeroAlloc(t *testing.T) {
	d, err := NewDevice(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var i uint64
	if n := testing.AllocsPerRun(2000, func() {
		if _, err := d.Submit(i, Request{Addr: i * 64, PacketBytes: 64, RequestedBytes: 64}); err != nil {
			t.Fatal(err)
		}
		i++
	}); n != 0 {
		t.Fatalf("no-fault Submit allocates %v times per call, want 0", n)
	}
}

// TestFaultedSubmitZeroAlloc pins the faulted path too: retries, poisons
// and drops are all draw-and-arithmetic, no allocation.
func TestFaultedSubmitZeroAlloc(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fault = fault.Config{Seed: 4, BER: 1e-3, DropRate: 1e-3}
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var i uint64
	if n := testing.AllocsPerRun(2000, func() {
		if _, err := d.SubmitPacket(i, Request{Addr: i * 64, PacketBytes: 64, RequestedBytes: 64}); err != nil {
			t.Fatal(err)
		}
		i++
	}); n != 0 {
		t.Fatalf("faulted SubmitPacket allocates %v times per call, want 0", n)
	}
}
