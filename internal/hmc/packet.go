// Package hmc models a Hybrid Memory Cube device after the HMC 2.1
// specification at the fidelity the paper's evaluation depends on:
//
//   - the packetized FLIT interface and its control-overhead economics
//     (16 B FLITs; every transaction pays one 16 B request control FLIT and
//     one 16 B response control FLIT — paper §2.2),
//   - vault/bank parallelism with a closed-page policy, so a single
//     coalesced 256 B read opens and closes its DRAM row once where sixteen
//     16 B reads would do it sixteen times (§2.2.1),
//   - full-duplex link serialization shared by control and data, which is
//     what makes bandwidth efficiency = requested/transferred meaningful
//     (Equation 1).
//
// Timing is cycle-approximate and expressed in core clock cycles so it
// composes directly with the rest of the simulator.
package hmc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// FLIT and packet constants from the HMC 2.1 specification (§2.2).
const (
	// FlitBytes is the flow-control unit: the minimum granularity of data
	// movement on an HMC link.
	FlitBytes = 16

	// ControlBytes is the per-transaction control overhead: a 16 B request
	// control FLIT (header+tail) plus a 16 B response control FLIT.
	ControlBytes = 32

	// MinRequestBytes and MaxRequestBytes bound HMC 2.1 payload sizes.
	MinRequestBytes = 16
	MaxRequestBytes = 256
)

// DataFlits returns how many 16 B data FLITs carry a payload of the given
// size. Payloads are rounded up to FLIT granularity: a 4 B read still moves
// one 16 B FLIT.
func DataFlits(payloadBytes uint32) int {
	if payloadBytes == 0 {
		return 0
	}
	return int((payloadBytes + FlitBytes - 1) / FlitBytes)
}

// RequestFlits returns the size of the request packet in FLITs: one control
// FLIT, plus the data FLITs for writes (reads carry no data downstream).
func RequestFlits(write bool, payloadBytes uint32) int {
	if write {
		return 1 + DataFlits(payloadBytes)
	}
	return 1
}

// ResponseFlits returns the size of the response packet in FLITs: one
// control FLIT, plus the data FLITs for reads.
func ResponseFlits(write bool, payloadBytes uint32) int {
	if write {
		return 1
	}
	return 1 + DataFlits(payloadBytes)
}

// TransactionBytes returns the total bytes moved on the link for one
// transaction in both directions: request packet + response packet. For any
// FLIT-aligned payload this is payload + 32 regardless of direction.
func TransactionBytes(write bool, payloadBytes uint32) uint64 {
	return uint64(RequestFlits(write, payloadBytes)+ResponseFlits(write, payloadBytes)) * FlitBytes
}

// BandwidthEfficiency is Equation 1 of the paper for a single transaction
// that transfers a FLIT-rounded packet for `requested` useful bytes:
// requested data / transferred data. Figure 1 evaluates it at the packet
// sizes 16 B … 256 B where requested equals the packet payload.
func BandwidthEfficiency(requested uint32) float64 {
	if requested == 0 {
		return 0
	}
	return float64(requested) / float64(TransactionBytes(false, requested))
}

// ControlOverheadFraction is the complementary Figure 1 series: the share
// of the transferred bytes that is header/tail control data.
func ControlOverheadFraction(payloadBytes uint32) float64 {
	t := TransactionBytes(false, payloadBytes)
	if t == 0 {
		return 0
	}
	return float64(ControlBytes) / float64(t)
}

// ControlBytesForVolume supports Figure 2: total control bytes moved when
// `totalBytes` of data are fetched using fixed-size requests of
// `requestBytes` each. Smaller requests need more packets and therefore
// more control traffic.
func ControlBytesForVolume(totalBytes uint64, requestBytes uint32) uint64 {
	if requestBytes == 0 {
		return 0
	}
	packets := (totalBytes + uint64(requestBytes) - 1) / uint64(requestBytes)
	return packets * ControlBytes
}

// Wire codec
//
// The simulator's layers exchange Requests as Go structs, but traces and
// repro artifacts need a stable on-the-wire form, and a byte-level decoder
// is what gives the fuzzer a surface to attack. The format is a fixed
// 32-byte little-endian frame — deliberately two FLITs, echoing a
// header+tail control FLIT pair:
//
//	[0:4)   magic "HMCP"
//	[4]     version (currently 1)
//	[5]     flags: bit 0 = write; all other bits reserved, must be zero
//	[6:8)   packet payload bytes  (uint16)
//	[8:16)  physical byte address (uint64, low 52 bits significant)
//	[16:18) requested useful bytes (uint16)
//	[18:20) reserved, must be zero
//	[20:24) CRC-32 (IEEE) over bytes [0:20)
//	[24:32) zero padding, must be zero
//
// DecodePacket enforces both the framing (magic, version, CRC, reserved
// bits) and the HMC semantic rules that SubmitPacket would reject anyway
// (FLIT alignment, size bounds, block-boundary crossing, requested ≤
// packet), so a decoded packet is always submittable.

// PacketWireBytes is the size of one encoded request frame.
const PacketWireBytes = 32

// packetMagic identifies an encoded request frame.
var packetMagic = [4]byte{'H', 'M', 'C', 'P'}

// packetVersion is the current wire-format version.
const packetVersion = 1

// ErrBadPacket reports a frame DecodePacket rejected; errors.Is matches it
// for every framing and semantic failure.
var ErrBadPacket = errors.New("hmc: bad packet")

// addrBits is the significant physical address width (trace model: 52-bit
// physical addresses, paper §3.4).
const addrBits = 52

// crcHeader computes the frame checksum over the header bytes [0:20).
func crcHeader(buf []byte) uint32 {
	return crc32.ChecksumIEEE(buf[:20])
}

// EncodePacket serializes a request into its 32-byte wire frame. It
// rejects requests DecodePacket would refuse to round-trip, so every
// encoded frame decodes back to the identical Request.
func EncodePacket(req Request) ([]byte, error) {
	if err := validateWire(req); err != nil {
		return nil, err
	}
	buf := make([]byte, PacketWireBytes)
	copy(buf[0:4], packetMagic[:])
	buf[4] = packetVersion
	if req.Write {
		buf[5] = 1
	}
	binary.LittleEndian.PutUint16(buf[6:8], uint16(req.PacketBytes))
	binary.LittleEndian.PutUint64(buf[8:16], req.Addr)
	binary.LittleEndian.PutUint16(buf[16:18], uint16(req.RequestedBytes))
	binary.LittleEndian.PutUint32(buf[20:24], crcHeader(buf))
	return buf, nil
}

// DecodePacket parses and validates one 32-byte wire frame. Every reject
// wraps ErrBadPacket.
func DecodePacket(buf []byte) (Request, error) {
	var req Request
	if len(buf) != PacketWireBytes {
		return req, fmt.Errorf("%w: length %d, want %d", ErrBadPacket, len(buf), PacketWireBytes)
	}
	if [4]byte(buf[0:4]) != packetMagic {
		return req, fmt.Errorf("%w: magic %q", ErrBadPacket, buf[0:4])
	}
	if buf[4] != packetVersion {
		return req, fmt.Errorf("%w: version %d, want %d", ErrBadPacket, buf[4], packetVersion)
	}
	if buf[5]&^1 != 0 {
		return req, fmt.Errorf("%w: reserved flag bits %#x set", ErrBadPacket, buf[5]&^1)
	}
	if buf[18] != 0 || buf[19] != 0 {
		return req, fmt.Errorf("%w: reserved bytes set", ErrBadPacket)
	}
	if got, want := binary.LittleEndian.Uint32(buf[20:24]), crcHeader(buf); got != want {
		return req, fmt.Errorf("%w: CRC %#x, computed %#x", ErrBadPacket, got, want)
	}
	for _, b := range buf[24:] {
		if b != 0 {
			return req, fmt.Errorf("%w: nonzero padding", ErrBadPacket)
		}
	}
	req = Request{
		Addr:           binary.LittleEndian.Uint64(buf[8:16]),
		PacketBytes:    uint32(binary.LittleEndian.Uint16(buf[6:8])),
		RequestedBytes: uint32(binary.LittleEndian.Uint16(buf[16:18])),
		Write:          buf[5]&1 != 0,
	}
	if err := validateWire(req); err != nil {
		return Request{}, err
	}
	return req, nil
}

// validateWire applies the semantic rules shared by encode and decode: the
// same constraints SubmitPacket enforces at the default 256 B block size,
// plus the 52-bit address bound of the trace model.
func validateWire(req Request) error {
	switch {
	case req.PacketBytes < MinRequestBytes || req.PacketBytes > MaxRequestBytes:
		return fmt.Errorf("%w: packet size %d outside [%d,%d]", ErrBadPacket, req.PacketBytes, MinRequestBytes, MaxRequestBytes)
	case req.PacketBytes%FlitBytes != 0:
		return fmt.Errorf("%w: packet size %d not FLIT aligned", ErrBadPacket, req.PacketBytes)
	case req.Addr >= 1<<addrBits:
		return fmt.Errorf("%w: address %#x exceeds %d bits", ErrBadPacket, req.Addr, addrBits)
	case req.Addr/MaxRequestBytes != (req.Addr+uint64(req.PacketBytes)-1)/MaxRequestBytes:
		return fmt.Errorf("%w: request %#x+%d crosses a %d B block boundary", ErrBadPacket, req.Addr, req.PacketBytes, MaxRequestBytes)
	case req.RequestedBytes > req.PacketBytes:
		return fmt.Errorf("%w: requested bytes %d exceed packet %d", ErrBadPacket, req.RequestedBytes, req.PacketBytes)
	}
	return nil
}
