// Package hmc models a Hybrid Memory Cube device after the HMC 2.1
// specification at the fidelity the paper's evaluation depends on:
//
//   - the packetized FLIT interface and its control-overhead economics
//     (16 B FLITs; every transaction pays one 16 B request control FLIT and
//     one 16 B response control FLIT — paper §2.2),
//   - vault/bank parallelism with a closed-page policy, so a single
//     coalesced 256 B read opens and closes its DRAM row once where sixteen
//     16 B reads would do it sixteen times (§2.2.1),
//   - full-duplex link serialization shared by control and data, which is
//     what makes bandwidth efficiency = requested/transferred meaningful
//     (Equation 1).
//
// Timing is cycle-approximate and expressed in core clock cycles so it
// composes directly with the rest of the simulator.
package hmc

// FLIT and packet constants from the HMC 2.1 specification (§2.2).
const (
	// FlitBytes is the flow-control unit: the minimum granularity of data
	// movement on an HMC link.
	FlitBytes = 16

	// ControlBytes is the per-transaction control overhead: a 16 B request
	// control FLIT (header+tail) plus a 16 B response control FLIT.
	ControlBytes = 32

	// MinRequestBytes and MaxRequestBytes bound HMC 2.1 payload sizes.
	MinRequestBytes = 16
	MaxRequestBytes = 256
)

// DataFlits returns how many 16 B data FLITs carry a payload of the given
// size. Payloads are rounded up to FLIT granularity: a 4 B read still moves
// one 16 B FLIT.
func DataFlits(payloadBytes uint32) int {
	if payloadBytes == 0 {
		return 0
	}
	return int((payloadBytes + FlitBytes - 1) / FlitBytes)
}

// RequestFlits returns the size of the request packet in FLITs: one control
// FLIT, plus the data FLITs for writes (reads carry no data downstream).
func RequestFlits(write bool, payloadBytes uint32) int {
	if write {
		return 1 + DataFlits(payloadBytes)
	}
	return 1
}

// ResponseFlits returns the size of the response packet in FLITs: one
// control FLIT, plus the data FLITs for reads.
func ResponseFlits(write bool, payloadBytes uint32) int {
	if write {
		return 1
	}
	return 1 + DataFlits(payloadBytes)
}

// TransactionBytes returns the total bytes moved on the link for one
// transaction in both directions: request packet + response packet. For any
// FLIT-aligned payload this is payload + 32 regardless of direction.
func TransactionBytes(write bool, payloadBytes uint32) uint64 {
	return uint64(RequestFlits(write, payloadBytes)+ResponseFlits(write, payloadBytes)) * FlitBytes
}

// BandwidthEfficiency is Equation 1 of the paper for a single transaction
// that transfers a FLIT-rounded packet for `requested` useful bytes:
// requested data / transferred data. Figure 1 evaluates it at the packet
// sizes 16 B … 256 B where requested equals the packet payload.
func BandwidthEfficiency(requested uint32) float64 {
	if requested == 0 {
		return 0
	}
	return float64(requested) / float64(TransactionBytes(false, requested))
}

// ControlOverheadFraction is the complementary Figure 1 series: the share
// of the transferred bytes that is header/tail control data.
func ControlOverheadFraction(payloadBytes uint32) float64 {
	t := TransactionBytes(false, payloadBytes)
	if t == 0 {
		return 0
	}
	return float64(ControlBytes) / float64(t)
}

// ControlBytesForVolume supports Figure 2: total control bytes moved when
// `totalBytes` of data are fetched using fixed-size requests of
// `requestBytes` each. Smaller requests need more packets and therefore
// more control traffic.
func ControlBytesForVolume(totalBytes uint64, requestBytes uint32) uint64 {
	if requestBytes == 0 {
		return 0
	}
	packets := (totalBytes + uint64(requestBytes) - 1) / uint64(requestBytes)
	return packets * ControlBytes
}
