package hmc

import (
	"bytes"
	"errors"
	"testing"
)

// mustEncode builds a frame for the corpus, failing the fuzz setup loudly
// if the seed request itself is invalid.
func mustEncode(f *testing.F, req Request) []byte {
	f.Helper()
	buf, err := EncodePacket(req)
	if err != nil {
		f.Fatal(err)
	}
	return buf
}

// FuzzDecodePacket throws arbitrary bytes at the wire decoder. Frames are
// external input (trace files, repro artifacts): whatever arrives, the
// decoder must either return a Request that SubmitPacket would accept and
// that re-encodes to the identical frame, or reject with ErrBadPacket —
// never panic.
func FuzzDecodePacket(f *testing.F) {
	good := mustEncode(f, Request{Addr: 0x1000, PacketBytes: 64, RequestedBytes: 48})
	f.Add(good)
	f.Add(mustEncode(f, Request{Addr: 0x2300, PacketBytes: 256, RequestedBytes: 256, Write: true}))
	f.Add(mustEncode(f, Request{Addr: (1 << 52) - 16, PacketBytes: 16}))

	// Single-field corruptions of a valid frame.
	for _, mut := range []struct {
		off int
		val byte
	}{
		{0, 'X'},   // magic
		{4, 2},     // version
		{5, 0x80},  // reserved flag bit
		{6, 0xFF},  // oversized packet
		{18, 1},    // reserved byte
		{21, 0xAA}, // CRC
		{31, 7},    // padding
	} {
		bad := append([]byte(nil), good...)
		bad[mut.off] = mut.val
		f.Add(bad)
	}
	f.Add(good[:16])                               // truncated
	f.Add(append(append([]byte(nil), good...), 0)) // one byte long
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, PacketWireBytes))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodePacket(data)
		if err != nil {
			if !errors.Is(err, ErrBadPacket) {
				t.Fatalf("decode error does not wrap ErrBadPacket: %v", err)
			}
			return
		}
		// An accepted frame must satisfy the device's own submission rules…
		if req.PacketBytes < MinRequestBytes || req.PacketBytes > MaxRequestBytes ||
			req.PacketBytes%FlitBytes != 0 || req.RequestedBytes > req.PacketBytes {
			t.Fatalf("decoder accepted unsubmittable request %+v", req)
		}
		if req.Addr/MaxRequestBytes != (req.Addr+uint64(req.PacketBytes)-1)/MaxRequestBytes {
			t.Fatalf("decoder accepted block-crossing request %+v", req)
		}
		// …and round-trip bit-for-bit.
		out, err := EncodePacket(req)
		if err != nil {
			t.Fatalf("re-encode of accepted request %+v: %v", req, err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round-trip mismatch:\n in  %x\n out %x", data, out)
		}
	})
}
