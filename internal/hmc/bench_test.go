package hmc

import "testing"

// BenchmarkSubmit measures the device's busy-until request path with a
// vault-spreading address stream of mixed packet sizes.
func BenchmarkSubmit(b *testing.B) {
	d, err := NewDevice(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	sizes := []uint32{64, 128, 256, 64}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Submit(uint64(i)*4, Request{
			Addr:           uint64(i) * 256,
			PacketBytes:    sizes[i&3],
			RequestedBytes: 48,
			Write:          i&7 == 0,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
