package hmc

import (
	"math/rand"
	"strings"
	"testing"
)

func testDevice(t *testing.T) *Device {
	t.Helper()
	d, err := NewDevice(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.CapacityBytes = 0 },
		func(c *Config) { c.Vaults = 0 },
		func(c *Config) { c.BanksPerVault = -1 },
		func(c *Config) { c.Links = 0 },
		func(c *Config) { c.BlockBytes = 100 },
		func(c *Config) { c.BlockBytes = 0 },
		func(c *Config) { c.RowBytes = 128 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := NewDevice(cfg); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
}

func TestSubmitRejectsMalformedRequests(t *testing.T) {
	d := testDevice(t)
	cases := []struct {
		name string
		req  Request
	}{
		{"too small", Request{Addr: 0, PacketBytes: 8}},
		{"too big", Request{Addr: 0, PacketBytes: 512}},
		{"unaligned", Request{Addr: 0, PacketBytes: 40}},
		{"crosses block", Request{Addr: 192, PacketBytes: 128}},
		{"requested exceeds packet", Request{Addr: 0, PacketBytes: 16, RequestedBytes: 64}},
	}
	for _, c := range cases {
		if _, err := d.Submit(0, c.req); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestSubmitBasicLatency(t *testing.T) {
	d := testDevice(t)
	c := d.Config()
	done, err := d.Submit(100, Request{Addr: 0, PacketBytes: 64, RequestedBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	// request FLIT serialization + serdes + ACT + COL + burst + response
	// serialization + serdes.
	want := 100 + 1*c.TFlit + c.TSerDes +
		c.TActivate + c.TColumn + 4*c.TBurstPerFlit +
		5*c.TFlit + c.TSerDes
	if done != want {
		t.Errorf("done = %d, want %d", done, want)
	}
	s := d.Stats()
	if s.Requests != 1 || s.Reads != 1 || s.Writes != 0 {
		t.Errorf("stats counts = %+v", s)
	}
	if s.TransferredBytes != 96 { // 64 payload + 32 control
		t.Errorf("TransferredBytes = %d, want 96", s.TransferredBytes)
	}
	if s.RowActivations != 1 {
		t.Errorf("RowActivations = %d, want 1", s.RowActivations)
	}
}

func TestCoalescedBeatsScatteredOnOneBank(t *testing.T) {
	// The §2.2.1 motivating example: sixteen 16 B loads to one 256 B block
	// versus one coalesced 256 B load. The same bank is hit 16 times, so
	// the row is opened/closed 16 times and the scattered version must be
	// dramatically slower and move more bytes.
	scattered := testDevice(t)
	var lastScattered uint64
	for i := uint64(0); i < 16; i++ {
		done, err := scattered.Submit(0, Request{Addr: i * 16, PacketBytes: 16, RequestedBytes: 16})
		if err != nil {
			t.Fatal(err)
		}
		if done > lastScattered {
			lastScattered = done
		}
	}
	coalesced := testDevice(t)
	lastCoalesced, err := coalesced.Submit(0, Request{Addr: 0, PacketBytes: 256, RequestedBytes: 256})
	if err != nil {
		t.Fatal(err)
	}

	ss, cs := scattered.Stats(), coalesced.Stats()
	if ss.RowActivations != 16 || cs.RowActivations != 1 {
		t.Errorf("row activations scattered=%d coalesced=%d, want 16/1", ss.RowActivations, cs.RowActivations)
	}
	if ss.BankConflicts == 0 {
		t.Error("scattered run recorded no bank conflicts")
	}
	if ss.TransferredBytes != 768 || cs.TransferredBytes != 288 {
		t.Errorf("transferred scattered=%d coalesced=%d, want 768/288", ss.TransferredBytes, cs.TransferredBytes)
	}
	if lastCoalesced*2 > lastScattered {
		t.Errorf("coalesced latency %d not ≪ scattered %d", lastCoalesced, lastScattered)
	}
}

func TestVaultParallelism(t *testing.T) {
	// Requests to different vaults must overlap: total completion time for
	// k parallel requests should be far below k × single-request latency.
	d := testDevice(t)
	single, err := d.Submit(0, Request{Addr: 0, PacketBytes: 64, RequestedBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	d.Reset()
	c := d.Config()
	var last uint64
	const k = 16
	for i := uint64(0); i < k; i++ {
		// Stride by one block so each request lands in a different vault.
		done, err := d.Submit(0, Request{Addr: i * uint64(c.BlockBytes), PacketBytes: 64, RequestedBytes: 64})
		if err != nil {
			t.Fatal(err)
		}
		if done > last {
			last = done
		}
	}
	if got := d.Stats().BankConflicts; got != 0 {
		t.Errorf("cross-vault run has %d bank conflicts, want 0", got)
	}
	if last > single*3 {
		t.Errorf("parallel completion %d vs single %d: no overlap", last, single)
	}
}

func TestSameBankConflictsSerialize(t *testing.T) {
	d := testDevice(t)
	c := d.Config()
	// Same vault and same bank: stride by Vaults×Banks blocks.
	stride := uint64(c.BlockBytes) * uint64(c.Vaults) * uint64(c.BanksPerVault)
	var prev uint64
	for i := uint64(0); i < 4; i++ {
		done, err := d.Submit(0, Request{Addr: i * stride, PacketBytes: 64, RequestedBytes: 64})
		if err != nil {
			t.Fatal(err)
		}
		if done <= prev {
			t.Errorf("request %d completed at %d, not after previous %d", i, done, prev)
		}
		prev = done
	}
	if got := d.Stats().BankConflicts; got != 3 {
		t.Errorf("BankConflicts = %d, want 3", got)
	}
}

func TestWriteAccounting(t *testing.T) {
	d := testDevice(t)
	if _, err := d.Submit(0, Request{Addr: 0, PacketBytes: 128, RequestedBytes: 100, Write: true}); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Writes != 1 || s.Reads != 0 {
		t.Errorf("writes/reads = %d/%d", s.Writes, s.Reads)
	}
	if s.TransferredBytes != 160 { // 128 payload + 32 control
		t.Errorf("TransferredBytes = %d, want 160", s.TransferredBytes)
	}
	if s.ControlBytes() != 32 {
		t.Errorf("ControlBytes = %d, want 32", s.ControlBytes())
	}
	eff := s.BandwidthEfficiency()
	if want := 100.0 / 160.0; eff != want {
		t.Errorf("BandwidthEfficiency = %v, want %v", eff, want)
	}
}

func TestSizeHistogram(t *testing.T) {
	d := testDevice(t)
	sizes := []uint32{16, 16, 64, 128, 256, 256, 256}
	for i, sz := range sizes {
		if _, err := d.Submit(uint64(i), Request{Addr: uint64(i) * 256, PacketBytes: sz, RequestedBytes: sz}); err != nil {
			t.Fatal(err)
		}
	}
	h := d.Stats().SizeHist
	if h[16] != 2 || h[64] != 1 || h[128] != 1 || h[256] != 3 {
		t.Errorf("histogram = %v", h)
	}
}

func TestSizeHistSorted(t *testing.T) {
	d := testDevice(t)
	sizes := []uint32{256, 16, 128, 256, 16, 64, 16}
	for i, sz := range sizes {
		if _, err := d.Submit(uint64(i), Request{Addr: uint64(i) * 256, PacketBytes: sz, RequestedBytes: sz}); err != nil {
			t.Fatal(err)
		}
	}
	got := d.Stats().SizeHistSorted()
	want := []SizeCount{{16, 3}, {64, 1}, {128, 1}, {256, 2}}
	if len(got) != len(want) {
		t.Fatalf("SizeHistSorted = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("SizeHistSorted[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestResetClearsState(t *testing.T) {
	d := testDevice(t)
	if _, err := d.Submit(0, Request{Addr: 0, PacketBytes: 64, RequestedBytes: 64}); err != nil {
		t.Fatal(err)
	}
	d.Reset()
	s := d.Stats()
	if s.Requests != 0 || s.TransferredBytes != 0 || len(s.SizeHist) != 0 {
		t.Errorf("stats not cleared: %+v", s)
	}
	// After reset the device must behave as new: identical latency.
	d2 := testDevice(t)
	a, _ := d.Submit(0, Request{Addr: 0, PacketBytes: 64, RequestedBytes: 64})
	b, _ := d2.Submit(0, Request{Addr: 0, PacketBytes: 64, RequestedBytes: 64})
	if a != b {
		t.Errorf("post-reset latency %d != fresh %d", a, b)
	}
}

func TestAddressWrapsCapacity(t *testing.T) {
	d := testDevice(t)
	huge := d.Config().CapacityBytes*3 + 512
	if _, err := d.Submit(0, Request{Addr: huge, PacketBytes: 64, RequestedBytes: 64}); err != nil {
		t.Errorf("address beyond capacity rejected: %v", err)
	}
}

func TestStatsCopyIsolated(t *testing.T) {
	d := testDevice(t)
	if _, err := d.Submit(0, Request{Addr: 0, PacketBytes: 64, RequestedBytes: 64}); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	s.SizeHist[64] = 999
	if d.Stats().SizeHist[64] != 1 {
		t.Error("Stats() histogram aliases device state")
	}
}

func TestBlockBoundaryErrorMessage(t *testing.T) {
	d := testDevice(t)
	_, err := d.Submit(0, Request{Addr: 192, PacketBytes: 128})
	if err == nil || !strings.Contains(err.Error(), "block boundary") {
		t.Errorf("err = %v, want block boundary error", err)
	}
}

func TestRandomTrafficInvariants(t *testing.T) {
	d := testDevice(t)
	rng := rand.New(rand.NewSource(5))
	var tick uint64
	for i := 0; i < 2000; i++ {
		sz := uint32(16 * (1 + rng.Intn(16)))
		block := rng.Uint64() % (1 << 22)
		off := uint64(0)
		if sz < 256 {
			off = uint64(rng.Intn(int(256-sz)/16)) * 16
		}
		req := Request{
			Addr:           block*256 + off,
			PacketBytes:    sz,
			RequestedBytes: sz - uint32(rng.Intn(int(sz))),
			Write:          rng.Intn(2) == 0,
		}
		done, err := d.Submit(tick, req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if done <= tick {
			t.Fatalf("request %d: done %d not after submit %d", i, done, tick)
		}
		tick += uint64(rng.Intn(20))
	}
	s := d.Stats()
	if s.Requests != 2000 {
		t.Fatalf("Requests = %d", s.Requests)
	}
	if s.RequestedBytes > s.PacketBytes {
		t.Fatal("requested exceeds packet bytes")
	}
	if s.TransferredBytes != s.PacketBytes+s.Requests*ControlBytes {
		t.Fatalf("transferred %d != payload %d + control %d",
			s.TransferredBytes, s.PacketBytes, s.Requests*ControlBytes)
	}
	if eff := s.BandwidthEfficiency(); eff <= 0 || eff >= 1 {
		t.Fatalf("BandwidthEfficiency = %v out of (0,1)", eff)
	}
}

func TestOpenPageRowHits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OpenPage = true
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Four 64 B requests within one 256 B block: first opens the row, the
	// rest are row hits.
	var last uint64
	for i := uint64(0); i < 4; i++ {
		done, err := d.Submit(0, Request{Addr: i * 64, PacketBytes: 64, RequestedBytes: 64})
		if err != nil {
			t.Fatal(err)
		}
		last = done
	}
	s := d.Stats()
	if s.RowActivations != 1 || s.RowHits != 3 {
		t.Fatalf("activations/hits = %d/%d, want 1/3", s.RowActivations, s.RowHits)
	}
	// The same traffic under closed page reopens the row every time and
	// finishes later.
	closed := testDevice(t)
	var lastClosed uint64
	for i := uint64(0); i < 4; i++ {
		done, err := closed.Submit(0, Request{Addr: i * 64, PacketBytes: 64, RequestedBytes: 64})
		if err != nil {
			t.Fatal(err)
		}
		lastClosed = done
	}
	if closed.Stats().RowActivations != 4 {
		t.Fatalf("closed-page activations = %d, want 4", closed.Stats().RowActivations)
	}
	if last >= lastClosed {
		t.Errorf("open page (%d) not faster than closed page (%d)", last, lastClosed)
	}
}

func TestOpenPageRowConflict(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OpenPage = true
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two requests to the same bank but different rows: second pays
	// precharge + activate.
	rowStride := uint64(cfg.RowBytes) * uint64(cfg.Vaults) * uint64(cfg.BanksPerVault)
	if _, err := d.Submit(0, Request{Addr: 0, PacketBytes: 64, RequestedBytes: 64}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(1<<20, Request{Addr: rowStride, PacketBytes: 64, RequestedBytes: 64}); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.RowActivations != 2 || s.RowHits != 0 {
		t.Fatalf("activations/hits = %d/%d, want 2/0", s.RowActivations, s.RowHits)
	}
}

func TestClosedPageNeverCountsRowHits(t *testing.T) {
	d := testDevice(t)
	for i := uint64(0); i < 4; i++ {
		if _, err := d.Submit(0, Request{Addr: i * 64, PacketBytes: 64, RequestedBytes: 64}); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Stats().RowHits; got != 0 {
		t.Fatalf("closed page RowHits = %d", got)
	}
}

func TestVaultAccountingAndImbalance(t *testing.T) {
	d := testDevice(t)
	// All traffic to one vault.
	stride := uint64(d.Config().BlockBytes) * uint64(d.Config().Vaults)
	for i := uint64(0); i < 8; i++ {
		if _, err := d.Submit(0, Request{Addr: i * stride, PacketBytes: 64, RequestedBytes: 64}); err != nil {
			t.Fatal(err)
		}
	}
	s := d.Stats()
	if s.VaultRequests[0] != 8 {
		t.Errorf("vault 0 requests = %d, want 8", s.VaultRequests[0])
	}
	if got := s.VaultImbalance(); got != float64(d.Config().Vaults) {
		t.Errorf("VaultImbalance = %v, want %d (all in one vault)", got, d.Config().Vaults)
	}
	// Spread traffic: one request per vault.
	d.Reset()
	for i := uint64(0); i < uint64(d.Config().Vaults); i++ {
		if _, err := d.Submit(0, Request{Addr: i * uint64(d.Config().BlockBytes), PacketBytes: 64, RequestedBytes: 64}); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Stats().VaultImbalance(); got != 1 {
		t.Errorf("even spread VaultImbalance = %v, want 1", got)
	}
}

func TestLinkTokenFlowControl(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LinkTokens = 1 // one outstanding transaction per link
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 8 simultaneous requests over 4 links with 1 token each: the second
	// wave must wait for tokens, so completion times split into two groups
	// and TokenWait is charged.
	var dones []uint64
	for i := uint64(0); i < 8; i++ {
		done, err := d.Submit(0, Request{Addr: i * 256, PacketBytes: 64, RequestedBytes: 64})
		if err != nil {
			t.Fatal(err)
		}
		dones = append(dones, done)
	}
	s := d.Stats()
	if s.TokenWait == 0 {
		t.Fatal("no token wait recorded despite 2× oversubscription")
	}
	if dones[7] <= dones[3] {
		t.Errorf("second wave (%d) not after first (%d)", dones[7], dones[3])
	}
	// Unlimited tokens: same traffic, no token wait.
	free := testDevice(t)
	for i := uint64(0); i < 8; i++ {
		if _, err := free.Submit(0, Request{Addr: i * 256, PacketBytes: 64, RequestedBytes: 64}); err != nil {
			t.Fatal(err)
		}
	}
	if free.Stats().TokenWait != 0 {
		t.Error("token wait recorded with flow control disabled")
	}
}
