package hmc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDataFlits(t *testing.T) {
	cases := []struct {
		payload uint32
		want    int
	}{
		{0, 0}, {1, 1}, {4, 1}, {16, 1}, {17, 2}, {32, 2}, {64, 4}, {128, 8}, {256, 16},
	}
	for _, c := range cases {
		if got := DataFlits(c.payload); got != c.want {
			t.Errorf("DataFlits(%d) = %d, want %d", c.payload, got, c.want)
		}
	}
}

func TestPacketFlitCounts(t *testing.T) {
	// §2.2: a read request is a single control FLIT; its response is
	// control + data. Writes mirror that.
	if got := RequestFlits(false, 256); got != 1 {
		t.Errorf("read request = %d FLITs, want 1", got)
	}
	if got := ResponseFlits(false, 256); got != 17 {
		t.Errorf("256B read response = %d FLITs, want 17", got)
	}
	if got := RequestFlits(true, 256); got != 17 {
		t.Errorf("256B write request = %d FLITs, want 17", got)
	}
	if got := ResponseFlits(true, 256); got != 1 {
		t.Errorf("write response = %d FLITs, want 1", got)
	}
}

func TestTransactionBytesPaperExample(t *testing.T) {
	// §2.2.2: sixteen 16 B loads move 768 B total (512 B control);
	// one 256 B load moves 288 B (32 B control).
	var total uint64
	for i := 0; i < 16; i++ {
		total += TransactionBytes(false, 16)
	}
	if total != 768 {
		t.Errorf("16×16B loads move %d B, want 768", total)
	}
	if got := TransactionBytes(false, 256); got != 288 {
		t.Errorf("256B load moves %d B, want 288", got)
	}
}

func TestTransactionBytesDirectionInvariant(t *testing.T) {
	f := func(raw uint32) bool {
		payload := raw%16 + 1
		payload *= 16 // FLIT-aligned 16..256
		return TransactionBytes(true, payload) == TransactionBytes(false, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBandwidthEfficiencyFigure1(t *testing.T) {
	// Figure 1 endpoints: 33.33% at 16 B rising to 88.89% at 256 B, with
	// control overhead falling 66.67% → 11.11%.
	cases := []struct {
		size     uint32
		eff, ctl float64
	}{
		{16, 1.0 / 3, 2.0 / 3},
		{32, 0.5, 0.5},
		{64, 2.0 / 3, 1.0 / 3},
		{128, 0.8, 0.2},
		{256, 8.0 / 9, 1.0 / 9},
	}
	for _, c := range cases {
		if got := BandwidthEfficiency(c.size); math.Abs(got-c.eff) > 1e-9 {
			t.Errorf("BandwidthEfficiency(%d) = %.4f, want %.4f", c.size, got, c.eff)
		}
		if got := ControlOverheadFraction(c.size); math.Abs(got-c.ctl) > 1e-9 {
			t.Errorf("ControlOverheadFraction(%d) = %.4f, want %.4f", c.size, got, c.ctl)
		}
	}
	// The two Figure 1 series sum to 1 for exact-fit payloads.
	for _, size := range []uint32{16, 32, 48, 64, 128, 240, 256} {
		sum := BandwidthEfficiency(size) + ControlOverheadFraction(size)
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("series at %d B sum to %.4f, want 1", size, sum)
		}
	}
}

func TestCoalescingImprovementHeadline(t *testing.T) {
	// §2.2.2: 2.67× bandwidth-efficiency improvement and 15× control
	// reduction going from 16×16 B to 1×256 B.
	gain := BandwidthEfficiency(256) / BandwidthEfficiency(16)
	if math.Abs(gain-8.0/3) > 1e-9 {
		t.Errorf("efficiency gain = %.3f, want 2.667", gain)
	}
	ctlSmall := ControlBytesForVolume(256, 16)
	ctlBig := ControlBytesForVolume(256, 256)
	if ctlSmall/ctlBig != 16 {
		t.Errorf("control reduction = %d×, want 16 (512 B → 32 B)", ctlSmall/ctlBig)
	}
	if ctlSmall-ctlBig != 480 {
		t.Errorf("control saved = %d B, want 480", ctlSmall-ctlBig)
	}
}

func TestControlBytesForVolumeFigure2(t *testing.T) {
	// Figure 2: for a fixed data volume, control traffic scales inversely
	// with request size.
	const volume = 1 << 20
	prev := uint64(math.MaxUint64)
	for _, size := range []uint32{16, 32, 64, 128, 256} {
		got := ControlBytesForVolume(volume, size)
		want := uint64(volume/uint64(size)) * ControlBytes
		if got != want {
			t.Errorf("ControlBytesForVolume(1MiB, %d) = %d, want %d", size, got, want)
		}
		if got >= prev {
			t.Errorf("control bytes not decreasing at size %d", size)
		}
		prev = got
	}
	if got := ControlBytesForVolume(100, 64); got != 2*ControlBytes {
		t.Errorf("partial packet rounding: got %d, want %d", got, 2*ControlBytes)
	}
	if got := ControlBytesForVolume(100, 0); got != 0 {
		t.Errorf("zero request size: got %d, want 0", got)
	}
}

func TestBandwidthEfficiencyZero(t *testing.T) {
	if got := BandwidthEfficiency(0); got != 0 {
		t.Errorf("BandwidthEfficiency(0) = %v, want 0", got)
	}
}

func TestBandwidthEfficiencyMonotone(t *testing.T) {
	prev := 0.0
	for size := uint32(16); size <= 256; size += 16 {
		got := BandwidthEfficiency(size)
		if got <= prev {
			t.Errorf("efficiency not increasing at %d B", size)
		}
		prev = got
	}
}
