package hmc

import "fmt"

// DeviceState is an opaque deep copy of a Device's mutable state: bank and
// link horizons, flow-control tokens, the packet serial counter that keys
// fault injection, and every statistics counter. Snapshot produces one and
// Restore replays it into a device of identical geometry, after which the
// device behaves byte-identically to the one that was snapshotted — the
// fault injector is stateless, so restoring the serial counter restores the
// exact fault sequence too.
type DeviceState struct {
	banks    []bankState
	links    []duplexState
	next     int
	sizeHist []uint64
	stats    Stats
	serial   uint64

	consecErr  []int
	linkFaults []LinkFaultStats

	chkIssuedB     uint64
	chkDeliveredB  uint64
	chkPoisonedB   uint64
	chkDroppedB    uint64
	chkStarvedPkts uint64
}

// duplexState is one link's captured horizon and token-release times.
type duplexState struct {
	in, out uint64
	tokens  []uint64
}

// Snapshot deep-copies the device's mutable state. The device may keep
// running afterwards; the snapshot never aliases live storage.
func (d *Device) Snapshot() *DeviceState {
	st := &DeviceState{
		banks:          append([]bankState(nil), d.banks...),
		next:           d.next,
		sizeHist:       append([]uint64(nil), d.sizeHist...),
		stats:          d.stats,
		serial:         d.serial,
		chkIssuedB:     d.chkIssuedB,
		chkDeliveredB:  d.chkDeliveredB,
		chkPoisonedB:   d.chkPoisonedB,
		chkDroppedB:    d.chkDroppedB,
		chkStarvedPkts: d.chkStarvedPkts,
	}
	st.stats.VaultRequests = append([]uint64(nil), d.stats.VaultRequests...)
	st.links = make([]duplexState, len(d.links))
	for i := range d.links {
		st.links[i] = duplexState{
			in:     d.links[i].in,
			out:    d.links[i].out,
			tokens: append([]uint64(nil), d.links[i].tokens...),
		}
	}
	if d.consecErr != nil {
		st.consecErr = append([]int(nil), d.consecErr...)
	}
	if d.linkFaults != nil {
		st.linkFaults = append([]LinkFaultStats(nil), d.linkFaults...)
	}
	return st
}

// Restore replays a snapshot into the device. The device must have been
// built from the same configuration (geometry, link count, fault setup) as
// the one that produced the snapshot; a mismatch is reported, not patched.
func (d *Device) Restore(st *DeviceState) error {
	switch {
	case len(st.banks) != len(d.banks):
		return fmt.Errorf("hmc: snapshot has %d banks, device %d", len(st.banks), len(d.banks))
	case len(st.links) != len(d.links):
		return fmt.Errorf("hmc: snapshot has %d links, device %d", len(st.links), len(d.links))
	case len(st.sizeHist) != len(d.sizeHist):
		return fmt.Errorf("hmc: snapshot block size differs (%d vs %d histogram buckets)", len(st.sizeHist), len(d.sizeHist))
	case (st.consecErr != nil) != (d.consecErr != nil):
		return fmt.Errorf("hmc: snapshot and device disagree on fault injection")
	}
	for i := range st.links {
		if len(st.links[i].tokens) != len(d.links[i].tokens) {
			return fmt.Errorf("hmc: snapshot link %d has %d tokens, device %d",
				i, len(st.links[i].tokens), len(d.links[i].tokens))
		}
	}
	copy(d.banks, st.banks)
	for i := range st.links {
		d.links[i].in = st.links[i].in
		d.links[i].out = st.links[i].out
		copy(d.links[i].tokens, st.links[i].tokens)
	}
	d.next = st.next
	copy(d.sizeHist, st.sizeHist)
	vaults := d.stats.VaultRequests
	d.stats = st.stats
	d.stats.VaultRequests = vaults
	copy(d.stats.VaultRequests, st.stats.VaultRequests)
	d.serial = st.serial
	copy(d.consecErr, st.consecErr)
	copy(d.linkFaults, st.linkFaults)
	d.chkIssuedB = st.chkIssuedB
	d.chkDeliveredB = st.chkDeliveredB
	d.chkPoisonedB = st.chkPoisonedB
	d.chkDroppedB = st.chkDroppedB
	d.chkStarvedPkts = st.chkStarvedPkts
	return nil
}
