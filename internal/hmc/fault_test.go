package hmc

import (
	"reflect"
	"strings"
	"testing"

	"hmccoal/internal/fault"
)

// submitN drives n sequential 64 B reads through the device, returning the
// completions.
func submitN(t *testing.T, d *Device, n int) []Completion {
	t.Helper()
	out := make([]Completion, n)
	for i := 0; i < n; i++ {
		comp, err := d.SubmitPacket(0, Request{Addr: uint64(i) * 256, PacketBytes: 64, RequestedBytes: 64})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = comp
	}
	return out
}

// TestNoFaultMatchesLegacySubmit pins that with injection disabled,
// SubmitPacket is exactly the old Submit: same ticks, same stats, no fault
// flags. This is the "faults disabled must be provably free" contract at
// the device layer.
func TestNoFaultMatchesLegacySubmit(t *testing.T) {
	a, err := NewDevice(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDevice(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		req := Request{Addr: uint64(i*37) * 64, PacketBytes: 64, RequestedBytes: 48, Write: i%3 == 0}
		done, err := a.Submit(uint64(i), req)
		if err != nil {
			t.Fatal(err)
		}
		comp, err := b.SubmitPacket(uint64(i), req)
		if err != nil {
			t.Fatal(err)
		}
		if comp.Done != done || comp.Poisoned || comp.Dropped || comp.Retries != 0 {
			t.Fatalf("request %d: SubmitPacket %+v deviates from Submit tick %d", i, comp, done)
		}
	}
	sa, sb := a.Stats(), b.Stats()
	if sa.TransferredBytes != sb.TransferredBytes || sa.LastDone != sb.LastDone {
		t.Fatalf("stats deviate: %+v vs %+v", sa, sb)
	}
	if sb.LinkFaults != nil {
		t.Fatal("no-fault device materialized per-link fault stats")
	}
}

// TestFaultsDeterministic: two devices with the same fault seed observe
// byte-identical faults, completions and counters.
func TestFaultsDeterministic(t *testing.T) {
	mk := func() *Device {
		cfg := DefaultConfig()
		cfg.Fault = fault.Config{Seed: 11, BER: 2e-4, DropRate: 1e-3}
		d, err := NewDevice(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a, b := mk(), mk()
	ca, cb := submitN(t, a, 2000), submitN(t, b, 2000)
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("completion %d differs: %+v vs %+v", i, ca[i], cb[i])
		}
	}
	sa, sb := a.Stats(), b.Stats()
	if sa.Retries != sb.Retries || sa.PoisonedResponses != sb.PoisonedResponses ||
		sa.DroppedResponses != sb.DroppedResponses || sa.RetrainEvents != sb.RetrainEvents {
		t.Fatalf("fault counters differ: %+v vs %+v", sa, sb)
	}
	if sa.Retries == 0 && sa.DroppedResponses == 0 {
		t.Fatal("BER 2e-4 injected no faults over 2000 packets; test is vacuous")
	}
	if a.DebugLinks() != b.DebugLinks() {
		t.Fatalf("link debug state differs:\n%s\n%s", a.DebugLinks(), b.DebugLinks())
	}
}

// TestRetryAddsLatencyAndBytes: a run under injected CRC errors finishes
// no earlier than a clean run and moves strictly more link bytes.
func TestRetryAddsLatencyAndBytes(t *testing.T) {
	clean, err := NewDevice(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Fault = fault.Config{Seed: 5, BER: 1e-3}
	faulty, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	submitN(t, clean, 1000)
	submitN(t, faulty, 1000)
	sc, sf := clean.Stats(), faulty.Stats()
	if sf.Retries == 0 {
		t.Fatal("BER 1e-3 produced no retries over 1000 packets")
	}
	if sf.LastDone < sc.LastDone {
		t.Fatalf("faulty run finished at %d, before the clean run's %d", sf.LastDone, sc.LastDone)
	}
	if sf.TransferredBytes <= sc.TransferredBytes {
		t.Fatalf("retransmissions moved no extra bytes: %d vs clean %d", sf.TransferredBytes, sc.TransferredBytes)
	}
	if sf.RetransmittedBytes == 0 {
		t.Fatal("RetransmittedBytes not accounted")
	}
	if sf.BandwidthEfficiency() >= sc.BandwidthEfficiency() {
		t.Fatalf("efficiency did not degrade under faults: %.4f vs %.4f",
			sf.BandwidthEfficiency(), sc.BandwidthEfficiency())
	}
}

// TestPoisonOnRetryExhaustion: BER 1 corrupts every transmission, so every
// packet exhausts MaxRetries on its request leg and comes back poisoned —
// and the constant error stream forces link retraining.
func TestPoisonOnRetryExhaustion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fault = fault.Config{Seed: 1, BER: 1, MaxRetries: 2}
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	comps := submitN(t, d, 40)
	for i, comp := range comps {
		if !comp.Poisoned {
			t.Fatalf("packet %d not poisoned under BER=1", i)
		}
		if comp.Done == NeverTick {
			t.Fatalf("poisoned packet %d has no completion tick", i)
		}
		if comp.Retries != 2 {
			t.Fatalf("packet %d: %d retries, want MaxRetries=2", i, comp.Retries)
		}
	}
	s := d.Stats()
	if s.PoisonedResponses != 40 {
		t.Fatalf("PoisonedResponses = %d, want 40", s.PoisonedResponses)
	}
	if s.Retries != 80 {
		t.Fatalf("Retries = %d, want 80", s.Retries)
	}
	if s.RetrainEvents == 0 {
		t.Fatal("constant errors never retrained the links")
	}
	// Poisoned reads delivered no data: nothing may count as useful bytes.
	if s.RequestedBytes != 0 || s.PacketBytes != 0 {
		t.Fatalf("poisoned responses credited data: requested=%d packet=%d", s.RequestedBytes, s.PacketBytes)
	}
	// No vault ever saw a request-leg-poisoned packet.
	for v, n := range s.VaultRequests {
		if n != 0 {
			t.Fatalf("vault %d serviced %d poisoned-request packets", v, n)
		}
	}
	if !strings.Contains(d.DebugLinks(), "poisoned=10") {
		t.Errorf("DebugLinks does not show per-link poison counts: %s", d.DebugLinks())
	}
}

// TestDroppedResponse: DropRate 1 makes every response vanish. The
// completion must be NeverTick + Dropped, with counters to match.
func TestDroppedResponse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fault = fault.Config{Seed: 3, DropRate: 1}
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	comps := submitN(t, d, 20)
	for i, comp := range comps {
		if !comp.Dropped || comp.Done != NeverTick {
			t.Fatalf("packet %d: %+v, want Dropped at NeverTick", i, comp)
		}
	}
	s := d.Stats()
	if s.DroppedResponses != 20 {
		t.Fatalf("DroppedResponses = %d, want 20", s.DroppedResponses)
	}
	if s.LastDone != 0 {
		t.Fatalf("a dropped response advanced LastDone to %d", s.LastDone)
	}
}

// TestResetClearsFaultState: after Reset the device replays the identical
// fault sequence — serials restart at zero.
func TestResetClearsFaultState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fault = fault.Config{Seed: 7, BER: 5e-4, DropRate: 1e-3}
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := submitN(t, d, 500)
	d.Reset()
	second := submitN(t, d, 500)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at packet %d: %+v vs %+v", i, first[i], second[i])
		}
	}
}

func TestValidateRejectsBadFaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fault.BER = 2
	if _, err := NewDevice(cfg); err == nil {
		t.Fatal("NewDevice accepted BER=2")
	}
	cfg = DefaultConfig()
	cfg.Fault.DropRate = -0.5
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted a negative drop rate")
	}
}

// TestResetAfterFaultsMatchesFresh is the reset-after-faults round trip: a
// device that has taken fault-injected traffic (retries, retrains, poison,
// drops, retry-buffer churn) must, after Reset, be indistinguishable from a
// freshly built device — identical Stats, identical link debug state, and
// an identical fault sequence on replay (the packet serial that keys the
// injector restarts from zero).
func TestResetAfterFaultsMatchesFresh(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fault = fault.Config{Seed: 9, BER: 1e-4, DropRate: 1e-4, MaxRetries: 2}
	used, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pre := submitN(t, used, 3000)
	var faulty bool
	for _, c := range pre {
		if c.Retries > 0 || c.Poisoned || c.Dropped {
			faulty = true
		}
	}
	if !faulty {
		t.Fatal("fault profile injected nothing; raise the rates")
	}

	used.Reset()
	fresh, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := used.Stats(), fresh.Stats(); !reflect.DeepEqual(got, want) {
		t.Errorf("reset device stats differ from fresh:\n%+v\nvs\n%+v", got, want)
	}
	if got, want := used.DebugLinks(), fresh.DebugLinks(); got != want {
		t.Errorf("reset link state differs from fresh:\n%s\nvs\n%s", got, want)
	}

	// Replay: the reset device must produce the exact fault sequence of the
	// fresh one — completion ticks, retries, poison and drops included.
	a, b := submitN(t, used, 3000), submitN(t, fresh, 3000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("completion %d diverges after reset: %+v vs %+v", i, a[i], b[i])
		}
	}
	if got, want := used.Stats(), fresh.Stats(); !reflect.DeepEqual(got, want) {
		t.Errorf("post-replay stats diverge:\n%+v\nvs\n%+v", got, want)
	}
}
