package hmc

import (
	"fmt"
	"sort"
)

// Config describes the simulated device geometry and timing. All timing
// parameters are in core clock cycles (3.3 GHz in the paper's setup).
type Config struct {
	// CapacityBytes is the total device capacity (paper: 8 GB).
	CapacityBytes uint64
	// Vaults is the number of independent vaults (HMC 2.1: 32).
	Vaults int
	// BanksPerVault is the number of DRAM banks per vault (HMC 2.1: 16).
	BanksPerVault int
	// BlockBytes is the vault interleave granularity and the maximum
	// request size (paper: 256 B-block addressing).
	BlockBytes uint32
	// RowBytes is the DRAM row (page) size within a bank.
	RowBytes uint32
	// Links is the number of full-duplex serial links (HMC 2.1: 4).
	Links int

	// TActivate, TColumn, TPrecharge are the DRAM row activate, column
	// access and precharge times.
	TActivate, TColumn, TPrecharge uint64
	// TBurstPerFlit is the vault-internal (TSV) transfer time per data FLIT.
	TBurstPerFlit uint64
	// TFlit is the link serialization time per FLIT.
	TFlit uint64
	// TSerDes is the fixed one-way link latency (serialization/deserialization).
	TSerDes uint64

	// OpenPage keeps DRAM rows open between accesses instead of the HMC's
	// closed-page policy (§2.2.1). With it, back-to-back requests to the
	// same row skip the activate; a row conflict pays precharge + activate.
	// Provided as an ablation of the paper's closed-page assumption.
	OpenPage bool

	// LinkTokens models the HMC's token-based link-level flow control: at
	// most this many transactions may be outstanding per link; a request
	// arriving with no token waits for one to return. 0 disables the limit
	// (the paper's evaluation never saturates it).
	LinkTokens int
}

// DefaultConfig returns the 8 GB HMC 2.1-like configuration used by the
// paper's evaluation, with timing at a 3.3 GHz core clock.
func DefaultConfig() Config {
	return Config{
		CapacityBytes: 8 << 30,
		Vaults:        32,
		BanksPerVault: 16,
		BlockBytes:    256,
		RowBytes:      2048,
		Links:         4,
		TActivate:     45, // ≈13.6 ns
		TColumn:       45, // ≈13.6 ns
		TPrecharge:    45, // ≈13.6 ns
		TBurstPerFlit: 5,  // ≈1.5 ns per 16 B over the TSVs
		TFlit:         1,  // ≈0.3 ns per 16 B per link (≈53 GB/s/link)
		TSerDes:       12, // ≈3.6 ns each way
	}
}

func (c Config) validate() error {
	switch {
	case c.CapacityBytes == 0:
		return fmt.Errorf("hmc: zero capacity")
	case c.Vaults <= 0 || c.BanksPerVault <= 0 || c.Links <= 0:
		return fmt.Errorf("hmc: non-positive geometry %+v", c)
	case c.BlockBytes == 0 || c.BlockBytes&(c.BlockBytes-1) != 0:
		return fmt.Errorf("hmc: block size %d not a power of two", c.BlockBytes)
	case c.RowBytes < c.BlockBytes:
		return fmt.Errorf("hmc: row size %d below block size %d", c.RowBytes, c.BlockBytes)
	}
	return nil
}

// Request is one packetized HMC transaction.
type Request struct {
	// Addr is the physical byte address of the first byte.
	Addr uint64
	// PacketBytes is the FLIT-aligned packet payload size (16–256 B).
	PacketBytes uint32
	// RequestedBytes is the useful data inside the packet — the sum of the
	// original payload sizes that were coalesced into it. It never exceeds
	// PacketBytes and drives the Equation-1 bandwidth-efficiency stats.
	RequestedBytes uint32
	// Write distinguishes WR from RD packets.
	Write bool
}

// Device is the simulated HMC. It is not safe for concurrent use; the
// simulator owns it from a single goroutine.
type Device struct {
	cfg   Config
	banks []bankState // flat [vault*BanksPerVault+bank]
	links []duplex    // per-link ingress/egress busy-until
	next  int         // round-robin link cursor
	// sizeHist counts requests per packet size, indexed by size/FlitBytes;
	// Stats materializes it into the exported map form on demand.
	sizeHist []uint64
	stats    Stats
}

type bankState struct {
	busyUntil uint64
	openRow   uint64
	rowValid  bool
}

type duplex struct {
	in, out uint64
	// tokens holds, when flow control is enabled, the release time of each
	// link token (the completion tick of the transaction holding it).
	tokens []uint64
}

// NewDevice builds a Device from a fully specified cfg. Start from
// DefaultConfig and adjust fields as needed.
func NewDevice(cfg Config) (*Device, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &Device{cfg: cfg}
	d.banks = make([]bankState, cfg.Vaults*cfg.BanksPerVault)
	d.links = make([]duplex, cfg.Links)
	if cfg.LinkTokens > 0 {
		for i := range d.links {
			d.links[i].tokens = make([]uint64, cfg.LinkTokens)
		}
	}
	d.sizeHist = make([]uint64, cfg.BlockBytes/FlitBytes+1)
	d.stats.VaultRequests = make([]uint64, cfg.Vaults)
	return d, nil
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// vaultOf maps an address to its vault by low-order block interleaving.
func (d *Device) vaultOf(addr uint64) int {
	return int(addr / uint64(d.cfg.BlockBytes) % uint64(d.cfg.Vaults))
}

// bankOf maps an address to a bank within its vault.
func (d *Device) bankOf(addr uint64) int {
	return int(addr / uint64(d.cfg.BlockBytes) / uint64(d.cfg.Vaults) % uint64(d.cfg.BanksPerVault))
}

// rowOf maps an address to its DRAM row within the bank.
func (d *Device) rowOf(addr uint64) uint64 {
	bankOffset := addr / uint64(d.cfg.BlockBytes) / uint64(d.cfg.Vaults) / uint64(d.cfg.BanksPerVault)
	return bankOffset / uint64(d.cfg.RowBytes/d.cfg.BlockBytes)
}

// Submit presents a request to the device at the given arrival tick and
// returns the tick at which the response has been fully received by the
// host. Requests must respect the packet interface: FLIT-aligned payload in
// [16, BlockBytes] that does not cross a block boundary.
//
// The model is busy-until based: each bank and each link direction is a
// resource with a scalar horizon. Closed-page policy: every request pays
// activate + column + burst and leaves the bank busy through precharge, so
// k small requests to one block cost k row activations where one coalesced
// request costs one — the effect motivating the paper.
func (d *Device) Submit(tick uint64, req Request) (uint64, error) {
	c := &d.cfg
	if req.PacketBytes < MinRequestBytes || req.PacketBytes > c.BlockBytes {
		return 0, fmt.Errorf("hmc: packet size %d outside [%d,%d]", req.PacketBytes, MinRequestBytes, c.BlockBytes)
	}
	if req.PacketBytes%FlitBytes != 0 {
		return 0, fmt.Errorf("hmc: packet size %d not FLIT aligned", req.PacketBytes)
	}
	if req.Addr/uint64(c.BlockBytes) != (req.Addr+uint64(req.PacketBytes)-1)/uint64(c.BlockBytes) {
		return 0, fmt.Errorf("hmc: request %#x+%d crosses a %d B block boundary", req.Addr, req.PacketBytes, c.BlockBytes)
	}
	if req.RequestedBytes > req.PacketBytes {
		return 0, fmt.Errorf("hmc: requested bytes %d exceed packet %d", req.RequestedBytes, req.PacketBytes)
	}
	addr := req.Addr % c.CapacityBytes

	// Link ingress: serialize the request packet on the next link. With
	// flow control enabled, first wait for a link token.
	link := &d.links[d.next]
	d.next = (d.next + 1) % len(d.links)
	tokenSlot := -1
	arrive := tick
	if len(link.tokens) > 0 {
		tokenSlot = 0
		for i, rel := range link.tokens {
			if rel < link.tokens[tokenSlot] {
				tokenSlot = i
			}
		}
		if link.tokens[tokenSlot] > arrive {
			d.stats.TokenWait += link.tokens[tokenSlot] - arrive
			arrive = link.tokens[tokenSlot]
		}
	}
	reqFlits := uint64(RequestFlits(req.Write, req.PacketBytes))
	inStart := max64(arrive, link.in)
	link.in = inStart + reqFlits*c.TFlit
	atVault := link.in + c.TSerDes

	// Bank service. Closed page (the HMC default): every request pays
	// activate + column + burst and busies the bank through precharge.
	// Open page (ablation): a row hit pays column + burst only; a row miss
	// pays precharge + activate + column + burst.
	v, b := d.vaultOf(addr), d.bankOf(addr)
	bank := &d.banks[v*d.cfg.BanksPerVault+b]
	start := max64(atVault, bank.busyUntil)
	if bank.busyUntil > atVault {
		d.stats.BankConflicts++
		d.stats.ConflictWait += bank.busyUntil - atVault
	}
	burst := uint64(DataFlits(req.PacketBytes)) * c.TBurstPerFlit
	var dataReady uint64
	if c.OpenPage {
		row := d.rowOf(addr)
		switch {
		case bank.rowValid && bank.openRow == row:
			d.stats.RowHits++
			dataReady = start + c.TColumn + burst
		case bank.rowValid:
			d.stats.RowActivations++
			dataReady = start + c.TPrecharge + c.TActivate + c.TColumn + burst
		default:
			d.stats.RowActivations++
			dataReady = start + c.TActivate + c.TColumn + burst
		}
		bank.openRow, bank.rowValid = row, true
		bank.busyUntil = dataReady
	} else {
		d.stats.RowActivations++
		dataReady = start + c.TActivate + c.TColumn + burst
		bank.busyUntil = dataReady + c.TPrecharge
	}

	// Link egress: serialize the response packet back to the host.
	respFlits := uint64(ResponseFlits(req.Write, req.PacketBytes))
	outStart := max64(dataReady, link.out)
	link.out = outStart + respFlits*c.TFlit
	done := link.out + c.TSerDes
	if tokenSlot >= 0 {
		link.tokens[tokenSlot] = done // token returns with the response
	}

	// Accounting.
	d.stats.VaultRequests[v]++
	d.stats.Requests++
	if req.Write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	d.sizeHist[req.PacketBytes/FlitBytes]++
	d.stats.PacketBytes += uint64(req.PacketBytes)
	d.stats.RequestedBytes += uint64(req.RequestedBytes)
	d.stats.TransferredBytes += (reqFlits + respFlits) * FlitBytes
	if done > d.stats.LastDone {
		d.stats.LastDone = done
	}
	return done, nil
}

// Stats returns a copy of the accumulated device statistics. The returned
// SizeHist map is materialized fresh from the device's internal histogram,
// so callers may mutate it freely.
func (d *Device) Stats() Stats {
	s := d.stats
	s.SizeHist = make(map[uint32]uint64)
	for i, n := range d.sizeHist {
		if n != 0 {
			s.SizeHist[uint32(i)*FlitBytes] = n
		}
	}
	s.VaultRequests = append([]uint64(nil), d.stats.VaultRequests...)
	return s
}

// Reset clears the device state and statistics.
func (d *Device) Reset() {
	for i := range d.banks {
		d.banks[i] = bankState{}
	}
	for i := range d.links {
		d.links[i] = duplex{}
		if d.cfg.LinkTokens > 0 {
			d.links[i].tokens = make([]uint64, d.cfg.LinkTokens)
		}
	}
	d.next = 0
	for i := range d.sizeHist {
		d.sizeHist[i] = 0
	}
	d.stats = Stats{VaultRequests: make([]uint64, d.cfg.Vaults)}
}

// Stats aggregates device activity.
type Stats struct {
	Requests, Reads, Writes uint64
	// SizeHist counts requests per packet payload size. Device.Stats
	// materializes it fresh on every call; use SizeHistSorted for
	// deterministic iteration order in rendered output.
	SizeHist map[uint32]uint64
	// PacketBytes is the total FLIT-aligned payload moved.
	PacketBytes uint64
	// RequestedBytes is the total useful data inside those payloads.
	RequestedBytes uint64
	// TransferredBytes is everything on the links: payload + control FLITs.
	TransferredBytes uint64
	RowActivations   uint64
	RowHits          uint64 // open-page mode only
	// VaultRequests counts requests routed to each vault; skew here means
	// the address stream is not spreading over the device's parallelism.
	VaultRequests []uint64
	BankConflicts uint64
	ConflictWait  uint64 // cycles lost to busy banks
	TokenWait     uint64 // cycles spent waiting for link flow-control tokens
	LastDone      uint64 // completion tick of the latest response
}

// SizeCount is one row of the packet-size histogram.
type SizeCount struct {
	Size  uint32 // packet payload size in bytes
	Count uint64 // requests of that size
}

// SizeHistSorted returns the packet-size histogram as (size, count) pairs
// in ascending size order. Iterating SizeHist directly yields a random
// order per run; every rendered view of the histogram goes through this.
func (s Stats) SizeHistSorted() []SizeCount {
	out := make([]SizeCount, 0, len(s.SizeHist))
	for size, n := range s.SizeHist {
		out = append(out, SizeCount{Size: size, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Size < out[j].Size })
	return out
}

// BandwidthEfficiency is Equation 1 over the whole run: useful requested
// data divided by everything transferred (payload + control).
func (s Stats) BandwidthEfficiency() float64 {
	if s.TransferredBytes == 0 {
		return 0
	}
	return float64(s.RequestedBytes) / float64(s.TransferredBytes)
}

// ControlBytes returns the total control overhead moved on the links.
func (s Stats) ControlBytes() uint64 {
	return s.TransferredBytes - s.PacketBytes
}

// VaultImbalance measures how unevenly traffic spreads over the vaults:
// max per-vault share divided by the uniform share (1.0 = perfectly even,
// Vaults = everything in one vault).
func (s Stats) VaultImbalance() float64 {
	if s.Requests == 0 || len(s.VaultRequests) == 0 {
		return 0
	}
	var max uint64
	for _, v := range s.VaultRequests {
		if v > max {
			max = v
		}
	}
	uniform := float64(s.Requests) / float64(len(s.VaultRequests))
	return float64(max) / uniform
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
