package hmc

import (
	"fmt"
	"sort"
	"strings"

	"hmccoal/internal/fault"
	"hmccoal/internal/invariant"
)

// NeverTick marks a completion that will never happen: the response was
// dropped on the link and no amount of waiting delivers it. It sorts after
// every real tick, so event loops keyed on "earliest completion" naturally
// ignore it.
const NeverTick = ^uint64(0)

// Config describes the simulated device geometry and timing. All timing
// parameters are in core clock cycles (3.3 GHz in the paper's setup).
type Config struct {
	// CapacityBytes is the total device capacity (paper: 8 GB).
	CapacityBytes uint64
	// Vaults is the number of independent vaults (HMC 2.1: 32).
	Vaults int
	// BanksPerVault is the number of DRAM banks per vault (HMC 2.1: 16).
	BanksPerVault int
	// BlockBytes is the vault interleave granularity and the maximum
	// request size (paper: 256 B-block addressing).
	BlockBytes uint32
	// RowBytes is the DRAM row (page) size within a bank.
	RowBytes uint32
	// Links is the number of full-duplex serial links (HMC 2.1: 4).
	Links int

	// TActivate, TColumn, TPrecharge are the DRAM row activate, column
	// access and precharge times.
	TActivate, TColumn, TPrecharge uint64
	// TBurstPerFlit is the vault-internal (TSV) transfer time per data FLIT.
	TBurstPerFlit uint64
	// TFlit is the link serialization time per FLIT.
	TFlit uint64
	// TSerDes is the fixed one-way link latency (serialization/deserialization).
	TSerDes uint64

	// TRetry is the retry-pointer round-trip penalty per link
	// retransmission: the receiver signals StartRetry, the transmitter
	// rolls back to its retry pointer, and only then do the FLITs
	// reserialize (which is charged separately).
	TRetry uint64
	// TRetrain is the link retraining penalty paid after
	// Fault.RetrainAfter consecutive errored transmissions on one link.
	TRetrain uint64

	// OpenPage keeps DRAM rows open between accesses instead of the HMC's
	// closed-page policy (§2.2.1). With it, back-to-back requests to the
	// same row skip the activate; a row conflict pays precharge + activate.
	// Provided as an ablation of the paper's closed-page assumption.
	OpenPage bool

	// LinkTokens models the HMC's token-based link-level flow control: at
	// most this many transactions may be outstanding per link; a request
	// arriving with no token waits for one to return. 0 disables the limit
	// (the paper's evaluation never saturates it).
	LinkTokens int

	// Fault configures deterministic link-fault injection (CRC errors and
	// their retransmissions, retry exhaustion poisoning, dropped
	// responses). The zero value is the perfect interconnect the paper
	// evaluates on, and costs nothing on the hot path.
	Fault fault.Config
}

// DefaultConfig returns the 8 GB HMC 2.1-like configuration used by the
// paper's evaluation, with timing at a 3.3 GHz core clock.
func DefaultConfig() Config {
	return Config{
		CapacityBytes: 8 << 30,
		Vaults:        32,
		BanksPerVault: 16,
		BlockBytes:    256,
		RowBytes:      2048,
		Links:         4,
		TActivate:     45,  // ≈13.6 ns
		TColumn:       45,  // ≈13.6 ns
		TPrecharge:    45,  // ≈13.6 ns
		TBurstPerFlit: 5,   // ≈1.5 ns per 16 B over the TSVs
		TFlit:         1,   // ≈0.3 ns per 16 B per link (≈53 GB/s/link)
		TSerDes:       12,  // ≈3.6 ns each way
		TRetry:        24,  // ≈7.3 ns retry-pointer round trip
		TRetrain:      660, // ≈200 ns link retraining
	}
}

// Validate checks the configuration. NewDevice calls it; embedding configs
// can call it early to surface errors before any construction.
func (c Config) Validate() error {
	switch {
	case c.CapacityBytes == 0:
		return fmt.Errorf("hmc: zero capacity")
	case c.Vaults <= 0 || c.BanksPerVault <= 0 || c.Links <= 0:
		return fmt.Errorf("hmc: non-positive geometry %+v", c)
	case c.BlockBytes == 0 || c.BlockBytes&(c.BlockBytes-1) != 0:
		return fmt.Errorf("hmc: block size %d not a power of two", c.BlockBytes)
	case c.RowBytes < c.BlockBytes:
		return fmt.Errorf("hmc: row size %d below block size %d", c.RowBytes, c.BlockBytes)
	}
	if err := c.Fault.Validate(); err != nil {
		return fmt.Errorf("hmc: %w", err)
	}
	return nil
}

// Request is one packetized HMC transaction.
type Request struct {
	// Addr is the physical byte address of the first byte.
	Addr uint64
	// PacketBytes is the FLIT-aligned packet payload size (16–256 B).
	PacketBytes uint32
	// RequestedBytes is the useful data inside the packet — the sum of the
	// original payload sizes that were coalesced into it. It never exceeds
	// PacketBytes and drives the Equation-1 bandwidth-efficiency stats.
	RequestedBytes uint32
	// Write distinguishes WR from RD packets.
	Write bool
}

// Completion describes the outcome of one submitted packet.
type Completion struct {
	// Done is the tick at which the response has been fully received by
	// the host, or NeverTick if the response was dropped.
	Done uint64
	// Poisoned reports that a leg of the transaction exhausted its link
	// retry budget: a response arrives at Done, but it carries an error
	// status instead of data. The requester must re-issue.
	Poisoned bool
	// Dropped reports that no response will ever arrive (Done is
	// NeverTick). A watchdog, not a wait, is the only way out.
	Dropped bool
	// Retries is the number of link retransmission rounds the transaction
	// needed across both legs.
	Retries int
}

// Device is the simulated HMC. It is not safe for concurrent use; the
// simulator owns it from a single goroutine.
type Device struct {
	cfg   Config
	banks []bankState // flat [vault*BanksPerVault+bank]
	links []duplex    // per-link ingress/egress busy-until
	next  int         // round-robin link cursor
	// sizeHist counts requests per packet size, indexed by size/FlitBytes;
	// Stats materializes it into the exported map form on demand.
	sizeHist []uint64
	stats    Stats

	// Fault state. serial numbers every submitted packet; together with
	// the link index it keys the injector, making every fault decision a
	// pure function of the packet's identity. consecErr and linkFaults are
	// nil unless injection is enabled, keeping the no-fault construction
	// path allocation-identical to a fault-free build.
	inj        fault.Injector
	serial     uint64
	consecErr  []int
	linkFaults []LinkFaultStats

	// Invariant-checking state, maintained only when check is non-nil so
	// the unchecked hot path pays one pointer compare per packet. The
	// counters classify every issued packet's payload bytes by outcome;
	// CheckConservation audits issued = delivered + poisoned + dropped.
	check          *invariant.Checker
	chkIssuedB     uint64
	chkDeliveredB  uint64
	chkPoisonedB   uint64
	chkDroppedB    uint64
	chkStarvedPkts uint64
}

type bankState struct {
	busyUntil uint64
	openRow   uint64
	rowValid  bool
}

type duplex struct {
	in, out uint64
	// tokens holds, when flow control is enabled, the release time of each
	// link token (the completion tick of the transaction holding it). A
	// token stamped NeverTick is leaked by a dropped response and never
	// returns.
	tokens []uint64
}

// NewDevice builds a Device from a fully specified cfg. Start from
// DefaultConfig and adjust fields as needed.
func NewDevice(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Device{cfg: cfg}
	d.banks = make([]bankState, cfg.Vaults*cfg.BanksPerVault)
	d.links = make([]duplex, cfg.Links)
	if cfg.LinkTokens > 0 {
		for i := range d.links {
			d.links[i].tokens = make([]uint64, cfg.LinkTokens)
		}
	}
	d.sizeHist = make([]uint64, cfg.BlockBytes/FlitBytes+1)
	d.stats.VaultRequests = make([]uint64, cfg.Vaults)
	d.inj = fault.NewInjector(cfg.Fault)
	if d.inj.Enabled() {
		d.consecErr = make([]int, cfg.Links)
		d.linkFaults = make([]LinkFaultStats, cfg.Links)
	}
	return d, nil
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// SetChecker attaches a runtime invariant checker. With a checker set the
// device classifies every issued packet's payload bytes by outcome so
// CheckConservation can audit the byte-conservation law; a nil checker
// (the default) disables the bookkeeping entirely.
func (d *Device) SetChecker(c *invariant.Checker) { d.check = c }

// CheckConservation audits the device's conservation laws at the end of a
// run: every issued packet byte was delivered, poisoned or dropped — none
// lost, none invented — and every leaked link flow-control token is
// matched by a dropped response on that link. It returns the first
// violation found, or nil. It requires SetChecker to have been called
// before traffic; without a checker it reports nothing.
func (d *Device) CheckConservation(tick uint64) error {
	if d.check == nil {
		return nil
	}
	if d.chkIssuedB != d.chkDeliveredB+d.chkPoisonedB+d.chkDroppedB {
		return d.check.Record(invariant.Violatef(invariant.RuleByteConservation, tick,
			d.conservationSnapshot(),
			"issued %d B != delivered %d B + poisoned %d B + dropped %d B",
			d.chkIssuedB, d.chkDeliveredB, d.chkPoisonedB, d.chkDroppedB))
	}
	for li := range d.links {
		l := &d.links[li]
		leaked := uint64(0)
		for _, rel := range l.tokens {
			if rel == NeverTick {
				leaked++
			}
		}
		dropped := uint64(0)
		if d.linkFaults != nil {
			dropped = d.linkFaults[li].Dropped
		}
		if len(l.tokens) > 0 && leaked != dropped {
			return d.check.Record(invariant.Violatef(invariant.RuleLinkTokenLeak, tick,
				d.conservationSnapshot(),
				"link %d leaked %d token(s) but recorded %d dropped response(s)",
				li, leaked, dropped))
		}
	}
	return nil
}

// conservationSnapshot renders the byte ledger plus the link state.
func (d *Device) conservationSnapshot() string {
	return fmt.Sprintf("device{issued=%dB delivered=%dB poisoned=%dB dropped=%dB starved=%d} %s",
		d.chkIssuedB, d.chkDeliveredB, d.chkPoisonedB, d.chkDroppedB, d.chkStarvedPkts, d.DebugLinks())
}

// vaultOf maps an address to its vault by low-order block interleaving.
func (d *Device) vaultOf(addr uint64) int {
	return int(addr / uint64(d.cfg.BlockBytes) % uint64(d.cfg.Vaults))
}

// bankOf maps an address to a bank within its vault.
func (d *Device) bankOf(addr uint64) int {
	return int(addr / uint64(d.cfg.BlockBytes) / uint64(d.cfg.Vaults) % uint64(d.cfg.BanksPerVault))
}

// rowOf maps an address to its DRAM row within the bank.
func (d *Device) rowOf(addr uint64) uint64 {
	bankOffset := addr / uint64(d.cfg.BlockBytes) / uint64(d.cfg.Vaults) / uint64(d.cfg.BanksPerVault)
	return bankOffset / uint64(d.cfg.RowBytes/d.cfg.BlockBytes)
}

// Submit presents a request to the device at the given arrival tick and
// returns the tick at which the response has been fully received by the
// host. It is SubmitPacket restricted to the perfect-link result; with
// fault injection enabled the returned tick may belong to a poisoned
// response, or be NeverTick for a dropped one — callers that care must use
// SubmitPacket.
func (d *Device) Submit(tick uint64, req Request) (uint64, error) {
	comp, err := d.SubmitPacket(tick, req)
	return comp.Done, err
}

// SubmitPacket presents a request to the device at the given arrival tick
// and returns a Completion describing when — and whether — the response
// reaches the host. Requests must respect the packet interface:
// FLIT-aligned payload in [16, BlockBytes] that does not cross a block
// boundary.
//
// The model is busy-until based: each bank and each link direction is a
// resource with a scalar horizon. Closed-page policy: every request pays
// activate + column + burst and leaves the bank busy through precharge, so
// k small requests to one block cost k row activations where one coalesced
// request costs one — the effect motivating the paper.
//
// With fault injection enabled, each leg of the transaction runs the HMC
// link-retry protocol: an injected CRC error costs a retry-pointer round
// trip plus reserialization of the packet's FLITs, consecutive errors
// trigger link retraining, and a leg that exhausts its retry budget
// poisons the response. A dropped response completes at NeverTick and, if
// flow control is on, leaks its link token — exactly the failure a
// watchdog above the device must catch.
func (d *Device) SubmitPacket(tick uint64, req Request) (Completion, error) {
	c := &d.cfg
	if req.PacketBytes < MinRequestBytes || req.PacketBytes > c.BlockBytes {
		return Completion{}, fmt.Errorf("hmc: packet size %d outside [%d,%d]", req.PacketBytes, MinRequestBytes, c.BlockBytes)
	}
	if req.PacketBytes%FlitBytes != 0 {
		return Completion{}, fmt.Errorf("hmc: packet size %d not FLIT aligned", req.PacketBytes)
	}
	if req.Addr/uint64(c.BlockBytes) != (req.Addr+uint64(req.PacketBytes)-1)/uint64(c.BlockBytes) {
		return Completion{}, fmt.Errorf("hmc: request %#x+%d crosses a %d B block boundary", req.Addr, req.PacketBytes, c.BlockBytes)
	}
	if req.RequestedBytes > req.PacketBytes {
		return Completion{}, fmt.Errorf("hmc: requested bytes %d exceed packet %d", req.RequestedBytes, req.PacketBytes)
	}
	addr := req.Addr % c.CapacityBytes
	serial := d.serial
	d.serial++

	// Link ingress: serialize the request packet on the next link. With
	// flow control enabled, first wait for a link token.
	li := d.next
	link := &d.links[li]
	d.next = (d.next + 1) % len(d.links)
	tokenSlot := -1
	arrive := tick
	if len(link.tokens) > 0 {
		tokenSlot = 0
		for i, rel := range link.tokens {
			if rel < link.tokens[tokenSlot] {
				tokenSlot = i
			}
		}
		if link.tokens[tokenSlot] == NeverTick {
			// Every token on this link is held by a transaction whose
			// response was dropped. The request can never start; fail it
			// loudly instead of modelling an infinite wait.
			d.stats.TokenStarved++
			if d.check != nil {
				d.chkIssuedB += uint64(req.PacketBytes)
				d.chkDroppedB += uint64(req.PacketBytes)
				d.chkStarvedPkts++
			}
			return Completion{Done: NeverTick, Dropped: true}, nil
		}
		if link.tokens[tokenSlot] > arrive {
			d.stats.TokenWait += link.tokens[tokenSlot] - arrive
			arrive = link.tokens[tokenSlot]
		}
	}
	var comp Completion
	reqFlits := uint64(RequestFlits(req.Write, req.PacketBytes))
	inStart := max64(arrive, link.in)
	txEnd := inStart + reqFlits*c.TFlit
	reqPoisoned := false
	if d.inj.Enabled() {
		var r int
		txEnd, r, reqPoisoned = d.retryLeg(li, serial, fault.LegRequest, reqFlits, txEnd)
		comp.Retries += r
	}
	link.in = txEnd

	// Accounting shared by every outcome: the request was presented and
	// its packet serialized at least once.
	d.stats.Requests++
	if req.Write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	d.sizeHist[req.PacketBytes/FlitBytes]++
	d.stats.TransferredBytes += reqFlits * FlitBytes
	if d.check != nil {
		d.chkIssuedB += uint64(req.PacketBytes)
	}

	if reqPoisoned {
		// The request never entered the device intact: no vault sees it.
		// The link controller sends back a one-FLIT poisoned response
		// after the failed leg settles.
		comp.Poisoned = true
		d.poison(li)
		if d.check != nil {
			d.chkPoisonedB += uint64(req.PacketBytes)
		}
		outStart := max64(link.in+2*c.TSerDes, link.out)
		link.out = outStart + c.TFlit
		comp.Done = link.out + c.TSerDes
		d.stats.TransferredBytes += FlitBytes
		if tokenSlot >= 0 {
			link.tokens[tokenSlot] = comp.Done
		}
		if comp.Done > d.stats.LastDone {
			d.stats.LastDone = comp.Done
		}
		return comp, nil
	}

	atVault := link.in + c.TSerDes

	// Bank service. Closed page (the HMC default): every request pays
	// activate + column + burst and busies the bank through precharge.
	// Open page (ablation): a row hit pays column + burst only; a row miss
	// pays precharge + activate + column + burst.
	v, b := d.vaultOf(addr), d.bankOf(addr)
	bank := &d.banks[v*d.cfg.BanksPerVault+b]
	start := max64(atVault, bank.busyUntil)
	if bank.busyUntil > atVault {
		d.stats.BankConflicts++
		d.stats.ConflictWait += bank.busyUntil - atVault
	}
	burst := uint64(DataFlits(req.PacketBytes)) * c.TBurstPerFlit
	var dataReady uint64
	if c.OpenPage {
		row := d.rowOf(addr)
		switch {
		case bank.rowValid && bank.openRow == row:
			d.stats.RowHits++
			dataReady = start + c.TColumn + burst
		case bank.rowValid:
			d.stats.RowActivations++
			dataReady = start + c.TPrecharge + c.TActivate + c.TColumn + burst
		default:
			d.stats.RowActivations++
			dataReady = start + c.TActivate + c.TColumn + burst
		}
		bank.openRow, bank.rowValid = row, true
		bank.busyUntil = dataReady
	} else {
		d.stats.RowActivations++
		dataReady = start + c.TActivate + c.TColumn + burst
		bank.busyUntil = dataReady + c.TPrecharge
	}
	d.stats.VaultRequests[v]++

	// A dropped response vanishes before the egress link ever sees it.
	// The transaction's token is leaked: with flow control on, the link
	// will eventually starve — deliberately observable, not papered over.
	if d.inj.Enabled() && d.inj.Drop(li, serial) {
		comp.Done = NeverTick
		comp.Dropped = true
		d.stats.DroppedResponses++
		d.linkFaults[li].Dropped++
		if d.check != nil {
			d.chkDroppedB += uint64(req.PacketBytes)
		}
		if tokenSlot >= 0 {
			link.tokens[tokenSlot] = NeverTick
		}
		return comp, nil
	}

	// Link egress: serialize the response packet back to the host.
	respFlits := uint64(ResponseFlits(req.Write, req.PacketBytes))
	outStart := max64(dataReady, link.out)
	txOut := outStart + respFlits*c.TFlit
	respPoisoned := false
	if d.inj.Enabled() {
		var r int
		txOut, r, respPoisoned = d.retryLeg(li, serial, fault.LegResponse, respFlits, txOut)
		comp.Retries += r
	}
	link.out = txOut
	comp.Done = link.out + c.TSerDes
	if tokenSlot >= 0 {
		link.tokens[tokenSlot] = comp.Done // token returns with the response
	}

	d.stats.TransferredBytes += respFlits * FlitBytes
	if respPoisoned {
		// The response arrives, but as a poison marker: its data FLITs
		// were exhausted on the link, so no useful bytes were delivered.
		comp.Poisoned = true
		d.poison(li)
		if d.check != nil {
			d.chkPoisonedB += uint64(req.PacketBytes)
		}
	} else {
		d.stats.PacketBytes += uint64(req.PacketBytes)
		d.stats.RequestedBytes += uint64(req.RequestedBytes)
		if d.check != nil {
			d.chkDeliveredB += uint64(req.PacketBytes)
		}
	}
	if comp.Done > d.stats.LastDone {
		d.stats.LastDone = comp.Done
	}
	return comp, nil
}

// retryLeg runs the HMC link-retry protocol for one packet transmission
// whose first serialization ends at txEnd. Each corrupted attempt pays the
// retry-pointer penalty plus reserialization of the packet's FLITs;
// RetrainAfter consecutive errors on the link (across packets) force a
// retraining pause. Returns the tick the leg finally settles, the number
// of retransmission rounds, and whether the retry budget was exhausted
// (the leg is then poisoned, settling at the last failed attempt).
func (d *Device) retryLeg(li int, serial uint64, leg uint8, flits, txEnd uint64) (uint64, int, bool) {
	c := &d.cfg
	maxRetries := c.Fault.MaxRetriesOrDefault()
	retrainAfter := c.Fault.RetrainAfterOrDefault()
	retries := 0
	for attempt := 0; ; attempt++ {
		if !d.inj.Corrupt(li, serial, leg, attempt, int(flits)) {
			d.consecErr[li] = 0
			return txEnd, retries, false
		}
		d.consecErr[li]++
		if d.consecErr[li] >= retrainAfter {
			d.linkFaults[li].Retrains++
			d.stats.RetrainEvents++
			txEnd += c.TRetrain
			d.consecErr[li] = 0
		}
		if attempt >= maxRetries {
			return txEnd, retries, true
		}
		retries++
		d.linkFaults[li].Retries++
		d.stats.Retries++
		d.stats.RetransmittedBytes += flits * FlitBytes
		d.stats.TransferredBytes += flits * FlitBytes
		txEnd += c.TRetry + flits*c.TFlit
	}
}

// poison records a poisoned response on link li.
func (d *Device) poison(li int) {
	d.stats.PoisonedResponses++
	d.linkFaults[li].Poisoned++
}

// DebugLinks renders the per-link horizon and fault state for watchdog and
// deadlock diagnostics. The format is stable and deterministic.
func (d *Device) DebugLinks() string {
	var b strings.Builder
	for i := range d.links {
		if i > 0 {
			b.WriteByte(' ')
		}
		l := &d.links[i]
		leaked := 0
		for _, rel := range l.tokens {
			if rel == NeverTick {
				leaked++
			}
		}
		fmt.Fprintf(&b, "link%d{in=%d out=%d", i, l.in, l.out)
		if len(l.tokens) > 0 {
			fmt.Fprintf(&b, " tokens=%d leaked=%d", len(l.tokens), leaked)
		}
		if d.linkFaults != nil {
			f := d.linkFaults[i]
			fmt.Fprintf(&b, " retries=%d retrains=%d poisoned=%d dropped=%d consec=%d",
				f.Retries, f.Retrains, f.Poisoned, f.Dropped, d.consecErr[i])
		}
		b.WriteByte('}')
	}
	return b.String()
}

// Stats returns a copy of the accumulated device statistics. The returned
// SizeHist map is materialized fresh from the device's internal histogram,
// so callers may mutate it freely.
func (d *Device) Stats() Stats {
	s := d.stats
	s.SizeHist = make(map[uint32]uint64)
	for i, n := range d.sizeHist {
		if n != 0 {
			s.SizeHist[uint32(i)*FlitBytes] = n
		}
	}
	s.VaultRequests = append([]uint64(nil), d.stats.VaultRequests...)
	if d.linkFaults != nil {
		s.LinkFaults = append([]LinkFaultStats(nil), d.linkFaults...)
	}
	return s
}

// Reset clears the device state and statistics.
func (d *Device) Reset() {
	for i := range d.banks {
		d.banks[i] = bankState{}
	}
	for i := range d.links {
		d.links[i] = duplex{}
		if d.cfg.LinkTokens > 0 {
			d.links[i].tokens = make([]uint64, d.cfg.LinkTokens)
		}
	}
	d.next = 0
	d.serial = 0
	for i := range d.consecErr {
		d.consecErr[i] = 0
	}
	for i := range d.linkFaults {
		d.linkFaults[i] = LinkFaultStats{}
	}
	for i := range d.sizeHist {
		d.sizeHist[i] = 0
	}
	d.stats = Stats{VaultRequests: make([]uint64, d.cfg.Vaults)}
	d.chkIssuedB, d.chkDeliveredB, d.chkPoisonedB, d.chkDroppedB, d.chkStarvedPkts = 0, 0, 0, 0, 0
}

// LinkFaultStats breaks the fault counters down per link.
type LinkFaultStats struct {
	// Retries is the number of link retransmission rounds on this link.
	Retries uint64
	// Retrains counts link retraining events (consecutive-error bursts).
	Retrains uint64
	// Poisoned counts responses returned with poison instead of data.
	Poisoned uint64
	// Dropped counts responses that vanished entirely.
	Dropped uint64
}

// Stats aggregates device activity.
type Stats struct {
	Requests, Reads, Writes uint64
	// SizeHist counts requests per packet payload size. Device.Stats
	// materializes it fresh on every call; use SizeHistSorted for
	// deterministic iteration order in rendered output.
	SizeHist map[uint32]uint64
	// PacketBytes is the total FLIT-aligned payload moved.
	PacketBytes uint64
	// RequestedBytes is the total useful data inside those payloads.
	RequestedBytes uint64
	// TransferredBytes is everything on the links: payload + control
	// FLITs, including retransmissions forced by injected CRC errors.
	TransferredBytes uint64
	RowActivations   uint64
	RowHits          uint64 // open-page mode only
	// VaultRequests counts requests routed to each vault; skew here means
	// the address stream is not spreading over the device's parallelism.
	VaultRequests []uint64
	BankConflicts uint64
	ConflictWait  uint64 // cycles lost to busy banks
	TokenWait     uint64 // cycles spent waiting for link flow-control tokens
	LastDone      uint64 // completion tick of the latest response

	// Fault-injection counters. All stay zero with faults disabled.
	Retries            uint64 // link retransmission rounds across all links
	RetrainEvents      uint64 // link retraining events
	PoisonedResponses  uint64 // responses poisoned by retry exhaustion
	DroppedResponses   uint64 // responses that never arrived
	TokenStarved       uint64 // requests rejected because every link token leaked
	RetransmittedBytes uint64 // link bytes moved again by retransmissions
	// LinkFaults is the per-link fault breakdown; nil with faults off.
	LinkFaults []LinkFaultStats
}

// SizeCount is one row of the packet-size histogram.
type SizeCount struct {
	Size  uint32 // packet payload size in bytes
	Count uint64 // requests of that size
}

// SizeHistSorted returns the packet-size histogram as (size, count) pairs
// in ascending size order. Iterating SizeHist directly yields a random
// order per run; every rendered view of the histogram goes through this.
func (s Stats) SizeHistSorted() []SizeCount {
	out := make([]SizeCount, 0, len(s.SizeHist))
	for size, n := range s.SizeHist {
		out = append(out, SizeCount{Size: size, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Size < out[j].Size })
	return out
}

// BandwidthEfficiency is Equation 1 over the whole run: useful requested
// data divided by everything transferred (payload + control).
func (s Stats) BandwidthEfficiency() float64 {
	if s.TransferredBytes == 0 {
		return 0
	}
	return float64(s.RequestedBytes) / float64(s.TransferredBytes)
}

// ControlBytes returns the total control overhead moved on the links.
func (s Stats) ControlBytes() uint64 {
	return s.TransferredBytes - s.PacketBytes
}

// VaultImbalance measures how unevenly traffic spreads over the vaults:
// max per-vault share divided by the uniform share (1.0 = perfectly even,
// Vaults = everything in one vault).
func (s Stats) VaultImbalance() float64 {
	if s.Requests == 0 || len(s.VaultRequests) == 0 {
		return 0
	}
	var max uint64
	for _, v := range s.VaultRequests {
		if v > max {
			max = v
		}
	}
	uniform := float64(s.Requests) / float64(len(s.VaultRequests))
	return float64(max) / uniform
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
