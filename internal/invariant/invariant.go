// Package invariant is the simulator's runtime conservation checker.
//
// The simulator's correctness rests on a handful of conservation laws —
// every demand-miss token completes exactly once, issued packet bytes equal
// delivered plus poisoned plus dropped bytes, MSHR entries and CRQ slots
// drain to empty, link flow-control tokens are conserved across retries,
// and the deterministic clock never runs backwards. Historically these
// surfaced as bare panics deep inside the coalescer and the MSHR file; this
// package turns them into structured errors (Violation) that carry the rule
// broken, the tick, and a full diagnostic snapshot of the subsystem state,
// and adds *optional* continuous checking that is free when disabled.
//
// The enable/disable contract is strict: a nil *Checker is the disabled
// checker. Every method is nil-safe, so hot paths thread a possibly-nil
// checker and pay one pointer compare — no allocation, no branch on
// configuration structs, byte-identical simulation results either way.
// sim.Config.Checks wires an enabled checker through every layer.
package invariant

import (
	"errors"
	"fmt"
	"strings"
)

// Rule names. Each names one conservation law; the DESIGN.md invariant
// table maps them to the paper mechanism they guard.
const (
	// RuleTokenConservation: every demand-miss token pushed into the
	// coalescer completes exactly once (no loss, no duplication).
	RuleTokenConservation = "token-conservation"
	// RuleDoubleCompletion: a completion delivered a token that was not
	// outstanding — the same waiter woken twice.
	RuleDoubleCompletion = "double-completion"
	// RuleTokenOverflow: a token ring slot was re-issued while still live.
	RuleTokenOverflow = "token-ring-overflow"
	// RuleByteConservation: device packet bytes issued must equal bytes
	// delivered + poisoned + dropped.
	RuleByteConservation = "byte-conservation"
	// RuleLinkTokenLeak: link flow-control tokens leaked without a matching
	// dropped-response record.
	RuleLinkTokenLeak = "link-token-conservation"
	// RuleMSHRLeak: MSHR entries still allocated after Drain.
	RuleMSHRLeak = "mshr-leak"
	// RuleMSHRAccounting: the file's free counter disagrees with its
	// entries' valid bits.
	RuleMSHRAccounting = "mshr-accounting"
	// RuleQueueLeak: coalescer queues (input buffer, CRQ, retry queue,
	// in-flight set) not empty after Drain.
	RuleQueueLeak = "queue-leak"
	// RuleClockMonotone: the deterministic clock ran backwards.
	RuleClockMonotone = "clock-monotone"
	// RuleMSHRAlloc: an entry allocation was attempted on a full file.
	RuleMSHRAlloc = "mshr-alloc"
	// RuleMSHRComplete: Complete was called on an entry that is not live.
	RuleMSHRComplete = "mshr-complete"
	// RuleCRQInsert: a CRQ packet was rejected by the MSHR file.
	RuleCRQInsert = "crq-insert"
	// RuleTargetConservation: an Insert lost or duplicated waiters
	// (merged + issued + unplaced != presented).
	RuleTargetConservation = "target-conservation"
	// RuleCRQStuck: the CRQ head is ready but nothing in flight can ever
	// unblock it.
	RuleCRQStuck = "crq-stuck"
	// RuleIllegalPacket: the coalescer handed the device a packet that
	// violates the HMC packet interface.
	RuleIllegalPacket = "illegal-packet"
)

// Violation is one broken conservation law, as a structured error. It
// carries enough to triage without re-running: the rule, the simulated
// tick, a message naming the quantities that diverged, and a snapshot of
// the owning subsystem's state at the moment of the breach.
type Violation struct {
	// Rule is one of the Rule* constants.
	Rule string
	// Tick is the simulated time of the breach.
	Tick uint64
	// Msg names the quantities that diverged.
	Msg string
	// Snapshot is the owning subsystem's diagnostic state dump.
	Snapshot string
}

// Error renders the violation as "invariant: <rule> at tick N: <msg>"
// followed by the state snapshot.
func (v *Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "invariant: %s at tick %d: %s", v.Rule, v.Tick, v.Msg)
	if v.Snapshot != "" {
		b.WriteString("; state: ")
		b.WriteString(v.Snapshot)
	}
	return b.String()
}

// Violatef builds a Violation. It is a package function, not a Checker
// method, because the hard failure sites (the former panics) must produce a
// structured error whether or not continuous checking is enabled.
func Violatef(rule string, tick uint64, snapshot, format string, args ...any) *Violation {
	return &Violation{Rule: rule, Tick: tick, Msg: fmt.Sprintf(format, args...), Snapshot: snapshot}
}

// As extracts the *Violation from an error chain, if any.
func As(err error) (*Violation, bool) {
	var v *Violation
	if errors.As(err, &v) {
		return v, true
	}
	return nil, false
}

// maxViolations bounds how many violations one checker accumulates: past
// the first few, more reports of the same broken run add noise, not signal.
const maxViolations = 16

// Checker collects violations for one simulated system. The nil *Checker
// is the disabled checker: every method is nil-safe and free, so call
// sites never branch on configuration. A Checker is single-goroutine, like
// the simulator that owns it; independent sweep jobs each own their own.
type Checker struct {
	violations []*Violation
	dropped    int
}

// New returns an enabled checker.
func New() *Checker { return &Checker{} }

// Enabled reports whether continuous checking is on. Guard any check whose
// bookkeeping costs more than a compare with this.
func (c *Checker) Enabled() bool { return c != nil }

// Record registers a violation and returns it. Nil-safe on both sides:
// a nil checker or a nil violation is a no-op.
func (c *Checker) Record(v *Violation) *Violation {
	if c == nil || v == nil {
		return v
	}
	if len(c.violations) >= maxViolations {
		c.dropped++
		return v
	}
	c.violations = append(c.violations, v)
	return v
}

// Violatef builds a violation and records it. Returns nil on a disabled
// checker, so checks-only sites can fold build+record+test into one call.
func (c *Checker) Violatef(rule string, tick uint64, snapshot, format string, args ...any) *Violation {
	if c == nil {
		return nil
	}
	return c.Record(Violatef(rule, tick, snapshot, format, args...))
}

// Violations returns the recorded violations in detection order.
func (c *Checker) Violations() []*Violation {
	if c == nil {
		return nil
	}
	return c.violations
}

// Err returns nil if no violation was recorded, the violation itself if
// exactly one, and an errors.Join of all of them (detection order, first
// primary) otherwise.
func (c *Checker) Err() error {
	if c == nil || len(c.violations) == 0 {
		return nil
	}
	if len(c.violations) == 1 {
		return c.violations[0]
	}
	errs := make([]error, len(c.violations))
	for i, v := range c.violations {
		errs[i] = v
	}
	return errors.Join(errs...)
}

// Reset clears recorded violations so a checker can audit another run.
func (c *Checker) Reset() {
	if c == nil {
		return
	}
	c.violations = c.violations[:0]
	c.dropped = 0
}

// TokenLedger tracks the exactly-once completion law for ring-slot demand
// tokens: Issue marks a slot live (a live slot being re-issued means the
// ring wrapped onto an outstanding miss), Complete marks it dead (a dead
// slot completing means a waiter was woken twice). Allocate one only when
// checking is enabled; the nil *TokenLedger is a free no-op.
type TokenLedger struct {
	live      []bool
	issued    uint64
	completed uint64
	forfeited uint64
}

// NewTokenLedger builds a ledger over a token ring of the given size.
func NewTokenLedger(ring int) *TokenLedger {
	return &TokenLedger{live: make([]bool, ring)}
}

// Issue marks slot live and returns a violation if it already was.
func (l *TokenLedger) Issue(slot, tick uint64) *Violation {
	if l == nil {
		return nil
	}
	l.issued++
	if l.live[slot] {
		return Violatef(RuleTokenOverflow, tick, l.snapshot(),
			"token ring slot %d re-issued while still outstanding", slot)
	}
	l.live[slot] = true
	return nil
}

// Forfeit writes off a live slot whose completion is known to never
// arrive — the waiter of a packet whose response the link dropped. The
// slot leaves the outstanding set (a later Issue may reclaim it cleanly)
// and the forfeiture is carried in the conservation law: at drain time
// issued must equal completed + forfeited.
func (l *TokenLedger) Forfeit(slot uint64) {
	if l == nil || !l.live[slot] {
		return
	}
	l.live[slot] = false
	l.forfeited++
}

// Complete marks slot dead and returns a violation if it was not live.
func (l *TokenLedger) Complete(slot, tick uint64) *Violation {
	if l == nil {
		return nil
	}
	l.completed++
	if !l.live[slot] {
		return Violatef(RuleDoubleCompletion, tick, l.snapshot(),
			"token ring slot %d completed while not outstanding", slot)
	}
	l.live[slot] = false
	return nil
}

// Outstanding counts slots currently live.
func (l *TokenLedger) Outstanding() int {
	if l == nil {
		return 0
	}
	n := 0
	for _, v := range l.live {
		if v {
			n++
		}
	}
	return n
}

// CheckDrained verifies the end-of-run law: everything issued completed.
func (l *TokenLedger) CheckDrained(tick uint64) *Violation {
	if l == nil {
		return nil
	}
	if out := l.Outstanding(); out != 0 || l.issued != l.completed+l.forfeited {
		return Violatef(RuleTokenConservation, tick, l.snapshot(),
			"%d token(s) never completed (%d issued, %d completed, %d forfeited to drops)",
			out, l.issued, l.completed, l.forfeited)
	}
	return nil
}

func (l *TokenLedger) snapshot() string {
	firstLive := -1
	for i, v := range l.live {
		if v {
			firstLive = i
			break
		}
	}
	return fmt.Sprintf("ledger{ring=%d issued=%d completed=%d forfeited=%d outstanding=%d firstLive=%d}",
		len(l.live), l.issued, l.completed, l.forfeited, l.Outstanding(), firstLive)
}
