package invariant

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestViolationError(t *testing.T) {
	v := Violatef(RuleMSHRLeak, 42, "file{free=3}", "%d entries leaked", 5)
	msg := v.Error()
	for _, want := range []string{"invariant:", RuleMSHRLeak, "tick 42", "5 entries leaked", "file{free=3}"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q, missing %q", msg, want)
		}
	}
	vNoSnap := Violatef(RuleCRQStuck, 7, "", "stuck")
	if strings.Contains(vNoSnap.Error(), "state:") {
		t.Errorf("empty snapshot should omit state section: %q", vNoSnap.Error())
	}
}

func TestAs(t *testing.T) {
	v := Violatef(RuleDoubleCompletion, 1, "", "dup")
	wrapped := fmt.Errorf("run failed: %w", v)
	got, ok := As(wrapped)
	if !ok || got != v {
		t.Fatalf("As(wrapped) = %v, %v; want original violation", got, ok)
	}
	if _, ok := As(errors.New("plain")); ok {
		t.Fatal("As(plain error) should be false")
	}
	if _, ok := As(nil); ok {
		t.Fatal("As(nil) should be false")
	}
}

func TestNilCheckerIsDisabledAndFree(t *testing.T) {
	var c *Checker
	if c.Enabled() {
		t.Fatal("nil checker must report disabled")
	}
	// Every method must be callable on nil.
	c.Record(Violatef(RuleMSHRLeak, 0, "", "x"))
	if v := c.Violatef(RuleMSHRLeak, 0, "", "x"); v != nil {
		t.Fatalf("nil.Violatef = %v, want nil", v)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("nil.Err = %v, want nil", err)
	}
	if vs := c.Violations(); vs != nil {
		t.Fatalf("nil.Violations = %v, want nil", vs)
	}
	c.Reset()
}

func TestCheckerErrSingleAndJoined(t *testing.T) {
	c := New()
	if !c.Enabled() {
		t.Fatal("New() checker must be enabled")
	}
	if c.Err() != nil {
		t.Fatal("fresh checker must have nil Err")
	}

	v1 := c.Violatef(RuleMSHRLeak, 10, "", "first")
	if err := c.Err(); err != v1 {
		t.Fatalf("single violation: Err = %v, want the violation itself", err)
	}

	v2 := c.Violatef(RuleQueueLeak, 11, "", "second")
	err := c.Err()
	if err == v1 || err == v2 {
		t.Fatal("two violations must be joined, not a single violation")
	}
	got, ok := As(err)
	if !ok || got != v1 {
		t.Fatalf("joined Err: first violation must be primary via errors.As, got %v", got)
	}
	if !strings.Contains(err.Error(), "second") {
		t.Fatalf("joined Err must include later violations: %v", err)
	}
	if n := len(c.Violations()); n != 2 {
		t.Fatalf("Violations() len = %d, want 2", n)
	}

	c.Reset()
	if c.Err() != nil || len(c.Violations()) != 0 {
		t.Fatal("Reset must clear violations")
	}
}

func TestCheckerCapsViolations(t *testing.T) {
	c := New()
	for i := 0; i < maxViolations+20; i++ {
		c.Violatef(RuleMSHRLeak, uint64(i), "", "v%d", i)
	}
	if n := len(c.Violations()); n != maxViolations {
		t.Fatalf("Violations len = %d, want cap %d", n, maxViolations)
	}
	if c.dropped != 20 {
		t.Fatalf("dropped = %d, want 20", c.dropped)
	}
}

func TestTokenLedgerExactlyOnce(t *testing.T) {
	l := NewTokenLedger(8)
	if v := l.Issue(3, 100); v != nil {
		t.Fatalf("first Issue: %v", v)
	}
	if l.Outstanding() != 1 {
		t.Fatalf("Outstanding = %d, want 1", l.Outstanding())
	}
	// Re-issuing a live slot is a ring overflow.
	v := l.Issue(3, 101)
	if v == nil || v.Rule != RuleTokenOverflow {
		t.Fatalf("re-issue: got %v, want %s violation", v, RuleTokenOverflow)
	}
	if v := l.Complete(3, 102); v != nil {
		t.Fatalf("Complete live slot: %v", v)
	}
	// Completing a dead slot is a double completion.
	v = l.Complete(3, 103)
	if v == nil || v.Rule != RuleDoubleCompletion {
		t.Fatalf("double complete: got %v, want %s violation", v, RuleDoubleCompletion)
	}
}

func TestTokenLedgerCheckDrained(t *testing.T) {
	l := NewTokenLedger(4)
	l.Issue(0, 1)
	l.Issue(1, 2)
	l.Complete(0, 3)
	v := l.CheckDrained(10)
	if v == nil || v.Rule != RuleTokenConservation {
		t.Fatalf("drained with live slot: got %v, want %s violation", v, RuleTokenConservation)
	}
	if !strings.Contains(v.Error(), "1 token(s) never completed") {
		t.Fatalf("violation should count leaked tokens: %v", v)
	}
	l.Complete(1, 4)
	if v := l.CheckDrained(11); v != nil {
		t.Fatalf("fully drained ledger: %v", v)
	}
}

func TestNilTokenLedgerIsFree(t *testing.T) {
	var l *TokenLedger
	if v := l.Issue(0, 0); v != nil {
		t.Fatal("nil ledger Issue must be nil")
	}
	if v := l.Complete(0, 0); v != nil {
		t.Fatal("nil ledger Complete must be nil")
	}
	if l.Outstanding() != 0 {
		t.Fatal("nil ledger Outstanding must be 0")
	}
	if v := l.CheckDrained(0); v != nil {
		t.Fatal("nil ledger CheckDrained must be nil")
	}
}

// TestTokenLedgerForfeit covers the dropped-response path: a slot whose
// completion is known to never arrive is written off, re-issuable without
// a ring-overflow report, and carried by the drain-time conservation law.
func TestTokenLedgerForfeit(t *testing.T) {
	l := NewTokenLedger(4)
	l.Issue(2, 1)
	l.Forfeit(2)
	if l.Outstanding() != 0 {
		t.Fatalf("Outstanding after forfeit = %d, want 0", l.Outstanding())
	}
	// The ring may wrap onto the forfeited slot without a violation.
	if v := l.Issue(2, 5); v != nil {
		t.Fatalf("re-issue of forfeited slot: %v", v)
	}
	l.Complete(2, 6)
	if v := l.CheckDrained(10); v != nil {
		t.Fatalf("drained ledger with one forfeit: %v", v)
	}
	// Forfeiting a dead slot is a no-op, not double bookkeeping.
	l.Forfeit(2)
	if v := l.CheckDrained(11); v != nil {
		t.Fatalf("forfeit of dead slot changed the books: %v", v)
	}
	var nilLedger *TokenLedger
	nilLedger.Forfeit(0) // nil-safe like every other method
}
