package invariant

import "fmt"

// TokenLedgerState is an opaque deep copy of a TokenLedger.
type TokenLedgerState struct {
	live      []bool
	issued    uint64
	completed uint64
	forfeited uint64
}

// SaveState deep-copies the ledger. Nil-safe like every ledger method: a
// nil ledger saves as nil, so checks-off systems snapshot uniformly.
func (l *TokenLedger) SaveState() *TokenLedgerState {
	if l == nil {
		return nil
	}
	return &TokenLedgerState{
		live:      append([]bool(nil), l.live...),
		issued:    l.issued,
		completed: l.completed,
		forfeited: l.forfeited,
	}
}

// RestoreState replays a snapshot into the ledger. A nil state restores
// only into a nil ledger and vice versa — the snapshot and the system must
// agree on whether checking was enabled.
func (l *TokenLedger) RestoreState(st *TokenLedgerState) error {
	if (l == nil) != (st == nil) {
		return fmt.Errorf("invariant: snapshot and ledger disagree on checking")
	}
	if l == nil {
		return nil
	}
	if len(st.live) != len(l.live) {
		return fmt.Errorf("invariant: snapshot ring size %d, ledger %d", len(st.live), len(l.live))
	}
	copy(l.live, st.live)
	l.issued = st.issued
	l.completed = st.completed
	l.forfeited = st.forfeited
	return nil
}
