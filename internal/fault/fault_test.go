package fault

import (
	"math"
	"testing"
)

func TestDisabledInjectorNeverFires(t *testing.T) {
	in := NewInjector(Config{Seed: 42})
	if in.Enabled() {
		t.Fatal("zero BER/drop reported enabled")
	}
	for serial := uint64(0); serial < 1000; serial++ {
		if in.Corrupt(0, serial, LegRequest, 0, 17) || in.Drop(0, serial) {
			t.Fatalf("disabled injector fired at serial %d", serial)
		}
	}
}

// TestDeterministic is the core contract: decisions are pure functions of
// the packet identity, independent of draw order or injector instance.
func TestDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, BER: 1e-4, DropRate: 0.01}
	a := NewInjector(cfg)
	b := NewInjector(cfg)
	// Consume b in reverse order to prove there is no hidden stream state.
	type decision struct{ corrupt, drop bool }
	got := make([]decision, 500)
	for s := 0; s < 500; s++ {
		got[s] = decision{a.Corrupt(2, uint64(s), LegResponse, 1, 9), a.Drop(2, uint64(s))}
	}
	for s := 499; s >= 0; s-- {
		want := decision{b.Corrupt(2, uint64(s), LegResponse, 1, 9), b.Drop(2, uint64(s))}
		if got[s] != want {
			t.Fatalf("serial %d: order-dependent decision %v vs %v", s, got[s], want)
		}
	}
}

func TestDecisionsVaryByIdentity(t *testing.T) {
	in := NewInjector(Config{Seed: 1, BER: 0.05})
	// With p(corrupt|17 flits) = 1-(1-0.05)^2176 ≈ 1, nearly every draw
	// fires; per-dimension variation shows up at lower flit counts.
	countTrue := func(f func(serial uint64) bool) int {
		n := 0
		for s := uint64(0); s < 2000; s++ {
			if f(s) {
				n++
			}
		}
		return n
	}
	byLink0 := countTrue(func(s uint64) bool { return in.Corrupt(0, s, LegRequest, 0, 1) })
	byLink1 := countTrue(func(s uint64) bool { return in.Corrupt(1, s, LegRequest, 0, 1) })
	byLeg := countTrue(func(s uint64) bool { return in.Corrupt(0, s, LegResponse, 0, 1) })
	byAttempt := countTrue(func(s uint64) bool { return in.Corrupt(0, s, LegRequest, 1, 1) })
	if byLink0 == 0 || byLink0 == 2000 {
		t.Fatalf("degenerate corruption count %d at BER 0.05", byLink0)
	}
	if byLink0 == byLink1 && byLink0 == byLeg && byLink0 == byAttempt {
		t.Fatal("link/leg/attempt do not influence the draw")
	}
}

func TestCorruptionRateTracksBER(t *testing.T) {
	// p(corrupt | 1 flit) = 1-(1-ber)^128 ≈ 128*ber for small ber.
	const n = 200000
	for _, ber := range []float64{1e-4, 1e-3} {
		in := NewInjector(Config{Seed: 9, BER: ber})
		hits := 0
		for s := uint64(0); s < n; s++ {
			if in.Corrupt(0, s, LegRequest, 0, 1) {
				hits++
			}
		}
		want := (1 - math.Pow(1-ber, 128)) * n
		if f := float64(hits); f < want*0.8 || f > want*1.2 {
			t.Errorf("BER %g: %d corruptions over %d draws, want ≈%.0f", ber, hits, n, want)
		}
	}
}

func TestLargerPacketsCorruptMore(t *testing.T) {
	in := NewInjector(Config{Seed: 3, BER: 5e-4})
	count := func(flits int) int {
		n := 0
		for s := uint64(0); s < 50000; s++ {
			if in.Corrupt(0, s, LegRequest, 0, flits) {
				n++
			}
		}
		return n
	}
	small, large := count(1), count(17)
	if large <= small {
		t.Fatalf("17-FLIT packets corrupted %d times vs %d for 1 FLIT; more FLITs must mean more exposure", large, small)
	}
}

func TestThresholdEdges(t *testing.T) {
	if threshold(0) != 0 {
		t.Error("p=0 must never fire")
	}
	if threshold(1) != math.MaxUint64 {
		t.Error("p=1 must map to the max threshold")
	}
	if threshold(0.5) != 1<<63 {
		t.Errorf("p=0.5 = %#x, want 1<<63", threshold(0.5))
	}
	// BER 1 corrupts every transmission of every size.
	in := NewInjector(Config{BER: 1})
	for s := uint64(0); s < 100; s++ {
		if !in.Corrupt(0, s, LegRequest, 0, 1) {
			t.Fatal("BER=1 let a packet through")
		}
	}
	// DropRate 1 drops every response.
	in = NewInjector(Config{DropRate: 1})
	for s := uint64(0); s < 100; s++ {
		if !in.Drop(0, s) {
			t.Fatal("DropRate=1 let a response through")
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{BER: -0.1},
		{BER: 1.5},
		{BER: math.NaN()},
		{DropRate: -1},
		{DropRate: 2},
		{MaxRetries: -1},
		{RetrainAfter: -2},
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Errorf("Validate accepted %+v", c)
		}
	}
	good := []Config{{}, {Seed: 5, BER: 1e-6}, {BER: 1, DropRate: 1, MaxRetries: 10, RetrainAfter: 2}}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate rejected %+v: %v", c, err)
		}
	}
}

func TestDefaults(t *testing.T) {
	var c Config
	if c.MaxRetriesOrDefault() != DefaultMaxRetries || c.RetrainAfterOrDefault() != DefaultRetrainAfter {
		t.Fatal("zero config does not resolve to defaults")
	}
	c = Config{MaxRetries: 7, RetrainAfter: 9}
	if c.MaxRetriesOrDefault() != 7 || c.RetrainAfterOrDefault() != 9 {
		t.Fatal("explicit values overridden")
	}
}
