// Package fault implements a deterministic, seeded fault injector for the
// simulated HMC serial links.
//
// Decisions are counter-based rather than stream-based: every draw is a
// pure function of (seed, link, packet serial, leg, attempt) hashed through
// splitmix64, so a given packet corrupts or survives identically no matter
// how many other packets ran before it, which worker of an
// internal/sweep pool executed the run, or how many times the run is
// repeated. That property is what makes fault sweeps byte-reproducible.
//
// Probabilities are pre-baked into 64-bit compare thresholds at injector
// construction, so the per-packet decision on the hot path is one hash and
// one compare — and with injection disabled the injector is a single
// boolean test.
package fault

import (
	"fmt"
	"math"
)

// Default retry-protocol parameters, applied when the corresponding Config
// field is zero.
const (
	// DefaultMaxRetries is the link-level retransmission budget per packet
	// leg before the device abandons it and poisons the response.
	DefaultMaxRetries = 3
	// DefaultRetrainAfter is the number of consecutive errored
	// transmissions on one link that trigger link retraining.
	DefaultRetrainAfter = 4
)

// Config parameterizes link-fault injection. The zero value disables
// injection entirely and is the default everywhere: the perfect
// interconnect the paper evaluates on.
type Config struct {
	// Seed keys every fault decision. Two runs with the same seed and the
	// same packet serial order observe byte-identical faults.
	Seed uint64
	// BER is the raw bit error rate of the serial links. Each transmission
	// of an n-FLIT packet corrupts with probability 1-(1-BER)^(128n),
	// modelling the per-packet CRC check failing.
	BER float64
	// DropRate is the per-transaction probability that the response packet
	// vanishes entirely (modelling retry-buffer overrun or a failed link
	// the retry protocol cannot recover): the host never sees a response
	// and the watchdog must notice.
	DropRate float64
	// MaxRetries bounds link retransmission rounds per packet leg before
	// the device gives up and returns a poisoned response. 0 means
	// DefaultMaxRetries.
	MaxRetries int
	// RetrainAfter is the consecutive-error count on one link that forces
	// link retraining. 0 means DefaultRetrainAfter.
	RetrainAfter int
}

// Enabled reports whether any fault can ever be injected.
func (c Config) Enabled() bool { return c.BER > 0 || c.DropRate > 0 }

// Validate rejects configurations that cannot describe probabilities.
func (c Config) Validate() error {
	switch {
	case math.IsNaN(c.BER) || c.BER < 0 || c.BER > 1:
		return fmt.Errorf("fault: bit error rate %v outside [0,1]", c.BER)
	case math.IsNaN(c.DropRate) || c.DropRate < 0 || c.DropRate > 1:
		return fmt.Errorf("fault: drop rate %v outside [0,1]", c.DropRate)
	case c.MaxRetries < 0:
		return fmt.Errorf("fault: negative retry budget %d", c.MaxRetries)
	case c.RetrainAfter < 0:
		return fmt.Errorf("fault: negative retrain threshold %d", c.RetrainAfter)
	}
	return nil
}

// MaxRetriesOrDefault resolves the retry budget.
func (c Config) MaxRetriesOrDefault() int {
	if c.MaxRetries == 0 {
		return DefaultMaxRetries
	}
	return c.MaxRetries
}

// RetrainAfterOrDefault resolves the retraining threshold.
func (c Config) RetrainAfterOrDefault() int {
	if c.RetrainAfter == 0 {
		return DefaultRetrainAfter
	}
	return c.RetrainAfter
}

// Packet legs a fault decision can apply to. Request and response draws are
// independent: the same serial can survive downstream and corrupt upstream.
const (
	LegRequest  uint8 = 1
	LegResponse uint8 = 2
	legDrop     uint8 = 3
)

// maxFlits is the largest packet a draw distinguishes: 16 data FLITs
// (256 B) plus one control FLIT.
const maxFlits = 17

// Injector makes per-packet fault decisions. It is a value type with no
// internal state: copy it freely, share it across goroutines.
type Injector struct {
	seed    uint64
	enabled bool
	drop    uint64
	// corrupt[f] is the compare threshold for one transmission of an
	// f-FLIT packet: a draw below it fails the CRC check.
	corrupt [maxFlits + 1]uint64
}

// NewInjector bakes cfg's probabilities into compare thresholds.
func NewInjector(cfg Config) Injector {
	in := Injector{seed: cfg.Seed, enabled: cfg.Enabled()}
	if !in.enabled {
		return in
	}
	in.drop = threshold(cfg.DropRate)
	for f := 1; f <= maxFlits; f++ {
		in.corrupt[f] = threshold(1 - math.Pow(1-cfg.BER, float64(f)*128))
	}
	return in
}

// Enabled reports whether the injector can ever fire. Callers branch on
// this to keep the no-fault hot path allocation- and draw-free.
func (in *Injector) Enabled() bool { return in.enabled }

// Corrupt decides whether one transmission attempt of a packet fails its
// CRC check. The decision depends only on the packet's identity, never on
// prior draws.
func (in *Injector) Corrupt(link int, serial uint64, leg uint8, attempt, flits int) bool {
	if !in.enabled {
		return false
	}
	if flits > maxFlits {
		flits = maxFlits
	}
	if flits < 1 {
		flits = 1
	}
	return in.draw(link, serial, leg, attempt) < in.corrupt[flits]
}

// Drop decides whether a transaction's response vanishes entirely.
func (in *Injector) Drop(link int, serial uint64) bool {
	if !in.enabled || in.drop == 0 {
		return false
	}
	return in.draw(link, serial, legDrop, 0) < in.drop
}

// draw hashes the packet identity into a uniform 64-bit value.
func (in *Injector) draw(link int, serial uint64, leg uint8, attempt int) uint64 {
	h := splitmix64(in.seed ^ serial)
	h = splitmix64(h ^ (uint64(link)<<16 | uint64(leg)<<8 | uint64(attempt)))
	return h
}

// threshold maps a probability to the 64-bit value below which a uniform
// draw counts as a hit.
func threshold(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	v := math.Ldexp(p, 64)
	if v >= math.Ldexp(1, 64) {
		return math.MaxUint64
	}
	return uint64(v)
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-mixed 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
