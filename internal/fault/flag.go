package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseFlag decodes the shared -faults CLI syntax: comma-separated
// key=value pairs, e.g. "seed=1,ber=1e-6,drop=1e-7,retries=3". An empty
// string yields the zero Config (injection disabled). The result is
// validated before it is returned.
func ParseFlag(s string) (Config, error) {
	var cfg Config
	if s == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return cfg, fmt.Errorf("fault: %q is not key=value", kv)
		}
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseUint(val, 0, 64)
		case "ber":
			cfg.BER, err = strconv.ParseFloat(val, 64)
		case "drop":
			cfg.DropRate, err = strconv.ParseFloat(val, 64)
		case "retries":
			cfg.MaxRetries, err = strconv.Atoi(val)
		default:
			return cfg, fmt.Errorf("fault: unknown key %q (want seed, ber, drop, retries)", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("fault: %s: %w", key, err)
		}
	}
	return cfg, cfg.Validate()
}
