package sortnet

import (
	"reflect"
	"testing"
)

func TestPerStageFoldMatchesFigure7(t *testing.T) {
	// §4.1 / Figure 7: the 10 steps of the n=16 network fold into 4 stages
	// with 2, 2, 3, 3 steps; stage fill cost 3τ, buffers 64.
	net := MustNew(16)
	p, err := NewPipeline(net, PerStage, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.StageDepths(); !reflect.DeepEqual(got, []int{2, 2, 3, 3}) {
		t.Fatalf("StageDepths() = %v, want [2 2 3 3]", got)
	}
	if got := p.NumStages(); got != 4 {
		t.Errorf("NumStages() = %d, want 4", got)
	}
	if got := p.IntervalCycles(); got != 3*DefaultStepCycles {
		t.Errorf("IntervalCycles() = %d, want %d", got, 3*DefaultStepCycles)
	}
	if got := p.FullLatencyCycles(); got != 10*DefaultStepCycles {
		t.Errorf("FullLatencyCycles() = %d, want %d", got, 10*DefaultStepCycles)
	}
	if got := p.Buffers(); got != 64 {
		t.Errorf("Buffers() = %d, want 64", got)
	}
}

func TestPerStepFold(t *testing.T) {
	// §4.1: one pipeline stage per comparator step → 10 stages, interval τ,
	// 160 request buffers, full 63 comparators.
	net := MustNew(16)
	p, err := NewPipeline(net, PerStep, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.NumStages(); got != 10 {
		t.Errorf("NumStages() = %d, want 10", got)
	}
	if got := p.IntervalCycles(); got != DefaultStepCycles {
		t.Errorf("IntervalCycles() = %d, want %d", got, DefaultStepCycles)
	}
	if got := p.Buffers(); got != 160 {
		t.Errorf("Buffers() = %d, want 160", got)
	}
	if got := p.ComparatorCost(); got != 63 {
		t.Errorf("ComparatorCost() = %d, want 63", got)
	}
}

func TestPerStageComparatorReuse(t *testing.T) {
	// Folding must strictly reduce comparator hardware versus per-step.
	net := MustNew(16)
	perStep, _ := NewPipeline(net, PerStep, 0)
	perStage, _ := NewPipeline(net, PerStage, 0)
	if perStage.ComparatorCost() >= perStep.ComparatorCost() {
		t.Errorf("PerStage cost %d not below PerStep cost %d",
			perStage.ComparatorCost(), perStep.ComparatorCost())
	}
	// Buffers shrink 160 → 64 but the 2τ extra fill delay appears:
	// interval grows from τ to 3τ.
	if perStage.IntervalCycles()-perStep.IntervalCycles() != 2*DefaultStepCycles {
		t.Errorf("interval delta = %d, want 2τ", perStage.IntervalCycles()-perStep.IntervalCycles())
	}
}

func TestLatencyStageSelect(t *testing.T) {
	net := MustNew(16)
	p, _ := NewPipeline(net, PerStage, 0)
	tau := uint64(DefaultStepCycles)
	cases := []struct {
		m    int
		want uint64
	}{
		{0, 0},
		{1, 0},
		{2, 2 * tau},   // 1 merge stage = 1 step, covered by pipeline stage of depth 2
		{4, 4 * tau},   // 2 merge stages = 3 steps → two pipeline stages (2+2)
		{8, 7 * tau},   // 3 merge stages = 6 steps → three pipeline stages (2+2+3)
		{16, 10 * tau}, // full traversal
	}
	for _, c := range cases {
		if got := p.LatencyCycles(c.m); got != c.want {
			t.Errorf("LatencyCycles(%d) = %d, want %d", c.m, got, c.want)
		}
	}
}

func TestLatencyMonotoneInRequests(t *testing.T) {
	net := MustNew(16)
	for _, fold := range []Fold{PerStep, PerStage} {
		p, err := NewPipeline(net, fold, 0)
		if err != nil {
			t.Fatal(err)
		}
		prev := uint64(0)
		for m := 0; m <= 16; m++ {
			got := p.LatencyCycles(m)
			if got < prev {
				t.Errorf("fold %d: LatencyCycles(%d) = %d < previous %d", fold, m, got, prev)
			}
			prev = got
		}
	}
}

func TestIntervalAtPaperClock(t *testing.T) {
	// §4.1: 3τ ≈ 3.64 ns at 3.3 GHz with τ = 4 cycles.
	net := MustNew(16)
	p, _ := NewPipeline(net, PerStage, 0)
	ns := float64(p.IntervalCycles()) / 3.3
	if ns < 3.5 || ns > 3.8 {
		t.Errorf("interval = %.2f ns at 3.3 GHz, want ≈3.64", ns)
	}
}

func TestCustomStepCycles(t *testing.T) {
	net := MustNew(8)
	p, err := NewPipeline(net, PerStep, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.StepCycles(); got != 2 {
		t.Errorf("StepCycles() = %d, want 2", got)
	}
	if got := p.FullLatencyCycles(); got != uint64(net.Depth())*2 {
		t.Errorf("FullLatencyCycles() = %d, want %d", got, net.Depth()*2)
	}
}

func TestFenceDrainCycles(t *testing.T) {
	net := MustNew(16)
	p, _ := NewPipeline(net, PerStage, 0)
	if got := p.FenceDrainCycles(); got != p.FullLatencyCycles()+p.IntervalCycles() {
		t.Errorf("FenceDrainCycles() = %d", got)
	}
}

func TestBadFold(t *testing.T) {
	if _, err := NewPipeline(MustNew(8), Fold(99), 0); err == nil {
		t.Fatal("NewPipeline with bad fold succeeded")
	}
}

func TestPerStageFoldWidth32(t *testing.T) {
	// n=32: 5 merge stages, 15 steps → even fold of 3 steps per stage.
	net := MustNew(32)
	p, err := NewPipeline(net, PerStage, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.StageDepths(); !reflect.DeepEqual(got, []int{3, 3, 3, 3, 3}) {
		t.Fatalf("StageDepths() = %v, want [3 3 3 3 3]", got)
	}
	if got := p.Buffers(); got != 5*32 {
		t.Errorf("Buffers() = %d, want 160", got)
	}
}

func TestComparatorCostMonotoneInFold(t *testing.T) {
	for _, n := range []int{8, 16, 32, 64} {
		net := MustNew(n)
		perStep, _ := NewPipeline(net, PerStep, 0)
		perStage, _ := NewPipeline(net, PerStage, 0)
		if perStep.ComparatorCost() != net.Comparators() {
			t.Errorf("n=%d: per-step cost %d != total %d", n, perStep.ComparatorCost(), net.Comparators())
		}
		if perStage.ComparatorCost() > perStep.ComparatorCost() {
			t.Errorf("n=%d: per-stage cost above per-step", n)
		}
		if perStage.FullLatencyCycles() != perStep.FullLatencyCycles() {
			t.Errorf("n=%d: full traversal latency differs between folds", n)
		}
	}
}
