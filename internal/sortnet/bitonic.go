package sortnet

import (
	"fmt"
	"math/bits"
)

// NewBitonic constructs Batcher's bitonic sorting network for n = 2^k
// inputs. The paper selects odd–even mergesort over bitonic sort because it
// needs fewer comparators at the same O(log² n) depth (§3.3); this
// constructor exists to make that comparison measurable — see
// TestOddEvenBeatsBitonic and BenchmarkAblationSorterAlgorithm.
//
// Bitonic networks contain descending comparators (Comparator.Down), which
// Sort honors; the resulting order is still non-decreasing overall.
func NewBitonic(n int) (*Network, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("sortnet: width %d is not a power of two ≥ 2", n)
	}
	net := &Network{n: n}
	stage := 0
	for k := 2; k <= n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			var step []Comparator
			for i := 0; i < n; i++ {
				l := i ^ j
				if l <= i {
					continue
				}
				// Within a k-block the direction alternates: ascending when
				// bit k of i is clear, descending otherwise.
				step = append(step, Comparator{I: i, J: l, Down: i&k != 0})
			}
			net.steps = append(net.steps, step)
			net.stage = append(net.stage, stage)
		}
		stage++
	}
	return net, nil
}

// MustNewBitonic is NewBitonic but panics on error.
func MustNewBitonic(n int) *Network {
	net, err := NewBitonic(n)
	if err != nil {
		panic(err)
	}
	return net
}

// BitonicComparators returns the comparator count formula for a bitonic
// network of width n = 2^k: n/2 × k(k+1)/2.
func BitonicComparators(n int) int {
	k := bits.TrailingZeros(uint(n))
	return n / 2 * k * (k + 1) / 2
}
