package sortnet

import "fmt"

// DefaultStepCycles is τ from §4.1: each parallel step performs a fully
// parallel compare (2 cycles) and exchange (2 cycles).
const DefaultStepCycles = 4

// Pipeline folds the comparator steps of a Network into hardware pipeline
// stages and prices traversals in clock cycles (paper §4.1).
//
// Two folds matter in the paper for n = 16:
//
//	PerStep:  10 pipeline stages, one per comparator step. Fastest
//	          (initiation interval τ) but needs a buffer row and a
//	          comparator set per step (160 buffers for n=16).
//	PerStage: 4 pipeline stages with step depths {2,2,3,3}; buffers and
//	          comparators are reused across the steps of a stage. Adds a
//	          2τ fill delay but quarters the buffer cost.
type Pipeline struct {
	net        *Network
	depths     []int  // comparator steps per pipeline stage
	stepCycles uint64 // τ
}

// Fold selects how comparator steps map onto pipeline stages.
type Fold int

// Supported folds.
const (
	// PerStep gives every comparator step its own pipeline stage.
	PerStep Fold = iota
	// PerStage distributes the steps evenly over Stages() pipeline stages,
	// with the deeper groups at the tail — the optimized design of §4.1.
	PerStage
)

// NewPipeline builds the pipeline model for net with the given fold.
// stepCycles is τ; pass 0 for the paper default of 4 cycles.
func NewPipeline(net *Network, fold Fold, stepCycles uint64) (*Pipeline, error) {
	if stepCycles == 0 {
		stepCycles = DefaultStepCycles
	}
	p := &Pipeline{net: net, stepCycles: stepCycles}
	switch fold {
	case PerStep:
		p.depths = make([]int, net.Depth())
		for i := range p.depths {
			p.depths[i] = 1
		}
	case PerStage:
		stages := net.Stages()
		total := net.Depth()
		base := total / stages
		rem := total % stages
		p.depths = make([]int, stages)
		for i := range p.depths {
			p.depths[i] = base
			// Put the surplus steps at the tail so the early stages stay
			// shallow, matching the {2,2,3,3} layout of Figure 7.
			if i >= stages-rem {
				p.depths[i]++
			}
		}
	default:
		return nil, fmt.Errorf("sortnet: unknown fold %d", fold)
	}
	return p, nil
}

// StageDepths returns the number of comparator steps per pipeline stage.
func (p *Pipeline) StageDepths() []int {
	out := make([]int, len(p.depths))
	copy(out, p.depths)
	return out
}

// NumStages returns the pipeline depth in stages.
func (p *Pipeline) NumStages() int { return len(p.depths) }

// StepCycles returns τ in clock cycles.
func (p *Pipeline) StepCycles() uint64 { return p.stepCycles }

// LatencyCycles returns the time for one sequence of m valid requests to
// traverse the pipeline, honoring stage-select: merge stages beyond
// StagesNeeded(m) are disabled and skipped (§3.3). The traversal cost of an
// enabled pipeline stage is its step depth × τ.
func (p *Pipeline) LatencyCycles(m int) uint64 {
	needSteps := stepsForStages(StagesNeeded(m))
	var cycles uint64
	covered := 0
	for _, d := range p.depths {
		if covered >= needSteps {
			break
		}
		cycles += uint64(d) * p.stepCycles
		covered += d
	}
	return cycles
}

// IntervalCycles returns the initiation interval: a new sequence can enter
// the pipeline once the first (deepest) stage drains, i.e. max stage depth
// × τ. For the 4-stage n=16 fold this is 3τ (§4.1).
func (p *Pipeline) IntervalCycles() uint64 {
	max := 0
	for _, d := range p.depths {
		if d > max {
			max = d
		}
	}
	return uint64(max) * p.stepCycles
}

// FullLatencyCycles returns the fill time for a full-width sequence.
func (p *Pipeline) FullLatencyCycles() uint64 {
	return p.LatencyCycles(p.net.Width())
}

// Buffers returns the request-buffer cost of the pipeline: each pipeline
// stage holds one full sequence (n requests). The paper's 10-stage n=16
// pipeline needs 160 buffers, the 4-stage fold 64 (§4.1).
func (p *Pipeline) Buffers() int { return len(p.depths) * p.net.Width() }

// ComparatorCost returns the comparator hardware cost: within a pipeline
// stage the comparator set is reused across steps, so each stage needs the
// maximum per-step comparator count among its steps.
func (p *Pipeline) ComparatorCost() int {
	per := p.net.StepComparators()
	total, idx := 0, 0
	for _, d := range p.depths {
		max := 0
		for i := 0; i < d; i++ {
			if per[idx] > max {
				max = per[idx]
			}
			idx++
		}
		total += max
	}
	return total
}

// stepsForStages returns how many comparator steps the first `stages` merge
// stages contain: 1+2+…+stages.
func stepsForStages(stages int) int {
	return stages * (stages + 1) / 2
}

// FenceDrainCycles returns the cost of a memory fence: the fence
// monopolizes one entire pipeline stage (§3.4), so following requests are
// delayed by one initiation interval on top of the drain of everything in
// flight (a full traversal).
func (p *Pipeline) FenceDrainCycles() uint64 {
	return p.FullLatencyCycles() + p.IntervalCycles()
}
