// Package sortnet implements Batcher's odd–even mergesort network and the
// pipelined request sorting model from paper §3.3 and §4.1.
//
// The network for n = 2^k inputs consists of k merge stages; merge stage s
// (1-based) has s parallel comparator steps, so the whole network has
// k(k+1)/2 steps. For the paper's n = 16 this gives 4 stages, 10 steps and
// 63 comparators (Figure 4).
//
// The package is pure: it knows nothing about memory requests. Callers sort
// raw uint64 keys (the extended addresses of internal/trace) and move their
// own payload through the swap callback.
package sortnet

import (
	"fmt"
	"math/bits"
)

// Comparator is a compare-and-exchange element between wires I < J. After
// the operation the smaller key is on wire I — unless Down is set
// (descending comparator, used by bitonic networks), in which case the
// larger key lands on wire I.
type Comparator struct {
	I, J int
	Down bool
}

// Network is an odd–even mergesort network for a fixed power-of-two width.
type Network struct {
	n     int
	steps [][]Comparator // parallel layers, in execution order
	stage []int          // merge stage (0-based) of each step
}

// New constructs the odd–even mergesort network for n inputs. n must be a
// power of two and at least 2.
func New(n int) (*Network, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("sortnet: width %d is not a power of two ≥ 2", n)
	}
	net := &Network{n: n}
	stage := 0
	// Iterative Batcher construction: outer loop p enumerates merge stages
	// (merging sorted runs of length p), inner loop k enumerates the
	// parallel steps of that merge.
	for p := 1; p < n; p *= 2 {
		for k := p; k >= 1; k /= 2 {
			var step []Comparator
			for j := k % p; j <= n-1-k; j += 2 * k {
				for i := 0; i < k && i+j+k < n; i++ {
					if (i+j)/(2*p) == (i+j+k)/(2*p) {
						step = append(step, Comparator{I: i + j, J: i + j + k})
					}
				}
			}
			net.steps = append(net.steps, step)
			net.stage = append(net.stage, stage)
		}
		stage++
	}
	return net, nil
}

// MustNew is New but panics on error; for widths known good at compile time.
func MustNew(n int) *Network {
	net, err := New(n)
	if err != nil {
		panic(err)
	}
	return net
}

// Width returns the number of input wires n.
func (net *Network) Width() int { return net.n }

// Depth returns the number of parallel comparator steps (k(k+1)/2).
func (net *Network) Depth() int { return len(net.steps) }

// Stages returns the number of merge stages (log2 n).
func (net *Network) Stages() int { return bits.TrailingZeros(uint(net.n)) }

// Comparators returns the total comparator count of the network.
func (net *Network) Comparators() int {
	total := 0
	for _, s := range net.steps {
		total += len(s)
	}
	return total
}

// Step returns the comparators of parallel step i (0-based). The returned
// slice must not be modified.
func (net *Network) Step(i int) []Comparator { return net.steps[i] }

// StageOfStep returns the 0-based merge stage that step i belongs to.
func (net *Network) StageOfStep(i int) int { return net.stage[i] }

// StepsOfStage returns how many parallel steps merge stage s (0-based)
// contains. For odd–even mergesort this is always s+1.
func (net *Network) StepsOfStage(s int) int {
	count := 0
	for _, st := range net.stage {
		if st == s {
			count++
		}
	}
	return count
}

// StepComparators returns the comparator count of each parallel step.
func (net *Network) StepComparators() []int {
	out := make([]int, len(net.steps))
	for i, s := range net.steps {
		out[i] = len(s)
	}
	return out
}

// Sort runs the network over keys in place, sorting them into
// non-decreasing order. len(keys) must equal Width. If swap is non-nil it
// is invoked for every exchange so callers can permute attached payload in
// lockstep.
func (net *Network) Sort(keys []uint64, swap func(i, j int)) {
	if len(keys) != net.n {
		panic(fmt.Sprintf("sortnet: Sort on %d keys, network width %d", len(keys), net.n))
	}
	for _, step := range net.steps {
		for _, c := range step {
			exchange := keys[c.I] > keys[c.J]
			if c.Down {
				exchange = keys[c.I] < keys[c.J]
			}
			if exchange {
				keys[c.I], keys[c.J] = keys[c.J], keys[c.I]
				if swap != nil {
					swap(c.I, c.J)
				}
			}
		}
	}
}

// SortPrefix sorts m valid keys held in keys[:m] by padding keys[m:n] with
// pad (which must compare ≥ every valid key, e.g. the Valid-bit padding key
// of paper §3.4) and running the full network. It reports how many merge
// stages the stage-select logic would actually enable for m requests.
func (net *Network) SortPrefix(keys []uint64, m int, pad uint64, swap func(i, j int)) int {
	if m < 0 || m > net.n {
		panic(fmt.Sprintf("sortnet: SortPrefix m=%d out of range [0,%d]", m, net.n))
	}
	for i := m; i < net.n; i++ {
		keys[i] = pad
	}
	net.Sort(keys[:net.n], swap)
	return StagesNeeded(m)
}

// StagesNeeded returns how many merge stages suffice to sort m requests:
// ceil(log2 m), with 0 for m ≤ 1. This is the stage-select optimization of
// §3.3: with m ≤ n/2 the final stage is disabled, with m ≤ n/4 the last
// two, and so on.
func StagesNeeded(m int) int {
	if m <= 1 {
		return 0
	}
	return bits.Len(uint(m - 1))
}
