package sortnet

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadWidths(t *testing.T) {
	for _, n := range []int{0, 1, 3, 6, 12, 100} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d) succeeded, want error", n)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(3) did not panic")
		}
	}()
	MustNew(3)
}

func TestPaperNetworkShape(t *testing.T) {
	// Figure 4 and §4.1: n=16 → 4 merge stages, 10 steps, 63 comparators.
	net := MustNew(16)
	if got := net.Stages(); got != 4 {
		t.Errorf("Stages() = %d, want 4", got)
	}
	if got := net.Depth(); got != 10 {
		t.Errorf("Depth() = %d, want 10", got)
	}
	if got := net.Comparators(); got != 63 {
		t.Errorf("Comparators() = %d, want 63", got)
	}
	// Merge stage s (1-based) has s steps.
	for s := 0; s < net.Stages(); s++ {
		if got := net.StepsOfStage(s); got != s+1 {
			t.Errorf("StepsOfStage(%d) = %d, want %d", s, got, s+1)
		}
	}
}

func TestDepthFormula(t *testing.T) {
	// Depth of odd-even mergesort for n=2^k is k(k+1)/2 (§3.3).
	for k := 1; k <= 7; k++ {
		n := 1 << k
		net := MustNew(n)
		want := k * (k + 1) / 2
		if got := net.Depth(); got != want {
			t.Errorf("n=%d: Depth() = %d, want %d", n, got, want)
		}
		if got := net.Stages(); got != k {
			t.Errorf("n=%d: Stages() = %d, want %d", n, got, k)
		}
	}
}

func TestComparatorIndexInvariants(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		net := MustNew(n)
		for si := 0; si < net.Depth(); si++ {
			used := make(map[int]bool)
			for _, c := range net.Step(si) {
				if c.I >= c.J {
					t.Fatalf("n=%d step %d: comparator %+v not ordered", n, si, c)
				}
				if c.I < 0 || c.J >= n {
					t.Fatalf("n=%d step %d: comparator %+v out of range", n, si, c)
				}
				// Each wire participates in at most one comparator per step,
				// which is what makes the step executable in parallel.
				if used[c.I] || used[c.J] {
					t.Fatalf("n=%d step %d: wire reused in %+v", n, si, c)
				}
				used[c.I], used[c.J] = true, true
			}
		}
	}
}

// TestZeroOnePrinciple exhaustively sorts every 0-1 sequence. By the 0-1
// principle, a comparator network that sorts all 2^n binary sequences sorts
// all sequences.
func TestZeroOnePrinciple(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		net := MustNew(n)
		keys := make([]uint64, n)
		for mask := 0; mask < 1<<n; mask++ {
			ones := 0
			for i := 0; i < n; i++ {
				keys[i] = uint64(mask >> i & 1)
				ones += mask >> i & 1
			}
			net.Sort(keys, nil)
			for i := 0; i < n; i++ {
				want := uint64(0)
				if i >= n-ones {
					want = 1
				}
				if keys[i] != want {
					t.Fatalf("n=%d mask=%b: position %d = %d, want %d", n, mask, i, keys[i], want)
				}
			}
		}
	}
}

func TestSortMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 8, 16, 64, 128} {
		net := MustNew(n)
		for trial := 0; trial < 50; trial++ {
			keys := make([]uint64, n)
			for i := range keys {
				keys[i] = rng.Uint64() >> uint(rng.Intn(60)) // mix of magnitudes, duplicates
			}
			want := append([]uint64(nil), keys...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			net.Sort(keys, nil)
			if !reflect.DeepEqual(keys, want) {
				t.Fatalf("n=%d trial %d: network sort != stdlib sort", n, trial)
			}
		}
	}
}

func TestSortIsPermutationWithPayload(t *testing.T) {
	net := MustNew(16)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		keys := make([]uint64, 16)
		payload := make([]int, 16)
		orig := map[uint64]int{}
		for i := range keys {
			keys[i] = uint64(rng.Intn(8)) // heavy duplicates
			payload[i] = i
			orig[keys[i]]++
		}
		wantPayloadKeys := make([]uint64, 16)
		copy(wantPayloadKeys, keys)
		net.Sort(keys, func(i, j int) { payload[i], payload[j] = payload[j], payload[i] })
		// keys must be a sorted permutation of the originals.
		got := map[uint64]int{}
		for i, k := range keys {
			got[k]++
			if i > 0 && keys[i-1] > k {
				return false
			}
			// payload moved in lockstep: payload[i] names the original slot.
			if wantPayloadKeys[payload[i]] != k {
				return false
			}
		}
		return reflect.DeepEqual(orig, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSortPanicsOnWidthMismatch(t *testing.T) {
	net := MustNew(8)
	defer func() {
		if recover() == nil {
			t.Fatal("Sort with wrong width did not panic")
		}
	}()
	net.Sort(make([]uint64, 4), nil)
}

func TestSortPrefixPadsAndSorts(t *testing.T) {
	net := MustNew(16)
	const pad = ^uint64(0)
	keys := make([]uint64, 16)
	vals := []uint64{900, 3, 77, 12, 5}
	copy(keys, vals)
	stages := net.SortPrefix(keys, len(vals), pad, nil)
	if stages != 3 { // 5 requests need ceil(log2 5) = 3 merge stages
		t.Errorf("stages = %d, want 3", stages)
	}
	want := []uint64{3, 5, 12, 77, 900}
	for i, w := range want {
		if keys[i] != w {
			t.Fatalf("keys[%d] = %d, want %d", i, keys[i], w)
		}
	}
	for i := len(vals); i < 16; i++ {
		if keys[i] != pad {
			t.Fatalf("keys[%d] = %d, want padding", i, keys[i])
		}
	}
}

func TestSortPrefixBoundsCheck(t *testing.T) {
	net := MustNew(8)
	defer func() {
		if recover() == nil {
			t.Fatal("SortPrefix with m>n did not panic")
		}
	}()
	net.SortPrefix(make([]uint64, 8), 9, ^uint64(0), nil)
}

func TestStagesNeeded(t *testing.T) {
	cases := []struct{ m, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {16, 4}, {17, 5}, {32, 5},
	}
	for _, c := range cases {
		if got := StagesNeeded(c.m); got != c.want {
			t.Errorf("StagesNeeded(%d) = %d, want %d", c.m, got, c.want)
		}
	}
}

func TestBitonicZeroOnePrinciple(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		net := MustNewBitonic(n)
		keys := make([]uint64, n)
		for mask := 0; mask < 1<<n; mask++ {
			ones := 0
			for i := 0; i < n; i++ {
				keys[i] = uint64(mask >> i & 1)
				ones += mask >> i & 1
			}
			net.Sort(keys, nil)
			for i := 0; i < n; i++ {
				want := uint64(0)
				if i >= n-ones {
					want = 1
				}
				if keys[i] != want {
					t.Fatalf("n=%d mask=%b: position %d = %d, want %d", n, mask, i, keys[i], want)
				}
			}
		}
	}
}

func TestBitonicMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{8, 16, 64} {
		net := MustNewBitonic(n)
		for trial := 0; trial < 30; trial++ {
			keys := make([]uint64, n)
			for i := range keys {
				keys[i] = rng.Uint64() >> uint(rng.Intn(58))
			}
			want := append([]uint64(nil), keys...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			net.Sort(keys, nil)
			if !reflect.DeepEqual(keys, want) {
				t.Fatalf("n=%d: bitonic sort != stdlib sort", n)
			}
		}
	}
}

// TestOddEvenBeatsBitonic checks the §3.3 selection argument: the odd-even
// mergesort needs fewer comparators than bitonic sort at equal depth.
func TestOddEvenBeatsBitonic(t *testing.T) {
	for k := 1; k <= 7; k++ {
		n := 1 << k
		oe := MustNew(n)
		bi := MustNewBitonic(n)
		if bi.Comparators() != BitonicComparators(n) {
			t.Errorf("n=%d: bitonic comparators %d != formula %d",
				n, bi.Comparators(), BitonicComparators(n))
		}
		if oe.Depth() != bi.Depth() {
			t.Errorf("n=%d: depths differ %d vs %d", n, oe.Depth(), bi.Depth())
		}
		if n >= 4 && oe.Comparators() >= bi.Comparators() {
			t.Errorf("n=%d: odd-even %d comparators not below bitonic %d",
				n, oe.Comparators(), bi.Comparators())
		}
	}
	// The paper's n=16 numbers: 63 vs 80.
	if got := MustNewBitonic(16).Comparators(); got != 80 {
		t.Errorf("bitonic n=16 comparators = %d, want 80", got)
	}
}

func TestBitonicRejectsBadWidths(t *testing.T) {
	if _, err := NewBitonic(6); err == nil {
		t.Error("NewBitonic(6) succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewBitonic(3) did not panic")
		}
	}()
	MustNewBitonic(3)
}

func TestBitonicPipelineFolds(t *testing.T) {
	net := MustNewBitonic(16)
	p, err := NewPipeline(net, PerStage, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumStages() != 4 {
		t.Errorf("bitonic per-stage fold = %d stages, want 4", p.NumStages())
	}
	if p.Buffers() != 64 {
		t.Errorf("Buffers = %d, want 64", p.Buffers())
	}
}
