package coalescer

import (
	"hmccoal/internal/invariant"
	"hmccoal/internal/mshr"
	"hmccoal/internal/trace"
)

// flushCause records what closed an input sequence, so the flush-rate
// statistics can distinguish timeout expiries from fence-forced drains.
type flushCause int

const (
	flushFull    flushCause = iota // sequence reached full width
	flushTimeout                   // input-buffer timeout expired
	flushFence                     // a memory fence forced the drain
	flushDrain                     // end-of-run Drain forced the drain
)

// flush closes the pending input sequence and runs it through the sorting
// pipeline and the DMC unit. now is the flush trigger tick; cause is what
// closed the sequence.
func (c *Coalescer) flush(now uint64, cause flushCause) {
	batch := c.pending
	// The buffer is reused for the next sequence; batch stays valid for the
	// rest of this flush because nothing can Push before it returns.
	c.pending = c.pending[:0]
	m := len(batch)
	if m == 0 {
		return
	}
	c.stats.Batches++
	c.stats.BatchRequests += uint64(m)
	switch cause {
	case flushFull:
		c.stats.FullFlushes++
	case flushTimeout:
		c.stats.TimeoutFlushes++
	case flushFence:
		c.stats.FenceFlushes++
	case flushDrain:
		c.stats.DrainFlushes++
	}

	// The sequence enters the sorter when its first stage is free; the
	// pipelined network accepts a new sequence every initiation interval.
	enter := now
	if c.sortFree > enter {
		enter = c.sortFree
	}
	c.sortFree = enter + c.pipe.IntervalCycles()

	// Sort by the extended 54-bit key (§3.4): Type bit above the address
	// separates loads from stores; invalid padding sinks to the tail. The
	// Width-sized working arrays are reused across flushes; stale entries
	// past m carry pad keys and sink below every real request.
	keys := c.flushKeys
	for i, r := range batch {
		kind := trace.Load
		if r.Write {
			kind = trace.Store
		}
		keys[i] = uint64(trace.MakeKey(r.Line, kind))
	}
	padded := c.flushPad
	copy(padded, batch)
	c.net.SortPrefix(keys, m, uint64(trace.InvalidKey()), c.padSwap)
	sorted := padded[:m]
	sortedAt := enter + c.pipe.LatencyCycles(m)
	c.stats.SortCycles += c.pipe.LatencyCycles(m)

	// First-phase coalescing (§3.5): the DMC takes the smallest request as
	// the base, compares it with the following requests in parallel
	// (CompareCycles per group) and merges every identical/contiguous
	// same-type request (MergeCycles each) until the packet would exceed
	// the maximum HMC request or cross a block boundary.
	var cost uint64
	var chunks [maxChunks]chunk
	i := 0
	for i < m {
		base := sorted[i]
		blockStart := base.Line / c.linesBlock * c.linesBlock
		end := base.Line + 1
		targets := append(c.getTargets(), mshr.Target{Line: base.Line, Token: base.Token, Payload: base.Payload})
		cost += c.cfg.CompareCycles
		critical := base.Critical
		j := i + 1
		for j < m && sorted[j].Write == base.Write {
			ln := sorted[j].Line
			if ln >= end {
				extendable := ln == end &&
					ln < blockStart+c.linesBlock &&
					end-base.Line < uint64(mshr.MaxLines)
				if !extendable {
					break
				}
				end = ln + 1
			}
			cost += c.cfg.MergeCycles
			c.stats.FirstPhaseMerges++
			critical = critical || sorted[j].Critical
			targets = append(targets, mshr.Target{Line: ln, Token: sorted[j].Token, Payload: sorted[j].Payload})
			j++
		}
		ready := sortedAt + cost
		nChunks := splitPacket(base.Line, int(end-base.Line), &chunks)
		if nChunks == 1 {
			// Common case: the whole group is one legal packet — hand the
			// target slice over without copying.
			c.enqueuePacket(ready, packet{
				baseLine: chunks[0].base, lines: chunks[0].len, write: base.Write,
				targets: targets, ready: ready, cpu: base.CPU, critical: critical,
			})
		} else {
			for ci := 0; ci < nChunks; ci++ {
				ch := chunks[ci]
				pkt := packet{baseLine: ch.base, lines: ch.len, write: base.Write, ready: ready,
					targets: c.getTargets(), cpu: base.CPU, critical: critical}
				for _, t := range targets {
					if t.Line >= ch.base && t.Line < ch.base+uint64(ch.len) {
						pkt.targets = append(pkt.targets, t)
					}
				}
				c.enqueuePacket(ready, pkt)
			}
			c.putTargets(targets)
		}
		i = j
	}
	c.stats.DMCCycles += cost
	c.adaptTimeout(c.pipe.LatencyCycles(m) + cost)

	// Per-request coalescer latency (Figure 14): input-buffer wait plus
	// sorting plus DMC processing, ending when the packet reaches the CRQ.
	done := sortedAt + cost
	for _, r := range batch {
		c.stats.RequestLatency += done - r.pushTick
	}
	c.stats.LatencySamples += uint64(m)

	c.drainCRQ(now)
}

type chunk struct {
	base uint64
	len  int
}

// maxChunks bounds splitPacket's output: a DMC group spans at most
// mshr.MaxLines (4) lines, which splits into at most 2+1 chunks.
const maxChunks = 3

// splitPacket breaks a contiguous line run into legal HMC packet sizes
// (4, 2 or 1 cache lines → 256/128/64 B), filling out and returning the
// chunk count.
func splitPacket(base uint64, length int, out *[maxChunks]chunk) int {
	n := 0
	for length > 0 {
		size := 1
		switch {
		case length >= 4:
			size = 4
		case length >= 2:
			size = 2
		}
		out[n] = chunk{base: base, len: size}
		n++
		base += uint64(size)
		length -= size
	}
	return n
}

// enqueuePacket routes a packet into the CRQ. In degraded mode the DMC
// caps packet size at one cache line: a multi-line packet is split into
// single-line packets before queuing, trading the coalescing win for a
// smaller retransmission unit on the errored link.
func (c *Coalescer) enqueuePacket(now uint64, p packet) {
	if !c.degraded || p.lines <= 1 {
		c.enqueueOne(now, p)
		return
	}
	c.stats.DegradedSplits++
	for ln := p.baseLine; ln < p.baseLine+uint64(p.lines); ln++ {
		var targets []mshr.Target
		for _, t := range p.targets {
			if t.Line == ln {
				if targets == nil {
					targets = c.getTargets()
				}
				targets = append(targets, t)
			}
		}
		if targets == nil {
			continue // no waiter on this line: nothing to fetch
		}
		c.enqueueOne(now, packet{
			baseLine: ln, lines: 1, write: p.write, targets: targets,
			ready: p.ready, attempt: p.attempt, cpu: p.cpu, critical: p.critical,
		})
	}
	c.putTargets(p.targets)
}

// enqueueOne appends a packet to the CRQ and maintains the fill-episode
// accounting behind Figure 13: an episode measures how long the coalescer
// takes to supply one CRQ's worth of packets (capacity = number of MSHRs).
// Better coalescing means fewer packets per batch and therefore a longer
// fill time — the FT effect discussed in §5.3.3.
func (c *Coalescer) enqueueOne(now uint64, p packet) {
	if c.fillCount == 0 {
		c.fillStart = now
	}
	c.crqPush(p)
	c.stats.Packets++
	if c.crqLen > c.stats.CRQPeak {
		c.stats.CRQPeak = c.crqLen
	}
	c.fillCount++
	if c.fillCount >= c.cfg.MSHR.Entries {
		c.stats.CRQFillCycles += now - c.fillStart
		c.stats.CRQFills++
		c.fillCount = 0
	}
}

// drainCRQ advances the CRQ head into the MSHRs: second-phase coalescing,
// entry allocation and memory dispatch. now is the current event tick.
func (c *Coalescer) drainCRQ(now uint64) {
	for c.crqLen > 0 {
		if c.laneBytes != nil && c.crqLen > 1 && !c.crqFront().blocked {
			c.selectReady(now)
		}
		p := c.crqFront()
		if p.ready > now {
			return
		}
		// The insert happens as soon as both the packet and the MSHR state
		// allow: not before the packet was ready, not before the entry
		// release it was blocked on, and never out of FIFO order.
		t := p.ready
		if p.blocked && c.freedAt > t {
			t = c.freedAt
		}
		if c.lastIssue > t {
			t = c.lastIssue
		}
		minLine, maxLine := p.targets[0].Line, p.targets[0].Line
		for _, tg := range p.targets[1:] {
			if tg.Line < minLine {
				minLine = tg.Line
			}
			if tg.Line > maxLine {
				maxLine = tg.Line
			}
		}
		out, err := c.file.Insert(minLine, int(maxLine-minLine)+1, p.write, p.targets)
		if err != nil {
			// A CRQ packet the file rejects is malformed bookkeeping, not a
			// recoverable stall: latch the violation and retire the packet so
			// the event loop can abort instead of spinning on it.
			if v, ok := invariant.As(err); ok {
				c.setViol(v)
			} else {
				c.setViol(invariant.Violatef(invariant.RuleCRQInsert, now, c.DebugState(),
					"CRQ packet [line %d, %d lines, write=%v, %d targets] rejected by MSHR file: %v",
					p.baseLine, p.lines, p.write, len(p.targets), err))
			}
			c.crqPop()
			return
		}
		issuedSubs := 0
		for _, e := range out.Issued {
			issuedSubs += len(e.Subs())
		}
		if out.MergedTargets+issuedSubs+len(out.Unplaced) != len(p.targets) {
			c.setViol(invariant.Violatef(invariant.RuleTargetConservation, now, c.DebugState(),
				"%d targets -> %d merged + %d issued + %d unplaced",
				len(p.targets), out.MergedTargets, issuedSubs, len(out.Unplaced)))
			c.crqPop()
			return
		}
		for _, e := range out.Issued {
			c.stats.HMCRequests++
			res := c.issue(t, e)
			c.noteIssue(t, res)
			c.stats.LinkRetryRounds += uint64(res.Retries)
			if res.Dropped {
				c.stats.DroppedPackets++
				res.Done = NeverTick // normalize whatever the callback set
			} else if res.Fault {
				c.stats.PoisonedPackets++
			}
			if c.laneBytes != nil {
				c.laneBytes[p.cpu] += uint64(e.Lines()) * uint64(c.cfg.LineBytes)
			}
			c.inflight = completionPush(c.inflight, completion{
				tick: res.Done, entry: e, issuedAt: t, fault: res.Fault, attempt: p.attempt,
				cpu: p.cpu, critical: p.critical,
			})
		}
		c.lastIssue = t
		if len(out.Unplaced) > 0 {
			// Head blocks in FIFO order until an entry frees; the already
			// placed waiters must not be retried. The unplaced set is a
			// subset of the packet's own targets, so it fits in place —
			// copying it frees the file's scratch buffer for the retry.
			p.targets = append(p.targets[:0], out.Unplaced...)
			p.blocked = true
			return
		}
		c.crqPop()
	}
}

// selectReady implements the heterogeneity-aware issue policy: among the
// packets already ready at now it rotates the preferred one to the CRQ
// head, keeping every other packet in FIFO order. With no ready packet, or
// when the FIFO head already wins, the queue is untouched — so FR-FCFS
// behavior is the fixed point the policy degrades to under light load.
func (c *Coalescer) selectReady(now uint64) {
	mask := len(c.crqBuf) - 1
	best := -1
	for i := 0; i < c.crqLen; i++ {
		p := &c.crqBuf[(c.crqHead+i)&mask]
		if p.ready > now {
			continue
		}
		if best < 0 || c.schedBetter(p, &c.crqBuf[(c.crqHead+best)&mask]) {
			best = i
		}
	}
	if best <= 0 {
		return
	}
	sel := c.crqBuf[(c.crqHead+best)&mask]
	for i := best; i > 0; i-- {
		c.crqBuf[(c.crqHead+i)&mask] = c.crqBuf[(c.crqHead+i-1)&mask]
	}
	c.crqBuf[c.crqHead] = sel
}

// schedBetter ranks two ready packets under SchedHetero: criticality hints
// first, then the lane that has issued the fewest bytes — deprioritizing
// bandwidth hogs — with FIFO order (the earlier packet) winning ties.
func (c *Coalescer) schedBetter(a, b *packet) bool {
	if a.critical != b.critical {
		return a.critical
	}
	if ab, bb := c.laneBytes[a.cpu], c.laneBytes[b.cpu]; ab != bb {
		return ab < bb
	}
	return false
}

// completion pairs an outstanding MSHR entry with its response tick.
// tick is NeverTick for a dropped response — such completions sink to the
// bottom of the heap and only the watchdog ever looks at them.
type completion struct {
	tick     uint64
	entry    *mshr.Entry
	issuedAt uint64 // dispatch tick, for watchdog age ordering
	fault    bool   // response arrived poisoned
	attempt  int    // span-level retry attempts already spent
	cpu      uint8  // issuing lane, carried so retries keep their account
	critical bool   // criticality hint, carried across retries
}

// The in-flight min-heap is hand-inlined: container/heap's interface
// indirection boxes every completion on push and pop, and this runs once
// per memory request. The sift routines mirror container/heap exactly
// (left child preferred on ties) so the pop order of same-tick completions
// is unchanged.

// completionPush inserts x and returns the updated heap slice.
func completionPush(h []completion, x completion) []completion {
	h = append(h, x)
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if h[i].tick >= h[p].tick {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	return h
}

// The retry queue is a min-heap of failed spans ordered by (ready, seq):
// release time first, failure order as the tie-break, so backed-off
// retries re-enter the CRQ in a deterministic total order.

func retryLess(a, b *packet) bool {
	if a.ready != b.ready {
		return a.ready < b.ready
	}
	return a.seq < b.seq
}

// retryPush inserts x and returns the updated heap slice.
func retryPush(h []packet, x packet) []packet {
	h = append(h, x)
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if !retryLess(&h[i], &h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	return h
}

// retryPop removes the minimum packet, returning the shrunk slice and the
// removed item.
func retryPop(h []packet) ([]packet, packet) {
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	item := h[n]
	h = h[:n]
	for i := 0; ; {
		j := 2*i + 1
		if j >= n {
			break
		}
		if r := j + 1; r < n && retryLess(&h[r], &h[j]) {
			j = r
		}
		if !retryLess(&h[j], &h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	return h, item
}

// completionPop removes the minimum completion, returning the shrunk slice
// and the removed item.
func completionPop(h []completion) ([]completion, completion) {
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	item := h[n]
	h = h[:n]
	for i := 0; ; {
		j := 2*i + 1
		if j >= n {
			break
		}
		if r := j + 1; r < n && h[r].tick < h[j].tick {
			j = r
		}
		if h[j].tick >= h[i].tick {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	return h, item
}
