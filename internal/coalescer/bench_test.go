package coalescer

import (
	"testing"

	"hmccoal/internal/mshr"
)

// benchCoalescer builds a two-phase coalescer against a fixed-latency fake
// memory, the configuration the full simulator drives.
func benchCoalescer(b *testing.B) *Coalescer {
	b.Helper()
	c, err := New(DefaultConfig(),
		func(tick uint64, e *mshr.Entry) IssueResult { return IssueResult{Done: tick + 200} },
		func(tick uint64, subs []mshr.Sub, fault bool) {})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkPushAdvance measures the coalescer steady state: bursts of
// line-adjacent misses flushed through the sorter, the DMC unit, the CRQ
// and the MSHR file, with time advanced past every completion.
func BenchmarkPushAdvance(b *testing.B) {
	c := benchCoalescer(b)
	tick := uint64(0)
	tok := uint64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := uint64(i%4096) * 4
		for j := uint64(0); j < 4; j++ {
			c.Push(tick, Request{Line: base + j, Write: false, Payload: 16, Token: tok})
			tok++
			tick += 2
		}
		if i%8 == 7 {
			tick += 400 // let responses land and the CRQ drain
			c.Advance(tick)
		}
	}
	b.StopTimer()
	c.Drain(tick)
}

// BenchmarkBaselinePush measures the conventional-MHA path (no sorter):
// every miss goes straight at the MSHRs.
func BenchmarkBaselinePush(b *testing.B) {
	cfg := BaselineConfig()
	c, err := New(cfg,
		func(tick uint64, e *mshr.Entry) IssueResult { return IssueResult{Done: tick + 200} },
		func(tick uint64, subs []mshr.Sub, fault bool) {})
	if err != nil {
		b.Fatal(err)
	}
	tick := uint64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Push(tick, Request{Line: uint64(i % 8192), Payload: 16, Token: uint64(i)})
		tick += 30 // spaced enough that the file never saturates
	}
	b.StopTimer()
	c.Drain(tick)
}
