package coalescer

import (
	"strings"
	"testing"

	"hmccoal/internal/mshr"
)

// faultHarness wires a coalescer to a scriptable fake memory: the verdicts
// slice decides, per dispatch in order, how each issue ends. Past the end
// of the script every issue succeeds.
type faultHarness struct {
	c         *Coalescer
	latency   uint64
	verdicts  []IssueResult // Done filled in by the harness
	issues    []issueRecord
	completed map[uint64]uint64
	faulted   map[uint64]bool
}

func newFaultHarness(t *testing.T, cfg Config, verdicts []IssueResult) *faultHarness {
	t.Helper()
	h := &faultHarness{
		latency: 400, verdicts: verdicts,
		completed: map[uint64]uint64{}, faulted: map[uint64]bool{},
	}
	c, err := New(cfg,
		func(tick uint64, e *mshr.Entry) IssueResult {
			n := len(h.issues)
			h.issues = append(h.issues, issueRecord{tick, e.BaseLine(), e.Lines(), e.Write()})
			res := IssueResult{Done: tick + h.latency}
			if n < len(h.verdicts) {
				v := h.verdicts[n]
				res.Fault, res.Dropped, res.Retries = v.Fault, v.Dropped, v.Retries
				if v.Dropped {
					res.Done = NeverTick
				}
			}
			return res
		},
		func(tick uint64, subs []mshr.Sub, fault bool) {
			for _, s := range subs {
				if _, dup := h.completed[s.Token]; dup {
					t.Fatalf("token %d completed twice", s.Token)
				}
				h.completed[s.Token] = tick
				h.faulted[s.Token] = fault
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	h.c = c
	return h
}

// TestPoisonedPacketRetriesAndSucceeds: the first dispatch is poisoned,
// the re-issue succeeds. The waiter completes exactly once, without the
// error bit, after the backoff.
func TestPoisonedPacketRetriesAndSucceeds(t *testing.T) {
	h := newFaultHarness(t, noBypass(), []IssueResult{{Fault: true}})
	h.c.Push(0, Request{Line: 5, Payload: 16, Token: 1})
	idle, err := h.c.Drain(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.issues) != 2 {
		t.Fatalf("%d dispatches, want 2 (original + retry)", len(h.issues))
	}
	if h.issues[1].baseLine != 5 || h.issues[1].lines != 1 {
		t.Fatalf("retry dispatched wrong span: %+v", h.issues[1])
	}
	tick, ok := h.completed[1]
	if !ok {
		t.Fatal("waiter never completed")
	}
	if h.faulted[1] {
		t.Fatal("successful retry still delivered the error bit")
	}
	// The retry waits out the poisoned response (latency) plus the backoff
	// before its own full round trip.
	s := h.c.Stats()
	if tick < h.latency+s.RetryBackoffCycles {
		t.Fatalf("completion at %d is too early for a backed-off retry", tick)
	}
	if s.PoisonedPackets != 1 || s.RetriedPackets != 1 || s.FailedTargets != 0 {
		t.Fatalf("stats %+v: want 1 poisoned, 1 retried, 0 failed", s)
	}
	if idle < tick {
		t.Fatalf("idle tick %d before the last completion %d", idle, tick)
	}
}

// TestRetryExhaustionDeliversError: a span that fails every re-issue
// completes its waiters with the error bit instead of looping forever.
func TestRetryExhaustionDeliversError(t *testing.T) {
	cfg := noBypass()
	cfg.MaxPacketRetries = 3
	// Enough poison verdicts to outlast the budget.
	verdicts := make([]IssueResult, 10)
	for i := range verdicts {
		verdicts[i] = IssueResult{Fault: true}
	}
	h := newFaultHarness(t, cfg, verdicts)
	h.c.Push(0, Request{Line: 9, Payload: 16, Token: 7})
	if _, err := h.c.Drain(10); err != nil {
		t.Fatal(err)
	}
	if len(h.issues) != 4 {
		t.Fatalf("%d dispatches, want 4 (original + 3 retries)", len(h.issues))
	}
	if !h.faulted[7] {
		t.Fatal("exhausted span did not deliver the error bit")
	}
	s := h.c.Stats()
	if s.FailedTargets != 1 {
		t.Fatalf("FailedTargets = %d, want 1", s.FailedTargets)
	}
	if s.RetriedPackets != 3 {
		t.Fatalf("RetriedPackets = %d, want 3", s.RetriedPackets)
	}
	// Backoff must grow: total backoff 64+128+256 with the defaults.
	if s.RetryBackoffCycles != 64+128+256 {
		t.Fatalf("RetryBackoffCycles = %d, want %d", s.RetryBackoffCycles, 64+128+256)
	}
}

// TestRetryPreservesAllWaiters: a poisoned 4-line coalesced packet with
// several waiters re-issues the whole span; every token completes once.
func TestRetryPreservesAllWaiters(t *testing.T) {
	h := newFaultHarness(t, noBypass(), []IssueResult{{Fault: true}})
	for i := uint64(0); i < 4; i++ {
		h.c.Push(0, Request{Line: i, Payload: 16, Token: 100 + i})
	}
	h.c.Advance(200) // timeout-flush the partial batch
	if _, err := h.c.Drain(300); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 4; i++ {
		if _, ok := h.completed[100+i]; !ok {
			t.Fatalf("token %d lost across the retry", 100+i)
		}
		if h.faulted[100+i] {
			t.Fatalf("token %d delivered with error after a successful retry", 100+i)
		}
	}
	if len(h.issues) != 2 {
		t.Fatalf("%d dispatches, want 2", len(h.issues))
	}
	if h.issues[1].lines != 4 {
		t.Fatalf("retry split the span: %+v", h.issues[1])
	}
}

// TestDegradedModeCapsPacketSize: a run of errored issues pushes the
// windowed error rate over the threshold; packets queued while degraded
// are split to one line, and the mode exits (recording its duration) once
// the errors stop.
func TestDegradedModeCapsPacketSize(t *testing.T) {
	cfg := noBypass()
	cfg.DegradeWindow = 8
	cfg.DegradeThreshold = 0.5
	// First 4 issues are retried-but-successful: they errored on the link
	// (Retries > 0) without poisoning, so they trip the window without
	// triggering span retries.
	verdicts := make([]IssueResult, 4)
	for i := range verdicts {
		verdicts[i] = IssueResult{Retries: 1}
	}
	h := newFaultHarness(t, cfg, verdicts)

	// 4 single-line pushes spread over distinct blocks: 4 issues, all
	// errored → 4/8 ≥ 0.5 → degraded.
	tick := uint64(0)
	for i := uint64(0); i < 4; i++ {
		h.c.Push(tick, Request{Line: i * 64, Payload: 16, Token: i})
		tick += 100
		h.c.Advance(tick)
	}
	h.c.Advance(tick + 1000)
	if !h.c.Degraded() {
		t.Fatalf("4/8 errored issues did not degrade (stats %+v)", h.c.Stats())
	}

	// A full contiguous 16-line batch while degraded: normally 4×4-line
	// packets, now 16 single-line packets.
	before := len(h.issues)
	for i := uint64(0); i < 16; i++ {
		h.c.Push(tick, Request{Line: 1000 + i, Payload: 16, Token: 100 + i})
	}
	if _, err := h.c.Drain(tick + 10); err != nil {
		t.Fatal(err)
	}
	degradedIssues := h.issues[before:]
	for _, is := range degradedIssues {
		if is.lines != 1 {
			t.Fatalf("degraded mode issued a %d-line packet: %+v", is.lines, is)
		}
	}
	if len(degradedIssues) != 16 {
		t.Fatalf("%d degraded dispatches, want 16", len(degradedIssues))
	}
	s := h.c.Stats()
	if s.DegradedSplits == 0 {
		t.Fatal("no degraded splits recorded")
	}
	if s.DegradedEntries != 1 {
		t.Fatalf("DegradedEntries = %d, want 1", s.DegradedEntries)
	}
	// 16 clean issues flushed the window: degraded mode must have exited
	// with its duration accounted.
	if h.c.Degraded() {
		t.Fatal("16 clean issues did not clear degraded mode")
	}
	if s.DegradedCycles == 0 {
		t.Fatal("time spent degraded not recorded")
	}
	// All waiters still complete cleanly.
	for i := uint64(0); i < 16; i++ {
		if _, ok := h.completed[100+i]; !ok {
			t.Fatalf("token %d lost in degraded mode", 100+i)
		}
	}
}

// TestDroppedResponseWatchdog: a response that never arrives must turn
// Drain into a deterministic watchdog error, not a hang or a panic.
func TestDroppedResponseWatchdog(t *testing.T) {
	run := func() (string, Stats) {
		h := newFaultHarness(t, noBypass(), []IssueResult{{Dropped: true}})
		h.c.Push(0, Request{Line: 42, Payload: 16, Token: 3})
		_, err := h.c.Drain(10)
		if err == nil {
			t.Fatal("Drain returned no error for a dropped response")
		}
		return err.Error(), h.c.Stats()
	}
	msg1, stats := run()
	msg2, _ := run()
	if msg1 != msg2 {
		t.Fatalf("watchdog message unstable:\n%s\n%s", msg1, msg2)
	}
	for _, want := range []string{"watchdog", "line 42", "1 waiters", "MSHR entry 0"} {
		if !strings.Contains(msg1, want) {
			t.Errorf("watchdog message %q missing %q", msg1, want)
		}
	}
	if stats.DroppedPackets != 1 {
		t.Fatalf("DroppedPackets = %d, want 1", stats.DroppedPackets)
	}
	// The waiter is stranded by design — the sim layer reports it — but
	// the watchdog must know about it.
	if w, ok := func() (WatchdogInfo, bool) {
		h := newFaultHarness(t, noBypass(), []IssueResult{{Dropped: true}})
		h.c.Push(0, Request{Line: 42, Payload: 16, Token: 3})
		h.c.Drain(10) // dispatches the packet, then reports the drop
		return h.c.Watchdog()
	}(); !ok || w.Dropped != 1 || w.Line != 42 {
		t.Fatalf("Watchdog() = %+v, %v", w, ok)
	}
}

// TestWatchdogPicksOldestDrop: with several dropped responses, the
// diagnostic names the earliest-issued one.
func TestWatchdogPicksOldestDrop(t *testing.T) {
	h := newFaultHarness(t, noBypass(), []IssueResult{{Dropped: true}, {Dropped: true}})
	h.c.Push(0, Request{Line: 7, Payload: 16, Token: 1})
	h.c.Advance(50)
	h.c.Push(60, Request{Line: 300, Payload: 16, Token: 2})
	_, err := h.c.Drain(100)
	if err == nil {
		t.Fatal("no watchdog error")
	}
	if !strings.Contains(err.Error(), "2 response(s)") {
		t.Errorf("drop count missing: %s", err)
	}
	if !strings.Contains(err.Error(), "line 7") {
		t.Errorf("oldest drop (line 7) not named: %s", err)
	}
}

// TestRetryQueueDeterministicOrder: same-tick retries release in failure
// order, so a fault-heavy run replays identically.
func TestRetryQueueDeterministicOrder(t *testing.T) {
	run := func() []issueRecord {
		cfg := noBypass()
		verdicts := []IssueResult{{Fault: true}, {Fault: true}, {Fault: true}, {Fault: true}}
		h := newFaultHarness(t, cfg, verdicts)
		// Four single-line packets in distinct blocks issued back to back;
		// all four poison at once and re-enter through the retry queue.
		for i := uint64(0); i < 4; i++ {
			h.c.Push(0, Request{Line: i * 64, Payload: 16, Token: i})
		}
		if _, err := h.c.Drain(10); err != nil {
			t.Fatal(err)
		}
		return h.issues
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("dispatch counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("dispatch %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Width = 12 },
		func(c *Config) { c.Width = 0 },
		func(c *Config) { c.LineBytes = 0 },
		func(c *Config) { c.BlockBytes = 16 },
		func(c *Config) { c.MaxPacketRetries = -1 },
		func(c *Config) { c.DegradeWindow = -1 },
		func(c *Config) { c.DegradeThreshold = 1.5 },
		func(c *Config) { c.MSHR.Entries = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, cfg)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("Validate rejected the default config: %v", err)
	}
}
