package coalescer

import (
	"math/rand"
	"sort"
	"testing"

	"hmccoal/internal/mshr"
)

// harness wires a coalescer to a fixed-latency fake memory and records
// every dispatch and completion.
type harness struct {
	c          *Coalescer
	memLatency uint64
	issues     []issueRecord
	completed  map[uint64]uint64 // token → completion tick
}

type issueRecord struct {
	tick     uint64
	baseLine uint64
	lines    int
	write    bool
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	h := &harness{memLatency: 400, completed: map[uint64]uint64{}}
	c, err := New(cfg,
		func(tick uint64, e *mshr.Entry) IssueResult {
			h.issues = append(h.issues, issueRecord{tick, e.BaseLine(), e.Lines(), e.Write()})
			return IssueResult{Done: tick + h.memLatency}
		},
		func(tick uint64, subs []mshr.Sub, fault bool) {
			for _, s := range subs {
				if _, dup := h.completed[s.Token]; dup {
					t.Fatalf("token %d completed twice", s.Token)
				}
				h.completed[s.Token] = tick
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	h.c = c
	return h
}

func noBypass() Config {
	cfg := DefaultConfig()
	cfg.Bypass = false
	return cfg
}

func TestNewValidation(t *testing.T) {
	cb := func(uint64, *mshr.Entry) IssueResult { return IssueResult{} }
	cc := func(uint64, []mshr.Sub, bool) {}
	if _, err := New(DefaultConfig(), nil, cc); err == nil {
		t.Error("nil issue accepted")
	}
	if _, err := New(DefaultConfig(), cb, nil); err == nil {
		t.Error("nil complete accepted")
	}
	cfg := DefaultConfig()
	cfg.Width = 12
	if _, err := New(cfg, cb, cc); err == nil {
		t.Error("non-power-of-two width accepted")
	}
	cfg = DefaultConfig()
	cfg.LineBytes = 0
	if _, err := New(cfg, cb, cc); err == nil {
		t.Error("zero line size accepted")
	}
}

func TestFullBatchCoalescesContiguousLoads(t *testing.T) {
	// 16 contiguous line misses span four 256 B blocks → exactly four
	// 4-line (256 B) packets, i.e. 75% coalescing efficiency.
	h := newHarness(t, noBypass())
	for i := uint64(0); i < 16; i++ {
		h.c.Push(10, Request{Line: i, Payload: 8, Token: i})
	}
	h.c.Drain(10)
	if len(h.issues) != 4 {
		t.Fatalf("issued %d requests, want 4", len(h.issues))
	}
	for k, is := range h.issues {
		if is.lines != 4 || is.baseLine != uint64(k)*4 || is.write {
			t.Errorf("issue %d = %+v", k, is)
		}
	}
	s := h.c.Stats()
	if s.HMCRequests != 4 || s.Requests != 16 {
		t.Errorf("stats = %+v", s)
	}
	if got := s.CoalescingEfficiency(); got != 0.75 {
		t.Errorf("CoalescingEfficiency = %v, want 0.75", got)
	}
	if s.FirstPhaseMerges != 12 {
		t.Errorf("FirstPhaseMerges = %d, want 12", s.FirstPhaseMerges)
	}
	if len(h.completed) != 16 {
		t.Errorf("completed %d tokens, want 16", len(h.completed))
	}
}

func TestScatteredLoadsDontCoalesce(t *testing.T) {
	h := newHarness(t, noBypass())
	for i := uint64(0); i < 16; i++ {
		h.c.Push(10, Request{Line: i * 100, Payload: 8, Token: i})
	}
	h.c.Drain(10)
	if len(h.issues) != 16 {
		t.Fatalf("issued %d requests, want 16", len(h.issues))
	}
	if got := h.c.Stats().CoalescingEfficiency(); got != 0 {
		t.Errorf("CoalescingEfficiency = %v, want 0", got)
	}
}

func TestTimeoutFlush(t *testing.T) {
	cfg := noBypass()
	cfg.TimeoutCycles = 24
	h := newHarness(t, cfg)
	h.c.Push(100, Request{Line: 0, Payload: 8, Token: 1})
	h.c.Push(105, Request{Line: 1, Payload: 8, Token: 2})
	// Nothing flushed yet: the window is open until 124.
	if h.c.Stats().Batches != 0 {
		t.Fatal("flushed before timeout")
	}
	h.c.Advance(130)
	s := h.c.Stats()
	if s.Batches != 1 || s.TimeoutFlushes != 1 || s.BatchRequests != 2 {
		t.Fatalf("stats after timeout = %+v", s)
	}
	h.c.Drain(130)
	if len(h.issues) != 1 || h.issues[0].lines != 2 {
		t.Fatalf("issues = %+v, want one 2-line packet", h.issues)
	}
}

func TestTypesNeverShareAPacket(t *testing.T) {
	// Alternating load/store misses on contiguous lines: the type bit
	// sorts stores after loads, so the DMC forms separate packets.
	h := newHarness(t, noBypass())
	for i := uint64(0); i < 16; i++ {
		h.c.Push(10, Request{Line: i, Write: i%2 == 1, Payload: 8, Token: i})
	}
	h.c.Drain(10)
	for _, is := range h.issues {
		if is.lines > 1 {
			// Same-type lines are every other line — never contiguous, so
			// no packet may exceed one line.
			t.Errorf("mixed/adjacent coalesce happened: %+v", is)
		}
	}
	if len(h.issues) != 16 {
		t.Errorf("issued %d, want 16", len(h.issues))
	}
	loads, stores := 0, 0
	for _, is := range h.issues {
		if is.write {
			stores++
		} else {
			loads++
		}
	}
	if loads != 8 || stores != 8 {
		t.Errorf("loads/stores = %d/%d", loads, stores)
	}
}

func TestContiguousStoresCoalesce(t *testing.T) {
	h := newHarness(t, noBypass())
	for i := uint64(0); i < 4; i++ {
		h.c.Push(10, Request{Line: i, Write: true, Payload: 64, Token: i})
	}
	h.c.Advance(100) // timeout flush
	h.c.Drain(100)
	if len(h.issues) != 1 || !h.issues[0].write || h.issues[0].lines != 4 {
		t.Fatalf("issues = %+v, want one 4-line store", h.issues)
	}
}

func TestBlockBoundarySplitsPacket(t *testing.T) {
	// Lines 2..5 are contiguous but lines 3|4 straddle a 256 B block
	// boundary: the DMC must emit [2,3] and [4,5].
	h := newHarness(t, noBypass())
	for _, ln := range []uint64{2, 3, 4, 5} {
		h.c.Push(10, Request{Line: ln, Payload: 8, Token: ln})
	}
	h.c.Advance(100)
	h.c.Drain(100)
	if len(h.issues) != 2 {
		t.Fatalf("issued %d requests, want 2", len(h.issues))
	}
	if h.issues[0].baseLine != 2 || h.issues[0].lines != 2 ||
		h.issues[1].baseLine != 4 || h.issues[1].lines != 2 {
		t.Errorf("issues = %+v", h.issues)
	}
}

func TestDuplicateLinesAbsorb(t *testing.T) {
	h := newHarness(t, noBypass())
	for i := uint64(0); i < 4; i++ {
		h.c.Push(10, Request{Line: 7, Payload: 8, Token: i})
	}
	h.c.Advance(100)
	h.c.Drain(100)
	if len(h.issues) != 1 || h.issues[0].lines != 1 {
		t.Fatalf("issues = %+v, want one 1-line packet", h.issues)
	}
	if len(h.completed) != 4 {
		t.Errorf("completed %d tokens, want 4", len(h.completed))
	}
}

func TestSecondPhaseMergesAcrossBatches(t *testing.T) {
	// Batch 1 issues lines 0-3 as one 256 B request. While it is in
	// flight, batch 2 wants lines 0-1 again: Case A merge, no new request.
	h := newHarness(t, noBypass())
	h.memLatency = 100000 // keep the first request outstanding
	for i := uint64(0); i < 4; i++ {
		h.c.Push(10, Request{Line: i, Payload: 8, Token: i})
	}
	h.c.Advance(200) // flush batch 1; packet issues
	if len(h.issues) != 1 {
		t.Fatalf("batch 1 issued %d", len(h.issues))
	}
	for i := uint64(0); i < 2; i++ {
		h.c.Push(300, Request{Line: i, Payload: 8, Token: 100 + i})
	}
	h.c.Advance(600)
	if len(h.issues) != 1 {
		t.Fatalf("second batch issued a request despite full overlap")
	}
	h.c.Drain(600)
	if len(h.completed) != 6 {
		t.Errorf("completed %d tokens, want 6", len(h.completed))
	}
	if got := h.c.MSHRStats().MergedTargets; got != 2 {
		t.Errorf("MergedTargets = %d, want 2", got)
	}
}

func TestMSHROnlyMode(t *testing.T) {
	// FirstPhase off: every miss reaches the MSHRs alone; coalescing only
	// happens when lines overlap outstanding entries.
	cfg := BaselineConfig()
	h := newHarness(t, cfg)
	h.memLatency = 100000
	h.c.Push(10, Request{Line: 5, Payload: 8, Token: 1})
	h.c.Push(11, Request{Line: 5, Payload: 8, Token: 2}) // merges
	h.c.Push(12, Request{Line: 6, Payload: 8, Token: 3}) // new entry
	if len(h.issues) != 2 {
		t.Fatalf("issued %d, want 2", len(h.issues))
	}
	for _, is := range h.issues {
		if is.lines != 1 {
			t.Errorf("conventional mode issued %d-line packet", is.lines)
		}
	}
	h.c.Drain(12)
	if got := h.c.Stats().CoalescingEfficiency(); got < 0.33 || got > 0.34 {
		t.Errorf("CoalescingEfficiency = %v, want 1/3", got)
	}
}

func TestDMCOnlyModeNeverMergesInMSHR(t *testing.T) {
	cfg := noBypass()
	cfg.SecondPhase = false
	h := newHarness(t, cfg)
	h.memLatency = 100000
	for i := uint64(0); i < 4; i++ {
		h.c.Push(10, Request{Line: i, Payload: 8, Token: i})
	}
	h.c.Advance(200)
	for i := uint64(0); i < 4; i++ {
		h.c.Push(300, Request{Line: i, Payload: 8, Token: 100 + i})
	}
	h.c.Advance(600)
	if len(h.issues) != 2 {
		t.Fatalf("issued %d, want 2 (no MSHR merging)", len(h.issues))
	}
	if got := h.c.MSHRStats().MergedTargets; got != 0 {
		t.Errorf("MergedTargets = %d, want 0", got)
	}
	h.c.Drain(600)
}

func TestBypassIdlePath(t *testing.T) {
	cfg := DefaultConfig() // bypass on
	h := newHarness(t, cfg)
	h.c.Push(10, Request{Line: 42, Payload: 8, Token: 1})
	// Idle coalescer, free MSHRs: the request must dispatch immediately,
	// with no sorting latency.
	if len(h.issues) != 1 || h.issues[0].tick != 10 {
		t.Fatalf("bypass issues = %+v", h.issues)
	}
	if h.c.Stats().Bypassed != 1 {
		t.Errorf("Bypassed = %d, want 1", h.c.Stats().Bypassed)
	}
	h.c.Drain(10)
}

func TestBypassStopsWhenMSHRsFull(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MSHR.Entries = 2
	h := newHarness(t, cfg)
	h.memLatency = 100000
	h.c.Push(10, Request{Line: 0, Payload: 8, Token: 1})
	h.c.Push(11, Request{Line: 100, Payload: 8, Token: 2})
	// File now full: next requests must buffer for coalescing.
	h.c.Push(12, Request{Line: 200, Payload: 8, Token: 3})
	if got := h.c.Stats().Bypassed; got != 2 {
		t.Fatalf("Bypassed = %d, want 2", got)
	}
	if h.c.Stats().Batches != 0 && len(h.issues) > 2 {
		t.Fatal("request 3 dispatched while MSHRs full")
	}
	h.c.Drain(12)
	if len(h.completed) != 3 {
		t.Errorf("completed %d, want 3", len(h.completed))
	}
}

func TestFenceFlushesPending(t *testing.T) {
	h := newHarness(t, noBypass())
	h.c.Push(10, Request{Line: 0, Payload: 8, Token: 1})
	h.c.Push(11, Request{Line: 1, Payload: 8, Token: 2})
	h.c.Fence(12)
	s := h.c.Stats()
	if s.Fences != 1 || s.Batches != 1 || s.BatchRequests != 2 {
		t.Fatalf("stats after fence = %+v", s)
	}
	if s.FenceFlushes != 1 || s.TimeoutFlushes != 0 {
		t.Fatalf("fence-triggered drain misattributed: fence=%d timeout=%d",
			s.FenceFlushes, s.TimeoutFlushes)
	}
	h.c.Drain(12)
	if len(h.issues) != 1 || h.issues[0].lines != 2 {
		t.Errorf("issues = %+v", h.issues)
	}
}

func TestDrainCompletesEverything(t *testing.T) {
	h := newHarness(t, noBypass())
	rng := rand.New(rand.NewSource(2))
	tokens := 0
	tick := uint64(0)
	for i := 0; i < 500; i++ {
		tick += uint64(rng.Intn(10))
		h.c.Push(tick, Request{
			Line:    rng.Uint64() % 4096,
			Write:   rng.Intn(4) == 0,
			Payload: uint32(8 * (1 + rng.Intn(8))),
			Token:   uint64(tokens),
		})
		tokens++
	}
	idle, err := h.c.Drain(tick)
	if err != nil {
		t.Fatal(err)
	}
	if idle < tick {
		t.Errorf("idle %d before last push %d", idle, tick)
	}
	if len(h.completed) != tokens {
		t.Fatalf("completed %d of %d tokens", len(h.completed), tokens)
	}
	if h.c.Outstanding() != 0 {
		t.Errorf("Outstanding = %d after drain", h.c.Outstanding())
	}
	s := h.c.Stats()
	if s.HMCRequests == 0 || s.HMCRequests > s.Requests {
		t.Errorf("HMCRequests = %d of %d", s.HMCRequests, s.Requests)
	}
	if s.HMCRequests != h.c.MSHRStats().Allocations {
		t.Errorf("HMCRequests %d != allocations %d", s.HMCRequests, h.c.MSHRStats().Allocations)
	}
}

func TestLatencyStatsPopulated(t *testing.T) {
	h := newHarness(t, noBypass())
	for i := uint64(0); i < 16; i++ {
		h.c.Push(10+i, Request{Line: i, Payload: 8, Token: i})
	}
	h.c.Drain(100)
	s := h.c.Stats()
	if s.LatencySamples != 16 || s.RequestLatency == 0 {
		t.Errorf("latency stats = %d samples, %d cycles", s.LatencySamples, s.RequestLatency)
	}
	if s.SortCycles == 0 || s.DMCCycles == 0 {
		t.Errorf("sort/DMC cycles = %d/%d", s.SortCycles, s.DMCCycles)
	}
	if ns := s.AvgDMCLatencyNs(3.3); ns <= 0 || ns > 30 {
		t.Errorf("AvgDMCLatencyNs = %v", ns)
	}
	if ns := s.AvgRequestLatencyNs(3.3); ns <= 0 {
		t.Errorf("AvgRequestLatencyNs = %v", ns)
	}
}

func TestHigherTimeoutRaisesLatency(t *testing.T) {
	// Figure 14's overall trend: growing the timeout grows the average
	// coalescer latency for sparse request streams.
	var prev float64
	for i, timeout := range []uint64{16, 64, 256} {
		cfg := noBypass()
		cfg.TimeoutCycles = timeout
		h := newHarness(t, cfg)
		tick := uint64(0)
		for r := uint64(0); r < 400; r++ {
			tick += 8 // sparse: timeout governs flushing
			h.c.Push(tick, Request{Line: r * 7, Payload: 8, Token: r})
		}
		h.c.Drain(tick)
		ns := h.c.Stats().AvgRequestLatencyNs(3.3)
		if i > 0 && ns <= prev {
			t.Errorf("timeout %d: latency %.2f not above previous %.2f", timeout, ns, prev)
		}
		prev = ns
	}
}

func TestCRQFillEpisodes(t *testing.T) {
	cfg := noBypass()
	cfg.MSHR.Entries = 4 // CRQ capacity 4
	h := newHarness(t, cfg)
	h.memLatency = 1 << 40 // nothing completes during pushes
	for i := uint64(0); i < 64; i++ {
		h.c.Push(10, Request{Line: i * 50, Payload: 8, Token: i})
	}
	h.c.Advance(1 << 20)
	s := h.c.Stats()
	if s.CRQFills == 0 {
		t.Fatal("CRQ never filled despite saturation")
	}
	if s.CRQPeak < 4 {
		t.Errorf("CRQPeak = %d, want ≥ 4", s.CRQPeak)
	}
	if ns := s.AvgCRQFillNs(3.3); ns <= 0 {
		t.Errorf("AvgCRQFillNs = %v", ns)
	}
	h.c.Drain(1 << 41)
}

func TestPayloadAccounting(t *testing.T) {
	h := newHarness(t, noBypass())
	h.c.Push(10, Request{Line: 0, Payload: 8, Token: 1})
	h.c.Push(10, Request{Line: 1, Payload: 32, Token: 2})
	h.c.Drain(10)
	if got := h.c.Stats().PayloadBytes; got != 40 {
		t.Errorf("PayloadBytes = %d, want 40", got)
	}
}

func TestIssueTicksNonDecreasing(t *testing.T) {
	h := newHarness(t, noBypass())
	rng := rand.New(rand.NewSource(9))
	tick := uint64(0)
	for i := 0; i < 2000; i++ {
		tick += uint64(rng.Intn(6))
		h.c.Push(tick, Request{
			Line:  rng.Uint64() % 512,
			Write: rng.Intn(5) == 0, Payload: 8, Token: uint64(i),
		})
	}
	h.c.Drain(tick)
	for i := 1; i < len(h.issues); i++ {
		if h.issues[i].tick < h.issues[i-1].tick {
			t.Fatalf("issue %d at %d before issue %d at %d",
				i, h.issues[i].tick, i-1, h.issues[i-1].tick)
		}
	}
}

func TestAdaptiveTimeoutTracksCoalescingCost(t *testing.T) {
	cfg := noBypass()
	cfg.AdaptiveTimeout = true
	cfg.TimeoutCycles = 24
	h := newHarness(t, cfg)
	if h.c.Timeout() != 24 {
		t.Fatalf("initial timeout = %d, want seed 24", h.c.Timeout())
	}
	// Full batches of coalescable traffic: per-sequence cost is sorting
	// (40 cycles) + DMC work, so the EWMA must climb above the seed.
	tick := uint64(0)
	for batch := uint64(0); batch < 60; batch++ {
		for i := uint64(0); i < 16; i++ {
			h.c.Push(tick, Request{Line: batch*100 + i, Payload: 8, Token: batch*16 + i})
		}
		tick += 200
		h.c.Advance(tick)
	}
	h.c.Drain(tick)
	if got := h.c.Timeout(); got <= 24 {
		t.Errorf("adaptive timeout = %d, want above seed 24", got)
	}
	if got, hi := h.c.Timeout(), cfg.TimeoutCycles*4; got > hi {
		t.Errorf("adaptive timeout = %d, beyond clamp %d", got, hi)
	}
}

func TestStaticTimeoutUnchanged(t *testing.T) {
	h := newHarness(t, noBypass())
	for i := uint64(0); i < 64; i++ {
		h.c.Push(i*10, Request{Line: i, Payload: 8, Token: i})
	}
	h.c.Drain(1000)
	if got := h.c.Timeout(); got != DefaultConfig().TimeoutCycles {
		t.Errorf("static timeout drifted to %d", got)
	}
}

// TestFirstPhaseMatchesOracle is a differential test of the DMC unit: a
// random batch pushed at one tick must produce exactly the packets a
// reference implementation computes (sort by type+line, group adjacent
// same-type runs bounded by the 256 B block, split into 4/2/1 lines).
func TestFirstPhaseMatchesOracle(t *testing.T) {
	oracle := func(reqs []Request) []issueRecord {
		type key struct {
			write bool
			line  uint64
		}
		sorted := append([]Request(nil), reqs...)
		sort.Slice(sorted, func(i, j int) bool {
			a, b := sorted[i], sorted[j]
			if a.Write != b.Write {
				return !a.Write
			}
			return a.Line < b.Line
		})
		var out []issueRecord
		seen := map[key]bool{}
		var uniq []Request
		for _, r := range sorted {
			k := key{r.Write, r.Line}
			if !seen[k] {
				seen[k] = true
				uniq = append(uniq, r)
			}
		}
		i := 0
		for i < len(uniq) {
			base := uniq[i]
			block := base.Line / 4
			end := base.Line + 1
			j := i + 1
			for j < len(uniq) && uniq[j].Write == base.Write &&
				uniq[j].Line == end && uniq[j].Line/4 == block && end-base.Line < 4 {
				end = uniq[j].Line + 1
				j++
			}
			// split into 4/2/1
			lines := int(end - base.Line)
			at := base.Line
			for lines > 0 {
				sz := 1
				if lines >= 4 {
					sz = 4
				} else if lines >= 2 {
					sz = 2
				}
				out = append(out, issueRecord{baseLine: at, lines: sz, write: base.Write})
				at += uint64(sz)
				lines -= sz
			}
			i = j
		}
		return out
	}

	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 200; trial++ {
		cfg := noBypass()
		cfg.SecondPhase = false // isolate the first phase
		h := newHarness(t, cfg)
		n := 1 + rng.Intn(16)
		reqs := make([]Request, n)
		for i := range reqs {
			reqs[i] = Request{
				Line:    uint64(rng.Intn(24)),
				Write:   rng.Intn(3) == 0,
				Payload: 8,
				Token:   uint64(trial*100 + i),
			}
		}
		for _, r := range reqs {
			h.c.Push(100, r)
		}
		h.c.Drain(100)
		want := oracle(reqs)
		if len(h.issues) != len(want) {
			t.Fatalf("trial %d: %d packets, oracle wants %d\nreqs=%+v\ngot=%+v\nwant=%+v",
				trial, len(h.issues), len(want), reqs, h.issues, want)
		}
		for k := range want {
			g := h.issues[k]
			if g.baseLine != want[k].baseLine || g.lines != want[k].lines || g.write != want[k].write {
				t.Fatalf("trial %d packet %d: got %+v want %+v\nreqs=%+v",
					trial, k, g, want[k], reqs)
			}
		}
	}
}

func TestWidth32EndToEnd(t *testing.T) {
	cfg := noBypass()
	cfg.Width = 32
	h := newHarness(t, cfg)
	for i := uint64(0); i < 32; i++ {
		h.c.Push(10, Request{Line: i, Payload: 8, Token: i})
	}
	h.c.Drain(10)
	// 32 contiguous lines = 8 blocks = 8 × 256 B packets.
	if len(h.issues) != 8 {
		t.Fatalf("issued %d requests, want 8", len(h.issues))
	}
	if len(h.completed) != 32 {
		t.Errorf("completed %d tokens, want 32", len(h.completed))
	}
}

func TestFlushCausePartitionsBatches(t *testing.T) {
	h := newHarness(t, noBypass())
	// Full-width flush.
	for i := uint64(0); i < 16; i++ {
		h.c.Push(10, Request{Line: i, Payload: 8, Token: i})
	}
	// Timeout flush.
	h.c.Push(1000, Request{Line: 100, Payload: 8, Token: 20})
	h.c.Advance(2000)
	// Fence flush.
	h.c.Push(3000, Request{Line: 200, Payload: 8, Token: 21})
	h.c.Fence(3001)
	// End-of-run drain flush.
	h.c.Push(4000, Request{Line: 300, Payload: 8, Token: 22})
	h.c.Drain(4001)
	s := h.c.Stats()
	if s.FullFlushes != 1 || s.TimeoutFlushes != 1 || s.FenceFlushes != 1 || s.DrainFlushes != 1 {
		t.Errorf("flush causes = full %d, timeout %d, fence %d, drain %d; want 1 each",
			s.FullFlushes, s.TimeoutFlushes, s.FenceFlushes, s.DrainFlushes)
	}
	if sum := s.FullFlushes + s.TimeoutFlushes + s.FenceFlushes + s.DrainFlushes; sum != s.Batches {
		t.Errorf("flush causes sum to %d, Batches = %d", sum, s.Batches)
	}
}

func TestBlockedCRQHeadRetries(t *testing.T) {
	// Saturate a 2-entry MSHR file with scattered misses: the CRQ head
	// must park (blocked on a packed file), survive the retry without
	// re-issuing already placed targets, and drain to completion in FIFO
	// order once completions free entries.
	cfg := noBypass()
	cfg.MSHR.Entries = 2
	h := newHarness(t, cfg)
	h.memLatency = 1000
	const n = 6
	for i := uint64(0); i < n; i++ {
		h.c.Push(10, Request{Line: i * 100, Payload: 8, Token: i}) // scattered: no coalescing
	}
	h.c.Advance(500) // timeout flush; only 2 packets can enter the file
	if len(h.issues) != 2 {
		t.Fatalf("issued %d before any completion, want 2 (file capacity)", len(h.issues))
	}
	if _, crq := h.c.QueueDepths(); crq == 0 {
		t.Fatal("CRQ drained despite a packed MSHR file")
	}
	h.c.Drain(500)
	if len(h.issues) != n {
		t.Fatalf("issued %d total, want %d", len(h.issues), n)
	}
	// The retried head issues strictly after the first response frees an
	// entry, and the dispatch order preserves the sorted FIFO order.
	if h.issues[2].tick < 10+h.memLatency {
		t.Errorf("blocked head issued at %d, before the first completion at %d",
			h.issues[2].tick, 10+h.memLatency)
	}
	for i := 1; i < len(h.issues); i++ {
		if h.issues[i].baseLine <= h.issues[i-1].baseLine {
			t.Errorf("FIFO order broken: issue %d line %d after line %d",
				i, h.issues[i].baseLine, h.issues[i-1].baseLine)
		}
	}
	if len(h.completed) != n {
		t.Errorf("completed %d tokens, want %d", len(h.completed), n)
	}
	if got := h.c.MSHRStats().FullStalls; got == 0 {
		t.Error("FullStalls = 0, blocked-head path not exercised")
	}
}

func TestSplitPacketChunking(t *testing.T) {
	cases := []struct {
		base   uint64
		length int
		want   []chunk
	}{
		{0, 1, []chunk{{0, 1}}},
		{0, 2, []chunk{{0, 2}}},
		{0, 3, []chunk{{0, 2}, {2, 1}}},
		{0, 4, []chunk{{0, 4}}},
		{4, 4, []chunk{{4, 4}}},
		{0, 5, []chunk{{0, 4}, {4, 1}}},
		{0, 7, []chunk{{0, 4}, {4, 2}, {6, 1}}},
		{8, 8, []chunk{{8, 4}, {12, 4}}},
		{3, 2, []chunk{{3, 2}}}, // caller guarantees block bounds; split is size-only
	}
	for _, c := range cases {
		var buf [maxChunks]chunk
		got := buf[:splitPacket(c.base, c.length, &buf)]
		if len(got) != len(c.want) {
			t.Errorf("splitPacket(%d, %d) = %v, want %v", c.base, c.length, got, c.want)
			continue
		}
		covered := c.base
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("splitPacket(%d, %d)[%d] = %v, want %v", c.base, c.length, i, got[i], c.want[i])
			}
			if got[i].base != covered {
				t.Errorf("splitPacket(%d, %d) leaves a gap at line %d", c.base, c.length, covered)
			}
			if got[i].len != 1 && got[i].len != 2 && got[i].len != 4 {
				t.Errorf("splitPacket(%d, %d) produced illegal size %d", c.base, c.length, got[i].len)
			}
			covered += uint64(got[i].len)
		}
		if covered != c.base+uint64(c.length) {
			t.Errorf("splitPacket(%d, %d) covers through %d", c.base, c.length, covered)
		}
	}
}

func TestFenceMonopolizesPipelineStage(t *testing.T) {
	// §3.4: a fence occupies an entire pipeline stage, so a batch flushed
	// right after a fence becomes ready later than without the fence.
	ready := func(withFence bool) uint64 {
		h := newHarness(t, noBypass())
		h.c.Push(10, Request{Line: 0, Payload: 8, Token: 1})
		if withFence {
			h.c.Fence(11)
		}
		for i := uint64(1); i < 8; i++ {
			h.c.Push(12, Request{Line: i * 10, Payload: 8, Token: 1 + i})
		}
		h.c.Drain(12)
		return h.issues[len(h.issues)-1].tick
	}
	without, with := ready(false), ready(true)
	if with <= without {
		t.Errorf("fence did not delay the pipeline: %d vs %d", with, without)
	}
}
