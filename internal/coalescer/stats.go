package coalescer

// Stats aggregates coalescer activity. All cycle counts are core clock
// cycles; convert to nanoseconds with a clock rate (the paper uses
// 3.3 GHz).
type Stats struct {
	// Requests is the number of LLC requests (misses + write-backs)
	// presented to the coalescer.
	Requests uint64
	// PayloadBytes is the total useful data those requests wanted.
	PayloadBytes uint64
	// Fences counts memory fence operations.
	Fences uint64
	// Bypassed counts requests that took the §4.2 idle path around the
	// sorter straight to the MSHRs.
	Bypassed uint64

	// Batches is the number of sequences flushed into the sorter;
	// BatchRequests sums their sizes. The flush-cause counters partition
	// Batches: FullFlushes closed at full width, TimeoutFlushes on
	// input-buffer timeout expiry, FenceFlushes on a memory fence, and
	// DrainFlushes on the end-of-run drain.
	Batches        uint64
	BatchRequests  uint64
	FullFlushes    uint64
	TimeoutFlushes uint64
	FenceFlushes   uint64
	DrainFlushes   uint64

	// SortCycles sums the sorting-pipeline traversal latencies.
	SortCycles uint64
	// DMCCycles sums the DMC unit's compare/merge work (Figure 12).
	DMCCycles uint64
	// FirstPhaseMerges counts requests absorbed into a larger packet by
	// the DMC unit.
	FirstPhaseMerges uint64
	// Packets counts packets entering the CRQ (all paths).
	Packets uint64

	// CRQPeak is the CRQ occupancy high-water mark. CRQFills counts the
	// episodes in which the CRQ filled to capacity from empty, and
	// CRQFillCycles sums their durations (Figure 13).
	CRQPeak       int
	CRQFills      uint64
	CRQFillCycles uint64

	// RequestLatency sums, over LatencySamples requests, the time from
	// arrival at the coalescer to arrival in the CRQ: buffer wait + sort +
	// DMC (Figure 14).
	RequestLatency uint64
	LatencySamples uint64

	// HMCRequests is the number of memory requests actually dispatched.
	HMCRequests uint64

	// Fault-recovery counters. All stay zero on a clean link.

	// PoisonedPackets counts responses that arrived poisoned (link retry
	// budget exhausted below); DroppedPackets counts responses that never
	// arrived at all.
	PoisonedPackets uint64
	DroppedPackets  uint64
	// LinkRetryRounds sums the link-level retransmission rounds reported
	// by the issue callback across all dispatched packets.
	LinkRetryRounds uint64
	// RetriedPackets counts failed spans re-issued as fresh packets, and
	// RetryBackoffCycles sums the backoff delays they waited.
	RetriedPackets     uint64
	RetryBackoffCycles uint64
	// FailedTargets counts waiters completed with the error bit set after
	// the span-level retry budget ran out.
	FailedTargets uint64
	// DegradedEntries counts transitions into degraded mode;
	// DegradedCycles is the total time spent there, and DegradedSplits the
	// number of multi-line packets split down to 64 B because of it.
	DegradedEntries uint64
	DegradedCycles  uint64
	DegradedSplits  uint64
}

// Stats returns a snapshot of the counters.
func (c *Coalescer) Stats() Stats { return c.stats }

// CoalescingEfficiency is the Figure 8 metric: the fraction of LLC
// requests eliminated before reaching the HMC.
func (s Stats) CoalescingEfficiency() float64 {
	if s.Requests == 0 {
		return 0
	}
	return 1 - float64(s.HMCRequests)/float64(s.Requests)
}

// AvgBatchSize returns the mean sorter sequence occupancy.
func (s Stats) AvgBatchSize() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.BatchRequests) / float64(s.Batches)
}

// AvgDMCLatencyNs returns the Figure 12 metric: mean DMC-unit coalescing
// time per sequence, in nanoseconds at the given clock.
func (s Stats) AvgDMCLatencyNs(clockGHz float64) float64 {
	if s.Batches == 0 || clockGHz <= 0 {
		return 0
	}
	return float64(s.DMCCycles) / float64(s.Batches) / clockGHz
}

// AvgCRQFillNs returns the Figure 13 metric: mean time to fill the CRQ to
// capacity, in nanoseconds at the given clock.
func (s Stats) AvgCRQFillNs(clockGHz float64) float64 {
	if s.CRQFills == 0 || clockGHz <= 0 {
		return 0
	}
	return float64(s.CRQFillCycles) / float64(s.CRQFills) / clockGHz
}

// AvgRequestLatencyNs returns the Figure 14 metric: mean per-request
// coalescer latency (buffer wait + sorting + DMC), in nanoseconds.
func (s Stats) AvgRequestLatencyNs(clockGHz float64) float64 {
	if s.LatencySamples == 0 || clockGHz <= 0 {
		return 0
	}
	return float64(s.RequestLatency) / float64(s.LatencySamples) / clockGHz
}
