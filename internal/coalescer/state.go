package coalescer

import (
	"fmt"

	"hmccoal/internal/mshr"
)

// packetState is one captured CRQ or retry-queue packet. Targets are
// deep-copied; the target-slice pool is working storage and not captured.
type packetState struct {
	baseLine uint64
	lines    int
	write    bool
	targets  []mshr.Target
	ready    uint64
	blocked  bool
	attempt  int
	seq      uint64
	cpu      uint8
	critical bool
}

// completionState is one captured in-flight completion. The MSHR entry
// pointer is stored as its stable index and re-pointed on restore.
type completionState struct {
	tick       uint64
	entryIndex int
	issuedAt   uint64
	fault      bool
	attempt    int
	cpu        uint8
	critical   bool
}

// State is an opaque deep copy of the coalescer's mutable state: the
// pending input buffer, the CRQ (linearized to FIFO order), the in-flight
// and retry heaps (verbatim array order, so tie-breaking after a restore
// matches the uninterrupted run exactly), the MSHR file, the bypass and
// degraded-mode machinery and every statistic.
type State struct {
	pending      []pendingReq
	pendingSince uint64
	sortFree     uint64
	curTimeout   uint64

	crq      []packetState // FIFO order, head first
	inflight []completionState
	retryQ   []packetState

	freedAt     uint64
	lastIssue   uint64
	lastAdvance uint64
	bypassOn    bool
	idleSince   uint64
	fillStart   uint64
	fillCount   int
	stats       Stats

	retrySeq   uint64
	faultWin   []bool
	faultPos   int
	faultCnt   int
	degraded   bool
	degradedAt uint64

	laneBytes []uint64 // hetero scheduler accounts (nil under FR-FCFS)

	file *mshr.FileState
}

func savePacket(p *packet) packetState {
	return packetState{
		baseLine: p.baseLine,
		lines:    p.lines,
		write:    p.write,
		targets:  append([]mshr.Target(nil), p.targets...),
		ready:    p.ready,
		blocked:  p.blocked,
		attempt:  p.attempt,
		seq:      p.seq,
		cpu:      p.cpu,
		critical: p.critical,
	}
}

func restorePacket(st *packetState) packet {
	return packet{
		baseLine: st.baseLine,
		lines:    st.lines,
		write:    st.write,
		targets:  append([]mshr.Target(nil), st.targets...),
		ready:    st.ready,
		blocked:  st.blocked,
		attempt:  st.attempt,
		seq:      st.seq,
		cpu:      st.cpu,
		critical: st.critical,
	}
}

// SaveState deep-copies the coalescer's mutable state. It refuses to
// snapshot a coalescer that has latched a conservation violation — the
// state is untrustworthy by definition.
func (c *Coalescer) SaveState() (*State, error) {
	if c.viol != nil {
		return nil, fmt.Errorf("coalescer: cannot snapshot after violation: %w", c.viol)
	}
	st := &State{
		pending:      append([]pendingReq(nil), c.pending...),
		pendingSince: c.pendingSince,
		sortFree:     c.sortFree,
		curTimeout:   c.curTimeout,
		freedAt:      c.freedAt,
		lastIssue:    c.lastIssue,
		lastAdvance:  c.lastAdvance,
		bypassOn:     c.bypassOn,
		idleSince:    c.idleSince,
		fillStart:    c.fillStart,
		fillCount:    c.fillCount,
		stats:        c.stats,
		retrySeq:     c.retrySeq,
		faultPos:     c.faultPos,
		faultCnt:     c.faultCnt,
		degraded:     c.degraded,
		degradedAt:   c.degradedAt,
		file:         c.file.SaveState(),
	}
	st.crq = make([]packetState, c.crqLen)
	for i := 0; i < c.crqLen; i++ {
		st.crq[i] = savePacket(&c.crqBuf[(c.crqHead+i)&(len(c.crqBuf)-1)])
	}
	st.inflight = make([]completionState, len(c.inflight))
	for i := range c.inflight {
		st.inflight[i] = completionState{
			tick:       c.inflight[i].tick,
			entryIndex: c.inflight[i].entry.Index(),
			issuedAt:   c.inflight[i].issuedAt,
			fault:      c.inflight[i].fault,
			attempt:    c.inflight[i].attempt,
			cpu:        c.inflight[i].cpu,
			critical:   c.inflight[i].critical,
		}
	}
	st.retryQ = make([]packetState, len(c.retryQ))
	for i := range c.retryQ {
		st.retryQ[i] = savePacket(&c.retryQ[i])
	}
	if c.faultWin != nil {
		st.faultWin = append([]bool(nil), c.faultWin...)
	}
	if c.laneBytes != nil {
		st.laneBytes = append([]uint64(nil), c.laneBytes...)
	}
	return st, nil
}

// RestoreState replays a snapshot into the coalescer, which must have been
// built from the same configuration (and callbacks bound to the restored
// system). The CRQ is re-laid-out from index 0 — FIFO content, not ring
// phase, is the state — while both heaps are restored in verbatim array
// order so future pops break ties exactly as the snapshotted run would.
func (c *Coalescer) RestoreState(st *State) error {
	if c.viol != nil {
		return fmt.Errorf("coalescer: cannot restore after violation: %w", c.viol)
	}
	if err := c.file.RestoreState(st.file); err != nil {
		return err
	}
	c.pending = append(c.pending[:0], st.pending...)
	c.pendingSince = st.pendingSince
	c.sortFree = st.sortFree
	c.curTimeout = st.curTimeout
	need := len(c.crqBuf)
	if need == 0 && len(st.crq) > 0 {
		need = 16 // matches crqPush's initial allocation
	}
	for need < len(st.crq) {
		need *= 2
	}
	if need != len(c.crqBuf) {
		c.crqBuf = make([]packet, need)
	}
	for i := range c.crqBuf {
		c.crqBuf[i] = packet{}
	}
	for i := range st.crq {
		c.crqBuf[i] = restorePacket(&st.crq[i])
	}
	c.crqHead = 0
	c.crqLen = len(st.crq)
	c.inflight = c.inflight[:0]
	for i := range st.inflight {
		c.inflight = append(c.inflight, completion{
			tick:     st.inflight[i].tick,
			entry:    c.file.EntryAt(st.inflight[i].entryIndex),
			issuedAt: st.inflight[i].issuedAt,
			fault:    st.inflight[i].fault,
			attempt:  st.inflight[i].attempt,
			cpu:      st.inflight[i].cpu,
			critical: st.inflight[i].critical,
		})
	}
	c.retryQ = c.retryQ[:0]
	for i := range st.retryQ {
		c.retryQ = append(c.retryQ, restorePacket(&st.retryQ[i]))
	}
	c.freedAt = st.freedAt
	c.lastIssue = st.lastIssue
	c.lastAdvance = st.lastAdvance
	c.bypassOn = st.bypassOn
	c.idleSince = st.idleSince
	c.fillStart = st.fillStart
	c.fillCount = st.fillCount
	c.stats = st.stats
	c.retrySeq = st.retrySeq
	if st.faultWin != nil {
		c.faultWin = append([]bool(nil), st.faultWin...)
	} else {
		c.faultWin = nil
	}
	c.faultPos = st.faultPos
	c.faultCnt = st.faultCnt
	c.degraded = st.degraded
	c.degradedAt = st.degradedAt
	if st.laneBytes != nil {
		c.laneBytes = append(c.laneBytes[:0], st.laneBytes...)
	} else if c.laneBytes != nil {
		for i := range c.laneBytes {
			c.laneBytes[i] = 0
		}
	}
	return nil
}
