// Package coalescer implements the paper's memory coalescer (§3): the unit
// between the shared LLC and the MSHRs that batches LLC misses, sorts them
// with a pipelined odd–even merge network, fuses adjacent requests into
// large HMC packets (first-phase coalescing, the DMC unit), queues the
// packets in the coalesced request queue (CRQ), and merges them against the
// dynamic MSHRs (second-phase coalescing) before they reach memory.
//
// The coalescer is tick-driven and single-threaded: the system simulator
// pushes LLC misses in non-decreasing tick order and the coalescer reports
// memory requests through the Issue callback and data returns through the
// Complete callback. All latency accounting (Figures 12–14) happens here.
package coalescer

import (
	"fmt"

	"hmccoal/internal/mshr"
	"hmccoal/internal/sortnet"
)

// Config parameterizes the coalescer. The zero value is not valid; start
// from DefaultConfig.
type Config struct {
	// Width is the sorting-network sequence width n (paper: 16).
	Width int
	// TimeoutCycles is how long a partially filled sequence may wait for
	// more LLC requests before it is force-flushed into the sorter
	// (paper §3.3; Figure 14 sweeps 16–28 cycles).
	TimeoutCycles uint64
	// Fold selects the sorting pipeline organization (§4.1).
	Fold sortnet.Fold
	// StepCycles is τ, the time per comparator step (default 4).
	StepCycles uint64
	// CompareCycles and MergeCycles price the DMC unit's operations
	// (§5.3.3: both 2 cycles).
	CompareCycles, MergeCycles uint64
	// LineBytes is the cache line size (64 B).
	LineBytes uint32
	// BlockBytes is the maximum HMC packet and the boundary a packet may
	// not cross (256 B).
	BlockBytes uint32
	// MSHR configures the dynamic MSHR file (16 entries in the paper; the
	// CRQ is sized to match).
	MSHR mshr.Config
	// FirstPhase enables the sorting network + DMC unit. When false,
	// requests flow directly to the MSHRs — the conventional MSHR-based
	// coalescing baseline of Figure 8.
	FirstPhase bool
	// SecondPhase enables MSHR merging. When false every packet allocates
	// fresh entries — the DMC-only series of Figure 8.
	SecondPhase bool
	// Bypass enables the §4.2 idle path: while the CRQ is empty, the input
	// buffer is empty and MSHRs are free, raw requests skip the sorter and
	// go straight to the MSHRs.
	Bypass bool
	// BypassRearmCycles is how long the memory system must stay fully idle
	// before the stage select re-arms the bypass. §4.2 aims the bypass at
	// program start and blocking calls (I/O, thread communication), not at
	// sub-microsecond traffic valleys. 0 means the default (2048 cycles).
	BypassRearmCycles uint64
	// AdaptiveTimeout implements the paper's §5.3.3 conclusion that "it is
	// ideal to equate the timeout with the average coalescing latency": the
	// input-buffer timeout tracks an exponential moving average of the
	// per-sequence coalescing cost (sorting + DMC), clamped to
	// [TimeoutCycles/2, 4×TimeoutCycles]. TimeoutCycles seeds the average.
	AdaptiveTimeout bool
}

// DefaultConfig returns the paper's evaluation configuration with both
// phases enabled.
func DefaultConfig() Config {
	return Config{
		Width:         16,
		TimeoutCycles: 24,
		Fold:          sortnet.PerStage,
		StepCycles:    sortnet.DefaultStepCycles,
		CompareCycles: 2,
		MergeCycles:   2,
		LineBytes:     64,
		BlockBytes:    256,
		MSHR:          mshr.DefaultConfig(),
		FirstPhase:    true,
		SecondPhase:   true,
		Bypass:        true,
	}
}

// BaselineConfig returns the conventional miss-handling architecture:
// MSHR-based coalescing only, fixed 64 B requests (§2.1).
func BaselineConfig() Config {
	cfg := DefaultConfig()
	cfg.FirstPhase = false
	return cfg
}

// Request is one line-granular LLC miss or write-back entering the
// coalescer.
type Request struct {
	Line    uint64 // absolute cache line number
	Write   bool
	Payload uint32 // useful bytes wanted from the line
	Token   uint64 // opaque completion token returned to the caller
}

// IssueFunc dispatches one memory request (an allocated MSHR entry) to the
// HMC at the given tick and returns the tick its response completes.
type IssueFunc func(tick uint64, e *mshr.Entry) uint64

// CompleteFunc delivers a response: the entry's waiters identified by
// their tokens, at the completion tick.
type CompleteFunc func(tick uint64, subs []mshr.Sub)

// Coalescer is the two-phase memory coalescer.
type Coalescer struct {
	cfg      Config
	net      *sortnet.Network
	pipe     *sortnet.Pipeline
	file     *mshr.File
	issue    IssueFunc
	complete CompleteFunc

	pending      []pendingReq // input buffer feeding the sorter
	pendingSince uint64       // tick the oldest pending request arrived
	sortFree     uint64       // next tick the sorter's first stage is free
	curTimeout   uint64       // effective timeout (EWMA when adaptive)

	// The CRQ is a power-of-two ring buffer: crqBuf[crqHead] is the FIFO
	// head and crqLen its occupancy. Popping the head is an index bump, not
	// a reslice, so the backing array is reused for the whole run.
	crqBuf  []packet
	crqHead int
	crqLen  int

	// flushKeys/flushPad are the sorter's Width-sized working arrays,
	// allocated once; padSwap is the sorter's swap callback over flushPad,
	// built once so flush does not allocate a closure per sequence.
	// targetPool recycles packet target slices retired from the CRQ back to
	// the DMC unit and the bypass path.
	flushKeys  []uint64
	flushPad   []pendingReq
	padSwap    func(i, j int)
	targetPool [][]mshr.Target

	inflight    []completion
	freedAt     uint64 // tick of the most recent MSHR entry release
	lastIssue   uint64 // tick of the most recent memory dispatch
	lastAdvance uint64 // latest tick Advance has processed
	bypassOn    bool   // §4.2 stage-select state: idle bypass armed
	idleSince   uint64 // first tick of the current full-idle span (^0 = busy)
	fillStart   uint64 // start of the current CRQ fill episode
	fillCount   int    // packets supplied in the current episode
	stats       Stats
	linesBlock  uint64 // lines per HMC block
}

// pendingReq is an input-buffer slot: the request plus its arrival tick,
// needed for the per-request coalescer latency of Figure 14.
type pendingReq struct {
	Request
	pushTick uint64
}

type packet struct {
	baseLine uint64
	lines    int
	write    bool
	targets  []mshr.Target
	ready    uint64 // tick the packet entered the CRQ
	blocked  bool   // a previous insert attempt found the file packed
}

// New builds a coalescer. issue and complete must be non-nil.
func New(cfg Config, issue IssueFunc, complete CompleteFunc) (*Coalescer, error) {
	if issue == nil || complete == nil {
		return nil, fmt.Errorf("coalescer: nil callback")
	}
	if cfg.LineBytes == 0 || cfg.BlockBytes < cfg.LineBytes {
		return nil, fmt.Errorf("coalescer: bad line/block sizes %d/%d", cfg.LineBytes, cfg.BlockBytes)
	}
	net, err := sortnet.New(cfg.Width)
	if err != nil {
		return nil, err
	}
	pipe, err := sortnet.NewPipeline(net, cfg.Fold, cfg.StepCycles)
	if err != nil {
		return nil, err
	}
	mcfg := cfg.MSHR
	mcfg.LineBytes = cfg.LineBytes
	mcfg.BlockBytes = cfg.BlockBytes
	mcfg.DisableMerge = !cfg.SecondPhase
	file, err := mshr.NewFile(mcfg)
	if err != nil {
		return nil, err
	}
	c := &Coalescer{
		cfg:        cfg,
		net:        net,
		pipe:       pipe,
		file:       file,
		issue:      issue,
		complete:   complete,
		linesBlock: uint64(cfg.BlockBytes / cfg.LineBytes),
		curTimeout: cfg.TimeoutCycles,
		bypassOn:   true,       // §4.2: the bypass is armed at boot
		idleSince:  ^uint64(0), // not in an idle span until proven so
		flushKeys:  make([]uint64, cfg.Width),
		flushPad:   make([]pendingReq, cfg.Width),
	}
	pad := c.flushPad
	c.padSwap = func(i, j int) { pad[i], pad[j] = pad[j], pad[i] }
	return c, nil
}

// getTargets hands out an empty target slice, recycled when possible.
func (c *Coalescer) getTargets() []mshr.Target {
	if n := len(c.targetPool); n > 0 {
		t := c.targetPool[n-1]
		c.targetPool = c.targetPool[:n-1]
		return t[:0]
	}
	return make([]mshr.Target, 0, c.cfg.Width)
}

// putTargets returns a retired packet's target slice to the pool.
func (c *Coalescer) putTargets(t []mshr.Target) {
	if cap(t) > 0 {
		c.targetPool = append(c.targetPool, t)
	}
}

// crqFront returns the FIFO head packet. The CRQ must be non-empty.
func (c *Coalescer) crqFront() *packet {
	return &c.crqBuf[c.crqHead]
}

// crqPush appends a packet at the ring's tail, growing it as needed.
func (c *Coalescer) crqPush(p packet) {
	if c.crqLen == len(c.crqBuf) {
		size := len(c.crqBuf) * 2
		if size == 0 {
			size = 16
		}
		grown := make([]packet, size)
		for i := 0; i < c.crqLen; i++ {
			grown[i] = c.crqBuf[(c.crqHead+i)&(len(c.crqBuf)-1)]
		}
		c.crqBuf = grown
		c.crqHead = 0
	}
	c.crqBuf[(c.crqHead+c.crqLen)&(len(c.crqBuf)-1)] = p
	c.crqLen++
}

// crqPop retires the FIFO head, recycling its target slice.
func (c *Coalescer) crqPop() {
	p := &c.crqBuf[c.crqHead]
	c.putTargets(p.targets)
	p.targets = nil
	c.crqHead = (c.crqHead + 1) & (len(c.crqBuf) - 1)
	c.crqLen--
}

// Timeout returns the effective input-buffer timeout: the configured value,
// or the tracked average coalescing latency under AdaptiveTimeout.
func (c *Coalescer) Timeout() uint64 { return c.curTimeout }

// adaptTimeout folds one sequence's coalescing cost (sorting + DMC cycles)
// into the adaptive timeout.
func (c *Coalescer) adaptTimeout(cost uint64) {
	if !c.cfg.AdaptiveTimeout {
		return
	}
	// EWMA with 1/8 weight, clamped to a sane band around the seed.
	next := (c.curTimeout*7 + cost) / 8
	if lo := c.cfg.TimeoutCycles / 2; next < lo {
		next = lo
	}
	if hi := c.cfg.TimeoutCycles * 4; next > hi {
		next = hi
	}
	c.curTimeout = next
}

// Config returns the coalescer configuration.
func (c *Coalescer) Config() Config { return c.cfg }

// MSHRStats exposes the MSHR file counters.
func (c *Coalescer) MSHRStats() mshr.Stats { return c.file.Stats() }

// Outstanding reports how many memory requests are in flight.
func (c *Coalescer) Outstanding() int { return len(c.inflight) }

// QueueDepths reports the occupancy of the input buffer and the CRQ,
// for diagnostics.
func (c *Coalescer) QueueDepths() (pending, crq int) { return len(c.pending), c.crqLen }

// DebugState renders internal queue state for deadlock diagnostics.
func (c *Coalescer) DebugState() string {
	s := fmt.Sprintf("lastAdvance=%d freedAt=%d lastIssue=%d free=%d", c.lastAdvance, c.freedAt, c.lastIssue, c.file.Free())
	if c.crqLen > 0 {
		p := *c.crqFront()
		s += fmt.Sprintf(" head{base=%d lines=%d write=%v ready=%d blocked=%v targets=%d}",
			p.baseLine, p.lines, p.write, p.ready, p.blocked, len(p.targets))
	}
	return s
}

// Push presents one LLC request at the given tick. Ticks must be
// non-decreasing across Push/Fence/Advance calls.
func (c *Coalescer) Push(now uint64, r Request) {
	c.Advance(now)
	c.stats.Requests++
	c.stats.PayloadBytes += uint64(r.Payload)

	if !c.cfg.FirstPhase {
		// Conventional MHA: the miss goes straight at the MSHRs.
		c.enqueuePacket(now, packet{
			baseLine: r.Line, lines: 1, write: r.Write,
			targets: append(c.getTargets(), mshr.Target{Line: r.Line, Token: r.Token, Payload: r.Payload}),
			ready:   now,
		})
		c.drainCRQ(now)
		return
	}

	// §4.2 stage-select hysteresis: the bypass engages when the memory
	// system has been idle for a while (program start, post-blocking-call)
	// and disengages the moment the MSHR file packs; it re-arms only once
	// the system drains and stays drained.
	if c.file.Full() {
		c.bypassOn = false
		c.idleSince = ^uint64(0)
	} else if c.crqLen == 0 && len(c.pending) == 0 && len(c.inflight) == 0 {
		if c.idleSince == ^uint64(0) {
			c.idleSince = now
		}
		rearm := c.cfg.BypassRearmCycles
		if rearm == 0 {
			rearm = 2048
		}
		if now-c.idleSince >= rearm {
			c.bypassOn = true
		}
	} else {
		c.idleSince = ^uint64(0)
	}
	if c.cfg.Bypass && c.bypassOn && len(c.pending) == 0 && c.crqLen == 0 && !c.file.Full() {
		// Idle coalescer, free MSHRs — skip the sorter entirely.
		c.stats.Bypassed++
		c.enqueuePacket(now, packet{
			baseLine: r.Line, lines: 1, write: r.Write,
			targets: append(c.getTargets(), mshr.Target{Line: r.Line, Token: r.Token, Payload: r.Payload}),
			ready:   now,
		})
		c.drainCRQ(now)
		return
	}

	if len(c.pending) == 0 {
		c.pendingSince = now
	}
	c.pending = append(c.pending, pendingReq{Request: r, pushTick: now})
	if len(c.pending) >= c.cfg.Width {
		c.flush(now, flushFull)
	}
}

// Fence signals a memory fence at the given tick: the pending sequence is
// flushed immediately and the fence monopolizes one pipeline stage (§3.4).
func (c *Coalescer) Fence(now uint64) {
	c.Advance(now)
	c.stats.Fences++
	if len(c.pending) > 0 {
		c.flush(now, flushFence)
	}
	if c.cfg.FirstPhase {
		if c.sortFree < now {
			c.sortFree = now
		}
		c.sortFree += c.pipe.IntervalCycles()
	}
}

// Advance processes time up to now: expires the input-buffer timeout and
// delivers any memory responses due at or before now.
func (c *Coalescer) Advance(now uint64) {
	if now > c.lastAdvance {
		c.lastAdvance = now
	}
	for len(c.inflight) > 0 && c.inflight[0].tick <= now {
		c.completeOne()
	}
	if len(c.pending) > 0 && now >= c.pendingSince+c.curTimeout {
		c.flush(c.pendingSince+c.curTimeout, flushTimeout)
		// A timeout flush may have freed the way for in-flight work.
		for len(c.inflight) > 0 && c.inflight[0].tick <= now {
			c.completeOne()
		}
	}
	c.drainCRQ(now)
}

// NextEvent returns the earliest tick at which Advance will make further
// progress — a pending-buffer timeout expiry, a packet becoming ready for
// the CRQ, or a memory response — and whether any such event exists.
// Simulators use it to advance time while a CPU is stalled. Events already
// processed are excluded: a CRQ head that became ready in the past but is
// blocked on a packed MSHR file only progresses at the next completion.
func (c *Coalescer) NextEvent() (uint64, bool) {
	next := ^uint64(0)
	if len(c.pending) > 0 {
		next = c.pendingSince + c.curTimeout
	}
	if len(c.inflight) > 0 && c.inflight[0].tick < next {
		next = c.inflight[0].tick
	}
	if c.crqLen > 0 {
		if ready := c.crqFront().ready; ready > c.lastAdvance && ready < next {
			next = ready
		}
	}
	return next, next != ^uint64(0)
}

// Drain flushes all pending state and runs the clock forward until every
// outstanding request has completed. It returns the tick at which the
// memory system went idle.
func (c *Coalescer) Drain(now uint64) uint64 {
	c.Advance(now)
	if len(c.pending) > 0 {
		c.flush(now, flushDrain)
	}
	idle := now
	for len(c.inflight) > 0 || c.crqLen > 0 {
		next := ^uint64(0)
		if len(c.inflight) > 0 {
			next = c.inflight[0].tick
		}
		if c.crqLen > 0 {
			if ready := c.crqFront().ready; ready > idle && ready < next {
				next = ready
			}
		}
		if next == ^uint64(0) {
			// The CRQ head is ready but blocked with nothing in flight.
			// A blocked head implies a full MSHR file, and every allocated
			// entry is in flight — so this state indicates a bug.
			panic("coalescer: CRQ stuck with no requests in flight")
		}
		if next > idle {
			idle = next
		}
		if len(c.inflight) > 0 && c.inflight[0].tick <= idle {
			c.completeOne()
		}
		c.drainCRQ(idle)
	}
	return idle
}

func (c *Coalescer) completeOne() {
	var item completion
	c.inflight, item = completionPop(c.inflight)
	subs := c.file.Complete(item.entry)
	c.freedAt = item.tick
	c.complete(item.tick, subs)
	c.drainCRQ(item.tick)
}
