// Package coalescer implements the paper's memory coalescer (§3): the unit
// between the shared LLC and the MSHRs that batches LLC misses, sorts them
// with a pipelined odd–even merge network, fuses adjacent requests into
// large HMC packets (first-phase coalescing, the DMC unit), queues the
// packets in the coalesced request queue (CRQ), and merges them against the
// dynamic MSHRs (second-phase coalescing) before they reach memory.
//
// The coalescer is tick-driven and single-threaded: the system simulator
// pushes LLC misses in non-decreasing tick order and the coalescer reports
// memory requests through the Issue callback and data returns through the
// Complete callback. All latency accounting (Figures 12–14) happens here.
package coalescer

import (
	"errors"
	"fmt"

	"hmccoal/internal/invariant"
	"hmccoal/internal/mshr"
	"hmccoal/internal/sortnet"
)

// ErrWatchdog marks the Drain diagnostic for responses that will never
// arrive (dropped on a faulty link). Callers that inject faults use
// errors.Is(err, ErrWatchdog) to tell this expected outcome apart from a
// conservation violation.
var ErrWatchdog = errors.New("watchdog")

// Sched selects the issue policy the CRQ head uses when dispatching
// packets into the MSHRs. The zero value is the strict first-ready FCFS
// order every configuration used before schedulers existed.
type Sched int

// Issue policies.
const (
	// SchedFRFCFS services the CRQ strictly in FIFO arrival order, issuing
	// the head as soon as it is ready — the paper's implicit policy.
	SchedFRFCFS Sched = iota
	// SchedHetero is the heterogeneity-aware policy: among ready packets it
	// prefers criticality-hinted requests (demand loads a core blocks on)
	// and, within a criticality class, the lane that has moved the fewest
	// bytes so far — deprioritizing bandwidth-hog cores so a streaming
	// accelerator cannot starve latency-sensitive CPUs. Ties fall back to
	// FIFO order, keeping the policy deterministic.
	SchedHetero
)

// Validate rejects scheduler values no issue path exists for.
func (s Sched) Validate() error {
	switch s {
	case SchedFRFCFS, SchedHetero:
		return nil
	}
	return fmt.Errorf("coalescer: unknown scheduler %d", int(s))
}

// Config parameterizes the coalescer. The zero value is not valid; start
// from DefaultConfig.
type Config struct {
	// Width is the sorting-network sequence width n (paper: 16).
	Width int
	// TimeoutCycles is how long a partially filled sequence may wait for
	// more LLC requests before it is force-flushed into the sorter
	// (paper §3.3; Figure 14 sweeps 16–28 cycles).
	TimeoutCycles uint64
	// Fold selects the sorting pipeline organization (§4.1).
	Fold sortnet.Fold
	// StepCycles is τ, the time per comparator step (default 4).
	StepCycles uint64
	// CompareCycles and MergeCycles price the DMC unit's operations
	// (§5.3.3: both 2 cycles).
	CompareCycles, MergeCycles uint64
	// LineBytes is the cache line size (64 B).
	LineBytes uint32
	// BlockBytes is the maximum HMC packet and the boundary a packet may
	// not cross (256 B).
	BlockBytes uint32
	// MSHR configures the dynamic MSHR file (16 entries in the paper; the
	// CRQ is sized to match).
	MSHR mshr.Config
	// FirstPhase enables the sorting network + DMC unit. When false,
	// requests flow directly to the MSHRs — the conventional MSHR-based
	// coalescing baseline of Figure 8.
	FirstPhase bool
	// SecondPhase enables MSHR merging. When false every packet allocates
	// fresh entries — the DMC-only series of Figure 8.
	SecondPhase bool
	// Bypass enables the §4.2 idle path: while the CRQ is empty, the input
	// buffer is empty and MSHRs are free, raw requests skip the sorter and
	// go straight to the MSHRs.
	Bypass bool
	// BypassRearmCycles is how long the memory system must stay fully idle
	// before the stage select re-arms the bypass. §4.2 aims the bypass at
	// program start and blocking calls (I/O, thread communication), not at
	// sub-microsecond traffic valleys. 0 means the default (2048 cycles).
	BypassRearmCycles uint64
	// AdaptiveTimeout implements the paper's §5.3.3 conclusion that "it is
	// ideal to equate the timeout with the average coalescing latency": the
	// input-buffer timeout tracks an exponential moving average of the
	// per-sequence coalescing cost (sorting + DMC), clamped to
	// [TimeoutCycles/2, 4×TimeoutCycles]. TimeoutCycles seeds the average.
	AdaptiveTimeout bool

	// RetryBackoffCycles is the base delay before a failed (poisoned)
	// packet's span is re-issued; the backoff doubles per attempt up to
	// RetryBackoffCap. Zero means the defaults (64 and 4096 cycles).
	RetryBackoffCycles uint64
	RetryBackoffCap    uint64
	// MaxPacketRetries bounds re-issues per failed span; a span that still
	// fails past the cap completes with its error bit set so waiters are
	// never stranded. Zero means the default (8).
	MaxPacketRetries int
	// DegradeWindow and DegradeThreshold govern degraded mode: over a
	// sliding window of the last DegradeWindow issued packets, an observed
	// link error rate at or above DegradeThreshold caps packet size at one
	// cache line (64 B) — a retransmitted 256 B packet costs 17 FLITs, so
	// degradation trades coalescing efficiency for retry cost. The mode
	// exits when the windowed rate falls to half the threshold. Zero means
	// the defaults (64 packets, 0.25).
	DegradeWindow    int
	DegradeThreshold float64

	// Sched selects the CRQ issue policy. The zero value (SchedFRFCFS) is
	// the strict FIFO order of every pre-scheduler configuration.
	Sched Sched
}

// DefaultConfig returns the paper's evaluation configuration with both
// phases enabled.
func DefaultConfig() Config {
	return Config{
		Width:         16,
		TimeoutCycles: 24,
		Fold:          sortnet.PerStage,
		StepCycles:    sortnet.DefaultStepCycles,
		CompareCycles: 2,
		MergeCycles:   2,
		LineBytes:     64,
		BlockBytes:    256,
		MSHR:          mshr.DefaultConfig(),
		FirstPhase:    true,
		SecondPhase:   true,
		Bypass:        true,
	}
}

// BaselineConfig returns the conventional miss-handling architecture:
// MSHR-based coalescing only, fixed 64 B requests (§2.1).
func BaselineConfig() Config {
	cfg := DefaultConfig()
	cfg.FirstPhase = false
	return cfg
}

// Request is one line-granular LLC miss or write-back entering the
// coalescer.
type Request struct {
	Line    uint64 // absolute cache line number
	Write   bool
	Payload uint32 // useful bytes wanted from the line
	Token   uint64 // opaque completion token returned to the caller
	// CPU is the issuing lane, the heterogeneity-aware scheduler's
	// fairness key. Critical is the trace layer's optional hint that a core
	// is blocked on this request (a demand load). Both are ignored — and
	// free — under the default FR-FCFS policy.
	CPU      uint8
	Critical bool
}

// NeverTick marks a response that will never arrive; it mirrors
// hmc.NeverTick so issue callbacks can pass the device's verdict through.
const NeverTick = ^uint64(0)

// IssueResult is the outcome of one dispatched memory request.
type IssueResult struct {
	// Done is the tick the response completes, or NeverTick if Dropped.
	Done uint64
	// Fault reports a poisoned response: a response arrives at Done but
	// carries no data, and the span must be retried or failed.
	Fault bool
	// Dropped reports the response will never arrive at all.
	Dropped bool
	// Retries is the number of link retransmission rounds the transaction
	// needed; it feeds the degraded-mode error-rate window.
	Retries int
}

// IssueFunc dispatches one memory request (an allocated MSHR entry) to the
// HMC at the given tick and reports how the transaction ended.
type IssueFunc func(tick uint64, e *mshr.Entry) IssueResult

// CompleteFunc delivers a response: the entry's waiters identified by
// their tokens, at the completion tick. fault reports that the data never
// arrived — the span exhausted its retry budget and the waiters observe a
// memory error instead of a fill.
type CompleteFunc func(tick uint64, subs []mshr.Sub, fault bool)

// Coalescer is the two-phase memory coalescer.
type Coalescer struct {
	cfg      Config
	net      *sortnet.Network
	pipe     *sortnet.Pipeline
	file     *mshr.File
	issue    IssueFunc
	complete CompleteFunc

	pending      []pendingReq // input buffer feeding the sorter
	pendingSince uint64       // tick the oldest pending request arrived
	sortFree     uint64       // next tick the sorter's first stage is free
	curTimeout   uint64       // effective timeout (EWMA when adaptive)

	// The CRQ is a power-of-two ring buffer: crqBuf[crqHead] is the FIFO
	// head and crqLen its occupancy. Popping the head is an index bump, not
	// a reslice, so the backing array is reused for the whole run.
	crqBuf  []packet
	crqHead int
	crqLen  int

	// flushKeys/flushPad are the sorter's Width-sized working arrays,
	// allocated once; padSwap is the sorter's swap callback over flushPad,
	// built once so flush does not allocate a closure per sequence.
	// targetPool recycles packet target slices retired from the CRQ back to
	// the DMC unit and the bypass path.
	flushKeys  []uint64
	flushPad   []pendingReq
	padSwap    func(i, j int)
	targetPool [][]mshr.Target

	inflight    []completion
	freedAt     uint64 // tick of the most recent MSHR entry release
	lastIssue   uint64 // tick of the most recent memory dispatch
	lastAdvance uint64 // latest tick Advance has processed
	bypassOn    bool   // §4.2 stage-select state: idle bypass armed
	idleSince   uint64 // first tick of the current full-idle span (^0 = busy)
	fillStart   uint64 // start of the current CRQ fill episode
	fillCount   int    // packets supplied in the current episode
	stats       Stats
	linesBlock  uint64 // lines per HMC block

	// laneBytes is the heterogeneity-aware scheduler's per-lane issued-byte
	// account, indexed by Request.CPU. It is nil under FR-FCFS, so the
	// default configuration allocates and pays nothing for scheduling.
	laneBytes []uint64

	// Fault-recovery state. retryQ is a min-heap of failed spans awaiting
	// re-issue after backoff, ordered by (ready, seq) so retries release
	// deterministically. faultWin is the degraded-mode sliding window over
	// issue outcomes; it is allocated lazily on the first observed link
	// error so the no-fault path stays allocation-identical.
	retryQ     []packet
	retrySeq   uint64
	faultWin   []bool
	faultPos   int
	faultCnt   int
	degraded   bool
	degradedAt uint64 // tick degraded mode was last entered

	// check is the optional invariant checker (nil = disabled, free).
	// viol latches the first conservation violation: the former panic
	// sites record here and the event loop aborts on the next poll.
	check *invariant.Checker
	viol  error
}

// pendingReq is an input-buffer slot: the request plus its arrival tick,
// needed for the per-request coalescer latency of Figure 14.
type pendingReq struct {
	Request
	pushTick uint64
}

type packet struct {
	baseLine uint64
	lines    int
	write    bool
	targets  []mshr.Target
	ready    uint64 // tick the packet entered the CRQ
	blocked  bool   // a previous insert attempt found the file packed
	attempt  int    // how many times this span has already failed
	seq      uint64 // retry-queue tie-break, in failure order
	cpu      uint8  // issuing lane (scheduler fairness key)
	critical bool   // criticality hint carried from the request
}

// Validate checks the configuration without building anything. New calls
// it; embedding configs can call it early so a bad sorter width or MSHR
// geometry surfaces as an error at construction, never a panic later.
func (cfg Config) Validate() error {
	if cfg.LineBytes == 0 || cfg.BlockBytes < cfg.LineBytes {
		return fmt.Errorf("coalescer: bad line/block sizes %d/%d", cfg.LineBytes, cfg.BlockBytes)
	}
	if cfg.Width < 2 || cfg.Width&(cfg.Width-1) != 0 {
		return fmt.Errorf("coalescer: sorter width %d is not a power of two ≥ 2", cfg.Width)
	}
	if cfg.MaxPacketRetries < 0 {
		return fmt.Errorf("coalescer: negative retry cap %d", cfg.MaxPacketRetries)
	}
	if cfg.DegradeWindow < 0 {
		return fmt.Errorf("coalescer: negative degrade window %d", cfg.DegradeWindow)
	}
	if cfg.DegradeThreshold < 0 || cfg.DegradeThreshold > 1 {
		return fmt.Errorf("coalescer: degrade threshold %v outside [0,1]", cfg.DegradeThreshold)
	}
	if err := cfg.Sched.Validate(); err != nil {
		return err
	}
	mcfg := cfg.MSHR
	mcfg.LineBytes = cfg.LineBytes
	mcfg.BlockBytes = cfg.BlockBytes
	if err := mcfg.Validate(); err != nil {
		return err
	}
	return nil
}

// New builds a coalescer. issue and complete must be non-nil.
func New(cfg Config, issue IssueFunc, complete CompleteFunc) (*Coalescer, error) {
	if issue == nil || complete == nil {
		return nil, fmt.Errorf("coalescer: nil callback")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	net, err := sortnet.New(cfg.Width)
	if err != nil {
		return nil, err
	}
	pipe, err := sortnet.NewPipeline(net, cfg.Fold, cfg.StepCycles)
	if err != nil {
		return nil, err
	}
	mcfg := cfg.MSHR
	mcfg.LineBytes = cfg.LineBytes
	mcfg.BlockBytes = cfg.BlockBytes
	mcfg.DisableMerge = !cfg.SecondPhase
	file, err := mshr.NewFile(mcfg)
	if err != nil {
		return nil, err
	}
	c := &Coalescer{
		cfg:        cfg,
		net:        net,
		pipe:       pipe,
		file:       file,
		issue:      issue,
		complete:   complete,
		linesBlock: uint64(cfg.BlockBytes / cfg.LineBytes),
		curTimeout: cfg.TimeoutCycles,
		bypassOn:   true,       // §4.2: the bypass is armed at boot
		idleSince:  ^uint64(0), // not in an idle span until proven so
		flushKeys:  make([]uint64, cfg.Width),
		flushPad:   make([]pendingReq, cfg.Width),
	}
	pad := c.flushPad
	c.padSwap = func(i, j int) { pad[i], pad[j] = pad[j], pad[i] }
	if cfg.Sched == SchedHetero {
		c.laneBytes = make([]uint64, 256) // full uint8 lane space
	}
	return c, nil
}

// getTargets hands out an empty target slice, recycled when possible.
func (c *Coalescer) getTargets() []mshr.Target {
	if n := len(c.targetPool); n > 0 {
		t := c.targetPool[n-1]
		c.targetPool = c.targetPool[:n-1]
		return t[:0]
	}
	return make([]mshr.Target, 0, c.cfg.Width)
}

// putTargets returns a retired packet's target slice to the pool.
func (c *Coalescer) putTargets(t []mshr.Target) {
	if cap(t) > 0 {
		c.targetPool = append(c.targetPool, t)
	}
}

// crqFront returns the FIFO head packet. The CRQ must be non-empty.
func (c *Coalescer) crqFront() *packet {
	return &c.crqBuf[c.crqHead]
}

// crqPush appends a packet at the ring's tail, growing it as needed.
func (c *Coalescer) crqPush(p packet) {
	if c.crqLen == len(c.crqBuf) {
		size := len(c.crqBuf) * 2
		if size == 0 {
			size = 16
		}
		grown := make([]packet, size)
		for i := 0; i < c.crqLen; i++ {
			grown[i] = c.crqBuf[(c.crqHead+i)&(len(c.crqBuf)-1)]
		}
		c.crqBuf = grown
		c.crqHead = 0
	}
	c.crqBuf[(c.crqHead+c.crqLen)&(len(c.crqBuf)-1)] = p
	c.crqLen++
}

// crqPop retires the FIFO head, recycling its target slice.
func (c *Coalescer) crqPop() {
	p := &c.crqBuf[c.crqHead]
	c.putTargets(p.targets)
	p.targets = nil
	c.crqHead = (c.crqHead + 1) & (len(c.crqBuf) - 1)
	c.crqLen--
}

// Timeout returns the effective input-buffer timeout: the configured value,
// or the tracked average coalescing latency under AdaptiveTimeout.
func (c *Coalescer) Timeout() uint64 { return c.curTimeout }

// adaptTimeout folds one sequence's coalescing cost (sorting + DMC cycles)
// into the adaptive timeout.
func (c *Coalescer) adaptTimeout(cost uint64) {
	if !c.cfg.AdaptiveTimeout {
		return
	}
	// EWMA with 1/8 weight, clamped to a sane band around the seed.
	next := (c.curTimeout*7 + cost) / 8
	if lo := c.cfg.TimeoutCycles / 2; next < lo {
		next = lo
	}
	if hi := c.cfg.TimeoutCycles * 4; next > hi {
		next = hi
	}
	c.curTimeout = next
}

// Config returns the coalescer configuration.
func (c *Coalescer) Config() Config { return c.cfg }

// SetChecker attaches a runtime invariant checker to the coalescer and its
// MSHR file. A nil checker (the default) disables continuous checking.
func (c *Coalescer) SetChecker(ck *invariant.Checker) {
	c.check = ck
	c.file.SetChecker(ck)
}

// Err returns the first conservation violation the coalescer hit, or nil.
// The violation is sticky: once set, further simulation is untrustworthy
// and the caller should abort the run.
func (c *Coalescer) Err() error { return c.viol }

// setViol latches a violation (first one wins) and records it with the
// attached checker, if any.
func (c *Coalescer) setViol(v *invariant.Violation) {
	c.check.Record(v)
	if c.viol == nil {
		c.viol = v
	}
}

// CheckDrained audits the end-of-run conservation laws: after Drain every
// queue must be empty and every MSHR entry free. It returns the first
// violation found, or nil on a clean coalescer.
func (c *Coalescer) CheckDrained(tick uint64) error {
	if n := len(c.pending); n != 0 {
		return c.check.Record(invariant.Violatef(invariant.RuleQueueLeak, tick,
			c.DebugState(), "%d request(s) left in the input buffer after drain", n))
	}
	if c.crqLen != 0 {
		return c.check.Record(invariant.Violatef(invariant.RuleQueueLeak, tick,
			c.DebugState(), "%d packet(s) left in the CRQ after drain", c.crqLen))
	}
	if n := len(c.retryQ); n != 0 {
		return c.check.Record(invariant.Violatef(invariant.RuleQueueLeak, tick,
			c.DebugState(), "%d failed span(s) left in the retry queue after drain", n))
	}
	if n := len(c.inflight); n != 0 {
		return c.check.Record(invariant.Violatef(invariant.RuleQueueLeak, tick,
			c.DebugState(), "%d request(s) still in flight after drain", n))
	}
	return c.file.CheckLeaks(tick)
}

// MSHRStats exposes the MSHR file counters.
func (c *Coalescer) MSHRStats() mshr.Stats { return c.file.Stats() }

// Outstanding reports how many memory requests are in flight.
func (c *Coalescer) Outstanding() int { return len(c.inflight) }

// QueueDepths reports the occupancy of the input buffer and the CRQ,
// for diagnostics.
func (c *Coalescer) QueueDepths() (pending, crq int) { return len(c.pending), c.crqLen }

// DebugState renders internal queue state for deadlock diagnostics.
func (c *Coalescer) DebugState() string {
	s := fmt.Sprintf("lastAdvance=%d freedAt=%d lastIssue=%d free=%d", c.lastAdvance, c.freedAt, c.lastIssue, c.file.Free())
	if c.crqLen > 0 {
		p := *c.crqFront()
		s += fmt.Sprintf(" head{base=%d lines=%d write=%v ready=%d blocked=%v targets=%d}",
			p.baseLine, p.lines, p.write, p.ready, p.blocked, len(p.targets))
	}
	return s
}

// Push presents one LLC request at the given tick. Ticks must be
// non-decreasing across Push/Fence/Advance calls.
func (c *Coalescer) Push(now uint64, r Request) {
	c.Advance(now)
	c.stats.Requests++
	c.stats.PayloadBytes += uint64(r.Payload)

	if !c.cfg.FirstPhase {
		// Conventional MHA: the miss goes straight at the MSHRs.
		c.enqueuePacket(now, packet{
			baseLine: r.Line, lines: 1, write: r.Write,
			targets: append(c.getTargets(), mshr.Target{Line: r.Line, Token: r.Token, Payload: r.Payload}),
			ready:   now, cpu: r.CPU, critical: r.Critical,
		})
		c.drainCRQ(now)
		return
	}

	// §4.2 stage-select hysteresis: the bypass engages when the memory
	// system has been idle for a while (program start, post-blocking-call)
	// and disengages the moment the MSHR file packs; it re-arms only once
	// the system drains and stays drained.
	if c.file.Full() {
		c.bypassOn = false
		c.idleSince = ^uint64(0)
	} else if c.crqLen == 0 && len(c.pending) == 0 && len(c.inflight) == 0 && len(c.retryQ) == 0 {
		if c.idleSince == ^uint64(0) {
			c.idleSince = now
		}
		rearm := c.cfg.BypassRearmCycles
		if rearm == 0 {
			rearm = 2048
		}
		if now-c.idleSince >= rearm {
			c.bypassOn = true
		}
	} else {
		c.idleSince = ^uint64(0)
	}
	if c.cfg.Bypass && c.bypassOn && len(c.pending) == 0 && c.crqLen == 0 && len(c.retryQ) == 0 && !c.file.Full() {
		// Idle coalescer, free MSHRs — skip the sorter entirely.
		c.stats.Bypassed++
		c.enqueuePacket(now, packet{
			baseLine: r.Line, lines: 1, write: r.Write,
			targets: append(c.getTargets(), mshr.Target{Line: r.Line, Token: r.Token, Payload: r.Payload}),
			ready:   now, cpu: r.CPU, critical: r.Critical,
		})
		c.drainCRQ(now)
		return
	}

	if len(c.pending) == 0 {
		c.pendingSince = now
	}
	c.pending = append(c.pending, pendingReq{Request: r, pushTick: now})
	if len(c.pending) >= c.cfg.Width {
		c.flush(now, flushFull)
	}
}

// Fence signals a memory fence at the given tick: the pending sequence is
// flushed immediately and the fence monopolizes one pipeline stage (§3.4).
func (c *Coalescer) Fence(now uint64) {
	c.Advance(now)
	c.stats.Fences++
	if len(c.pending) > 0 {
		c.flush(now, flushFence)
	}
	if c.cfg.FirstPhase {
		if c.sortFree < now {
			c.sortFree = now
		}
		c.sortFree += c.pipe.IntervalCycles()
	}
}

// Advance processes time up to now: expires the input-buffer timeout,
// releases backed-off retries that fell due, and delivers any memory
// responses due at or before now.
func (c *Coalescer) Advance(now uint64) {
	if now > c.lastAdvance {
		c.lastAdvance = now
	}
	c.releaseRetries(now)
	for len(c.inflight) > 0 && c.inflight[0].tick <= now {
		c.completeOne()
	}
	if len(c.pending) > 0 && now >= c.pendingSince+c.curTimeout {
		c.flush(c.pendingSince+c.curTimeout, flushTimeout)
		// A timeout flush may have freed the way for in-flight work.
		for len(c.inflight) > 0 && c.inflight[0].tick <= now {
			c.completeOne()
		}
	}
	c.drainCRQ(now)
}

// releaseRetries moves failed spans whose backoff has expired back into
// the CRQ as fresh non-coalesced packets.
func (c *Coalescer) releaseRetries(now uint64) {
	for len(c.retryQ) > 0 && c.retryQ[0].ready <= now {
		var p packet
		c.retryQ, p = retryPop(c.retryQ)
		c.enqueuePacket(p.ready, p)
	}
}

// NextEvent returns the earliest tick at which Advance will make further
// progress — a pending-buffer timeout expiry, a packet becoming ready for
// the CRQ, or a memory response — and whether any such event exists.
// Simulators use it to advance time while a CPU is stalled. Events already
// processed are excluded: a CRQ head that became ready in the past but is
// blocked on a packed MSHR file only progresses at the next completion.
func (c *Coalescer) NextEvent() (uint64, bool) {
	next := ^uint64(0)
	if len(c.pending) > 0 {
		next = c.pendingSince + c.curTimeout
	}
	if len(c.inflight) > 0 && c.inflight[0].tick < next {
		next = c.inflight[0].tick
	}
	if len(c.retryQ) > 0 && c.retryQ[0].ready < next {
		next = c.retryQ[0].ready
	}
	if c.crqLen > 0 {
		if ready := c.crqNextReady(); ready > c.lastAdvance && ready < next {
			next = ready
		}
	}
	return next, next != ^uint64(0)
}

// crqNextReady returns the earliest ready tick among queued packets: the
// head's under FIFO (strict order), the minimum over the whole CRQ under
// the heterogeneity-aware scheduler — which may issue out of FIFO order,
// so a later packet becoming ready is a real event.
func (c *Coalescer) crqNextReady() uint64 {
	if c.laneBytes == nil || c.crqFront().blocked {
		return c.crqFront().ready
	}
	next := c.crqFront().ready
	mask := len(c.crqBuf) - 1
	for i := 1; i < c.crqLen; i++ {
		if r := c.crqBuf[(c.crqHead+i)&mask].ready; r < next {
			next = r
		}
	}
	return next
}

// Drain flushes all pending state and runs the clock forward until every
// outstanding request has completed. It returns the tick at which the
// memory system went idle.
//
// If the only outstanding responses are ones that will never arrive
// (dropped on a faulty link), Drain returns a watchdog error naming the
// oldest of them instead of looping forever — the caller decides how to
// report it.
func (c *Coalescer) Drain(now uint64) (uint64, error) {
	c.Advance(now)
	if len(c.pending) > 0 {
		c.flush(now, flushDrain)
	}
	idle := now
	for len(c.inflight) > 0 || c.crqLen > 0 || len(c.retryQ) > 0 {
		if c.viol != nil {
			return idle, c.viol
		}
		next := ^uint64(0)
		if len(c.inflight) > 0 && c.inflight[0].tick != NeverTick {
			next = c.inflight[0].tick
		}
		if len(c.retryQ) > 0 && c.retryQ[0].ready < next {
			next = c.retryQ[0].ready
		}
		if c.crqLen > 0 {
			if ready := c.crqNextReady(); ready > idle && ready < next {
				next = ready
			}
		}
		if next == ^uint64(0) {
			if w, ok := c.Watchdog(); ok {
				// Everything still in flight is a dropped response: no
				// event will ever fire again. Report instead of hanging.
				return idle, c.watchdogError(w)
			}
			// The CRQ head is ready but blocked with nothing in flight.
			// A blocked head implies a full MSHR file, and every allocated
			// entry is in flight — so this state indicates a bug. Report it
			// as a structured violation instead of tearing the process down.
			v := invariant.Violatef(invariant.RuleCRQStuck, idle, c.DebugState(),
				"CRQ stuck with no requests in flight (%d queued, MSHR free=%d)",
				c.crqLen, c.file.Free())
			c.setViol(v)
			return idle, v
		}
		if next > idle {
			idle = next
		}
		c.releaseRetries(idle)
		if len(c.inflight) > 0 && c.inflight[0].tick <= idle {
			c.completeOne()
		}
		c.drainCRQ(idle)
	}
	if c.viol != nil {
		return idle, c.viol
	}
	if c.degraded {
		// Close the open degraded interval so the stats cover the run.
		c.stats.DegradedCycles += idle - c.degradedAt
		c.degradedAt = idle
	}
	return idle, nil
}

func (c *Coalescer) completeOne() {
	var item completion
	c.inflight, item = completionPop(c.inflight)
	e := item.entry
	// Capture the span before Complete invalidates the entry: a poisoned
	// response may need to re-issue exactly these lines.
	baseLine, lines, write := e.BaseLine(), e.Lines(), e.Write()
	subs, err := c.file.Complete(e)
	if err != nil {
		if v, ok := invariant.As(err); ok {
			c.setViol(v)
		} else if c.viol == nil {
			c.viol = err
		}
		return
	}
	c.freedAt = item.tick
	if item.fault && item.attempt < c.maxPacketRetries() {
		c.requeueFailed(item.tick, item.attempt, baseLine, lines, write, subs, item.cpu, item.critical)
	} else {
		if item.fault {
			c.stats.FailedTargets += uint64(len(subs))
		}
		c.complete(item.tick, subs, item.fault)
	}
	c.drainCRQ(item.tick)
}

func (c *Coalescer) maxPacketRetries() int {
	if c.cfg.MaxPacketRetries == 0 {
		return 8
	}
	return c.cfg.MaxPacketRetries
}

// requeueFailed schedules a failed span for re-issue as a fresh packet —
// deliberately not re-coalesced: it goes straight back to the CRQ — after
// a capped exponential backoff.
func (c *Coalescer) requeueFailed(now uint64, attempt int, baseLine uint64, lines int, write bool, subs []mshr.Sub, cpu uint8, critical bool) {
	base := c.cfg.RetryBackoffCycles
	if base == 0 {
		base = 64
	}
	cap := c.cfg.RetryBackoffCap
	if cap == 0 {
		cap = 4096
	}
	backoff := base << uint(attempt)
	if backoff > cap || backoff < base { // < base catches shift overflow
		backoff = cap
	}
	c.stats.RetriedPackets++
	c.stats.RetryBackoffCycles += backoff
	// subs alias the entry's reusable backing; rebuild durable targets now.
	targets := c.getTargets()
	for _, s := range subs {
		targets = append(targets, mshr.Target{Line: baseLine + uint64(s.LineID), Token: s.Token, Payload: s.Payload})
	}
	p := packet{
		baseLine: baseLine, lines: lines, write: write, targets: targets,
		ready: now + backoff, attempt: attempt + 1, seq: c.retrySeq,
		cpu: cpu, critical: critical,
	}
	c.retrySeq++
	c.retryQ = retryPush(c.retryQ, p)
}

// noteIssue feeds one issue outcome into the degraded-mode sliding window.
// The window is allocated on the first observed error, so a clean run
// never pays for it.
func (c *Coalescer) noteIssue(now uint64, res IssueResult) {
	errored := res.Fault || res.Dropped || res.Retries > 0
	if c.faultWin == nil {
		if !errored {
			return
		}
		w := c.cfg.DegradeWindow
		if w == 0 {
			w = 64
		}
		c.faultWin = make([]bool, w)
	}
	if c.faultWin[c.faultPos] {
		c.faultCnt--
	}
	c.faultWin[c.faultPos] = errored
	if errored {
		c.faultCnt++
	}
	c.faultPos++
	if c.faultPos == len(c.faultWin) {
		c.faultPos = 0
	}
	thr := c.cfg.DegradeThreshold
	if thr == 0 {
		thr = 0.25
	}
	enter := int(thr*float64(len(c.faultWin)) + 0.5)
	if enter < 1 {
		enter = 1
	}
	switch {
	case !c.degraded && c.faultCnt >= enter:
		c.degraded = true
		c.degradedAt = now
		c.stats.DegradedEntries++
	case c.degraded && c.faultCnt <= enter/2:
		c.degraded = false
		c.stats.DegradedCycles += now - c.degradedAt
	}
}

// Degraded reports whether the DMC is currently capping packets at one
// cache line because of the observed link error rate.
func (c *Coalescer) Degraded() bool { return c.degraded }

// WatchdogInfo describes the oldest memory response that will never
// arrive, for the simulator's watchdog diagnostic.
type WatchdogInfo struct {
	// Dropped is how many in-flight responses will never arrive.
	Dropped int
	// Line is the base cache line of the oldest dropped entry; Lines and
	// Write complete its span, Waiters its subentry count.
	Line    uint64
	Lines   int
	Write   bool
	Waiters int
	// Entry is the owning MSHR entry's slot in the file.
	Entry int
	// IssuedAt is the tick the doomed request was dispatched.
	IssuedAt uint64
}

// Watchdog scans the in-flight set for responses that will never arrive
// and, if any exist, describes the oldest (by issue tick, then MSHR slot —
// a total order independent of heap layout).
func (c *Coalescer) Watchdog() (WatchdogInfo, bool) {
	var w WatchdogInfo
	for i := range c.inflight {
		it := &c.inflight[i]
		if it.tick != NeverTick {
			continue
		}
		w.Dropped++
		e := it.entry
		if w.Dropped == 1 || it.issuedAt < w.IssuedAt ||
			(it.issuedAt == w.IssuedAt && e.Index() < w.Entry) {
			w.Line = e.BaseLine()
			w.Lines = e.Lines()
			w.Write = e.Write()
			w.Waiters = len(e.Subs())
			w.Entry = e.Index()
			w.IssuedAt = it.issuedAt
		}
	}
	return w, w.Dropped > 0
}

// DoomedTokens calls fn for every waiter token attached to an in-flight
// request whose response will never arrive (a dropped packet). Such
// tokens are permanently leaked — the completion path that would recycle
// them is unreachable — so a token-ring allocator that wraps onto one of
// their slots may reclaim the slot instead of reporting reuse.
func (c *Coalescer) DoomedTokens(fn func(token uint64)) {
	for i := range c.inflight {
		it := &c.inflight[i]
		if it.tick != NeverTick {
			continue
		}
		for _, sub := range it.entry.Subs() {
			fn(sub.Token)
		}
	}
}

// WatchdogError renders the watchdog diagnostic as an error, or nil when
// every in-flight response is still expected.
func (c *Coalescer) WatchdogError() error {
	w, ok := c.Watchdog()
	if !ok {
		return nil
	}
	return c.watchdogError(w)
}

// watchdogError renders a deterministic diagnostic for a drained-out run
// whose remaining responses will never arrive. The ErrWatchdog sentinel is
// spliced in with %w so soak harnesses can classify the error while the
// rendered message stays stable.
func (c *Coalescer) watchdogError(w WatchdogInfo) error {
	return fmt.Errorf("coalescer: %w: %d response(s) never arrived; oldest: line %d "+
		"(MSHR entry %d, %d lines, write=%v, %d waiters, issued at %d); %s",
		ErrWatchdog, w.Dropped, w.Line, w.Entry, w.Lines, w.Write, w.Waiters, w.IssuedAt, c.DebugState())
}
