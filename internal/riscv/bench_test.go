package riscv

import (
	"testing"

	"hmccoal/internal/trace"
)

// BenchmarkStep measures the emulator's instruction loop over the VecAdd
// kernel — fetch, decode, and the sparse-memory load/store path that
// dominates trace generation. The program is reloaded when it halts so
// every iteration executes exactly one instruction.
func BenchmarkStep(b *testing.B) {
	prog, err := Assemble(VecAddProgram(1 << 20))
	if err != nil {
		b.Fatal(err)
	}
	nop := func(a trace.Access) {}
	cpu := NewCPU()
	cpu.LoadProgram(0x1000, prog)
	cpu.SetTracer(nop)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cpu.Halted() {
			b.StopTimer()
			cpu = NewCPU()
			cpu.LoadProgram(0x1000, prog)
			cpu.SetTracer(nop)
			b.StartTimer()
		}
		if err := cpu.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemoryWalk measures the sparse-memory page path directly: a
// strided store/load walk over a 64 MiB footprint.
func BenchmarkMemoryWalk(b *testing.B) {
	cpu := NewCPU()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i*4096+i*8) % (64 << 20)
		cpu.store(addr, 8, uint64(i))
		if v := cpu.load(addr, 8); v != uint64(i) {
			b.Fatalf("memory corruption at %#x", addr)
		}
	}
}
