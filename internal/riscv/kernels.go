package riscv

import "fmt"

// Kernel layout constants shared by the sample programs: three disjoint
// 1 MiB regions for operands and results.
const (
	KernelABase = 0x100000
	KernelBBase = 0x200000
	KernelCBase = 0x300000
	KernelXBase = 0x400000
	KernelPBase = 0x500000
)

// VecAddProgram returns RV64I assembly for c[i] = a[i] + b[i] over n 64-bit
// elements — the STREAM-like sequential kernel.
func VecAddProgram(n int) string {
	return fmt.Sprintf(`
        li   t0, %d          # a
        li   t1, %d          # b
        li   t2, %d          # c
        li   t3, %d          # elements remaining
loop:   beqz t3, done
        ld   a0, 0(t0)
        ld   a1, 0(t1)
        add  a0, a0, a1
        sd   a0, 0(t2)
        addi t0, t0, 8
        addi t1, t1, 8
        addi t2, t2, 8
        addi t3, t3, -1
        j    loop
done:   fence
        ecall
`, KernelABase, KernelBBase, KernelCBase, n)
}

// VecAddUnrolledProgram returns the 8×-unrolled form of VecAddProgram —
// the shape optimizing compilers emit, whose back-to-back loads give the
// memory coalescer whole-cache-line runs to fuse. n must be a multiple
// of 8.
func VecAddUnrolledProgram(n int) string {
	if n%8 != 0 {
		panic("VecAddUnrolledProgram: n must be a multiple of 8")
	}
	body := ""
	for i := 0; i < 8; i++ {
		body += fmt.Sprintf("        ld   a%d, %d(t0)\n", i, i*8)
	}
	for i := 0; i < 8; i++ {
		body += fmt.Sprintf("        ld   s%d, %d(t1)\n", i+2, i*8)
	}
	for i := 0; i < 8; i++ {
		body += fmt.Sprintf("        add  a%d, a%d, s%d\n        sd   a%d, %d(t2)\n",
			i, i, i+2, i, i*8)
	}
	return fmt.Sprintf(`
        li   t0, %d          # a
        li   t1, %d          # b
        li   t2, %d          # c
        li   t3, %d          # 8-element groups remaining
loop:   beqz t3, done
%s        addi t0, t0, 64
        addi t1, t1, 64
        addi t2, t2, 64
        addi t3, t3, -1
        j    loop
done:   fence
        ecall
`, KernelABase, KernelBBase, KernelCBase, n/8, body)
}

// GatherProgram returns RV64I assembly for c[i] = a[idx[i]]: a sequential
// index stream driving data-dependent loads — the SG-like kernel. The
// caller must seed idx (8-byte indices) at KernelBBase.
func GatherProgram(n int) string {
	return fmt.Sprintf(`
        li   t0, %d          # a (data table)
        li   t1, %d          # idx
        li   t2, %d          # c
        li   t3, %d          # elements remaining
loop:   beqz t3, done
        ld   a0, 0(t1)       # index
        slli a0, a0, 3
        add  a0, a0, t0
        ld   a1, 0(a0)       # gather
        sd   a1, 0(t2)
        addi t1, t1, 8
        addi t2, t2, 8
        addi t3, t3, -1
        j    loop
done:   fence
        ecall
`, KernelABase, KernelBBase, KernelCBase, n)
}

// SpMVProgram returns RV64IM assembly for a CSR sparse matrix-vector
// multiply y = A·x over `rows` rows — the HPCG-like kernel. Memory layout
// (all 64-bit words):
//
//	KernelABase: vals   (nonzero values)
//	KernelBBase: colIdx (column indices, one per value)
//	KernelCBase: y      (output, one per row)
//	KernelXBase: x      (dense vector)
//	KernelPBase: rowPtr (rows+1 entries)
func SpMVProgram(rows int) string {
	return fmt.Sprintf(`
        li   s0, %d          # vals
        li   s1, %d          # colIdx
        li   s2, %d          # y
        li   s3, %d          # x
        li   s4, %d          # rowPtr
        li   s5, %d          # rows remaining
        li   s6, 0           # row counter
rows:   beqz s5, done
        slli t0, s6, 3
        add  t1, s4, t0
        ld   t2, 0(t1)       # rowPtr[r]
        ld   t3, 8(t1)       # rowPtr[r+1]
        li   a0, 0           # accumulator
inner:  bge  t2, t3, store
        slli t4, t2, 3
        add  t5, s0, t4
        ld   a1, 0(t5)       # vals[k]
        add  t5, s1, t4
        ld   a2, 0(t5)       # colIdx[k]
        slli a2, a2, 3
        add  a2, s3, a2
        ld   a3, 0(a2)       # x[col]
        mul  a1, a1, a3
        add  a0, a0, a1
        addi t2, t2, 1
        j    inner
store:  slli t0, s6, 3
        add  t0, s2, t0
        sd   a0, 0(t0)       # y[r]
        addi s6, s6, 1
        addi s5, s5, -1
        j    rows
done:   fence
        ecall
`, KernelABase, KernelBBase, KernelCBase, KernelXBase, KernelPBase, rows)
}

// ReduceProgram returns RV64I assembly summing n 64-bit elements at
// KernelABase into a0 — a pure sequential read kernel.
func ReduceProgram(n int) string {
	return fmt.Sprintf(`
        li   t0, %d
        li   t3, %d
        li   a0, 0
loop:   beqz t3, done
        ld   a1, 0(t0)
        add  a0, a0, a1
        addi t0, t0, 8
        addi t3, t3, -1
        j    loop
done:   ecall
`, KernelABase, n)
}
