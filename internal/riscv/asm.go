package riscv

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates RV64I assembly into encoded instructions. The dialect
// covers the base ISA plus the common pseudo-instructions:
//
//	label:                     ; labels
//	add  rd, rs1, rs2          ; register ops
//	addi rd, rs1, imm
//	ld   rd, off(rs1)          ; loads/stores with displacement syntax
//	beq  rs1, rs2, label       ; branches to labels
//	jal  rd, label / j label
//	li rd, imm  mv rd, rs  nop  ret  beqz/bnez rs, label  fence  ecall
//	# comment                  ; '#' and '//' comments
//
// Immediates accept decimal and 0x hex. Registers accept x0–x31 and the
// standard ABI names.
func Assemble(src string) ([]uint32, error) {
	lines := strings.Split(src, "\n")
	type item struct {
		mnemonic string
		args     []string
		line     int
	}
	var items []item
	labels := map[string]int{} // label → instruction index

	// Pass 1: strip comments, record labels, expand multi-word pseudos.
	for ln, raw := range lines {
		s := raw
		if i := strings.IndexAny(s, "#"); i >= 0 {
			s = s[:i]
		}
		if i := strings.Index(s, "//"); i >= 0 {
			s = s[:i]
		}
		s = strings.TrimSpace(s)
		for s != "" {
			colon := strings.Index(s, ":")
			if colon < 0 || strings.ContainsAny(s[:colon], " \t,") {
				break
			}
			label := strings.TrimSpace(s[:colon])
			if label == "" {
				return nil, fmt.Errorf("riscv asm: line %d: empty label", ln+1)
			}
			if _, dup := labels[label]; dup {
				return nil, fmt.Errorf("riscv asm: line %d: duplicate label %q", ln+1, label)
			}
			labels[label] = len(items)
			s = strings.TrimSpace(s[colon+1:])
		}
		if s == "" {
			continue
		}
		fields := strings.Fields(s)
		mnemonic := strings.ToLower(fields[0])
		argStr := strings.TrimSpace(s[len(fields[0]):])
		var args []string
		if argStr != "" {
			for _, a := range strings.Split(argStr, ",") {
				args = append(args, strings.TrimSpace(a))
			}
		}
		// li may expand to two instructions, so expansion happens here.
		if mnemonic == "li" {
			if len(args) != 2 {
				return nil, fmt.Errorf("riscv asm: line %d: li needs rd, imm", ln+1)
			}
			imm, err := parseImm(args[1])
			if err != nil {
				return nil, fmt.Errorf("riscv asm: line %d: %v", ln+1, err)
			}
			if imm >= -2048 && imm < 2048 {
				items = append(items, item{"addi", []string{args[0], "zero", args[1]}, ln + 1})
			} else {
				if imm < -(1<<31) || imm >= 1<<31 {
					return nil, fmt.Errorf("riscv asm: line %d: li immediate %d out of 32-bit range", ln+1, imm)
				}
				low := imm << 52 >> 52 // sign-extended low 12 bits
				high := (imm - low) >> 12
				items = append(items, item{"lui", []string{args[0], strconv.FormatInt(high&0xfffff, 10)}, ln + 1})
				if low != 0 {
					items = append(items, item{"addiw", []string{args[0], args[0], strconv.FormatInt(low, 10)}, ln + 1})
				}
			}
			continue
		}
		items = append(items, item{mnemonic, args, ln + 1})
	}

	// Pass 2: encode.
	prog := make([]uint32, 0, len(items))
	for idx, it := range items {
		enc, err := encode(it.mnemonic, it.args, idx, labels)
		if err != nil {
			return nil, fmt.Errorf("riscv asm: line %d: %v", it.line, err)
		}
		prog = append(prog, enc)
	}
	return prog, nil
}

// MustAssemble is Assemble but panics on error, for known-good kernels.
func MustAssemble(src string) []uint32 {
	prog, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return prog
}

var regNames = func() map[string]uint32 {
	m := map[string]uint32{
		"zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
		"t0": 5, "t1": 6, "t2": 7, "s0": 8, "fp": 8, "s1": 9,
		"a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15, "a6": 16, "a7": 17,
		"s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23, "s8": 24, "s9": 25,
		"s10": 26, "s11": 27, "t3": 28, "t4": 29, "t5": 30, "t6": 31,
	}
	for i := 0; i < 32; i++ {
		m[fmt.Sprintf("x%d", i)] = uint32(i)
	}
	return m
}()

func parseReg(s string) (uint32, error) {
	r, ok := regNames[strings.ToLower(s)]
	if !ok {
		return 0, fmt.Errorf("unknown register %q", s)
	}
	return r, nil
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}

// parseMem parses "off(reg)" displacement syntax.
func parseMem(s string) (int64, uint32, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	off := int64(0)
	if strings.TrimSpace(s[:open]) != "" {
		var err error
		off, err = parseImm(strings.TrimSpace(s[:open]))
		if err != nil {
			return 0, 0, err
		}
	}
	reg, err := parseReg(strings.TrimSpace(s[open+1 : len(s)-1]))
	if err != nil {
		return 0, 0, err
	}
	return off, reg, nil
}

// Instruction format encoders.
func encR(opcode, funct3, funct7, rd, rs1, rs2 uint32) uint32 {
	return funct7<<25 | rs2<<20 | rs1<<15 | funct3<<12 | rd<<7 | opcode
}

func encI(opcode, funct3, rd, rs1 uint32, imm int64) (uint32, error) {
	if imm < -2048 || imm > 2047 {
		return 0, fmt.Errorf("I-immediate %d out of range", imm)
	}
	return uint32(imm)&0xfff<<20 | rs1<<15 | funct3<<12 | rd<<7 | opcode, nil
}

func encS(opcode, funct3, rs1, rs2 uint32, imm int64) (uint32, error) {
	if imm < -2048 || imm > 2047 {
		return 0, fmt.Errorf("S-immediate %d out of range", imm)
	}
	u := uint32(imm) & 0xfff
	return u>>5<<25 | rs2<<20 | rs1<<15 | funct3<<12 | u&0x1f<<7 | opcode, nil
}

func encB(funct3, rs1, rs2 uint32, off int64) (uint32, error) {
	if off < -4096 || off > 4094 || off&1 != 0 {
		return 0, fmt.Errorf("branch offset %d out of range", off)
	}
	u := uint32(off) & 0x1fff
	return u>>12<<31 | u>>5&0x3f<<25 | rs2<<20 | rs1<<15 | funct3<<12 |
		u>>1&0xf<<8 | u>>11&1<<7 | 0x63, nil
}

func encU(opcode, rd uint32, imm int64) (uint32, error) {
	if imm < 0 || imm > 0xfffff {
		return 0, fmt.Errorf("U-immediate %d out of range", imm)
	}
	return uint32(imm)<<12 | rd<<7 | opcode, nil
}

func encJ(rd uint32, off int64) (uint32, error) {
	if off < -(1<<20) || off >= 1<<20 || off&1 != 0 {
		return 0, fmt.Errorf("jump offset %d out of range", off)
	}
	u := uint32(off) & 0x1fffff
	return u>>20<<31 | u>>1&0x3ff<<21 | u>>11&1<<20 | u>>12&0xff<<12 | rd<<7 | 0x6f, nil
}

type rSpec struct{ funct3, funct7, opcode uint32 }

var rOps = map[string]rSpec{
	"add": {0, 0, 0x33}, "sub": {0, 0x20, 0x33}, "sll": {1, 0, 0x33},
	"slt": {2, 0, 0x33}, "sltu": {3, 0, 0x33}, "xor": {4, 0, 0x33},
	"srl": {5, 0, 0x33}, "sra": {5, 0x20, 0x33}, "or": {6, 0, 0x33}, "and": {7, 0, 0x33},
	"addw": {0, 0, 0x3b}, "subw": {0, 0x20, 0x3b}, "sllw": {1, 0, 0x3b},
	"srlw": {5, 0, 0x3b}, "sraw": {5, 0x20, 0x3b},
	// RV64M
	"mul": {0, 1, 0x33}, "mulh": {1, 1, 0x33}, "mulhsu": {2, 1, 0x33}, "mulhu": {3, 1, 0x33},
	"div": {4, 1, 0x33}, "divu": {5, 1, 0x33}, "rem": {6, 1, 0x33}, "remu": {7, 1, 0x33},
	"mulw": {0, 1, 0x3b}, "divw": {4, 1, 0x3b}, "divuw": {5, 1, 0x3b},
	"remw": {6, 1, 0x3b}, "remuw": {7, 1, 0x3b},
}

var iOps = map[string]struct{ funct3, opcode uint32 }{
	"addi": {0, 0x13}, "slti": {2, 0x13}, "sltiu": {3, 0x13},
	"xori": {4, 0x13}, "ori": {6, 0x13}, "andi": {7, 0x13},
	"addiw": {0, 0x1b},
}

var shiftOps = map[string]struct {
	funct3, opcode, high uint32
	maxShamt             int64
}{
	"slli": {1, 0x13, 0, 63}, "srli": {5, 0x13, 0, 63}, "srai": {5, 0x13, 0x400 >> 5, 63},
	"slliw": {1, 0x1b, 0, 31}, "srliw": {5, 0x1b, 0, 31}, "sraiw": {5, 0x1b, 0x20, 31},
}

var loadOps = map[string]uint32{
	"lb": 0, "lh": 1, "lw": 2, "ld": 3, "lbu": 4, "lhu": 5, "lwu": 6,
}

var storeOps = map[string]uint32{"sb": 0, "sh": 1, "sw": 2, "sd": 3}

var branchOps = map[string]uint32{
	"beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7,
}

func encode(m string, args []string, idx int, labels map[string]int) (uint32, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s needs %d operands, got %d", m, n, len(args))
		}
		return nil
	}
	labelOff := func(s string) (int64, error) {
		if target, ok := labels[s]; ok {
			return int64(target-idx) * 4, nil
		}
		return parseImm(s)
	}

	switch {
	case m == "nop":
		return encI(0x13, 0, 0, 0, 0)
	case m == "ret":
		return encI(0x67, 0, 0, 1, 0) // jalr x0, 0(ra)
	case m == "ecall":
		return 0x73, nil
	case m == "ebreak":
		return 0x00100073, nil
	case m == "fence":
		return 0x0ff0000f, nil
	case m == "mv":
		if err := need(2); err != nil {
			return 0, err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return 0, err
		}
		rs, err := parseReg(args[1])
		if err != nil {
			return 0, err
		}
		return encI(0x13, 0, rd, rs, 0)
	case m == "j":
		if err := need(1); err != nil {
			return 0, err
		}
		off, err := labelOff(args[0])
		if err != nil {
			return 0, err
		}
		return encJ(0, off)
	case m == "jal":
		if len(args) == 1 { // jal label → jal ra, label
			args = []string{"ra", args[0]}
		}
		if err := need(2); err != nil {
			return 0, err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return 0, err
		}
		off, err := labelOff(args[1])
		if err != nil {
			return 0, err
		}
		return encJ(rd, off)
	case m == "jalr":
		if err := need(2); err != nil {
			return 0, err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return 0, err
		}
		off, rs1, err := parseMem(args[1])
		if err != nil {
			return 0, err
		}
		return encI(0x67, 0, rd, rs1, off)
	case m == "beqz" || m == "bnez":
		if err := need(2); err != nil {
			return 0, err
		}
		f3 := uint32(0)
		if m == "bnez" {
			f3 = 1
		}
		rs, err := parseReg(args[0])
		if err != nil {
			return 0, err
		}
		off, err := labelOff(args[1])
		if err != nil {
			return 0, err
		}
		return encB(f3, rs, 0, off)
	case m == "lui" || m == "auipc":
		if err := need(2); err != nil {
			return 0, err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return 0, err
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return 0, err
		}
		op := uint32(0x37)
		if m == "auipc" {
			op = 0x17
		}
		return encU(op, rd, imm)
	}

	if spec, ok := rOps[m]; ok {
		if err := need(3); err != nil {
			return 0, err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return 0, err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return 0, err
		}
		rs2, err := parseReg(args[2])
		if err != nil {
			return 0, err
		}
		return encR(spec.opcode, spec.funct3, spec.funct7, rd, rs1, rs2), nil
	}
	if spec, ok := iOps[m]; ok {
		if err := need(3); err != nil {
			return 0, err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return 0, err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return 0, err
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return 0, err
		}
		return encI(spec.opcode, spec.funct3, rd, rs1, imm)
	}
	if spec, ok := shiftOps[m]; ok {
		if err := need(3); err != nil {
			return 0, err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return 0, err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return 0, err
		}
		shamt, err := parseImm(args[2])
		if err != nil {
			return 0, err
		}
		if shamt < 0 || shamt > spec.maxShamt {
			return 0, fmt.Errorf("shift amount %d out of range", shamt)
		}
		return spec.high<<25 | uint32(shamt)<<20 | rs1<<15 | spec.funct3<<12 | rd<<7 | spec.opcode, nil
	}
	if f3, ok := loadOps[m]; ok {
		if err := need(2); err != nil {
			return 0, err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return 0, err
		}
		off, rs1, err := parseMem(args[1])
		if err != nil {
			return 0, err
		}
		return encI(0x03, f3, rd, rs1, off)
	}
	if f3, ok := storeOps[m]; ok {
		if err := need(2); err != nil {
			return 0, err
		}
		rs2, err := parseReg(args[0])
		if err != nil {
			return 0, err
		}
		off, rs1, err := parseMem(args[1])
		if err != nil {
			return 0, err
		}
		return encS(0x23, f3, rs1, rs2, off)
	}
	if f3, ok := branchOps[m]; ok {
		if err := need(3); err != nil {
			return 0, err
		}
		rs1, err := parseReg(args[0])
		if err != nil {
			return 0, err
		}
		rs2, err := parseReg(args[1])
		if err != nil {
			return 0, err
		}
		off, err := labelOff(args[2])
		if err != nil {
			return 0, err
		}
		return encB(f3, rs1, rs2, off)
	}
	return 0, fmt.Errorf("unknown mnemonic %q", m)
}
