package riscv

import (
	"encoding/binary"
	"strings"
	"testing"

	"hmccoal/internal/trace"
)

// runAsm assembles, loads and runs a program, returning the CPU.
func runAsm(t *testing.T, src string, setup func(*CPU)) *CPU {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCPU()
	c.LoadProgram(0x1000, prog)
	if setup != nil {
		setup(c)
	}
	if _, err := c.Run(1 << 22); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestKnownEncodings(t *testing.T) {
	// Cross-checked against the RISC-V ISA manual / GNU as.
	cases := []struct {
		src  string
		want uint32
	}{
		{"addi x1, x2, 10", 0x00a10093},
		{"add x3, x4, x5", 0x005201b3},
		{"sub x3, x4, x5", 0x405201b3},
		{"ld a0, 8(sp)", 0x00813503},
		{"sd a0, 16(sp)", 0x00a13823},
		{"lui t0, 0x12345", 0x123452b7},
		{"jalr x0, 0(ra)", 0x00008067},
		{"ecall", 0x00000073},
		{"sraiw a1, a1, 3", 0x4035d59b},
		{"srai a1, a1, 40", 0x4285d593},
		{"beq x1, x2, 8", 0x00208463},
		{"jal ra, 2048", 0x001000ef},
	}
	for _, c := range cases {
		prog, err := Assemble(c.src)
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
			continue
		}
		if prog[0] != c.want {
			t.Errorf("%s = %#08x, want %#08x", c.src, prog[0], c.want)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	for _, src := range []string{
		"frob x1, x2",        // unknown mnemonic
		"add x1, x2",         // wrong arity
		"addi x1, x2, 5000",  // imm out of range
		"ld a0, 8[sp]",       // bad memory syntax
		"add q1, x2, x3",     // bad register
		"beq x1, x2, nosuch", // unknown label is parsed as immediate -> error
		"dup: nop\ndup: nop", // duplicate label
		"slli x1, x1, 70",    // shamt out of range
	} {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded", src)
		}
	}
}

func TestArithmetic(t *testing.T) {
	c := runAsm(t, `
        li a0, 100
        li a1, -3
        add a2, a0, a1     # 97
        sub a3, a0, a1     # 103
        slli a4, a0, 4     # 1600
        srai a5, a1, 1     # -2
        and a6, a0, a1     # 100 & -3
        ecall
    `, nil)
	if c.X[12] != 97 || c.X[13] != 103 || c.X[14] != 1600 {
		t.Errorf("a2,a3,a4 = %d,%d,%d", c.X[12], c.X[13], c.X[14])
	}
	if int64(c.X[15]) != -2 {
		t.Errorf("a5 = %d, want -2", int64(c.X[15]))
	}
	if c.X[16] != 100&uint64(0xfffffffffffffffd) {
		t.Errorf("a6 = %#x", c.X[16])
	}
}

func TestLargeLi(t *testing.T) {
	c := runAsm(t, "li a0, 0x12345678\nli a1, -1000000\necall", nil)
	if c.X[10] != 0x12345678 {
		t.Errorf("a0 = %#x, want 0x12345678", c.X[10])
	}
	if int64(c.X[11]) != -1000000 {
		t.Errorf("a1 = %d, want -1000000", int64(c.X[11]))
	}
}

func TestWordOps(t *testing.T) {
	c := runAsm(t, `
        li a0, 0x7fffffff
        addiw a1, a0, 1       # overflows to -2^31
        li a2, 1
        sllw a3, a2, a0       # shift by 31 (mod 32)
        ecall
    `, nil)
	if int64(c.X[11]) != -2147483648 {
		t.Errorf("addiw overflow = %d", int64(c.X[11]))
	}
	if int64(c.X[13]) != -2147483648 {
		t.Errorf("sllw = %d", int64(c.X[13]))
	}
}

func TestX0IsHardwiredZero(t *testing.T) {
	c := runAsm(t, "li t0, 7\nadd x0, t0, t0\nadd a0, x0, t0\necall", nil)
	if c.X[0] != 0 {
		t.Fatal("x0 written")
	}
	if c.X[10] != 7 {
		t.Errorf("a0 = %d, want 7", c.X[10])
	}
}

func TestLoadsStoresAndMemory(t *testing.T) {
	c := runAsm(t, `
        li t0, 0x2000
        li a0, -2
        sd a0, 0(t0)
        lw a1, 0(t0)         # sign-extended -2
        lwu a2, 0(t0)        # zero-extended
        lbu a3, 7(t0)
        ecall
    `, nil)
	if int64(c.X[11]) != -2 {
		t.Errorf("lw = %d", int64(c.X[11]))
	}
	if c.X[12] != 0xfffffffe {
		t.Errorf("lwu = %#x", c.X[12])
	}
	if c.X[13] != 0xff {
		t.Errorf("lbu = %#x", c.X[13])
	}
}

func TestBranchesAndLoops(t *testing.T) {
	// Sum 1..10 with a loop.
	c := runAsm(t, `
        li a0, 0
        li t0, 1
        li t1, 11
loop:   beq t0, t1, done
        add a0, a0, t0
        addi t0, t0, 1
        j loop
done:   ecall
    `, nil)
	if c.X[10] != 55 {
		t.Errorf("sum = %d, want 55", c.X[10])
	}
}

func TestCallRet(t *testing.T) {
	c := runAsm(t, `
        li a0, 5
        jal ra, double
        jal ra, double
        ecall
double: add a0, a0, a0
        ret
    `, nil)
	if c.X[10] != 20 {
		t.Errorf("a0 = %d, want 20", c.X[10])
	}
}

func TestVecAddKernel(t *testing.T) {
	const n = 64
	var got []trace.Access
	c := runAsm(t, VecAddProgram(n), func(c *CPU) {
		for i := 0; i < n; i++ {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], uint64(i))
			c.WriteMem(KernelABase+uint64(i)*8, buf[:])
			binary.LittleEndian.PutUint64(buf[:], uint64(100*i))
			c.WriteMem(KernelBBase+uint64(i)*8, buf[:])
		}
		c.SetTracer(func(a trace.Access) { got = append(got, a) })
	})
	// Verify results.
	for i := 0; i < n; i++ {
		b := c.ReadMem(KernelCBase+uint64(i)*8, 8)
		if v := binary.LittleEndian.Uint64(b); v != uint64(101*i) {
			t.Fatalf("c[%d] = %d, want %d", i, v, 101*i)
		}
	}
	// Verify the trace: 2 loads + 1 store per element + final fence.
	loads, stores, fences := 0, 0, 0
	for _, a := range got {
		switch a.Kind {
		case trace.Load:
			loads++
		case trace.Store:
			stores++
		case trace.FenceOp:
			fences++
		}
	}
	if loads != 2*n || stores != n || fences != 1 {
		t.Errorf("trace = %d loads, %d stores, %d fences", loads, stores, fences)
	}
	// Ticks must be monotone.
	for i := 1; i < len(got); i++ {
		if got[i].Tick < got[i-1].Tick {
			t.Fatal("trace ticks not monotone")
		}
	}
}

func TestGatherKernel(t *testing.T) {
	const n = 32
	c := runAsm(t, GatherProgram(n), func(c *CPU) {
		var buf [8]byte
		for i := 0; i < 256; i++ {
			binary.LittleEndian.PutUint64(buf[:], uint64(i*i))
			c.WriteMem(KernelABase+uint64(i)*8, buf[:])
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[:], uint64((i*37)%256))
			c.WriteMem(KernelBBase+uint64(i)*8, buf[:])
		}
	})
	for i := 0; i < n; i++ {
		idx := uint64((i * 37) % 256)
		b := c.ReadMem(KernelCBase+uint64(i)*8, 8)
		if v := binary.LittleEndian.Uint64(b); v != idx*idx {
			t.Fatalf("c[%d] = %d, want %d", i, v, idx*idx)
		}
	}
}

func TestReduceKernel(t *testing.T) {
	const n = 100
	c := runAsm(t, ReduceProgram(n), func(c *CPU) {
		var buf [8]byte
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[:], uint64(i))
			c.WriteMem(KernelABase+uint64(i)*8, buf[:])
		}
	})
	if c.X[10] != 4950 {
		t.Errorf("sum = %d, want 4950", c.X[10])
	}
}

func TestRunHaltsAndCounts(t *testing.T) {
	prog := MustAssemble("nop\nnop\necall")
	c := NewCPU()
	c.LoadProgram(0, prog)
	steps, err := c.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 3 || !c.Halted() {
		t.Errorf("steps = %d halted = %v", steps, c.Halted())
	}
	if _, err := c.Run(1); err != nil {
		t.Error("Run on halted hart errored (should be 0 steps, nil)")
	}
	if err := c.Step(); err == nil {
		t.Error("Step on halted hart succeeded")
	}
}

func TestRunTimeout(t *testing.T) {
	prog := MustAssemble("loop: j loop")
	c := NewCPU()
	c.LoadProgram(0, prog)
	if _, err := c.Run(1000); err == nil {
		t.Fatal("infinite loop did not report timeout")
	}
}

func TestIllegalInstruction(t *testing.T) {
	c := NewCPU()
	c.LoadProgram(0, []uint32{0xffffffff})
	if err := c.Step(); err == nil {
		t.Fatal("illegal instruction executed")
	}
}

func TestFenceTracesEvent(t *testing.T) {
	var fences int
	c := NewCPU()
	c.SetTracer(func(a trace.Access) {
		if a.Kind == trace.FenceOp {
			fences++
		}
	})
	c.LoadProgram(0, MustAssemble("fence\necall"))
	if _, err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	if fences != 1 {
		t.Errorf("fences = %d, want 1", fences)
	}
}

func TestHartAndCycleStamping(t *testing.T) {
	var got []trace.Access
	c := NewCPU()
	c.Hart = 5
	c.InstrTicks = 3
	c.SetTracer(func(a trace.Access) { got = append(got, a) })
	c.LoadProgram(0, MustAssemble("li t0, 0x2000\nld a0, 0(t0)\necall"))
	if _, err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].CPU != 5 {
		t.Fatalf("trace = %+v", got)
	}
	if got[0].Tick != 3 { // one li retired before the load
		t.Errorf("tick = %d, want 3", got[0].Tick)
	}
}

func TestRV64MArithmetic(t *testing.T) {
	c := runAsm(t, `
        li a0, -7
        li a1, 3
        mul a2, a0, a1       # -21
        div a3, a0, a1       # -2 (trunc toward zero)
        rem a4, a0, a1       # -1
        divu a5, a0, a1      # huge / 3
        li t0, 0
        div a6, a0, t0       # div by zero → -1
        rem a7, a0, t0       # rem by zero → dividend
        ecall
    `, nil)
	if int64(c.X[12]) != -21 {
		t.Errorf("mul = %d", int64(c.X[12]))
	}
	if int64(c.X[13]) != -2 {
		t.Errorf("div = %d", int64(c.X[13]))
	}
	if int64(c.X[14]) != -1 {
		t.Errorf("rem = %d", int64(c.X[14]))
	}
	if c.X[15] != (^uint64(6))/3 {
		t.Errorf("divu = %d, want %d", c.X[15], (^uint64(6))/3)
	}
	if c.X[16] != ^uint64(0) {
		t.Errorf("div by zero = %#x, want all ones", c.X[16])
	}
	if int64(c.X[17]) != -7 {
		t.Errorf("rem by zero = %d, want dividend", int64(c.X[17]))
	}
}

func TestRV64MHighMultiply(t *testing.T) {
	c := runAsm(t, `
        li a0, -1
        li a1, -1
        mulh a2, a0, a1      # (-1)*(-1) = 1 → high 0
        mulhu a3, a0, a1     # max*max → high = ~1 = 0xfffffffffffffffe
        mulhsu a4, a0, a1    # -1 * max unsigned → high = -1
        ecall
    `, nil)
	if c.X[12] != 0 {
		t.Errorf("mulh = %#x, want 0", c.X[12])
	}
	if c.X[13] != 0xfffffffffffffffe {
		t.Errorf("mulhu = %#x", c.X[13])
	}
	if int64(c.X[14]) != -1 {
		t.Errorf("mulhsu = %d, want -1", int64(c.X[14]))
	}
}

func TestRV64MWordForms(t *testing.T) {
	c := runAsm(t, `
        li a0, 100000
        li a1, 100000
        mulw a2, a0, a1      # 10^10 truncated to 32 bits, sign-extended
        li a3, -10
        li a4, 3
        divw a5, a3, a4      # -3
        remw a6, a3, a4      # -1
        ecall
    `, nil)
	want := int64(int32(uint32(10000000000 & 0xffffffff)))
	if int64(c.X[12]) != want {
		t.Errorf("mulw = %d, want %d", int64(c.X[12]), want)
	}
	if int64(c.X[15]) != -3 || int64(c.X[16]) != -1 {
		t.Errorf("divw/remw = %d/%d", int64(c.X[15]), int64(c.X[16]))
	}
}

func TestSpMVKernel(t *testing.T) {
	// 3×3 matrix in CSR:
	//   [2 0 1]      x = [1 2 3]ᵀ
	//   [0 3 0]  →   y = [5, 6, 28]
	//   [4 0 8]
	vals := []uint64{2, 1, 3, 4, 8}
	cols := []uint64{0, 2, 1, 0, 2}
	rowPtr := []uint64{0, 2, 3, 5}
	x := []uint64{1, 2, 3}
	c := runAsm(t, SpMVProgram(3), func(c *CPU) {
		var buf [8]byte
		put := func(base uint64, vs []uint64) {
			for i, v := range vs {
				binary.LittleEndian.PutUint64(buf[:], v)
				c.WriteMem(base+uint64(i)*8, buf[:])
			}
		}
		put(KernelABase, vals)
		put(KernelBBase, cols)
		put(KernelPBase, rowPtr)
		put(KernelXBase, x)
	})
	want := []uint64{5, 6, 28}
	for i, w := range want {
		got := binary.LittleEndian.Uint64(c.ReadMem(KernelCBase+uint64(i)*8, 8))
		if got != w {
			t.Errorf("y[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestKnownMEncodings(t *testing.T) {
	cases := []struct {
		src  string
		want uint32
	}{
		{"mul a0, a1, a2", 0x02c58533},
		{"div a0, a1, a2", 0x02c5c533},
		{"remu a0, a1, a2", 0x02c5f533},
		{"mulw a0, a1, a2", 0x02c5853b},
	}
	for _, c := range cases {
		prog, err := Assemble(c.src)
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
			continue
		}
		if prog[0] != c.want {
			t.Errorf("%s = %#08x, want %#08x", c.src, prog[0], c.want)
		}
	}
}

func TestDisassembleKnown(t *testing.T) {
	cases := []struct {
		ins  uint32
		want string
	}{
		{0x00a10093, "addi ra, sp, 10"},
		{0x005201b3, "add gp, tp, t0"},
		{0x00813503, "ld a0, 8(sp)"},
		{0x00a13823, "sd a0, 16(sp)"},
		{0x00000073, "ecall"},
		{0x0ff0000f, "fence"},
		{0x4035d59b, "sraiw a1, a1, 3"},
		{0xffffffff, ".word 0xffffffff"},
	}
	for _, c := range cases {
		if got := Disassemble(c.ins); got != c.want {
			t.Errorf("Disassemble(%#08x) = %q, want %q", c.ins, got, c.want)
		}
	}
}

// TestAsmDisasmRoundTrip re-assembles the disassembly of every instruction
// in the built-in kernels and checks it encodes identically.
func TestAsmDisasmRoundTrip(t *testing.T) {
	for _, src := range []string{
		VecAddProgram(16), VecAddUnrolledProgram(16), GatherProgram(16),
		ReduceProgram(16), SpMVProgram(4),
	} {
		prog := MustAssemble(src)
		for i, ins := range prog {
			text := Disassemble(ins)
			if strings.HasPrefix(text, ".word") {
				t.Fatalf("instruction %d (%#08x) not disassemblable", i, ins)
			}
			re, err := Assemble(text)
			if err != nil {
				t.Fatalf("reassemble %q: %v", text, err)
			}
			if re[0] != ins {
				t.Fatalf("round trip %q: %#08x → %#08x", text, ins, re[0])
			}
		}
	}
}

func TestDisassembleAll(t *testing.T) {
	out := DisassembleAll(MustAssemble("nop\necall"), 0x1000)
	if !strings.Contains(out, "1000:") || !strings.Contains(out, "ecall") {
		t.Errorf("DisassembleAll:\n%s", out)
	}
}

func TestRunHarts(t *testing.T) {
	prog := MustAssemble(VecAddProgram(32))
	specs := make([]HartSpec, 3)
	for i := range specs {
		specs[i] = HartSpec{
			Program:    prog,
			LoadAddr:   0x1000,
			AddrOffset: uint64(i) << 30,
			InstrTicks: 2,
			Setup: func(c *CPU) {
				var buf [8]byte
				for j := 0; j < 32; j++ {
					binary.LittleEndian.PutUint64(buf[:], uint64(j))
					c.WriteMem(KernelABase+uint64(j)*8, buf[:])
					c.WriteMem(KernelBBase+uint64(j)*8, buf[:])
				}
			},
		}
	}
	accs, err := RunHarts(specs, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(accs); err != nil {
		t.Fatal(err)
	}
	perHart := map[uint8]int{}
	for _, a := range accs {
		perHart[a.CPU]++
		if a.Kind != trace.FenceOp && a.Addr>>30 != uint64(a.CPU) {
			t.Fatalf("hart %d access at %#x outside its region", a.CPU, a.Addr)
		}
	}
	if len(perHart) != 3 {
		t.Fatalf("harts in trace = %d, want 3", len(perHart))
	}
}

func TestRunHartsErrors(t *testing.T) {
	if _, err := RunHarts(nil, 100); err == nil {
		t.Error("empty spec list accepted")
	}
	bad := []HartSpec{{Program: MustAssemble("loop: j loop"), LoadAddr: 0}}
	if _, err := RunHarts(bad, 100); err == nil {
		t.Error("non-halting hart not reported")
	}
}
