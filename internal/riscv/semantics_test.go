package riscv

import (
	"testing"

	"hmccoal/internal/trace"
)

// TestInstructionSemantics drives each instruction through the emulator
// with edge-case operands and checks the architectural result in a0.
// Programs set up operands with li, run one instruction under test, move
// the result to a0 and halt.
func TestInstructionSemantics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want uint64
	}{
		// Comparisons.
		{"slt_true", "li t0, -5\nli t1, 3\nslt a0, t0, t1\necall", 1},
		{"slt_false", "li t0, 3\nli t1, -5\nslt a0, t0, t1\necall", 0},
		{"sltu_wraps", "li t0, -5\nli t1, 3\nsltu a0, t0, t1\necall", 0}, // -5 is huge unsigned
		{"slti", "li t0, -5\nslti a0, t0, -4\necall", 1},
		{"sltiu_minus_one", "li t0, 5\nsltiu a0, t0, -1\necall", 1}, // imm sign-extends to max
		// Logic.
		{"xor", "li t0, 0xff\nli t1, 0x0f\nxor a0, t0, t1\necall", 0xf0},
		{"xori", "li t0, 0xff\nxori a0, t0, 0x0f\necall", 0xf0},
		{"or", "li t0, 0xf0\nli t1, 0x0f\nor a0, t0, t1\necall", 0xff},
		{"ori", "li t0, 0xf0\nori a0, t0, 0x0f\necall", 0xff},
		{"andi", "li t0, 0xff\nandi a0, t0, 0x3c\necall", 0x3c},
		// Shifts with register amounts (mod 64).
		{"sll_mod64", "li t0, 1\nli t1, 65\nsll a0, t0, t1\necall", 2},
		{"srl", "li t0, 16\nli t1, 2\nsrl a0, t0, t1\necall", 4},
		{"sra_negative", "li t0, -16\nli t1, 2\nsra a0, t0, t1\necall", uint64(0xfffffffffffffffc)},
		{"srli_logical", "li t0, -1\nsrli a0, t0, 60\necall", 0xf},
		// Upper immediates.
		{"lui_sign", "lui a0, 0x80000\necall", uint64(0xffffffff80000000)},
		{"auipc", "auipc a0, 0\necall", 0x1000}, // load address of first instruction
		// Sub-word memory with sign/zero extension.
		{"lb_sign", "li t0, 0x2000\nli t1, 0x80\nsb t1, 0(t0)\nlb a0, 0(t0)\necall", uint64(0xffffffffffffff80)},
		{"lh_sign", "li t0, 0x2000\nli t1, 0x8000\nsh t1, 0(t0)\nlh a0, 0(t0)\necall", uint64(0xffffffffffff8000)},
		{"lhu", "li t0, 0x2000\nli t1, 0x8000\nsh t1, 0(t0)\nlhu a0, 0(t0)\necall", 0x8000},
		{"sb_truncates", "li t0, 0x2000\nli t1, 0x1ff\nsb t1, 0(t0)\nlbu a0, 0(t0)\necall", 0xff},
		// Branches: each taken and not taken.
		{"bne_taken", "li a0, 1\nli t0, 2\nli t1, 3\nbne t0, t1, over\nli a0, 0\nover: ecall", 1},
		{"bne_nottaken", "li a0, 1\nli t0, 3\nli t1, 3\nbne t0, t1, over\nli a0, 0\nover: ecall", 0},
		{"blt_signed", "li a0, 1\nli t0, -1\nli t1, 0\nblt t0, t1, over\nli a0, 0\nover: ecall", 1},
		{"bltu_unsigned", "li a0, 1\nli t0, -1\nli t1, 0\nbltu t0, t1, over\nli a0, 0\nover: ecall", 0},
		{"bge", "li a0, 1\nli t0, 5\nli t1, 5\nbge t0, t1, over\nli a0, 0\nover: ecall", 1},
		{"bgeu_wrap", "li a0, 1\nli t0, -1\nli t1, 1\nbgeu t0, t1, over\nli a0, 0\nover: ecall", 1},
		// Word ops sign-extend their 32-bit results.
		{"addw_wrap", "li t0, 0x7fffffff\nli t1, 1\naddw a0, t0, t1\necall", uint64(0xffffffff80000000)},
		{"subw", "li t0, 0\nli t1, 1\nsubw a0, t0, t1\necall", uint64(0xffffffffffffffff)},
		{"srlw_zeroext_then_signext", "li t0, -1\nli t1, 4\nsrlw a0, t0, t1\necall", 0x0fffffff},
		{"sraw", "li t0, -64\nli t1, 4\nsraw a0, t0, t1\necall", uint64(0xfffffffffffffffc)},
		{"slliw_overflow", "li t0, 1\nslliw a0, t0, 31\necall", uint64(0xffffffff80000000)},
		{"srliw", "li t0, -1\nsrliw a0, t0, 28\necall", 0xf},
		// Jumps link the return address.
		{"jalr_link", "li t0, 0x1014\njalr a0, 0(t0)\nnop\nnop\nnop\necall", 0x100c},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cpu := runAsm(t, c.src, nil)
			if cpu.X[10] != c.want {
				t.Errorf("a0 = %#x, want %#x", cpu.X[10], c.want)
			}
		})
	}
}

// TestJALRClearsLowBit checks the ISA rule that the jump target's bit 0 is
// cleared.
func TestJALRClearsLowBit(t *testing.T) {
	cpu := runAsm(t, "li t0, 0x1011\njalr a0, 0(t0)\nnop\nli a1, 7\necall", nil)
	// li expands to lui+addiw, so `li a1, 7` sits at 0x1010;
	// target 0x1011 &^ 1 = 0x1010 reaches it only if bit 0 is cleared.
	if cpu.X[11] != 7 {
		t.Errorf("a1 = %d, want 7 (jalr must clear bit 0)", cpu.X[11])
	}
}

// TestFenceOrderingInTrace: the fence event appears between the stores
// before it and the loads after it.
func TestFenceOrderingInTrace(t *testing.T) {
	var kinds []string
	cpu := NewCPU()
	cpu.SetTracer(func(a trace.Access) { kinds = append(kinds, a.Kind.String()) })
	cpu.LoadProgram(0, MustAssemble(`
        li t0, 0x2000
        sd t0, 0(t0)
        fence
        ld a0, 0(t0)
        ecall`))
	if _, err := cpu.Run(100); err != nil {
		t.Fatal(err)
	}
	want := []string{"S", "F", "L"}
	if len(kinds) != 3 {
		t.Fatalf("trace kinds = %v", kinds)
	}
	for i, w := range want {
		if kinds[i] != w {
			t.Fatalf("trace order = %v, want %v", kinds, want)
		}
	}
}
