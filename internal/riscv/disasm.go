package riscv

import (
	"fmt"
	"strings"
)

// Disassemble renders one encoded instruction in the assembler's dialect.
// Unknown encodings render as ".word 0x…". The output round-trips through
// Assemble for every mnemonic the assembler emits (branch and jump targets
// are rendered as numeric offsets).
func Disassemble(ins uint32) string {
	opcode := ins & 0x7f
	rd := regName(ins >> 7 & 0x1f)
	funct3 := ins >> 12 & 0x7
	rs1 := regName(ins >> 15 & 0x1f)
	rs2 := regName(ins >> 20 & 0x1f)
	funct7 := ins >> 25

	iImm := int64(signExtend(uint64(ins>>20), 12))
	sImm := int64(signExtend(uint64(ins>>25<<5|ins>>7&0x1f), 12))
	bImm := int64(signExtend(uint64(ins>>31<<12|ins>>7&1<<11|ins>>25&0x3f<<5|ins>>8&0xf<<1), 13))
	uImm := int64(ins >> 12)
	jImm := int64(signExtend(uint64(ins>>31<<20|ins>>12&0xff<<12|ins>>20&1<<11|ins>>21&0x3ff<<1), 21))

	switch opcode {
	case 0x37:
		return fmt.Sprintf("lui %s, %#x", rd, uImm)
	case 0x17:
		return fmt.Sprintf("auipc %s, %#x", rd, uImm)
	case 0x6f:
		return fmt.Sprintf("jal %s, %d", rd, jImm)
	case 0x67:
		return fmt.Sprintf("jalr %s, %d(%s)", rd, iImm, rs1)
	case 0x63:
		if m := reverse(branchOps, funct3); m != "" {
			return fmt.Sprintf("%s %s, %s, %d", m, rs1, rs2, bImm)
		}
	case 0x03:
		if m := reverse(loadOps, funct3); m != "" {
			return fmt.Sprintf("%s %s, %d(%s)", m, rd, iImm, rs1)
		}
	case 0x23:
		if m := reverse(storeOps, funct3); m != "" {
			return fmt.Sprintf("%s %s, %d(%s)", m, rs2, sImm, rs1)
		}
	case 0x13, 0x1b:
		return disasmOpImm(ins, opcode, funct3, funct7, rd, rs1, iImm)
	case 0x33, 0x3b:
		for m, spec := range rOps {
			if spec.opcode == opcode && spec.funct3 == funct3 && spec.funct7 == funct7 {
				return fmt.Sprintf("%s %s, %s, %s", m, rd, rs1, rs2)
			}
		}
	case 0x0f:
		return "fence"
	case 0x73:
		if ins == 0x73 {
			return "ecall"
		}
		if ins == 0x00100073 {
			return "ebreak"
		}
	}
	return fmt.Sprintf(".word %#08x", ins)
}

func disasmOpImm(ins, opcode, funct3, funct7 uint32, rd, rs1 string, iImm int64) string {
	// Shifts first: they share funct3 slots with the arithmetic immediates.
	for m, spec := range shiftOps {
		if spec.opcode != opcode || spec.funct3 != funct3 {
			continue
		}
		var shamt uint32
		if opcode == 0x13 {
			if funct3 == 5 && (funct7>>1 == 0x10) != (spec.high != 0) {
				continue
			}
			shamt = ins >> 20 & 0x3f
		} else {
			if funct3 == 5 && (funct7 == 0x20) != (spec.high != 0) {
				continue
			}
			shamt = ins >> 20 & 0x1f
		}
		if funct3 == 1 || funct3 == 5 {
			return fmt.Sprintf("%s %s, %s, %d", m, rd, rs1, shamt)
		}
	}
	for m, spec := range iOps {
		if spec.opcode == opcode && spec.funct3 == funct3 {
			return fmt.Sprintf("%s %s, %s, %d", m, rd, rs1, iImm)
		}
	}
	return fmt.Sprintf(".word %#08x", ins)
}

// DisassembleAll renders a program, one instruction per line, with
// instruction-index-relative addresses.
func DisassembleAll(prog []uint32, base uint64) string {
	var b strings.Builder
	for i, ins := range prog {
		fmt.Fprintf(&b, "%8x:  %08x  %s\n", base+uint64(i)*4, ins, Disassemble(ins))
	}
	return b.String()
}

// regName renders the ABI register name.
func regName(r uint32) string {
	names := [32]string{
		"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
		"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
		"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
		"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
	}
	return names[r&31]
}

// reverse finds the mnemonic mapping to funct3 in a one-level op table.
func reverse(m map[string]uint32, funct3 uint32) string {
	for name, f := range m {
		if f == funct3 {
			return name
		}
	}
	return ""
}
