package riscv

import (
	"fmt"

	"hmccoal/internal/trace"
)

// HartSpec configures one hart of a multi-hart run.
type HartSpec struct {
	// Program is the assembled kernel (shared programs may alias).
	Program []uint32
	// LoadAddr is where the program is loaded (PC starts here).
	LoadAddr uint64
	// AddrOffset is added to every traced data address, placing the hart's
	// private memory in a distinct region of the shared physical space —
	// the way per-thread heaps are laid out.
	AddrOffset uint64
	// InstrTicks is the cycle cost per retired instruction (0 = 1).
	InstrTicks uint64
	// Setup seeds the hart's memory before execution.
	Setup func(*CPU)
}

// RunHarts executes one kernel per hart (each hart has private memory, as
// the emulator is single-core) and returns the merged, tick-ordered memory
// trace — the §5.1 trace-capture methodology for a multi-core run. maxSteps
// bounds each hart individually.
func RunHarts(specs []HartSpec, maxSteps int) ([]trace.Access, error) {
	if len(specs) == 0 || len(specs) > 256 {
		return nil, fmt.Errorf("riscv: hart count %d out of range", len(specs))
	}
	var traces [][]trace.Access
	for i, spec := range specs {
		cpu := NewCPU()
		cpu.Hart = uint8(i)
		if spec.InstrTicks > 0 {
			cpu.InstrTicks = spec.InstrTicks
		}
		var events []trace.Access
		offset := spec.AddrOffset
		cpu.SetTracer(func(a trace.Access) {
			a.Addr += offset
			events = append(events, a)
		})
		cpu.LoadProgram(spec.LoadAddr, spec.Program)
		if spec.Setup != nil {
			spec.Setup(cpu)
		}
		if _, err := cpu.Run(maxSteps); err != nil {
			return nil, fmt.Errorf("riscv: hart %d: %w", i, err)
		}
		traces = append(traces, events)
	}
	return trace.Merge(traces...), nil
}
