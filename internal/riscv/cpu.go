// Package riscv implements an RV64I instruction-set emulator with a small
// two-pass assembler and a memory tracer hook. It substitutes for the
// RISC-V Spike simulator of the paper's evaluation (§5.1): programs run on
// the base integer ISA and every load, store and fence is reported to the
// tracer, producing the access stream the memory coalescer consumes.
package riscv

import (
	"fmt"
	"math/bits"

	"hmccoal/internal/trace"
)

// Tracer receives one event per memory operation the program performs.
type Tracer func(a trace.Access)

// XLEN is the register width in bits.
const XLEN = 64

const pageBits = 12
const pageSize = 1 << pageBits

// dirBits is the second-level fan-out of the sparse memory: one directory
// covers 2^dirBits pages (4 MB). The top level stays a map because RV64
// addresses span the full 64-bit space, but a program's working set hits a
// handful of directories, so the per-access map lookup all but disappears.
const dirBits = 10
const dirSize = 1 << dirBits

// pageDir is one second-level block of the two-level page table.
type pageDir [dirSize]*[pageSize]byte

// CPU is a single RV64I hart with a sparse byte-addressed memory.
type CPU struct {
	X  [32]uint64 // integer registers; X[0] is hardwired to zero
	PC uint64
	// dirs is the two-level page table; lastBase/lastPage cache the most
	// recently touched page so sequential bytes skip the table walk.
	dirs     map[uint64]*pageDir
	lastBase uint64
	lastPage *[pageSize]byte
	tracer   Tracer
	// InstrTicks is the cycle cost charged per retired instruction when
	// stamping trace events (default 1).
	InstrTicks uint64
	// Cycle counts retired instructions × InstrTicks.
	Cycle uint64
	// Hart is the CPU id stamped into trace events.
	Hart uint8

	halted bool
}

// NewCPU returns a hart with empty memory.
func NewCPU() *CPU {
	return &CPU{dirs: make(map[uint64]*pageDir), InstrTicks: 1}
}

// SetTracer installs the memory-event hook.
func (c *CPU) SetTracer(t Tracer) { c.tracer = t }

// Halted reports whether the program executed ECALL/EBREAK.
func (c *CPU) Halted() bool { return c.halted }

func (c *CPU) page(addr uint64) *[pageSize]byte {
	base := addr >> pageBits
	if p := c.lastPage; p != nil && base == c.lastBase {
		return p
	}
	dir := c.dirs[base>>dirBits]
	if dir == nil {
		dir = new(pageDir)
		c.dirs[base>>dirBits] = dir
	}
	p := dir[base&(dirSize-1)]
	if p == nil {
		p = new([pageSize]byte)
		dir[base&(dirSize-1)] = p
	}
	c.lastBase, c.lastPage = base, p
	return p
}

// ReadMem copies n bytes at addr (no trace event).
func (c *CPU) ReadMem(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		a := addr + uint64(i)
		out[i] = c.page(a)[a&(pageSize-1)]
	}
	return out
}

// WriteMem stores raw bytes at addr (no trace event).
func (c *CPU) WriteMem(addr uint64, data []byte) {
	for i, b := range data {
		a := addr + uint64(i)
		c.page(a)[a&(pageSize-1)] = b
	}
}

func (c *CPU) load(addr uint64, size int) uint64 {
	var v uint64
	if off := addr & (pageSize - 1); off+uint64(size) <= pageSize {
		// Common case: the access stays inside one page — walk it once.
		p := c.page(addr)
		for i := 0; i < size; i++ {
			v |= uint64(p[off+uint64(i)]) << (8 * i)
		}
	} else {
		for i := 0; i < size; i++ {
			a := addr + uint64(i)
			v |= uint64(c.page(a)[a&(pageSize-1)]) << (8 * i)
		}
	}
	if c.tracer != nil {
		c.tracer(trace.Access{Addr: addr, Size: uint32(size), Kind: trace.Load, CPU: c.Hart, Tick: c.Cycle})
	}
	return v
}

func (c *CPU) store(addr uint64, size int, v uint64) {
	if off := addr & (pageSize - 1); off+uint64(size) <= pageSize {
		p := c.page(addr)
		for i := 0; i < size; i++ {
			p[off+uint64(i)] = byte(v >> (8 * i))
		}
	} else {
		for i := 0; i < size; i++ {
			a := addr + uint64(i)
			c.page(a)[a&(pageSize-1)] = byte(v >> (8 * i))
		}
	}
	if c.tracer != nil {
		c.tracer(trace.Access{Addr: addr, Size: uint32(size), Kind: trace.Store, CPU: c.Hart, Tick: c.Cycle})
	}
}

// LoadProgram writes the encoded instructions at addr and points PC there.
func (c *CPU) LoadProgram(addr uint64, prog []uint32) {
	for i, ins := range prog {
		a := addr + uint64(i)*4
		c.page(a)[a&(pageSize-1)] = byte(ins)
		c.page(a + 1)[(a+1)&(pageSize-1)] = byte(ins >> 8)
		c.page(a + 2)[(a+2)&(pageSize-1)] = byte(ins >> 16)
		c.page(a + 3)[(a+3)&(pageSize-1)] = byte(ins >> 24)
	}
	c.PC = addr
}

func signExtend(v uint64, bits uint) uint64 {
	shift := 64 - bits
	return uint64(int64(v<<shift) >> shift)
}

// Step executes one instruction. It returns an error on an illegal opcode.
func (c *CPU) Step() error {
	if c.halted {
		return fmt.Errorf("riscv: step on halted hart")
	}
	raw := uint32(c.load64NoTrace(c.PC))
	ins := raw
	next := c.PC + 4

	opcode := ins & 0x7f
	rd := ins >> 7 & 0x1f
	funct3 := ins >> 12 & 0x7
	rs1 := ins >> 15 & 0x1f
	rs2 := ins >> 20 & 0x1f
	funct7 := ins >> 25

	iImm := signExtend(uint64(ins>>20), 12)
	sImm := signExtend(uint64(ins>>25<<5|ins>>7&0x1f), 12)
	bImm := signExtend(uint64(ins>>31<<12|ins>>7&1<<11|ins>>25&0x3f<<5|ins>>8&0xf<<1), 13)
	uImm := uint64(ins) & 0xfffff000
	jImm := signExtend(uint64(ins>>31<<20|ins>>12&0xff<<12|ins>>20&1<<11|ins>>21&0x3ff<<1), 21)

	x := func(r uint32) uint64 { return c.X[r] }
	set := func(r uint32, v uint64) {
		if r != 0 {
			c.X[r] = v
		}
	}

	switch opcode {
	case 0x37: // LUI
		set(rd, signExtend(uImm, 32))
	case 0x17: // AUIPC
		set(rd, c.PC+signExtend(uImm, 32))
	case 0x6f: // JAL
		set(rd, next)
		next = c.PC + jImm
	case 0x67: // JALR
		t := (x(rs1) + iImm) &^ 1
		set(rd, next)
		next = t
	case 0x63: // branches
		taken := false
		a, b := x(rs1), x(rs2)
		switch funct3 {
		case 0:
			taken = a == b // BEQ
		case 1:
			taken = a != b // BNE
		case 4:
			taken = int64(a) < int64(b) // BLT
		case 5:
			taken = int64(a) >= int64(b) // BGE
		case 6:
			taken = a < b // BLTU
		case 7:
			taken = a >= b // BGEU
		default:
			return c.illegal(raw)
		}
		if taken {
			next = c.PC + bImm
		}
	case 0x03: // loads
		addr := x(rs1) + iImm
		switch funct3 {
		case 0:
			set(rd, signExtend(c.load(addr, 1), 8)) // LB
		case 1:
			set(rd, signExtend(c.load(addr, 2), 16)) // LH
		case 2:
			set(rd, signExtend(c.load(addr, 4), 32)) // LW
		case 3:
			set(rd, c.load(addr, 8)) // LD
		case 4:
			set(rd, c.load(addr, 1)) // LBU
		case 5:
			set(rd, c.load(addr, 2)) // LHU
		case 6:
			set(rd, c.load(addr, 4)) // LWU
		default:
			return c.illegal(raw)
		}
	case 0x23: // stores
		addr := x(rs1) + sImm
		switch funct3 {
		case 0:
			c.store(addr, 1, x(rs2)) // SB
		case 1:
			c.store(addr, 2, x(rs2)) // SH
		case 2:
			c.store(addr, 4, x(rs2)) // SW
		case 3:
			c.store(addr, 8, x(rs2)) // SD
		default:
			return c.illegal(raw)
		}
	case 0x13: // OP-IMM
		v, err := c.aluImm(funct3, funct7, x(rs1), iImm, ins)
		if err != nil {
			return err
		}
		set(rd, v)
	case 0x1b: // OP-IMM-32
		v, err := c.aluImm32(funct3, funct7, x(rs1), iImm, ins)
		if err != nil {
			return err
		}
		set(rd, v)
	case 0x33: // OP
		v, err := alu(funct3, funct7, x(rs1), x(rs2))
		if err != nil {
			return c.illegal(raw)
		}
		set(rd, v)
	case 0x3b: // OP-32
		v, err := alu32(funct3, funct7, x(rs1), x(rs2))
		if err != nil {
			return c.illegal(raw)
		}
		set(rd, v)
	case 0x0f: // FENCE
		if c.tracer != nil {
			c.tracer(trace.Access{Kind: trace.FenceOp, CPU: c.Hart, Tick: c.Cycle})
		}
	case 0x73: // SYSTEM: ECALL/EBREAK halt the hart
		c.halted = true
	default:
		return c.illegal(raw)
	}

	c.PC = next
	c.Cycle += c.InstrTicks
	c.X[0] = 0
	return nil
}

func (c *CPU) illegal(raw uint32) error {
	return fmt.Errorf("riscv: illegal instruction %#08x at PC %#x", raw, c.PC)
}

// load64NoTrace fetches an instruction word without generating a trace
// event (instruction fetch is not part of the studied data traffic).
func (c *CPU) load64NoTrace(addr uint64) uint64 {
	if off := addr & (pageSize - 1); off <= pageSize-4 {
		p := c.page(addr)
		return uint64(p[off]) | uint64(p[off+1])<<8 | uint64(p[off+2])<<16 | uint64(p[off+3])<<24
	}
	var v uint64
	for i := 0; i < 4; i++ {
		a := addr + uint64(i)
		v |= uint64(c.page(a)[a&(pageSize-1)]) << (8 * i)
	}
	return v
}

func (c *CPU) aluImm(funct3, funct7 uint32, a, imm uint64, ins uint32) (uint64, error) {
	shamt := ins >> 20 & 0x3f
	switch funct3 {
	case 0:
		return a + imm, nil // ADDI
	case 2:
		if int64(a) < int64(imm) {
			return 1, nil
		}
		return 0, nil // SLTI
	case 3:
		if a < imm {
			return 1, nil
		}
		return 0, nil // SLTIU
	case 4:
		return a ^ imm, nil // XORI
	case 6:
		return a | imm, nil // ORI
	case 7:
		return a & imm, nil // ANDI
	case 1:
		return a << shamt, nil // SLLI
	case 5:
		if funct7>>1 == 0x10 { // SRAI
			return uint64(int64(a) >> shamt), nil
		}
		return a >> shamt, nil // SRLI
	}
	return 0, c.illegal(ins)
}

func (c *CPU) aluImm32(funct3, funct7 uint32, a, imm uint64, ins uint32) (uint64, error) {
	shamt := ins >> 20 & 0x1f
	switch funct3 {
	case 0:
		return signExtend(uint64(uint32(a)+uint32(imm)), 32), nil // ADDIW
	case 1:
		return signExtend(uint64(uint32(a)<<shamt), 32), nil // SLLIW
	case 5:
		if funct7 == 0x20 { // SRAIW
			return uint64(int64(int32(a) >> shamt)), nil
		}
		return signExtend(uint64(uint32(a)>>shamt), 32), nil // SRLIW
	}
	return 0, c.illegal(ins)
}

func alu(funct3, funct7 uint32, a, b uint64) (uint64, error) {
	if funct7 == 1 { // RV64M
		return mulDiv(funct3, a, b)
	}
	switch {
	case funct3 == 0 && funct7 == 0:
		return a + b, nil // ADD
	case funct3 == 0 && funct7 == 0x20:
		return a - b, nil // SUB
	case funct3 == 1 && funct7 == 0:
		return a << (b & 63), nil // SLL
	case funct3 == 2 && funct7 == 0: // SLT
		if int64(a) < int64(b) {
			return 1, nil
		}
		return 0, nil
	case funct3 == 3 && funct7 == 0: // SLTU
		if a < b {
			return 1, nil
		}
		return 0, nil
	case funct3 == 4 && funct7 == 0:
		return a ^ b, nil // XOR
	case funct3 == 5 && funct7 == 0:
		return a >> (b & 63), nil // SRL
	case funct3 == 5 && funct7 == 0x20:
		return uint64(int64(a) >> (b & 63)), nil // SRA
	case funct3 == 6 && funct7 == 0:
		return a | b, nil // OR
	case funct3 == 7 && funct7 == 0:
		return a & b, nil // AND
	}
	return 0, fmt.Errorf("riscv: bad OP funct %d/%#x", funct3, funct7)
}

func alu32(funct3, funct7 uint32, a, b uint64) (uint64, error) {
	if funct7 == 1 { // RV64M word forms
		return mulDiv32(funct3, a, b)
	}
	switch {
	case funct3 == 0 && funct7 == 0:
		return signExtend(uint64(uint32(a)+uint32(b)), 32), nil // ADDW
	case funct3 == 0 && funct7 == 0x20:
		return signExtend(uint64(uint32(a)-uint32(b)), 32), nil // SUBW
	case funct3 == 1 && funct7 == 0:
		return signExtend(uint64(uint32(a)<<(b&31)), 32), nil // SLLW
	case funct3 == 5 && funct7 == 0:
		return signExtend(uint64(uint32(a)>>(b&31)), 32), nil // SRLW
	case funct3 == 5 && funct7 == 0x20:
		return uint64(int64(int32(a) >> (b & 31))), nil // SRAW
	}
	return 0, fmt.Errorf("riscv: bad OP-32 funct %d/%#x", funct3, funct7)
}

// mulDiv implements the RV64M OP instructions. Division by zero and
// overflow follow the ISA manual: x/0 = −1 (or all ones unsigned),
// x%0 = x, MinInt64/−1 = MinInt64 with remainder 0.
func mulDiv(funct3 uint32, a, b uint64) (uint64, error) {
	switch funct3 {
	case 0: // MUL
		return a * b, nil
	case 1: // MULH
		hi, _ := bits.Mul64(a, b)
		// Sign-correct the unsigned high product.
		if int64(a) < 0 {
			hi -= b
		}
		if int64(b) < 0 {
			hi -= a
		}
		return hi, nil
	case 2: // MULHSU
		hi, _ := bits.Mul64(a, b)
		if int64(a) < 0 {
			hi -= b
		}
		return hi, nil
	case 3: // MULHU
		hi, _ := bits.Mul64(a, b)
		return hi, nil
	case 4: // DIV
		sa, sb := int64(a), int64(b)
		switch {
		case sb == 0:
			return ^uint64(0), nil
		case sa == -1<<63 && sb == -1:
			return a, nil
		}
		return uint64(sa / sb), nil
	case 5: // DIVU
		if b == 0 {
			return ^uint64(0), nil
		}
		return a / b, nil
	case 6: // REM
		sa, sb := int64(a), int64(b)
		switch {
		case sb == 0:
			return a, nil
		case sa == -1<<63 && sb == -1:
			return 0, nil
		}
		return uint64(sa % sb), nil
	case 7: // REMU
		if b == 0 {
			return a, nil
		}
		return a % b, nil
	}
	return 0, fmt.Errorf("riscv: bad M funct3 %d", funct3)
}

// mulDiv32 implements the RV64M word (W) instructions.
func mulDiv32(funct3 uint32, a, b uint64) (uint64, error) {
	wa, wb := int32(a), int32(b)
	switch funct3 {
	case 0: // MULW
		return uint64(int64(wa * wb)), nil
	case 4: // DIVW
		switch {
		case wb == 0:
			return ^uint64(0), nil
		case wa == -1<<31 && wb == -1:
			return uint64(int64(wa)), nil
		}
		return uint64(int64(wa / wb)), nil
	case 5: // DIVUW
		if uint32(b) == 0 {
			return ^uint64(0), nil
		}
		return uint64(int64(int32(uint32(a) / uint32(b)))), nil
	case 6: // REMW
		switch {
		case wb == 0:
			return uint64(int64(wa)), nil
		case wa == -1<<31 && wb == -1:
			return 0, nil
		}
		return uint64(int64(wa % wb)), nil
	case 7: // REMUW
		if uint32(b) == 0 {
			return uint64(int64(int32(uint32(a)))), nil
		}
		return uint64(int64(int32(uint32(a) % uint32(b)))), nil
	}
	return 0, fmt.Errorf("riscv: bad MW funct3 %d", funct3)
}

// Run executes until the hart halts or maxSteps instructions retire. It
// returns the number of retired instructions.
func (c *CPU) Run(maxSteps int) (int, error) {
	for n := 0; n < maxSteps; n++ {
		if c.halted {
			return n, nil
		}
		if err := c.Step(); err != nil {
			return n, err
		}
	}
	if !c.halted {
		return maxSteps, fmt.Errorf("riscv: program did not halt within %d steps", maxSteps)
	}
	return maxSteps, nil
}
