package soak

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"hmccoal/internal/trace"
)

// errFake is a deterministic unexplained failure the classifier must
// count as Failed.
var errFake = errors.New("synthetic soak failure")

// TestSoakCheckpointResume pins the park/resume contract of soak jobs: a
// campaign run with a checkpoint restores every classified scenario on a
// rerun — the runner is never invoked again — and the restored report is
// identical to the original, including a failure's shrunken repro.
func TestSoakCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "soak.ckpt")
	failing := func(sc Scenario, accs []trace.Access) error {
		if sc.Index == 3 {
			return errFake
		}
		return nil
	}
	opts := Options{Seed: 7, Runs: 8, Workers: 2, Run: failing, Checkpoint: ckpt}

	first, err := Soak(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Clean != 7 || len(first.Failures) != 1 {
		t.Fatalf("first campaign: %d clean, %d failures; want 7 and 1", first.Clean, len(first.Failures))
	}

	opts.Run = func(sc Scenario, accs []trace.Access) error {
		t.Errorf("scenario %d re-ran despite a complete checkpoint", sc.Index)
		return nil
	}
	second, err := Soak(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("restored report differs:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}
