package soak

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"hmccoal/internal/trace"
)

// DefaultShrinkBudget caps how many re-runs a single shrink may spend.
// Each trial is a full (shrunken) simulation, so the budget bounds the
// harness's worst-case time per failure.
const DefaultShrinkBudget = 64

// Repro is a minimal reproduction of a failing scenario: the scenario
// block regenerates the original trace, and the reduction fields cut it
// down to the smallest slice the shrinker could still make fail. A repro
// file plus the binary is everything needed to replay the violation.
type Repro struct {
	Scenario Scenario `json:"scenario"`
	// PrefixLen keeps only the first PrefixLen accesses of the trace.
	PrefixLen int `json:"prefix_len"`
	// DropCPUs removes every access issued by these cores (applied after
	// the prefix cut).
	DropCPUs []int `json:"drop_cpus,omitempty"`
	// BER/DropRate override the scenario's fault rates when lower rates
	// still reproduce the failure (negative = keep the scenario's value).
	BER      float64 `json:"ber"`
	DropRate float64 `json:"drop_rate"`
	// Error is the failure message of the minimized run.
	Error string `json:"error"`
	// ShrinkSteps counts the re-runs the shrinker spent; OrigLen is the
	// unshrunken trace length, for the "how much smaller" headline.
	ShrinkSteps int `json:"shrink_steps"`
	OrigLen     int `json:"orig_len"`
}

// reduced applies the repro's reductions to a freshly generated trace and
// returns the scenario the minimized run should use.
func (r Repro) reduced(accs []trace.Access) (Scenario, []trace.Access) {
	sc := r.Scenario
	if r.BER >= 0 {
		sc.BER = r.BER
	}
	if r.DropRate >= 0 {
		sc.DropRate = r.DropRate
	}
	n := r.PrefixLen
	if n < 0 || n > len(accs) {
		n = len(accs)
	}
	cut := accs[:n]
	if len(r.DropCPUs) == 0 {
		return sc, cut
	}
	drop := make(map[uint8]bool, len(r.DropCPUs))
	for _, c := range r.DropCPUs {
		if c >= 0 && c < 256 {
			drop[uint8(c)] = true
		}
	}
	kept := make([]trace.Access, 0, len(cut))
	for _, a := range cut {
		if !drop[a.CPU] {
			kept = append(kept, a)
		}
	}
	return sc, kept
}

// Shrink minimizes a failing scenario to the smallest reproduction the
// budget allows: first bisecting the trace to a minimal failing prefix,
// then dropping whole CPUs, then lowering the fault rates a decade at a
// time. Every candidate is re-verified by actually re-running it — a
// reduction is kept only if the failure persists (any Failed
// classification counts; chasing the exact same message would make the
// shrinker brittle against diagnostics that mention trace positions).
func Shrink(sc Scenario, accs []trace.Access, run RunFunc, budget int) Repro {
	if budget <= 0 {
		budget = DefaultShrinkBudget
	}
	rep := Repro{
		Scenario: sc, PrefixLen: len(accs), BER: -1, DropRate: -1,
		OrigLen: len(accs),
	}
	lastErr := ""
	// fails re-runs one candidate reduction, spending budget.
	fails := func(cand Repro) bool {
		if rep.ShrinkSteps >= budget {
			return false
		}
		rep.ShrinkSteps++
		cs, ct := cand.reduced(accs)
		err := run(cs, ct)
		if Classify(cs, err) != Failed {
			return false
		}
		lastErr = err.Error()
		return true
	}

	// Record the original failure message first so the repro is valid even
	// if no reduction sticks (also confirms the failure is deterministic).
	if !fails(rep) {
		rep.Error = "failure did not reproduce deterministically"
		return rep
	}

	// Phase 1: binary-search the minimal failing prefix. Invariant: a
	// prefix of length hi fails, one of length lo does not.
	lo, hi := 0, rep.PrefixLen
	for lo+1 < hi && rep.ShrinkSteps < budget {
		mid := lo + (hi-lo)/2
		cand := rep
		cand.PrefixLen = mid
		if fails(cand) {
			hi = mid
		} else {
			lo = mid
		}
	}
	rep.PrefixLen = hi

	// Phase 2: drop whole CPUs, greedily, in ascending order.
	cpus := map[uint8]bool{}
	for _, a := range accs[:rep.PrefixLen] {
		cpus[a.CPU] = true
	}
	ids := make([]int, 0, len(cpus))
	for c := range cpus {
		ids = append(ids, int(c))
	}
	sort.Ints(ids)
	for _, c := range ids {
		if len(cpus) <= 1 {
			break // an empty trace cannot fail interestingly
		}
		cand := rep
		cand.DropCPUs = append(append([]int(nil), rep.DropCPUs...), c)
		if fails(cand) {
			rep.DropCPUs = cand.DropCPUs
			delete(cpus, uint8(c))
		}
	}

	// Phase 3: lower the fault rates a decade at a time while the failure
	// persists — a repro at BER/100 implicates the mechanism, not the
	// noise level.
	for rate := sc.BER / 10; rate > 1e-12; rate /= 10 {
		cand := rep
		cand.BER = rate
		if !fails(cand) {
			break
		}
		rep.BER = rate
	}
	for rate := sc.DropRate / 10; rate > 1e-12; rate /= 10 {
		cand := rep
		cand.DropRate = rate
		if !fails(cand) {
			break
		}
		rep.DropRate = rate
	}

	rep.Error = lastErr
	return rep
}

// WriteRepro saves a repro under dir as repro-seed<seed>-run<index>.json
// and returns the path.
func WriteRepro(dir string, r Repro) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("soak: repro dir: %w", err)
	}
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", fmt.Errorf("soak: repro: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("repro-seed%d-run%d.json", r.Scenario.Seed, r.Scenario.Index))
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("soak: repro: %w", err)
	}
	return path, nil
}

// ReadRepro loads a repro file.
func ReadRepro(path string) (Repro, error) {
	var r Repro
	data, err := os.ReadFile(path)
	if err != nil {
		return r, fmt.Errorf("soak: repro: %w", err)
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("soak: repro %s: %w", path, err)
	}
	return r, nil
}

// Replay regenerates a repro's trace, applies its reductions, and re-runs
// it. It returns the run error — non-nil with a Failed classification
// means the repro still reproduces. run may be nil for RunScenario.
func Replay(r Repro, run RunFunc) error {
	if run == nil {
		run = RunScenario
	}
	accs, err := r.Scenario.Trace()
	if err != nil {
		return err
	}
	sc, cut := r.reduced(accs)
	return run(sc, cut)
}
