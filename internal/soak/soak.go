// Package soak is the seeded chaos harness for the simulator: it sweeps a
// randomized grid of workload × fault-config × timeout scenarios with the
// runtime invariant checker enabled, classifies every outcome, and — when
// a scenario trips a conservation law — shrinks the failing trace to a
// minimal reproduction saved as a replayable JSON artifact.
//
// Everything is deterministic: a scenario is a pure function of the soak
// seed and the run index, so any failure the harness ever reports can be
// regenerated bit-for-bit from the repro file's scenario block alone.
package soak

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"hmccoal/internal/coalescer"
	"hmccoal/internal/fault"
	"hmccoal/internal/frontend"
	"hmccoal/internal/invariant"
	"hmccoal/internal/membackend"
	"hmccoal/internal/sim"
	"hmccoal/internal/sweep"
	"hmccoal/internal/trace"
	"hmccoal/internal/workloads"
)

// Scenario is one fully specified chaos run: the workload shape, the
// fault-injection profile, and the coalescer timeout configuration. It is
// derived deterministically from (Seed, Index) and is JSON round-trippable
// so a repro file alone can regenerate the exact failing run.
type Scenario struct {
	// Index is the run's position in the soak grid.
	Index int `json:"index"`
	// Seed is the soak seed the scenario was derived from.
	Seed int64 `json:"seed"`

	Workload  string `json:"workload"`
	CPUs      int    `json:"cpus"`
	OpsPerCPU int    `json:"ops_per_cpu"`
	TraceSeed int64  `json:"trace_seed"`

	// Mode is the miss-handling architecture (sim.Mode numeric value).
	Mode int `json:"mode"`

	BER       float64 `json:"ber"`
	DropRate  float64 `json:"drop_rate"`
	FaultSeed uint64  `json:"fault_seed"`

	TimeoutCycles   uint64 `json:"timeout_cycles"`
	AdaptiveTimeout bool   `json:"adaptive_timeout"`

	// Backend names the memory backend ("" or "hmc" is the HMC model;
	// "ddr", "ideal" select the alternatives). Omitted on legacy repro
	// files, which therefore keep replaying against the HMC.
	Backend string `json:"backend,omitempty"`
	// Frontend and Sched name the coalescing front-end and issue policy
	// ("" are the two-phase / FR-FCFS defaults), omitted on legacy repro
	// files for the same reason.
	Frontend string `json:"frontend,omitempty"`
	Sched    string `json:"sched,omitempty"`
}

// String names the scenario compactly for logs.
func (sc Scenario) String() string {
	s := fmt.Sprintf("run %d: %s cpus=%d ops=%d mode=%v ber=%g drop=%g timeout=%d adaptive=%v",
		sc.Index, sc.Workload, sc.CPUs, sc.OpsPerCPU, sim.Mode(sc.Mode),
		sc.BER, sc.DropRate, sc.TimeoutCycles, sc.AdaptiveTimeout)
	if sc.Backend != "" {
		s += " backend=" + sc.Backend
	}
	if sc.Frontend != "" {
		s += " frontend=" + sc.Frontend
	}
	if sc.Sched != "" {
		s += " sched=" + sc.Sched
	}
	return s
}

// backendKind resolves the scenario's backend. An unknown name resolves
// to an invalid kind, so building the system fails loudly instead of
// silently soaking the wrong device.
func (sc Scenario) backendKind() membackend.Kind {
	k, err := membackend.ParseKind(sc.Backend)
	if err != nil {
		return membackend.Kind(-1)
	}
	return k
}

// frontendKind and schedKind resolve the scenario's front-end axes with
// the same fail-loudly convention as backendKind.
func (sc Scenario) frontendKind() frontend.Kind {
	k, err := frontend.ParseKind(sc.Frontend)
	if err != nil {
		return frontend.Kind(-1)
	}
	return k
}

func (sc Scenario) schedKind() frontend.SchedKind {
	k, err := frontend.ParseSched(sc.Sched)
	if err != nil {
		return frontend.SchedKind(-1)
	}
	return k
}

// scenario dimension grids. Drop rates are kept low enough that retries
// usually recover but high enough that the watchdog path gets exercised.
var (
	cpuGrid      = []int{2, 4, 8, 12}
	opsGrid      = []int{80, 150, 300, 500}
	modeGrid     = []sim.Mode{sim.Baseline, sim.DMCOnly, sim.TwoPhase}
	berGrid      = []float64{0, 0, 1e-6, 1e-5, 1e-4}
	dropGrid     = []float64{0, 0, 0, 1e-5, 1e-4}
	timeoutGrid  = []uint64{8, 16, 24, 48}
	scenarioSalt = int64(0x9E3779B97F4A7C) // golden-ratio salt, int64-safe
)

// MakeScenario derives run index i of a soak with the given seed. The same
// (seed, i) always yields the same scenario.
func MakeScenario(seed int64, i int) Scenario {
	rng := rand.New(rand.NewSource(seed ^ (int64(i)+1)*scenarioSalt))
	names := workloads.Names()
	return Scenario{
		Index:           i,
		Seed:            seed,
		Workload:        names[rng.Intn(len(names))],
		CPUs:            cpuGrid[rng.Intn(len(cpuGrid))],
		OpsPerCPU:       opsGrid[rng.Intn(len(opsGrid))],
		TraceSeed:       rng.Int63(),
		Mode:            int(modeGrid[rng.Intn(len(modeGrid))]),
		BER:             berGrid[rng.Intn(len(berGrid))],
		DropRate:        dropGrid[rng.Intn(len(dropGrid))],
		FaultSeed:       rng.Uint64(),
		TimeoutCycles:   timeoutGrid[rng.Intn(len(timeoutGrid))],
		AdaptiveTimeout: rng.Intn(2) == 1,
	}
}

// Trace regenerates the scenario's access trace.
func (sc Scenario) Trace() ([]trace.Access, error) {
	gen, ok := workloads.ByName(sc.Workload)
	if !ok {
		return nil, fmt.Errorf("soak: unknown workload %q", sc.Workload)
	}
	return gen.Generate(workloads.Params{
		CPUs: sc.CPUs, OpsPerCPU: sc.OpsPerCPU, Seed: sc.TraceSeed,
	})
}

// Config assembles the simulator configuration for the scenario, checker
// always on — that is the point of the soak.
func (sc Scenario) Config() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Mode = sim.Mode(sc.Mode)
	cfg.Coalescer.TimeoutCycles = sc.TimeoutCycles
	cfg.Coalescer.AdaptiveTimeout = sc.AdaptiveTimeout
	cfg.HMC.Fault = fault.Config{Seed: sc.FaultSeed, BER: sc.BER, DropRate: sc.DropRate}
	cfg.Backend = sc.backendKind()
	cfg.Frontend = sc.frontendKind()
	cfg.Sched = sc.schedKind()
	if cfg.Backend != membackend.KindHMC {
		// Link fault injection is HMC-only: the alternative backends have
		// no serial links, so their scenarios soak the fault-free paths.
		cfg.HMC.Fault = fault.Config{}
	}
	cfg.Checks = true
	return cfg
}

// RunFunc executes one scenario over a trace and returns the run error.
// Tests inject failing RunFuncs to drive the shrinker deterministically.
type RunFunc func(sc Scenario, accs []trace.Access) error

// RunScenario is the production RunFunc: a full simulator run with the
// invariant checker enabled.
func RunScenario(sc Scenario, accs []trace.Access) error {
	s, err := sim.NewSystem(sc.Config())
	if err != nil {
		return err
	}
	_, err = s.Run(accs)
	return err
}

// Outcome classifies one scenario's result.
type Outcome int

const (
	// OK is a clean run: no error, no violation.
	OK Outcome = iota
	// Expected is a run that errored in a way chaos predicts: with
	// response drops injected, the coalescer watchdog legitimately
	// reports responses that never arrived. Not a failure.
	Expected
	// Failed is a genuine failure: an invariant violation, or any error
	// the fault profile does not explain.
	Failed
)

// Classify decides whether an error from a scenario run is a failure.
// Invariant violations are always failures — the checker only fires when a
// conservation law breaks. A watchdog error is expected if and only if the
// scenario injects response drops.
func Classify(sc Scenario, err error) Outcome {
	if err == nil {
		return OK
	}
	if _, ok := invariant.As(err); ok {
		return Failed
	}
	if errors.Is(err, coalescer.ErrWatchdog) && sc.DropRate > 0 && sc.backendKind() == membackend.KindHMC {
		return Expected
	}
	return Failed
}

// Options tunes a soak campaign.
type Options struct {
	// Seed drives the whole scenario grid.
	Seed int64
	// Runs is the number of scenarios to execute.
	Runs int
	// Workers is the sweep pool size (0 = all cores).
	Workers int
	// JobTimeout bounds each scenario run; a hung simulator counts as a
	// failure instead of wedging the harness.
	JobTimeout time.Duration
	// ReproDir, when non-empty, receives a shrunken repro JSON for every
	// failing scenario.
	ReproDir string
	// ShrinkBudget caps the number of re-runs the shrinker may spend per
	// failure (0 = DefaultShrinkBudget).
	ShrinkBudget int
	// Run replaces the production scenario runner; nil = RunScenario.
	Run RunFunc
	// Progress, when non-nil, receives sweep progress.
	Progress func(done, total int)
	// Backend soaks every scenario on this memory backend instead of the
	// HMC model (fault dimensions are neutralized for the link-less
	// backends). The zero value keeps the legacy HMC grid untouched.
	Backend membackend.Kind
	// Frontend and Sched soak every scenario on this coalescing front-end
	// and issue policy. Like Backend they are campaign-wide overrides, not
	// random dimensions, so the zero values keep legacy scenario
	// derivations — and old repro indices — bit-identical.
	Frontend frontend.Kind
	Sched    frontend.SchedKind
	// Checkpoint, when non-empty, persists every classified scenario to a
	// JSONL file (see sweep.Options.Checkpoint) so an interrupted campaign
	// resumes without re-running completed scenarios — the serving layer's
	// park/resume path for soak jobs. Shrunken repros are part of the
	// checkpointed outcome, so a restored failure keeps its repro path.
	Checkpoint string
}

// scenario derives run i of the campaign and applies the campaign-wide
// backend override. The HMC default leaves scenarios identical to the
// legacy grid, so old repro indices stay reproducible.
func (o Options) scenario(i int) Scenario {
	sc := MakeScenario(o.Seed, i)
	if o.Backend != membackend.KindHMC {
		sc.Backend = o.Backend.String()
	}
	if o.Frontend != frontend.KindTwoPhase {
		sc.Frontend = o.Frontend.String()
	}
	if o.Sched != frontend.SchedFRFCFS {
		sc.Sched = o.Sched.String()
	}
	return sc
}

// Failure is one failing scenario with its shrunken reproduction.
type Failure struct {
	Scenario Scenario
	Err      string
	Repro    Repro
	// ReproPath is where the repro JSON was written ("" when ReproDir is
	// unset or the write failed; WriteErr carries the reason).
	ReproPath string
	WriteErr  string
}

// Report summarizes a soak campaign.
type Report struct {
	Seed     int64
	Runs     int
	Clean    int
	Expected int
	Failures []Failure
}

// result is the per-job sweep payload. Scenario outcomes are data, not job
// errors: the grid always runs to completion and failures are collected in
// the report, exactly what sweep.Options.KeepGoing exists for. Ran guards
// against a timed-out or panicked job's zero-value slot masquerading as a
// clean run. The fields are exported (and JSON-tagged) because the result
// is what Options.Checkpoint persists — a restored line must round-trip.
type result struct {
	Ran     bool     `json:"ran"`
	Outcome Outcome  `json:"outcome"`
	Failure *Failure `json:"failure,omitempty"`
}

// Soak runs the campaign. The returned error covers harness-level problems
// (trace generation, cancelled context) — scenario failures are reported
// in Report.Failures, and the caller decides the exit code.
func Soak(ctx context.Context, opts Options) (Report, error) {
	run := opts.Run
	if run == nil {
		run = RunScenario
	}
	rep := Report{Seed: opts.Seed, Runs: opts.Runs}
	if opts.Runs <= 0 {
		return rep, nil
	}

	swOpts := sweep.Options{
		Workers:    opts.Workers,
		JobTimeout: opts.JobTimeout,
		KeepGoing:  true,
		Progress:   opts.Progress,
		Checkpoint: opts.Checkpoint,
	}
	// Tag checkpoint lines with the campaign's front-end axes so a warp
	// campaign never resumes from two-phase outcomes; default campaigns
	// stay untagged, keeping legacy checkpoints restorable.
	if opts.Frontend != frontend.KindTwoPhase {
		swOpts.Frontend = opts.Frontend.String()
	}
	if opts.Sched != frontend.SchedFRFCFS {
		swOpts.Sched = opts.Sched.String()
	}
	results, err := sweep.Map(ctx, opts.Runs, swOpts, func(ctx context.Context, i int) (result, error) {
		sc := opts.scenario(i)
		accs, err := sc.Trace()
		if err != nil {
			return result{}, &sweep.JobError{Job: i, Err: err}
		}
		runErr := run(sc, accs)
		switch Classify(sc, runErr) {
		case OK:
			return result{Ran: true, Outcome: OK}, nil
		case Expected:
			return result{Ran: true, Outcome: Expected}, nil
		}
		f := &Failure{Scenario: sc, Err: runErr.Error()}
		f.Repro = Shrink(sc, accs, run, opts.ShrinkBudget)
		if opts.ReproDir != "" {
			path, werr := WriteRepro(opts.ReproDir, f.Repro)
			if werr != nil {
				f.WriteErr = werr.Error()
			} else {
				f.ReproPath = path
			}
		}
		return result{Ran: true, Outcome: Failed, Failure: f}, nil
	})

	// Sweep-level job errors (timeout, panic, trace generation) belong to
	// specific job indices: surface each as a failure of its scenario.
	jobErrs := make(map[int]string)
	collectJobErrs(err, jobErrs)

	for i, r := range results {
		if !r.Ran {
			msg, ok := jobErrs[i]
			if !ok {
				msg = "scenario did not run (sweep aborted)"
			}
			rep.Failures = append(rep.Failures, Failure{
				Scenario: opts.scenario(i), Err: msg,
			})
			continue
		}
		switch r.Outcome {
		case OK:
			rep.Clean++
		case Expected:
			rep.Expected++
		case Failed:
			if r.Failure != nil {
				rep.Failures = append(rep.Failures, *r.Failure)
			}
		}
	}
	if ctx.Err() != nil {
		return rep, ctx.Err()
	}
	return rep, nil
}

// collectJobErrs walks an errors.Join tree attributing job-indexed errors
// (timeouts, panics, trace generation wrapped by the sweep) to their runs.
func collectJobErrs(err error, out map[int]string) {
	if err == nil {
		return
	}
	if joined, ok := err.(interface{ Unwrap() []error }); ok {
		for _, e := range joined.Unwrap() {
			collectJobErrs(e, out)
		}
		return
	}
	var je *sweep.JobError
	if errors.As(err, &je) {
		out[je.Job] = je.Error()
		return
	}
	var pe *sweep.PanicError
	if errors.As(err, &pe) {
		out[pe.Job] = pe.Error()
	}
}
