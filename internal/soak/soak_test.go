package soak

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hmccoal/internal/coalescer"
	"hmccoal/internal/invariant"
	"hmccoal/internal/trace"
)

// TestScenarioDeterministic proves the grid is a pure function of
// (seed, index) — the property every repro file depends on.
func TestScenarioDeterministic(t *testing.T) {
	for i := 0; i < 20; i++ {
		a, b := MakeScenario(42, i), MakeScenario(42, i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("scenario %d not deterministic:\n%+v\nvs\n%+v", i, a, b)
		}
	}
	if reflect.DeepEqual(MakeScenario(42, 0), MakeScenario(43, 0)) {
		t.Error("different seeds produced identical scenarios")
	}
}

// TestScenarioTraceRegenerates proves a scenario's trace is reproducible
// and non-trivial for a spread of grid points.
func TestScenarioTraceRegenerates(t *testing.T) {
	for i := 0; i < 5; i++ {
		sc := MakeScenario(7, i)
		a, err := sc.Trace()
		if err != nil {
			t.Fatalf("%v: %v", sc, err)
		}
		b, _ := sc.Trace()
		if len(a) == 0 || !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: trace not reproducible (len %d)", sc, len(a))
		}
	}
}

// TestClassify pins the outcome taxonomy: violations always fail, watchdog
// errors are expected only under injected drops, everything else fails.
func TestClassify(t *testing.T) {
	v := invariant.Violatef(invariant.RuleMSHRLeak, 5, "", "leak")
	wd := fmt.Errorf("coalescer: %w: 2 response(s) never arrived", coalescer.ErrWatchdog)
	drop := Scenario{DropRate: 1e-4}
	clean := Scenario{}
	cases := []struct {
		sc   Scenario
		err  error
		want Outcome
	}{
		{clean, nil, OK},
		{drop, wd, Expected},
		{clean, wd, Failed},
		{drop, fmt.Errorf("wrap: %w", v), Failed},
		{clean, v, Failed},
		{drop, errors.New("segfault adjacent"), Failed},
	}
	for i, c := range cases {
		if got := Classify(c.sc, c.err); got != c.want {
			t.Errorf("case %d: Classify(%v) = %v, want %v", i, c.err, got, c.want)
		}
	}
}

// failAfter builds a RunFunc that reports an invariant violation whenever
// the trace still contains at least minHits accesses from the culprit CPU.
// It is fully deterministic, so the shrinker can bisect against it.
func failAfter(culprit uint8, minHits int) RunFunc {
	return func(sc Scenario, accs []trace.Access) error {
		hits := 0
		for _, a := range accs {
			if a.CPU == culprit {
				hits++
				if hits >= minHits {
					return invariant.Violatef(invariant.RuleDoubleCompletion, a.Tick, "",
						"cpu %d completed twice", culprit)
				}
			}
		}
		return nil
	}
}

// TestShrinkMinimizesInjectedViolation drives the shrinker with a seeded
// deterministic violation and checks the repro is genuinely minimal: the
// prefix stops at the triggering access and every innocent CPU is dropped.
func TestShrinkMinimizesInjectedViolation(t *testing.T) {
	sc := MakeScenario(99, 0)
	accs, err := sc.Trace()
	if err != nil {
		t.Fatal(err)
	}
	const culprit, minHits = 1, 3
	run := failAfter(culprit, minHits)
	if Classify(sc, run(sc, accs)) != Failed {
		t.Fatal("injected violation did not fire on the full trace")
	}

	rep := Shrink(sc, accs, run, 200)
	if rep.Error == "" || !strings.Contains(rep.Error, "completed twice") {
		t.Fatalf("repro error = %q", rep.Error)
	}
	if rep.OrigLen != len(accs) {
		t.Errorf("OrigLen = %d, want %d", rep.OrigLen, len(accs))
	}
	if rep.PrefixLen >= len(accs) {
		t.Errorf("shrinker did not reduce the trace: prefix %d of %d", rep.PrefixLen, len(accs))
	}

	// The minimal prefix is exactly the index of the minHits-th culprit
	// access plus one — bisection should land on it.
	hits, want := 0, -1
	for i, a := range accs {
		if a.CPU == culprit {
			hits++
			if hits == minHits {
				want = i + 1
				break
			}
		}
	}
	if rep.PrefixLen != want {
		t.Errorf("PrefixLen = %d, want minimal %d", rep.PrefixLen, want)
	}

	// Every CPU except the culprit should have been dropped.
	for _, c := range rep.DropCPUs {
		if c == culprit {
			t.Fatalf("shrinker dropped the culprit CPU %d", c)
		}
	}
	_, cut := rep.reduced(accs)
	for _, a := range cut {
		if a.CPU != culprit {
			t.Errorf("minimized trace still contains CPU %d", a.CPU)
			break
		}
	}

	// The reduction must still reproduce.
	if err := Replay(rep, run); Classify(rep.Scenario, err) != Failed {
		t.Errorf("minimized repro no longer fails: %v", err)
	}
}

// TestShrinkBudgetRespected proves the shrinker never spends more re-runs
// than its budget.
func TestShrinkBudgetRespected(t *testing.T) {
	sc := MakeScenario(99, 1)
	accs, err := sc.Trace()
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	run := func(sc Scenario, accs []trace.Access) error {
		calls++
		return invariant.Violatef(invariant.RuleMSHRLeak, 0, "", "always fails")
	}
	rep := Shrink(sc, accs, run, 10)
	if calls > 10 {
		t.Errorf("shrinker spent %d runs, budget 10", calls)
	}
	if rep.ShrinkSteps != calls {
		t.Errorf("ShrinkSteps = %d, calls = %d", rep.ShrinkSteps, calls)
	}
}

// TestShrinkFlakyFailure proves a non-deterministic failure is reported as
// such instead of producing a bogus repro.
func TestShrinkFlakyFailure(t *testing.T) {
	sc := MakeScenario(99, 2)
	accs, err := sc.Trace()
	if err != nil {
		t.Fatal(err)
	}
	run := func(Scenario, []trace.Access) error { return nil } // fired once, never again
	rep := Shrink(sc, accs, run, 10)
	if !strings.Contains(rep.Error, "did not reproduce") {
		t.Errorf("flaky failure not flagged: %q", rep.Error)
	}
}

// TestSoakWritesReplayableRepro runs the full harness loop with an
// injected violation: the failing scenario must be shrunk, written to the
// repro dir, readable back, and replayable to the same failure.
func TestSoakWritesReplayableRepro(t *testing.T) {
	dir := t.TempDir()
	const culprit = 0 // CPU 0 exists in every scenario
	run := failAfter(culprit, 1)
	rep, err := Soak(context.Background(), Options{
		Seed: 5, Runs: 3, Workers: 2, ReproDir: dir,
		ShrinkBudget: 100, Run: run,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) != 3 {
		t.Fatalf("failures = %d, want 3 (culprit CPU in every scenario)", len(rep.Failures))
	}
	for _, f := range rep.Failures {
		if f.ReproPath == "" {
			t.Fatalf("run %d: no repro written (%s)", f.Scenario.Index, f.WriteErr)
		}
		if filepath.Dir(f.ReproPath) != dir {
			t.Errorf("repro %s outside dir %s", f.ReproPath, dir)
		}
		loaded, err := ReadRepro(f.ReproPath)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(loaded, f.Repro) {
			t.Error("repro did not round-trip through JSON")
		}
		if err := Replay(loaded, run); Classify(loaded.Scenario, err) != Failed {
			t.Errorf("run %d: repro does not replay: %v", f.Scenario.Index, err)
		}
	}
}

// TestSoakCleanGrid proves a violation-free soak reports all-clean and
// writes no artifacts.
func TestSoakCleanGrid(t *testing.T) {
	dir := t.TempDir()
	rep, err := Soak(context.Background(), Options{
		Seed: 11, Runs: 4, Workers: 2, ReproDir: dir,
		Run: func(Scenario, []trace.Access) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean != 4 || len(rep.Failures) != 0 || rep.Expected != 0 {
		t.Fatalf("clean grid: %+v", rep)
	}
	glob, _ := filepath.Glob(filepath.Join(dir, "*"))
	if len(glob) != 0 {
		t.Errorf("clean soak wrote artifacts: %v", glob)
	}
}

// TestSoakRealSimulatorSmoke runs a handful of real checker-on simulations
// end to end — the in-process version of the CI soak smoke job.
func TestSoakRealSimulatorSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulator soak")
	}
	dir := t.TempDir()
	rep, err := Soak(context.Background(), Options{Seed: 1, Runs: 6, ReproDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures {
		t.Errorf("%v: %s (repro: %s)", f.Scenario, f.Err, f.ReproPath)
	}
}

// TestRegressionDroppedTokenWrap replays the four seed-1 scenarios that
// first exposed token-ring slot reuse: a dropped response leaks its
// waiter's ring slot, and the monotone allocator eventually wraps onto
// it. The ledger must forfeit such slots (the completion is unreachable)
// rather than report ring overflow.
func TestRegressionDroppedTokenWrap(t *testing.T) {
	t.Parallel()
	for _, idx := range []int{197, 389, 591, 842} {
		sc := MakeScenario(1, idx)
		if sc.DropRate == 0 {
			t.Fatalf("run %d: expected a drop-injecting scenario, got %+v", idx, sc)
		}
		accs, err := sc.Trace()
		if err != nil {
			t.Fatalf("run %d: trace: %v", idx, err)
		}
		if got := Classify(sc, RunScenario(sc, accs)); got == Failed {
			t.Errorf("run %d: classified as failure: %v", idx, RunScenario(sc, accs))
		}
	}
}
