package sweep

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCheckpointFlushedOnCancellation pins the write-through contract of
// the checkpoint writer: a job that completed before the context was
// cancelled is on disk when MapBatch returns — cancellation (or a crash
// right after it) can never lose finished work to a buffer.
func TestCheckpointFlushedOnCancellation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const n = 6
	completed := 0
	_, err := MapBatch(ctx, n, 2, Options{Workers: 1, Checkpoint: path},
		func(_ context.Context, idxs []int) ([]int, error) {
			out := make([]int, len(idxs))
			for k, i := range idxs {
				out[k] = i * 11
			}
			completed += len(idxs)
			if completed >= 4 {
				// Cancel mid-sweep, right after this group finishes: the
				// group's results must still reach the checkpoint.
				cancel()
			}
			return out, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if completed >= n {
		t.Fatalf("sweep ran all %d jobs; cancellation never interrupted it", n)
	}

	// Every completed job must already be a durable checkpoint line.
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if lines := strings.Count(string(data), "\n"); lines != completed {
		t.Fatalf("checkpoint holds %d lines, want %d (completed jobs)", lines, completed)
	}

	// And a resumed sweep must skip exactly those jobs.
	reran := 0
	res, err := MapBatch(context.Background(), n, 2, Options{Workers: 1, Checkpoint: path},
		func(_ context.Context, idxs []int) ([]int, error) {
			out := make([]int, len(idxs))
			for k, i := range idxs {
				out[k] = i * 11
			}
			reran += len(idxs)
			return out, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if reran != n-completed {
		t.Fatalf("resume recomputed %d jobs, want %d", reran, n-completed)
	}
	for i, v := range res {
		if v != i*11 {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*11)
		}
	}
}
