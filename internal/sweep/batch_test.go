package sweep

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// squareGroup is a MapBatch group fn computing i*i per index.
func squareGroup(_ context.Context, idxs []int) ([]int, error) {
	out := make([]int, len(idxs))
	for k, i := range idxs {
		out[k] = i * i
	}
	return out, nil
}

// TestMapBatchMatchesMap: the grouped engine must produce the same results
// as the per-job engine at any batch width and worker count.
func TestMapBatchMatchesMap(t *testing.T) {
	const n = 23
	want, err := Map(context.Background(), n, Options{Workers: 1}, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{0, 1, 3, 8, 23, 100} {
		for _, workers := range []int{1, 4} {
			got, err := MapBatch(context.Background(), n, batch, Options{Workers: workers}, squareGroup)
			if err != nil {
				t.Fatalf("batch=%d workers=%d: %v", batch, workers, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("batch=%d workers=%d: results %v, want %v", batch, workers, got, want)
			}
		}
	}
}

// TestMapBatchProgressPerJob: progress ticks once per job (+1 increments),
// never once per group — sweep drivers and their tests rely on it.
func TestMapBatchProgressPerJob(t *testing.T) {
	const n = 10
	var mu sync.Mutex
	var last, calls int
	_, err := MapBatch(context.Background(), n, 4, Options{
		Workers: 1,
		Progress: func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			if done != last+1 {
				t.Errorf("progress jumped from %d to %d", last, done)
			}
			if total != n {
				t.Errorf("progress total %d, want %d", total, n)
			}
			last = done
			calls++
		},
	}, squareGroup)
	if err != nil {
		t.Fatal(err)
	}
	if calls != n {
		t.Errorf("progress called %d times, want %d", calls, n)
	}
}

// TestMapBatchPanicNamesGroup: a panicking group is attributed to its
// first job index and the sweep survives.
func TestMapBatchPanicNamesGroup(t *testing.T) {
	_, err := MapBatch(context.Background(), 9, 3, Options{Workers: 1, KeepGoing: true},
		func(_ context.Context, idxs []int) ([]int, error) {
			if idxs[0] == 3 {
				panic("lane blew up")
			}
			return make([]int, len(idxs)), nil
		})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v, want a PanicError", err)
	}
	if pe.Job != 3 {
		t.Errorf("panic attributed to job %d, want 3", pe.Job)
	}
}

// TestMapBatchResultCountMismatch: a group returning the wrong number of
// results is an engine-level error naming the group.
func TestMapBatchResultCountMismatch(t *testing.T) {
	_, err := MapBatch(context.Background(), 4, 2, Options{Workers: 1},
		func(_ context.Context, idxs []int) ([]int, error) {
			return make([]int, len(idxs)-1), nil
		})
	if err == nil {
		t.Fatal("short result slice accepted")
	}
}

// TestMapBatchCheckpointInterop: a checkpoint written by a batched sweep
// must restore into an unbatched one and vice versa — the per-job line
// format is the contract.
func TestMapBatchCheckpointInterop(t *testing.T) {
	const n = 8
	ckpt := filepath.Join(t.TempDir(), "ckpt.jsonl")

	// Batched sweep fails halfway: jobs 0..3 checkpointed, the rest not.
	var ran1 []int
	var mu sync.Mutex
	_, err := MapBatch(context.Background(), n, 2, Options{Workers: 1, Checkpoint: ckpt},
		func(_ context.Context, idxs []int) ([]int, error) {
			mu.Lock()
			ran1 = append(ran1, idxs...)
			mu.Unlock()
			if idxs[0] >= 4 {
				return nil, fmt.Errorf("deliberate failure at job %d", idxs[0])
			}
			out := make([]int, len(idxs))
			for k, i := range idxs {
				out[k] = i * 10
			}
			return out, nil
		})
	if err == nil {
		t.Fatal("first pass should fail")
	}

	// Unbatched resume: only the unfinished jobs run.
	var ran2 []int
	got, err := Map(context.Background(), n, Options{Workers: 1, Checkpoint: ckpt},
		func(_ context.Context, i int) (int, error) {
			mu.Lock()
			ran2 = append(ran2, i)
			mu.Unlock()
			return i * 10, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got[i] != i*10 {
			t.Errorf("result[%d] = %d, want %d", i, got[i], i*10)
		}
	}
	for _, i := range ran2 {
		if i < 4 {
			t.Errorf("resume recomputed checkpointed job %d", i)
		}
	}

	// And a batched resume of a now-complete checkpoint runs nothing.
	_, err = MapBatch(context.Background(), n, 3, Options{Workers: 1, Checkpoint: ckpt},
		func(_ context.Context, idxs []int) ([]int, error) {
			t.Errorf("complete checkpoint recomputed group %v", idxs)
			return make([]int, len(idxs)), nil
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointDuplicateLinesLastWins pins the duplicate-index contract:
// an interrupted append that was re-appended on resume leaves two lines
// for one job, and restore must take the last complete one. The torn line
// in the middle of the file must cost only itself — every line after it
// still restores (the old decoder-based scan lost the whole tail).
func TestCheckpointDuplicateLinesLastWins(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "ckpt.jsonl")
	content := `{"job":0,"n":4,"result":1}
{"job":1,"n":4,"result":10}
{"job":2,"n":4,"res
{"job":1,"n":4,"result":11}
{"job":3,"n":4,"result":30}
`
	if err := os.WriteFile(ckpt, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var ran []int
	got, err := Map(context.Background(), 4, Options{Workers: 1, Checkpoint: ckpt},
		func(_ context.Context, i int) (int, error) {
			ran = append(ran, i)
			return 100 + i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ran, []int{2}) {
		t.Errorf("jobs recomputed: %v, want [2] (only the torn line)", ran)
	}
	want := []int{1, 11, 102, 30}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("restored results %v, want %v (job 1 last-wins, job 3 survives the torn line)", got, want)
	}
}

// TestCheckpointDuplicateBrokenPayloadKeptOut: a duplicate whose payload
// does not decode cannot supersede an earlier good record.
func TestCheckpointDuplicateBrokenPayloadKeptOut(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "ckpt.jsonl")
	content := `{"job":0,"n":2,"result":7}
{"job":0,"n":2,"result":"not an int"}
`
	if err := os.WriteFile(ckpt, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Map(context.Background(), 2, Options{Workers: 1, Checkpoint: ckpt},
		func(_ context.Context, i int) (int, error) { return 100 + i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Errorf("job 0 restored as %d, want 7 (broken duplicate must not supersede)", got[0])
	}
}
