package sweep

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCheckpointCreationIsAtomic pins the durable-creation contract: a
// sweep's checkpoint file is born via temp-file + rename, so after the
// sweep the directory holds exactly the checkpoint — no orphaned temp
// files — and the file carries every completed job.
func TestCheckpointCreationIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ckpt")
	if _, err := Map(context.Background(), 6, Options{Workers: 2, Checkpoint: path},
		func(_ context.Context, i int) (int, error) { return i * i, nil }); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("orphaned temp file %q left behind", e.Name())
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 6 {
		t.Errorf("checkpoint holds %d lines, want 6", n)
	}
}

// TestOpenCheckpointAppendsToExisting proves opening an existing
// checkpoint never truncates it: the durable-creation path only runs for
// missing files, and resumes append behind the restored lines.
func TestOpenCheckpointAppendsToExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sweep.ckpt")
	calls := 0
	run := func(_ context.Context, i int) (int, error) { calls++; return i + 10, nil }

	// First pass completes half the grid by running with a grid that
	// matches, then the resume must restore those lines and only run the
	// remainder.
	if _, err := Map(context.Background(), 4, Options{Workers: 1, Checkpoint: path}, run); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	calls = 0
	got, err := Map(context.Background(), 4, Options{Workers: 1, Checkpoint: path}, run)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Errorf("resume recomputed %d jobs, want 0", calls)
	}
	for i, v := range got {
		if v != i+10 {
			t.Errorf("restored job %d = %d, want %d", i, v, i+10)
		}
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(second) != string(first) {
		t.Error("restore-only resume modified the checkpoint file")
	}
}
