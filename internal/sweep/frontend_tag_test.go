package sweep

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// runTagged runs a 4-job sweep against path with the given tags and
// returns how many jobs actually recomputed (were not restored).
func runTagged(t *testing.T, path string, opts Options) int {
	t.Helper()
	calls := 0
	opts.Workers = 1
	opts.Checkpoint = path
	got, err := Map(context.Background(), 4, opts,
		func(_ context.Context, i int) (int, error) { calls++; return i + 100, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i+100 {
			t.Fatalf("job %d = %d, want %d", i, v, i+100)
		}
	}
	return calls
}

// TestCheckpointFrontendTags pins the front-end tagging contract: a sweep
// resumes only from checkpoint lines carrying its own frontend/sched tags,
// so a warp campaign never restores two-phase results (or vice versa), and
// every combination still restores its own lines with zero recompute.
func TestCheckpointFrontendTags(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")

	if got := runTagged(t, path, Options{Frontend: "warp", Sched: "hetero"}); got != 4 {
		t.Fatalf("cold warp/hetero sweep ran %d jobs, want 4", got)
	}
	if got := runTagged(t, path, Options{Frontend: "warp", Sched: "hetero"}); got != 0 {
		t.Errorf("warp/hetero resume recomputed %d jobs, want 0", got)
	}

	// A different front-end, scheduler, or the untagged default must skip
	// every warp/hetero line and recompute the full grid.
	for _, opts := range []Options{
		{Frontend: "warp"},
		{Frontend: "two-phase", Sched: "hetero"},
		{},
	} {
		if got := runTagged(t, path, opts); got != 4 {
			t.Errorf("sweep tagged %+v restored foreign lines: ran %d jobs, want 4", opts, got)
		}
	}

	// Those runs appended their own lines behind the warp ones; each tag
	// combination now resumes from its own results, still zero recompute.
	for _, opts := range []Options{
		{Frontend: "warp", Sched: "hetero"},
		{Frontend: "warp"},
		{Frontend: "two-phase", Sched: "hetero"},
		{},
	} {
		if got := runTagged(t, path, opts); got != 0 {
			t.Errorf("resume tagged %+v recomputed %d jobs, want 0", opts, got)
		}
	}
}

// TestCheckpointLegacyLinesUntaggedOnly pins backward compatibility:
// checkpoints written before front-ends existed carry no frontend/sched
// keys, restore in full into an untagged (default two-phase/FR-FCFS)
// sweep, and are skipped by any tagged sweep.
func TestCheckpointLegacyLinesUntaggedOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.ckpt")
	var lines []byte
	for i := 0; i < 4; i++ {
		lines = append(lines, []byte(fmt.Sprintf("{\"job\":%d,\"n\":4,\"result\":%d}\n", i, i+100))...)
	}
	if err := os.WriteFile(path, lines, 0o644); err != nil {
		t.Fatal(err)
	}

	if got := runTagged(t, path, Options{}); got != 0 {
		t.Errorf("untagged sweep recomputed %d jobs from a legacy checkpoint, want 0", got)
	}
	if got := runTagged(t, path, Options{Frontend: "warp"}); got != 4 {
		t.Errorf("warp sweep restored legacy lines: ran %d jobs, want 4", got)
	}
	if got := runTagged(t, path, Options{Sched: "hetero"}); got != 4 {
		t.Errorf("hetero sweep restored legacy lines: ran %d jobs, want 4", got)
	}
}
