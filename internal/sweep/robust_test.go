package sweep

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapPanicSurfacesAsError proves a panicking job does not take the
// process down: the panic converts to a *PanicError naming the job index
// and the sweep reports it like any other failure.
func TestMapPanicSurfacesAsError(t *testing.T) {
	_, err := Map(context.Background(), 10, Options{Workers: 4},
		func(_ context.Context, i int) (int, error) {
			if i == 7 {
				panic("kaboom")
			}
			return i, nil
		})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Job != 7 {
		t.Errorf("PanicError.Job = %d, want 7", pe.Job)
	}
	if pe.Value != "kaboom" {
		t.Errorf("PanicError.Value = %v, want kaboom", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError.Stack is empty")
	}
	if !strings.Contains(err.Error(), "job 7") {
		t.Errorf("error does not name the job: %v", err)
	}
}

// TestMapPanicKeepGoingFinishesGrid proves the other workers keep draining
// the grid after a panic when KeepGoing is set.
func TestMapPanicKeepGoingFinishesGrid(t *testing.T) {
	var ran atomic.Int64
	got, err := Map(context.Background(), 100, Options{Workers: 4, KeepGoing: true},
		func(_ context.Context, i int) (int, error) {
			ran.Add(1)
			if i == 3 {
				panic(i)
			}
			return i, nil
		})
	if err == nil {
		t.Fatal("panic not reported")
	}
	if n := ran.Load(); n != 100 {
		t.Errorf("KeepGoing ran %d/100 jobs", n)
	}
	for i, v := range got {
		if i != 3 && v != i {
			t.Errorf("result[%d] = %d, want %d", i, v, i)
		}
	}
}

// TestMapJobTimeout proves a deliberately hung job is abandoned at the
// deadline and reported as a JobError wrapping context.DeadlineExceeded,
// while the rest of the grid completes.
func TestMapJobTimeout(t *testing.T) {
	hung := make(chan struct{})
	defer close(hung)
	got, err := Map(context.Background(), 10, Options{
		Workers: 4, JobTimeout: 20 * time.Millisecond, KeepGoing: true,
	}, func(ctx context.Context, i int) (int, error) {
		if i == 5 {
			// Hang until the test exits, ignoring cancellation — the worst
			// kind of stuck job.
			<-hung
		}
		return i, nil
	})
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("err = %v, want *JobError", err)
	}
	if je.Job != 5 {
		t.Errorf("JobError.Job = %d, want 5", je.Job)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want wrapped DeadlineExceeded", err)
	}
	for i, v := range got {
		if i != 5 && v != i {
			t.Errorf("result[%d] = %d, want %d", i, v, i)
		}
	}
}

// TestMapErrorAggregation proves multi-failure sweeps report every
// distinct error, first one primary, instead of swallowing the rest.
func TestMapErrorAggregation(t *testing.T) {
	errA := errors.New("failure A")
	errB := errors.New("failure B")
	_, err := Map(context.Background(), 10, Options{Workers: 2, KeepGoing: true},
		func(_ context.Context, i int) (int, error) {
			switch i {
			case 2:
				return 0, errA
			case 6:
				return 0, errB
			}
			return i, nil
		})
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("aggregated err = %v, want both failures joined", err)
	}
}

// TestMapCheckpointResume proves an interrupted sweep resumes from its
// JSONL checkpoint without recomputing finished jobs, and the resumed
// result slice is byte-identical to a cold run at a different worker count.
func TestMapCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	const n = 40
	boom := errors.New("interrupted")
	fn := func(fail bool, ran *atomic.Int64) func(context.Context, int) (int, error) {
		return func(_ context.Context, i int) (int, error) {
			if ran != nil {
				ran.Add(1)
			}
			if fail && i >= 20 {
				return 0, boom
			}
			return i * 3, nil
		}
	}

	// First run fails partway: some results are checkpointed.
	if _, err := Map(context.Background(), n, Options{Workers: 1, Checkpoint: path}, fn(true, nil)); !errors.Is(err, boom) {
		t.Fatalf("interrupted run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		t.Fatalf("no checkpoint written: %v", err)
	}

	// Resume completes the grid, recomputing only the missing jobs.
	var ran atomic.Int64
	resumed, err := Map(context.Background(), n, Options{Workers: 4, Checkpoint: path}, fn(false, &ran))
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if r := ran.Load(); r >= n {
		t.Errorf("resume recomputed everything: %d jobs ran", r)
	}

	cold, err := Map(context.Background(), n, Options{Workers: 3}, fn(false, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, cold) {
		t.Fatalf("resumed results differ from cold run:\n%v\nvs\n%v", resumed, cold)
	}

	// A fully checkpointed grid runs zero jobs.
	ran.Store(0)
	again, err := Map(context.Background(), n, Options{Workers: 2, Checkpoint: path}, fn(false, &ran))
	if err != nil {
		t.Fatal(err)
	}
	if r := ran.Load(); r != 0 {
		t.Errorf("complete checkpoint still ran %d jobs", r)
	}
	if !reflect.DeepEqual(again, cold) {
		t.Fatal("fully restored results differ from cold run")
	}
}

// TestMapCheckpointSkipsForeignAndTruncatedLines proves restore tolerates
// a checkpoint from a different grid size and a crash-truncated tail.
func TestMapCheckpointSkipsForeignAndTruncatedLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	content := `{"job":0,"n":99,"result":7}
{"job":1,"n":4,"result":11}
{"job":2,"n":4,"result":22}
{"job":3,"n":4,"resu`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	got, err := Map(context.Background(), 4, Options{Workers: 1, Checkpoint: path},
		func(_ context.Context, i int) (int, error) {
			ran.Add(1)
			return i * 11, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 11, 22, 33}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	// Jobs 1 and 2 restored; 0 (foreign n) and 3 (truncated) recomputed.
	if r := ran.Load(); r != 2 {
		t.Errorf("ran %d jobs, want 2", r)
	}
}

// TestMapCheckpointProgressCountsRestored proves progress stays strictly
// increasing through a resume, restored jobs reported up front.
func TestMapCheckpointProgressCountsRestored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	const n = 10
	if _, err := Map(context.Background(), n, Options{Workers: 1, Checkpoint: path},
		func(_ context.Context, i int) (int, error) {
			if i >= 6 {
				return 0, fmt.Errorf("stop")
			}
			return i, nil
		}); err == nil {
		t.Fatal("expected interruption")
	}
	var seen []int
	if _, err := Map(context.Background(), n, Options{Workers: 1, Checkpoint: path,
		Progress: func(done, total int) { seen = append(seen, done) },
	}, func(_ context.Context, i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 || seen[0] != 6 || seen[len(seen)-1] != n {
		t.Fatalf("progress sequence %v, want first=6 last=%d", seen, n)
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] != seen[i-1]+1 {
			t.Fatalf("progress not strictly increasing: %v", seen)
		}
	}
}

// TestMapCheckpointBackendTag proves backend-tagged checkpoint lines only
// restore into a sweep with the same tag, while legacy untagged lines keep
// restoring into untagged sweeps.
func TestMapCheckpointBackendTag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	content := `{"job":0,"n":4,"result":100}
{"job":1,"n":4,"backend":"ddr","result":200}
{"job":2,"n":4,"backend":"ideal","result":300}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := func(_ context.Context, i int) (int, error) { return i, nil }

	// Untagged sweep: only the legacy line restores.
	got, err := Map(context.Background(), 4, Options{Workers: 1, Checkpoint: path}, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{100, 1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("untagged sweep got %v, want %v", got, want)
	}

	// ddr-tagged sweep against the same file: only the ddr line restores;
	// the legacy and ideal lines are foreign.
	got, err = Map(context.Background(), 4, Options{Workers: 1, Checkpoint: path, Backend: "ddr"}, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 200, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("ddr sweep got %v, want %v", got, want)
	}

	// A tagged sweep writes tagged lines and resumes from its own output.
	tagged := filepath.Join(t.TempDir(), "tagged.jsonl")
	if _, err := Map(context.Background(), 3, Options{Workers: 1, Checkpoint: tagged, Backend: "ideal"},
		func(_ context.Context, i int) (int, error) { return i * 7, nil }); err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	got, err = Map(context.Background(), 3, Options{Workers: 1, Checkpoint: tagged, Backend: "ideal"},
		func(_ context.Context, i int) (int, error) { ran.Add(1); return i * 7, nil })
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 7, 14}; !reflect.DeepEqual(got, want) {
		t.Fatalf("ideal resume got %v, want %v", got, want)
	}
	if r := ran.Load(); r != 0 {
		t.Errorf("tagged resume recomputed %d jobs", r)
	}
	// An untagged sweep must not consume the tagged checkpoint.
	ran.Store(0)
	if _, err := Map(context.Background(), 3, Options{Workers: 1, Checkpoint: tagged},
		func(_ context.Context, i int) (int, error) { ran.Add(1); return i, nil }); err != nil {
		t.Fatal(err)
	}
	if r := ran.Load(); r != 3 {
		t.Errorf("untagged sweep restored tagged lines: only %d jobs ran", r)
	}
}

// TestRemoteAbortLeavesResumableCheckpoint is the sweep layer's half of
// the fault-tolerant distribution contract: a Remote sweep interrupted
// mid-grid (a coordinator crash, a cancelled campaign) leaves a
// checkpoint from which a second Remote sweep finishes the grid without
// re-dispatching restored jobs — and without duplicating any line, even
// though the abort's cancellation echoes through every in-flight group.
func TestRemoteAbortLeavesResumableCheckpoint(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "remote.jsonl")
	const n = 12

	// First pass: a "dispatcher" that completes 4 groups, then reports
	// the transport loss a dead coordinator produces.
	var served atomic.Int64
	_, err := MapBatch(context.Background(), n, 2, Options{Remote: true, Workers: 1, Checkpoint: ckpt},
		func(_ context.Context, idxs []int) ([]int, error) {
			if served.Add(1) > 4 {
				return nil, errors.New("dsweep: coordinator closed")
			}
			out := make([]int, len(idxs))
			for k, i := range idxs {
				out[k] = i * i
			}
			return out, nil
		})
	if err == nil || !strings.Contains(err.Error(), "coordinator closed") {
		t.Fatalf("aborted sweep returned %v", err)
	}

	// The checkpoint must hold exactly the completed jobs, once each.
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, raw := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(raw) != "" {
			lines++
		}
	}
	if lines != 8 { // 4 groups × 2 jobs
		t.Fatalf("aborted checkpoint holds %d lines, want 8", lines)
	}

	// Second pass: a healthy dispatcher sees only the remaining groups.
	var resumedGroups atomic.Int64
	got, err := MapBatch(context.Background(), n, 2, Options{Remote: true, Checkpoint: ckpt},
		func(_ context.Context, idxs []int) ([]int, error) {
			resumedGroups.Add(1)
			out := make([]int, len(idxs))
			for k, i := range idxs {
				out[k] = i * i
			}
			return out, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if g := resumedGroups.Load(); g != 2 { // (12-8)/2 groups left
		t.Fatalf("resume dispatched %d groups, want 2", g)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d after resume, want %d", i, v, i*i)
		}
	}
}
