package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesIndexOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		got, err := Map(context.Background(), 100, Options{Workers: workers},
			func(_ context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyGrid(t *testing.T) {
	got, err := Map(context.Background(), 0, Options{},
		func(_ context.Context, i int) (int, error) { return 0, errors.New("must not run") })
	if err != nil || len(got) != 0 {
		t.Fatalf("Map(0 jobs) = %v, %v", got, err)
	}
}

func TestMapFirstErrorWinsAndAborts(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	_, err := Map(context.Background(), 1000, Options{Workers: 4},
		func(ctx context.Context, i int) (int, error) {
			ran.Add(1)
			if i == 3 {
				return 0, fmt.Errorf("job %d: %w", i, boom)
			}
			// Give the abort a chance to propagate before the feeder can
			// push the whole grid through.
			select {
			case <-ctx.Done():
			case <-time.After(time.Millisecond):
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Errorf("abort did not stop the sweep: %d jobs ran", n)
	}
}

func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	go func() {
		for ran.Load() == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
	}()
	_, err := Map(ctx, 10000, Options{Workers: 2},
		func(ctx context.Context, i int) (int, error) {
			ran.Add(1)
			select {
			case <-ctx.Done():
			case <-time.After(100 * time.Microsecond):
			}
			return i, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 10000 {
		t.Errorf("cancellation did not stop the sweep: %d jobs ran", n)
	}
}

func TestMapProgressSerializedAndComplete(t *testing.T) {
	const n = 50
	var seen []int
	got, err := Map(context.Background(), n, Options{
		Workers:  8,
		Progress: func(done, total int) { seen = append(seen, done) }, // serialized by contract
	}, func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n || len(seen) != n {
		t.Fatalf("results/progress = %d/%d, want %d/%d", len(got), len(seen), n, n)
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress[%d] = %d, want %d (strictly increasing)", i, d, i+1)
		}
	}
}

func TestOptionsWorkerResolution(t *testing.T) {
	cases := []struct {
		workers, jobs, wantMax int
	}{
		{0, 100, 1 << 20}, // GOMAXPROCS, just has to be ≥ 1
		{1, 100, 1},
		{8, 3, 3}, // clamped to the grid size
	}
	for _, c := range cases {
		got := Options{Workers: c.workers}.workers(c.jobs)
		if got < 1 || got > c.wantMax {
			t.Errorf("Options{Workers:%d}.workers(%d) = %d", c.workers, c.jobs, got)
		}
	}
}
