// Package sweep is a deterministic worker-pool engine for the evaluation
// pipeline's embarrassingly parallel simulation sweeps (benchmark × mode,
// benchmark × timeout, request-size grids, …).
//
// Every job is identified by its index in a fixed-size grid; results come
// back in index order regardless of completion order, so a sweep's output
// is byte-identical whether it ran on one worker or on every core. The
// engine supports context cancellation, a first-error-wins abort (the
// first job error cancels the remaining jobs and is the primary returned
// error, with later distinct failures joined behind it), and an optional
// serialized progress callback.
//
// Long campaigns survive three failure classes that would otherwise lose
// hours of compute: a panicking job is recovered into a PanicError naming
// the job index (the process and the other workers keep running), a hung
// job is abandoned after Options.JobTimeout, and Options.Checkpoint
// persists every completed result to a JSONL file so an interrupted sweep
// resumes without recomputing — with results restored by index, the
// resumed output is byte-identical to a cold run at any worker count.
package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Options tunes a sweep.
type Options struct {
	// Workers is the pool size. 0 means GOMAXPROCS (all cores);
	// 1 reproduces strictly serial, in-order execution.
	Workers int
	// Progress, when non-nil, is invoked after each job completes with
	// the number of finished jobs and the grid size. Calls are
	// serialized; done is strictly increasing up to total. On a
	// checkpoint resume, restored jobs are reported once, up front.
	Progress func(done, total int)
	// JobTimeout, when positive, bounds each job's run time. A job still
	// running at the deadline is abandoned (its goroutine cannot be
	// killed, but its result is discarded and its context cancelled) and
	// reported as a JobError wrapping context.DeadlineExceeded.
	JobTimeout time.Duration
	// Checkpoint, when non-empty, is a JSONL file persisting completed
	// results: one {"job":i,"n":n,"result":…} line per finished job,
	// appended as jobs complete. Starting a sweep with an existing
	// checkpoint restores those results by index and only runs the
	// remainder. Lines from a different grid size and truncated trailing
	// lines (a crash mid-write) are skipped. The result type must be
	// JSON round-trippable for restored runs to be byte-identical.
	Checkpoint string
	// KeepGoing runs every job even after failures instead of cancelling
	// the sweep at the first error. All distinct errors are aggregated in
	// the returned error; soak harnesses use this to collect every
	// violation in a grid rather than just the first.
	KeepGoing bool
	// Backend tags every checkpoint line with the sweep's memory backend;
	// on restore, lines carrying a different tag are skipped so a ddr
	// sweep never resumes from hmc results. The empty tag is the legacy
	// default: checkpoints written before backends existed carry no tag
	// and keep restoring into untagged (default-backend) sweeps.
	Backend string
}

// JobError wraps a job failure with the index of the job that failed.
type JobError struct {
	Job int
	Err error
}

func (e *JobError) Error() string { return fmt.Sprintf("sweep: job %d: %v", e.Job, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// PanicError is a job panic converted into a first-class error: the sweep
// process survives, the other workers keep draining the grid, and the
// panic value plus its stack are preserved for the report.
type PanicError struct {
	Job   int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sweep: job %d panicked: %v", e.Job, e.Value)
}

// workers resolves the effective pool size for n jobs.
func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// checkpointLine is one JSONL record of a completed job.
type checkpointLine struct {
	Job int `json:"job"`
	N   int `json:"n"`
	// Backend is the sweep's memory-backend tag; empty on legacy lines
	// (and on untagged sweeps, keeping their format byte-compatible).
	Backend string `json:"backend,omitempty"`
	// Result is deferred so restore can skip records whose envelope does
	// not match before paying for the payload.
	Result json.RawMessage `json:"result"`
}

// Map runs fn(ctx, i) for every i in [0, n) across the worker pool and
// returns the results in index order. The first job error (in completion
// order) cancels the remaining jobs — unless Options.KeepGoing — and is
// the primary returned error; distinct later failures are joined behind
// it via errors.Join. Jobs that never ran leave their result slot at the
// zero value. A cancelled ctx aborts the sweep with ctx's error.
//
// A job that panics is reported as a *PanicError; a job exceeding
// Options.JobTimeout as a *JobError wrapping context.DeadlineExceeded.
// Both name the job index, so a grid failure is replayable in isolation.
func Map[T any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, ctx.Err()
	}

	restored := make([]bool, n)
	var ckpt *os.File
	if opts.Checkpoint != "" {
		nRestored, err := restoreCheckpoint(opts.Checkpoint, n, opts.Backend, results, restored)
		if err != nil {
			return results, err
		}
		ckpt, err = os.OpenFile(opts.Checkpoint, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return results, fmt.Errorf("sweep: checkpoint: %w", err)
		}
		defer ckpt.Close()
		if opts.Progress != nil && nRestored > 0 {
			opts.Progress(nRestored, n)
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu   sync.Mutex
		done int
		errs []error
	)
	for _, r := range restored {
		if r {
			done++
		}
	}
	// finish serializes per-job completion: error aggregation and abort,
	// checkpoint append, progress. A context.Canceled after the sweep has
	// already aborted is the cancellation echoing through the remaining
	// in-flight jobs, not a distinct failure — it is not recorded.
	finish := func(i int, err error, record func() error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			if len(errs) > 0 && errors.Is(err, context.Canceled) {
				return
			}
			errs = append(errs, err)
			if !opts.KeepGoing {
				cancel()
			}
			return
		}
		if record != nil {
			if werr := record(); werr != nil {
				errs = append(errs, werr)
				if !opts.KeepGoing {
					cancel()
				}
				return
			}
		}
		done++
		if opts.Progress != nil {
			opts.Progress(done, n)
		}
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := opts.workers(n); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					return
				}
				r, err := runJob(ctx, i, opts, fn)
				if err != nil {
					finish(i, err, nil)
					continue
				}
				results[i] = r
				finish(i, nil, func() error { return appendCheckpoint(ckpt, i, n, opts.Backend, r) })
			}
		}()
	}

feed:
	for i := 0; i < n; i++ {
		if restored[i] {
			continue
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	switch len(errs) {
	case 0:
		return results, ctx.Err()
	case 1:
		return results, errs[0]
	default:
		return results, errors.Join(errs...)
	}
}

// runJob executes one job with panic recovery and the optional timeout.
// On timeout the job's goroutine is abandoned — only runJob's caller ever
// writes the result slot, so a late finisher cannot race the sweep.
func runJob[T any](ctx context.Context, i int, opts Options, fn func(ctx context.Context, i int) (T, error)) (T, error) {
	call := func(ctx context.Context) (r T, err error) {
		defer func() {
			if p := recover(); p != nil {
				err = &PanicError{Job: i, Value: p, Stack: debug.Stack()}
			}
		}()
		return fn(ctx, i)
	}
	if opts.JobTimeout <= 0 {
		return call(ctx)
	}
	tctx, tcancel := context.WithTimeout(ctx, opts.JobTimeout)
	defer tcancel()
	type outcome struct {
		r   T
		err error
	}
	ch := make(chan outcome, 1) // buffered: an abandoned job's send never blocks
	go func() {
		r, err := call(tctx)
		ch <- outcome{r, err}
	}()
	select {
	case o := <-ch:
		return o.r, o.err
	case <-tctx.Done():
		var zero T
		return zero, &JobError{Job: i, Err: tctx.Err()}
	}
}

// restoreCheckpoint loads completed results from a JSONL checkpoint into
// results/restored and reports how many were restored. A missing file is
// an empty checkpoint. Records from a different grid size or backend,
// out-of-range indices, and undecodable lines (typically a truncated
// trailing line from a crash mid-append) are skipped, not errors. Legacy
// lines carry no backend tag and restore only into untagged sweeps.
func restoreCheckpoint[T any](path string, n int, backend string, results []T, restored []bool) (int, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("sweep: checkpoint: %w", err)
	}
	count := 0
	dec := json.NewDecoder(bytes.NewReader(data))
	for {
		var line checkpointLine
		if err := dec.Decode(&line); err != nil {
			break // EOF or a truncated/corrupt tail: keep what decoded
		}
		if line.N != n || line.Backend != backend || line.Job < 0 || line.Job >= n || restored[line.Job] {
			continue
		}
		var r T
		if err := json.Unmarshal(line.Result, &r); err != nil {
			continue
		}
		results[line.Job] = r
		restored[line.Job] = true
		count++
	}
	return count, nil
}

// appendCheckpoint writes one completed job to the checkpoint, or does
// nothing when checkpointing is off.
func appendCheckpoint[T any](f *os.File, i, n int, backend string, r T) error {
	if f == nil {
		return nil
	}
	raw, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("sweep: checkpoint job %d: %w", i, err)
	}
	buf, err := json.Marshal(checkpointLine{Job: i, N: n, Backend: backend, Result: raw})
	if err != nil {
		return fmt.Errorf("sweep: checkpoint job %d: %w", i, err)
	}
	buf = append(buf, '\n')
	if _, err := f.Write(buf); err != nil {
		return fmt.Errorf("sweep: checkpoint job %d: %w", i, err)
	}
	return nil
}
