// Package sweep is a deterministic worker-pool engine for the evaluation
// pipeline's embarrassingly parallel simulation sweeps (benchmark × mode,
// benchmark × timeout, request-size grids, …).
//
// Every job is identified by its index in a fixed-size grid; results come
// back in index order regardless of completion order, so a sweep's output
// is byte-identical whether it ran on one worker or on every core. The
// engine supports context cancellation, a first-error-wins abort (the
// first job error cancels the remaining jobs and is the error returned),
// and an optional serialized progress callback.
package sweep

import (
	"context"
	"runtime"
	"sync"
)

// Options tunes a sweep.
type Options struct {
	// Workers is the pool size. 0 means GOMAXPROCS (all cores);
	// 1 reproduces strictly serial, in-order execution.
	Workers int
	// Progress, when non-nil, is invoked after each job completes with
	// the number of finished jobs and the grid size. Calls are
	// serialized; done is strictly increasing from 1 to total.
	Progress func(done, total int)
}

// workers resolves the effective pool size for n jobs.
func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map runs fn(ctx, i) for every i in [0, n) across the worker pool and
// returns the results in index order. The first job error (in completion
// order) cancels the remaining jobs and is returned alongside the partial
// results; jobs that never ran leave their result slot at the zero value.
// A cancelled ctx aborts the sweep with ctx's error.
func Map[T any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, ctx.Err()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		done     int
		firstErr error
	)
	finish := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			cancel()
			return
		}
		done++
		if opts.Progress != nil {
			opts.Progress(done, n)
		}
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := opts.workers(n); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					return
				}
				r, err := fn(ctx, i)
				if err != nil {
					finish(err)
					return
				}
				results[i] = r
				finish(nil)
			}
		}()
	}

feed:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	if firstErr != nil {
		return results, firstErr
	}
	return results, ctx.Err()
}
