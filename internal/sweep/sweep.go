// Package sweep is a deterministic worker-pool engine for the evaluation
// pipeline's embarrassingly parallel simulation sweeps (benchmark × mode,
// benchmark × timeout, request-size grids, …).
//
// Every job is identified by its index in a fixed-size grid; results come
// back in index order regardless of completion order, so a sweep's output
// is byte-identical whether it ran on one worker or on every core. The
// engine supports context cancellation, a first-error-wins abort (the
// first job error cancels the remaining jobs and is the primary returned
// error, with later distinct failures joined behind it), and an optional
// serialized progress callback.
//
// Long campaigns survive three failure classes that would otherwise lose
// hours of compute: a panicking job is recovered into a PanicError naming
// the job index (the process and the other workers keep running), a hung
// job is abandoned after Options.JobTimeout, and Options.Checkpoint
// persists every completed result to a JSONL file so an interrupted sweep
// resumes without recomputing — with results restored by index, the
// resumed output is byte-identical to a cold run at any worker count.
package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Options tunes a sweep.
type Options struct {
	// Workers is the pool size. 0 means GOMAXPROCS (all cores);
	// 1 reproduces strictly serial, in-order execution.
	Workers int
	// Progress, when non-nil, is invoked after each job completes with
	// the number of finished jobs and the grid size. Calls are
	// serialized; done is strictly increasing up to total. On a
	// checkpoint resume, restored jobs are reported once, up front.
	Progress func(done, total int)
	// JobTimeout, when positive, bounds each job's run time. A job still
	// running at the deadline is abandoned (its goroutine cannot be
	// killed, but its result is discarded and its context cancelled) and
	// reported as a JobError wrapping context.DeadlineExceeded.
	JobTimeout time.Duration
	// Checkpoint, when non-empty, is a JSONL file persisting completed
	// results: one {"job":i,"n":n,"result":…} line per finished job,
	// appended as jobs complete. Starting a sweep with an existing
	// checkpoint restores those results by index and only runs the
	// remainder. Lines from a different grid size and lines torn by a
	// crash mid-write are skipped individually — the scan continues past
	// them — and a job recorded twice (an interrupted write re-appended on
	// resume) restores its last complete line. The result type must be
	// JSON round-trippable for restored runs to be byte-identical.
	Checkpoint string
	// KeepGoing runs every job even after failures instead of cancelling
	// the sweep at the first error. All distinct errors are aggregated in
	// the returned error; soak harnesses use this to collect every
	// violation in a grid rather than just the first.
	KeepGoing bool
	// Remote marks a sweep whose groups block on external executors (a
	// distributed dispatcher) instead of computing locally. The pool is
	// then sized to keep every executor fed — one goroutine per pending
	// group, capped — rather than to the local core count, which would
	// starve a many-worker cluster from a small coordinator machine.
	Remote bool
	// Backend tags every checkpoint line with the sweep's memory backend;
	// on restore, lines carrying a different tag are skipped so a ddr
	// sweep never resumes from hmc results. The empty tag is the legacy
	// default: checkpoints written before backends existed carry no tag
	// and keep restoring into untagged (default-backend) sweeps.
	Backend string
	// Frontend and Sched tag every checkpoint line with the sweep's
	// coalescing front-end and issue policy, with the same skip-on-restore
	// and legacy-line rules as Backend: empty tags are the two-phase /
	// FR-FCFS defaults, and untagged lines (including every pre-frontend
	// checkpoint) restore only into untagged sweeps.
	Frontend string
	Sched    string
}

// JobError wraps a job failure with the index of the job that failed.
type JobError struct {
	Job int
	Err error
}

func (e *JobError) Error() string { return fmt.Sprintf("sweep: job %d: %v", e.Job, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// PanicError is a job panic converted into a first-class error: the sweep
// process survives, the other workers keep draining the grid, and the
// panic value plus its stack are preserved for the report.
type PanicError struct {
	Job   int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sweep: job %d panicked: %v", e.Job, e.Value)
}

// remotePoolCap bounds the dispatch goroutines of a Remote sweep: enough
// in-flight groups to saturate any plausible worker fleet, small enough
// that a huge grid does not spawn a goroutine per group up front.
const remotePoolCap = 1024

// workers resolves the effective pool size for n groups.
func (o Options) workers(n int) int {
	w := o.Workers
	if o.Remote {
		// Dispatch goroutines only block on the network; offer every
		// pending group concurrently (up to the cap) so work-stealing
		// executors are never starved, regardless of local core count. An
		// explicit Workers still bounds the in-flight groups.
		if w <= 0 || w > n {
			w = n
		}
		if w > remotePoolCap {
			w = remotePoolCap
		}
		if w < 1 {
			w = 1
		}
		return w
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// checkpointLine is one JSONL record of a completed job.
type checkpointLine struct {
	Job int `json:"job"`
	N   int `json:"n"`
	// Backend is the sweep's memory-backend tag; empty on legacy lines
	// (and on untagged sweeps, keeping their format byte-compatible).
	Backend string `json:"backend,omitempty"`
	// Frontend and Sched are the coalescing front-end and issue-policy
	// tags, empty on legacy and default-front-end lines alike.
	Frontend string `json:"frontend,omitempty"`
	Sched    string `json:"sched,omitempty"`
	// Result is deferred so restore can skip records whose envelope does
	// not match before paying for the payload.
	Result json.RawMessage `json:"result"`
}

// Map runs fn(ctx, i) for every i in [0, n) across the worker pool and
// returns the results in index order. The first job error (in completion
// order) cancels the remaining jobs — unless Options.KeepGoing — and is
// the primary returned error; distinct later failures are joined behind
// it via errors.Join. Jobs that never ran leave their result slot at the
// zero value. A cancelled ctx aborts the sweep with ctx's error.
//
// A job that panics is reported as a *PanicError; a job exceeding
// Options.JobTimeout as a *JobError wrapping context.DeadlineExceeded.
// Both name the job index, so a grid failure is replayable in isolation.
func Map[T any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	return MapBatch(ctx, n, 1, opts, func(ctx context.Context, idxs []int) ([]T, error) {
		r, err := fn(ctx, idxs[0])
		if err != nil {
			return nil, err
		}
		return []T{r}, nil
	})
}

// MapBatch is Map with the grid handed to fn in batch-aligned groups of
// up to batch consecutive indices: fn(ctx, idxs) must return one result
// per index, in order. Workers pull whole groups, so a group is the unit
// of scheduling (and of JobTimeout and panic attribution — both name the
// group's first index) while checkpointing and progress remain per job:
// every completed job appends its own checkpoint line in the same format
// Map writes, so batched and unbatched sweeps restore from each other's
// checkpoints, and Options.Progress still counts single jobs.
//
// Groups are aligned to batch boundaries of the full grid (restored jobs
// are filtered out of their group), so a sweep's group membership is a
// pure function of (n, batch). batch < 1 is treated as 1; Map is exactly
// MapBatch with batch 1.
func MapBatch[T any](ctx context.Context, n, batch int, opts Options, fn func(ctx context.Context, idxs []int) ([]T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, ctx.Err()
	}
	if batch < 1 {
		batch = 1
	}

	restored := make([]bool, n)
	var ckpt *os.File
	if opts.Checkpoint != "" {
		nRestored, err := restoreCheckpoint(opts.Checkpoint, n, opts, results, restored)
		if err != nil {
			return results, err
		}
		ckpt, err = openCheckpoint(opts.Checkpoint)
		if err != nil {
			return results, fmt.Errorf("sweep: checkpoint: %w", err)
		}
		defer ckpt.Close()
		if opts.Progress != nil && nRestored > 0 {
			opts.Progress(nRestored, n)
		}
	}

	// Batch-aligned groups of still-pending indices.
	var groups [][]int
	for base := 0; base < n; base += batch {
		var g []int
		for i := base; i < base+batch && i < n; i++ {
			if !restored[i] {
				g = append(g, i)
			}
		}
		if len(g) > 0 {
			groups = append(groups, g)
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu   sync.Mutex
		done int
		errs []error
	)
	for _, r := range restored {
		if r {
			done++
		}
	}
	// finish serializes group completion: error aggregation and abort,
	// checkpoint append, then one progress tick per job in the group. A
	// context.Canceled after the sweep has already aborted is the
	// cancellation echoing through the remaining in-flight groups, not a
	// distinct failure — it is not recorded.
	finish := func(jobs int, err error, record func() error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			if len(errs) > 0 && errors.Is(err, context.Canceled) {
				return
			}
			errs = append(errs, err)
			if !opts.KeepGoing {
				cancel()
			}
			return
		}
		if record != nil {
			if werr := record(); werr != nil {
				errs = append(errs, werr)
				if !opts.KeepGoing {
					cancel()
				}
				return
			}
		}
		for ; jobs > 0; jobs-- {
			done++
			if opts.Progress != nil {
				opts.Progress(done, n)
			}
		}
	}

	work := make(chan []int)
	var wg sync.WaitGroup
	for w := opts.workers(len(groups)); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range work {
				if ctx.Err() != nil {
					return
				}
				rs, err := runGroup(ctx, g, opts, fn)
				if err == nil && len(rs) != len(g) {
					err = fmt.Errorf("sweep: group at job %d returned %d results for %d jobs", g[0], len(rs), len(g))
				}
				if err != nil {
					finish(0, err, nil)
					continue
				}
				for k, i := range g {
					results[i] = rs[k]
				}
				finish(len(g), nil, func() error {
					return appendCheckpoint(ckpt, g, n, opts, rs)
				})
			}
		}()
	}

feed:
	for _, g := range groups {
		select {
		case work <- g:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()

	switch len(errs) {
	case 0:
		return results, ctx.Err()
	case 1:
		return results, errs[0]
	default:
		return results, errors.Join(errs...)
	}
}

// runGroup executes one group with panic recovery and the optional
// timeout. On timeout the group's goroutine is abandoned — only
// runGroup's caller ever writes result slots, so a late finisher cannot
// race the sweep. Panics and timeouts are attributed to the group's first
// job index.
func runGroup[T any](ctx context.Context, idxs []int, opts Options, fn func(ctx context.Context, idxs []int) ([]T, error)) ([]T, error) {
	call := func(ctx context.Context) (r []T, err error) {
		defer func() {
			if p := recover(); p != nil {
				err = &PanicError{Job: idxs[0], Value: p, Stack: debug.Stack()}
			}
		}()
		return fn(ctx, idxs)
	}
	if opts.JobTimeout <= 0 {
		return call(ctx)
	}
	tctx, tcancel := context.WithTimeout(ctx, opts.JobTimeout)
	defer tcancel()
	type outcome struct {
		r   []T
		err error
	}
	ch := make(chan outcome, 1) // buffered: an abandoned group's send never blocks
	go func() {
		r, err := call(tctx)
		ch <- outcome{r, err}
	}()
	select {
	case o := <-ch:
		return o.r, o.err
	case <-tctx.Done():
		return nil, &JobError{Job: idxs[0], Err: tctx.Err()}
	}
}

// restoreCheckpoint loads completed results from a JSONL checkpoint into
// results/restored and reports how many were restored. A missing file is
// an empty checkpoint. The file is scanned line by line: records from a
// different grid size or backend, out-of-range indices, and undecodable
// lines are skipped — and the scan continues past them, so a line torn by
// a crash mid-append (which a resumed sweep then re-appends after) costs
// exactly that line, never the rest of the file. Legacy lines carry no
// backend/frontend/sched tags and restore only into untagged sweeps.
//
// Duplicate indices are last-wins: when a job appears twice — an
// interrupted write whose complete record was re-appended on resume — the
// later, complete line supersedes the earlier one. A job only counts as
// restored once, and only a line whose payload decodes can supersede.
func restoreCheckpoint[T any](path string, n int, opts Options, results []T, restored []bool) (int, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("sweep: checkpoint: %w", err)
	}
	count := 0
	for len(data) > 0 {
		var raw []byte
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			raw, data = data[:i], data[i+1:]
		} else {
			raw, data = data, nil
		}
		raw = bytes.TrimSpace(raw)
		if len(raw) == 0 {
			continue
		}
		var line checkpointLine
		if err := json.Unmarshal(raw, &line); err != nil {
			continue // torn or corrupt line: skip it, keep scanning
		}
		if line.N != n || line.Backend != opts.Backend || line.Job < 0 || line.Job >= n {
			continue
		}
		if line.Frontend != opts.Frontend || line.Sched != opts.Sched {
			continue // a different front-end's results: never resume across them
		}
		var r T
		if err := json.Unmarshal(line.Result, &r); err != nil {
			continue
		}
		results[line.Job] = r
		if !restored[line.Job] {
			restored[line.Job] = true
			count++
		}
	}
	return count, nil
}

// appendCheckpoint writes one completed group's jobs to the checkpoint as
// a single unbuffered Write — one JSONL line per job, write-through, so a
// group recorded by finish is on disk before the sweep moves on. There is
// no deferred flush to lose: cancellation (or a crash) after a group's
// append costs nothing, and mid-append it tears at most the final line,
// which restore skips. Every append is fsync'd before finish counts the
// group as done, so a power loss can only take the lines after the last
// sync — never reorder a complete, acknowledged line behind a torn one.
// Does nothing when checkpointing is off.
func appendCheckpoint[T any](f *os.File, idxs []int, n int, opts Options, rs []T) error {
	if f == nil {
		return nil
	}
	var buf []byte
	for k, i := range idxs {
		raw, err := json.Marshal(rs[k])
		if err != nil {
			return fmt.Errorf("sweep: checkpoint job %d: %w", i, err)
		}
		line, err := json.Marshal(checkpointLine{
			Job: i, N: n,
			Backend: opts.Backend, Frontend: opts.Frontend, Sched: opts.Sched,
			Result: raw,
		})
		if err != nil {
			return fmt.Errorf("sweep: checkpoint job %d: %w", i, err)
		}
		buf = append(append(buf, line...), '\n')
	}
	if _, err := f.Write(buf); err != nil {
		return fmt.Errorf("sweep: checkpoint group at job %d: %w", idxs[0], err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("sweep: checkpoint sync: %w", err)
	}
	return nil
}

// openCheckpoint opens the checkpoint for appending, creating a missing
// file via temp-file + atomic rename (plus a directory sync) so the file
// either exists completely or not at all — a crash during creation can
// never leave a half-born directory entry for a later resume to trip on.
func openCheckpoint(path string) (*os.File, error) {
	if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
		dir := filepath.Dir(path)
		tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
		if err != nil {
			return nil, err
		}
		tmpName := tmp.Name()
		if err := tmp.Close(); err != nil {
			os.Remove(tmpName)
			return nil, err
		}
		if err := os.Rename(tmpName, path); err != nil {
			os.Remove(tmpName)
			return nil, err
		}
		syncDir(dir)
	}
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// syncDir fsyncs a directory so a just-renamed file's entry is durable.
// Best-effort: filesystems that reject directory fsync lose nothing but
// the stronger guarantee.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
