package trace

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := []struct {
		k    Kind
		want string
	}{
		{Load, "L"},
		{Store, "S"},
		{FenceOp, "F"},
		{Kind(9), "Kind(9)"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("Kind(%d).String() = %q, want %q", c.k, got, c.want)
		}
	}
}

func TestMakeKeyRoundTrip(t *testing.T) {
	f := func(addr uint64, isStore bool) bool {
		kind := Load
		if isStore {
			kind = Store
		}
		k := MakeKey(addr, kind)
		return k.Addr() == addr&AddrMask && k.Kind() == kind && k.Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStoreKeysSortAfterLoads(t *testing.T) {
	// Property from §3.4: any store key compares greater than any load key,
	// so sorting the keys automatically separates request types.
	f := func(a, b uint64) bool {
		load := MakeKey(a, Load)
		store := MakeKey(b, Store)
		return load < store
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvalidKeySortsLast(t *testing.T) {
	inv := InvalidKey()
	if inv.Valid() {
		t.Fatal("InvalidKey reported valid")
	}
	f := func(addr uint64, isStore bool) bool {
		kind := Load
		if isStore {
			kind = Store
		}
		return MakeKey(addr, kind) < inv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeySortOrderMatchesAddressOrderWithinType(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]Key, 0, 256)
	for i := 0; i < 128; i++ {
		keys = append(keys, MakeKey(rng.Uint64()&AddrMask, Load))
		keys = append(keys, MakeKey(rng.Uint64()&AddrMask, Store))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	// After sorting: a (possibly empty) run of loads in address order,
	// followed by a run of stores in address order.
	seenStore := false
	var prev uint64
	var prevSet bool
	for _, k := range keys {
		if k.Kind() == Store {
			if !seenStore {
				seenStore = true
				prevSet = false
			}
		} else if seenStore {
			t.Fatal("load key after store key in sorted order")
		}
		if prevSet && k.Addr() < prev {
			t.Fatalf("addresses out of order within type: %#x after %#x", k.Addr(), prev)
		}
		prev, prevSet = k.Addr(), true
	}
}

func TestAccessOverlaps(t *testing.T) {
	a := Access{Addr: 100, Size: 16}
	cases := []struct {
		b    Access
		want bool
	}{
		{Access{Addr: 100, Size: 16}, true},
		{Access{Addr: 108, Size: 4}, true},
		{Access{Addr: 96, Size: 8}, true},
		{Access{Addr: 116, Size: 4}, false}, // adjacent, not overlapping
		{Access{Addr: 84, Size: 16}, false},
		{Access{Addr: 115, Size: 1}, true},
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("Overlaps(%v, %v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(a); got != c.want {
			t.Errorf("Overlaps(%v, %v) = %v, want %v (symmetry)", c.b, a, got, c.want)
		}
	}
}

func TestAccessLine(t *testing.T) {
	a := Access{Addr: 0x1FF, Size: 4}
	if got := a.Line(64); got != 7 {
		t.Errorf("Line(64) = %d, want 7", got)
	}
	if got := a.Line(256); got != 1 {
		t.Errorf("Line(256) = %d, want 1", got)
	}
}

func TestAccessEnd(t *testing.T) {
	a := Access{Addr: 64, Size: 16}
	if a.End() != 80 {
		t.Errorf("End() = %d, want 80", a.End())
	}
}
