package trace

import (
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	accs := []Access{
		{Addr: 0, Size: 8, Kind: Load, CPU: 0, Tick: 10},
		{Addr: 64, Size: 16, Kind: Store, CPU: 1, Tick: 20},
		{Kind: FenceOp, CPU: 0, Tick: 25},
		{Addr: 60, Size: 8, Kind: Load, CPU: 0, Tick: 30}, // spans lines 0 and 1
	}
	s := Summarize(accs)
	if s.Accesses != 4 || s.Loads != 2 || s.Stores != 1 || s.Fences != 1 {
		t.Errorf("counts = %+v", s)
	}
	if s.PayloadBytes != 32 {
		t.Errorf("PayloadBytes = %d, want 32", s.PayloadBytes)
	}
	if s.FootprintBytes != 128 { // lines 0 and 1
		t.Errorf("FootprintBytes = %d, want 128", s.FootprintBytes)
	}
	if s.SpanTicks != 20 || s.CPUs != 2 {
		t.Errorf("span/cpus = %d/%d", s.SpanTicks, s.CPUs)
	}
	if str := s.String(); !strings.Contains(str, "4 accesses") {
		t.Errorf("String() = %q", str)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Accesses != 0 || s.FootprintBytes != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestMergePreservesOrder(t *testing.T) {
	a := []Access{{Addr: 1, Size: 1, Tick: 5}, {Addr: 2, Size: 1, Tick: 5}, {Addr: 3, Size: 1, Tick: 9}}
	b := []Access{{Addr: 10, Size: 1, Tick: 3}, {Addr: 11, Size: 1, Tick: 7}}
	m := Merge(a, b)
	if len(m) != 5 {
		t.Fatalf("merged %d accesses", len(m))
	}
	if err := Validate(m); err != nil {
		t.Fatal(err)
	}
	// Same-tick entries from one source keep their relative order.
	i1, i2 := -1, -1
	for i, acc := range m {
		if acc.Addr == 1 {
			i1 = i
		}
		if acc.Addr == 2 {
			i2 = i
		}
	}
	if i1 > i2 {
		t.Error("stable order violated for same-tick accesses")
	}
}

func TestValidate(t *testing.T) {
	good := []Access{{Addr: 0, Size: 4, Tick: 1}, {Kind: FenceOp, Tick: 2}, {Addr: 8, Size: 4, Tick: 2}}
	if err := Validate(good); err != nil {
		t.Fatal(err)
	}
	bad := [][]Access{
		{{Addr: 0, Size: 4, Tick: 5}, {Addr: 0, Size: 4, Tick: 4}}, // ticks decrease
		{{Addr: 0, Size: 0, Tick: 1}},                              // zero size
		{{Addr: 1 << 53, Size: 4, Tick: 1}},                        // address too wide
	}
	for i, accs := range bad {
		if err := Validate(accs); err == nil {
			t.Errorf("case %d: invalid trace accepted", i)
		}
	}
}
