// Package trace defines the memory-access model shared by every layer of
// the simulator: the accesses emitted by CPU cores, the miss stream leaving
// the last level cache, and the extended 54-bit sort keys used by the
// request sorting network (paper §3.4).
//
// The paper extends the 52-bit physical address with two control bits so
// that request type separation and invalid-request padding come for free
// during sorting:
//
//	bit 52 (Type):  0 = load, 1 = store. Store keys compare greater than
//	                every load key, so a single numeric sort partitions the
//	                sequence by type.
//	bit 53 (Valid): 0 = valid, 1 = invalid. Padding entries carry Valid=1
//	                and therefore sink to the end of the sorted sequence.
package trace

import "fmt"

// Kind identifies the operation an access performs.
type Kind uint8

// Access kinds. Fence is a memory fence: it carries no address and forces
// the coalescer to drain (paper §3.4).
const (
	Load Kind = iota
	Store
	FenceOp
)

// String returns a single-letter mnemonic used by the text trace format.
func (k Kind) String() string {
	switch k {
	case Load:
		return "L"
	case Store:
		return "S"
	case FenceOp:
		return "F"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Access is one memory operation observed at some point in the hierarchy.
// At the core it is a load/store of Size payload bytes; at the LLC boundary
// it is a miss or write-back request.
type Access struct {
	Addr uint64 // physical byte address (low 52 bits significant)
	Size uint32 // requested payload in bytes
	Kind Kind
	CPU  uint8  // issuing core
	Tick uint64 // issue time in core clock cycles
}

// Bit positions of the address extensions from paper §3.4 and Figure 5.
const (
	TypeBit  = 52 // request type: 0 load, 1 store
	ValidBit = 53 // 0 valid, 1 invalid (padding)

	// AddrMask selects the 52 physical address bits of a key.
	AddrMask = (uint64(1) << TypeBit) - 1
)

// Key is the extended 54-bit sort key: {Valid, Type, Addr[51:0]}.
type Key uint64

// MakeKey builds the extended sort key for a valid request. Fences have no
// address; callers must not build keys for them.
func MakeKey(addr uint64, k Kind) Key {
	key := Key(addr & AddrMask)
	if k == Store {
		key |= 1 << TypeBit
	}
	return key
}

// InvalidKey returns the padding key: Valid=1 with all lower bits set so it
// compares greater than every valid key regardless of type.
func InvalidKey() Key {
	return Key(1<<ValidBit) | Key(1<<TypeBit) | Key(AddrMask)
}

// Addr extracts the 52-bit physical address from the key.
func (k Key) Addr() uint64 { return uint64(k) & AddrMask }

// Kind reports whether the key encodes a load or a store.
func (k Key) Kind() Kind {
	if uint64(k)&(1<<TypeBit) != 0 {
		return Store
	}
	return Load
}

// Valid reports whether the key encodes a real request (Valid bit clear).
func (k Key) Valid() bool { return uint64(k)&(1<<ValidBit) == 0 }

// Key returns the extended sort key for the access.
func (a Access) Key() Key { return MakeKey(a.Addr, a.Kind) }

// End returns the first byte address past the access.
func (a Access) End() uint64 { return a.Addr + uint64(a.Size) }

// Overlaps reports whether two accesses touch at least one common byte.
func (a Access) Overlaps(b Access) bool {
	return a.Addr < b.End() && b.Addr < a.End()
}

// Line returns the index of the cache line containing the first byte of the
// access, for the given line size (which must be a power of two).
func (a Access) Line(lineSize uint64) uint64 { return a.Addr / lineSize }

// String renders the access in the text trace format.
func (a Access) String() string {
	return fmt.Sprintf("%s %#x %d cpu=%d tick=%d", a.Kind, a.Addr, a.Size, a.CPU, a.Tick)
}
