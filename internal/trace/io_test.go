package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func randomAccesses(n int, seed int64) []Access {
	rng := rand.New(rand.NewSource(seed))
	accs := make([]Access, n)
	for i := range accs {
		accs[i] = Access{
			Addr: rng.Uint64() & AddrMask,
			Size: uint32(1 + rng.Intn(256)),
			Kind: Kind(rng.Intn(3)),
			CPU:  uint8(rng.Intn(12)),
			Tick: uint64(rng.Int63()),
		}
	}
	return accs
}

func TestBinaryRoundTrip(t *testing.T) {
	accs := randomAccesses(1000, 42)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteAll(accs); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(accs) {
		t.Fatalf("Count() = %d, want %d", w.Count(), len(accs))
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, accs) {
		t.Fatal("binary round trip mismatch")
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d accesses from empty trace", len(got))
	}
}

func TestBinaryBadMagic(t *testing.T) {
	r := NewReader(strings.NewReader("NOTATRACE"))
	if _, err := r.Read(); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("err = %v, want ErrBadTrace", err)
	}
}

func TestBinaryTruncatedRecord(t *testing.T) {
	accs := randomAccesses(3, 7)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteAll(accs); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	r := NewReader(bytes.NewReader(trunc))
	var err error
	for err == nil {
		_, err = r.Read()
	}
	if err == io.EOF || !errors.Is(err, ErrBadTrace) {
		t.Fatalf("err = %v, want ErrBadTrace (truncation)", err)
	}
}

func TestBinaryBadKind(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Access{Kind: Load}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(binaryMagic)+12] = 200 // corrupt the Kind byte
	if _, err := NewReader(bytes.NewReader(b)).Read(); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("err = %v, want ErrBadTrace", err)
	}
}

func TestTextRoundTrip(t *testing.T) {
	accs := randomAccesses(200, 99)
	var buf bytes.Buffer
	if err := WriteText(&buf, accs); err != nil {
		t.Fatal(err)
	}
	got, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, accs) {
		t.Fatal("text round trip mismatch")
	}
}

func TestParseTextCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\nL 0x40 8 0 10\n  \nS 0x80 16 1 20\n"
	got, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Access{
		{Addr: 0x40, Size: 8, Kind: Load, CPU: 0, Tick: 10},
		{Addr: 0x80, Size: 16, Kind: Store, CPU: 1, Tick: 20},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestParseTextErrors(t *testing.T) {
	for _, in := range []string{
		"X 0x40 8 0 10",  // unknown kind
		"L zz 8 0 10",    // bad address
		"L 0x40 8 0",     // missing field
		"L 0x40 8 0 1 1", // this one is fine for Sscanf prefix, so skip check below
	} {
		_, err := ParseText(strings.NewReader(in))
		if in == "L 0x40 8 0 1 1" {
			continue // trailing garbage is tolerated by Sscanf
		}
		if !errors.Is(err, ErrBadTrace) {
			t.Errorf("ParseText(%q) err = %v, want ErrBadTrace", in, err)
		}
	}
}
