package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes a trace.
type Stats struct {
	Accesses, Loads, Stores, Fences int
	// PayloadBytes is the total data requested.
	PayloadBytes uint64
	// FootprintBytes approximates the touched memory: distinct 64 B lines
	// × 64.
	FootprintBytes uint64
	// SpanTicks is the distance between the first and last access.
	SpanTicks uint64
	// CPUs is the number of distinct cores appearing in the trace.
	CPUs int
}

// Summarize computes Stats over a trace.
func Summarize(accs []Access) Stats {
	var s Stats
	if len(accs) == 0 {
		return s
	}
	lines := make(map[uint64]struct{})
	cpus := make(map[uint8]struct{})
	first, last := accs[0].Tick, accs[0].Tick
	for _, a := range accs {
		s.Accesses++
		cpus[a.CPU] = struct{}{}
		if a.Tick < first {
			first = a.Tick
		}
		if a.Tick > last {
			last = a.Tick
		}
		switch a.Kind {
		case Load:
			s.Loads++
		case Store:
			s.Stores++
		case FenceOp:
			s.Fences++
			continue
		}
		s.PayloadBytes += uint64(a.Size)
		for ln := a.Addr / 64; ln <= (a.End()-1)/64; ln++ {
			lines[ln] = struct{}{}
		}
	}
	s.FootprintBytes = uint64(len(lines)) * 64
	s.SpanTicks = last - first
	s.CPUs = len(cpus)
	return s
}

// String renders the stats on one line.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d accesses (%d loads, %d stores, %d fences) from %d CPUs",
		s.Accesses, s.Loads, s.Stores, s.Fences, s.CPUs)
	fmt.Fprintf(&b, ", %.2f MB payload over a %.2f MB footprint, %d ticks",
		float64(s.PayloadBytes)/1e6, float64(s.FootprintBytes)/1e6, s.SpanTicks)
	return b.String()
}

// Merge interleaves several traces into one, ordered by tick (stable across
// inputs, so per-source program order is preserved).
func Merge(traces ...[]Access) []Access {
	var out []Access
	for _, t := range traces {
		out = append(out, t...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Tick < out[j].Tick })
	return out
}

// Validate checks the invariants the simulator relies on: ticks
// non-decreasing, sizes positive for loads/stores, addresses within 52
// bits. It returns the first violation.
func Validate(accs []Access) error {
	var prev uint64
	for i, a := range accs {
		if a.Tick < prev {
			return fmt.Errorf("trace: access %d at tick %d before predecessor %d", i, a.Tick, prev)
		}
		prev = a.Tick
		if a.Kind == FenceOp {
			continue
		}
		if a.Size == 0 {
			return fmt.Errorf("trace: access %d has zero size", i)
		}
		if a.Addr>>52 != 0 {
			return fmt.Errorf("trace: access %d address %#x exceeds 52 bits", i, a.Addr)
		}
	}
	return nil
}
