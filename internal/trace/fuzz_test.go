package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReadTrace throws arbitrary bytes at both trace decoders. Traces are
// user input: whatever arrives, the decoders must return a clean error —
// never panic, hang or allocate past the input's own size.
func FuzzReadTrace(f *testing.F) {
	// A well-formed two-record trace.
	var good bytes.Buffer
	w := NewWriter(&good)
	w.WriteAll([]Access{
		{Addr: 0x1000, Size: 8, Kind: Load, CPU: 0, Tick: 1},
		{Addr: 0x2000, Size: 64, Kind: Store, CPU: 3, Tick: 9},
	})
	w.Flush()
	f.Add(good.Bytes())
	f.Add(good.Bytes()[:len(good.Bytes())-5]) // truncated mid-record
	f.Add([]byte(binaryMagic))                // header only
	f.Add([]byte("XXXX1\n"))                  // bad magic
	f.Add([]byte{})                           // empty
	f.Add([]byte("L 0x10 8 0 0\nS 0x20 4 1 2\n"))
	f.Add([]byte("# comment\n\nF 0 0 0 0\n"))
	f.Add([]byte("L not-a-number 8 0 0\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		accs, err := NewReader(bytes.NewReader(data)).ReadAll()
		if err != nil {
			// Every binary decode failure must wrap ErrBadTrace so callers
			// can distinguish hostile input from I/O trouble.
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("binary decode error does not wrap ErrBadTrace: %v", err)
			}
		} else {
			// A clean parse consumed exact records: re-encoding must
			// reproduce the input byte for byte.
			if want := len(binaryMagic) + len(accs)*binaryRecSize; len(data) != want {
				t.Fatalf("clean parse of %d bytes yielded %d records (want %d bytes)",
					len(data), len(accs), want)
			}
			var out bytes.Buffer
			rw := NewWriter(&out)
			if err := rw.WriteAll(accs); err != nil {
				t.Fatal(err)
			}
			if err := rw.Flush(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), data) {
				t.Fatalf("binary round trip diverged:\n in %x\nout %x", data, out.Bytes())
			}
			for _, a := range accs {
				if a.Kind > FenceOp {
					t.Fatalf("decoder let through bad kind %d", a.Kind)
				}
			}
		}

		// The text parser must be equally unshockable. Its errors wrap
		// ErrBadTrace except for scanner-level failures (line too long),
		// which are I/O-shaped; both are fine, panics are not.
		tAccs, terr := ParseText(bytes.NewReader(data))
		if terr == nil {
			for _, a := range tAccs {
				if a.Kind > FenceOp {
					t.Fatalf("text parser let through bad kind %d", a.Kind)
				}
			}
		}

		// Streaming reads must agree with ReadAll.
		r := NewReader(bytes.NewReader(data))
		n := 0
		for {
			_, rerr := r.Read()
			if rerr == io.EOF {
				if err != nil {
					t.Fatalf("streaming read hit clean EOF, ReadAll errored: %v", err)
				}
				break
			}
			if rerr != nil {
				if err == nil {
					t.Fatalf("streaming read errored (%v), ReadAll was clean", rerr)
				}
				break
			}
			n++
			if n > len(data) {
				t.Fatal("decoder produced more records than input bytes")
			}
		}
	})
}
