package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Binary trace format: a short magic header followed by one fixed-width
// little-endian record per access. The format is deliberately simple — it
// is the interchange format between cmd/tracegen, cmd/rvsim and the
// simulator, not an archival format.
const (
	binaryMagic   = "HMCT1\n"
	binaryRecSize = 8 + 4 + 1 + 1 + 8 // Addr, Size, Kind, CPU, Tick
)

// ErrBadTrace is wrapped by decoding errors for malformed trace input.
var ErrBadTrace = errors.New("trace: malformed input")

// Writer serializes accesses to the binary trace format.
type Writer struct {
	w     *bufio.Writer
	wrote bool
	count int
}

// NewWriter returns a Writer emitting to w. Call Flush when done.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write appends one access record.
func (tw *Writer) Write(a Access) error {
	if !tw.wrote {
		if _, err := tw.w.WriteString(binaryMagic); err != nil {
			return err
		}
		tw.wrote = true
	}
	var rec [binaryRecSize]byte
	binary.LittleEndian.PutUint64(rec[0:], a.Addr)
	binary.LittleEndian.PutUint32(rec[8:], a.Size)
	rec[12] = byte(a.Kind)
	rec[13] = a.CPU
	binary.LittleEndian.PutUint64(rec[14:], a.Tick)
	if _, err := tw.w.Write(rec[:]); err != nil {
		return err
	}
	tw.count++
	return nil
}

// WriteAll appends every access in order.
func (tw *Writer) WriteAll(accs []Access) error {
	for _, a := range accs {
		if err := tw.Write(a); err != nil {
			return err
		}
	}
	return nil
}

// Count reports how many records have been written.
func (tw *Writer) Count() int { return tw.count }

// Flush flushes buffered records to the underlying writer.
func (tw *Writer) Flush() error {
	if !tw.wrote {
		if _, err := tw.w.WriteString(binaryMagic); err != nil {
			return err
		}
		tw.wrote = true
	}
	return tw.w.Flush()
}

// Reader decodes the binary trace format.
type Reader struct {
	r      *bufio.Reader
	header bool
}

// NewReader returns a Reader consuming from r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

func (tr *Reader) readHeader() error {
	var magic [len(binaryMagic)]byte
	if _, err := io.ReadFull(tr.r, magic[:]); err != nil {
		return fmt.Errorf("%w: missing header: %v", ErrBadTrace, err)
	}
	if string(magic[:]) != binaryMagic {
		return fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic)
	}
	tr.header = true
	return nil
}

// Read decodes the next access. It returns io.EOF at a clean end of trace.
func (tr *Reader) Read() (Access, error) {
	if !tr.header {
		if err := tr.readHeader(); err != nil {
			return Access{}, err
		}
	}
	var rec [binaryRecSize]byte
	if _, err := io.ReadFull(tr.r, rec[:]); err != nil {
		if err == io.EOF {
			return Access{}, io.EOF
		}
		return Access{}, fmt.Errorf("%w: truncated record: %v", ErrBadTrace, err)
	}
	a := Access{
		Addr: binary.LittleEndian.Uint64(rec[0:]),
		Size: binary.LittleEndian.Uint32(rec[8:]),
		Kind: Kind(rec[12]),
		CPU:  rec[13],
		Tick: binary.LittleEndian.Uint64(rec[14:]),
	}
	if a.Kind > FenceOp {
		return Access{}, fmt.Errorf("%w: bad kind %d", ErrBadTrace, rec[12])
	}
	return a, nil
}

// ReadAll decodes every remaining access.
func (tr *Reader) ReadAll() ([]Access, error) {
	var out []Access
	for {
		a, err := tr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, a)
	}
}

// WriteText renders accesses in the line-oriented text format, one access
// per line: "<K> <addr> <size> <cpu> <tick>".
func WriteText(w io.Writer, accs []Access) error {
	bw := bufio.NewWriter(w)
	for _, a := range accs {
		if _, err := fmt.Fprintf(bw, "%s %#x %d %d %d\n", a.Kind, a.Addr, a.Size, a.CPU, a.Tick); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseText parses the text trace format produced by WriteText. Blank lines
// and lines starting with '#' are ignored.
func ParseText(r io.Reader) ([]Access, error) {
	var out []Access
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var (
			kind string
			a    Access
		)
		n, err := fmt.Sscanf(line, "%s %v %d %d %d", &kind, &a.Addr, &a.Size, &a.CPU, &a.Tick)
		if err != nil || n != 5 {
			return nil, fmt.Errorf("%w: line %d: %q", ErrBadTrace, lineNo, line)
		}
		switch kind {
		case "L":
			a.Kind = Load
		case "S":
			a.Kind = Store
		case "F":
			a.Kind = FenceOp
		default:
			return nil, fmt.Errorf("%w: line %d: unknown kind %q", ErrBadTrace, lineNo, kind)
		}
		out = append(out, a)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
