package jobserv

import (
	"bytes"
	"context"
	"testing"
	"time"

	"hmccoal"
)

// These tests run the production executors (realExec) end to end: real
// simulations, real checkpoints, real Snapshot/Restore preemption. They pin
// the service's headline guarantee — results are byte-identical across any
// interruption history.

// waitDone waits for a terminal state and asserts it is done.
func waitDone(t *testing.T, d *Daemon, id string, timeout time.Duration) {
	t.Helper()
	v, ok := d.WaitJob(id, timeout)
	if !ok {
		t.Fatalf("job %s did not settle within %v (last: %+v)", id, timeout, v)
	}
	if v.State != StateDone {
		t.Fatalf("job %s ended %s (%s), want done", id, v.State, v.Error)
	}
}

// TestPreemptResumeEqualsUninterrupted preempts a real single-run job mid-
// simulation via Snapshot/Restore and pins that the resumed run's result
// bytes equal an uninterrupted run of the same spec.
func TestPreemptResumeEqualsUninterrupted(t *testing.T) {
	lowSpec := Spec{Kind: KindSingle, Bench: hmccoal.Benchmarks()[0], CPUs: 4, Ops: 3000, Seed: 11}
	highSpec := Spec{Kind: KindSingle, Bench: hmccoal.Benchmarks()[1], CPUs: 2, Ops: 60, Seed: 5}

	// Interrupted daemon: one slot, so the high-priority arrival preempts.
	d1 := newTestDaemon(t, Options{Slots: 1})
	low := mustSubmit(t, d1, "batch", 0, lowSpec)
	waitFor(t, d1, low, "running", func(v JobView) bool { return v.State == StateRunning })
	high := mustSubmit(t, d1, "urgent", 9, highSpec)

	waitFor(t, d1, low, "preempted", func(v JobView) bool { return v.Preemptions >= 1 })
	waitDone(t, d1, high, 60*time.Second)
	waitDone(t, d1, low, 120*time.Second)
	v, _ := d1.Get(low)
	if v.Attempts < 2 {
		t.Fatalf("low job attempts = %d, want ≥ 2 (one park, one resume)", v.Attempts)
	}
	interrupted, err := d1.Result(low)
	if err != nil {
		t.Fatalf("result: %v", err)
	}

	// Reference daemon: same spec, never interrupted.
	d2 := newTestDaemon(t, Options{Slots: 1})
	ref := mustSubmit(t, d2, "batch", 0, lowSpec)
	waitDone(t, d2, ref, 120*time.Second)
	uninterrupted, err := d2.Result(ref)
	if err != nil {
		t.Fatalf("reference result: %v", err)
	}

	if !bytes.Equal(interrupted, uninterrupted) {
		t.Fatalf("preempt+resume changed the result:\n%s\nvs uninterrupted:\n%s",
			interrupted, uninterrupted)
	}
}

// drainLoadSpecs is the mixed-kind campaign the drain test runs: one job of
// every kind in flight plus queued stragglers.
func drainLoadSpecs() []Spec {
	return []Spec{
		{Kind: KindSingle, Bench: hmccoal.Benchmarks()[0], CPUs: 4, Ops: 3000, Seed: 7},
		{Kind: KindSweep, Sweep: "timeout", Bench: hmccoal.Benchmarks()[0], CPUs: 2, Ops: 120, Timeouts: []uint64{16, 28}},
		{Kind: KindSoak, Seed: 9, Runs: 4},
		{Kind: KindSingle, Bench: hmccoal.Benchmarks()[1], CPUs: 2, Ops: 80},
		{Kind: KindSingle, Bench: hmccoal.Benchmarks()[2], CPUs: 2, Ops: 80},
	}
}

// TestDrainUnderLoad drains a daemon with a full queue and in-flight jobs
// of every kind, then has a fresh daemon adopt the ledger and finish the
// campaign with results byte-identical to a never-drained run.
func TestDrainUnderLoad(t *testing.T) {
	specs := drainLoadSpecs()
	dir := t.TempDir()

	d1, err := NewDaemon(Options{Dir: dir, Slots: 3, SweepWorkers: 2})
	if err != nil {
		t.Fatalf("NewDaemon: %v", err)
	}
	var ids []string
	for _, spec := range specs {
		id, err := d1.Submit("load", 0, spec)
		if err != nil {
			t.Fatalf("submit %+v: %v", spec, err)
		}
		ids = append(ids, id)
	}
	// Wait until all three slots are busy — single, sweep and soak all in
	// flight — then drain mid-execution.
	deadline := time.Now().Add(15 * time.Second)
	for d1.Status().Running < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("slots never filled: %+v", d1.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := d1.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	st := d1.Status()
	if st.Running != 0 {
		t.Fatalf("jobs still running after drain: %+v", st)
	}
	// A fast job may legally finish while the drain lands; everything else
	// must be parked or queued — never failed, canceled or lost.
	if st.Queued+st.Done != len(ids) || st.Failed != 0 || st.Canceled != 0 {
		t.Fatalf("drain lost jobs: %+v, want queued+done = %d", st, len(ids))
	}

	// A fresh daemon adopts the drained ledger and finishes everything.
	d2, err := NewDaemon(Options{Dir: dir, Slots: 3, SweepWorkers: 2})
	if err != nil {
		t.Fatalf("adopting daemon: %v", err)
	}
	t.Cleanup(func() { d2.Close() })
	for _, id := range ids {
		waitDone(t, d2, id, 180*time.Second)
	}

	// Reference: the same campaign, never drained.
	refDir := t.TempDir()
	d3, err := NewDaemon(Options{Dir: refDir, Slots: 3, SweepWorkers: 2})
	if err != nil {
		t.Fatalf("reference daemon: %v", err)
	}
	t.Cleanup(func() { d3.Close() })
	var refIDs []string
	for _, spec := range specs {
		id, err := d3.Submit("load", 0, spec)
		if err != nil {
			t.Fatalf("reference submit: %v", err)
		}
		refIDs = append(refIDs, id)
	}
	for i, id := range ids {
		waitDone(t, d3, refIDs[i], 180*time.Second)
		got, err := d2.Result(id)
		if err != nil {
			t.Fatalf("drained result %s: %v", id, err)
		}
		want, err := d3.Result(refIDs[i])
		if err != nil {
			t.Fatalf("reference result %s: %v", refIDs[i], err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("job %d (%s): drain+adopt changed the result\nafter drain: %.200s\nreference:   %.200s",
				i, specs[i].Kind, got, want)
		}
	}

	// The adopted ledger shows exactly one terminal record per job.
	counts := ledgerEventCounts(t, dir)
	for _, id := range ids {
		if terminal := counts[id][evDone] + counts[id][evFail] + counts[id][evCancel]; terminal != 1 {
			t.Fatalf("job %s has %d terminal records, want 1", id, terminal)
		}
	}
}

// TestFrontendJobsRunToDone runs the new front-end surface through the
// production executors: a warp/hetero single job and a stride sweep job
// both finish, and each reruns byte-identically on a fresh daemon.
func TestFrontendJobsRunToDone(t *testing.T) {
	specs := []Spec{
		{Kind: KindSingle, Bench: hmccoal.Benchmarks()[0], CPUs: 2, Ops: 120, Frontend: "warp", Sched: "hetero"},
		{Kind: KindSweep, Sweep: "stride", CPUs: 2, Ops: 100},
	}
	run := func(d *Daemon) [][]byte {
		var out [][]byte
		for _, spec := range specs {
			id := mustSubmit(t, d, "fe", 0, spec)
			waitDone(t, d, id, 120*time.Second)
			res, err := d.Result(id)
			if err != nil {
				t.Fatalf("result %+v: %v", spec, err)
			}
			out = append(out, res)
		}
		return out
	}
	a := run(newTestDaemon(t, Options{Slots: 1, SweepWorkers: 2}))
	b := run(newTestDaemon(t, Options{Slots: 1, SweepWorkers: 2}))
	for i := range specs {
		if !bytes.Equal(a[i], b[i]) {
			t.Errorf("spec %+v results differ across daemons", specs[i])
		}
	}
}
