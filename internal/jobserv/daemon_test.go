package jobserv

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hmccoal"
)

// ---- fake executor harness --------------------------------------------------

// execGate is a controllable fake executor: each job blocks until the test
// releases it (or its context is cancelled), then returns a deterministic
// result derived from its ID. It makes scheduling, preemption and recovery
// tests instant and fully deterministic.
type execGate struct {
	mu      sync.Mutex
	gates   map[string]chan struct{}
	started chan string
}

func newExecGate() *execGate {
	return &execGate{gates: make(map[string]chan struct{}), started: make(chan string, 1024)}
}

func (g *execGate) gate(id string) chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	ch, ok := g.gates[id]
	if !ok {
		ch = make(chan struct{})
		g.gates[id] = ch
	}
	return ch
}

func (g *execGate) exec(ctl execCtl, id string, spec Spec) execOutcome {
	ch := g.gate(id)
	g.started <- id
	select {
	case <-ch:
		return execOutcome{result: fakeResult(id)}
	case <-ctl.ctx.Done():
		return execOutcome{err: context.Cause(ctl.ctx)}
	}
}

// release lets the job (started or not) run to completion.
func (g *execGate) release(id string) {
	ch := g.gate(id)
	select {
	case <-ch:
	default:
		close(ch)
	}
}

func (g *execGate) waitStarted(t *testing.T) string {
	t.Helper()
	select {
	case id := <-g.started:
		return id
	case <-time.After(10 * time.Second):
		t.Fatal("no job started within 10s")
		return ""
	}
}

func fakeResult(id string) []byte {
	return []byte(fmt.Sprintf(`{"job":%q,"ok":true}`, id))
}

// instantExec completes immediately with the deterministic fake result.
func instantExec(ctl execCtl, id string, spec Spec) execOutcome {
	return execOutcome{result: fakeResult(id)}
}

func singleSpec() Spec {
	return Spec{Kind: KindSingle, Bench: hmccoal.Benchmarks()[0], Ops: 40}
}

func newTestDaemon(t *testing.T, opt Options) *Daemon {
	t.Helper()
	if opt.Dir == "" {
		opt.Dir = t.TempDir()
	}
	d, err := NewDaemon(opt)
	if err != nil {
		t.Fatalf("NewDaemon: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func mustSubmit(t *testing.T, d *Daemon, tenant string, pri int, spec Spec) string {
	t.Helper()
	id, err := d.Submit(tenant, pri, spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	return id
}

// waitFor polls the job view until ok accepts it.
func waitFor(t *testing.T, d *Daemon, id string, what string, ok func(JobView) bool) JobView {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		v, found := d.Get(id)
		if found && ok(v) {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s (last: %+v)", id, what, v)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func wantAdmitCode(t *testing.T, err error, code string) *AdmitError {
	t.Helper()
	var aerr *AdmitError
	if !errors.As(err, &aerr) {
		t.Fatalf("error %v is not an *AdmitError", err)
	}
	if aerr.Code != code {
		t.Fatalf("admit code = %q, want %q (%v)", aerr.Code, code, aerr)
	}
	return aerr
}

// ---- admission --------------------------------------------------------------

func TestSubmitValidation(t *testing.T) {
	d := newTestDaemon(t, Options{exec: instantExec})
	if _, err := d.Submit("", 0, singleSpec()); err == nil {
		t.Fatal("empty tenant admitted")
	} else {
		wantAdmitCode(t, err, CodeBadSpec)
	}
	bad := []Spec{
		{Kind: "mystery"},
		{Kind: KindSingle, Bench: "no-such-bench"},
		{Kind: KindSweep, Sweep: "no-such-sweep"},
		{Kind: KindSweep, Sweep: "timeout", Bench: "no-such-bench"},
		{Kind: KindSoak},
		{Kind: KindSingle, Bench: hmccoal.Benchmarks()[0], Ops: -1},
		{Kind: KindSingle, Bench: hmccoal.Benchmarks()[0], Backend: "no-such-backend"},
		{Kind: KindSingle, Bench: hmccoal.Benchmarks()[0], Frontend: "no-such-frontend"},
		{Kind: KindSingle, Bench: hmccoal.Benchmarks()[0], Sched: "no-such-sched"},
		{Kind: KindSweep, Sweep: "stride", Frontend: "no-such-frontend"},
	}
	for _, spec := range bad {
		if _, err := d.Submit("t", 0, spec); err == nil {
			t.Fatalf("bad spec admitted: %+v", spec)
		} else {
			wantAdmitCode(t, err, CodeBadSpec)
		}
	}
}

func TestTenantQueueQuota(t *testing.T) {
	g := newExecGate()
	d := newTestDaemon(t, Options{
		Slots: 1,
		Quota: Quota{MaxQueued: 2},
		exec:  g.exec,
	})
	// Tenant a: one job runs, two queue; the fourth trips the quota.
	a1 := mustSubmit(t, d, "a", 0, singleSpec())
	g.waitStarted(t)
	a2 := mustSubmit(t, d, "a", 0, singleSpec())
	a3 := mustSubmit(t, d, "a", 0, singleSpec())
	_, err := d.Submit("a", 0, singleSpec())
	aerr := wantAdmitCode(t, err, CodeTenantQueue)
	if aerr.Tenant != "a" {
		t.Fatalf("refusal names tenant %q, want a", aerr.Tenant)
	}
	// Tenant b is unaffected: quotas isolate tenants.
	b1 := mustSubmit(t, d, "b", 0, singleSpec())

	for _, id := range []string{a1, a2, a3, b1} {
		g.release(id)
	}
	for _, id := range []string{a1, a2, a3, b1} {
		waitFor(t, d, id, "done", func(v JobView) bool { return v.State == StateDone })
	}
}

func TestGlobalQueueFull(t *testing.T) {
	g := newExecGate()
	d := newTestDaemon(t, Options{Slots: 1, MaxQueue: 2, exec: g.exec})
	ids := []string{
		mustSubmit(t, d, "a", 0, singleSpec()), // runs
		mustSubmit(t, d, "b", 0, singleSpec()), // queued
		mustSubmit(t, d, "c", 0, singleSpec()), // queued
	}
	g.waitStarted(t)
	if _, err := d.Submit("d", 0, singleSpec()); err == nil {
		t.Fatal("submit over the global cap admitted")
	} else {
		wantAdmitCode(t, err, CodeQueueFull)
	}
	for _, id := range ids {
		g.release(id)
	}
}

func TestRateLimit(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	d := newTestDaemon(t, Options{
		exec:  instantExec,
		Quota: Quota{Rate: 1, Burst: 2},
		now:   clock,
	})
	mustSubmit(t, d, "a", 0, singleSpec())
	mustSubmit(t, d, "a", 0, singleSpec())
	_, err := d.Submit("a", 0, singleSpec())
	aerr := wantAdmitCode(t, err, CodeRateLimited)
	if aerr.RetryAfterMs <= 0 || aerr.RetryAfterMs > 1000 {
		t.Fatalf("RetryAfterMs = %d, want in (0, 1000]", aerr.RetryAfterMs)
	}
	// Another tenant has its own bucket.
	mustSubmit(t, d, "b", 0, singleSpec())
	// Waiting the hinted time refills exactly one token.
	now = now.Add(time.Duration(aerr.RetryAfterMs) * time.Millisecond)
	mustSubmit(t, d, "a", 0, singleSpec())
	if _, err := d.Submit("a", 0, singleSpec()); err == nil {
		t.Fatal("bucket refilled more than Rate allows")
	}
}

func TestMaxRunningFairness(t *testing.T) {
	g := newExecGate()
	d := newTestDaemon(t, Options{
		Slots: 2,
		Quota: Quota{MaxRunning: 1},
		exec:  g.exec,
	})
	a1 := mustSubmit(t, d, "a", 0, singleSpec())
	a2 := mustSubmit(t, d, "a", 0, singleSpec())
	b1 := mustSubmit(t, d, "b", 0, singleSpec())
	// Despite a2 being admitted first, b1 takes the second slot: tenant a
	// is at its running quota.
	first, second := g.waitStarted(t), g.waitStarted(t)
	if !(first == a1 && second == b1) && !(first == b1 && second == a1) {
		t.Fatalf("started %s, %s; want %s and %s", first, second, a1, b1)
	}
	g.release(a1)
	if got := g.waitStarted(t); got != a2 {
		t.Fatalf("after a1 finished, started %s, want %s", got, a2)
	}
	g.release(a2)
	g.release(b1)
	waitFor(t, d, a2, "done", func(v JobView) bool { return v.State == StateDone })
}

func TestDrainingRefusesSubmits(t *testing.T) {
	d := newTestDaemon(t, Options{exec: instantExec})
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, err := d.Submit("a", 0, singleSpec())
	wantAdmitCode(t, err, CodeDraining)
}

// ---- preemption and watchdog ------------------------------------------------

func TestPreemptionParksAndResumes(t *testing.T) {
	g := newExecGate()
	d := newTestDaemon(t, Options{Slots: 1, exec: g.exec})
	low := mustSubmit(t, d, "a", 0, singleSpec())
	if got := g.waitStarted(t); got != low {
		t.Fatalf("started %s, want %s", got, low)
	}
	high := mustSubmit(t, d, "b", 5, singleSpec())
	// The low job parks at its next cancellation check, the high job takes
	// the slot.
	waitFor(t, d, low, "parked", func(v JobView) bool { return v.State == StateParked })
	if got := g.waitStarted(t); got != high {
		t.Fatalf("started %s after park, want %s", got, high)
	}
	g.release(high)
	waitFor(t, d, high, "done", func(v JobView) bool { return v.State == StateDone })
	// The parked job resumes once the slot frees.
	if got := g.waitStarted(t); got != low {
		t.Fatalf("resumed %s, want %s", got, low)
	}
	g.release(low)
	v := waitFor(t, d, low, "done", func(v JobView) bool { return v.State == StateDone })
	if v.Preemptions != 1 || v.Attempts != 2 {
		t.Fatalf("low job: preemptions=%d attempts=%d, want 1 and 2", v.Preemptions, v.Attempts)
	}
}

func TestNoPreemptionWithinPriority(t *testing.T) {
	g := newExecGate()
	d := newTestDaemon(t, Options{Slots: 1, exec: g.exec})
	j1 := mustSubmit(t, d, "a", 3, singleSpec())
	g.waitStarted(t)
	j2 := mustSubmit(t, d, "b", 3, singleSpec())
	time.Sleep(20 * time.Millisecond)
	if v, _ := d.Get(j1); v.State != StateRunning {
		t.Fatalf("equal-priority arrival preempted the running job (state %s)", v.State)
	}
	if v, _ := d.Get(j2); v.State != StateQueued {
		t.Fatalf("equal-priority arrival should queue, is %s", v.State)
	}
	g.release(j1)
	g.release(j2)
}

func TestWatchdogFailsHungJob(t *testing.T) {
	g := newExecGate() // never released: the job hangs until the watchdog fires
	d := newTestDaemon(t, Options{Slots: 1, JobTimeout: 30 * time.Millisecond, exec: g.exec})
	id := mustSubmit(t, d, "a", 0, singleSpec())
	v := waitFor(t, d, id, "failed", func(v JobView) bool { return v.State == StateFailed })
	if !strings.Contains(v.Error, "watchdog") {
		t.Fatalf("failure %q does not name the watchdog", v.Error)
	}
	// The slot is free again: the next job runs.
	next := mustSubmit(t, d, "a", 0, singleSpec())
	g.waitStarted(t) // the hung job's start
	g.release(next)
	waitFor(t, d, next, "done", func(v JobView) bool { return v.State == StateDone })
}

func TestCancelQueuedAndRunning(t *testing.T) {
	g := newExecGate()
	d := newTestDaemon(t, Options{Slots: 1, exec: g.exec})
	running := mustSubmit(t, d, "a", 0, singleSpec())
	g.waitStarted(t)
	queued := mustSubmit(t, d, "a", 0, singleSpec())

	if err := d.Cancel(queued); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	waitFor(t, d, queued, "canceled", func(v JobView) bool { return v.State == StateCanceled })
	if err := d.Cancel(running); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	waitFor(t, d, running, "canceled", func(v JobView) bool { return v.State == StateCanceled })
	if err := d.Cancel(running); err == nil {
		t.Fatal("cancelling a terminal job succeeded")
	}
	if _, err := d.Result(running); err == nil {
		t.Fatal("result of a canceled job readable")
	}
}

// ---- crash recovery ---------------------------------------------------------

// copyDir clones a quiescent state directory — the in-package stand-in for
// a SIGKILL'd process image (the real-kill e2e lives in cmd/hmcservd).
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copy state dir: %v", err)
	}
}

// ledgerEventCounts tallies events per (id, type) from a ledger file.
func ledgerEventCounts(t *testing.T, dir string) map[string]map[string]int {
	t.Helper()
	evs, err := replayLedger(filepath.Join(dir, "ledger.jsonl"))
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	counts := make(map[string]map[string]int)
	for _, ev := range evs {
		if counts[ev.ID] == nil {
			counts[ev.ID] = make(map[string]int)
		}
		counts[ev.ID][ev.Type]++
	}
	return counts
}

func TestCrashRecoveryAdoptsLedger(t *testing.T) {
	dir := t.TempDir()
	g := newExecGate()
	d1 := newTestDaemon(t, Options{Dir: dir, Slots: 2, exec: g.exec})

	var ids []string
	for i := 0; i < 5; i++ {
		ids = append(ids, mustSubmit(t, d1, fmt.Sprintf("t%d", i%2), i%3, singleSpec()))
	}
	g.waitStarted(t)
	g.waitStarted(t)

	// The ledger is quiescent (submits and starts are appended
	// synchronously; both running jobs are blocked in the gate), so the
	// directory copy is byte-for-byte the state a SIGKILL would leave.
	crashImage := t.TempDir()
	copyDir(t, dir, crashImage)

	// A fresh daemon adopts the crash image: the two jobs that were
	// "running" at the kill restart, the queued three start, all complete.
	d2 := newTestDaemon(t, Options{Dir: crashImage, Slots: 2, exec: instantExec})
	for _, id := range ids {
		v, done := d2.WaitJob(id, 10*time.Second)
		if !done || v.State != StateDone {
			t.Fatalf("job %s after recovery: %+v (done=%v)", id, v, done)
		}
		raw, err := d2.Result(id)
		if err != nil {
			t.Fatalf("result %s: %v", id, err)
		}
		if string(raw) != string(fakeResult(id)) {
			t.Fatalf("job %s result %q, want %q", id, raw, fakeResult(id))
		}
	}

	// Exactly-once accounting: one submit and one terminal record per job,
	// no duplicates, no lost jobs.
	if err := d2.Close(); err != nil {
		t.Fatalf("close recovered daemon: %v", err)
	}
	counts := ledgerEventCounts(t, crashImage)
	if len(counts) != len(ids) {
		t.Fatalf("ledger names %d jobs, want %d", len(counts), len(ids))
	}
	for _, id := range ids {
		c := counts[id]
		if c[evSubmit] != 1 {
			t.Fatalf("job %s has %d submit records, want 1", id, c[evSubmit])
		}
		if terminal := c[evDone] + c[evFail] + c[evCancel]; terminal != 1 {
			t.Fatalf("job %s has %d terminal records, want exactly 1 (%v)", id, terminal, c)
		}
	}

	// Jobs that were running at the "crash" show a second attempt.
	started := map[string]bool{}
	for len(g.started) > 0 {
		started[<-g.started] = true
	}
	for _, id := range ids {
		g.release(id) // unblock d1 so Close is clean
	}
}

func TestRecoveredDoneJobsAreNotRerun(t *testing.T) {
	dir := t.TempDir()
	d1 := newTestDaemon(t, Options{Dir: dir, exec: instantExec})
	id := mustSubmit(t, d1, "a", 0, singleSpec())
	d1.WaitJob(id, 10*time.Second)
	if err := d1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Poison the executor: a re-run would fail the test.
	boom := func(ctl execCtl, id string, spec Spec) execOutcome {
		t.Errorf("completed job %s was re-run after recovery", id)
		return execOutcome{err: errors.New("re-run")}
	}
	d2 := newTestDaemon(t, Options{Dir: dir, exec: boom})
	v, ok := d2.Get(id)
	if !ok || v.State != StateDone {
		t.Fatalf("recovered job: %+v (ok=%v), want done", v, ok)
	}
	raw, err := d2.Result(id)
	if err != nil || string(raw) != string(fakeResult(id)) {
		t.Fatalf("recovered result = %q, %v", raw, err)
	}
}

func TestLedgerTornLineRecovery(t *testing.T) {
	dir := t.TempDir()
	d1 := newTestDaemon(t, Options{Dir: dir, exec: instantExec})
	id := mustSubmit(t, d1, "a", 0, singleSpec())
	d1.WaitJob(id, 10*time.Second)
	if err := d1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Simulate a crash mid-append: a torn trailing half-line.
	path := filepath.Join(dir, "ledger.jsonl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"submit","id":"j-9`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d2 := newTestDaemon(t, Options{Dir: dir, exec: instantExec})
	if v, ok := d2.Get(id); !ok || v.State != StateDone {
		t.Fatalf("job after torn-line recovery: %+v (ok=%v)", v, ok)
	}
	if n := len(d2.List("")); n != 1 {
		t.Fatalf("torn line materialized a job: %d jobs, want 1", n)
	}
}
