package jobserv

import (
	"fmt"
	"time"
)

// Quota is the per-tenant admission policy. Zero fields are unlimited, so
// the zero Quota admits everything — quotas are opt-in per deployment.
type Quota struct {
	// MaxQueued caps a tenant's jobs waiting for a slot (queued+parked).
	MaxQueued int
	// MaxRunning caps a tenant's concurrently executing jobs; further
	// jobs stay queued even when slots are free, so one tenant cannot
	// monopolize the pool.
	MaxRunning int
	// Rate refills the tenant's submit token bucket (submits/second).
	Rate float64
	// Burst is the bucket capacity (0 with Rate > 0 means 1).
	Burst int
}

func (q Quota) burst() float64 {
	if q.Burst <= 0 {
		return 1
	}
	return float64(q.Burst)
}

// tenant is one tenant's live accounting. Guarded by the daemon mutex.
type tenant struct {
	queued  int // jobs in StateQueued or StateParked
	running int
	tokens  float64
	last    time.Time
	primed  bool // tokens initialized to a full bucket on first sight
}

// TenantStatus is a tenant's row in the daemon status snapshot.
type TenantStatus struct {
	Queued  int `json:"queued"`
	Running int `json:"running"`
}

// admit applies the tenant-level policy to one submission at time now,
// debiting a rate token on success. It does not check the global queue
// cap — that is the daemon's, not the tenant's.
func (tn *tenant) admit(q Quota, tenantName string, now time.Time) *AdmitError {
	if q.MaxQueued > 0 && tn.queued >= q.MaxQueued {
		return &AdmitError{
			Code:    CodeTenantQueue,
			Message: fmt.Sprintf("%d jobs queued, quota is %d", tn.queued, q.MaxQueued),
			Tenant:  tenantName,
		}
	}
	if q.Rate > 0 {
		if !tn.primed {
			tn.tokens, tn.last, tn.primed = q.burst(), now, true
		}
		tn.tokens += now.Sub(tn.last).Seconds() * q.Rate
		tn.last = now
		if cap := q.burst(); tn.tokens > cap {
			tn.tokens = cap
		}
		if tn.tokens < 1 {
			wait := time.Duration((1 - tn.tokens) / q.Rate * float64(time.Second))
			return &AdmitError{
				Code:         CodeRateLimited,
				Message:      fmt.Sprintf("submit rate %.3g/s exceeded", q.Rate),
				Tenant:       tenantName,
				RetryAfterMs: retryAfterMs(wait),
			}
		}
		tn.tokens--
	}
	return nil
}

// popLocked removes and returns the best schedulable pending job: highest
// priority first, admission order within a priority, skipping tenants at
// their max-running quota. Returns nil when nothing is schedulable.
// Caller holds d.mu.
func (d *Daemon) popLocked() *Job {
	best := -1
	for i, j := range d.pending {
		if q := d.opt.Quota.MaxRunning; q > 0 && d.tenantLocked(j.Tenant).running >= q {
			continue
		}
		if best < 0 || j.Priority > d.pending[best].Priority ||
			(j.Priority == d.pending[best].Priority && j.order < d.pending[best].order) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	j := d.pending[best]
	d.pending = append(d.pending[:best], d.pending[best+1:]...)
	return j
}

// bestPendingLocked peeks the job popLocked would return.
func (d *Daemon) bestPendingLocked() *Job {
	var best *Job
	for _, j := range d.pending {
		if q := d.opt.Quota.MaxRunning; q > 0 && d.tenantLocked(j.Tenant).running >= q {
			continue
		}
		if best == nil || j.Priority > best.Priority ||
			(j.Priority == best.Priority && j.order < best.order) {
			best = j
		}
	}
	return best
}

// removePendingLocked drops j from the pending queue if present.
func (d *Daemon) removePendingLocked(j *Job) {
	for i, q := range d.pending {
		if q == j {
			d.pending = append(d.pending[:i], d.pending[i+1:]...)
			return
		}
	}
}

// tenantLocked returns (creating) the tenant record.
func (d *Daemon) tenantLocked(name string) *tenant {
	tn := d.tenants[name]
	if tn == nil {
		tn = &tenant{}
		d.tenants[name] = tn
	}
	return tn
}
