package jobserv

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// The job ledger is an append-only JSONL file holding every job state
// transition. Appends are fsync'd before the daemon acts on the
// transition, so the ledger is always at least as current as any
// observable effect — a SIGKILL'd daemon restarts into a queue that is a
// prefix of the truth, never ahead of it. The file is created through a
// temp-file/rename/dir-sync dance so a crash during creation leaves
// either no ledger or a complete empty one, and a torn final line (crash
// mid-append) is skipped on replay exactly like the sweep layer's
// checkpoints.

// Ledger event types, in lifecycle order.
const (
	evSubmit = "submit"
	evStart  = "start"  // also emitted on a crash-recovery re-run
	evPark   = "park"   // preemption or drain interrupted the job
	evResume = "resume" // a parked job got a slot back
	evDone   = "done"   // the result file exists before this is appended
	evFail   = "fail"
	evCancel = "cancel"
)

// event is one ledger line.
type event struct {
	Type     string `json:"type"`
	ID       string `json:"id"`
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`
	Spec     *Spec  `json:"spec,omitempty"` // submit only
	Error    string `json:"error,omitempty"`
}

// ledger is the fsync'd appender. Safe for concurrent use.
type ledger struct {
	mu sync.Mutex
	f  *os.File
}

// openLedger opens (creating atomically if needed) the ledger at path.
func openLedger(path string) (*ledger, error) {
	f, err := openDurableAppend(path)
	if err != nil {
		return nil, fmt.Errorf("jobserv: ledger: %w", err)
	}
	return &ledger{f: f}, nil
}

// append encodes one event, writes it and fsyncs before returning, so a
// caller that proceeds past append knows the transition is durable.
func (l *ledger) append(ev event) error {
	line, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("jobserv: ledger encode: %w", err)
	}
	line = append(line, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Write(line); err != nil {
		return fmt.Errorf("jobserv: ledger append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("jobserv: ledger sync: %w", err)
	}
	return nil
}

func (l *ledger) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// replayLedger reads every decodable event from path, in order. Unparsable
// lines are skipped: the only way one arises from this code is a write
// torn by a crash, and the fsync-before-act discipline guarantees nothing
// observable depended on a torn line.
func replayLedger(path string) ([]event, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("jobserv: ledger replay: %w", err)
	}
	defer f.Close()
	var evs []event
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		var ev event
		if json.Unmarshal(sc.Bytes(), &ev) != nil || ev.Type == "" || ev.ID == "" {
			continue // torn or foreign line
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("jobserv: ledger replay: %w", err)
	}
	return evs, nil
}

// openDurableAppend opens path for appending, creating a missing file via
// temp-file + atomic rename + directory fsync, so a crash during creation
// never leaves a half-created file under the final name.
func openDurableAppend(path string) (*os.File, error) {
	if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
		dir := filepath.Dir(path)
		tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
		if err != nil {
			return nil, err
		}
		tmpName := tmp.Name()
		if err := tmp.Close(); err != nil {
			os.Remove(tmpName)
			return nil, err
		}
		if err := os.Rename(tmpName, path); err != nil {
			os.Remove(tmpName)
			return nil, err
		}
		syncDir(dir)
	}
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
// Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// writeFileAtomic writes data under path via temp-file + fsync + rename +
// dir fsync: readers see the old content or the complete new content,
// never a torn file. Result files go through this BEFORE their "done"
// ledger record, so a done record always implies a complete result.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	syncDir(dir)
	return nil
}

// readAll is a small helper for result fetches.
func readAll(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}
