package jobserv

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLoadManyTenants is the CI load smoke: many tenants hammer the daemon
// concurrently with thousands of jobs under active quotas. Quota refusals
// must be structured (never panics, hangs or silent drops), every admitted
// job must reach exactly one terminal state, and the ledger must account
// for every admitted job exactly once. Run with -race in CI.
//
// Phase 1 proves quota enforcement deterministically: with the executor
// held, one tenant fills its MaxRunning slots and MaxQueued queue, so its
// next submit MUST come back tenant_queue_quota. Phase 2 releases the
// executor and runs the full concurrent campaign, absorbing any further
// backpressure through the structured retry hints.
func TestLoadManyTenants(t *testing.T) {
	const (
		tenants    = 8
		perTenant  = 250 // 2000 jobs total
		maxQueued  = 96
		maxRunning = 4
	)
	dir := t.TempDir()

	var hold atomic.Bool
	gate := make(chan struct{})
	exec := func(ctl execCtl, id string, spec Spec) execOutcome {
		if hold.Load() {
			<-gate
		}
		return execOutcome{result: fakeResult(id)}
	}
	d, err := NewDaemon(Options{
		Dir:      dir,
		Slots:    8,
		MaxQueue: 512,
		Quota:    Quota{MaxQueued: maxQueued, MaxRunning: maxRunning},
		exec:     exec,
	})
	if err != nil {
		t.Fatalf("NewDaemon: %v", err)
	}

	// Phase 1: deterministic pushback. tenant-0's first maxRunning submits
	// occupy its running quota (the executor is held), the next maxQueued
	// fill its queue, and the one after that must be refused.
	hold.Store(true)
	var admitted []string
	for i := 0; i < maxRunning+maxQueued; i++ {
		admitted = append(admitted, mustSubmit(t, d, "tenant-0", 0, singleSpec()))
	}
	_, err = d.Submit("tenant-0", 0, singleSpec())
	wantAdmitCode(t, err, CodeTenantQueue)
	refused := int64(1)

	// Phase 2: release the executor and run the concurrent campaign.
	hold.Store(false)
	close(gate)
	var (
		mu         sync.Mutex
		refusedCnt atomic.Int64
	)
	var wg sync.WaitGroup
	for ti := 0; ti < tenants; ti++ {
		head := 0
		if ti == 0 {
			head = len(admitted) // phase 1 already admitted these
		}
		wg.Add(1)
		go func(tenant string, remaining int) {
			defer wg.Done()
			for i := 0; i < remaining; i++ {
				for {
					id, err := d.Submit(tenant, i%3, singleSpec())
					if err == nil {
						mu.Lock()
						admitted = append(admitted, id)
						mu.Unlock()
						break
					}
					var aerr *AdmitError
					if !errors.As(err, &aerr) {
						t.Errorf("tenant %s: unstructured refusal: %v", tenant, err)
						return
					}
					// Structured backpressure: honor the hint and retry.
					refusedCnt.Add(1)
					wait := time.Duration(aerr.RetryAfterMs) * time.Millisecond
					if wait <= 0 {
						wait = time.Millisecond
					}
					time.Sleep(wait)
				}
			}
		}(fmt.Sprintf("tenant-%d", ti), perTenant-head)
	}
	wg.Wait()
	refused += refusedCnt.Load()

	if len(admitted) != tenants*perTenant {
		t.Fatalf("admitted %d jobs, want %d", len(admitted), tenants*perTenant)
	}
	for _, id := range admitted {
		v, ok := d.WaitJob(id, 30*time.Second)
		if !ok || v.State != StateDone {
			t.Fatalf("job %s: %+v (settled=%v)", id, v, ok)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Exactly-once ledger accounting for every admitted job.
	counts := ledgerEventCounts(t, dir)
	if len(counts) != len(admitted) {
		t.Fatalf("ledger names %d jobs, want %d", len(counts), len(admitted))
	}
	for _, id := range admitted {
		c := counts[id]
		if c[evSubmit] != 1 {
			t.Fatalf("job %s: %d submit records", id, c[evSubmit])
		}
		if terminal := c[evDone] + c[evFail] + c[evCancel]; terminal != 1 {
			t.Fatalf("job %s: %d terminal records (%v)", id, terminal, c)
		}
	}
	t.Logf("load: %d jobs admitted, %d structured refusals absorbed", len(admitted), refused)
}
