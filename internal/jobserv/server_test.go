package jobserv

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hmccoal"
)

func startServer(t *testing.T, opt Options) (*httptest.Server, *Daemon) {
	t.Helper()
	d := newTestDaemon(t, opt)
	srv := httptest.NewServer(NewServer(d))
	t.Cleanup(srv.Close)
	return srv, d
}

func postJob(t *testing.T, srv *httptest.Server, tenant string, pri int, spec Spec) *http.Response {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"tenant": tenant, "priority": pri, "spec": spec})
	resp, err := http.Post(srv.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	return resp
}

func decodeJSON[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return v
}

func TestHTTPSubmitPollResult(t *testing.T) {
	srv, _ := startServer(t, Options{exec: instantExec})

	resp := postJob(t, srv, "web", 2, singleSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	id := decodeJSON[map[string]string](t, resp)["id"]
	if id == "" {
		t.Fatal("submit returned no job id")
	}

	// Long-poll until terminal.
	resp, err := http.Get(srv.URL + "/api/v1/jobs/" + id + "/wait?timeout=10s")
	if err != nil {
		t.Fatalf("GET wait: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait status = %d, want 200", resp.StatusCode)
	}
	v := decodeJSON[JobView](t, resp)
	if v.State != StateDone || v.Tenant != "web" || v.Priority != 2 || v.Kind != KindSingle {
		t.Fatalf("wait view = %+v", v)
	}

	// Poll and list agree.
	resp, _ = http.Get(srv.URL + "/api/v1/jobs/" + id)
	if got := decodeJSON[JobView](t, resp); got.State != StateDone {
		t.Fatalf("poll view = %+v", got)
	}
	resp, _ = http.Get(srv.URL + "/api/v1/jobs?tenant=web")
	if got := decodeJSON[[]JobView](t, resp); len(got) != 1 || got[0].ID != id {
		t.Fatalf("list = %+v", got)
	}
	resp, _ = http.Get(srv.URL + "/api/v1/jobs?tenant=other")
	if got := decodeJSON[[]JobView](t, resp); len(got) != 0 {
		t.Fatalf("foreign-tenant list = %+v", got)
	}

	// The result document round-trips.
	resp, err = http.Get(srv.URL + "/api/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d, want 200", resp.StatusCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if buf.String() != string(fakeResult(id)) {
		t.Fatalf("result = %q, want %q", buf.String(), fakeResult(id))
	}

	// Status reflects the finished job.
	resp, _ = http.Get(srv.URL + "/api/v1/status")
	if st := decodeJSON[DaemonStatus](t, resp); st.Done != 1 {
		t.Fatalf("status = %+v, want Done 1", st)
	}
}

func TestHTTPAdmissionErrors(t *testing.T) {
	now := time.Unix(2000, 0)
	srv, _ := startServer(t, Options{
		exec:  instantExec,
		Quota: Quota{Rate: 0.5, Burst: 1},
		now:   func() time.Time { return now },
	})

	// Bad spec: structured 400.
	resp := postJob(t, srv, "web", 0, Spec{Kind: "mystery"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec status = %d, want 400", resp.StatusCode)
	}
	e := decodeJSON[map[string]*AdmitError](t, resp)["error"]
	if e == nil || e.Code != CodeBadSpec {
		t.Fatalf("bad spec error = %+v", e)
	}

	// Rate limit: structured 429 with a Retry-After header.
	resp = postJob(t, srv, "web", 0, singleSpec())
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status = %d", resp.StatusCode)
	}
	resp = postJob(t, srv, "web", 0, singleSpec())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rate-limited status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 carries no Retry-After header")
	}
	e = decodeJSON[map[string]*AdmitError](t, resp)["error"]
	if e == nil || e.Code != CodeRateLimited || e.RetryAfterMs <= 0 || e.Tenant != "web" {
		t.Fatalf("rate-limit error = %+v", e)
	}

	// Malformed body: 400, not a panic or a 500.
	resp, err := http.Post(srv.URL+"/api/v1/jobs", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status = %d, want 400", resp.StatusCode)
	}
}

func TestHTTPCancelAndMissing(t *testing.T) {
	g := newExecGate()
	srv, _ := startServer(t, Options{Slots: 1, exec: g.exec})

	resp := postJob(t, srv, "web", 0, singleSpec())
	running := decodeJSON[map[string]string](t, resp)["id"]
	g.waitStarted(t)
	resp = postJob(t, srv, "web", 0, singleSpec())
	queued := decodeJSON[map[string]string](t, resp)["id"]

	del := func(id string) *http.Response {
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/api/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("DELETE: %v", err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := del(queued); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("cancel queued status = %d, want 204", resp.StatusCode)
	}
	if resp := del(queued); resp.StatusCode != http.StatusConflict {
		t.Fatalf("double cancel status = %d, want 409", resp.StatusCode)
	}
	if resp := del("j-999999"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel missing status = %d, want 409", resp.StatusCode)
	}

	for _, path := range []string{"/api/v1/jobs/j-999999", "/api/v1/jobs/j-999999/result"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s status = %d, want 404", path, resp.StatusCode)
		}
	}
	g.release(running)
}

func TestHTTPWaitTimeout(t *testing.T) {
	g := newExecGate()
	srv, _ := startServer(t, Options{Slots: 1, exec: g.exec})
	resp := postJob(t, srv, "web", 0, singleSpec())
	id := decodeJSON[map[string]string](t, resp)["id"]
	g.waitStarted(t)

	// A wait that expires returns 202 with the live view: poll again.
	resp, err := http.Get(srv.URL + "/api/v1/jobs/" + id + "/wait?timeout=50ms")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("expired wait status = %d, want 202", resp.StatusCode)
	}
	if v := decodeJSON[JobView](t, resp); v.State != StateRunning {
		t.Fatalf("expired wait view = %+v", v)
	}
	g.release(id)
}

// TestHTTPRealSingleRun drives one real simulation through the full HTTP
// surface, proving the service wires the paper pipeline end to end.
func TestHTTPRealSingleRun(t *testing.T) {
	srv, _ := startServer(t, Options{Slots: 1})
	resp := postJob(t, srv, "web", 0, Spec{Kind: KindSingle, Bench: hmccoal.Benchmarks()[0], CPUs: 2, Ops: 80})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	id := decodeJSON[map[string]string](t, resp)["id"]
	resp, err := http.Get(srv.URL + "/api/v1/jobs/" + id + "/wait?timeout=60s")
	if err != nil {
		t.Fatal(err)
	}
	if v := decodeJSON[JobView](t, resp); v.State != StateDone {
		t.Fatalf("real run ended %+v", v)
	}
	resp, err = http.Get(srv.URL + "/api/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("result decode: %v", err)
	}
	resp.Body.Close()
	if doc["kind"] != string(KindSingle) || doc["summary"] == nil {
		t.Fatalf("result doc = %v", doc)
	}
	if _, ok := doc["summary"].(string); !ok || doc["summary"] == "" {
		t.Fatalf("summary missing from %v", doc)
	}
}
