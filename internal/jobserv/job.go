// Package jobserv is the survivable simulation job service: a multi-tenant
// daemon that admits simulation jobs over HTTP, schedules them onto a
// bounded slot pool with per-tenant quotas and priority preemption, and
// records every state transition in an fsync'd JSONL ledger so a crashed
// or drained daemon restarts into exactly the queue it left behind.
//
// Durability is layered, not monolithic. The ledger is the source of
// truth for job lifecycle (submitted → started → parked/resumed →
// done/failed/canceled); sweep and soak jobs additionally persist their
// completed work in the sweep layer's JSONL checkpoints, so a job that
// restarts after a crash recomputes only its unfinished groups and still
// produces byte-identical results. Single-run jobs are preempted through
// the simulator's in-memory Snapshot/Restore — zero recompute while the
// daemon lives — and re-run deterministically from scratch after a crash,
// which yields the same bytes by the simulator's core determinism
// contract.
package jobserv

import (
	"fmt"
	"net/http"
	"time"

	"hmccoal"
)

// Kind enumerates the job types the daemon executes.
type Kind string

const (
	// KindSingle runs one benchmark once (two-phase coalescer) and
	// returns its Result summary.
	KindSingle Kind = "single"
	// KindSweep runs one of the evaluation sweep grids and returns its
	// rows and rendered figure table.
	KindSweep Kind = "sweep"
	// KindSoak runs a seeded chaos campaign and returns its Report.
	KindSoak Kind = "soak"
)

// State is a job's position in its lifecycle.
type State string

const (
	// StateQueued: admitted, waiting for a slot.
	StateQueued State = "queued"
	// StateRunning: executing on a slot.
	StateRunning State = "running"
	// StateParked: preempted or drained mid-run; waiting to resume.
	StateParked State = "parked"
	// StateDone: completed; the result file exists.
	StateDone State = "done"
	// StateFailed: terminal failure (job error or watchdog timeout).
	StateFailed State = "failed"
	// StateCanceled: terminal; removed by the client.
	StateCanceled State = "canceled"
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Spec is the client-supplied job description: everything needed to run
// the job on any daemon process, so it is the payload the ledger persists
// with the submit record.
type Spec struct {
	Kind Kind `json:"kind"`

	// Params scales single and sweep jobs (zero values take the
	// simulator defaults at execution time).
	CPUs int   `json:"cpus,omitempty"`
	Ops  int   `json:"ops,omitempty"`
	Seed int64 `json:"seed,omitempty"`

	// Bench is the benchmark of single jobs and of the timeout/mshr/fault
	// sweeps.
	Bench string `json:"bench,omitempty"`
	// Backend names the memory backend ("" = hmc).
	Backend string `json:"backend,omitempty"`
	// Frontend and Sched name the coalescing front-end and its issue
	// policy ("" are the two-phase / FR-FCFS defaults). The stride sweep
	// grids both axes itself and ignores them.
	Frontend string `json:"frontend,omitempty"`
	Sched    string `json:"sched,omitempty"`

	// Sweep selects the grid of KindSweep jobs: runall, fig14, timeout,
	// mshr, speedup, fault or stride.
	Sweep    string    `json:"sweep,omitempty"`
	Timeouts []uint64  `json:"timeouts,omitempty"`
	Entries  []int     `json:"entries,omitempty"`
	BERs     []float64 `json:"bers,omitempty"`
	// Batch is the lockstep lane width of sweep jobs.
	Batch int `json:"batch,omitempty"`

	// Runs is the scenario count of KindSoak jobs (soak seed rides in
	// Seed).
	Runs int `json:"runs,omitempty"`
}

// sweepKinds maps the Spec.Sweep tokens to validity.
var sweepKinds = map[string]bool{
	"runall": true, "fig14": true, "timeout": true,
	"mshr": true, "speedup": true, "fault": true, "stride": true,
}

// Validate rejects malformed specs at admission, so the queue only ever
// holds runnable jobs.
func (s Spec) Validate() error {
	if s.CPUs < 0 || s.Ops < 0 {
		return fmt.Errorf("jobserv: cpus and ops must be ≥ 0")
	}
	if _, err := hmccoal.ParseBackend(s.Backend); s.Backend != "" && err != nil {
		return fmt.Errorf("jobserv: %w", err)
	}
	if _, err := hmccoal.ParseFrontend(s.Frontend); s.Frontend != "" && err != nil {
		return fmt.Errorf("jobserv: %w", err)
	}
	if _, err := hmccoal.ParseSched(s.Sched); s.Sched != "" && err != nil {
		return fmt.Errorf("jobserv: %w", err)
	}
	checkBench := func() error {
		for _, n := range hmccoal.Benchmarks() {
			if n == s.Bench {
				return nil
			}
		}
		return fmt.Errorf("jobserv: unknown benchmark %q", s.Bench)
	}
	switch s.Kind {
	case KindSingle:
		return checkBench()
	case KindSweep:
		if !sweepKinds[s.Sweep] {
			return fmt.Errorf("jobserv: unknown sweep %q (valid: runall, fig14, timeout, mshr, speedup, fault, stride)", s.Sweep)
		}
		if s.Sweep == "timeout" || s.Sweep == "mshr" || s.Sweep == "fault" {
			return checkBench()
		}
		return nil
	case KindSoak:
		if s.Runs <= 0 {
			return fmt.Errorf("jobserv: soak jobs need runs > 0")
		}
		return nil
	default:
		return fmt.Errorf("jobserv: unknown job kind %q", s.Kind)
	}
}

// params assembles the spec's trace parameters, defaulting zero fields.
func (s Spec) params() hmccoal.TraceParams {
	p := hmccoal.TraceParams{CPUs: s.CPUs, OpsPerCPU: s.Ops, Seed: s.Seed}
	if p.CPUs == 0 {
		p.CPUs = 4
	}
	if p.OpsPerCPU == 0 {
		p.OpsPerCPU = 400
	}
	if p.Seed == 0 {
		p.Seed = 3
	}
	return p
}

// Job is the daemon's record of one admitted job. All fields are guarded
// by the daemon's mutex; JobView is the lock-free copy handed to clients.
type Job struct {
	ID       string
	Tenant   string
	Priority int
	Spec     Spec

	state         State
	err           string
	order         uint64 // admission sequence; FIFO tiebreak within a priority
	attempts      int    // times started or resumed
	preemptions   int
	progressDone  int
	progressTotal int

	// park is the in-memory resume state of a preempted single-run job
	// (the simulator snapshot). It does not survive the process — after a
	// crash the job re-runs from scratch, deterministically.
	park *parkState
	// preempting marks a running job already asked to park, so the
	// scheduler does not preempt it twice.
	preempting bool
}

// JobView is the client-visible copy of a job.
type JobView struct {
	ID          string `json:"id"`
	Tenant      string `json:"tenant"`
	Priority    int    `json:"priority"`
	Kind        Kind   `json:"kind"`
	State       State  `json:"state"`
	Error       string `json:"error,omitempty"`
	Attempts    int    `json:"attempts"`
	Preemptions int    `json:"preemptions"`
	// Done/Total expose sweep and soak progress (0/0 until known).
	Done  int `json:"done"`
	Total int `json:"total"`
}

func (j *Job) view() JobView {
	return JobView{
		ID:          j.ID,
		Tenant:      j.Tenant,
		Priority:    j.Priority,
		Kind:        j.Spec.Kind,
		State:       j.state,
		Error:       j.err,
		Attempts:    j.attempts,
		Preemptions: j.preemptions,
		Done:        j.progressDone,
		Total:       j.progressTotal,
	}
}

// AdmitError is the structured admission refusal the HTTP layer renders:
// machine-readable code, human message, and a retry hint for rate limits.
type AdmitError struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	Tenant       string `json:"tenant,omitempty"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

// Admission refusal codes.
const (
	// CodeQueueFull: the daemon-wide pending queue is at capacity.
	CodeQueueFull = "queue_full"
	// CodeTenantQueue: the tenant is at its max-queued quota.
	CodeTenantQueue = "tenant_queue_quota"
	// CodeRateLimited: the tenant's submit token bucket is empty.
	CodeRateLimited = "rate_limited"
	// CodeDraining: the daemon is shutting down and admits nothing.
	CodeDraining = "draining"
	// CodeBadSpec: the job spec failed validation.
	CodeBadSpec = "bad_spec"
)

func (e *AdmitError) Error() string {
	if e.Tenant != "" {
		return fmt.Sprintf("jobserv: %s (tenant %s): %s", e.Code, e.Tenant, e.Message)
	}
	return fmt.Sprintf("jobserv: %s: %s", e.Code, e.Message)
}

// HTTPStatus maps the refusal to its transport status: quota and rate
// refusals are 429, drain is 503, a bad spec is 400.
func (e *AdmitError) HTTPStatus() int {
	switch e.Code {
	case CodeDraining:
		return http.StatusServiceUnavailable
	case CodeBadSpec:
		return http.StatusBadRequest
	default:
		return http.StatusTooManyRequests
	}
}

// retryAfter converts a wait into the JSON hint, rounding up so clients
// never retry early.
func retryAfterMs(d time.Duration) int64 {
	ms := d.Milliseconds()
	if d > 0 && ms == 0 {
		ms = 1
	}
	return ms
}
