package jobserv

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"

	"hmccoal"
	"hmccoal/internal/soak"
)

// parkState is the in-memory resume state of a preempted single-run job:
// the simulator snapshot plus everything needed to rebuild the system it
// restores into. Sweep and soak jobs leave it empty — their resume state
// is the durable JSONL checkpoint. parkState never leaves the process; a
// crashed daemon re-runs single jobs from scratch, which is byte-identical
// by the simulator's determinism contract.
type parkState struct {
	snap *hmccoal.SystemSnapshot
	cfg  hmccoal.Config
	accs []hmccoal.Access
}

// parkCheckInterval is how many simulator steps a single-run job advances
// between preemption checks: small enough that park latency is
// microseconds, large enough that the check never shows in a profile.
const parkCheckInterval = 4096

// realExec is the production executor: it dispatches a job to its kind's
// driver and translates interruption causes into park outcomes.
func (d *Daemon) realExec(ctl execCtl, id string, spec Spec) execOutcome {
	switch spec.Kind {
	case KindSingle:
		return d.execSingle(ctl, spec)
	case KindSweep:
		return d.execSweep(ctl, id, spec)
	case KindSoak:
		return d.execSoak(ctl, id, spec)
	default:
		return execOutcome{err: fmt.Errorf("jobserv: unknown job kind %q", spec.Kind)}
	}
}

// execSingle runs one benchmark under the two-phase coalescer, checking
// for preemption every parkCheckInterval steps. A park request snapshots
// the live simulation — the paper pipeline's Snapshot/Restore — so the
// resumed attempt continues from the exact tick with zero recompute and a
// summary byte-identical to an uninterrupted run.
func (d *Daemon) execSingle(ctl execCtl, spec Spec) execOutcome {
	var sys *hmccoal.System
	var cfg hmccoal.Config
	var accs []hmccoal.Access

	if ctl.park != nil && ctl.park.snap != nil {
		// Resume: rebuild the system and restore the parked snapshot.
		cfg, accs = ctl.park.cfg, ctl.park.accs
		restored, err := hmccoal.NewSystem(cfg)
		if err != nil {
			return execOutcome{err: err}
		}
		if err := restored.Restore(ctl.park.snap); err != nil {
			return execOutcome{err: err}
		}
		sys = restored
	} else {
		backend, err := hmccoal.ParseBackend(spec.Backend)
		if err != nil {
			return execOutcome{err: err}
		}
		fe, err := hmccoal.ParseFrontend(spec.Frontend)
		if err != nil {
			return execOutcome{err: err}
		}
		sched, err := hmccoal.ParseSched(spec.Sched)
		if err != nil {
			return execOutcome{err: err}
		}
		accs, err = hmccoal.GenerateTrace(spec.Bench, spec.params())
		if err != nil {
			return execOutcome{err: err}
		}
		cfg = hmccoal.DefaultConfig()
		cfg.Mode = hmccoal.ModeTwoPhase
		cfg.Backend = backend
		cfg.Frontend = fe
		cfg.Sched = sched
		cfg.Hierarchy.CPUs = spec.params().CPUs
		if sys, err = hmccoal.NewSystem(cfg); err != nil {
			return execOutcome{err: err}
		}
		if err := sys.Start(accs); err != nil {
			return execOutcome{err: err}
		}
	}

	for {
		for i := 0; i < parkCheckInterval; i++ {
			done, err := sys.Step()
			if err != nil {
				return execOutcome{err: err}
			}
			if done {
				res, err := sys.Finish()
				if err != nil {
					return execOutcome{err: err}
				}
				return marshalResult(map[string]any{
					"kind":    KindSingle,
					"result":  res,
					"summary": res.Summary(),
				})
			}
		}
		if err := ctl.ctx.Err(); err != nil {
			cause := context.Cause(ctl.ctx)
			if errors.Is(cause, errPark) || errors.Is(cause, errDrainPark) {
				snap, serr := sys.Snapshot()
				if serr != nil {
					return execOutcome{err: serr}
				}
				return execOutcome{park: &parkState{snap: snap, cfg: cfg, accs: accs}}
			}
			return execOutcome{err: cause}
		}
	}
}

// execSweep runs one evaluation sweep grid through the public drivers.
// Every attempt — first run, post-preemption resume, post-crash re-run —
// executes with the same per-job checkpoint file, so completed groups
// restore instead of recomputing and the final output is byte-identical
// across any interruption history.
func (d *Daemon) execSweep(ctl execCtl, id string, spec Spec) execOutcome {
	backend, err := hmccoal.ParseBackend(spec.Backend)
	if err != nil {
		return execOutcome{err: err}
	}
	fe, err := hmccoal.ParseFrontend(spec.Frontend)
	if err != nil {
		return execOutcome{err: err}
	}
	sched, err := hmccoal.ParseSched(spec.Sched)
	if err != nil {
		return execOutcome{err: err}
	}
	opt := hmccoal.SweepOptions{
		Workers:    d.opt.SweepWorkers,
		Batch:      spec.Batch,
		Backend:    backend,
		Frontend:   fe,
		Sched:      sched,
		Dispatch:   d.opt.Dispatch,
		Progress:   ctl.progress,
		Checkpoint: filepath.Join(ctl.dir, "ckpt", id+"."+spec.Sweep),
	}
	p := spec.params()
	ctx := ctl.ctx

	var payload map[string]any
	switch spec.Sweep {
	case "runall":
		runs, rerr := hmccoal.RunAllContext(ctx, p, opt)
		if rerr != nil {
			err = rerr
			break
		}
		payload = map[string]any{
			"runs":     runs,
			"figure8":  hmccoal.Figure8Table(runs),
			"figure15": hmccoal.Figure15Table(runs),
		}
	case "fig14":
		table, rerr := hmccoal.Figure14TableContext(ctx, p, spec.Timeouts, opt)
		if rerr != nil {
			err = rerr
			break
		}
		payload = map[string]any{"figure14": table}
	case "timeout":
		lat, rerr := hmccoal.TimeoutSweepContext(ctx, spec.Bench, p, spec.Timeouts, opt)
		if rerr != nil {
			err = rerr
			break
		}
		payload = map[string]any{"bench": spec.Bench, "latencies_ns": lat}
	case "mshr":
		lat, rerr := hmccoal.MSHRSweepContext(ctx, spec.Bench, p, spec.Entries, opt)
		if rerr != nil {
			err = rerr
			break
		}
		payload = map[string]any{"bench": spec.Bench, "latencies_ns": lat}
	case "speedup":
		table, rerr := hmccoal.SpeedupTableContext(ctx, p, opt)
		if rerr != nil {
			err = rerr
			break
		}
		payload = map[string]any{"speedup": table}
	case "fault":
		rows, rerr := hmccoal.FaultSweepContext(ctx, spec.Bench, p, uint64(spec.Seed), spec.BERs, opt)
		if rerr != nil {
			err = rerr
			break
		}
		payload = map[string]any{
			"bench": spec.Bench,
			"rows":  rows,
			"table": hmccoal.FaultSweepTable(rows),
		}
	case "stride":
		runs, rerr := hmccoal.StrideLadderContext(ctx, p, opt)
		if rerr != nil {
			err = rerr
			break
		}
		payload = map[string]any{
			"runs":  runs,
			"table": hmccoal.StrideLadderTable(runs),
		}
	default:
		err = fmt.Errorf("jobserv: unknown sweep %q", spec.Sweep)
	}
	if err != nil {
		return execOutcome{err: err} // finish converts park-caused errors
	}
	payload["kind"] = KindSweep
	payload["sweep"] = spec.Sweep
	return marshalResult(payload)
}

// execSoak runs a seeded chaos campaign; its checkpoint makes every
// classified scenario durable, so interruptions only recompute scenarios
// that had not been classified yet.
func (d *Daemon) execSoak(ctl execCtl, id string, spec Spec) execOutcome {
	backend, err := hmccoal.ParseBackend(spec.Backend)
	if err != nil {
		return execOutcome{err: err}
	}
	fe, err := hmccoal.ParseFrontend(spec.Frontend)
	if err != nil {
		return execOutcome{err: err}
	}
	sched, err := hmccoal.ParseSched(spec.Sched)
	if err != nil {
		return execOutcome{err: err}
	}
	rep, err := soak.Soak(ctl.ctx, soak.Options{
		Seed:       spec.Seed,
		Runs:       spec.Runs,
		Workers:    d.opt.SweepWorkers,
		Backend:    backend,
		Frontend:   fe,
		Sched:      sched,
		ReproDir:   filepath.Join(ctl.dir, "repros"),
		Progress:   ctl.progress,
		Checkpoint: filepath.Join(ctl.dir, "ckpt", id+".soak"),
	})
	if err != nil {
		return execOutcome{err: err}
	}
	return marshalResult(map[string]any{"kind": KindSoak, "report": rep})
}

// marshalResult renders a job's terminal payload. Go's json.Marshal sorts
// map keys, so identical data always yields identical bytes — the
// property the byte-identical recovery tests pin.
func marshalResult(payload map[string]any) execOutcome {
	raw, err := json.Marshal(payload)
	if err != nil {
		return execOutcome{err: fmt.Errorf("jobserv: encode result: %w", err)}
	}
	return execOutcome{result: raw}
}
