package jobserv

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"hmccoal"
)

// Options tunes a Daemon.
type Options struct {
	// Dir is the state directory: ledger.jsonl, results/, ckpt/, repros/.
	Dir string
	// Slots is the number of jobs executing concurrently. 0 means 1.
	Slots int
	// MaxQueue caps jobs waiting for a slot across all tenants (the
	// daemon-wide backpressure bound). 0 means DefaultMaxQueue.
	MaxQueue int
	// Quota is the per-tenant admission policy.
	Quota Quota
	// JobTimeout is the per-attempt watchdog: a job running longer is
	// cancelled and failed with a structured timeout error, so a hung
	// simulation can never pin a slot forever. 0 disables the watchdog.
	JobTimeout time.Duration
	// SweepWorkers sizes the in-process pool sweep jobs run on (0 = all
	// cores). With Dispatch set, sweep jobs go to remote workers instead.
	SweepWorkers int
	// Dispatch, when non-nil, ships sweep job groups to a distributed
	// coordinator (the dsweep plane) instead of simulating in-process.
	Dispatch hmccoal.Dispatcher
	// Logf, when non-nil, receives daemon lifecycle chatter.
	Logf func(format string, args ...any)

	// now and exec are test seams: a fake clock makes rate-limit tests
	// deterministic, a fake executor makes scheduling tests instant.
	now  func() time.Time
	exec execFunc
}

// DefaultMaxQueue is the default daemon-wide pending cap.
const DefaultMaxQueue = 1024

func (o Options) slots() int {
	if o.Slots < 1 {
		return 1
	}
	return o.Slots
}

func (o Options) maxQueue() int {
	if o.MaxQueue <= 0 {
		return DefaultMaxQueue
	}
	return o.MaxQueue
}

func (o Options) clock() func() time.Time {
	if o.now != nil {
		return o.now
	}
	return time.Now
}

// Cancellation causes. finish maps the cause of a cancelled execution to
// the job's next state: park causes re-queue the job, cancel and timeout
// are terminal.
var (
	errPark      = errors.New("jobserv: preempted")
	errDrainPark = errors.New("jobserv: daemon draining")
	errCancelReq = errors.New("jobserv: canceled by client")
	errTimeout   = errors.New("jobserv: watchdog timeout")
)

// execCtl is what the daemon hands an executing job.
type execCtl struct {
	ctx      context.Context
	park     *parkState // in-memory resume state from a previous preemption
	progress func(done, total int)
	dir      string // daemon state dir (checkpoints, repro artifacts)
}

// execOutcome is one execution attempt's verdict: exactly one of result
// (terminal success), park (interrupted, resumable) or err.
type execOutcome struct {
	result []byte
	park   *parkState
	err    error
}

// execFunc runs one attempt of a job. The production implementation is
// (*Daemon).realExec in runner.go.
type execFunc func(ctl execCtl, id string, spec Spec) execOutcome

// runningJob tracks one executing attempt.
type runningJob struct {
	job      *Job
	cancel   context.CancelCauseFunc
	ctx      context.Context
	watchdog *time.Timer
}

// Daemon is the job service: admission, scheduling, preemption, crash
// recovery and drain around a slot pool of simulation executors.
type Daemon struct {
	opt Options
	led *ledger

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*Job
	pending  []*Job // queued and parked jobs awaiting a slot
	running  map[string]*runningJob
	tenants  map[string]*tenant
	nextSeq  uint64
	draining bool
	closed   bool
	wg       sync.WaitGroup
}

// NewDaemon opens (or adopts) the state directory, replays the job
// ledger, re-queues every job the previous process left unfinished and
// starts scheduling. Jobs that were running at the crash are re-run:
// sweep and soak jobs resume from their JSONL checkpoints (completed
// groups restore, only pending work recomputes), single runs re-execute
// from scratch — all byte-identical by the simulator's determinism
// contract. Completed jobs keep their results and are never re-run.
func NewDaemon(opt Options) (*Daemon, error) {
	if opt.Dir == "" {
		return nil, errors.New("jobserv: Options.Dir is required")
	}
	for _, sub := range []string{"", "results", "ckpt", "repros"} {
		if err := os.MkdirAll(filepath.Join(opt.Dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("jobserv: state dir: %w", err)
		}
	}
	led, err := openLedger(filepath.Join(opt.Dir, "ledger.jsonl"))
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		opt:     opt,
		led:     led,
		jobs:    make(map[string]*Job),
		running: make(map[string]*runningJob),
		tenants: make(map[string]*tenant),
	}
	d.cond = sync.NewCond(&d.mu)
	if d.opt.exec == nil {
		d.opt.exec = d.realExec
	}
	if err := d.recover(); err != nil {
		led.close()
		return nil, err
	}
	d.mu.Lock()
	d.scheduleLocked()
	d.mu.Unlock()
	return d, nil
}

func (d *Daemon) logf(format string, args ...any) {
	if d.opt.Logf != nil {
		d.opt.Logf(format, args...)
	}
}

// recover rebuilds the in-memory queue from the ledger.
func (d *Daemon) recover() error {
	evs, err := replayLedger(filepath.Join(d.opt.Dir, "ledger.jsonl"))
	if err != nil {
		return err
	}
	for _, ev := range evs {
		j := d.jobs[ev.ID]
		switch ev.Type {
		case evSubmit:
			if j != nil || ev.Spec == nil {
				continue
			}
			d.nextSeq++
			d.jobs[ev.ID] = &Job{
				ID:       ev.ID,
				Tenant:   ev.Tenant,
				Priority: ev.Priority,
				Spec:     *ev.Spec,
				state:    StateQueued,
				order:    d.nextSeq,
			}
		case evStart, evResume:
			if j != nil {
				j.state = StateRunning
				j.attempts++
			}
		case evPark:
			if j != nil {
				j.state = StateParked
				j.preemptions++
			}
		case evDone:
			if j != nil {
				j.state = StateDone
			}
		case evFail:
			if j != nil {
				j.state = StateFailed
				j.err = ev.Error
			}
		case evCancel:
			if j != nil {
				j.state = StateCanceled
			}
		}
	}
	// Jobs the dead process was running restart as queued: their durable
	// checkpoints carry completed work, and any in-memory snapshot died
	// with the process.
	var adopted []*Job
	for _, j := range d.jobs {
		if j.state == StateRunning {
			j.state = StateQueued
		}
		if j.state == StateQueued || j.state == StateParked {
			adopted = append(adopted, j)
			d.tenantLocked(j.Tenant).queued++
		}
	}
	sort.Slice(adopted, func(a, b int) bool { return adopted[a].order < adopted[b].order })
	d.pending = adopted
	if len(d.jobs) > 0 {
		d.logf("jobserv: adopted ledger: %d jobs, %d pending", len(d.jobs), len(adopted))
	}
	return nil
}

// Submit admits one job, durably records it and schedules it. The error,
// when non-nil, is an *AdmitError carrying the structured refusal.
func (d *Daemon) Submit(tenantName string, priority int, spec Spec) (string, error) {
	if tenantName == "" {
		return "", &AdmitError{Code: CodeBadSpec, Message: "tenant is required"}
	}
	if err := spec.Validate(); err != nil {
		return "", &AdmitError{Code: CodeBadSpec, Message: err.Error(), Tenant: tenantName}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining || d.closed {
		return "", &AdmitError{Code: CodeDraining, Message: "daemon is draining; submit to another instance", Tenant: tenantName}
	}
	if len(d.pending) >= d.opt.maxQueue() {
		return "", &AdmitError{
			Code:    CodeQueueFull,
			Message: fmt.Sprintf("%d jobs pending, daemon cap is %d", len(d.pending), d.opt.maxQueue()),
			Tenant:  tenantName,
		}
	}
	tn := d.tenantLocked(tenantName)
	if aerr := tn.admit(d.opt.Quota, tenantName, d.opt.clock()()); aerr != nil {
		return "", aerr
	}
	d.nextSeq++
	j := &Job{
		ID:       fmt.Sprintf("j-%06d", d.nextSeq),
		Tenant:   tenantName,
		Priority: priority,
		Spec:     spec,
		state:    StateQueued,
		order:    d.nextSeq,
	}
	if err := d.led.append(event{Type: evSubmit, ID: j.ID, Tenant: j.Tenant, Priority: j.Priority, Spec: &j.Spec}); err != nil {
		return "", &AdmitError{Code: "ledger_error", Message: err.Error(), Tenant: tenantName}
	}
	d.jobs[j.ID] = j
	d.pending = append(d.pending, j)
	tn.queued++
	d.scheduleLocked()
	return j.ID, nil
}

// scheduleLocked fills free slots from the pending queue and preempts for
// higher-priority arrivals. Caller holds d.mu.
func (d *Daemon) scheduleLocked() {
	if d.draining || d.closed {
		return
	}
	for len(d.running) < d.opt.slots() {
		j := d.popLocked()
		if j == nil {
			break
		}
		if !d.startLocked(j) {
			break // unwritable ledger; do not spin on the same job
		}
	}
	d.maybePreemptLocked()
}

// maybePreemptLocked parks the lowest-priority running job when a
// strictly higher-priority job is waiting with no free slot. The victim's
// slot frees once its executor acknowledges the park (sweeps at the next
// group boundary, single runs at the next step-batch boundary), and the
// scheduler then starts the waiting job.
func (d *Daemon) maybePreemptLocked() {
	if len(d.running) < d.opt.slots() {
		return
	}
	best := d.bestPendingLocked()
	if best == nil {
		return
	}
	var victim *runningJob
	for _, r := range d.running {
		if r.job.preempting {
			continue
		}
		if victim == nil || r.job.Priority < victim.job.Priority {
			victim = r
		}
	}
	if victim == nil || victim.job.Priority >= best.Priority {
		return
	}
	victim.job.preempting = true
	d.logf("jobserv: preempting %s (priority %d) for %s (priority %d)",
		victim.job.ID, victim.job.Priority, best.ID, best.Priority)
	victim.cancel(errPark)
}

// startLocked launches one attempt of j on a slot, reporting whether the
// attempt could be durably recorded. Caller holds d.mu.
func (d *Daemon) startLocked(j *Job) bool {
	evType := evStart
	if j.state == StateParked {
		evType = evResume
	}
	if err := d.led.append(event{Type: evType, ID: j.ID}); err != nil {
		// An unwritable ledger cannot record the attempt; leave the job
		// queued rather than run work the ledger does not know about.
		d.logf("jobserv: %s: %v", j.ID, err)
		d.pending = append(d.pending, j)
		return false
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	r := &runningJob{job: j, cancel: cancel, ctx: ctx}
	if d.opt.JobTimeout > 0 {
		r.watchdog = time.AfterFunc(d.opt.JobTimeout, func() { cancel(errTimeout) })
	}
	park := j.park
	j.park = nil
	j.state = StateRunning
	j.attempts++
	j.preempting = false
	d.running[j.ID] = r
	d.tenantLocked(j.Tenant).queued--
	d.tenantLocked(j.Tenant).running++

	ctl := execCtl{
		ctx:  ctx,
		park: park,
		dir:  d.opt.Dir,
		progress: func(done, total int) {
			d.mu.Lock()
			j.progressDone, j.progressTotal = done, total
			d.mu.Unlock()
		},
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		out := d.opt.exec(ctl, j.ID, j.Spec)
		d.finish(j, r, out)
	}()
	return true
}

// finish settles one execution attempt: park causes re-queue the job,
// everything else is terminal. The durability order is load-bearing —
// result file before done record, every record fsync'd before the state
// change becomes visible.
func (d *Daemon) finish(j *Job, r *runningJob, out execOutcome) {
	if r.watchdog != nil {
		r.watchdog.Stop()
	}
	cause := context.Cause(r.ctx)

	// An executor interrupted by a park request that could not produce
	// in-memory resume state (sweeps, soaks — their checkpoints are
	// durable) still parks: the error is the interruption, not a failure.
	if out.err != nil && out.park == nil &&
		(errors.Is(cause, errPark) || errors.Is(cause, errDrainPark)) {
		out = execOutcome{park: &parkState{}}
	}

	var ev event
	var state State
	switch {
	case out.park != nil:
		ev = event{Type: evPark, ID: j.ID}
		state = StateParked
	case out.err != nil && errors.Is(cause, errCancelReq):
		ev = event{Type: evCancel, ID: j.ID}
		state = StateCanceled
	case out.err != nil && errors.Is(cause, errTimeout):
		ev = event{Type: evFail, ID: j.ID,
			Error: fmt.Sprintf("watchdog: job exceeded the %v timeout", d.opt.JobTimeout)}
		state = StateFailed
	case out.err != nil:
		ev = event{Type: evFail, ID: j.ID, Error: out.err.Error()}
		state = StateFailed
	default:
		if err := writeFileAtomic(d.resultPath(j.ID), out.result); err != nil {
			ev = event{Type: evFail, ID: j.ID, Error: fmt.Sprintf("write result: %v", err)}
			state = StateFailed
			break
		}
		ev = event{Type: evDone, ID: j.ID}
		state = StateDone
	}
	if err := d.led.append(ev); err != nil {
		d.logf("jobserv: %s: %v", j.ID, err)
	}

	d.mu.Lock()
	delete(d.running, j.ID)
	tn := d.tenantLocked(j.Tenant)
	tn.running--
	j.state = state
	switch state {
	case StateParked:
		j.park = out.park
		j.preemptions++
		tn.queued++
		d.pending = append(d.pending, j)
	case StateFailed:
		j.err = ev.Error
	}
	d.scheduleLocked()
	d.cond.Broadcast()
	d.mu.Unlock()
}

func (d *Daemon) resultPath(id string) string {
	return filepath.Join(d.opt.Dir, "results", id+".json")
}

// Get returns the client view of one job.
func (d *Daemon) Get(id string) (JobView, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// List returns every job (tenant-filtered when tenant != ""), in
// admission order.
func (d *Daemon) List(tenant string) []JobView {
	d.mu.Lock()
	defer d.mu.Unlock()
	views := make([]JobView, 0, len(d.jobs))
	order := make([]*Job, 0, len(d.jobs))
	for _, j := range d.jobs {
		if tenant == "" || j.Tenant == tenant {
			order = append(order, j)
		}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].order < order[b].order })
	for _, j := range order {
		views = append(views, j.view())
	}
	return views
}

// Result returns a completed job's result bytes.
func (d *Daemon) Result(id string) ([]byte, error) {
	d.mu.Lock()
	j, ok := d.jobs[id]
	var state State
	if ok {
		state = j.state
	}
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("jobserv: no such job %s", id)
	}
	if state != StateDone {
		return nil, fmt.Errorf("jobserv: job %s is %s, not done", id, state)
	}
	return readAll(d.resultPath(id))
}

// Cancel removes a queued job or interrupts a running one. Terminal jobs
// cannot be cancelled.
func (d *Daemon) Cancel(id string) error {
	d.mu.Lock()
	j, ok := d.jobs[id]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("jobserv: no such job %s", id)
	}
	switch j.state {
	case StateQueued, StateParked:
		d.removePendingLocked(j)
		d.tenantLocked(j.Tenant).queued--
		j.state = StateCanceled
		j.park = nil
		d.cond.Broadcast()
		d.mu.Unlock()
		if err := d.led.append(event{Type: evCancel, ID: id}); err != nil {
			d.logf("jobserv: %s: %v", id, err)
		}
		return nil
	case StateRunning:
		r := d.running[id]
		d.mu.Unlock()
		if r != nil {
			r.cancel(errCancelReq)
		}
		return nil
	default:
		state := j.state
		d.mu.Unlock()
		return fmt.Errorf("jobserv: job %s is already %s", id, state)
	}
}

// WaitJob blocks until the job reaches a terminal state or parks (parked
// is reported so drain callers see progress), up to timeout. It returns
// the final view and whether the wait was satisfied.
func (d *Daemon) WaitJob(id string, timeout time.Duration) (JobView, bool) {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		d.mu.Lock()
		d.cond.Broadcast()
		d.mu.Unlock()
	})
	defer timer.Stop()
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		j, ok := d.jobs[id]
		if !ok {
			return JobView{}, false
		}
		if j.state.Terminal() {
			return j.view(), true
		}
		if time.Now().After(deadline) {
			return j.view(), false
		}
		d.cond.Wait()
	}
}

// DaemonStatus is the daemon-wide observability snapshot.
type DaemonStatus struct {
	Queued   int  `json:"queued"` // includes parked jobs awaiting resume
	Parked   int  `json:"parked"`
	Running  int  `json:"running"`
	Done     int  `json:"done"`
	Failed   int  `json:"failed"`
	Canceled int  `json:"canceled"`
	Draining bool `json:"draining"`

	Tenants map[string]TenantStatus `json:"tenants,omitempty"`
}

// Status snapshots the daemon.
func (d *Daemon) Status() DaemonStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := DaemonStatus{Draining: d.draining, Tenants: make(map[string]TenantStatus)}
	for _, j := range d.jobs {
		switch j.state {
		case StateQueued:
			s.Queued++
		case StateParked:
			s.Queued++
			s.Parked++
		case StateRunning:
			s.Running++
		case StateDone:
			s.Done++
		case StateFailed:
			s.Failed++
		case StateCanceled:
			s.Canceled++
		}
	}
	for name, tn := range d.tenants {
		s.Tenants[name] = TenantStatus{Queued: tn.queued, Running: tn.running}
	}
	return s
}

// Drain gracefully shuts the daemon down: admission stops (submits get a
// structured 503), running jobs are asked to park at their next safe
// point, and Drain returns once every slot has settled — every job either
// finished, parked durably, or (single runs) returned to the queue for a
// deterministic re-run. The ledger then holds everything a fresh daemon
// needs to adopt the queue. ctx bounds the wait.
func (d *Daemon) Drain(ctx context.Context) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.draining = true
	for _, r := range d.running {
		r.cancel(errDrainPark)
	}
	d.mu.Unlock()

	settled := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(settled)
	}()
	var err error
	select {
	case <-settled:
	case <-ctx.Done():
		err = fmt.Errorf("jobserv: drain: %w", ctx.Err())
	}

	d.mu.Lock()
	d.closed = true
	d.cond.Broadcast()
	d.mu.Unlock()
	if cerr := d.led.close(); err == nil && cerr != nil {
		err = cerr
	}
	return err
}

// Close is Drain without a bound — for tests and clean exits.
func (d *Daemon) Close() error { return d.Drain(context.Background()) }
