package jobserv

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// NewServer wraps a Daemon in its HTTP/JSON API:
//
//	POST   /api/v1/jobs              submit {tenant, priority, spec}
//	GET    /api/v1/jobs?tenant=      list jobs
//	GET    /api/v1/jobs/{id}         poll one job
//	GET    /api/v1/jobs/{id}/wait    long-poll until terminal (?timeout=30s)
//	GET    /api/v1/jobs/{id}/result  fetch the result document
//	DELETE /api/v1/jobs/{id}         cancel
//	GET    /api/v1/status            daemon snapshot
//
// Admission refusals render the AdmitError as JSON with status 429 (quota,
// rate), 503 (draining) or 400 (bad spec), plus a Retry-After header when
// the refusal carries a wait hint.
func NewServer(d *Daemon) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Tenant   string `json:"tenant"`
			Priority int    `json:"priority"`
			Spec     Spec   `json:"spec"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeAdmitError(w, &AdmitError{Code: CodeBadSpec, Message: fmt.Sprintf("decode request: %v", err)})
			return
		}
		id, err := d.Submit(req.Tenant, req.Priority, req.Spec)
		if err != nil {
			var aerr *AdmitError
			if errors.As(err, &aerr) {
				writeAdmitError(w, aerr)
				return
			}
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
	})

	mux.HandleFunc("GET /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.List(r.URL.Query().Get("tenant")))
	})

	mux.HandleFunc("GET /api/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, ok := d.Get(r.PathValue("id"))
		if !ok {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, http.StatusOK, v)
	})

	mux.HandleFunc("GET /api/v1/jobs/{id}/wait", func(w http.ResponseWriter, r *http.Request) {
		timeout := 30 * time.Second
		if s := r.URL.Query().Get("timeout"); s != "" {
			t, err := time.ParseDuration(s)
			if err != nil || t <= 0 {
				http.Error(w, "bad timeout", http.StatusBadRequest)
				return
			}
			timeout = t
		}
		v, done := d.WaitJob(r.PathValue("id"), timeout)
		if v.ID == "" {
			http.NotFound(w, r)
			return
		}
		status := http.StatusOK
		if !done {
			status = http.StatusAccepted // still in flight; poll again
		}
		writeJSON(w, status, v)
	})

	mux.HandleFunc("GET /api/v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		raw, err := d.Result(r.PathValue("id"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", strconv.Itoa(len(raw)))
		w.Write(raw)
	})

	mux.HandleFunc("DELETE /api/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := d.Cancel(r.PathValue("id")); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("GET /api/v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.Status())
	})

	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeAdmitError renders a structured admission refusal.
func writeAdmitError(w http.ResponseWriter, aerr *AdmitError) {
	if aerr.RetryAfterMs > 0 {
		secs := (aerr.RetryAfterMs + 999) / 1000
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, aerr.HTTPStatus(), map[string]*AdmitError{"error": aerr})
}
