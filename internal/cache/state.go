package cache

import "fmt"

// State is an opaque deep copy of one cache level's mutable state: the tag
// arrays, the packed recency stacks, the access clock and the statistics.
// Geometry (set mask, ways, tag split) is configuration-derived and not
// captured; a snapshot only restores into a cache of identical geometry.
type State struct {
	lines    []line
	order    []uint64
	orderGen []uint32
	gen      uint32
	clock    uint64
	stats    Stats
}

// SaveState deep-copies the cache's mutable state. The generation stamp is
// part of the state: line validity is relative to it, so restoring copies
// the donor's generation along with its tag array.
func (c *Cache) SaveState() *State {
	return &State{
		lines:    append([]line(nil), c.lines...),
		order:    append([]uint64(nil), c.order...),
		orderGen: append([]uint32(nil), c.orderGen...),
		gen:      c.gen,
		clock:    c.clock,
		stats:    c.stats,
	}
}

// RestoreState replays a snapshot into the cache. The cache must have been
// built from the same configuration as the one that produced the snapshot.
func (c *Cache) RestoreState(st *State) error {
	if len(st.lines) != len(c.lines) || len(st.order) != len(c.order) {
		return fmt.Errorf("cache: snapshot geometry %d lines/%d sets, cache %d/%d",
			len(st.lines), len(st.order), len(c.lines), len(c.order))
	}
	copy(c.lines, st.lines)
	copy(c.order, st.order)
	copy(c.orderGen, st.orderGen)
	c.gen = st.gen
	c.clock = st.clock
	c.stats = st.stats
	return nil
}

// HierarchyState is the snapshot of a full cache hierarchy: every per-CPU
// L1 and L2 plus the shared LLC.
type HierarchyState struct {
	l1  []*State
	l2  []*State
	llc *State
}

// SaveState deep-copies every level of the hierarchy.
func (h *Hierarchy) SaveState() *HierarchyState {
	st := &HierarchyState{
		l1:  make([]*State, len(h.l1)),
		l2:  make([]*State, len(h.l2)),
		llc: h.llc.SaveState(),
	}
	for i := range h.l1 {
		st.l1[i] = h.l1[i].SaveState()
	}
	for i := range h.l2 {
		st.l2[i] = h.l2[i].SaveState()
	}
	return st
}

// RestoreState replays a hierarchy snapshot. The hierarchy must have been
// built from the same configuration as the one that produced the snapshot.
func (h *Hierarchy) RestoreState(st *HierarchyState) error {
	if len(st.l1) != len(h.l1) || len(st.l2) != len(h.l2) {
		return fmt.Errorf("cache: snapshot has %d L1/%d L2 caches, hierarchy %d/%d",
			len(st.l1), len(st.l2), len(h.l1), len(h.l2))
	}
	for i := range h.l1 {
		if err := h.l1[i].RestoreState(st.l1[i]); err != nil {
			return fmt.Errorf("cache: L1[%d]: %w", i, err)
		}
	}
	for i := range h.l2 {
		if err := h.l2[i].RestoreState(st.l2[i]); err != nil {
			return fmt.Errorf("cache: L2[%d]: %w", i, err)
		}
	}
	if err := h.llc.RestoreState(st.llc); err != nil {
		return fmt.Errorf("cache: LLC: %w", err)
	}
	return nil
}
