// Package cache models the processor-side cache hierarchy in front of the
// memory coalescer: per-core private L1 and L2 caches and a shared last
// level cache (LLC). Every LLC miss — load miss, store miss or dirty
// write-back — becomes a candidate request for the coalescer (paper §3.1).
//
// The model is a state-accurate tag/LRU simulation with fixed per-level hit
// latencies. Miss *timing* is not resolved here: the hierarchy reports the
// line-granular miss stream and the system simulator (internal/sim) charges
// memory latency through the coalescer, MSHRs and HMC device.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	SizeBytes  uint64
	Ways       int
	LineBytes  uint32
	HitLatency uint64 // cycles charged per access served at this level
}

func (c Config) validate() error {
	switch {
	case c.LineBytes == 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	case c.Ways <= 0:
		return fmt.Errorf("cache: ways %d must be positive", c.Ways)
	case c.SizeBytes == 0 || c.SizeBytes%(uint64(c.LineBytes)*uint64(c.Ways)) != 0:
		return fmt.Errorf("cache: size %d not divisible by way size", c.SizeBytes)
	}
	sets := c.SizeBytes / uint64(c.LineBytes) / uint64(c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64
}

// Stats counts per-level activity.
type Stats struct {
	Accesses, Hits, Misses, WriteBacks uint64
}

// MissRate returns misses/accesses, or 0 for an idle cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is one set-associative, write-back, write-allocate cache level with
// LRU replacement. It is line-granular: callers present line numbers.
type Cache struct {
	cfg   Config
	sets  [][]line
	clock uint64
	stats Stats
}

// New builds a cache level.
func New(cfg Config) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	numSets := cfg.SizeBytes / uint64(cfg.LineBytes) / uint64(cfg.Ways)
	c := &Cache{cfg: cfg, sets: make([][]line, numSets)}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	return c, nil
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the accumulated counters.
func (c *Cache) Stats() Stats { return c.stats }

// Access touches lineNum (an absolute cache line number). write marks the
// line dirty on hit or after fill. It returns whether the access hit and,
// on a miss that evicted a dirty victim, the victim's line number.
//
// A miss installs the line immediately (the timing of the fill is the
// simulator's concern), so a subsequent access to the same line hits.
func (c *Cache) Access(lineNum uint64, write bool) (hit bool, writeBack *uint64) {
	c.clock++
	c.stats.Accesses++
	set := c.sets[lineNum%uint64(len(c.sets))]
	tag := lineNum / uint64(len(c.sets))
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.stats.Hits++
			set[i].lru = c.clock
			if write {
				set[i].dirty = true
			}
			return true, nil
		}
	}
	c.stats.Misses++
	// Choose a victim: an invalid way, else the least recently used.
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	if set[victim].valid && set[victim].dirty {
		c.stats.WriteBacks++
		wb := set[victim].tag*uint64(len(c.sets)) + lineNum%uint64(len(c.sets))
		writeBack = &wb
	}
	set[victim] = line{tag: tag, valid: true, dirty: write, lru: c.clock}
	return false, writeBack
}

// Contains reports whether the line is present (no LRU update).
func (c *Cache) Contains(lineNum uint64) bool {
	set := c.sets[lineNum%uint64(len(c.sets))]
	tag := lineNum / uint64(len(c.sets))
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Flush invalidates every line, returning the dirty line numbers in
// unspecified order.
func (c *Cache) Flush() []uint64 {
	var dirty []uint64
	for s := range c.sets {
		for w := range c.sets[s] {
			l := &c.sets[s][w]
			if l.valid && l.dirty {
				dirty = append(dirty, l.tag*uint64(len(c.sets))+uint64(s))
			}
			*l = line{}
		}
	}
	return dirty
}
