// Package cache models the processor-side cache hierarchy in front of the
// memory coalescer: per-core private L1 and L2 caches and a shared last
// level cache (LLC). Every LLC miss — load miss, store miss or dirty
// write-back — becomes a candidate request for the coalescer (paper §3.1).
//
// The model is a state-accurate tag/LRU simulation with fixed per-level hit
// latencies. Miss *timing* is not resolved here: the hierarchy reports the
// line-granular miss stream and the system simulator (internal/sim) charges
// memory latency through the coalescer, MSHRs and HMC device.
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes one cache level.
type Config struct {
	SizeBytes  uint64
	Ways       int
	LineBytes  uint32
	HitLatency uint64 // cycles charged per access served at this level
}

func (c Config) validate() error {
	switch {
	case c.LineBytes == 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	case c.Ways <= 0:
		return fmt.Errorf("cache: ways %d must be positive", c.Ways)
	case c.SizeBytes == 0 || c.SizeBytes%(uint64(c.LineBytes)*uint64(c.Ways)) != 0:
		return fmt.Errorf("cache: size %d not divisible by way size", c.SizeBytes)
	}
	sets := c.SizeBytes / uint64(c.LineBytes) / uint64(c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

type line struct {
	tag   uint64
	lru   uint64 // recency counter; used only when ways > lruStackWays
	gen   uint32 // generation stamp: the line is valid iff gen == Cache.gen
	dirty bool
}

// Stats counts per-level activity.
type Stats struct {
	Accesses, Hits, Misses, WriteBacks uint64
}

// MissRate returns misses/accesses, or 0 for an idle cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// lruStackWays is the widest associativity the packed recency stack
// supports: one nibble per way in a uint64.
const lruStackWays = 16

// Cache is one set-associative, write-back, write-allocate cache level with
// LRU replacement. It is line-granular: callers present line numbers.
//
// The tag store is one contiguous slice (sets × ways) indexed by
// shift/mask, and for associativities up to 16 the LRU state of a set is a
// packed recency stack: nibble r of order[set] holds the way at recency
// rank r (rank 0 = MRU, rank ways-1 = LRU). Promoting a way to MRU and
// picking a victim are then register-only word operations instead of
// counter scans, and victim selection is identical to counter LRU: invalid
// ways are consumed in index order, then the least recently touched way.
// Line validity is generational: a line is valid only while its gen stamp
// matches the cache's. Reset then invalidates the whole array by bumping
// gen — O(1), no matter how many megabytes of tags the level holds — which
// is what lets a sweep engine recycle cache levels across runs at zero
// cost. The per-set recency stacks are re-initialized lazily the first
// time a set is touched in a new generation (orderGen).
type Cache struct {
	cfg       Config
	lines     []line   // sets × ways, set-major
	order     []uint64 // packed per-set recency stacks (ways <= lruStackWays)
	orderGen  []uint32 // generation of each set's recency stack
	setMask   uint64   // numSets - 1
	tagBits   uint     // log2(numSets): tag = lineNum >> tagBits
	ways      int
	gen       uint32 // current generation (starts at 1; zeroed lines are stale)
	bootOrder uint64 // initialOrder(ways), the stack a fresh set starts from
	clock     uint64
	stats     Stats
}

// initialOrder is the boot recency stack: way 0 at the LRU end, so empty
// ways fill in index order exactly as the counter scan would pick them.
func initialOrder(ways int) uint64 {
	var o uint64
	for r := 0; r < ways; r++ {
		o |= uint64(ways-1-r) << (4 * r)
	}
	return o
}

// New builds a cache level.
func New(cfg Config) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	numSets := cfg.SizeBytes / uint64(cfg.LineBytes) / uint64(cfg.Ways)
	c := &Cache{
		cfg:       cfg,
		lines:     make([]line, numSets*uint64(cfg.Ways)),
		setMask:   numSets - 1,
		tagBits:   uint(bits.TrailingZeros64(numSets)),
		ways:      cfg.Ways,
		gen:       1,
		bootOrder: initialOrder(cfg.Ways),
	}
	if cfg.Ways <= lruStackWays {
		c.order = make([]uint64, numSets)
		c.orderGen = make([]uint32, numSets)
	}
	return c, nil
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the accumulated counters.
func (c *Cache) Stats() Stats { return c.stats }

// touch promotes way w of set to MRU in the packed recency stack.
func (c *Cache) touch(set uint64, w int) {
	o := c.order[set]
	// Find the rank holding w, then shift every younger nibble up one rank
	// and install w at rank 0.
	for r := 0; ; r++ {
		if int(o>>(4*r))&0xf == w {
			low := o & (1<<(4*r) - 1)
			keep := o &^ (1<<(4*(r+1)) - 1)
			c.order[set] = keep | low<<4 | uint64(w)
			return
		}
	}
}

// Access touches lineNum (an absolute cache line number). write marks the
// line dirty on hit or after fill. It returns whether the access hit and,
// on a miss that evicted a dirty victim, the victim's line number.
//
// A miss installs the line immediately (the timing of the fill is the
// simulator's concern), so a subsequent access to the same line hits.
func (c *Cache) Access(lineNum uint64, write bool) (hit bool, writeBack *uint64) {
	hit, wb, dirty := c.AccessValue(lineNum, write)
	if dirty {
		writeBack = &wb
	}
	return hit, writeBack
}

// AccessValue is Access without the pointer in the return: the write-back
// line is returned by value with a validity flag, so the hot path never
// heap-allocates. The simulator's hierarchy walk uses this form.
func (c *Cache) AccessValue(lineNum uint64, write bool) (hit bool, writeBack uint64, hasWriteBack bool) {
	c.clock++
	c.stats.Accesses++
	set := lineNum & c.setMask
	base := set * uint64(c.ways)
	ways := c.lines[base : base+uint64(c.ways)]
	tag := lineNum >> c.tagBits
	if c.order != nil && c.orderGen[set] != c.gen {
		// First touch of this set in the current generation: its recency
		// stack still describes the previous run, so reboot it.
		c.order[set] = c.bootOrder
		c.orderGen[set] = c.gen
	}
	for i := range ways {
		if ways[i].gen == c.gen && ways[i].tag == tag {
			c.stats.Hits++
			if c.order != nil {
				c.touch(set, i)
			} else {
				ways[i].lru = c.clock
			}
			if write {
				ways[i].dirty = true
			}
			return true, 0, false
		}
	}
	c.stats.Misses++
	// Choose a victim: an invalid (stale-generation) way, else the least
	// recently used. With the packed stack both cases collapse to the
	// stack's LRU rank (invalid ways sit at the cold end in index order by
	// construction).
	victim := 0
	if c.order != nil {
		victim = int(c.order[set]>>(4*(c.ways-1))) & 0xf
		if ways[victim].gen == c.gen {
			for i := range ways {
				if ways[i].gen != c.gen {
					victim = i
					break
				}
			}
		}
	} else {
		for i := range ways {
			if ways[i].gen != c.gen {
				victim = i
				break
			}
			if ways[i].lru < ways[victim].lru {
				victim = i
			}
		}
	}
	if ways[victim].gen == c.gen && ways[victim].dirty {
		c.stats.WriteBacks++
		writeBack = ways[victim].tag<<c.tagBits | set
		hasWriteBack = true
	}
	ways[victim] = line{tag: tag, dirty: write, lru: c.clock, gen: c.gen}
	if c.order != nil {
		c.touch(set, victim)
	}
	return false, writeBack, hasWriteBack
}

// Reset returns the level to its freshly built state — every line invalid,
// recency stacks at boot order, clock and counters zero — in O(1):
// bumping the generation invalidates the whole tag array at once, and the
// recency stacks reboot lazily on first touch. A reset cache behaves
// identically to one just returned by New, at no allocation and no
// memset: sweep engines recycle cache levels across runs instead of
// re-zeroing megabytes per job.
func (c *Cache) Reset() {
	c.gen++
	c.clock = 0
	c.stats = Stats{}
}

// Contains reports whether the line is present (no LRU update).
func (c *Cache) Contains(lineNum uint64) bool {
	set := lineNum & c.setMask
	base := set * uint64(c.ways)
	ways := c.lines[base : base+uint64(c.ways)]
	tag := lineNum >> c.tagBits
	for i := range ways {
		if ways[i].gen == c.gen && ways[i].tag == tag {
			return true
		}
	}
	return false
}

// Flush invalidates every line, returning the dirty line numbers in
// unspecified order.
func (c *Cache) Flush() []uint64 {
	var dirty []uint64
	numSets := c.setMask + 1
	for s := uint64(0); s < numSets; s++ {
		base := s * uint64(c.ways)
		for w := 0; w < c.ways; w++ {
			l := &c.lines[base+uint64(w)]
			if l.gen == c.gen && l.dirty {
				dirty = append(dirty, l.tag<<c.tagBits|s)
			}
			*l = line{} // gen 0: stale in every generation
		}
		if c.order != nil {
			c.order[s] = c.bootOrder
			c.orderGen[s] = c.gen
		}
	}
	return dirty
}
