package cache

import (
	"testing"

	"hmccoal/internal/trace"
)

func tinyHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	cfg := HierarchyConfig{
		CPUs: 2,
		L1:   Config{SizeBytes: 1 << 10, Ways: 2, LineBytes: 64, HitLatency: 4},
		L2:   Config{SizeBytes: 4 << 10, Ways: 4, LineBytes: 64, HitLatency: 12},
		LLC:  Config{SizeBytes: 16 << 10, Ways: 4, LineBytes: 64, HitLatency: 40},
	}
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewHierarchyValidation(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.CPUs = 0
	if _, err := NewHierarchy(cfg); err == nil {
		t.Error("zero CPUs accepted")
	}
	cfg = DefaultHierarchyConfig()
	cfg.L2.LineBytes = 128
	if _, err := NewHierarchy(cfg); err == nil {
		t.Error("mismatched line sizes accepted")
	}
	cfg = DefaultHierarchyConfig()
	cfg.CPUs = 257
	if err := cfg.Validate(); err == nil {
		t.Error("257 CPUs accepted past the uint8 trace format")
	}
}

func TestColdAccessMissesToMemory(t *testing.T) {
	h := tinyHierarchy(t)
	lat, misses, _ := h.Access(trace.Access{Addr: 0x1000, Size: 8, Kind: trace.Load, CPU: 0})
	if len(misses) != 1 {
		t.Fatalf("misses = %d, want 1", len(misses))
	}
	m := misses[0]
	if m.Line != 0x1000/64 || m.Write || m.WriteBack || m.Payload != 8 || m.CPU != 0 {
		t.Errorf("miss = %+v", m)
	}
	want := uint64(4 + 12 + 40)
	if lat != want {
		t.Errorf("latency = %d, want %d", lat, want)
	}
}

func TestHitsAfterFill(t *testing.T) {
	h := tinyHierarchy(t)
	a := trace.Access{Addr: 0x2000, Size: 8, Kind: trace.Load, CPU: 1}
	h.Access(a)
	lat, misses, _ := h.Access(a)
	if len(misses) != 0 {
		t.Fatalf("second access missed: %v", misses)
	}
	if lat != 4 {
		t.Errorf("L1 hit latency = %d, want 4", lat)
	}
}

func TestSharedLLCAcrossCores(t *testing.T) {
	h := tinyHierarchy(t)
	a := trace.Access{Addr: 0x3000, Size: 8, Kind: trace.Load, CPU: 0}
	h.Access(a)
	// Another core misses its private levels but hits the shared LLC:
	// no memory traffic.
	b := a
	b.CPU = 1
	lat, misses, _ := h.Access(b)
	if len(misses) != 0 {
		t.Fatalf("cross-core access went to memory: %v", misses)
	}
	if lat != 4+12+40 {
		t.Errorf("latency = %d, want LLC hit path", lat)
	}
}

func TestLineSplitAccess(t *testing.T) {
	h := tinyHierarchy(t)
	// 16 B access starting 8 B before a line boundary touches two lines.
	lat, misses, _ := h.Access(trace.Access{Addr: 64*10 - 8, Size: 16, Kind: trace.Load, CPU: 0})
	if len(misses) != 2 {
		t.Fatalf("misses = %d, want 2", len(misses))
	}
	if misses[0].Line != 9 || misses[1].Line != 10 {
		t.Errorf("miss lines = %d,%d want 9,10", misses[0].Line, misses[1].Line)
	}
	if misses[0].Payload != 8 || misses[1].Payload != 8 {
		t.Errorf("payloads = %d,%d want 8,8", misses[0].Payload, misses[1].Payload)
	}
	if lat != 2*(4+12+40) {
		t.Errorf("latency = %d", lat)
	}
}

func TestStoreMissIsStoreRequest(t *testing.T) {
	h := tinyHierarchy(t)
	_, misses, _ := h.Access(trace.Access{Addr: 0x4000, Size: 4, Kind: trace.Store, CPU: 0})
	if len(misses) != 1 || !misses[0].Write || misses[0].WriteBack {
		t.Fatalf("store miss = %+v", misses)
	}
}

func TestDirtyLLCEvictionEmitsWriteBack(t *testing.T) {
	h := tinyHierarchy(t)
	llcLines := h.Config().LLC.SizeBytes / 64
	// Dirty one line, then stream enough distinct lines through the same
	// LLC set space to evict it.
	h.Access(trace.Access{Addr: 0, Size: 8, Kind: trace.Store, CPU: 0})
	var sawWB bool
	for i := uint64(1); i <= llcLines*2; i++ {
		_, misses, _ := h.Access(trace.Access{Addr: i * 64, Size: 8, Kind: trace.Load, CPU: 0})
		for _, m := range misses {
			if m.WriteBack {
				if !m.Write {
					t.Fatal("writeback without Write bit")
				}
				if m.Payload != 64 {
					t.Fatalf("writeback payload = %d, want full line", m.Payload)
				}
				if m.Line == 0 {
					sawWB = true
				}
			}
		}
	}
	if !sawWB {
		t.Fatal("dirty line 0 never written back")
	}
}

func TestFenceIsTransparentToCaches(t *testing.T) {
	h := tinyHierarchy(t)
	lat, misses, _ := h.Access(trace.Access{Kind: trace.FenceOp, CPU: 0})
	if lat != 0 || misses != nil {
		t.Errorf("fence produced latency %d misses %v", lat, misses)
	}
}

func TestStatsAggregation(t *testing.T) {
	h := tinyHierarchy(t)
	for i := uint64(0); i < 100; i++ {
		h.Access(trace.Access{Addr: i * 64, Size: 8, Kind: trace.Load, CPU: uint8(i % 2)})
	}
	l1, l2 := h.LevelStats()
	if l1.Accesses != 100 {
		t.Errorf("L1 accesses = %d, want 100", l1.Accesses)
	}
	if l2.Accesses != l1.Misses {
		t.Errorf("L2 accesses %d != L1 misses %d", l2.Accesses, l1.Misses)
	}
	if llc := h.LLCStats(); llc.Accesses != l2.Misses {
		t.Errorf("LLC accesses %d != L2 misses %d", llc.Accesses, l2.Misses)
	}
}

func TestAccessRejectsBadCPU(t *testing.T) {
	h := tinyHierarchy(t)
	_, _, err := h.Access(trace.Access{Addr: 0, Size: 4, Kind: trace.Load, CPU: 9})
	if err == nil {
		t.Fatal("no error for out-of-range CPU")
	}
}

func TestDefaultHierarchyConfigBuilds(t *testing.T) {
	if _, err := NewHierarchy(DefaultHierarchyConfig()); err != nil {
		t.Fatal(err)
	}
}
