package cache

import (
	"fmt"

	"hmccoal/internal/trace"
)

// Miss is one line-granular request leaving the LLC toward memory.
type Miss struct {
	// Line is the absolute cache line number (Addr / LineBytes).
	Line uint64
	// Addr is the byte address of the first useful byte within the line
	// (the line base for write-backs).
	Addr uint64
	// Write is the request's T bit: store misses and write-backs are
	// stores, load misses are loads (paper §3.4).
	Write bool
	// WriteBack marks dirty-eviction traffic (always Write=true).
	WriteBack bool
	// Payload is the number of useful bytes the core wanted from this
	// line (the full line for write-backs). Drives Equation-1 accounting.
	Payload uint32
	// CPU is the core whose access triggered the miss.
	CPU uint8
}

// HierarchyConfig describes the paper's three-level setup.
type HierarchyConfig struct {
	CPUs int
	L1   Config // private, per core
	L2   Config // private, per core
	LLC  Config // shared
}

// DefaultHierarchyConfig returns the 12-CPU evaluation hierarchy: 32 KiB
// 8-way L1, 256 KiB 8-way L2, 16 MiB 16-way shared LLC, 64 B lines.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		CPUs: 12,
		L1:   Config{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, HitLatency: 4},
		L2:   Config{SizeBytes: 256 << 10, Ways: 8, LineBytes: 64, HitLatency: 12},
		LLC:  Config{SizeBytes: 16 << 20, Ways: 16, LineBytes: 64, HitLatency: 40},
	}
}

// Hierarchy is the full cache stack shared by the simulated cores.
type Hierarchy struct {
	cfg HierarchyConfig
	l1  []*Cache
	l2  []*Cache
	llc *Cache

	missBuf []Miss // reused across Access calls to keep the hot path allocation-free
}

// Validate checks the hierarchy shape without building it.
func (cfg HierarchyConfig) Validate() error {
	if cfg.CPUs <= 0 {
		return fmt.Errorf("cache: need at least one CPU")
	}
	if cfg.CPUs > 256 {
		// Traces address cores with a uint8.
		return fmt.Errorf("cache: %d CPUs exceeds the 256-core trace format limit", cfg.CPUs)
	}
	if cfg.L1.LineBytes != cfg.LLC.LineBytes || cfg.L2.LineBytes != cfg.LLC.LineBytes {
		return fmt.Errorf("cache: mismatched line sizes %d/%d/%d",
			cfg.L1.LineBytes, cfg.L2.LineBytes, cfg.LLC.LineBytes)
	}
	return nil
}

// NewHierarchy builds the stack. All levels must share one line size.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{cfg: cfg}
	for i := 0; i < cfg.CPUs; i++ {
		l1, err := New(cfg.L1)
		if err != nil {
			return nil, fmt.Errorf("cache: L1: %w", err)
		}
		l2, err := New(cfg.L2)
		if err != nil {
			return nil, fmt.Errorf("cache: L2: %w", err)
		}
		h.l1 = append(h.l1, l1)
		h.l2 = append(h.l2, l2)
	}
	llc, err := New(cfg.LLC)
	if err != nil {
		return nil, fmt.Errorf("cache: LLC: %w", err)
	}
	h.llc = llc
	return h, nil
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// Reset returns every level to its freshly built state in place. The tag
// arrays — the dominant allocation of the whole simulated system — are
// reused and invalidated generationally, so a stack reset is O(CPUs)
// instead of rebuilding (or even re-zeroing) megabytes of tags per run.
func (h *Hierarchy) Reset() {
	for i := range h.l1 {
		h.l1[i].Reset()
		h.l2[i].Reset()
	}
	h.llc.Reset()
	h.missBuf = h.missBuf[:0]
}

// LineBytes returns the common cache line size.
func (h *Hierarchy) LineBytes() uint32 { return h.cfg.LLC.LineBytes }

// Access runs one core access through the stack. It returns the hit
// latency accumulated walking the levels and the LLC-level misses the
// access produced (fetch misses for each missing line the access touches,
// plus any dirty write-backs evicted along the way).
//
// Accesses that span cache lines are split per line, as the load/store
// unit would split them.
//
// The returned miss slice is reused by the next Access call; callers that
// need it longer must copy it.
//
// An access naming a CPU outside the configured range is a malformed
// trace, reported as an error rather than a panic: traces are user input.
func (h *Hierarchy) Access(a trace.Access) (latency uint64, misses []Miss, err error) {
	if a.Kind == trace.FenceOp {
		return 0, nil, nil
	}
	misses = h.missBuf[:0]
	if int(a.CPU) >= h.cfg.CPUs {
		return 0, nil, fmt.Errorf("cache: access from CPU %d, hierarchy has %d", a.CPU, h.cfg.CPUs)
	}
	lineBytes := uint64(h.LineBytes())
	first := a.Addr / lineBytes
	last := (a.End() - 1) / lineBytes
	write := a.Kind == trace.Store
	for ln := first; ln <= last; ln++ {
		// Useful bytes of this access that land in line ln.
		lo, hi := ln*lineBytes, (ln+1)*lineBytes
		if a.Addr > lo {
			lo = a.Addr
		}
		if a.End() < hi {
			hi = a.End()
		}
		payload := uint32(hi - lo)

		latency += h.cfg.L1.HitLatency
		if hit, _, _ := h.l1[a.CPU].AccessValue(ln, write); hit {
			continue
		}
		// L1 victims are clean toward L2 in this model (L2 is inclusive
		// enough for the traffic shapes we simulate); only LLC-level dirty
		// evictions generate memory traffic.
		latency += h.cfg.L2.HitLatency
		if hit, _, _ := h.l2[a.CPU].AccessValue(ln, write); hit {
			continue
		}
		latency += h.cfg.LLC.HitLatency
		hit, wb, hasWB := h.llc.AccessValue(ln, write)
		if hit {
			continue
		}
		misses = append(misses, Miss{Line: ln, Addr: lo, Write: write, Payload: payload, CPU: a.CPU})
		if hasWB {
			misses = append(misses, Miss{
				Line:      wb,
				Addr:      wb * lineBytes,
				Write:     true,
				WriteBack: true,
				Payload:   h.LineBytes(),
				CPU:       a.CPU,
			})
		}
	}
	h.missBuf = misses
	return latency, misses, nil
}

// LLCStats returns the shared LLC counters.
func (h *Hierarchy) LLCStats() Stats { return h.llc.Stats() }

// LevelStats aggregates the private levels across cores.
func (h *Hierarchy) LevelStats() (l1, l2 Stats) {
	for i := range h.l1 {
		s := h.l1[i].Stats()
		l1.Accesses += s.Accesses
		l1.Hits += s.Hits
		l1.Misses += s.Misses
		l1.WriteBacks += s.WriteBacks
		s = h.l2[i].Stats()
		l2.Accesses += s.Accesses
		l2.Hits += s.Hits
		l2.Misses += s.Misses
		l2.WriteBacks += s.WriteBacks
	}
	return l1, l2
}
