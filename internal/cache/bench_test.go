package cache

import (
	"testing"

	"hmccoal/internal/trace"
)

// BenchmarkCacheAccess measures the single-level tag/LRU path: a strided
// footprint larger than the cache so hits and misses interleave.
func BenchmarkCacheAccess(b *testing.B) {
	c, err := New(Config{SizeBytes: 1 << 20, Ways: 16, LineBytes: 64, HitLatency: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i*7)%(1<<16), i&3 == 0)
	}
}

// BenchmarkHierarchyAccess measures the full three-level walk including
// miss-record generation, the hot call of the system simulator.
func BenchmarkHierarchyAccess(b *testing.B) {
	h, err := NewHierarchy(DefaultHierarchyConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := trace.Access{
			Addr: uint64(i*53) % (1 << 26) * 8,
			Size: 16,
			Kind: trace.Kind(i & 1), // alternate load/store
			CPU:  uint8(i % 12),
			Tick: uint64(i),
		}
		h.Access(a)
	}
}
