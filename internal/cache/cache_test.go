package cache

import (
	"math/rand"
	"testing"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func small(t *testing.T) *Cache {
	// 4 sets × 2 ways × 64 B lines = 512 B.
	return mustNew(t, Config{SizeBytes: 512, Ways: 2, LineBytes: 64, HitLatency: 1})
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 512, Ways: 2, LineBytes: 60},
		{SizeBytes: 512, Ways: 0, LineBytes: 64},
		{SizeBytes: 500, Ways: 2, LineBytes: 64},
		{SizeBytes: 0, Ways: 2, LineBytes: 64},
		{SizeBytes: 3 * 64 * 2, Ways: 2, LineBytes: 64}, // 3 sets
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: bad config %+v accepted", i, cfg)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := small(t)
	if hit, _ := c.Access(10, false); hit {
		t.Error("cold access hit")
	}
	if hit, _ := c.Access(10, false); !hit {
		t.Error("second access missed")
	}
	s := c.Stats()
	if s.Accesses != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small(t) // 4 sets, 2 ways — lines 0, 4, 8 share set 0
	c.Access(0, false)
	c.Access(4, false)
	c.Access(0, false) // 0 becomes MRU
	c.Access(8, false) // evicts 4 (LRU)
	if !c.Contains(0) || !c.Contains(8) {
		t.Error("expected lines 0 and 8 resident")
	}
	if c.Contains(4) {
		t.Error("line 4 should have been evicted")
	}
}

func TestDirtyEvictionProducesWriteBack(t *testing.T) {
	c := small(t)
	c.Access(0, true) // dirty
	c.Access(4, false)
	_, wb := c.Access(8, false) // evicts dirty line 0
	if wb == nil || *wb != 0 {
		t.Fatalf("writeback = %v, want line 0", wb)
	}
	if c.Stats().WriteBacks != 1 {
		t.Errorf("WriteBacks = %d, want 1", c.Stats().WriteBacks)
	}
	// Clean eviction must not write back.
	c2 := small(t)
	c2.Access(0, false)
	c2.Access(4, false)
	if _, wb := c2.Access(8, false); wb != nil {
		t.Errorf("clean eviction produced writeback %v", *wb)
	}
}

func TestWriteHitSetsDirty(t *testing.T) {
	c := small(t)
	c.Access(0, false) // fill clean
	c.Access(0, true)  // dirty it via hit
	c.Access(4, false)
	if _, wb := c.Access(8, false); wb == nil {
		t.Error("dirtied-on-hit line evicted without writeback")
	}
}

func TestFlush(t *testing.T) {
	c := small(t)
	c.Access(0, true)
	c.Access(1, false)
	c.Access(5, true)
	dirty := c.Flush()
	if len(dirty) != 2 {
		t.Fatalf("Flush returned %d dirty lines, want 2", len(dirty))
	}
	got := map[uint64]bool{}
	for _, l := range dirty {
		got[l] = true
	}
	if !got[0] || !got[5] {
		t.Errorf("dirty lines = %v", dirty)
	}
	for _, l := range []uint64{0, 1, 5} {
		if c.Contains(l) {
			t.Errorf("line %d survived Flush", l)
		}
	}
}

func TestMissRate(t *testing.T) {
	c := small(t)
	if c.Stats().MissRate() != 0 {
		t.Error("idle cache MissRate != 0")
	}
	c.Access(0, false)
	c.Access(0, false)
	c.Access(0, false)
	c.Access(0, false)
	if got := c.Stats().MissRate(); got != 0.25 {
		t.Errorf("MissRate = %v, want 0.25", got)
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 64 << 10, Ways: 8, LineBytes: 64, HitLatency: 1})
	lines := uint64(64 << 10 / 64)
	rng := rand.New(rand.NewSource(3))
	for i := uint64(0); i < lines; i++ {
		c.Access(i, false)
	}
	for i := 0; i < 10000; i++ {
		ln := rng.Uint64() % lines
		if hit, _ := c.Access(ln, false); !hit {
			t.Fatalf("capacity miss on resident working set, line %d", ln)
		}
	}
}

func TestStreamingThrashes(t *testing.T) {
	c := small(t)
	for i := uint64(0); i < 1000; i++ {
		c.Access(i, false)
	}
	if mr := c.Stats().MissRate(); mr < 0.9 {
		t.Errorf("streaming over tiny cache has miss rate %v, want ≈1", mr)
	}
}
