package mshr

import "testing"

// BenchmarkInsertComplete measures the second-phase coalescing steady
// state: insert a 4-line packet with four waiters, then complete every
// issued entry so the file never fills.
func BenchmarkInsertComplete(b *testing.B) {
	f, err := NewFile(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	targets := make([]Target, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		base := uint64(i%1024) * 4
		for j := range targets {
			targets[j] = Target{Line: base + uint64(j), Token: uint64(i*4 + j), Payload: 16}
		}
		out, err := f.Insert(base, 4, i&1 == 0, targets)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range out.Issued {
			if _, err := f.Complete(e); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkInsertMerge measures the Case-A merge path: waiters landing in
// an already outstanding entry.
func BenchmarkInsertMerge(b *testing.B) {
	f, err := NewFile(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	seed, err := f.Insert(0, 4, false, []Target{{Line: 0, Token: 0, Payload: 16}})
	if err != nil || len(seed.Issued) != 1 {
		b.Fatalf("seed insert: %v", err)
	}
	host := seed.Issued[0]
	targets := []Target{{Line: 1, Token: 1, Payload: 16}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		targets[0].Token = uint64(i)
		out, err := f.Insert(1, 1, false, targets)
		if err != nil {
			b.Fatal(err)
		}
		if out.MergedTargets != 1 {
			b.Fatalf("expected merge, got %+v", out)
		}
		// Drop the absorbed subentry so the host never fills.
		host.subs = host.subs[:1]
	}
}
