package mshr

import (
	"math/rand"
	"strings"
	"testing"

	"hmccoal/internal/invariant"
)

func newFile(t *testing.T) *File {
	t.Helper()
	f, err := NewFile(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func tgt(line uint64) Target { return Target{Line: line, Token: line, Payload: 8} }

func tgts(lines ...uint64) []Target {
	out := make([]Target, len(lines))
	for i, l := range lines {
		out[i] = tgt(l)
	}
	return out
}

func TestNewFileValidation(t *testing.T) {
	bad := []Config{
		{Entries: 0, LineBytes: 64, BlockBytes: 256},
		{Entries: 16, LineBytes: 60, BlockBytes: 256},
		{Entries: 16, LineBytes: 0, BlockBytes: 256},
		{Entries: 16, LineBytes: 64, BlockBytes: 32}, // block below line size
	}
	for i, cfg := range bad {
		if _, err := NewFile(cfg); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
}

func TestInsertValidation(t *testing.T) {
	f := newFile(t)
	if _, err := f.Insert(0, 5, false, tgts(0)); err == nil {
		t.Error("5-line request accepted")
	}
	if _, err := f.Insert(0, 0, false, nil); err == nil {
		t.Error("0-line request accepted")
	}
	if _, err := f.Insert(0, 2, false, tgts(5)); err == nil {
		t.Error("target outside range accepted")
	}
	// Lines 3,4 straddle the 256 B block boundary (4 lines per block).
	if _, err := f.Insert(3, 2, false, tgts(3, 4)); err == nil {
		t.Error("block-crossing request accepted")
	}
}

func TestFreshAllocationIssuesOneRequest(t *testing.T) {
	f := newFile(t)
	out, err := f.Insert(0xA8, 4, false, tgts(0xA8, 0xA9, 0xAA, 0xAB))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Issued) != 1 {
		t.Fatalf("Issued = %d entries, want 1", len(out.Issued))
	}
	e := out.Issued[0]
	if e.BaseLine() != 0xA8 || e.Lines() != 4 || e.Write() {
		t.Errorf("entry = base %#x lines %d write %v", e.BaseLine(), e.Lines(), e.Write())
	}
	if e.SizeClass() != 0b10 {
		t.Errorf("SizeClass = %b, want 10", e.SizeClass())
	}
	if len(e.Subs()) != 4 {
		t.Errorf("subentries = %d, want 4", len(e.Subs()))
	}
	if e.Payload() != 32 { // 4 targets × 8 B
		t.Errorf("Payload = %d, want 32", e.Payload())
	}
	if f.Free() != 15 {
		t.Errorf("Free = %d, want 15", f.Free())
	}
}

func TestSizeClassEncoding(t *testing.T) {
	f := newFile(t)
	for _, c := range []struct {
		lines int
		want  uint8
	}{{1, 0b00}, {2, 0b01}, {4, 0b10}} {
		base := uint64(c.lines) * 16
		lines := make([]uint64, c.lines)
		for i := range lines {
			lines[i] = base + uint64(i)
		}
		out, err := f.Insert(base, c.lines, false, tgts(lines...))
		if err != nil {
			t.Fatal(err)
		}
		if got := out.Issued[0].SizeClass(); got != c.want {
			t.Errorf("lines=%d SizeClass=%02b want %02b", c.lines, got, c.want)
		}
	}
}

func TestCaseASubsetMerge(t *testing.T) {
	// Figure 6 Case A: request 1 (128 B at 0xA8) is a subset of MSHR 1
	// (256 B at 0xA8): merged as two subentries with line IDs 00 and 01,
	// no new memory request.
	f := newFile(t)
	if _, err := f.Insert(0xA8, 4, false, tgts(0xA8, 0xA9, 0xAA, 0xAB)); err != nil {
		t.Fatal(err)
	}
	out, err := f.Insert(0xA8, 2, false, tgts(0xA8, 0xA9))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Issued) != 0 {
		t.Fatalf("subset merge issued %d requests, want 0", len(out.Issued))
	}
	if out.MergedTargets != 2 {
		t.Errorf("MergedTargets = %d, want 2", out.MergedTargets)
	}
	if out.Split {
		t.Error("subset merge flagged as split")
	}
	entries := f.Entries()
	var host *Entry
	for i := range entries {
		if entries[i].Valid() {
			host = &entries[i]
		}
	}
	if host == nil || len(host.Subs()) != 6 {
		t.Fatalf("host entry subentries = %v", host)
	}
	// The merged subentries carry line IDs 0 and 1 per Equation 2.
	ids := map[uint8]int{}
	for _, s := range host.Subs() {
		ids[s.LineID]++
	}
	if ids[0] != 2 || ids[1] != 2 || ids[2] != 1 || ids[3] != 1 {
		t.Errorf("line ID distribution = %v", ids)
	}
	if f.Stats().MergedTargets != 2 {
		t.Errorf("stats.MergedTargets = %d", f.Stats().MergedTargets)
	}
}

func TestCaseBPartialOverlapSplits(t *testing.T) {
	// Figure 6 Case B: MSHR 1 holds line 0xA8 only; request 2 wants
	// 0xA8–0xA9. The overlapped line merges, the remainder allocates a
	// fresh entry.
	f := newFile(t)
	if _, err := f.Insert(0xA8, 1, false, tgts(0xA8)); err != nil {
		t.Fatal(err)
	}
	out, err := f.Insert(0xA8, 2, false, tgts(0xA8, 0xA9))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Split {
		t.Error("partial overlap not flagged as split")
	}
	if out.MergedTargets != 1 {
		t.Errorf("MergedTargets = %d, want 1", out.MergedTargets)
	}
	if len(out.Issued) != 1 {
		t.Fatalf("Issued = %d, want 1", len(out.Issued))
	}
	if e := out.Issued[0]; e.BaseLine() != 0xA9 || e.Lines() != 1 {
		t.Errorf("remainder entry = base %#x lines %d, want 0xA9/1", e.BaseLine(), e.Lines())
	}
	if f.Stats().SplitRequests != 1 {
		t.Errorf("SplitRequests = %d, want 1", f.Stats().SplitRequests)
	}
}

func TestTwoSidedRemainder(t *testing.T) {
	// Entry covers lines 1-2 of a block; a full-block request (0-3) must
	// merge the middle and allocate separate entries for lines 0 and 3.
	f := newFile(t)
	if _, err := f.Insert(1, 2, false, tgts(1, 2)); err != nil {
		t.Fatal(err)
	}
	out, err := f.Insert(0, 4, false, tgts(0, 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if out.MergedTargets != 2 {
		t.Errorf("MergedTargets = %d, want 2", out.MergedTargets)
	}
	if len(out.Issued) != 2 {
		t.Fatalf("Issued = %d entries, want 2 (lines 0 and 3)", len(out.Issued))
	}
	bases := map[uint64]int{}
	for _, e := range out.Issued {
		bases[e.BaseLine()] = e.Lines()
	}
	if bases[0] != 1 || bases[3] != 1 {
		t.Errorf("issued bases = %v", bases)
	}
}

func TestThreeLineRangeSplitsLegally(t *testing.T) {
	// A 3-line retry range must be packetized as 2+1 lines, never 3.
	f := newFile(t)
	out, err := f.Insert(0, 3, false, tgts(0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Issued) != 2 {
		t.Fatalf("Issued = %d entries, want 2", len(out.Issued))
	}
	if out.Issued[0].Lines() != 2 || out.Issued[1].Lines() != 1 {
		t.Errorf("split = %d+%d lines, want 2+1", out.Issued[0].Lines(), out.Issued[1].Lines())
	}
}

func TestDisableMergeAllocatesAlways(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableMerge = true
	f, err := NewFile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Insert(0, 1, false, tgts(0)); err != nil {
		t.Fatal(err)
	}
	out, err := f.Insert(0, 1, false, tgts(0))
	if err != nil {
		t.Fatal(err)
	}
	if out.MergedTargets != 0 || len(out.Issued) != 1 {
		t.Errorf("DisableMerge still merged: %+v", out)
	}
}

func TestTypeBitPreventsCrossTypeMerge(t *testing.T) {
	// §3.4: the T bit participates in comparisons, so a store never merges
	// into an outstanding load entry.
	f := newFile(t)
	if _, err := f.Insert(0, 1, false, tgts(0)); err != nil {
		t.Fatal(err)
	}
	out, err := f.Insert(0, 1, true, []Target{{Line: 0, Token: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if out.MergedTargets != 0 || len(out.Issued) != 1 {
		t.Errorf("cross-type merge happened: %+v", out)
	}
	if !out.Issued[0].Write() {
		t.Error("store entry lost its T bit")
	}
}

func TestSubentryCapacityStalls(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxSubentries = 2
	f, err := NewFile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Insert(0, 1, false, tgts(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Insert(0, 1, false, tgts(0)); err != nil { // second sub
		t.Fatal(err)
	}
	out, err := f.Insert(0, 1, false, tgts(0)) // no slot left
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Unplaced) != 1 || out.MergedTargets != 0 {
		t.Errorf("expected unplaced waiter, got %+v", out)
	}
	if f.Stats().FullStalls == 0 {
		t.Error("FullStalls not counted")
	}
}

func TestFileFullReturnsUnplaced(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Entries = 2
	f, err := NewFile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Insert(0, 1, false, tgts(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Insert(8, 1, false, tgts(8)); err != nil {
		t.Fatal(err)
	}
	if !f.Full() {
		t.Fatal("file should be full")
	}
	out, err := f.Insert(16, 2, false, tgts(16, 17))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Issued) != 0 || len(out.Unplaced) != 2 {
		t.Errorf("full file outcome = %+v", out)
	}
	// Merging into existing entries must still work while full (§4.2).
	out, err = f.Insert(0, 1, false, tgts(0))
	if err != nil {
		t.Fatal(err)
	}
	if out.MergedTargets != 1 || len(out.Unplaced) != 0 {
		t.Errorf("merge-while-full outcome = %+v", out)
	}
}

func TestCompleteFreesAndReturnsSubs(t *testing.T) {
	f := newFile(t)
	out, err := f.Insert(4, 2, false, []Target{
		{Line: 4, Token: 100, Payload: 8},
		{Line: 5, Token: 200, Payload: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	e := out.Issued[0]
	subs, err := f.Complete(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("Complete returned %d subs, want 2", len(subs))
	}
	tokens := map[uint64]uint8{}
	for _, s := range subs {
		tokens[s.Token] = s.LineID
	}
	if tokens[100] != 0 || tokens[200] != 1 {
		t.Errorf("sub tokens/lineIDs = %v", tokens)
	}
	if f.Free() != 16 {
		t.Errorf("Free = %d after Complete, want 16", f.Free())
	}
	if f.Stats().Completions != 1 {
		t.Errorf("Completions = %d", f.Stats().Completions)
	}
}

func TestCompleteInvalidViolation(t *testing.T) {
	f := newFile(t)
	out, _ := f.Insert(0, 1, false, tgts(0))
	e := out.Issued[0]
	if _, err := f.Complete(e); err != nil {
		t.Fatal(err)
	}
	_, err := f.Complete(e)
	v, ok := invariant.As(err)
	if !ok {
		t.Fatalf("double Complete = %v, want invariant violation", err)
	}
	if v.Rule != invariant.RuleMSHRComplete {
		t.Fatalf("violation rule = %q, want %q", v.Rule, invariant.RuleMSHRComplete)
	}
	if !strings.Contains(v.Snapshot, "mshr{") {
		t.Fatalf("violation missing file snapshot: %q", v.Snapshot)
	}
}

func TestCheckLeaks(t *testing.T) {
	f := newFile(t)
	out, err := f.Insert(0, 2, false, []Target{{Line: 0, Token: 1}, {Line: 1, Token: 2}})
	if err != nil {
		t.Fatal(err)
	}
	err = f.CheckLeaks(99)
	v, ok := invariant.As(err)
	if !ok || v.Rule != invariant.RuleMSHRLeak {
		t.Fatalf("CheckLeaks with live entry = %v, want %s violation", err, invariant.RuleMSHRLeak)
	}
	if v.Tick != 99 {
		t.Fatalf("violation tick = %d, want 99", v.Tick)
	}
	for _, e := range out.Issued {
		if _, err := f.Complete(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.CheckLeaks(100); err != nil {
		t.Fatalf("CheckLeaks on drained file = %v", err)
	}
}

// TestCheckerRecordsViolations verifies an attached checker accumulates the
// violations that File methods return.
func TestCheckerRecordsViolations(t *testing.T) {
	f := newFile(t)
	c := invariant.New()
	f.SetChecker(c)
	out, _ := f.Insert(0, 1, false, tgts(0))
	e := out.Issued[0]
	f.Complete(e)
	f.Complete(e) // double completion
	if err := c.Err(); err == nil {
		t.Fatal("checker did not record the double completion")
	}
	if n := len(c.Violations()); n != 1 {
		t.Fatalf("checker has %d violations, want 1", n)
	}
}

func TestLookupLine(t *testing.T) {
	f := newFile(t)
	if _, err := f.Insert(8, 2, true, []Target{{Line: 8}, {Line: 9}}); err != nil {
		t.Fatal(err)
	}
	if f.LookupLine(9, true) == nil {
		t.Error("LookupLine missed covered store line")
	}
	if f.LookupLine(9, false) != nil {
		t.Error("LookupLine matched across T bit")
	}
	if f.LookupLine(10, true) != nil {
		t.Error("LookupLine matched uncovered line")
	}
}

func TestEquationTwoAddressReconstruction(t *testing.T) {
	// Equation 2: Subentry.addr = Entry.addr + LineID × LineSize.
	f := newFile(t)
	lineBytes := uint64(f.Config().LineBytes)
	out, err := f.Insert(0xA8, 4, false, tgts(0xAA))
	if err != nil {
		t.Fatal(err)
	}
	e := out.Issued[0]
	s := e.Subs()[0]
	addr := e.BaseLine()*lineBytes + uint64(s.LineID)*lineBytes
	if addr != 0xAA*lineBytes {
		t.Errorf("reconstructed addr = %#x, want %#x", addr, 0xAA*lineBytes)
	}
}

// TestRandomizedConservation drives the file with random traffic and checks
// the waiter-conservation invariant: every inserted target is eventually
// merged, issued or reported unplaced — never lost or duplicated.
func TestRandomizedConservation(t *testing.T) {
	f := newFile(t)
	rng := rand.New(rand.NewSource(17))
	var inserted, delivered, unplaced int
	live := map[int]*Entry{}
	nextToken := uint64(0)
	for i := 0; i < 5000; i++ {
		if rng.Intn(3) == 0 && len(live) > 0 {
			// Complete a random live entry.
			for idx, e := range live {
				subs, err := f.Complete(e)
				if err != nil {
					t.Fatal(err)
				}
				delivered += len(subs)
				delete(live, idx)
				break
			}
			continue
		}
		lines := []int{1, 2, 4}[rng.Intn(3)]
		block := uint64(rng.Intn(64)) * 4
		off := 0
		if lines < 4 {
			off = rng.Intn(4 - lines + 1)
		}
		base := block + uint64(off)
		targets := make([]Target, lines)
		for j := range targets {
			targets[j] = Target{Line: base + uint64(j), Token: nextToken, Payload: uint32(rng.Intn(64))}
			nextToken++
		}
		out, err := f.Insert(base, lines, rng.Intn(4) == 0, targets)
		if err != nil {
			t.Fatal(err)
		}
		inserted += len(targets)
		unplaced += len(out.Unplaced)
		for _, e := range out.Issued {
			live[e.Index()] = e
		}
	}
	for idx, e := range live {
		subs, err := f.Complete(e)
		if err != nil {
			t.Fatal(err)
		}
		delivered += len(subs)
		delete(live, idx)
	}
	merged := int(f.Stats().MergedTargets)
	// Merged targets are delivered through their host entry's Complete, so
	// delivered already includes them.
	if delivered+unplaced != inserted {
		t.Fatalf("conservation broken: delivered %d + unplaced %d != inserted %d (merged %d)",
			delivered, unplaced, inserted, merged)
	}
	if f.Free() != f.Config().Entries {
		t.Fatalf("Free = %d after drain, want %d", f.Free(), f.Config().Entries)
	}
	s := f.Stats()
	if s.Allocations != s.Completions {
		t.Fatalf("allocations %d != completions %d after drain", s.Allocations, s.Completions)
	}
}
