// Package mshr implements the dynamic Miss Status Holding Registers of
// paper §3.2.3 and the second-phase coalescing of §3.5.
//
// A conventional MSHR entry tracks outstanding misses to exactly one cache
// line. The paper extends each entry with a 2-bit size field so one entry
// can track a coalesced request of 1, 2 or 4 cache lines (64/128/256 B HMC
// packets), and extends each subentry with a 2-bit line ID selecting which
// of those lines the subentry's target is waiting on:
//
//	Subentry.addr = Entry.addr + LineID × LineSize   (Equation 2)
//
// Second-phase coalescing merges an incoming coalesced request against the
// outstanding entries (all compared simultaneously by the inherent
// hardware comparators):
//
//	Case A (Figure 6): the request's lines are a subset of one entry —
//	the whole request merges as subentries; no memory access is issued.
//	Case B (Figure 6): the request partially overlaps an entry — the
//	overlapped lines merge as subentries, the rest is re-packetized into
//	new entries.
//	Otherwise a fresh entry is allocated, which issues a memory access.
package mshr

import (
	"fmt"
	"math/bits"
	"strings"

	"hmccoal/internal/invariant"
)

// Size-class limits from §3.2.3: with 64 B lines and HMC 2.1 the coalesced
// request spans 1, 2 or 4 lines (encoded 00/01/10 in the size segment).
const MaxLines = 4

// Target identifies one waiter on one cache line. Line is the absolute
// line number (Addr / LineSize); Token is an opaque caller value returned
// when the line's data arrives. Payload is the number of useful bytes the
// original core accesses wanted from this line, used for the Equation-1
// bandwidth-efficiency accounting.
type Target struct {
	Line    uint64
	Token   uint64
	Payload uint32
}

// Sub is a subentry: a waiter expressed relative to its entry. Payload
// carries the waiter's useful-byte count so a failed entry's span can be
// reconstructed into fresh Targets and re-issued.
type Sub struct {
	LineID  uint8 // which line of the entry, per Equation 2
	Token   uint64
	Payload uint32
}

// Entry is one dynamic MSHR entry: an outstanding coalesced memory request.
type Entry struct {
	valid    bool
	write    bool // the T bit of §3.2.3
	baseLine uint64
	lines    uint8 // 1, 2 or 4
	subs     []Sub
	payload  uint64 // total useful bytes wanted by this entry's targets
	index    int
}

// Valid reports whether the entry is in use.
func (e *Entry) Valid() bool { return e.valid }

// Write reports the entry's T bit (true = store).
func (e *Entry) Write() bool { return e.write }

// BaseLine returns the absolute number of the first cache line covered.
func (e *Entry) BaseLine() uint64 { return e.baseLine }

// Lines returns how many consecutive cache lines the entry covers.
func (e *Entry) Lines() int { return int(e.lines) }

// SizeClass returns the 2-bit size encoding of §3.2.3: 0b00 for one line,
// 0b01 for two, 0b10 for four.
func (e *Entry) SizeClass() uint8 {
	return uint8(bits.TrailingZeros8(e.lines))
}

// Subs returns the entry's subentries. The slice must not be modified.
func (e *Entry) Subs() []Sub { return e.subs }

// Payload returns the total useful bytes wanted by this entry's waiters.
func (e *Entry) Payload() uint64 { return e.payload }

// Index returns the entry's slot in the file.
func (e *Entry) Index() int { return e.index }

// covers reports whether the entry covers the absolute line.
func (e *Entry) covers(line uint64) bool {
	return e.valid && line >= e.baseLine && line < e.baseLine+uint64(e.lines)
}

// Config parameterizes the MSHR file.
type Config struct {
	// Entries is the number of MSHR entries (paper: 16 in the LLC).
	Entries int
	// MaxSubentries bounds waiters per entry; 0 means the paper-typical 8.
	MaxSubentries int
	// LineBytes is the cache line size (paper: 64 B).
	LineBytes uint32
	// BlockBytes is the HMC block size a request may not cross (256 B).
	BlockBytes uint32
	// DisableMerge turns off second-phase coalescing: every insert
	// allocates fresh entries. Used to evaluate the DMC unit in isolation
	// (Figure 8's "first phase only" series).
	DisableMerge bool
}

// DefaultConfig returns the evaluation setup: 16 entries, 8 subentries,
// 64 B lines, 256 B HMC blocks.
func DefaultConfig() Config {
	return Config{Entries: 16, MaxSubentries: 8, LineBytes: 64, BlockBytes: 256}
}

// File is the dynamic MSHR file.
type File struct {
	cfg     Config
	entries []Entry
	free    int
	stats   Stats
	check   *invariant.Checker

	// Scratch buffers reused across Insert calls so the steady state
	// allocates nothing. keptBuf backs the unmerged-target working set;
	// issuedBuf and unplacedBuf back Outcome.Issued/Unplaced, which are
	// therefore only valid until the next Insert.
	keptBuf     []Target
	issuedBuf   []*Entry
	unplacedBuf []Target
}

// Stats counts second-phase coalescing activity.
type Stats struct {
	// Allocations is the number of entries allocated — each one issues a
	// memory request, so this equals requests reaching the HMC.
	Allocations uint64
	// MergedTargets counts waiters absorbed into existing entries: misses
	// that did NOT become memory requests thanks to the second phase.
	MergedTargets uint64
	// SplitRequests counts Case-B partial overlaps that forced a request
	// to be broken apart.
	SplitRequests uint64
	// FullStalls counts placement attempts deferred because no entry (or
	// no subentry slot) was available.
	FullStalls uint64
	// Completions counts freed entries.
	Completions uint64
}

// Validate checks the configuration. A zero MaxSubentries is legal — it
// means the paper-typical 8.
func (cfg Config) Validate() error {
	switch {
	case cfg.Entries <= 0:
		return fmt.Errorf("mshr: need at least one entry")
	case cfg.MaxSubentries < 0:
		return fmt.Errorf("mshr: negative subentry bound %d", cfg.MaxSubentries)
	case cfg.LineBytes == 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0:
		return fmt.Errorf("mshr: line size %d not a power of two", cfg.LineBytes)
	case cfg.BlockBytes < cfg.LineBytes:
		return fmt.Errorf("mshr: block size %d below line size %d", cfg.BlockBytes, cfg.LineBytes)
	}
	return nil
}

// NewFile builds an MSHR file.
func NewFile(cfg Config) (*File, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxSubentries == 0 {
		cfg.MaxSubentries = 8
	}
	f := &File{cfg: cfg, entries: make([]Entry, cfg.Entries), free: cfg.Entries}
	for i := range f.entries {
		f.entries[i].index = i
		// Fixed subentry backing, reused across the entry's lifetimes.
		f.entries[i].subs = make([]Sub, 0, cfg.MaxSubentries)
	}
	return f, nil
}

// Config returns the file configuration.
func (f *File) Config() Config { return f.cfg }

// SetChecker attaches a runtime invariant checker. A nil checker (the
// default) disables continuous checking at zero cost.
func (f *File) SetChecker(c *invariant.Checker) { f.check = c }

// Free returns the number of unallocated entries.
func (f *File) Free() int { return f.free }

// Full reports whether every entry is in use.
func (f *File) Full() bool { return f.free == 0 }

// Stats returns the accumulated counters.
func (f *File) Stats() Stats { return f.stats }

// Outcome reports what happened to one Insert.
type Outcome struct {
	// Issued lists the entries newly allocated by this insert; the caller
	// must dispatch one memory request per entry. The slice is backed by a
	// buffer the file reuses: it is valid only until the next Insert.
	Issued []*Entry
	// MergedTargets is how many of the request's waiters were absorbed
	// into pre-existing entries.
	MergedTargets int
	// Unplaced holds the waiters that could not be merged or allocated
	// because the file (or a subentry list) was full. The caller retries
	// them later, preserving FIFO order from the CRQ. Like Issued, the
	// slice is reused by the next Insert; callers that need it longer must
	// copy it.
	Unplaced []Target
	// Split reports whether a Case-B partial overlap occurred.
	Split bool
}

// Insert performs second-phase coalescing for one coalesced request. The
// request's waiters live in the line range [baseLine, baseLine+lines);
// lines bounds the range (1–4) and need not itself be a legal packet size —
// entries allocated for the remainder are always split into 1/2/4-line
// packets. write is the T bit. Several waiters may share a line; targets
// outside the range are rejected.
func (f *File) Insert(baseLine uint64, lines int, write bool, targets []Target) (Outcome, error) {
	if lines <= 0 || lines > MaxLines {
		return Outcome{}, fmt.Errorf("mshr: invalid line count %d", lines)
	}
	linesPerBlock := uint64(f.cfg.BlockBytes / f.cfg.LineBytes)
	if baseLine/linesPerBlock != (baseLine+uint64(lines)-1)/linesPerBlock {
		return Outcome{}, fmt.Errorf("mshr: request [%d,%d) crosses HMC block boundary", baseLine, baseLine+uint64(lines))
	}
	for _, t := range targets {
		if t.Line < baseLine || t.Line >= baseLine+uint64(lines) {
			return Outcome{}, fmt.Errorf("mshr: target line %d outside [%d,%d)", t.Line, baseLine, baseLine+uint64(lines))
		}
	}

	var out Outcome
	out.Issued = f.issuedBuf[:0]
	out.Unplaced = f.unplacedBuf[:0]
	remaining := targets

	// Phase 1: merge waiters into existing same-type entries that cover
	// their lines (Cases A and B). All entries are compared at once in
	// hardware; sequentially scanning is equivalent.
	anyMerged := false
	kept := f.keptBuf[:0]
	for _, t := range remaining {
		var e *Entry
		if !f.cfg.DisableMerge {
			e = f.lookup(t.Line, write)
		}
		if e == nil {
			kept = append(kept, t)
			continue
		}
		if len(e.subs) >= f.cfg.MaxSubentries {
			// No subentry slot: the waiter must wait in the CRQ.
			out.Unplaced = append(out.Unplaced, t)
			f.stats.FullStalls++
			continue
		}
		e.subs = append(e.subs, Sub{LineID: uint8(t.Line - e.baseLine), Token: t.Token, Payload: t.Payload})
		e.payload += uint64(t.Payload)
		anyMerged = true
		out.MergedTargets++
		f.stats.MergedTargets++
	}
	f.keptBuf = kept
	remaining = kept

	// Detect a Case-B split: some lines merged, some did not.
	if anyMerged && len(remaining) > 0 {
		out.Split = true
		f.stats.SplitRequests++
	}

	// Phase 2: re-packetize the leftover lines into contiguous runs and
	// allocate fresh entries. Runs are split greedily into legal sizes
	// (4, 2, 1 lines).
	var runs, chunks [MaxLines]run
	nRuns := lineRuns(remaining, baseLine, lines, &runs)
	for ri := 0; ri < nRuns; ri++ {
		nChunks := splitRun(runs[ri].base, runs[ri].len, &chunks)
		for ci := 0; ci < nChunks; ci++ {
			chunk := chunks[ci]
			if f.free == 0 {
				// File packed: everything not yet placed is returned.
				for _, t := range remaining {
					if t.Line >= chunk.base && !placed(out, t) {
						out.Unplaced = append(out.Unplaced, t)
					}
				}
				f.stats.FullStalls++
				f.issuedBuf = out.Issued
				f.unplacedBuf = out.Unplaced
				return out, nil
			}
			e := f.alloc(chunk.base, chunk.len, write)
			if e == nil {
				// free > 0 yet no invalid entry exists: the free counter
				// disagrees with the valid bits. Report the corruption as a
				// structured violation instead of tearing the process down.
				f.issuedBuf = out.Issued
				f.unplacedBuf = out.Unplaced
				return out, f.check.Record(invariant.Violatef(
					invariant.RuleMSHRAlloc, 0, f.Snapshot(),
					"alloc on full file (free counter claims %d free)", f.free))
			}
			for _, t := range remaining {
				if t.Line >= chunk.base && t.Line < chunk.base+uint64(chunk.len) {
					e.subs = append(e.subs, Sub{LineID: uint8(t.Line - chunk.base), Token: t.Token, Payload: t.Payload})
					e.payload += uint64(t.Payload)
				}
			}
			out.Issued = append(out.Issued, e)
		}
	}
	f.issuedBuf = out.Issued
	f.unplacedBuf = out.Unplaced
	return out, nil
}

// placed reports whether target t was assigned to an issued entry already.
func placed(out Outcome, t Target) bool {
	for _, e := range out.Issued {
		if e.covers(t.Line) {
			return true
		}
	}
	return false
}

// lookup finds a valid entry of matching type covering the line. Matching
// includes the T bit: with the §3.4 address extension a load never merges
// into a store entry.
func (f *File) lookup(line uint64, write bool) *Entry {
	for i := range f.entries {
		e := &f.entries[i]
		if e.covers(line) && e.write == write {
			return e
		}
	}
	return nil
}

// LookupLine returns the valid entry covering the line with the given type,
// or nil. Exposed for the coalescer's bypass path.
func (f *File) LookupLine(line uint64, write bool) *Entry { return f.lookup(line, write) }

// alloc claims an invalid entry, or returns nil if — despite the free
// counter — none exists (accounting corruption the caller reports).
func (f *File) alloc(baseLine uint64, lines int, write bool) *Entry {
	for i := range f.entries {
		e := &f.entries[i]
		if !e.valid {
			// Field-wise reset keeps the entry's fixed subentry backing.
			e.valid = true
			e.write = write
			e.baseLine = baseLine
			e.lines = uint8(lines)
			e.subs = e.subs[:0]
			e.payload = 0
			f.free--
			f.stats.Allocations++
			return e
		}
	}
	return nil
}

// Complete frees the entry and returns its subentries' tokens so the
// caller can notify the waiters (Equation 2 reconstructs each address).
// The returned slice aliases the entry's reusable backing: it is valid
// only until the entry is allocated again. Completing an entry that is
// not live is a double completion and returns a structured violation.
func (f *File) Complete(e *Entry) ([]Sub, error) {
	if !e.valid {
		return nil, f.check.Record(invariant.Violatef(
			invariant.RuleMSHRComplete, 0, f.Snapshot(),
			"Complete on invalid entry %d", e.index))
	}
	subs := e.subs
	e.valid = false
	e.write = false
	e.baseLine = 0
	e.lines = 0
	e.payload = 0
	f.free++
	f.stats.Completions++
	return subs, nil
}

// CheckLeaks audits the end-of-run law: after a Drain every entry must be
// free and the free counter must agree with the entries' valid bits. It
// returns nil when the file is clean.
func (f *File) CheckLeaks(tick uint64) error {
	live := 0
	for i := range f.entries {
		if f.entries[i].valid {
			live++
		}
	}
	if live != 0 {
		return f.check.Record(invariant.Violatef(
			invariant.RuleMSHRLeak, tick, f.Snapshot(),
			"%d MSHR entr%s still allocated after drain", live, plural(live, "y", "ies")))
	}
	if f.free != len(f.entries) {
		return f.check.Record(invariant.Violatef(
			invariant.RuleMSHRAccounting, tick, f.Snapshot(),
			"free counter %d disagrees with %d entries all invalid", f.free, len(f.entries)))
	}
	return nil
}

// Snapshot renders the live entries for violation diagnostics.
func (f *File) Snapshot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mshr{entries=%d free=%d allocs=%d completions=%d",
		len(f.entries), f.free, f.stats.Allocations, f.stats.Completions)
	for i := range f.entries {
		e := &f.entries[i]
		if e.valid {
			fmt.Fprintf(&b, " [%d: line=%d lines=%d write=%v subs=%d]",
				e.index, e.baseLine, e.lines, e.write, len(e.subs))
		}
	}
	b.WriteString("}")
	return b.String()
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// Entries returns the live view of the file for inspection.
func (f *File) Entries() []Entry {
	out := make([]Entry, len(f.entries))
	copy(out, f.entries)
	return out
}

type run struct {
	base uint64
	len  int
}

// lineRuns groups the targets' distinct lines into maximal contiguous runs
// within [baseLine, baseLine+lines), filling out and returning the count.
// A request spans at most MaxLines lines, so the run count is bounded and
// the result lives on the caller's stack.
func lineRuns(targets []Target, baseLine uint64, lines int, out *[MaxLines]run) int {
	var present [MaxLines]bool
	for _, t := range targets {
		present[t.Line-baseLine] = true
	}
	n := 0
	for i := 0; i < lines; i++ {
		if !present[i] {
			continue
		}
		j := i
		for j < lines && present[j] {
			j++
		}
		out[n] = run{base: baseLine + uint64(i), len: j - i}
		n++
		i = j
	}
	return n
}

// splitRun breaks a contiguous run into legal entry sizes (4, 2, 1 lines),
// filling out and returning the count. A 4-line chunk is only possible for
// a full run of 4, which — because coalesced requests never cross HMC
// blocks — is necessarily block-aligned.
func splitRun(base uint64, length int, out *[MaxLines]run) int {
	n := 0
	for length > 0 {
		size := 1
		switch {
		case length >= 4:
			size = 4
		case length >= 2:
			size = 2
		}
		out[n] = run{base: base, len: size}
		n++
		base += uint64(size)
		length -= size
	}
	return n
}
