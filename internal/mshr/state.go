package mshr

import "fmt"

// entryState is one entry's captured fields. Subentries are copied by
// value; the fixed backing array of the live entry is reused on restore.
type entryState struct {
	valid    bool
	write    bool
	baseLine uint64
	lines    uint8
	subs     []Sub
	payload  uint64
}

// FileState is an opaque deep copy of the MSHR file's mutable state.
type FileState struct {
	entries []entryState
	free    int
	stats   Stats
}

// SaveState deep-copies the file's mutable state. The scratch buffers
// backing Outcome views are working storage, not state, and are excluded.
func (f *File) SaveState() *FileState {
	st := &FileState{
		entries: make([]entryState, len(f.entries)),
		free:    f.free,
		stats:   f.stats,
	}
	for i := range f.entries {
		e := &f.entries[i]
		st.entries[i] = entryState{
			valid:    e.valid,
			write:    e.write,
			baseLine: e.baseLine,
			lines:    e.lines,
			subs:     append([]Sub(nil), e.subs...),
			payload:  e.payload,
		}
	}
	return st
}

// RestoreState replays a snapshot into the file. The file must have the
// same entry count as the one that produced the snapshot. Each entry's
// fixed subentry backing array and index are preserved, so the restored
// file is allocation-identical to the original.
func (f *File) RestoreState(st *FileState) error {
	if len(st.entries) != len(f.entries) {
		return fmt.Errorf("mshr: snapshot has %d entries, file %d", len(st.entries), len(f.entries))
	}
	for i := range f.entries {
		e, se := &f.entries[i], &st.entries[i]
		if len(se.subs) > cap(e.subs) {
			return fmt.Errorf("mshr: snapshot entry %d has %d subentries, file caps at %d",
				i, len(se.subs), cap(e.subs))
		}
		e.valid = se.valid
		e.write = se.write
		e.baseLine = se.baseLine
		e.lines = se.lines
		e.subs = append(e.subs[:0], se.subs...)
		e.payload = se.payload
	}
	f.free = st.free
	f.stats = st.stats
	return nil
}

// EntryAt returns the entry at index i (the value Entry.Index reports), so
// state snapshots can store entry references as stable indices and
// re-point them after a restore.
func (f *File) EntryAt(i int) *Entry { return &f.entries[i] }
