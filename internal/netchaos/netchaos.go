// Package netchaos injects deterministic, seeded network faults into
// net.Conn streams, listeners and dialers — the dsweep wire's analogue of
// internal/fault's link-fault injector. It exists to prove the
// distributed sweep plane survives a hostile network: wrap the
// coordinator's listener or a worker's dialer in an Injector and a full
// campaign must still finish byte-identical to a local run, because every
// injected reset, stalled dial, latency spike, short write or corrupted
// frame is a failure the protocol already recovers from (reconnect,
// requeue, CRC reject).
//
// Decisions are counter-based, mirroring internal/fault: every draw is a
// pure function of (seed, connection serial, operation counter, fault
// kind) hashed through splitmix64, so a given connection's fault sequence
// replays identically for a fixed seed regardless of wall-clock timing.
// (Across a whole campaign the mapping of connections to serials depends
// on accept/dial order, so chaos runs are reproducible per connection —
// the campaign's *output* is identical for a different reason: the sweep
// plane delivers every grid index exactly once under any fault pattern.)
package netchaos

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sync/atomic"
	"time"
)

// Config parameterizes chaos injection. The zero value injects nothing.
type Config struct {
	// Seed keys every fault decision.
	Seed uint64
	// DialFail is the per-attempt probability that a dial fails before a
	// connection exists (the coordinator's address unreachable for one
	// attempt — the worker's dial retry loop must absorb it).
	DialFail float64
	// Reset is the per-I/O-operation probability that the connection dies
	// mid-stream: the op fails with ErrInjectedReset and the underlying
	// connection is closed, so the peer sees a hard loss too.
	Reset float64
	// ShortWrite is the per-write probability that only a prefix of the
	// buffer reaches the wire before the connection dies — the torn-frame
	// case a crashed sender produces.
	ShortWrite float64
	// Corrupt is the per-write probability that one byte of the buffer is
	// flipped in flight. The bytes still arrive, so only the receiver's
	// frame CRC stands between the flip and silent corruption.
	Corrupt float64
	// Delay, when positive, adds a deterministic latency draw in
	// [0, Delay) to every I/O operation — the slow-peer case that read
	// and write deadlines must bound.
	Delay time.Duration
}

// Enabled reports whether any fault can ever be injected.
func (c Config) Enabled() bool {
	return c.DialFail > 0 || c.Reset > 0 || c.ShortWrite > 0 || c.Corrupt > 0 || c.Delay > 0
}

// Validate rejects configurations that cannot describe probabilities.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"dialfail", c.DialFail},
		{"reset", c.Reset},
		{"shortwrite", c.ShortWrite},
		{"corrupt", c.Corrupt},
	} {
		if math.IsNaN(p.v) || p.v < 0 || p.v > 1 {
			return fmt.Errorf("netchaos: %s rate %v outside [0,1]", p.name, p.v)
		}
	}
	if c.Delay < 0 {
		return fmt.Errorf("netchaos: negative delay %v", c.Delay)
	}
	return nil
}

// Injected faults carry distinguishable errors so tests (and logs) can
// tell a chaos reset from a genuine transport failure.
var (
	// ErrInjectedReset reports a connection killed mid-operation.
	ErrInjectedReset = errors.New("netchaos: injected connection reset")
	// ErrInjectedDialFail reports a dial attempt failed by the injector.
	ErrInjectedDialFail = errors.New("netchaos: injected dial failure")
	// ErrInjectedShortWrite reports a write torn after a prefix.
	ErrInjectedShortWrite = errors.New("netchaos: injected short write")
)

// Stats counts the faults an Injector has fired, so a chaos test can
// assert the campaign it just passed actually weathered something.
type Stats struct {
	Conns       uint64 // connections wrapped
	DialFails   uint64
	Resets      uint64
	ShortWrites uint64
	Corrupts    uint64
	Delays      uint64
}

// Fault kinds salt the per-operation draw so one operation's independent
// decisions (reset? delay? corrupt?) use distinct hash points.
const (
	kindReset uint64 = iota + 1
	kindShortWrite
	kindCorrupt
	kindDelay
	kindDialFail
	kindDelayAmount
	kindCorruptSite
	kindShortLen
)

// Injector makes seeded per-operation fault decisions. It is safe for
// concurrent use; one Injector typically wraps every connection of one
// side of a campaign.
type Injector struct {
	seed       uint64
	enabled    bool
	delayMax   time.Duration
	dialFail   uint64
	reset      uint64
	shortWrite uint64
	corrupt    uint64

	connSerial atomic.Uint64
	dialSerial atomic.Uint64
	stats      struct {
		conns, dialFails, resets, shortWrites, corrupts, delays atomic.Uint64
	}
}

// New bakes cfg's probabilities into compare thresholds.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{
		seed:       cfg.Seed,
		enabled:    cfg.Enabled(),
		delayMax:   cfg.Delay,
		dialFail:   threshold(cfg.DialFail),
		reset:      threshold(cfg.Reset),
		shortWrite: threshold(cfg.ShortWrite),
		corrupt:    threshold(cfg.Corrupt),
	}
	return in, nil
}

// Stats snapshots the injected-fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Conns:       in.stats.conns.Load(),
		DialFails:   in.stats.dialFails.Load(),
		Resets:      in.stats.resets.Load(),
		ShortWrites: in.stats.shortWrites.Load(),
		Corrupts:    in.stats.corrupts.Load(),
		Delays:      in.stats.delays.Load(),
	}
}

// Wrap returns c with chaos injection on every Read and Write. The
// wrapped connection forwards deadlines and Close to the original.
func (in *Injector) Wrap(c net.Conn) net.Conn {
	if !in.enabled {
		return c
	}
	in.stats.conns.Add(1)
	return &conn{Conn: c, in: in, id: in.connSerial.Add(1)}
}

// Listen wraps ln so every accepted connection carries chaos injection.
func (in *Injector) Listen(ln net.Listener) net.Listener {
	if !in.enabled {
		return ln
	}
	return &listener{Listener: ln, in: in}
}

// Dialer wraps a dial function with injected dial failures and chaos on
// the returned connections. The base function performs one real dial
// attempt; retry policy stays with the caller.
func (in *Injector) Dialer(base func(ctx context.Context, addr string) (net.Conn, error)) func(ctx context.Context, addr string) (net.Conn, error) {
	if !in.enabled {
		return base
	}
	return func(ctx context.Context, addr string) (net.Conn, error) {
		attempt := in.dialSerial.Add(1)
		if in.hit(in.dialFail, attempt, 0, kindDialFail) {
			in.stats.dialFails.Add(1)
			return nil, fmt.Errorf("%w (attempt %d)", ErrInjectedDialFail, attempt)
		}
		c, err := base(ctx, addr)
		if err != nil {
			return nil, err
		}
		return in.Wrap(c), nil
	}
}

type listener struct {
	net.Listener
	in *Injector
}

func (ln *listener) Accept() (net.Conn, error) {
	c, err := ln.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return ln.in.Wrap(c), nil
}

// conn is one chaos-wrapped connection. Reads and writes share one
// operation counter, so the fault sequence is a function of the
// connection's I/O order alone.
type conn struct {
	net.Conn
	in  *Injector
	id  uint64
	ops atomic.Uint64
}

func (c *conn) Read(b []byte) (int, error) {
	op := c.ops.Add(1)
	c.in.maybeDelay(c.id, op)
	if c.in.hit(c.in.reset, c.id, op, kindReset) {
		c.in.stats.resets.Add(1)
		c.Conn.Close()
		return 0, ErrInjectedReset
	}
	return c.Conn.Read(b)
}

func (c *conn) Write(b []byte) (int, error) {
	op := c.ops.Add(1)
	c.in.maybeDelay(c.id, op)
	switch {
	case c.in.hit(c.in.reset, c.id, op, kindReset):
		c.in.stats.resets.Add(1)
		c.Conn.Close()
		return 0, ErrInjectedReset
	case len(b) > 1 && c.in.hit(c.in.shortWrite, c.id, op, kindShortWrite):
		// A prefix reaches the wire, then the connection dies: the peer
		// holds a torn frame and a dead stream, exactly like a sender
		// crashed mid-Write.
		c.in.stats.shortWrites.Add(1)
		n := 1 + int(c.in.draw(c.id, op, kindShortLen)%uint64(len(b)-1))
		if wn, err := c.Conn.Write(b[:n]); err != nil {
			c.Conn.Close()
			return wn, err
		}
		c.Conn.Close()
		return n, ErrInjectedShortWrite
	case len(b) > 0 && c.in.hit(c.in.corrupt, c.id, op, kindCorrupt):
		// Flip one byte in flight; only the receiver's CRC can tell.
		c.in.stats.corrupts.Add(1)
		buf := make([]byte, len(b))
		copy(buf, b)
		site := int(c.in.draw(c.id, op, kindCorruptSite) % uint64(len(buf)))
		buf[site] ^= 1 << (c.in.draw(c.id, op, kindCorruptSite+8) % 8)
		return c.Conn.Write(buf)
	}
	return c.Conn.Write(b)
}

// maybeDelay injects the deterministic latency draw for one operation.
func (in *Injector) maybeDelay(connID, op uint64) {
	if in.delayMax <= 0 {
		return
	}
	d := time.Duration(in.draw(connID, op, kindDelayAmount) % uint64(in.delayMax))
	if d > 0 {
		in.stats.delays.Add(1)
		time.Sleep(d)
	}
}

// hit decides one fault for one operation.
func (in *Injector) hit(thresh, connID, op, kind uint64) bool {
	if thresh == 0 {
		return false
	}
	return in.draw(connID, op, kind) < thresh
}

// draw hashes an operation's identity into a uniform 64-bit value, the
// same counter-based construction as internal/fault.
func (in *Injector) draw(connID, op, kind uint64) uint64 {
	h := splitmix64(in.seed ^ connID)
	h = splitmix64(h ^ op<<8 ^ kind)
	return h
}

// threshold maps a probability to the 64-bit value below which a uniform
// draw counts as a hit.
func threshold(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	v := math.Ldexp(p, 64)
	if v >= math.Ldexp(1, 64) {
		return math.MaxUint64
	}
	return uint64(v)
}

// splitmix64 is the finalizer of the SplitMix64 generator.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
