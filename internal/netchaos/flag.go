package netchaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseFlag decodes the shared -chaos CLI syntax: comma-separated
// key=value pairs, e.g. "seed=1,reset=0.02,corrupt=0.01,delay=2ms".
// An empty string yields the zero Config (injection disabled). The result
// is validated before it is returned.
func ParseFlag(s string) (Config, error) {
	var cfg Config
	if s == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return cfg, fmt.Errorf("netchaos: %q is not key=value", kv)
		}
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseUint(val, 0, 64)
		case "dialfail":
			cfg.DialFail, err = strconv.ParseFloat(val, 64)
		case "reset":
			cfg.Reset, err = strconv.ParseFloat(val, 64)
		case "shortwrite":
			cfg.ShortWrite, err = strconv.ParseFloat(val, 64)
		case "corrupt":
			cfg.Corrupt, err = strconv.ParseFloat(val, 64)
		case "delay":
			cfg.Delay, err = time.ParseDuration(val)
		default:
			return cfg, fmt.Errorf("netchaos: unknown key %q (want seed, dialfail, reset, shortwrite, corrupt, delay)", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("netchaos: %s: %w", key, err)
		}
	}
	return cfg, cfg.Validate()
}
