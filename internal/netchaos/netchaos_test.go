package netchaos

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// nopConn is a net.Conn whose operations always succeed, so tests can
// script an exact operation sequence and observe only the injector.
type nopConn struct {
	net.Conn
	closed bool
}

func (c *nopConn) Read(b []byte) (int, error)  { return len(b), nil }
func (c *nopConn) Write(b []byte) (int, error) { return len(b), nil }
func (c *nopConn) Close() error                { c.closed = true; return nil }

// faultTrace runs a fixed op sequence through a fresh injector and
// records which ops fault, as a reproducibility fingerprint.
func faultTrace(t *testing.T, cfg Config) []bool {
	t.Helper()
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := in.Wrap(&nopConn{})
	var trace []bool
	buf := make([]byte, 64)
	for op := 0; op < 200; op++ {
		var err error
		if op%2 == 0 {
			_, err = c.Write(buf)
		} else {
			_, err = c.Read(buf)
		}
		trace = append(trace, err != nil)
		if err != nil {
			// The injected reset closed the conn; keep driving the same
			// chaos wrapper — draws depend only on (seed, conn, op).
			c = in.Wrap(&nopConn{})
		}
	}
	return trace
}

func TestFaultSequenceDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Reset: 0.1, ShortWrite: 0.1}
	a := faultTrace(t, cfg)
	b := faultTrace(t, cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault sequences diverge at op %d", i)
		}
	}
	faults := 0
	for _, f := range a {
		if f {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("no faults fired at 10% rates over 200 ops")
	}
	cfg.Seed = 8
	c := faultTrace(t, cfg)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed change did not change the fault sequence")
	}
}

func TestDisabledInjectorPassesThrough(t *testing.T) {
	in, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	base := &nopConn{}
	if in.Wrap(base) != net.Conn(base) {
		t.Fatal("disabled injector wrapped the connection")
	}
	if s := in.Stats(); s != (Stats{}) {
		t.Fatalf("disabled injector counted stats: %+v", s)
	}
}

func TestResetKillsConnection(t *testing.T) {
	in, err := New(Config{Seed: 1, Reset: 1})
	if err != nil {
		t.Fatal(err)
	}
	base := &nopConn{}
	c := in.Wrap(base)
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("want an injected reset, got %v", err)
	}
	if !base.closed {
		t.Fatal("reset did not close the underlying connection")
	}
	if in.Stats().Resets != 1 {
		t.Fatalf("stats: %+v", in.Stats())
	}
}

func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	in, err := New(Config{Seed: 3, Corrupt: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := in.Wrap(client)

	msg := bytes.Repeat([]byte{0xAA}, 128)
	go func() {
		c.SetWriteDeadline(time.Now().Add(5 * time.Second))
		c.Write(msg)
	}()
	got := make([]byte, len(msg))
	server.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatal(err)
	}
	diffBits := 0
	for i := range msg {
		x := msg[i] ^ got[i]
		for ; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1", diffBits)
	}
	if in.Stats().Corrupts != 1 {
		t.Fatalf("stats: %+v", in.Stats())
	}
}

func TestShortWriteTearsTheStream(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	in, err := New(Config{Seed: 5, ShortWrite: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := in.Wrap(client)

	msg := bytes.Repeat([]byte{1}, 64)
	wrote := make(chan int, 1)
	go func() {
		c.SetWriteDeadline(time.Now().Add(5 * time.Second))
		n, err := c.Write(msg)
		if !errors.Is(err, ErrInjectedShortWrite) {
			t.Errorf("want an injected short write, got %v", err)
		}
		wrote <- n
	}()
	server.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, _ := io.ReadAll(server)
	n := <-wrote
	if n <= 0 || n >= len(msg) {
		t.Fatalf("short write reported %d of %d bytes", n, len(msg))
	}
	if len(got) != n {
		t.Fatalf("peer received %d bytes, writer reported %d", len(got), n)
	}
}

func TestDialerInjectsFailuresAndWraps(t *testing.T) {
	in, err := New(Config{Seed: 2, DialFail: 1})
	if err != nil {
		t.Fatal(err)
	}
	dialed := 0
	dial := in.Dialer(func(ctx context.Context, addr string) (net.Conn, error) {
		dialed++
		return &nopConn{}, nil
	})
	if _, err := dial(context.Background(), "x:1"); !errors.Is(err, ErrInjectedDialFail) {
		t.Fatalf("want an injected dial failure, got %v", err)
	}
	if dialed != 0 {
		t.Fatal("injected dial failure still dialed")
	}

	in2, err := New(Config{Seed: 2, Reset: 1})
	if err != nil {
		t.Fatal(err)
	}
	dial2 := in2.Dialer(func(ctx context.Context, addr string) (net.Conn, error) {
		return &nopConn{}, nil
	})
	c, err := dial2(context.Background(), "x:1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrInjectedReset) {
		t.Fatal("dialed connection is not chaos-wrapped")
	}
}

func TestListenerWrapsAcceptedConns(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	in, err := New(Config{Seed: 9, Reset: 1})
	if err != nil {
		t.Fatal(err)
	}
	cln := in.Listen(ln)
	defer cln.Close()

	go func() {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err == nil {
			defer c.Close()
			c.Write([]byte("hello"))
		}
	}()
	conn, err := cln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Read(make([]byte, 8)); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("accepted connection is not chaos-wrapped: %v", err)
	}
}

func TestDelayInjectsLatency(t *testing.T) {
	in, err := New(Config{Seed: 4, Delay: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	c := in.Wrap(&nopConn{})
	for op := 0; op < 32; op++ {
		c.Write([]byte("x"))
	}
	if in.Stats().Delays == 0 {
		t.Fatal("no latency injected over 32 ops")
	}
}

func TestValidateRejectsBadRates(t *testing.T) {
	for name, cfg := range map[string]Config{
		"reset>1":        {Reset: 1.5},
		"negative":       {Corrupt: -0.1},
		"negative delay": {Delay: -time.Second},
	} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, cfg)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted %+v", name, cfg)
		}
	}
}

func TestParseFlag(t *testing.T) {
	cfg, err := ParseFlag("seed=12,reset=0.02,corrupt=0.01,shortwrite=0.005,dialfail=0.25,delay=2ms")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 12, Reset: 0.02, Corrupt: 0.01, ShortWrite: 0.005, DialFail: 0.25, Delay: 2 * time.Millisecond}
	if cfg != want {
		t.Fatalf("parsed %+v, want %+v", cfg, want)
	}
	if cfg, err := ParseFlag(""); err != nil || cfg.Enabled() {
		t.Fatalf("empty flag: (%+v, %v)", cfg, err)
	}
	for _, bad := range []string{"reset", "reset=x", "bogus=1", "reset=2"} {
		if _, err := ParseFlag(bad); err == nil {
			t.Errorf("ParseFlag accepted %q", bad)
		}
	}
}
