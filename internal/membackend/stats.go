package membackend

import (
	"hmccoal/internal/hmc"
	"hmccoal/internal/invariant"
)

// statsCore is the statistics engine the non-HMC backends share. It keeps
// the same hmc.Stats shape and the same FLIT-based link accounting
// (request + response FLITs × FlitBytes) as the HMC device, so
// Equation-1 bandwidth efficiency compares apples to apples across
// backends. VaultRequests has a single bucket — one channel.
type statsCore struct {
	sizeHist []uint64 // indexed by PacketBytes/FlitBytes, like hmc.Device
	stats    hmc.Stats

	// Byte-conservation ledger, maintained only with a checker attached.
	// Without faults every issued byte must be delivered.
	check         *invariant.Checker
	chkIssuedB    uint64
	chkDeliveredB uint64
}

// statsCoreState is the snapshot form of a statsCore.
type statsCoreState struct {
	sizeHist      []uint64
	stats         hmc.Stats
	chkIssuedB    uint64
	chkDeliveredB uint64
}

func (s *statsCore) init(cfg hmc.Config) {
	s.sizeHist = make([]uint64, cfg.BlockBytes/hmc.FlitBytes+1)
	s.stats = hmc.Stats{VaultRequests: make([]uint64, 1)}
}

// noteRequest records the accounting every submitted packet pays up front:
// the request counters and the request packet's serialization on the link.
func (s *statsCore) noteRequest(tick uint64, req hmc.Request) {
	s.stats.Requests++
	if req.Write {
		s.stats.Writes++
	} else {
		s.stats.Reads++
	}
	s.sizeHist[req.PacketBytes/hmc.FlitBytes]++
	reqFlits := uint64(hmc.RequestFlits(req.Write, req.PacketBytes))
	s.stats.TransferredBytes += reqFlits * hmc.FlitBytes
	if s.check != nil {
		s.chkIssuedB += uint64(req.PacketBytes)
	}
}

// noteDone records a delivered response: the response serialization and the
// payload/requested byte totals that feed the efficiency metrics.
func (s *statsCore) noteDone(done uint64, req hmc.Request, respFlits int) {
	s.stats.TransferredBytes += uint64(respFlits) * hmc.FlitBytes
	s.stats.PacketBytes += uint64(req.PacketBytes)
	s.stats.RequestedBytes += uint64(req.RequestedBytes)
	if s.check != nil {
		s.chkDeliveredB += uint64(req.PacketBytes)
	}
	if done > s.stats.LastDone {
		s.stats.LastDone = done
	}
}

// statsCopy materializes the exported Stats view, mirroring
// hmc.Device.Stats: the SizeHist map is built fresh and VaultRequests is
// deep-copied so callers can hold the result across further traffic.
func (s *statsCore) statsCopy() hmc.Stats {
	out := s.stats
	out.SizeHist = make(map[uint32]uint64)
	for i, n := range s.sizeHist {
		if n != 0 {
			out.SizeHist[uint32(i)*hmc.FlitBytes] = n
		}
	}
	out.VaultRequests = append([]uint64(nil), s.stats.VaultRequests...)
	return out
}

func (s *statsCore) reset() {
	for i := range s.sizeHist {
		s.sizeHist[i] = 0
	}
	s.stats = hmc.Stats{VaultRequests: make([]uint64, 1)}
	s.chkIssuedB, s.chkDeliveredB = 0, 0
}

func (s *statsCore) save() statsCoreState {
	st := statsCoreState{
		sizeHist:      append([]uint64(nil), s.sizeHist...),
		stats:         s.stats,
		chkIssuedB:    s.chkIssuedB,
		chkDeliveredB: s.chkDeliveredB,
	}
	st.stats.VaultRequests = append([]uint64(nil), s.stats.VaultRequests...)
	return st
}

func (s *statsCore) restore(st statsCoreState) error {
	copy(s.sizeHist, st.sizeHist)
	vaults := s.stats.VaultRequests
	s.stats = st.stats
	s.stats.VaultRequests = vaults
	copy(s.stats.VaultRequests, st.stats.VaultRequests)
	s.chkIssuedB = st.chkIssuedB
	s.chkDeliveredB = st.chkDeliveredB
	return nil
}

// checkConservation audits that every issued byte was delivered — these
// backends have no fault paths, so the ledger must balance exactly.
func (s *statsCore) checkConservation(tick uint64) error {
	if s.check == nil {
		return nil
	}
	if s.chkIssuedB != s.chkDeliveredB {
		return s.check.Record(invariant.Violatef(invariant.RuleByteConservation, tick,
			"backend{issued=%dB delivered=%dB}",
			"issued %d B != delivered %d B",
			s.chkIssuedB, s.chkDeliveredB))
	}
	return nil
}
