package membackend

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"hmccoal/internal/fault"
	"hmccoal/internal/hmc"
)

func TestParseKind(t *testing.T) {
	cases := []struct {
		in   string
		want Kind
		err  bool
	}{
		{"", KindHMC, false},
		{"hmc", KindHMC, false},
		{"ddr", KindDDR, false},
		{"ideal", KindIdeal, false},
		{"HMC", 0, true},
		{"dram", 0, true},
	}
	for _, c := range cases {
		got, err := ParseKind(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseKind(%q): err = %v, want err = %v", c.in, err, c.err)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseKind(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if err := Kind(99).Validate(); err == nil {
		t.Errorf("Kind(99).Validate() accepted an unknown kind")
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for _, name := range Kinds() {
		k, err := ParseKind(name)
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", name, err)
		}
		if k.String() != name {
			t.Errorf("ParseKind(%q).String() = %q", name, k.String())
		}
		if err := k.Validate(); err != nil {
			t.Errorf("%v.Validate(): %v", k, err)
		}
	}
}

func TestFactoryKinds(t *testing.T) {
	for _, k := range []Kind{KindHMC, KindDDR, KindIdeal} {
		b, err := New(k, hmc.DefaultConfig())
		if err != nil {
			t.Fatalf("New(%v): %v", k, err)
		}
		if b.Kind() != k {
			t.Errorf("New(%v).Kind() = %v", k, b.Kind())
		}
	}
	if _, err := New(Kind(42), hmc.DefaultConfig()); err == nil {
		t.Errorf("New(42) accepted an unknown kind")
	}
}

func TestFaultConfigHMCOnly(t *testing.T) {
	cfg := hmc.DefaultConfig()
	cfg.Fault = fault.Config{Seed: 1, BER: 1e-6}
	if _, err := New(KindHMC, cfg); err != nil {
		t.Fatalf("hmc backend rejected fault config: %v", err)
	}
	for _, k := range []Kind{KindDDR, KindIdeal} {
		_, err := New(k, cfg)
		if err == nil {
			t.Fatalf("New(%v) accepted a fault config", k)
		}
		if !strings.Contains(err.Error(), "HMC-only") {
			t.Errorf("New(%v) error %q does not mention HMC-only", k, err)
		}
	}
}

// submitPattern drives a deterministic mixed read/write stream and returns
// the completion ticks.
func submitPattern(t *testing.T, b Backend, n int) []uint64 {
	t.Helper()
	done := make([]uint64, 0, n)
	tick := uint64(0)
	for i := 0; i < n; i++ {
		req := hmc.Request{
			Addr:           uint64(i) * 256 * 7,
			PacketBytes:    uint32(16 << (i % 5)), // 16..256
			Write:          i%3 == 0,
			RequestedBytes: uint32(16 << (i % 5) / 2),
		}
		comp, err := b.SubmitPacket(tick, req)
		if err != nil {
			t.Fatalf("SubmitPacket %d: %v", i, err)
		}
		done = append(done, comp.Done)
		tick += 3
	}
	return done
}

func TestBackendsDeterministic(t *testing.T) {
	for _, k := range []Kind{KindHMC, KindDDR, KindIdeal} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			a, err := New(k, hmc.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			b, err := New(k, hmc.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			da := submitPattern(t, a, 200)
			db := submitPattern(t, b, 200)
			if !reflect.DeepEqual(da, db) {
				t.Fatalf("%v backend is not deterministic", k)
			}
			sa, sb := a.Stats(), b.Stats()
			if !reflect.DeepEqual(sa, sb) {
				t.Fatalf("%v stats differ between identical runs:\n%+v\n%+v", k, sa, sb)
			}
			if sa.Requests != 200 {
				t.Errorf("%v: Requests = %d, want 200", k, sa.Requests)
			}
			if sa.TransferredBytes == 0 || sa.RequestedBytes == 0 {
				t.Errorf("%v: zero byte accounting: %+v", k, sa)
			}
		})
	}
}

func TestBackendValidation(t *testing.T) {
	for _, k := range []Kind{KindHMC, KindDDR, KindIdeal} {
		b, err := New(k, hmc.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		bad := []hmc.Request{
			{Addr: 0, PacketBytes: 8},                       // below minimum
			{Addr: 0, PacketBytes: 512},                     // above block
			{Addr: 0, PacketBytes: 48 + 8},                  // not FLIT aligned
			{Addr: 192, PacketBytes: 128},                   // crosses block
			{Addr: 0, PacketBytes: 64, RequestedBytes: 100}, // requested > packet
		}
		for i, req := range bad {
			if _, err := b.SubmitPacket(0, req); err == nil {
				t.Errorf("%v: bad request %d (%+v) accepted", k, i, req)
			}
		}
	}
}

func TestIdealLatencyIsLoadIndependent(t *testing.T) {
	b, err := New(KindIdeal, hmc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	req := hmc.Request{Addr: 0, PacketBytes: 64, RequestedBytes: 64}
	first, err := b.SubmitPacket(100, req)
	if err != nil {
		t.Fatal(err)
	}
	lat := first.Done - 100
	// Same-tick resubmissions to the same address must see zero contention.
	for i := 0; i < 50; i++ {
		comp, err := b.SubmitPacket(100, req)
		if err != nil {
			t.Fatal(err)
		}
		if comp.Done-100 != lat {
			t.Fatalf("ideal backend latency changed under load: %d vs %d", comp.Done-100, lat)
		}
	}
}

func TestDDRSlowerThanIdeal(t *testing.T) {
	ddr, err := New(KindDDR, hmc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := New(KindIdeal, hmc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dd := submitPattern(t, ddr, 500)
	di := submitPattern(t, ideal, 500)
	if dd[len(dd)-1] <= di[len(di)-1] {
		t.Errorf("ddr backend (%d) not slower than ideal (%d) under load",
			dd[len(dd)-1], di[len(di)-1])
	}
	if ddr.Stats().BankConflicts == 0 {
		t.Errorf("ddr backend saw no bank conflicts on a 500-request burst")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindHMC, KindDDR, KindIdeal} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			a, err := New(k, hmc.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			submitPattern(t, a, 100)
			snap := a.Snapshot()
			// Continue the original past the snapshot point, then restore a
			// fresh backend and replay the identical suffix on both.
			fresh, err := New(k, hmc.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.Restore(snap); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			da := submitPattern(t, a, 100)
			df := submitPattern(t, fresh, 100)
			if !reflect.DeepEqual(da, df) {
				t.Fatalf("%v: post-restore completions diverge", k)
			}
			sa, sf := a.Stats(), fresh.Stats()
			if !reflect.DeepEqual(sa, sf) {
				t.Fatalf("%v: post-restore stats diverge:\n%+v\n%+v", k, sa, sf)
			}
			if fmt.Sprintf("%v", a.DebugLinks()) != fmt.Sprintf("%v", fresh.DebugLinks()) {
				t.Fatalf("%v: DebugLinks diverge after restore:\n%s\n%s", k, a.DebugLinks(), fresh.DebugLinks())
			}
		})
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	for _, k := range []Kind{KindHMC, KindDDR, KindIdeal} {
		b, err := New(k, hmc.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		submitPattern(t, b, 50)
		snap := b.Snapshot()
		before := b.Stats()
		submitPattern(t, b, 50) // mutate past the snapshot
		if err := b.Restore(snap); err != nil {
			t.Fatalf("%v: Restore: %v", k, err)
		}
		after := b.Stats()
		if !reflect.DeepEqual(before, after) {
			t.Fatalf("%v: snapshot aliased live state:\n%+v\n%+v", k, before, after)
		}
	}
}

func TestRestoreKindMismatch(t *testing.T) {
	kinds := []Kind{KindHMC, KindDDR, KindIdeal}
	snaps := make([]Snapshot, len(kinds))
	for i, k := range kinds {
		b, err := New(k, hmc.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		snaps[i] = b.Snapshot()
	}
	for i, k := range kinds {
		b, err := New(k, hmc.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		for j := range kinds {
			err := b.Restore(snaps[j])
			if (i == j) != (err == nil) {
				t.Errorf("restore %v snapshot into %v backend: err = %v", kinds[j], k, err)
			}
		}
	}
}

func TestHMCDeviceUnwrap(t *testing.T) {
	b, err := New(KindHMC, hmc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if dev, ok := HMCDevice(b); !ok || dev == nil {
		t.Errorf("HMCDevice failed to unwrap the hmc backend")
	}
	d, err := New(KindDDR, hmc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := HMCDevice(d); ok {
		t.Errorf("HMCDevice unwrapped a ddr backend")
	}
}

func TestResetClearsBackends(t *testing.T) {
	for _, k := range []Kind{KindHMC, KindDDR, KindIdeal} {
		b, err := New(k, hmc.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := New(k, hmc.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		submitPattern(t, b, 100)
		b.Reset()
		if got, want := b.Stats(), fresh.Stats(); !reflect.DeepEqual(got, want) {
			t.Errorf("%v: Reset left stats dirty:\n%+v\nwant fresh:\n%+v", k, got, want)
		}
		// Post-reset traffic must match a fresh device exactly.
		db := submitPattern(t, b, 100)
		df := submitPattern(t, fresh, 100)
		if !reflect.DeepEqual(db, df) {
			t.Errorf("%v: post-Reset completions differ from a fresh backend", k)
		}
	}
}
