// Package membackend puts the simulated memory device behind a pluggable
// interface, so the evaluation can swap the memory technology under the
// coalescer without touching the simulator's tick loop. Three backends are
// provided:
//
//	hmc    the full HMC 2.1 device model (internal/hmc): vaults, banks,
//	       serial links, token flow control, link fault injection
//	ddr    a conventional-DIMM baseline: the same banked DRAM timing but a
//	       single channel with one shared data bus — the "conventional
//	       memory" side of the paper's comparison
//	ideal  a zero-contention device: fixed latency, unlimited parallelism —
//	       the upper bound any coalescing scheme could reach
//
// All backends speak the HMC packet interface (hmc.Request/Completion) and
// maintain the same statistics shape (hmc.Stats), so every metric and table
// in the evaluation renders identically whichever backend is plugged in.
// Fault injection is an HMC link property: the ddr and ideal backends
// reject configurations that enable it.
package membackend

import (
	"fmt"

	"hmccoal/internal/hmc"
	"hmccoal/internal/invariant"
)

// Kind selects a backend implementation. The zero value is the HMC device,
// so configurations that predate backend selection are unchanged.
type Kind int

// Backend kinds.
const (
	// KindHMC is the full HMC 2.1 device model.
	KindHMC Kind = iota
	// KindDDR is the DDR-like single-channel banked baseline.
	KindDDR
	// KindIdeal is the zero-contention fixed-latency device.
	KindIdeal
)

// String names the kind as the CLI -backend flag spells it.
func (k Kind) String() string {
	switch k {
	case KindHMC:
		return "hmc"
	case KindDDR:
		return "ddr"
	case KindIdeal:
		return "ideal"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Validate rejects kinds no factory case exists for.
func (k Kind) Validate() error {
	switch k {
	case KindHMC, KindDDR, KindIdeal:
		return nil
	}
	return fmt.Errorf("membackend: unknown backend kind %d", int(k))
}

// ParseKind maps a -backend flag value to a Kind. The empty string means
// the default HMC device.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "hmc":
		return KindHMC, nil
	case "ddr":
		return KindDDR, nil
	case "ideal":
		return KindIdeal, nil
	}
	return 0, fmt.Errorf("membackend: unknown backend %q (have hmc, ddr, ideal)", s)
}

// Kinds lists the recognized backend names for usage messages.
func Kinds() []string { return []string{"hmc", "ddr", "ideal"} }

// Snapshot is an opaque deep copy of one backend's mutable state. It can
// only be restored into a backend of the same kind and configuration.
type Snapshot interface{ backendSnapshot() }

// Backend is the memory device under the coalescer. Implementations are
// single-goroutine, tick-driven and deterministic: the same submission
// sequence produces the same completions and statistics.
type Backend interface {
	// Kind identifies the implementation.
	Kind() Kind
	// Submit presents one packet and returns its perfect-link completion
	// tick; see hmc.Device.Submit for the fault-mode caveats.
	Submit(tick uint64, req hmc.Request) (uint64, error)
	// SubmitPacket presents one packet and reports when — and whether —
	// the response reaches the host.
	SubmitPacket(tick uint64, req hmc.Request) (hmc.Completion, error)
	// Stats returns a copy of the accumulated device statistics.
	Stats() hmc.Stats
	// Reset clears all device state and statistics.
	Reset()
	// Snapshot deep-copies the backend's mutable state; Restore replays a
	// snapshot into a backend of identical kind and configuration.
	Snapshot() Snapshot
	Restore(Snapshot) error
	// DebugLinks renders the transport state for watchdog diagnostics.
	DebugLinks() string
	// SetChecker attaches a runtime invariant checker (nil disables).
	SetChecker(*invariant.Checker)
	// CheckConservation audits the end-of-run byte-conservation law.
	CheckConservation(tick uint64) error
}

// New builds a backend of the given kind from the shared device
// configuration. Every kind honors the geometry and timing fields it
// models; only the HMC backend accepts fault injection.
func New(kind Kind, cfg hmc.Config) (Backend, error) {
	switch kind {
	case KindHMC:
		dev, err := hmc.NewDevice(cfg)
		if err != nil {
			return nil, err
		}
		return &hmcBackend{dev: dev}, nil
	case KindDDR:
		return newDDR(cfg)
	case KindIdeal:
		return newIdeal(cfg)
	}
	return nil, fmt.Errorf("membackend: unknown backend kind %d", int(kind))
}

// hmcBackend adapts *hmc.Device to the Backend interface. It is a pure
// forwarder; hmc cannot implement Backend itself without importing this
// package for the Snapshot type.
type hmcBackend struct {
	dev *hmc.Device
}

// hmcSnapshot wraps the device's own state type.
type hmcSnapshot struct{ st *hmc.DeviceState }

func (hmcSnapshot) backendSnapshot() {}

func (b *hmcBackend) Kind() Kind { return KindHMC }

func (b *hmcBackend) Submit(tick uint64, req hmc.Request) (uint64, error) {
	return b.dev.Submit(tick, req)
}

func (b *hmcBackend) SubmitPacket(tick uint64, req hmc.Request) (hmc.Completion, error) {
	return b.dev.SubmitPacket(tick, req)
}

func (b *hmcBackend) Stats() hmc.Stats { return b.dev.Stats() }

func (b *hmcBackend) Reset() { b.dev.Reset() }

func (b *hmcBackend) Snapshot() Snapshot { return hmcSnapshot{st: b.dev.Snapshot()} }

func (b *hmcBackend) Restore(s Snapshot) error {
	hs, ok := s.(hmcSnapshot)
	if !ok {
		return fmt.Errorf("membackend: %v snapshot restored into hmc backend", kindOf(s))
	}
	return b.dev.Restore(hs.st)
}

func (b *hmcBackend) DebugLinks() string { return b.dev.DebugLinks() }

func (b *hmcBackend) SetChecker(c *invariant.Checker) { b.dev.SetChecker(c) }

func (b *hmcBackend) CheckConservation(tick uint64) error { return b.dev.CheckConservation(tick) }

// Device exposes the wrapped HMC device for callers that need HMC-only
// surface (fault statistics, link inspection).
func (b *hmcBackend) Device() *hmc.Device { return b.dev }

// HMCDevice unwraps a Backend to its *hmc.Device when the backend is the
// HMC model, for callers needing HMC-only surface.
func HMCDevice(b Backend) (*hmc.Device, bool) {
	hb, ok := b.(*hmcBackend)
	if !ok {
		return nil, false
	}
	return hb.dev, true
}

// kindOf names a snapshot's origin kind for mismatch diagnostics.
func kindOf(s Snapshot) Kind {
	switch s.(type) {
	case hmcSnapshot:
		return KindHMC
	case ddrSnapshot:
		return KindDDR
	case idealSnapshot:
		return KindIdeal
	}
	return Kind(-1)
}

// validateRequest applies the packet-interface rules every backend shares:
// FLIT-aligned payload in [16, BlockBytes] that does not cross a block
// boundary, with the useful bytes bounded by the payload. It mirrors the
// HMC device's own validation so illegal packets fail identically on every
// backend.
func validateRequest(cfg *hmc.Config, req hmc.Request) error {
	switch {
	case req.PacketBytes < hmc.MinRequestBytes || req.PacketBytes > cfg.BlockBytes:
		return fmt.Errorf("membackend: packet size %d outside [%d,%d]", req.PacketBytes, hmc.MinRequestBytes, cfg.BlockBytes)
	case req.PacketBytes%hmc.FlitBytes != 0:
		return fmt.Errorf("membackend: packet size %d not FLIT aligned", req.PacketBytes)
	case req.Addr/uint64(cfg.BlockBytes) != (req.Addr+uint64(req.PacketBytes)-1)/uint64(cfg.BlockBytes):
		return fmt.Errorf("membackend: request %#x+%d crosses a %d B block boundary", req.Addr, req.PacketBytes, cfg.BlockBytes)
	case req.RequestedBytes > req.PacketBytes:
		return fmt.Errorf("membackend: requested bytes %d exceed packet %d", req.RequestedBytes, req.PacketBytes)
	}
	return nil
}
