package membackend

import (
	"fmt"

	"hmccoal/internal/hmc"
	"hmccoal/internal/invariant"
)

// idealBackend is the zero-contention upper bound: every request is served
// by its own private bank and bus, so latency is a pure function of packet
// size — controller traversal each way, one activate, one column access,
// and the burst. No queueing, no row buffer, no fault injection. Any
// coalescing scheme's speedup is bounded by what it achieves here.
type idealBackend struct {
	cfg  hmc.Config
	core statsCore
}

// idealSnapshot deep-copies an idealBackend's mutable state (which is all
// statistics; the device itself keeps no timing horizons).
type idealSnapshot struct {
	core statsCoreState
}

func (idealSnapshot) backendSnapshot() {}

func newIdeal(cfg hmc.Config) (Backend, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Fault.Enabled() {
		return nil, fmt.Errorf("membackend: fault injection is HMC-only (ideal backend has no serial links)")
	}
	b := &idealBackend{cfg: cfg}
	b.core.init(cfg)
	return b, nil
}

func (b *idealBackend) Kind() Kind { return KindIdeal }

func (b *idealBackend) Submit(tick uint64, req hmc.Request) (uint64, error) {
	comp, err := b.SubmitPacket(tick, req)
	if err != nil {
		return 0, err
	}
	return comp.Done, nil
}

func (b *idealBackend) SubmitPacket(tick uint64, req hmc.Request) (hmc.Completion, error) {
	if err := validateRequest(&b.cfg, req); err != nil {
		return hmc.Completion{}, err
	}
	req.Addr %= b.cfg.CapacityBytes
	b.core.noteRequest(tick, req)
	b.core.stats.RowActivations++
	b.core.stats.VaultRequests[0]++

	burst := uint64(hmc.DataFlits(req.PacketBytes)) * b.cfg.TBurstPerFlit
	done := tick + 2*b.cfg.TSerDes + b.cfg.TActivate + b.cfg.TColumn + burst
	respFlits := hmc.ResponseFlits(req.Write, req.PacketBytes)
	b.core.noteDone(done, req, respFlits)
	return hmc.Completion{Done: done}, nil
}

func (b *idealBackend) Stats() hmc.Stats { return b.core.statsCopy() }

func (b *idealBackend) Reset() { b.core.reset() }

func (b *idealBackend) Snapshot() Snapshot { return idealSnapshot{core: b.core.save()} }

func (b *idealBackend) Restore(s Snapshot) error {
	is, ok := s.(idealSnapshot)
	if !ok {
		return fmt.Errorf("membackend: %v snapshot restored into ideal backend", kindOf(s))
	}
	return b.core.restore(is.core)
}

func (b *idealBackend) DebugLinks() string { return "ideal{}" }

func (b *idealBackend) SetChecker(c *invariant.Checker) { b.core.check = c }

func (b *idealBackend) CheckConservation(tick uint64) error { return b.core.checkConservation(tick) }
