package membackend

import (
	"fmt"

	"hmccoal/internal/hmc"
	"hmccoal/internal/invariant"
)

// ddrBusFactor scales the per-FLIT burst time for the single shared data
// bus of a conventional DIMM channel relative to the HMC's many parallel
// serial links and TSV columns: the same payload occupies the DDR bus four
// times as long as one HMC vault's burst engine.
const ddrBusFactor = 4

// ddrBackend models the "conventional memory" side of the paper's
// comparison: one channel, one shared data bus, a row of DRAM banks with
// open-page policy. Timing reuses the HMC config's DRAM core parameters
// (TActivate/TColumn/TPrecharge/TBurstPerFlit) so the only variables in a
// cross-backend comparison are the channel structure and parallelism, not
// the silicon. TSerDes stands in for the memory-controller and PHY
// traversal on each direction.
type ddrBackend struct {
	cfg   hmc.Config
	banks []ddrBank
	bus   uint64 // shared data bus busy-until horizon
	core  statsCore
}

// ddrBank is one bank's service horizon and open-row tracker.
type ddrBank struct {
	busyUntil uint64
	openRow   uint64
	rowValid  bool
}

// ddrSnapshot deep-copies a ddrBackend's mutable state.
type ddrSnapshot struct {
	banks []ddrBank
	bus   uint64
	core  statsCoreState
}

func (ddrSnapshot) backendSnapshot() {}

func newDDR(cfg hmc.Config) (Backend, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Fault.Enabled() {
		return nil, fmt.Errorf("membackend: fault injection is HMC-only (ddr backend has no serial links)")
	}
	b := &ddrBackend{
		cfg:   cfg,
		banks: make([]ddrBank, cfg.BanksPerVault),
	}
	b.core.init(cfg)
	return b, nil
}

func (b *ddrBackend) Kind() Kind { return KindDDR }

func (b *ddrBackend) Submit(tick uint64, req hmc.Request) (uint64, error) {
	comp, err := b.SubmitPacket(tick, req)
	if err != nil {
		return 0, err
	}
	return comp.Done, nil
}

func (b *ddrBackend) SubmitPacket(tick uint64, req hmc.Request) (hmc.Completion, error) {
	if err := validateRequest(&b.cfg, req); err != nil {
		return hmc.Completion{}, err
	}
	req.Addr %= b.cfg.CapacityBytes
	b.core.noteRequest(tick, req)

	// Controller and PHY traversal before the command reaches the bank.
	atBank := tick + b.cfg.TSerDes

	block := req.Addr / uint64(b.cfg.BlockBytes)
	bank := &b.banks[block%uint64(len(b.banks))]
	row := block / uint64(len(b.banks)) / (uint64(b.cfg.RowBytes) / uint64(b.cfg.BlockBytes))

	start := atBank
	if bank.busyUntil > start {
		b.core.stats.BankConflicts++
		b.core.stats.ConflictWait += bank.busyUntil - start
		start = bank.busyUntil
	}
	burst := uint64(hmc.DataFlits(req.PacketBytes)) * b.cfg.TBurstPerFlit * ddrBusFactor
	var dataReady uint64
	switch {
	case bank.rowValid && bank.openRow == row:
		b.core.stats.RowHits++
		dataReady = start + b.cfg.TColumn + burst
	case bank.rowValid:
		b.core.stats.RowActivations++
		dataReady = start + b.cfg.TPrecharge + b.cfg.TActivate + b.cfg.TColumn + burst
	default:
		b.core.stats.RowActivations++
		dataReady = start + b.cfg.TActivate + b.cfg.TColumn + burst
	}
	bank.openRow = row
	bank.rowValid = true
	bank.busyUntil = dataReady
	b.core.stats.VaultRequests[0]++

	// Every transfer serializes over the single shared data bus.
	busStart := dataReady
	if b.bus > busStart {
		b.core.stats.ConflictWait += b.bus - busStart
		busStart = b.bus
	}
	respFlits := hmc.ResponseFlits(req.Write, req.PacketBytes)
	busEnd := busStart + uint64(respFlits)*b.cfg.TFlit
	b.bus = busEnd

	done := busEnd + b.cfg.TSerDes
	b.core.noteDone(done, req, respFlits)
	return hmc.Completion{Done: done}, nil
}

func (b *ddrBackend) Stats() hmc.Stats { return b.core.statsCopy() }

func (b *ddrBackend) Reset() {
	for i := range b.banks {
		b.banks[i] = ddrBank{}
	}
	b.bus = 0
	b.core.reset()
}

func (b *ddrBackend) Snapshot() Snapshot {
	return ddrSnapshot{
		banks: append([]ddrBank(nil), b.banks...),
		bus:   b.bus,
		core:  b.core.save(),
	}
}

func (b *ddrBackend) Restore(s Snapshot) error {
	ds, ok := s.(ddrSnapshot)
	if !ok {
		return fmt.Errorf("membackend: %v snapshot restored into ddr backend", kindOf(s))
	}
	if len(ds.banks) != len(b.banks) {
		return fmt.Errorf("membackend: snapshot has %d banks, ddr backend %d", len(ds.banks), len(b.banks))
	}
	if err := b.core.restore(ds.core); err != nil {
		return err
	}
	copy(b.banks, ds.banks)
	b.bus = ds.bus
	return nil
}

func (b *ddrBackend) DebugLinks() string {
	return fmt.Sprintf("ddr{bus=%d banks=%d}", b.bus, len(b.banks))
}

func (b *ddrBackend) SetChecker(c *invariant.Checker) { b.core.check = c }

func (b *ddrBackend) CheckConservation(tick uint64) error { return b.core.checkConservation(tick) }
