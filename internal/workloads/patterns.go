package workloads

import "hmccoal/internal/trace"

// The generators below model each benchmark's dominant loops. Comments cite
// the structure being mimicked; constants are calibrated so the two-phase
// coalescing efficiency ordering matches Figure 8 (FT highest ≈75%, EP and
// SSCA2 lowest) and traffic volume ordering matches Figure 11 (LU and SP
// move the most data).

// sgGen models the Scatter/Gather kernel: a sequential index stream drives
// gathers of medium-sized records from a large table, then scatters updates
// back. Index traffic coalesces well; record traffic yields short runs.
type sgGen struct{}

func (sgGen) Name() string { return "SG" }
func (sgGen) Description() string {
	return "scatter/gather: sequential index stream + 128 B record gathers from a 512 MiB table"
}
func (sgGen) Generate(p Params) ([]trace.Access, error) {
	idxBase, dataBase := regionBase(1), regionBase(2)
	const table = 512 << 20
	return build(p, 0x5601, func(c *core, ops int) {
		idx := chunk(idxBase, 64<<20, c.cpu)
		for n := 0; n < ops; {
			// Read a run of indices (vectorized 8 B loads).
			c.burst(idx, 64, 8, trace.Load, 1)
			idx += 64
			n += 8
			// Gather eight 128 B records at random table offsets.
			for g := 0; g < 8 && n < ops; g++ {
				rec := dataBase + uint64(c.rng.Int63n(table/128))*128
				c.burst(rec, 128, 16, trace.Load, 1)
				n += 8
				if c.rng.Intn(4) == 0 { // occasional scatter back
					c.access(rec, 16, trace.Store, 1)
					n++
				}
				c.think(300)
			}
			c.think(100)
		}
	})
}

// streamGen models McCalpin STREAM triad with the unrolled copy loops real
// compilers emit: whole 256 B chunks of a, b are read and c written back to
// back, producing long adjacent-line runs on three streams.
type streamGen struct{}

func (streamGen) Name() string { return "STREAM" }
func (streamGen) Description() string {
	return "STREAM triad: three sequential streams in 256 B unrolled chunks"
}
func (streamGen) Generate(p Params) ([]trace.Access, error) {
	aBase, bBase, cBase := regionBase(1), regionBase(2), regionBase(3)
	return build(p, 0x57E4, func(c *core, ops int) {
		ops = ops * 3 / 2 // STREAM is pure memory traffic
		a := chunk(aBase, 64<<20, c.cpu)
		b := chunk(bBase, 64<<20, c.cpu)
		dst := chunk(cBase, 64<<20, c.cpu)
		for n := 0; n < ops; n += 96 {
			c.burst(a, 256, 8, trace.Load, 1)
			c.burst(b, 256, 8, trace.Load, 1)
			c.burst(dst, 256, 8, trace.Store, 1)
			a += 256
			b += 256
			dst += 256
			c.think(5800)
		}
	})
}

// hpcgGen models the HPCG sparse matrix-vector multiply: per row, a
// sequential stream of 16 B matrix values and 8 B column indices plus
// banded gathers into the x vector. The 16 B value payloads dominate the
// request-size mix, reproducing Figure 10.
type hpcgGen struct{}

func (hpcgGen) Name() string { return "HPCG" }
func (hpcgGen) Description() string {
	return "HPCG SpMV: 16 B value/index streams + banded x-vector gathers"
}
func (hpcgGen) Generate(p Params) ([]trace.Access, error) {
	valBase, colBase, xBase := regionBase(1), regionBase(2), regionBase(3)
	const band = 24 << 20 // x-vector working band: misses often
	return build(p, 0x4647, func(c *core, ops int) {
		vals := chunk(valBase, 96<<20, c.cpu)
		cols := chunk(colBase, 48<<20, c.cpu)
		diag := uint64(0)
		for n := 0; n < ops; {
			// 27-point row: 27 values (16 B each) and column indices.
			c.burst(vals, 27*16, 16, trace.Load, 1)
			vals += 27 * 16
			n += 27
			c.burst(cols, 27*8, 8, trace.Load, 1)
			cols += 27 * 8
			n += 27
			// Sparse gathers around the diagonal: isolated 16 B loads.
			for g := 0; g < 6 && n < ops; g++ {
				off := diag + uint64(c.rng.Int63n(band))
				c.access(xBase+off%uint64(band), 16, trace.Load, 2)
				n++
			}
			diag += 64
			c.think(3200)
		}
	})
}

// ssca2Gen models the SSCA2 graph-analysis kernel: random vertex and edge
// lookups over a large graph with small payloads — the canonical
// low-locality, hard-to-coalesce pattern.
type ssca2Gen struct{}

func (ssca2Gen) Name() string { return "SSCA2" }
func (ssca2Gen) Description() string {
	return "SSCA2 graph kernel: random 8 B vertex/edge chasing over a 1 GiB graph"
}
func (ssca2Gen) Generate(p Params) ([]trace.Access, error) {
	vtxBase, adjBase, visBase := regionBase(1), regionBase(2), regionBase(3)
	const verts = 1 << 27 // 128 M vertices × 8 B = 1 GiB
	return build(p, 0x55CA, func(c *core, ops int) {
		for n := 0; n < ops; {
			v := uint64(c.rng.Int63n(verts))
			c.access(vtxBase+v*8, 8, trace.Load, 2)
			n++
			// Walk a short adjacency run (power-law-ish degree).
			deg := 1 + c.rng.Intn(4)
			c.burst(adjBase+v*32, uint32(deg*8), 8, trace.Load, 2)
			n += deg
			// Mark a visited bit somewhere unrelated.
			if c.rng.Intn(2) == 0 {
				w := uint64(c.rng.Int63n(verts))
				c.access(visBase+w*8, 8, trace.Store, 2)
				n++
			}
			c.think(24)
		}
	})
}

// sparseLUGen models the BOTS SparseLU factorization: block operations on
// 32 KiB dense sub-blocks. Each task streams whole block rows, giving long
// runs and heavy store traffic.
type sparseLUGen struct{}

func (sparseLUGen) Name() string { return "SparseLU" }
func (sparseLUGen) Description() string {
	return "BOTS SparseLU: 256 B row-segment streams over random 32 KiB blocks"
}
func (sparseLUGen) Generate(p Params) ([]trace.Access, error) {
	matBase := regionBase(1)
	const blocks = 16384 // 16384 × 32 KiB = 512 MiB matrix
	return build(p, 0x5B10, func(c *core, ops int) {
		ops = ops * 3 / 2
		for n := 0; n < ops; {
			blk := matBase + uint64(c.rng.Intn(blocks))*32768
			src := matBase + uint64(c.rng.Intn(blocks))*32768
			// bmod inner loop: read a row segment of each operand block,
			// write the row segment back.
			for row := 0; row < 4 && n < ops; row++ {
				c.burst(src+uint64(row)*512, 256, 8, trace.Load, 1)
				c.burst(blk+uint64(row)*512, 256, 8, trace.Load, 1)
				c.burst(blk+uint64(row)*512, 256, 8, trace.Store, 1)
				n += 96
				c.think(300)
			}
			c.think(13000)
		}
	})
}

// sortGen models the BOTS mergesort: two sequential input runs consumed in
// alternation and one sequential output stream.
type sortGen struct{}

func (sortGen) Name() string { return "Sort" }
func (sortGen) Description() string {
	return "BOTS Sort: two alternating sequential read runs merged into one write stream"
}
func (sortGen) Generate(p Params) ([]trace.Access, error) {
	aBase, bBase, oBase := regionBase(1), regionBase(2), regionBase(3)
	return build(p, 0x50FF, func(c *core, ops int) {
		a := chunk(aBase, 64<<20, c.cpu)
		b := chunk(bBase, 64<<20, c.cpu)
		out := chunk(oBase, 128<<20, c.cpu)
		for n := 0; n < ops; {
			// Merge consumes an unpredictable amount of each run.
			take := uint32(64 + 64*c.rng.Intn(3)) // 64..192 B
			if c.rng.Intn(2) == 0 {
				c.burst(a, take, 8, trace.Load, 1)
				a += uint64(take)
			} else {
				c.burst(b, take, 8, trace.Load, 1)
				b += uint64(take)
			}
			c.burst(out, take, 8, trace.Store, 1)
			out += uint64(take)
			n += int(take / 4)
			c.think(700)
		}
	})
}

// healthGen models the BOTS Health simulation: linked-list patient queues
// chased through a large arena — isolated small accesses with stores on the
// same nodes.
type healthGen struct{}

func (healthGen) Name() string { return "Health" }
func (healthGen) Description() string {
	return "BOTS Health: 32 B node chases with in-place updates across a 768 MiB arena"
}
func (healthGen) Generate(p Params) ([]trace.Access, error) {
	arena := regionBase(1)
	const nodes = 24 << 20 // 24 M × 32 B = 768 MiB
	return build(p, 0x4EA1, func(c *core, ops int) {
		prev := arena
		for n := 0; n < ops; {
			// Chase a short queue of patients.
			hops := 2 + c.rng.Intn(4)
			for h := 0; h < hops && n < ops; h++ {
				var node uint64
				if c.rng.Intn(10) < 3 {
					// Allocation order survives in the lists: some hops
					// land on the neighbouring node.
					node = prev + 32
				} else {
					node = arena + uint64(c.rng.Int63n(nodes))*32
				}
				prev = node
				c.access(node, 32, trace.Load, 3)
				n++
				if c.rng.Intn(3) == 0 {
					c.access(node, 16, trace.Store, 2) // update in place: L1 hit
					n++
				}
			}
			c.think(48)
		}
	})
}

// ftGen models the NAS FT 3D-FFT transpose phases: whole 256 B groups of
// complex values are copied between arrays back to back. This is the most
// coalescable and among the most memory-intensive patterns — the paper's
// best case (≈75% coalescing efficiency).
type ftGen struct{}

func (ftGen) Name() string { return "FT" }
func (ftGen) Description() string {
	return "NAS FT transpose: 256 B complex-group copies, load+store streams"
}
func (ftGen) Generate(p Params) ([]trace.Access, error) {
	srcBase, dstBase := regionBase(1), regionBase(2)
	return build(p, 0xF77, func(c *core, ops int) {
		ops = ops * 2 // FT moves a lot of data
		src := chunk(srcBase, 128<<20, c.cpu)
		dst := chunk(dstBase, 128<<20, c.cpu)
		for n := 0; n < ops; {
			c.burst(src, 256, 16, trace.Load, 1)
			src += 256
			c.burst(dst, 256, 16, trace.Store, 1)
			dst += 256
			n += 32
			if c.rng.Intn(2) == 0 {
				// The butterfly re-reads a boundary column of the group a
				// beat later, while its fill is still outstanding — a
				// repeat touch that the MSHRs merge as a subentry.
				c.think(120)
				c.access(src-256, 16, trace.Load, 2)
				n++
			}
			c.think(3400)
		}
	})
}

// epGen models NAS EP: compute-bound random-number generation whose tiny
// working set almost always hits. The rare misses are isolated — the
// paper's worst case for coalescing and the smallest speedup.
type epGen struct{}

func (epGen) Name() string { return "EP" }
func (epGen) Description() string {
	return "NAS EP: compute-bound with rare isolated 16 B table misses"
}
func (epGen) Generate(p Params) ([]trace.Access, error) {
	tblBase, accBase := regionBase(1), regionBase(2)
	const tbl = 256 << 20
	return build(p, 0xE9, func(c *core, ops int) {
		ops = ops / 3                       // little memory traffic
		hot := chunk(accBase, 1<<16, c.cpu) // per-core 64 KiB accumulators: hits
		res := chunk(regionBase(3), 32<<20, c.cpu)
		for n := 0; n < ops; {
			c.think(240)
			c.access(tblBase+uint64(c.rng.Int63n(tbl/16))*16, 16, trace.Load, 4)
			n++
			c.access(hot+uint64(c.rng.Intn(1<<10))*64, 8, trace.Store, 4)
			n++
			if n%32 == 0 {
				// Periodic result-batch flush: a short sequential store
				// burst — EP's only coalescable traffic.
				c.burst(res, 128, 16, trace.Store, 1)
				res += 128
				n += 8
			}
		}
	})
}

// spGen models the NAS SP pentadiagonal solver: plane sweeps streaming
// several grid faces at once in 160 B row segments — medium-length runs at
// very high volume (one of the two biggest bandwidth consumers).
type spGen struct{}

func (spGen) Name() string { return "SP" }
func (spGen) Description() string {
	return "NAS SP: multi-stream plane sweeps, 160 B row segments, highest volume"
}
func (spGen) Generate(p Params) ([]trace.Access, error) {
	gridBase, rhsBase := regionBase(1), regionBase(2)
	return build(p, 0x59, func(c *core, ops int) {
		ops = ops * 6 // SP's traffic dwarfs the other benchmarks
		g := chunk(gridBase, 192<<20, c.cpu)
		r := chunk(rhsBase, 192<<20, c.cpu)
		for n := 0; n < ops; {
			c.burst(g, 256, 8, trace.Load, 1)
			g += 256
			c.burst(r, 256, 8, trace.Load, 1)
			c.burst(r, 256, 8, trace.Store, 1)
			r += 256
			n += 96
			c.think(3700)
		}
	})
}

// luGen models the NAS LU SSOR solver: long sequential sweeps over the
// solution grid with read-modify-write rows — long runs at very high
// volume (the other biggest bandwidth consumer).
type luGen struct{}

func (luGen) Name() string { return "LU" }
func (luGen) Description() string {
	return "NAS LU: 320 B SSOR row sweeps, read-modify-write, highest volume"
}
func (luGen) Generate(p Params) ([]trace.Access, error) {
	uBase, fBase := regionBase(1), regionBase(2)
	return build(p, 0x117, func(c *core, ops int) {
		ops = ops * 6
		u := chunk(uBase, 192<<20, c.cpu)
		f := chunk(fBase, 192<<20, c.cpu)
		for n := 0; n < ops; {
			c.burst(u, 256, 8, trace.Load, 1)
			c.burst(f, 256, 8, trace.Load, 1)
			f += 256
			c.burst(u, 256, 8, trace.Store, 1)
			u += 256
			n += 96
			c.think(4600)
		}
	})
}

// cgGen models the NAS CG conjugate-gradient solver: a sparse SpMV with
// random column gathers over a large vector plus short value streams.
type cgGen struct{}

func (cgGen) Name() string { return "CG" }
func (cgGen) Description() string {
	return "NAS CG: 128 B value streams + random 8 B gathers over a 512 MiB vector"
}
func (cgGen) Generate(p Params) ([]trace.Access, error) {
	valBase, xBase := regionBase(1), regionBase(2)
	const vec = 512 << 20
	return build(p, 0xC6, func(c *core, ops int) {
		vals := chunk(valBase, 96<<20, c.cpu)
		for n := 0; n < ops; {
			c.burst(vals, 128, 8, trace.Load, 1)
			vals += 128
			n += 16
			for g := 0; g < 6 && n < ops; g++ {
				c.access(xBase+uint64(c.rng.Int63n(vec/8))*8, 8, trace.Load, 2)
				n++
			}
			c.think(980)
		}
	})
}
