package workloads

import (
	"testing"

	"hmccoal/internal/trace"
)

func smallParams() Params {
	return Params{CPUs: 4, OpsPerCPU: 2000, Seed: 7}
}

func TestAllHasTwelveBenchmarks(t *testing.T) {
	gens := All()
	if len(gens) != 12 {
		t.Fatalf("All() = %d generators, want 12", len(gens))
	}
	seen := map[string]bool{}
	for _, g := range gens {
		if g.Name() == "" || g.Description() == "" {
			t.Errorf("generator %T missing name/description", g)
		}
		if seen[g.Name()] {
			t.Errorf("duplicate benchmark name %q", g.Name())
		}
		seen[g.Name()] = true
	}
	for _, want := range []string{"SG", "STREAM", "HPCG", "SSCA2", "SparseLU", "Sort", "Health", "FT", "EP", "SP", "LU", "CG"} {
		if !seen[want] {
			t.Errorf("missing benchmark %q", want)
		}
	}
}

func TestByName(t *testing.T) {
	g, ok := ByName("FT")
	if !ok || g.Name() != "FT" {
		t.Fatalf("ByName(FT) = %v, %v", g, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName(nope) succeeded")
	}
}

func TestNamesMatchAll(t *testing.T) {
	names := Names()
	gens := All()
	if len(names) != len(gens) {
		t.Fatal("Names/All length mismatch")
	}
	for i := range names {
		if names[i] != gens[i].Name() {
			t.Errorf("Names()[%d] = %q != %q", i, names[i], gens[i].Name())
		}
	}
}

func TestParamsValidation(t *testing.T) {
	for _, p := range []Params{
		{CPUs: 0, OpsPerCPU: 100},
		{CPUs: 4, OpsPerCPU: 0},
		{CPUs: 1000, OpsPerCPU: 100},
	} {
		if _, err := (ftGen{}).Generate(p); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
}

func TestTracesWellFormed(t *testing.T) {
	p := smallParams()
	for _, g := range All() {
		accs, err := g.Generate(p)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if len(accs) < p.CPUs*p.OpsPerCPU/8 {
			t.Errorf("%s: only %d accesses", g.Name(), len(accs))
		}
		var prev uint64
		perCPU := map[uint8]int{}
		for i, a := range accs {
			if a.Tick < prev {
				t.Fatalf("%s: access %d tick %d before %d", g.Name(), i, a.Tick, prev)
			}
			prev = a.Tick
			if a.Size == 0 || a.Size > 512 {
				t.Fatalf("%s: access %d has size %d", g.Name(), i, a.Size)
			}
			if a.Kind != trace.Load && a.Kind != trace.Store {
				t.Fatalf("%s: access %d has kind %v", g.Name(), i, a.Kind)
			}
			if int(a.CPU) >= p.CPUs {
				t.Fatalf("%s: access %d from CPU %d", g.Name(), i, a.CPU)
			}
			if a.Addr>>52 != 0 {
				t.Fatalf("%s: access %d address %#x exceeds 52 bits", g.Name(), i, a.Addr)
			}
			perCPU[a.CPU]++
		}
		for cpu := 0; cpu < p.CPUs; cpu++ {
			if perCPU[uint8(cpu)] == 0 {
				t.Errorf("%s: CPU %d generated nothing", g.Name(), cpu)
			}
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	p := smallParams()
	for _, g := range All() {
		a, err := g.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := g.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: nondeterministic length %d vs %d", g.Name(), len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: access %d differs between runs", g.Name(), i)
			}
		}
	}
}

func TestSeedChangesTrace(t *testing.T) {
	p := smallParams()
	p2 := p
	p2.Seed = 8
	for _, name := range []string{"SSCA2", "Health", "SG"} { // random-heavy
		g, _ := ByName(name)
		a, _ := g.Generate(p)
		b, _ := g.Generate(p2)
		same := len(a) == len(b)
		if same {
			for i := range a {
				if a[i] != b[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("%s: identical traces for different seeds", name)
		}
	}
}

func TestStoreMix(t *testing.T) {
	p := smallParams()
	stores := func(name string) float64 {
		g, ok := ByName(name)
		if !ok {
			t.Fatalf("no generator %s", name)
		}
		accs, err := g.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, a := range accs {
			if a.Kind == trace.Store {
				n++
			}
		}
		return float64(n) / float64(len(accs))
	}
	// STREAM triad writes one of three streams; FT copies (≈half stores);
	// SSCA2 and HPCG are read-dominated.
	if s := stores("STREAM"); s < 0.25 || s > 0.45 {
		t.Errorf("STREAM store ratio = %.2f", s)
	}
	if s := stores("FT"); s < 0.4 || s > 0.6 {
		t.Errorf("FT store ratio = %.2f", s)
	}
	if s := stores("HPCG"); s > 0.05 {
		t.Errorf("HPCG store ratio = %.2f", s)
	}
}

func TestEPIsComputeBound(t *testing.T) {
	p := smallParams()
	ep, _ := ByName("EP")
	ft, _ := ByName("FT")
	a, _ := ep.Generate(p)
	b, _ := ft.Generate(p)
	// EP emits far fewer accesses and moves far less data than FT.
	if len(a)*4 > len(b) {
		t.Errorf("EP accesses %d not ≪ FT %d", len(a), len(b))
	}
	var epBytes, ftBytes uint64
	for _, acc := range a {
		epBytes += uint64(acc.Size)
	}
	for _, acc := range b {
		ftBytes += uint64(acc.Size)
	}
	if epBytes*4 > ftBytes {
		t.Errorf("EP payload %d not ≪ FT %d", epBytes, ftBytes)
	}
}

func TestThinkScaleStretchesTrace(t *testing.T) {
	p := smallParams()
	g, _ := ByName("FT")
	base, err := g.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	p2 := p
	p2.ThinkScale = 3
	slow, err := g.Generate(p2)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != len(slow) {
		t.Fatalf("ThinkScale changed access count: %d vs %d", len(base), len(slow))
	}
	bSpan := base[len(base)-1].Tick - base[0].Tick
	sSpan := slow[len(slow)-1].Tick - slow[0].Tick
	if sSpan < bSpan*2 {
		t.Errorf("ThinkScale=3 span %d not ≫ base span %d", sSpan, bSpan)
	}
}
