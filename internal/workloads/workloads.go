// Package workloads generates synthetic memory traces reproducing the
// access-pattern *shape* of the paper's 12 evaluation benchmarks: SG,
// STREAM, HPCG, SSCA2, BOTS (SparseLU, Sort, Health) and NAS-PB (FT, EP,
// SP, LU, CG).
//
// The original evaluation ran the real benchmarks on the RISC-V Spike
// simulator and traced the LLC. That substrate is replaced here (see
// DESIGN.md): what the coalescer sees is only the spatial/temporal
// structure of the miss stream, so each generator is built from the
// benchmark's dominant loop structure — burst length (how many consecutive
// bytes a core touches back-to-back), request payload sizes, the
// sequential/random mix, store ratio and compute think-time. Burst length
// is the property that governs coalescability: FT's transpose copies whole
// 256 B groups, so its misses arrive as runs of adjacent lines, while
// SSCA2's edge chasing emits isolated single-line misses.
package workloads

import (
	"fmt"
	"math/rand"
	"sort"

	"hmccoal/internal/trace"
)

// Params scales a generated trace.
type Params struct {
	// CPUs is the number of cores generating accesses (paper: 12).
	CPUs int
	// OpsPerCPU is the approximate number of memory accesses per core at
	// weight 1.0; generators scale it by their relative traffic volume.
	OpsPerCPU int
	// Seed makes the trace deterministic.
	Seed int64
	// ThinkScale multiplies every generator's compute think time; 0 means
	// 1.0 (the calibrated balance). Below 1 pushes the system toward
	// memory saturation, above 1 toward compute-bound operation.
	ThinkScale float64
}

// DefaultParams returns the paper's 12-CPU setup at a laptop-scale volume.
func DefaultParams() Params {
	return Params{CPUs: 12, OpsPerCPU: 20000, Seed: 1}
}

func (p Params) validate() error {
	if p.CPUs <= 0 || p.CPUs > 256 {
		return fmt.Errorf("workloads: CPUs %d out of range", p.CPUs)
	}
	if p.OpsPerCPU <= 0 {
		return fmt.Errorf("workloads: OpsPerCPU %d must be positive", p.OpsPerCPU)
	}
	return nil
}

// Generator produces the access trace of one benchmark.
type Generator interface {
	// Name is the benchmark's short name as used in the paper's figures.
	Name() string
	// Description summarizes the access pattern being modeled.
	Description() string
	// Generate builds the interleaved multi-core trace.
	Generate(p Params) ([]trace.Access, error)
}

// All returns the 12 paper benchmarks in figure order.
func All() []Generator {
	return []Generator{
		sgGen{}, hpcgGen{}, ssca2Gen{}, streamGen{},
		sparseLUGen{}, sortGen{}, healthGen{},
		ftGen{}, epGen{}, spGen{}, luGen{}, cgGen{},
	}
}

// Names returns the benchmark names in figure order.
func Names() []string {
	gens := All()
	names := make([]string, len(gens))
	for i, g := range gens {
		names[i] = g.Name()
	}
	return names
}

// ByName finds a generator by its (case-sensitive) benchmark name. The
// stride-ladder microbenchmarks (StrideLadder) resolve here too, without
// being part of All()'s figure grid.
func ByName(name string) (Generator, bool) {
	for _, g := range All() {
		if g.Name() == name {
			return g, true
		}
	}
	for _, g := range StrideLadder() {
		if g.Name() == name {
			return g, true
		}
	}
	return nil, false
}

// core builds one CPU's access stream.
type core struct {
	accs       []trace.Access
	tick       uint64
	cpu        uint8
	rng        *rand.Rand
	thinkScale float64
}

// access emits one operation and advances the core's clock by gap cycles.
func (c *core) access(addr uint64, size uint32, kind trace.Kind, gap uint64) {
	c.accs = append(c.accs, trace.Access{
		Addr: addr, Size: size, Kind: kind, CPU: c.cpu, Tick: c.tick,
	})
	c.tick += gap
}

// burst emits total bytes as back-to-back accesses of `unit` bytes starting
// at base — the bulk-copy/vector-loop shape that produces adjacent-line
// miss runs. The out-of-order window dispatches the whole burst together,
// so every access carries the same tick; the issue cost (gap per access)
// is charged after the burst.
func (c *core) burst(base uint64, total, unit uint32, kind trace.Kind, gap uint64) {
	n := uint64(0)
	for off := uint32(0); off < total; off += unit {
		sz := unit
		if off+sz > total {
			sz = total - off
		}
		c.access(base+uint64(off), sz, kind, 0)
		n++
	}
	c.tick += gap * n
}

// think advances the core's clock without memory activity. The actual
// span is jittered uniformly in [cycles/2, 3·cycles/2): real task and loop
// bodies vary, and the jitter keeps the cores from phase-locking into
// all-saturated or all-idle memory regimes.
func (c *core) think(cycles uint64) {
	if cycles == 0 {
		return
	}
	span := cycles/2 + uint64(c.rng.Int63n(int64(cycles)))
	c.tick += uint64(float64(span) * c.thinkScale)
}

// build runs fn once per CPU and merges the per-core streams into one
// trace ordered by tick (ties broken by CPU for determinism).
func build(p Params, seedSalt int64, fn func(c *core, ops int)) ([]trace.Access, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	scale := p.ThinkScale
	if scale == 0 {
		scale = 1
	}
	var all []trace.Access
	for cpu := 0; cpu < p.CPUs; cpu++ {
		c := &core{
			cpu:        uint8(cpu),
			rng:        rand.New(rand.NewSource(p.Seed ^ seedSalt ^ int64(cpu)*0x9E3779B9)),
			thinkScale: scale,
		}
		// Desynchronize the cores slightly, as real threads are.
		c.tick = uint64(c.rng.Intn(64))
		fn(c, p.OpsPerCPU)
		all = append(all, c.accs...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Tick != all[j].Tick {
			return all[i].Tick < all[j].Tick
		}
		return all[i].CPU < all[j].CPU
	})
	return all, nil
}

// Address-space layout: each logical array lives in its own 1 GiB region so
// generators cannot collide.
const region = 1 << 30

func regionBase(n int) uint64 { return uint64(n) * region }

// chunk gives CPU i an exclusive slice of a shared array, mirroring OpenMP
// static scheduling. Each core's slice is additionally skewed by 11 HMC
// blocks: a power-of-two partition stride would start every thread on the
// same vault and serialize the device, which no real heap layout does.
func chunk(base uint64, perCPU uint64, cpu uint8) uint64 {
	return base + uint64(cpu)*perCPU + uint64(cpu)*11*256
}
