package workloads

import (
	"fmt"

	"hmccoal/internal/trace"
)

// strideLadder is the ladder of line strides the stride microbenchmarks
// sweep: stride 1 walks adjacent cache lines (miss runs coalesce into
// large HMC packets), stride 2 leaves every other line untouched, and by
// stride 4 each miss lands in its own HMC block — the classic GPU
// memory-coalescing ladder. Because the coalescer never fetches hole
// lines, merging collapses as soon as misses stop being adjacent, so the
// ladder localizes exactly where each front-end's merge opportunity dies.
var strideLadder = []int{1, 2, 4, 8, 16, 32}

// StrideLadder returns the stride microbenchmark generators in ladder
// order. They are resolvable through ByName ("stride1" … "stride32") but
// deliberately not part of All(): the paper's 12-benchmark figures and
// the golden metrics never see them.
func StrideLadder() []Generator {
	gens := make([]Generator, len(strideLadder))
	for i, s := range strideLadder {
		gens[i] = strideGen{lines: s}
	}
	return gens
}

// StrideNames returns the stride microbenchmark names in ladder order.
func StrideNames() []string {
	names := make([]string, len(strideLadder))
	for i, s := range strideLadder {
		names[i] = fmt.Sprintf("stride%d", s)
	}
	return names
}

// strideGen walks memory with a fixed cache-line stride: the pure-load
// pointer-walk microbenchmark behind the front-end efficiency ladder.
type strideGen struct {
	lines int // stride between consecutive touches, in cache lines
}

func (g strideGen) Name() string { return fmt.Sprintf("stride%d", g.lines) }

func (g strideGen) Description() string {
	return fmt.Sprintf("stride ladder: per-core load walk touching every %d-th cache line", g.lines)
}

func (g strideGen) Generate(p Params) ([]trace.Access, error) {
	return build(p, 0x51AD<<8|int64(g.lines), func(c *core, ops int) {
		a := chunk(regionBase(3), 1<<24, c.cpu)
		step := uint64(g.lines) * 64
		for i := 0; i < ops; i++ {
			c.access(a, 64, trace.Load, 2)
			a += step
			// A short compute phase every vector's worth of touches keeps
			// the cores from saturating the front-end permanently, so the
			// timeout/warp-close machinery actually cycles.
			if i%64 == 63 {
				c.think(800)
			}
		}
	})
}
