package hmccoal_test

import (
	"fmt"
	"log"

	"hmccoal"
)

// The basic flow: generate a benchmark trace, build a system, run it.
func Example() {
	params := hmccoal.TraceParams{CPUs: 4, OpsPerCPU: 500, Seed: 1}
	accs, err := hmccoal.GenerateTrace("STREAM", params)
	if err != nil {
		log.Fatal(err)
	}
	cfg := hmccoal.DefaultConfig()
	cfg.Hierarchy.CPUs = 4
	sys, err := hmccoal.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run(accs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.HMCRequests < res.LLCMisses) // the coalescer eliminated requests
	// Output: true
}

// Comparing the conventional miss-handling architecture with the coalescer.
func ExampleConfig_modes() {
	params := hmccoal.TraceParams{CPUs: 4, OpsPerCPU: 500, Seed: 1}
	accs, _ := hmccoal.GenerateTrace("FT", params)
	requests := map[hmccoal.Mode]uint64{}
	for _, mode := range []hmccoal.Mode{hmccoal.ModeBaseline, hmccoal.ModeTwoPhase} {
		cfg := hmccoal.DefaultConfig()
		cfg.Hierarchy.CPUs = 4
		cfg.Mode = mode
		sys, _ := hmccoal.NewSystem(cfg)
		res, err := sys.Run(accs)
		if err != nil {
			log.Fatal(err)
		}
		requests[mode] = res.HMCRequests
	}
	fmt.Println(requests[hmccoal.ModeTwoPhase] < requests[hmccoal.ModeBaseline])
	// Output: true
}

// Building a trace by hand through the public API.
func ExampleMergeTraces() {
	var a, b []hmccoal.Access
	for i := uint64(0); i < 4; i++ {
		a = append(a, hmccoal.Access{Addr: i * 64, Size: 8, Kind: hmccoal.LoadAccess, CPU: 0, Tick: i * 10})
		b = append(b, hmccoal.Access{Addr: 1 << 20, Size: 8, Kind: hmccoal.StoreAccess, CPU: 1, Tick: i*10 + 5})
	}
	merged := hmccoal.MergeTraces(a, b)
	fmt.Println(len(merged), hmccoal.ValidateTrace(merged) == nil)
	// Output: 8 true
}

// The analytic Figure 1 numbers are available without running anything.
func ExampleFigure1Table() {
	fmt.Println(len(hmccoal.Figure1Table()) > 0)
	// Output: true
}
