#!/usr/bin/env bash
# bench_dsweep.sh — wall-clock scaling of the distributed sweep path.
#
# Runs the full figure grid once in a single process (-workers 1) and
# then under a dsweep coordinator with 1, 2 and 4 local hmcsweepd worker
# processes (one slot each, so process count == parallelism). Every
# distributed run's stdout must be byte-identical to the baseline; the
# timings land in $OUT as JSON.
#
#   OPS=6000 OUT=BENCH_7.json scripts/bench_dsweep.sh
#
# Scaling is bounded by the machine: on a single-core host the 2- and
# 4-worker runs only measure coordination overhead, not speedup.
set -euo pipefail

ops=${OPS:-6000}
out=${OUT:-/dev/stdout}
work=$(mktemp -d)
cleanup() {
  local pids
  pids=$(jobs -p)
  [ -n "$pids" ] && kill $pids 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/hmccoal" ./cmd/hmccoal
go build -o "$work/hmcsweepd" ./cmd/hmcsweepd

now_ms() { date +%s%3N; }

# run_single FILE — the full grid in one process, one worker.
run_single() {
  "$work/hmccoal" -fig all -ops "$ops" -batch 2 -workers 1 >"$1" 2>/dev/null
}

# run_dist NWORKERS FILE — coordinator on an ephemeral port plus
# NWORKERS single-slot worker processes.
run_dist() {
  local n=$1 outfile=$2 errfile="$work/coord.$1.err" addr= pid i
  "$work/hmccoal" -fig all -ops "$ops" -batch 2 -serve 127.0.0.1:0 \
    >"$outfile" 2>"$errfile" &
  pid=$!
  for i in $(seq 100); do
    addr=$(sed -n 's/.*coordinating sweeps on //p' "$errfile")
    [ -n "$addr" ] && break
    sleep 0.1
  done
  [ -n "$addr" ] || { echo "coordinator never announced an address" >&2; exit 1; }
  for i in $(seq "$n"); do
    "$work/hmcsweepd" -connect "$addr" -name "bench-w$i" -slots 1 2>/dev/null &
  done
  wait "$pid"
}

declare -A secs
t0=$(now_ms); run_single "$work/base.txt"; t1=$(now_ms)
secs[single]=$(awk "BEGIN{printf \"%.2f\", ($t1-$t0)/1000}")
for n in 1 2 4; do
  t0=$(now_ms); run_dist "$n" "$work/dist.$n.txt"; t1=$(now_ms)
  secs[w$n]=$(awk "BEGIN{printf \"%.2f\", ($t1-$t0)/1000}")
  if ! diff -q "$work/base.txt" "$work/dist.$n.txt" >/dev/null; then
    echo "FATAL: $n-worker stdout differs from the single-process run" >&2
    diff "$work/base.txt" "$work/dist.$n.txt" >&2 || true
    exit 1
  fi
done
wait # let the last run's workers drain

ratio() { awk "BEGIN{printf \"%.2f\", $2/$1}"; }
cores=$(nproc)
cat >"$out" <<JSON
{
  "method": "full figure grid (-fig all -ops $ops -batch 2), wall clock; distributed runs use one coordinator plus N single-slot hmcsweepd processes; stdout verified byte-identical to the single-process run",
  "cores": $cores,
  "ops": $ops,
  "seconds": {
    "single_process": ${secs[single]},
    "coord_1_worker": ${secs[w1]},
    "coord_2_workers": ${secs[w2]},
    "coord_4_workers": ${secs[w4]}
  },
  "ratio_vs_single": {
    "coord_1_worker": $(ratio "${secs[single]}" "${secs[w1]}"),
    "coord_2_workers": $(ratio "${secs[single]}" "${secs[w2]}"),
    "coord_4_workers": $(ratio "${secs[single]}" "${secs[w4]}")
  }
}
JSON
