package hmccoal

// One benchmark per evaluation figure of the paper, plus ablations of the
// design choices called out in DESIGN.md. Each figure bench regenerates the
// figure's data series at laptop scale and reports the headline numbers as
// custom metrics; the full tables are logged with -v.
//
//	go test -bench=Fig -benchmem          # all figures
//	go test -bench=Ablation               # design-choice ablations
//	go test -bench=Fig08 -v               # one figure with its table

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"hmccoal/internal/hmc"
	"hmccoal/internal/metrics"
	"hmccoal/internal/sortnet"
)

// benchParams is the scale used by the figure benches: large enough for
// stable shapes, small enough that every bench iteration stays in seconds.
func benchParams() TraceParams {
	return TraceParams{CPUs: 12, OpsPerCPU: 1500, Seed: 3}
}

func BenchmarkFig01BandwidthEfficiency(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		for _, r := range metrics.Figure1() {
			last = r.Efficiency
		}
	}
	b.ReportMetric(100*hmc.BandwidthEfficiency(16), "eff16B_%")
	b.ReportMetric(100*last, "eff256B_%")
	b.Logf("\n%s", Figure1Table())
}

func BenchmarkFig02ControlOverhead(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(metrics.Figure2(nil))
	}
	small := hmc.ControlBytesForVolume(1<<30, 16)
	big := hmc.ControlBytesForVolume(1<<30, 256)
	b.ReportMetric(float64(small)/float64(big), "ctl_reduction_x")
	_ = rows
	b.Logf("\n%s", Figure2Table())
}

// runAllOnce executes the full 12-benchmark × 3-architecture sweep.
func runAllOnce(b *testing.B) []BenchmarkRun {
	b.Helper()
	runs, err := RunAll(benchParams())
	if err != nil {
		b.Fatal(err)
	}
	return runs
}

func BenchmarkFig08CoalescingEfficiency(b *testing.B) {
	var runs []BenchmarkRun
	for i := 0; i < b.N; i++ {
		runs = runAllOnce(b)
	}
	var mshr, dmc, two float64
	for _, r := range runs {
		mshr += r.Baseline.CoalescingEfficiency()
		dmc += r.DMCOnly.CoalescingEfficiency()
		two += r.TwoPhase.CoalescingEfficiency()
	}
	n := float64(len(runs))
	b.ReportMetric(100*mshr/n, "avg_mshr_%")
	b.ReportMetric(100*dmc/n, "avg_dmc_%")
	b.ReportMetric(100*two/n, "avg_two_phase_%")
	b.Logf("paper: MSHR 31.53%%, DMC 38.13%%, two-phase 47.47%%\n%s", Figure8Table(runs))
}

func BenchmarkFig09BandwidthEfficiency(b *testing.B) {
	var runs []BenchmarkRun
	for i := 0; i < b.N; i++ {
		runs = runAllOnce(b)
	}
	var raw, coal float64
	for _, r := range runs {
		raw += r.Payload.RawEfficiency()
		coal += r.Payload.CoalescedEfficiency()
	}
	n := float64(len(runs))
	b.ReportMetric(100*raw/n, "avg_raw_%")
	b.ReportMetric(100*coal/n, "avg_coalesced_%")
	b.Logf("paper: raw 7.43%%, coalesced 27.73%%\n%s", Figure9Table(runs))
}

func BenchmarkFig10HPCGDistribution(b *testing.B) {
	var run BenchmarkRun
	for i := 0; i < b.N; i++ {
		var err error
		run, err = RunBenchmark("HPCG", benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	var total, small uint64
	for size, n := range run.Payload.Hist {
		total += n
		if size == 16 {
			small += n
		}
	}
	b.ReportMetric(100*float64(small)/float64(total), "share_16B_%")
	b.Logf("paper: 40.25%% of HPCG's coalesced requests are 16 B loads\n%s", Figure10Table(run))
}

func BenchmarkFig11BandwidthSaving(b *testing.B) {
	var runs []BenchmarkRun
	for i := 0; i < b.N; i++ {
		runs = runAllOnce(b)
	}
	var sum, top int64
	topName := ""
	for _, r := range runs {
		s := r.Payload.SavedBytes()
		sum += s
		if s > top {
			top, topName = s, r.Name
		}
	}
	b.ReportMetric(float64(sum)/float64(len(runs))/1e6, "avg_saved_MB")
	b.Logf("paper: 33.25 GB average saving; LU (124.77 GB) and SP (133.82 GB) top; here %s tops\n%s",
		topName, Figure11Table(runs))
}

func BenchmarkFig12DMCLatency(b *testing.B) {
	var runs []BenchmarkRun
	for i := 0; i < b.N; i++ {
		runs = runAllOnce(b)
	}
	var sum float64
	for _, r := range runs {
		sum += r.TwoPhase.Coalescer.AvgDMCLatencyNs(r.TwoPhase.ClockGHz)
	}
	b.ReportMetric(sum/float64(len(runs)), "avg_dmc_ns")
	b.Logf("paper: 7.1 ns average, all below 9 ns\n%s", Figure12Table(runs))
}

func BenchmarkFig13CRQFillTime(b *testing.B) {
	var runs []BenchmarkRun
	for i := 0; i < b.N; i++ {
		runs = runAllOnce(b)
	}
	var sum, ft float64
	for _, r := range runs {
		ns := r.TwoPhase.Coalescer.AvgCRQFillNs(r.TwoPhase.ClockGHz)
		sum += ns
		if r.Name == "FT" {
			ft = ns
		}
	}
	b.ReportMetric(sum/float64(len(runs)), "avg_fill_ns")
	b.ReportMetric(ft, "ft_fill_ns")
	b.Logf("paper: 15.86 ns average; FT highest at 34.76 ns\n%s", Figure13Table(runs))
}

func BenchmarkFig14TimeoutSweep(b *testing.B) {
	timeouts := []uint64{16, 20, 24, 28}
	var table string
	for i := 0; i < b.N; i++ {
		var err error
		table, err = Figure14Table(benchParams(), timeouts)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Headline: the latency trend for one representative benchmark.
	lat, err := TimeoutSweep("SG", benchParams(), timeouts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(lat[0], "sg_T16_ns")
	b.ReportMetric(lat[len(lat)-1], "sg_T28_ns")
	b.Logf("paper: latency grows with timeout; sorting dominates by T=28\n%s", table)
}

func BenchmarkFig15Performance(b *testing.B) {
	var runs []BenchmarkRun
	for i := 0; i < b.N; i++ {
		runs = runAllOnce(b)
	}
	var sum, best float64
	bestName := ""
	for _, r := range runs {
		s := r.Speedup()
		sum += s
		if s > best {
			best, bestName = s, r.Name
		}
	}
	b.ReportMetric(100*sum/float64(len(runs)), "avg_speedup_%")
	b.ReportMetric(100*best, "best_speedup_%")
	b.Logf("paper: 13.14%% average; FT 25.43%% and SparseLU 22.21%% best; here %s best\n%s",
		bestName, Figure15Table(runs))
}

// BenchmarkSweepWorkers measures the wall-clock win of the parallel sweep
// engine on the full evaluation pipeline (12 benchmarks × 3 architectures
// + payload analyses) at the CLI's default -ops 4000 scale:
//
//	go test -bench=SweepWorkers -benchtime=1x
//
// workers1 is the old strictly serial pipeline; workersN uses every core.
func BenchmarkSweepWorkers(b *testing.B) {
	p := TraceParams{CPUs: 12, OpsPerCPU: 4000, Seed: 3}
	for _, w := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{fmt.Sprintf("parallel-%dcpu", runtime.GOMAXPROCS(0)), 0},
	} {
		b.Run(w.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runs, err := RunAllContext(context.Background(), p, SweepOptions{Workers: w.workers})
				if err != nil {
					b.Fatal(err)
				}
				if len(runs) != len(Benchmarks()) {
					b.Fatalf("sweep returned %d runs", len(runs))
				}
			}
		})
	}
}

// --- Ablations of DESIGN.md design choices ---

// BenchmarkAblationPipelineDepth compares the 10-stage (per-step) and
// 4-stage (per-stage) sorting pipelines of §4.1: hardware cost vs latency.
func BenchmarkAblationPipelineDepth(b *testing.B) {
	for _, fold := range []struct {
		name string
		fold sortnet.Fold
	}{{"PerStep10", sortnet.PerStep}, {"PerStage4", sortnet.PerStage}} {
		b.Run(fold.name, func(b *testing.B) {
			accs, err := GenerateTrace("FT", benchParams())
			if err != nil {
				b.Fatal(err)
			}
			var res Result
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig()
				cfg.Coalescer.Fold = fold.fold
				sys, err := NewSystem(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err = sys.Run(accs)
				if err != nil {
					b.Fatal(err)
				}
			}
			net := sortnet.MustNew(16)
			pipe, _ := sortnet.NewPipeline(net, fold.fold, 0)
			b.ReportMetric(float64(pipe.Buffers()), "buffers")
			b.ReportMetric(float64(pipe.ComparatorCost()), "comparators")
			b.ReportMetric(res.Coalescer.AvgRequestLatencyNs(res.ClockGHz), "req_latency_ns")
		})
	}
}

// BenchmarkAblationSequenceWidth sweeps the sorter width n.
func BenchmarkAblationSequenceWidth(b *testing.B) {
	for _, width := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("n%d", width), func(b *testing.B) {
			accs, err := GenerateTrace("FT", benchParams())
			if err != nil {
				b.Fatal(err)
			}
			var res Result
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig()
				cfg.Coalescer.Width = width
				sys, err := NewSystem(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err = sys.Run(accs)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*res.CoalescingEfficiency(), "coal_eff_%")
			b.ReportMetric(res.Coalescer.AvgRequestLatencyNs(res.ClockGHz), "req_latency_ns")
		})
	}
}

// BenchmarkAblationBypass toggles the §4.2 stage-select idle bypass on the
// light-traffic EP workload, where it matters most.
func BenchmarkAblationBypass(b *testing.B) {
	for _, bypass := range []bool{true, false} {
		b.Run(fmt.Sprintf("bypass=%v", bypass), func(b *testing.B) {
			accs, err := GenerateTrace("EP", benchParams())
			if err != nil {
				b.Fatal(err)
			}
			var res Result
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig()
				cfg.Coalescer.Bypass = bypass
				sys, err := NewSystem(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err = sys.Run(accs)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Coalescer.AvgRequestLatencyNs(res.ClockGHz), "req_latency_ns")
			b.ReportMetric(float64(res.Coalescer.Bypassed), "bypassed")
		})
	}
}

// BenchmarkAblationBigCacheLine evaluates the §2.2.3 strawman: 256 B cache
// lines instead of coalescing. Every miss moves a full 256 B packet, so
// sparse workloads waste most of the bandwidth.
func BenchmarkAblationBigCacheLine(b *testing.B) {
	run := func(b *testing.B, lineBytes uint32) Result {
		b.Helper()
		accs, err := GenerateTrace("HPCG", benchParams())
		if err != nil {
			b.Fatal(err)
		}
		var res Result
		for i := 0; i < b.N; i++ {
			cfg := DefaultConfig()
			if lineBytes != 64 {
				for _, c := range []*uint32{
					&cfg.Hierarchy.L1.LineBytes, &cfg.Hierarchy.L2.LineBytes,
					&cfg.Hierarchy.LLC.LineBytes, &cfg.Coalescer.LineBytes,
				} {
					*c = lineBytes
				}
				cfg.Mode = ModeBaseline // no coalescer: the strawman
			}
			sys, err := NewSystem(cfg)
			if err != nil {
				b.Fatal(err)
			}
			res, err = sys.Run(accs)
			if err != nil {
				b.Fatal(err)
			}
		}
		return res
	}
	b.Run("coalescer64B", func(b *testing.B) {
		res := run(b, 64)
		b.ReportMetric(100*res.CoalescedBandwidthEfficiency(), "bw_eff_%")
		b.ReportMetric(float64(res.HMC.TransferredBytes)/1e6, "transferred_MB")
	})
	b.Run("bigline256B", func(b *testing.B) {
		res := run(b, 256)
		b.ReportMetric(100*res.CoalescedBandwidthEfficiency(), "bw_eff_%")
		b.ReportMetric(float64(res.HMC.TransferredBytes)/1e6, "transferred_MB")
	})
}

// BenchmarkSortNetwork measures the raw software cost of one 16-wide
// odd–even mergesort pass, for profiling the simulator itself.
func BenchmarkSortNetwork(b *testing.B) {
	net := sortnet.MustNew(16)
	keys := make([]uint64, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := range keys {
			keys[j] = uint64(j*2654435761) % 97
		}
		net.Sort(keys, nil)
	}
}

// BenchmarkAblationPagePolicy compares the HMC's closed-page policy (the
// §2.2.1 assumption behind the coalescing argument) with an open-page
// controller: with rows kept open, the conventional MHA's sequential 64 B
// requests become row hits and the coalescer's advantage shrinks.
func BenchmarkAblationPagePolicy(b *testing.B) {
	for _, open := range []bool{false, true} {
		name := "closedPage"
		if open {
			name = "openPage"
		}
		b.Run(name, func(b *testing.B) {
			accs, err := GenerateTrace("STREAM", benchParams())
			if err != nil {
				b.Fatal(err)
			}
			var speedup float64
			for i := 0; i < b.N; i++ {
				var runtimes [2]uint64
				for m, mode := range []Mode{ModeBaseline, ModeTwoPhase} {
					cfg := DefaultConfig()
					cfg.HMC.OpenPage = open
					cfg.Mode = mode
					sys, err := NewSystem(cfg)
					if err != nil {
						b.Fatal(err)
					}
					res, err := sys.Run(accs)
					if err != nil {
						b.Fatal(err)
					}
					runtimes[m] = res.RuntimeCycles
				}
				speedup = 1 - float64(runtimes[1])/float64(runtimes[0])
			}
			b.ReportMetric(100*speedup, "speedup_%")
		})
	}
}

// BenchmarkAblationAdaptiveTimeout compares the fixed 24-cycle timeout with
// the §5.3.3-inspired adaptive timeout that tracks the average coalescing
// latency.
func BenchmarkAblationAdaptiveTimeout(b *testing.B) {
	for _, adaptive := range []bool{false, true} {
		name := "fixed"
		if adaptive {
			name = "adaptive"
		}
		b.Run(name, func(b *testing.B) {
			accs, err := GenerateTrace("HPCG", benchParams())
			if err != nil {
				b.Fatal(err)
			}
			var res Result
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig()
				cfg.Coalescer.AdaptiveTimeout = adaptive
				sys, err := NewSystem(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err = sys.Run(accs)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*res.CoalescingEfficiency(), "coal_eff_%")
			b.ReportMetric(res.Coalescer.AvgRequestLatencyNs(res.ClockGHz), "req_latency_ns")
		})
	}
}

// BenchmarkAblationSorterAlgorithm compares the odd-even mergesort network
// the paper selects with a bitonic alternative (§3.3): equal depth, more
// comparators, and the measured software sort cost of each.
func BenchmarkAblationSorterAlgorithm(b *testing.B) {
	for _, alg := range []struct {
		name string
		net  *sortnet.Network
	}{
		{"oddEven", sortnet.MustNew(16)},
		{"bitonic", sortnet.MustNewBitonic(16)},
	} {
		b.Run(alg.name, func(b *testing.B) {
			keys := make([]uint64, 16)
			for i := 0; i < b.N; i++ {
				for j := range keys {
					keys[j] = uint64((j*2654435761 + i) % 997)
				}
				alg.net.Sort(keys, nil)
			}
			b.ReportMetric(float64(alg.net.Comparators()), "comparators")
			b.ReportMetric(float64(alg.net.Depth()), "depth")
		})
	}
}

// BenchmarkSweepMSHREntries studies how the two-phase design scales with
// the MSHR file size (and the matching CRQ depth, §3.2.2).
func BenchmarkSweepMSHREntries(b *testing.B) {
	entries := []int{8, 16, 32, 64}
	var eff []float64
	for i := 0; i < b.N; i++ {
		var err error
		eff, err = MSHRSweep("FT", benchParams(), entries)
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, n := range entries {
		b.ReportMetric(100*eff[i], fmt.Sprintf("eff_mshr%d_%%", n))
	}
}
