package hmccoal

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"sync"
	"testing"
)

func sweepTestParams() TraceParams {
	return TraceParams{CPUs: 2, OpsPerCPU: 150, Seed: 7}
}

// TestParallelSweepDeterminism is the tentpole's correctness contract: the
// parallel sweep must produce byte-identical Results to the serial
// (-workers 1) pipeline, at any worker count.
func TestParallelSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark sweep")
	}
	p := sweepTestParams()
	serial, err := RunAllContext(context.Background(), p, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(Benchmarks()) {
		t.Fatalf("serial sweep has %d runs, want %d", len(serial), len(Benchmarks()))
	}
	for _, workers := range []int{0, 3, 16} {
		parallel, err := RunAllContext(context.Background(), p, SweepOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("workers=%d: results differ from serial sweep", workers)
		}
		// Byte-identical, not just structurally equal.
		a, _ := json.Marshal(serial)
		b, _ := json.Marshal(parallel)
		if string(a) != string(b) {
			t.Fatalf("workers=%d: serialized results differ", workers)
		}
	}
}

func TestParallelTimeoutSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	p := sweepTestParams()
	timeouts := []uint64{16, 28}
	serial, err := TimeoutSweepContext(context.Background(), "SG", p, timeouts, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := TimeoutSweepContext(context.Background(), "SG", p, timeouts, SweepOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("timeout sweep differs: serial %v parallel %v", serial, parallel)
	}
	table1, err := Figure14TableContext(context.Background(), p, timeouts, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	tableN, err := Figure14TableContext(context.Background(), p, timeouts, SweepOptions{Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	if table1 != tableN {
		t.Fatalf("Figure 14 table differs between worker counts:\n%s\nvs\n%s", table1, tableN)
	}
}

func TestSweepProgressReporting(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark sweep")
	}
	var mu sync.Mutex
	var last, calls, total int
	_, err := RunAllContext(context.Background(), sweepTestParams(), SweepOptions{
		Progress: func(done, n int) {
			mu.Lock()
			defer mu.Unlock()
			if done != last+1 {
				t.Errorf("progress jumped from %d to %d", last, done)
			}
			last, calls, total = done, calls+1, n
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * len(Benchmarks()) // 3 architectures + payload analysis each
	if calls != want || total != want {
		t.Errorf("progress: %d calls, grid %d; want %d", calls, total, want)
	}
}

func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunAllContext(ctx, sweepTestParams(), SweepOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled sweep returned %v, want context.Canceled", err)
	}
}

func TestSweepErrorAborts(t *testing.T) {
	// An impossible trace scale makes every generator fail; the sweep must
	// surface the error instead of returning partial results.
	p := sweepTestParams()
	p.CPUs = 0
	if _, err := RunAllContext(context.Background(), p, SweepOptions{}); err == nil {
		t.Error("sweep with invalid params succeeded")
	}
}
