module hmccoal

go 1.22
