package hmccoal

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"hmccoal/internal/dsweep"
	"hmccoal/internal/workloads"
)

// TestStrideLadderDeterminism is the new grid's acceptance contract: the
// (stride × {front-end × scheduler}) sweep produces byte-identical results
// at any worker count, at any lockstep batch width, and under distributed
// dispatch to remote workers.
func TestStrideLadderDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	p := sweepTestParams()

	serial, err := StrideLadderContext(context.Background(), p, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(serial)

	parallel, err := StrideLadderContext(context.Background(), p, SweepOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := json.Marshal(parallel); !bytes.Equal(want, got) {
		t.Fatal("workers=4 stride ladder differs from serial")
	}

	batched, err := StrideLadderContext(context.Background(), p, SweepOptions{Workers: 2, Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := json.Marshal(batched); !bytes.Equal(want, got) {
		t.Fatal("batch=8 stride ladder differs from serial")
	}

	coord, addr := startTestCoordinator(t, dsweep.Options{})
	startTestWorkers(t, addr, 2)
	dist, err := StrideLadderContext(context.Background(), p, SweepOptions{Batch: 2, Dispatch: coord})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := json.Marshal(dist); !bytes.Equal(want, got) {
		t.Fatal("distributed stride ladder differs from serial")
	}

	// Shape and physics: one run per rung in ladder order, every front-end
	// coalescing on the adjacent-line rung, none past the cliff (the
	// coalescer never fetches hole lines, so stride ≥ 4 cannot merge).
	names := workloads.StrideNames()
	if len(serial) != len(names) {
		t.Fatalf("ladder has %d runs, want %d", len(serial), len(names))
	}
	for i, r := range serial {
		if r.Name != names[i] {
			t.Errorf("run %d named %q, want %q", i, r.Name, names[i])
		}
	}
	for k := range strideCombos {
		if eff := serial[0].Results[k].CoalescingEfficiency(); eff <= 0 {
			t.Errorf("stride1 combo %d coalescing efficiency = %v, want > 0", k, eff)
		}
		if eff := serial[len(serial)-1].Results[k].CoalescingEfficiency(); eff != 0 {
			t.Errorf("stride32 combo %d coalescing efficiency = %v, want 0 past the cliff", k, eff)
		}
	}

	table := StrideLadderTable(serial)
	for _, col := range []string{"two-phase/frfcfs", "two-phase/hetero", "warp/frfcfs", "warp/hetero"} {
		if !strings.Contains(table, col) {
			t.Errorf("stride table is missing column %q:\n%s", col, table)
		}
	}
	for _, name := range names {
		if !strings.Contains(table, name) {
			t.Errorf("stride table is missing rung %q:\n%s", name, table)
		}
	}
}

// TestSweepOptionsFrontend checks that the Frontend/Sched sweep options
// reach the simulations: a warp-front-end timeout sweep is deterministic
// and measurably different from the default two-phase sweep.
func TestSweepOptionsFrontend(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	p := sweepTestParams()
	timeouts := []uint64{16, 28}
	warpOpt := SweepOptions{Workers: 1, Frontend: FrontendWarp, Sched: SchedHetero}

	def, err := TimeoutSweepContext(context.Background(), "SG", p, timeouts, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	warp, err := TimeoutSweepContext(context.Background(), "SG", p, timeouts, warpOpt)
	if err != nil {
		t.Fatal(err)
	}
	again, err := TimeoutSweepContext(context.Background(), "SG", p, timeouts, warpOpt)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(warp)
	b, _ := json.Marshal(again)
	if !bytes.Equal(a, b) {
		t.Fatal("warp timeout sweep is not deterministic")
	}
	if d, _ := json.Marshal(def); bytes.Equal(a, d) {
		t.Fatal("warp/hetero timeout sweep is byte-identical to the two-phase default — the options are not reaching the simulations")
	}
}

// TestSweepSpecFrontendValidation pins the spec layer's rejection of
// unknown front-end and scheduler names — the error a dsweep worker
// returns instead of panicking on a malformed wire spec.
func TestSweepSpecFrontendValidation(t *testing.T) {
	for _, spec := range []SweepSpec{
		{Kind: SweepTimeout, Bench: "SG", Timeouts: []uint64{16}, Frontend: "gpu"},
		{Kind: SweepTimeout, Bench: "SG", Timeouts: []uint64{16}, Sched: "lifo"},
	} {
		raw, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewSweepRunner().Run(context.Background(), raw, []int{0}); err == nil {
			t.Errorf("spec %+v accepted", spec)
		} else if !strings.Contains(err.Error(), "sweep spec") {
			t.Errorf("spec %+v error %q does not name the sweep spec", spec, err)
		}
	}
}
