package hmccoal

import (
	"context"
	"fmt"
	"sort"

	"hmccoal/internal/metrics"
)

// BenchmarkRun bundles one benchmark's results across the three evaluated
// miss-handling architectures plus the payload-granularity analysis.
type BenchmarkRun struct {
	Name     string
	Baseline Result // conventional MSHR-based coalescing
	DMCOnly  Result // first phase only
	TwoPhase Result // the full memory coalescer
	Payload  PayloadAnalysis
}

// Speedup is the Figure 15 metric: runtime improvement of the two-phase
// coalescer over the conventional MHA.
func (r BenchmarkRun) Speedup() float64 {
	if r.Baseline.RuntimeCycles == 0 {
		return 0
	}
	return 1 - float64(r.TwoPhase.RuntimeCycles)/float64(r.Baseline.RuntimeCycles)
}

// RunBenchmark executes the named benchmark at the given scale under all
// three architectures.
func RunBenchmark(name string, p TraceParams) (BenchmarkRun, error) {
	accs, err := GenerateTrace(name, p)
	if err != nil {
		return BenchmarkRun{}, err
	}
	run := BenchmarkRun{Name: name}
	for _, m := range []struct {
		mode Mode
		dst  *Result
	}{
		{ModeBaseline, &run.Baseline},
		{ModeDMCOnly, &run.DMCOnly},
		{ModeTwoPhase, &run.TwoPhase},
	} {
		*m.dst, err = runMode(name, m.mode, DefaultConfig(), accs)
		if err != nil {
			return run, err
		}
	}
	run.Payload, err = AnalyzePayload(DefaultConfig(), accs)
	if err != nil {
		return run, err
	}
	return run, nil
}

// RunAll executes every benchmark; results are in figure order. It fans
// the simulations out across every core through the internal/sweep worker
// pool — use RunAllContext for cancellation, progress reporting, or an
// explicit worker count.
func RunAll(p TraceParams) ([]BenchmarkRun, error) {
	return RunAllContext(context.Background(), p, SweepOptions{})
}

// Figure1Table renders the analytic bandwidth-efficiency series.
func Figure1Table() string {
	rows := [][]string{{"request", "bandwidth efficiency", "control overhead"}}
	for _, r := range metrics.Figure1() {
		rows = append(rows, []string{
			fmt.Sprintf("%d B", r.RequestBytes),
			metrics.Pct(r.Efficiency),
			metrics.Pct(r.ControlOverhead),
		})
	}
	return rows2(rows)
}

// Figure2Table renders the control-overhead-by-volume series.
func Figure2Table() string {
	rows := [][]string{{"data volume", "request size", "control data"}}
	for _, r := range metrics.Figure2(nil) {
		rows = append(rows, []string{
			metrics.MB(int64(r.TotalBytes)),
			fmt.Sprintf("%d B", r.RequestBytes),
			metrics.MB(int64(r.ControlBytes)),
		})
	}
	return rows2(rows)
}

// Figure8Table renders coalescing efficiency per benchmark and mode.
func Figure8Table(runs []BenchmarkRun) string {
	rows := [][]string{{"benchmark", "MSHR-based", "DMC unit", "two-phase"}}
	var a, b, c float64
	for _, r := range runs {
		rows = append(rows, []string{
			r.Name,
			metrics.Pct(r.Baseline.CoalescingEfficiency()),
			metrics.Pct(r.DMCOnly.CoalescingEfficiency()),
			metrics.Pct(r.TwoPhase.CoalescingEfficiency()),
		})
		a += r.Baseline.CoalescingEfficiency()
		b += r.DMCOnly.CoalescingEfficiency()
		c += r.TwoPhase.CoalescingEfficiency()
	}
	if n := float64(len(runs)); n > 0 {
		rows = append(rows, []string{"average", metrics.Pct(a / n), metrics.Pct(b / n), metrics.Pct(c / n)})
	}
	return rows2(rows)
}

// Figure9Table renders raw vs coalesced bandwidth efficiency (Equation 1,
// payload-granularity per §5.3.2).
func Figure9Table(runs []BenchmarkRun) string {
	rows := [][]string{{"benchmark", "raw", "coalesced"}}
	var a, b float64
	for _, r := range runs {
		rows = append(rows, []string{
			r.Name,
			metrics.Pct(r.Payload.RawEfficiency()),
			metrics.Pct(r.Payload.CoalescedEfficiency()),
		})
		a += r.Payload.RawEfficiency()
		b += r.Payload.CoalescedEfficiency()
	}
	if n := float64(len(runs)); n > 0 {
		rows = append(rows, []string{"average", metrics.Pct(a / n), metrics.Pct(b / n)})
	}
	return rows2(rows)
}

// Figure10Table renders the coalesced request size distribution of one
// benchmark (the paper plots HPCG).
func Figure10Table(r BenchmarkRun) string {
	sizes := make([]uint32, 0, len(r.Payload.Hist))
	for s := range r.Payload.Hist {
		sizes = append(sizes, s)
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	rows := make([][2]uint64, len(sizes))
	for i, s := range sizes {
		rows[i] = [2]uint64{uint64(s), r.Payload.Hist[s]}
	}
	return histTable(rows)
}

// PacketSizeTable renders the HMC device's packet-size histogram for one
// run, iterating in deterministic ascending order via SizeHistSorted.
func PacketSizeTable(r Result) string {
	hist := r.HMC.SizeHistSorted()
	rows := make([][2]uint64, len(hist))
	for i, sc := range hist {
		rows[i] = [2]uint64{uint64(sc.Size), sc.Count}
	}
	return histTable(rows)
}

// histTable renders sorted (size, count) pairs as a size/requests/share
// table — the shared shape of every size-distribution figure.
func histTable(pairs [][2]uint64) string {
	var total uint64
	for _, p := range pairs {
		total += p[1]
	}
	rows := [][]string{{"size", "requests", "share"}}
	for _, p := range pairs {
		share := 0.0
		if total > 0 {
			share = float64(p[1]) / float64(total)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d B", p[0]),
			fmt.Sprintf("%d", p[1]),
			metrics.Pct(share),
		})
	}
	return rows2(rows)
}

// Figure11Table renders per-benchmark bandwidth savings.
func Figure11Table(runs []BenchmarkRun) string {
	rows := [][]string{{"benchmark", "saved transfer"}}
	var sum int64
	for _, r := range runs {
		rows = append(rows, []string{r.Name, metrics.MB(r.Payload.SavedBytes())})
		sum += r.Payload.SavedBytes()
	}
	if len(runs) > 0 {
		rows = append(rows, []string{"average", metrics.MB(sum / int64(len(runs)))})
	}
	return rows2(rows)
}

// Figure12Table renders the average DMC-unit coalescing latency.
func Figure12Table(runs []BenchmarkRun) string {
	rows := [][]string{{"benchmark", "DMC latency"}}
	var sum float64
	for _, r := range runs {
		ns := r.TwoPhase.Coalescer.AvgDMCLatencyNs(r.TwoPhase.ClockGHz)
		rows = append(rows, []string{r.Name, metrics.Ns(ns)})
		sum += ns
	}
	if len(runs) > 0 {
		rows = append(rows, []string{"average", metrics.Ns(sum / float64(len(runs)))})
	}
	return rows2(rows)
}

// Figure13Table renders the average CRQ fill time.
func Figure13Table(runs []BenchmarkRun) string {
	rows := [][]string{{"benchmark", "CRQ fill time"}}
	var sum float64
	for _, r := range runs {
		ns := r.TwoPhase.Coalescer.AvgCRQFillNs(r.TwoPhase.ClockGHz)
		rows = append(rows, []string{r.Name, metrics.Ns(ns)})
		sum += ns
	}
	if len(runs) > 0 {
		rows = append(rows, []string{"average", metrics.Ns(sum / float64(len(runs)))})
	}
	return rows2(rows)
}

// TimeoutSweep runs one benchmark's two-phase system across the Figure 14
// timeout values, returning the average coalescer latency (ns) per timeout.
// The per-timeout runs execute on the internal/sweep worker pool.
func TimeoutSweep(name string, p TraceParams, timeouts []uint64) ([]float64, error) {
	return TimeoutSweepContext(context.Background(), name, p, timeouts, SweepOptions{})
}

// Figure14Table renders the timeout sweep for every benchmark, fanning the
// (benchmark × timeout) grid across every core.
func Figure14Table(p TraceParams, timeouts []uint64) (string, error) {
	return Figure14TableContext(context.Background(), p, timeouts, SweepOptions{})
}

// Figure15Table renders the runtime improvement of the memory coalescer.
func Figure15Table(runs []BenchmarkRun) string {
	rows := [][]string{{"benchmark", "improvement"}}
	var sum float64
	for _, r := range runs {
		rows = append(rows, []string{r.Name, metrics.Pct(r.Speedup())})
		sum += r.Speedup()
	}
	if len(runs) > 0 {
		rows = append(rows, []string{"average", metrics.Pct(sum / float64(len(runs)))})
	}
	return rows2(rows)
}

// FaultSweepTable renders a fault sweep: device bandwidth efficiency per
// architecture, the two-phase speedup, and the two-phase fault-recovery
// counters (link retries, poisoned responses, cycles in degraded mode) at
// each injected error rate.
func FaultSweepTable(rows []FaultSweepRow) string {
	out := [][]string{{"BER", "MSHR-based", "DMC unit", "two-phase", "speedup", "retries", "poisoned", "degraded"}}
	for _, r := range rows {
		// A row with no baseline data (its runs never executed — aborted or
		// partially restored sweep) has no speedup; Speedup() returns 0
		// there, which would render identically to a genuine zero speedup.
		speedup := "n/a"
		if r.HasData() {
			speedup = metrics.Pct(r.Speedup())
		}
		out = append(out, []string{
			fmt.Sprintf("%.0e", r.BER),
			metrics.Pct(r.Baseline.HMC.BandwidthEfficiency()),
			metrics.Pct(r.DMCOnly.HMC.BandwidthEfficiency()),
			metrics.Pct(r.TwoPhase.HMC.BandwidthEfficiency()),
			speedup,
			fmt.Sprintf("%d", r.TwoPhase.HMC.Retries),
			fmt.Sprintf("%d", r.TwoPhase.HMC.PoisonedResponses),
			fmt.Sprintf("%d", r.TwoPhase.Coalescer.DegradedCycles),
		})
	}
	return rows2(out)
}

// StrideLadderTable renders the front-end efficiency ladder: coalescing
// efficiency per stride under every {front-end × scheduler} combination,
// plus each combination's device bandwidth efficiency. Stride 1 walks
// adjacent lines (everything merges) and each rung doubles the gap until
// nothing does — how much each front-end extracts from the dense rungs,
// and where its merging collapses, is the comparison the figure makes.
func StrideLadderTable(runs []StrideRun) string {
	header := []string{"stride", "metric"}
	for _, c := range strideCombos {
		header = append(header, fmt.Sprintf("%v/%v", c.fe, c.sched))
	}
	rows := [][]string{header}
	for _, r := range runs {
		eff := []string{r.Name, "coalescing"}
		bw := []string{"", "bandwidth"}
		for k := range strideCombos {
			eff = append(eff, metrics.Pct(r.Results[k].CoalescingEfficiency()))
			bw = append(bw, metrics.Pct(r.Results[k].CoalescedBandwidthEfficiency()))
		}
		rows = append(rows, eff, bw)
	}
	return rows2(rows)
}

// rows2 formats a table (indirection keeps metrics out of the public API).
func rows2(rows [][]string) string { return metrics.Table(rows) }

// Figure8Chart renders the two-phase coalescing efficiency per benchmark
// as an ASCII bar chart (percent).
func Figure8Chart(runs []BenchmarkRun) string {
	labels := make([]string, len(runs))
	values := make([]float64, len(runs))
	for i, r := range runs {
		labels[i] = r.Name
		values[i] = 100 * r.TwoPhase.CoalescingEfficiency()
	}
	return metrics.Bars(labels, values, 50)
}

// Figure15Chart renders the runtime improvement per benchmark as an ASCII
// bar chart (percent).
func Figure15Chart(runs []BenchmarkRun) string {
	labels := make([]string, len(runs))
	values := make([]float64, len(runs))
	for i, r := range runs {
		labels[i] = r.Name
		values[i] = 100 * r.Speedup()
	}
	return metrics.Bars(labels, values, 50)
}

// MSHRSweep runs one benchmark's two-phase system across MSHR file sizes,
// returning the coalescing efficiency per size — a scalability study of the
// dynamic-MSHR design (the CRQ is resized in lockstep, as §3.2.2 requires).
// The per-size runs execute on the internal/sweep worker pool.
func MSHRSweep(name string, p TraceParams, entries []int) ([]float64, error) {
	return MSHRSweepContext(context.Background(), name, p, entries, SweepOptions{})
}
