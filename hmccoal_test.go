package hmccoal

import (
	"strings"
	"testing"
)

func smallTraceParams() TraceParams {
	return TraceParams{CPUs: 4, OpsPerCPU: 800, Seed: 5}
}

func TestBenchmarksList(t *testing.T) {
	names := Benchmarks()
	if len(names) != 12 {
		t.Fatalf("Benchmarks() = %d names, want 12", len(names))
	}
	for _, n := range names {
		desc, err := DescribeBenchmark(n)
		if err != nil || desc == "" {
			t.Errorf("DescribeBenchmark(%s) = %q, %v", n, desc, err)
		}
	}
	if _, err := DescribeBenchmark("nope"); err == nil {
		t.Error("unknown benchmark described")
	}
}

func TestGenerateTraceUnknown(t *testing.T) {
	if _, err := GenerateTrace("nope", DefaultTraceParams()); err == nil {
		t.Fatal("unknown benchmark generated")
	}
}

func TestEndToEndPublicAPI(t *testing.T) {
	accs, err := GenerateTrace("STREAM", smallTraceParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Hierarchy.CPUs = 4
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(accs)
	if err != nil {
		t.Fatal(err)
	}
	if res.CoalescingEfficiency() <= 0 {
		t.Errorf("CoalescingEfficiency = %v", res.CoalescingEfficiency())
	}
	pa, err := AnalyzePayload(cfg, accs)
	if err != nil {
		t.Fatal(err)
	}
	if pa.CoalescedEfficiency() <= pa.RawEfficiency() {
		t.Errorf("payload analysis: coalesced %v not above raw %v",
			pa.CoalescedEfficiency(), pa.RawEfficiency())
	}
}

func TestRunBenchmarkAndSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("full 3-architecture run")
	}
	p := DefaultTraceParams()
	p.OpsPerCPU = 1000
	run, err := RunBenchmark("FT", p)
	if err != nil {
		t.Fatal(err)
	}
	if run.Name != "FT" {
		t.Errorf("Name = %q", run.Name)
	}
	if run.TwoPhase.CoalescingEfficiency() <= run.Baseline.CoalescingEfficiency() {
		t.Error("two-phase not above baseline")
	}
	if run.Speedup() <= 0 {
		t.Errorf("FT Speedup = %v, want positive", run.Speedup())
	}
	// The figure tables render with all benchmarks present.
	runs := []BenchmarkRun{run}
	for name, table := range map[string]string{
		"fig8":  Figure8Table(runs),
		"fig9":  Figure9Table(runs),
		"fig10": Figure10Table(run),
		"fig11": Figure11Table(runs),
		"fig12": Figure12Table(runs),
		"fig13": Figure13Table(runs),
		"fig15": Figure15Table(runs),
	} {
		if !strings.Contains(table, "FT") && name != "fig10" {
			t.Errorf("%s missing FT row:\n%s", name, table)
		}
		if table == "" {
			t.Errorf("%s empty", name)
		}
	}
}

func TestAnalyticFigureTables(t *testing.T) {
	f1 := Figure1Table()
	for _, want := range []string{"16 B", "256 B", "33.33%", "88.89%"} {
		if !strings.Contains(f1, want) {
			t.Errorf("Figure1Table missing %q:\n%s", want, f1)
		}
	}
	f2 := Figure2Table()
	if !strings.Contains(f2, "request size") {
		t.Errorf("Figure2Table malformed:\n%s", f2)
	}
}

func TestTimeoutSweepDefaultsAndTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	p := DefaultTraceParams()
	p.OpsPerCPU = 800
	lat, err := TimeoutSweep("SG", p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(lat) != 4 {
		t.Fatalf("default sweep has %d points, want 4", len(lat))
	}
	if lat[3] <= lat[0] {
		t.Errorf("latency did not grow with timeout: %v", lat)
	}
}

func TestModeConstantsDistinct(t *testing.T) {
	if ModeBaseline == ModeTwoPhase || ModeBaseline == ModeDMCOnly || ModeDMCOnly == ModeTwoPhase {
		t.Fatal("mode constants collide")
	}
}

func TestFigureCharts(t *testing.T) {
	if testing.Short() {
		t.Skip("full run")
	}
	p := DefaultTraceParams()
	p.OpsPerCPU = 600
	run, err := RunBenchmark("STREAM", p)
	if err != nil {
		t.Fatal(err)
	}
	runs := []BenchmarkRun{run}
	for _, chart := range []string{Figure8Chart(runs), Figure15Chart(runs)} {
		if !strings.Contains(chart, "STREAM") {
			t.Errorf("chart missing label:\n%s", chart)
		}
	}
}

func TestMSHRSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	p := DefaultTraceParams()
	p.OpsPerCPU = 800
	eff, err := MSHRSweep("FT", p, []int{4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(eff) != 2 {
		t.Fatalf("sweep points = %d", len(eff))
	}
	for i, e := range eff {
		if e <= 0 || e >= 1 {
			t.Errorf("point %d efficiency = %v", i, e)
		}
	}
	// Defaults path.
	if _, err := MSHRSweep("FT", p, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := MSHRSweep("nope", p, nil); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
