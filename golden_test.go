package hmccoal

// The determinism contract behind every hot-path optimization: for a fixed
// seed trace, the simulator's Result — rendered through Summary() plus the
// raw counters — must stay byte-identical across all three miss-handling
// architectures. Regenerate with:
//
//	UPDATE_GOLDEN=1 go test -run TestGoldenMetrics

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

const goldenPath = "testdata/golden_metrics.txt"

// renderGoldenMetrics runs the fixed workloads under every architecture and
// renders everything the figures depend on.
func renderGoldenMetrics(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	for _, bench := range []string{"HPCG", "FT"} {
		accs, err := GenerateTrace(bench, TraceParams{CPUs: 12, OpsPerCPU: 900, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []Mode{ModeBaseline, ModeDMCOnly, ModeTwoPhase} {
			cfg := DefaultConfig()
			cfg.Mode = mode
			sys, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.Run(accs)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&b, "=== %s/%v ===\n%s", bench, mode, res.Summary())
			fmt.Fprintf(&b, "RuntimeCycles=%d LLCMisses=%d HMCRequests=%d StallCycles=%d\n",
				res.RuntimeCycles, res.LLCMisses, res.HMCRequests, res.StallCycles)
			fmt.Fprintf(&b, "MSHR allocs=%d merged=%d split=%d stalls=%d\n",
				res.MSHR.Allocations, res.MSHR.MergedTargets, res.MSHR.SplitRequests, res.MSHR.FullStalls)
			fmt.Fprintf(&b, "L1=%+v\nL2=%+v\nLLC=%+v\n", res.L1, res.L2, res.LLC)
			fmt.Fprintf(&b, "HMC reads=%d writes=%d packet=%d requested=%d transferred=%d rowact=%d conflicts=%d conflictwait=%d\n",
				res.HMC.Reads, res.HMC.Writes, res.HMC.PacketBytes, res.HMC.RequestedBytes,
				res.HMC.TransferredBytes, res.HMC.RowActivations, res.HMC.BankConflicts, res.HMC.ConflictWait)
			fmt.Fprintf(&b, "Coal batches=%d batchreqs=%d sort=%d dmc=%d lat=%d/%d peak=%d fills=%d fillcycles=%d\n",
				res.Coalescer.Batches, res.Coalescer.BatchRequests, res.Coalescer.SortCycles,
				res.Coalescer.DMCCycles, res.Coalescer.RequestLatency, res.Coalescer.LatencySamples,
				res.Coalescer.CRQPeak, res.Coalescer.CRQFills, res.Coalescer.CRQFillCycles)
		}
	}
	return b.String()
}

// TestGoldenMetrics locks the byte-identical-output contract. Any
// optimization that shifts a single counter or a single formatted byte of
// Summary() fails here.
func TestGoldenMetrics(t *testing.T) {
	got := renderGoldenMetrics(t)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("golden metrics drifted.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestGoldenRepeatable guards run-to-run determinism within one binary: two
// fresh systems over the same trace must agree exactly.
func TestGoldenRepeatable(t *testing.T) {
	a := renderGoldenMetrics(t)
	b := renderGoldenMetrics(t)
	if a != b {
		t.Error("two identical runs produced different metrics")
	}
}
