// Package hmccoal reproduces "Memory Coalescing for Hybrid Memory Cube"
// (Wang, Leidel, Chen — ICPP 2018): a two-phase memory coalescer between a
// shared last level cache and dynamic MSHRs that batches LLC misses, sorts
// them on a pipelined odd–even merge network, fuses adjacent requests into
// large HMC packets, and merges them against outstanding misses before they
// reach a simulated Hybrid Memory Cube.
//
// The package is a facade over the implementation packages:
//
//	internal/sortnet    Batcher odd–even mergesort network + pipeline model
//	internal/mshr       dynamic MSHRs with second-phase coalescing
//	internal/coalescer  sorting pipeline + DMC unit + CRQ (the contribution)
//	internal/hmc        HMC 2.1 device model (packets, vaults, banks, links)
//	internal/cache      L1/L2/shared-LLC hierarchy
//	internal/workloads  the 12 evaluation benchmark trace generators
//	internal/sim        full-system simulator and metrics
//	internal/sweep      deterministic worker pool for the evaluation sweeps
//	internal/riscv      RV64I emulator + assembler (Spike substitution)
//
// Quick start:
//
//	cfg := hmccoal.DefaultConfig()
//	sys, _ := hmccoal.NewSystem(cfg)
//	trace, _ := hmccoal.GenerateTrace("FT", hmccoal.DefaultTraceParams())
//	res, _ := sys.Run(trace)
//	fmt.Printf("coalescing efficiency: %.1f%%\n", 100*res.CoalescingEfficiency())
package hmccoal

import (
	"fmt"

	"hmccoal/internal/fault"
	"hmccoal/internal/frontend"
	"hmccoal/internal/membackend"
	"hmccoal/internal/sim"
	"hmccoal/internal/trace"
	"hmccoal/internal/workloads"
)

// Core simulation API, re-exported from internal/sim.
type (
	// Config assembles a simulated system (hierarchy, coalescer, HMC).
	Config = sim.Config
	// Result carries a run's metrics; see its methods for the paper's
	// derived figures (coalescing efficiency, bandwidth efficiency, …).
	Result = sim.Result
	// System is a single-use runnable machine.
	System = sim.System
	// Mode selects the miss-handling architecture (Figure 8 series).
	Mode = sim.Mode
	// Access is one memory operation of a trace.
	Access = trace.Access
	// PayloadAnalysis is the payload-granularity study of §5.3.2
	// (Figures 9–11) plus the Figure 10 size distribution.
	PayloadAnalysis = sim.PayloadAnalysis
	// TraceParams scales a benchmark trace.
	TraceParams = workloads.Params
	// FaultConfig parameterizes deterministic link fault injection
	// (Config.HMC.Fault): seeded bit error rate, drop rate and retry
	// budget. The zero value disables injection entirely.
	FaultConfig = fault.Config
	// BackendKind selects the memory device behind the coalescer
	// (Config.Backend): the HMC model, a DDR-like single-channel baseline,
	// or an ideal zero-contention device. The zero value is the HMC.
	BackendKind = membackend.Kind
	// FrontendKind selects the coalescing front-end between the LLC and
	// the memory backend (Config.Frontend): the paper's two-phase
	// coalescer or a GPU-style warp coalescing unit. The zero value is
	// the two-phase coalescer.
	FrontendKind = frontend.Kind
	// SchedKind selects the issue policy inside the front-end
	// (Config.Sched): strict FR-FCFS or the heterogeneity-aware
	// scheduler. The zero value is FR-FCFS.
	SchedKind = frontend.SchedKind
	// SystemSnapshot is a deterministic mid-run snapshot of a System
	// (System.Snapshot / System.Restore): restoring it into a fresh system
	// built from the same Config and stepping to completion reproduces the
	// uninterrupted run byte-for-byte.
	SystemSnapshot = sim.Snapshot
)

// Miss-handling architectures under evaluation.
const (
	// ModeBaseline is the conventional MHA: MSHR-based coalescing only.
	ModeBaseline = sim.Baseline
	// ModeDMCOnly enables the sorting network + DMC unit without MSHR
	// merging.
	ModeDMCOnly = sim.DMCOnly
	// ModeTwoPhase is the full memory coalescer.
	ModeTwoPhase = sim.TwoPhase
)

// Memory backends selectable via Config.Backend.
const (
	// BackendHMC is the full HMC 2.1 device model (the default).
	BackendHMC = membackend.KindHMC
	// BackendDDR is the DDR-like single-channel banked baseline.
	BackendDDR = membackend.KindDDR
	// BackendIdeal is the zero-contention ideal memory.
	BackendIdeal = membackend.KindIdeal
)

// Coalescing front-ends selectable via Config.Frontend.
const (
	// FrontendTwoPhase is the paper's two-phase coalescer (the default).
	FrontendTwoPhase = frontend.KindTwoPhase
	// FrontendWarp is the GPU-style warp coalescing unit.
	FrontendWarp = frontend.KindWarp
)

// Issue policies selectable via Config.Sched.
const (
	// SchedFRFCFS issues queued packets strictly in arrival order (the
	// default).
	SchedFRFCFS = frontend.SchedFRFCFS
	// SchedHetero favors criticality-hinted requests and starved lanes.
	SchedHetero = frontend.SchedHetero
)

// ParseBackend resolves a backend name ("hmc", "ddr", "ideal"; "" is the
// HMC default) for CLI flags.
func ParseBackend(s string) (BackendKind, error) { return membackend.ParseKind(s) }

// Backends lists the selectable backend names.
func Backends() []string { return membackend.Kinds() }

// ParseFrontend resolves a front-end name ("two-phase", "warp"; "" is the
// two-phase default) for CLI flags.
func ParseFrontend(s string) (FrontendKind, error) { return frontend.ParseKind(s) }

// Frontends lists the selectable front-end names.
func Frontends() []string { return frontend.Kinds() }

// ParseSched resolves a scheduler name ("frfcfs", "hetero"; "" is the
// FR-FCFS default) for CLI flags.
func ParseSched(s string) (SchedKind, error) { return frontend.ParseSched(s) }

// Scheds lists the selectable scheduler names.
func Scheds() []string { return frontend.Scheds() }

// ParseFaultFlag decodes the shared -faults CLI syntax ("seed=1,ber=1e-6,
// drop=1e-7,retries=3"); an empty string disables injection.
func ParseFaultFlag(s string) (FaultConfig, error) { return fault.ParseFlag(s) }

// DefaultConfig returns the paper's evaluation system: 12 CPUs at 3.3 GHz,
// 16 LLC MSHRs, sequence width 16, 8 GB HMC with 256 B blocks.
func DefaultConfig() Config { return sim.DefaultConfig() }

// NewSystem builds a simulated system. Systems are single-use: build a
// fresh one per Run (or recycle a finished one with System.Reset).
func NewSystem(cfg Config) (*System, error) { return sim.NewSystem(cfg) }

// Batch engine API, re-exported from internal/sim.
type (
	// TraceIndex is a shared, read-only CSR bucketing of a trace by CPU.
	// Runs replaying the same trace share one index instead of each
	// re-bucketing it (System.StartIndexed, BatchJob.Index).
	TraceIndex = sim.TraceIndex
	// BatchJob is one run of a RunBatch batch: a named configuration
	// replaying a trace, optionally through a shared TraceIndex.
	BatchJob = sim.BatchJob
)

// NewTraceIndex buckets a trace for systems with cpus cores; the index is
// immutable and safely shared across concurrent runs.
func NewTraceIndex(accs []Access, cpus int) (*TraceIndex, error) {
	return sim.NewTraceIndex(accs, cpus)
}

// RunBatch advances up to width independent simulations in lockstep
// through the staged tick loop, retiring and refilling lanes as runs
// complete. Results are per-job byte-identical to running each job alone.
func RunBatch(jobs []BatchJob, width int) ([]Result, error) {
	return sim.RunBatch(jobs, width)
}

// DefaultTraceParams returns the 12-CPU laptop-scale workload sizing.
func DefaultTraceParams() TraceParams { return workloads.DefaultParams() }

// Benchmarks lists the 12 evaluation benchmark names in figure order.
func Benchmarks() []string { return workloads.Names() }

// GenerateTrace synthesizes the named benchmark's multi-core access trace.
func GenerateTrace(name string, p TraceParams) ([]Access, error) {
	g, ok := workloads.ByName(name)
	if !ok {
		return nil, fmt.Errorf("hmccoal: unknown benchmark %q (have %v)", name, workloads.Names())
	}
	return g.Generate(p)
}

// DescribeBenchmark returns the one-line access-pattern summary of the
// named benchmark.
func DescribeBenchmark(name string) (string, error) {
	g, ok := workloads.ByName(name)
	if !ok {
		return "", fmt.Errorf("hmccoal: unknown benchmark %q", name)
	}
	return g.Description(), nil
}

// AnalyzePayload runs the §5.3.2 payload-granularity coalescing study over
// a trace with the paper's parameters.
func AnalyzePayload(cfg Config, accs []Access) (PayloadAnalysis, error) {
	return sim.AnalyzePayload(cfg.Hierarchy, accs, cfg.Coalescer.Width)
}

// TraceStats summarizes a trace (access counts, payload, footprint, span).
type TraceStats = trace.Stats

// SummarizeTrace computes TraceStats over a trace.
func SummarizeTrace(accs []Access) TraceStats { return trace.Summarize(accs) }

// MergeTraces interleaves traces by tick, preserving per-source order —
// for combining independently generated or captured per-core streams.
func MergeTraces(traces ...[]Access) []Access { return trace.Merge(traces...) }

// ValidateTrace checks the invariants System.Run relies on and returns the
// first violation.
func ValidateTrace(accs []Access) error { return trace.Validate(accs) }

// Access kinds for hand-built traces.
const (
	LoadAccess  = trace.Load
	StoreAccess = trace.Store
	FenceAccess = trace.FenceOp
)
