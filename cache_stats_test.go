package hmccoal

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"hmccoal/internal/dsweep"
)

// timeoutSpec builds a one-benchmark timeout grid for cache-stats tests.
func timeoutSpec(t *testing.T, bench string) []byte {
	t.Helper()
	raw, err := json.Marshal(SweepSpec{
		Kind:     SweepTimeout,
		Params:   sweepTestParams(),
		Bench:    bench,
		Timeouts: []uint64{16, 28},
	})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestSweepRunnerCacheStats pins the trace-cache counter semantics: the
// first group on a benchmark is a miss, every later group on the same
// benchmark a hit, and visiting more benchmarks than the cache holds
// evicts the oldest.
func TestSweepRunnerCacheStats(t *testing.T) {
	r := NewSweepRunner()
	ctx := context.Background()
	spec := timeoutSpec(t, Benchmarks()[0])
	for g := 0; g < 2; g++ {
		if _, err := r.Run(ctx, spec, []int{g}); err != nil {
			t.Fatal(err)
		}
	}
	s := r.CacheStats()
	if s.Misses != 1 || s.Hits != 1 || s.Evictions != 0 {
		t.Fatalf("after two groups on one benchmark: %+v; want 1 miss, 1 hit, 0 evictions", s)
	}

	// One more benchmark than the cache holds: the oldest trace goes.
	benches := Benchmarks()
	if len(benches) < traceCacheEntries+1 {
		t.Skipf("only %d benchmarks; need %d to overflow the cache", len(benches), traceCacheEntries+1)
	}
	for _, b := range benches[:traceCacheEntries+1] {
		if _, err := r.Run(ctx, timeoutSpec(t, b), []int{0}); err != nil {
			t.Fatal(err)
		}
	}
	s = r.CacheStats()
	if s.Evictions == 0 {
		t.Fatalf("visited %d benchmarks over a %d-entry cache without an eviction: %+v",
			traceCacheEntries+1, traceCacheEntries, s)
	}
}

// TestStatusCarriesCacheCounts drives a real coordinator/worker pair and
// asserts the worker's trace-cache counters travel in Result frames all
// the way into the coordinator's Status() rows.
func TestStatusCarriesCacheCounts(t *testing.T) {
	coord, addr := startTestCoordinator(t, dsweep.Options{})
	runner := NewSweepRunner()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go dsweep.Work(ctx, addr, runner.Run, dsweep.WorkOptions{
		Name: "cachy",
		CacheStats: func() dsweep.CacheCounts {
			s := runner.CacheStats()
			return dsweep.CacheCounts{Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions}
		},
	})

	spec := timeoutSpec(t, Benchmarks()[0])
	for g := 0; g < 2; g++ {
		if _, err := coord.RunGroup(context.Background(), spec, []int{g}); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		s := coord.Status()
		if len(s.PerWorker) == 1 && s.PerWorker[0].Cache.Misses == 1 && s.PerWorker[0].Cache.Hits == 1 {
			if got := s.String(); !strings.Contains(got, "trace cache") {
				t.Fatalf("Status.String() misses the trace-cache column:\n%s", got)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("cache counters never reached Status: %+v", s.PerWorker)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
