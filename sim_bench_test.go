package hmccoal

// End-to-end single-run benchmarks for the simulator core. These are the
// regression guard for the hot-path work: the sweep engine (internal/sweep)
// scales across runs, so the wall clock of the whole evaluation pipeline is
// bounded by the ns/op measured here.
//
//	go test -bench 'Sim/' -benchmem       # the guarded numbers
//	go test -run '^$' -bench Sim -benchtime=1x   # CI smoke (compile + 1 iter)

import (
	"fmt"
	"testing"
)

// simBenchTrace is the fixed workload the Sim benchmarks replay: the same
// scale the figure benches use, so ns/op here predicts sweep wall-clock.
func simBenchTrace(b *testing.B, name string) []Access {
	b.Helper()
	accs, err := GenerateTrace(name, benchParams())
	if err != nil {
		b.Fatal(err)
	}
	return accs
}

// BenchmarkSim measures one full System.Run per iteration for each
// miss-handling architecture. The per-iteration cost includes NewSystem
// (a run is single-use by contract); steady-state allocations are the
// optimization target, so allocs/op is reported.
func BenchmarkSim(b *testing.B) {
	accs := simBenchTrace(b, "HPCG")
	for _, mode := range []Mode{ModeBaseline, ModeDMCOnly, ModeTwoPhase} {
		name := map[Mode]string{
			ModeBaseline: "Baseline", ModeDMCOnly: "DMCOnly", ModeTwoPhase: "TwoPhase",
		}[mode]
		b.Run(name, func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Mode = mode
			var res Result
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys, err := NewSystem(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err = sys.Run(accs)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(accs)), "ns/access")
			b.ReportMetric(100*res.CoalescingEfficiency(), "coal_eff_%")
		})
	}
}

// BenchmarkSimWorkloads runs the TwoPhase system over each benchmark
// workload's distinct access shape (streaming, strided, random, fenced).
func BenchmarkSimWorkloads(b *testing.B) {
	for _, name := range []string{"STREAM", "FT", "EP", "SG"} {
		b.Run(name, func(b *testing.B) {
			accs := simBenchTrace(b, name)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys, err := NewSystem(DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sys.Run(accs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(accs)), "ns/access")
		})
	}
}

// BenchmarkSimFaults runs the two-phase system with link fault injection
// at increasing error rates. The ber0 case IS the no-fault hot path with
// the fault machinery compiled in: its allocs/op must equal
// BenchmarkSim/TwoPhase (BENCH_2.json pins 328) — fault support costs
// zero allocations until a fault actually fires.
func BenchmarkSimFaults(b *testing.B) {
	accs := simBenchTrace(b, "HPCG")
	for _, ber := range []float64{0, 1e-6, 1e-4} {
		b.Run(fmt.Sprintf("ber%.0e", ber), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.HMC.Fault = FaultConfig{Seed: 1, BER: ber}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys, err := NewSystem(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sys.Run(accs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(accs)), "ns/access")
		})
	}
}

// BenchmarkSimScale checks that per-access cost stays flat as the trace
// grows (the Figure 13-scale regime of millions of accesses).
func BenchmarkSimScale(b *testing.B) {
	for _, ops := range []int{1500, 6000, 24000} {
		b.Run(fmt.Sprintf("ops%d", ops), func(b *testing.B) {
			p := benchParams()
			p.OpsPerCPU = ops
			accs, err := GenerateTrace("HPCG", p)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys, err := NewSystem(DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sys.Run(accs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(accs)), "ns/access")
		})
	}
}
