// Graph-walk scenario: the SSCA2-style low-locality pattern — random vertex
// and edge chasing where almost nothing is spatially adjacent. The example
// shows the coalescer's honest worst case: little first-phase coalescing,
// some second-phase MSHR merging, and a latency-bound runtime the coalescer
// barely moves. Compare with examples/quickstart (FT, the best case).
package main

import (
	"fmt"
	"log"

	"hmccoal"
)

func main() {
	params := hmccoal.DefaultTraceParams()
	params.OpsPerCPU = 3000

	for _, name := range []string{"SSCA2", "Health", "FT"} {
		run, err := hmccoal.RunBenchmark(name, params)
		if err != nil {
			log.Fatal(err)
		}
		desc, _ := hmccoal.DescribeBenchmark(name)
		fmt.Printf("%s — %s\n", name, desc)
		fmt.Printf("  two-phase coalescing efficiency %6.2f%%  (MSHR merges: %d, DMC merges: %d)\n",
			100*run.TwoPhase.CoalescingEfficiency(),
			run.TwoPhase.MSHR.MergedTargets,
			run.TwoPhase.Coalescer.FirstPhaseMerges)
		fmt.Printf("  runtime improvement             %6.2f%%\n", 100*run.Speedup())
		fmt.Printf("  bank conflicts baseline/coalesced: %d / %d\n\n",
			run.Baseline.HMC.BankConflicts, run.TwoPhase.HMC.BankConflicts)
	}
	fmt.Println("Irregular pointer-chasing traffic is the coalescer's worst case:")
	fmt.Println("isolated single-line misses offer nothing to fuse, so the win has")
	fmt.Println("to come from MSHR merging and bank-conflict relief alone.")
}
