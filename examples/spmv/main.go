// SpMV scenario: the HPCG-style sparse matrix-vector multiply of the
// paper's motivation — value/index streams plus banded vector gathers whose
// tiny payloads waste most of a fixed-64 B memory interface. The example
// runs all three miss-handling architectures and the payload-granularity
// analysis behind Figures 9 and 10.
package main

import (
	"fmt"
	"log"
	"sort"

	"hmccoal"
)

func main() {
	params := hmccoal.DefaultTraceParams()
	params.OpsPerCPU = 3000

	desc, _ := hmccoal.DescribeBenchmark("HPCG")
	fmt.Println("workload:", desc)

	run, err := hmccoal.RunBenchmark("HPCG", params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncoalescing efficiency (Figure 8 series):\n")
	fmt.Printf("  conventional MSHR  %6.2f%%\n", 100*run.Baseline.CoalescingEfficiency())
	fmt.Printf("  DMC unit only      %6.2f%%\n", 100*run.DMCOnly.CoalescingEfficiency())
	fmt.Printf("  two-phase          %6.2f%%\n", 100*run.TwoPhase.CoalescingEfficiency())

	fmt.Printf("\nbandwidth efficiency (Figure 9, Equation 1):\n")
	fmt.Printf("  raw 64 B requests  %6.2f%%\n", 100*run.Payload.RawEfficiency())
	fmt.Printf("  coalesced          %6.2f%%\n", 100*run.Payload.CoalescedEfficiency())
	fmt.Printf("  traffic saved      %6.2f MB\n", float64(run.Payload.SavedBytes())/1e6)

	fmt.Printf("\ncoalesced request sizes (Figure 10):\n")
	sizes := make([]uint32, 0, len(run.Payload.Hist))
	var total uint64
	for s, n := range run.Payload.Hist {
		sizes = append(sizes, s)
		total += n
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	for _, s := range sizes {
		n := run.Payload.Hist[s]
		share := float64(n) / float64(total)
		if share < 0.005 {
			continue
		}
		fmt.Printf("  %4d B  %6.2f%%  %s\n", s, 100*share, bar(share))
	}

	fmt.Printf("\nruntime improvement over the conventional MHA: %.2f%%\n", 100*run.Speedup())
}

func bar(f float64) string {
	n := int(f * 60)
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
