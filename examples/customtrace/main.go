// Custom workload: build a memory trace by hand through the public API and
// study how its access pattern interacts with the coalescer. The workload
// is a two-phase kernel — a tiled matrix transpose (coalescer-friendly
// column bursts) followed by a histogram over random keys (coalescer-
// hostile single misses) — with a fence between the phases.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hmccoal"
)

const (
	cpus     = 8
	tiles    = 160
	tileRows = 8 // 8 × 64 B rows per tile: 512 B bursts
	buckets  = 1 << 22
)

func main() {
	var streams [][]hmccoal.Access
	for cpu := 0; cpu < cpus; cpu++ {
		streams = append(streams, coreTrace(uint8(cpu)))
	}
	accs := hmccoal.MergeTraces(streams...)
	if err := hmccoal.ValidateTrace(accs); err != nil {
		log.Fatal(err)
	}
	fmt.Println(hmccoal.SummarizeTrace(accs))

	cfg := hmccoal.DefaultConfig()
	cfg.Hierarchy.CPUs = cpus
	for _, mode := range []hmccoal.Mode{hmccoal.ModeBaseline, hmccoal.ModeTwoPhase} {
		cfg.Mode = mode
		sys, err := hmccoal.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(accs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s:\n  %6.2f%% of requests coalesced, runtime %.1f µs, fences drained: %d\n",
			mode, 100*res.CoalescingEfficiency(), res.RuntimeNs()/1000, res.Coalescer.Fences)
	}
}

// coreTrace emits one core's accesses: transpose bursts, a fence, then the
// random histogram phase.
func coreTrace(cpu uint8) []hmccoal.Access {
	rng := rand.New(rand.NewSource(int64(cpu) + 1))
	var accs []hmccoal.Access
	tick := uint64(rng.Intn(50))

	// Phase 1: tiled transpose. Each tile copies 8 consecutive 64 B rows
	// from the source pane to the destination pane — dense bursts the DMC
	// unit can fuse into 256 B packets.
	src := uint64(cpu) * 512 << 20
	dst := 1<<35 + uint64(cpu)*512<<20
	for t := 0; t < tiles; t++ {
		for r := 0; r < tileRows; r++ {
			row := src + uint64(t*tileRows+r)*64
			for off := uint64(0); off < 64; off += 8 {
				accs = append(accs, hmccoal.Access{
					Addr: row + off, Size: 8, Kind: hmccoal.LoadAccess, CPU: cpu, Tick: tick,
				})
			}
			out := dst + uint64(t*tileRows+r)*64
			for off := uint64(0); off < 64; off += 8 {
				accs = append(accs, hmccoal.Access{
					Addr: out + off, Size: 8, Kind: hmccoal.StoreAccess, CPU: cpu, Tick: tick,
				})
			}
			tick += 16
		}
		tick += 1200 + uint64(rng.Intn(1200)) // compute between tiles
	}

	// The fence separates the phases, as a barrier would.
	accs = append(accs, hmccoal.Access{Kind: hmccoal.FenceAccess, CPU: cpu, Tick: tick})
	tick += 100

	// Phase 2: histogram over random keys — isolated 8 B read-modify-write
	// pairs with no spatial locality.
	hist := uint64(1 << 36)
	for i := 0; i < 600; i++ {
		slot := hist + uint64(rng.Intn(buckets))*8
		accs = append(accs, hmccoal.Access{Addr: slot, Size: 8, Kind: hmccoal.LoadAccess, CPU: cpu, Tick: tick})
		accs = append(accs, hmccoal.Access{Addr: slot, Size: 8, Kind: hmccoal.StoreAccess, CPU: cpu, Tick: tick + 2})
		tick += 300 + uint64(rng.Intn(300))
	}
	return accs
}
