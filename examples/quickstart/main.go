// Quickstart: simulate one benchmark on the paper's 12-CPU HMC system with
// and without the memory coalescer, and print the headline metrics.
package main

import (
	"fmt"
	"log"

	"hmccoal"
)

func main() {
	params := hmccoal.DefaultTraceParams()
	params.OpsPerCPU = 2000

	accs, err := hmccoal.GenerateTrace("FT", params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FT trace: %d accesses from %d CPUs\n\n", len(accs), params.CPUs)

	for _, mode := range []hmccoal.Mode{hmccoal.ModeBaseline, hmccoal.ModeTwoPhase} {
		cfg := hmccoal.DefaultConfig()
		cfg.Mode = mode
		sys, err := hmccoal.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(accs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", mode)
		fmt.Printf("  runtime               %8.1f µs\n", res.RuntimeNs()/1000)
		fmt.Printf("  LLC requests          %8d\n", res.LLCMisses)
		fmt.Printf("  HMC requests          %8d\n", res.HMCRequests)
		fmt.Printf("  coalescing efficiency %8.2f%%\n", 100*res.CoalescingEfficiency())
		fmt.Printf("  transferred           %8.2f MB (%d row activations, %d bank conflicts)\n\n",
			float64(res.HMC.TransferredBytes)/1e6, res.HMC.RowActivations, res.HMC.BankConflicts)
	}
}
