// RISC-V trace capture: the paper's original methodology (§5.1) end to
// end. RV64I kernels are assembled and executed on emulated harts (the
// Spike substitution), their memory tracer output is interleaved into a
// multi-core trace, and the trace drives the simulated HMC system with and
// without the memory coalescer.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"hmccoal"
	"hmccoal/internal/riscv"
	"hmccoal/internal/trace"
)

func main() {
	const (
		harts    = 4
		elements = 4096
	)
	prog, err := riscv.Assemble(riscv.VecAddUnrolledProgram(elements))
	if err != nil {
		log.Fatal(err)
	}

	// One unrolled vector-add kernel per hart, each hart's memory placed in
	// its own region, as OpenMP static scheduling would slice the arrays.
	specs := make([]riscv.HartSpec, harts)
	for i := range specs {
		specs[i] = riscv.HartSpec{
			Program:    prog,
			LoadAddr:   0x1000,
			AddrOffset: uint64(i) * 64 << 20,
			InstrTicks: 2, // a modest in-order CPI
			Setup: func(c *riscv.CPU) {
				var buf [8]byte
				for j := 0; j < elements; j++ {
					binary.LittleEndian.PutUint64(buf[:], uint64(j))
					c.WriteMem(riscv.KernelABase+uint64(j)*8, buf[:])
					binary.LittleEndian.PutUint64(buf[:], uint64(2*j))
					c.WriteMem(riscv.KernelBBase+uint64(j)*8, buf[:])
				}
			},
		}
	}
	all, err := riscv.RunHarts(specs, 1<<24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("captured:", trace.Summarize(all))

	cfg := hmccoal.DefaultConfig()
	cfg.Hierarchy.CPUs = harts
	for _, mode := range []hmccoal.Mode{hmccoal.ModeBaseline, hmccoal.ModeTwoPhase} {
		cfg.Mode = mode
		sys, err := hmccoal.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(all)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: runtime %.1f µs, %d LLC requests → %d HMC requests (%.1f%% coalesced)\n",
			mode, res.RuntimeNs()/1000, res.LLCMisses, res.HMCRequests,
			100*res.CoalescingEfficiency())
	}
}
