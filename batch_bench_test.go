package hmccoal

import (
	"context"
	"fmt"
	"testing"
)

// benchSweepParams sizes the sweep benchmarks: short runs over the full
// 12-CPU evaluation system, the regime where per-job system construction
// (megabytes of cache tags) dominates and lane recycling pays.
func benchSweepParams() TraceParams {
	return TraceParams{CPUs: 2, OpsPerCPU: 150, Seed: 7}
}

// BenchmarkSweepRunAll measures the full benchmark sweep (12 benchmarks ×
// 4 jobs) at increasing lockstep batch widths, all at -workers 1: any
// speedup is pure lane reuse, not parallelism (BENCH_6.json).
func BenchmarkSweepRunAll(b *testing.B) {
	p := benchSweepParams()
	for _, batch := range []int{0, 2, 4} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RunAllContext(context.Background(), p,
					SweepOptions{Workers: 1, Batch: batch}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepTimeout measures a dense single-benchmark grid — many
// small runs replaying one shared trace — where batching amortizes both
// construction and trace bucketing.
func BenchmarkSweepTimeout(b *testing.B) {
	p := benchSweepParams()
	timeouts := make([]uint64, 24)
	for i := range timeouts {
		timeouts[i] = uint64(4 + 2*i)
	}
	for _, batch := range []int{0, 2, 4} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := TimeoutSweepContext(context.Background(), "SG", p, timeouts,
					SweepOptions{Workers: 1, Batch: batch}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
